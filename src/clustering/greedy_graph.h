/// \file greedy_graph.h
/// \brief Greedy graph partitioning clustering (Tsangaris & Naughton,
///        SIGMOD'92 style) — a comparison policy for the paper's
///        "exploitation" goal (§5: benchmarking several clustering
///        techniques for the sake of performance comparison).
///
/// Unlike DSTC it keeps a single cumulative weighted access graph (no
/// observation periods, no decay) and, on demand, partitions objects into
/// page-sized groups by scanning edges in descending weight and merging
/// partitions greedily (Kruskal-flavoured), then emits partitions in
/// first-seen order.

#ifndef OCB_CLUSTERING_GREEDY_GRAPH_H_
#define OCB_CLUSTERING_GREEDY_GRAPH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "clustering/policy.h"

namespace ocb {

/// Tunables of the greedy partitioner.
struct GreedyGraphOptions {
  /// Minimum cumulative weight for an edge to participate.
  double min_edge_weight = 1.0;
};

/// \brief Kruskal-style greedy partitioning over the cumulative access
/// graph.
class GreedyGraphPartitioning : public ClusteringPolicy {
 public:
  explicit GreedyGraphPartitioning(
      GreedyGraphOptions options = GreedyGraphOptions());

  std::string name() const override { return "GreedyGraph"; }

  void OnLinkCross(Oid from, Oid to, RefTypeId type, bool reverse) override;

  Status Reorganize(Database* db) override;

  void ResetStatistics() override;

  size_t graph_edges() const { return weights_.size(); }

 private:
  struct PairHash {
    size_t operator()(const std::pair<Oid, Oid>& p) const {
      return std::hash<Oid>()(p.first * 0x9E3779B97F4A7C15ULL ^ p.second);
    }
  };

  GreedyGraphOptions options_;
  std::unordered_map<std::pair<Oid, Oid>, double, PairHash> weights_;
};

}  // namespace ocb

#endif  // OCB_CLUSTERING_GREEDY_GRAPH_H_
