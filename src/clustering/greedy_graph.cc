#include "clustering/greedy_graph.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

namespace ocb {
namespace {

/// Union-find with size caps tracked externally.
class DisjointSets {
 public:
  Oid Find(Oid x) {
    auto it = parent_.find(x);
    if (it == parent_.end()) {
      parent_[x] = x;
      return x;
    }
    Oid root = x;
    while (parent_[root] != root) root = parent_[root];
    while (parent_[x] != root) {
      Oid next = parent_[x];
      parent_[x] = root;
      x = next;
    }
    return root;
  }

  void Union(Oid a, Oid b) { parent_[Find(a)] = Find(b); }

 private:
  std::unordered_map<Oid, Oid> parent_;
};

}  // namespace

GreedyGraphPartitioning::GreedyGraphPartitioning(GreedyGraphOptions options)
    : options_(options) {}

void GreedyGraphPartitioning::OnLinkCross(Oid from, Oid to, RefTypeId type,
                                          bool reverse) {
  (void)type;
  (void)reverse;
  if (from == kInvalidOid || to == kInvalidOid || from == to) return;
  auto key =
      from < to ? std::make_pair(from, to) : std::make_pair(to, from);
  weights_[key] += 1.0;
  ++stats_.observed_crossings;
}

Status GreedyGraphPartitioning::Reorganize(Database* db) {
  if (weights_.empty()) return Status::OK();
  // Partitioning probes object sizes through the store: clustering I/O.
  Database::QuiesceGuard quiesce(db);
  ScopedIoScope scope(db->disk(), IoScope::kClustering);
  struct Edge {
    Oid a, b;
    double weight;
  };
  std::vector<Edge> edges;
  edges.reserve(weights_.size());
  for (const auto& [pair, weight] : weights_) {
    if (weight >= options_.min_edge_weight) {
      edges.push_back(Edge{pair.first, pair.second, weight});
    }
  }
  if (edges.empty()) return Status::OK();
  std::sort(edges.begin(), edges.end(), [](const Edge& x, const Edge& y) {
    if (x.weight != y.weight) return x.weight > y.weight;
    if (x.a != y.a) return x.a < y.a;
    return x.b < y.b;
  });

  const size_t page_budget = db->object_store()->max_object_size();
  DisjointSets sets;
  std::unordered_map<Oid, size_t> partition_bytes;
  auto object_size = [&](Oid oid) -> size_t {
    auto obj = db->PeekObject(oid);
    return obj.ok() ? obj->EncodedSize() : 0;
  };
  auto bytes_of_root = [&](Oid root, Oid member) -> size_t& {
    auto [it, inserted] = partition_bytes.try_emplace(root, 0);
    if (inserted) it->second = object_size(member);
    return it->second;
  };

  // Kruskal with a page-size capacity constraint per partition.
  for (const Edge& edge : edges) {
    if (!db->object_store()->Contains(edge.a) ||
        !db->object_store()->Contains(edge.b)) {
      continue;
    }
    const Oid ra = sets.Find(edge.a);
    const Oid rb = sets.Find(edge.b);
    if (ra == rb) continue;
    const size_t bytes_a = bytes_of_root(ra, edge.a);
    const size_t bytes_b = bytes_of_root(rb, edge.b);
    if (bytes_a + bytes_b > page_budget) continue;
    sets.Union(ra, rb);
    const Oid merged = sets.Find(ra);
    partition_bytes[merged] = bytes_a + bytes_b;
  }

  // Emit partitions in order of their heaviest edge (edge scan order),
  // objects within a partition in first-seen order.
  std::unordered_map<Oid, std::vector<Oid>> groups;
  std::vector<Oid> group_order;
  std::unordered_map<Oid, bool> emitted;
  auto emit = [&](Oid oid) {
    if (emitted[oid]) return;
    emitted[oid] = true;
    const Oid root = sets.Find(oid);
    auto [it, inserted] = groups.try_emplace(root);
    if (inserted) group_order.push_back(root);
    it->second.push_back(oid);
  };
  for (const Edge& edge : edges) {
    if (!db->object_store()->Contains(edge.a) ||
        !db->object_store()->Contains(edge.b)) {
      continue;
    }
    emit(edge.a);
    emit(edge.b);
  }

  std::vector<std::vector<Oid>> units;
  units.reserve(group_order.size());
  uint64_t moved = 0;
  std::unordered_set<Oid> in_units;
  for (Oid root : group_order) {
    units.push_back(std::move(groups[root]));
    moved += units.back().size();
    in_units.insert(units.back().begin(), units.back().end());
  }
  if (units.empty()) return Status::OK();
  // Compact unclaimed objects behind the partitions, preserving their
  // previous physical order (see the DSTC phase-5 comment).
  std::vector<Oid> leftover;
  for (Oid oid : db->object_store()->LiveOidsInPhysicalOrder()) {
    if (!in_units.count(oid)) leftover.push_back(oid);
  }
  if (!leftover.empty()) units.push_back(std::move(leftover));
  OCB_RETURN_NOT_OK(db->object_store()->PlaceUnits(units));
  OCB_RETURN_NOT_OK(db->buffer_pool()->FlushAll());
  ++stats_.reorganizations;
  stats_.objects_moved += moved;
  stats_.clustering_units = group_order.size();
  return Status::OK();
}

void GreedyGraphPartitioning::ResetStatistics() {
  weights_.clear();
  stats_ = ClusteringStats{};
}

}  // namespace ocb
