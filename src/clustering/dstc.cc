#include "clustering/dstc.h"

#include <algorithm>
#include <unordered_set>

namespace ocb {

Dstc::Dstc(DstcOptions options) : options_(options) {}

void Dstc::OnTransactionBegin() {
  txn_journals_[std::this_thread::get_id()].clear();
}

void Dstc::OnTransactionEnd() {
  txn_journals_.erase(std::this_thread::get_id());
  ++transactions_in_period_;
  if (transactions_in_period_ >= options_.observation_period_transactions) {
    CloseObservationPeriod();
  }
}

void Dstc::OnTransactionAbort() {
  // Compensate the aborted transaction's crossings out of the observation
  // matrix (clamped: a Reorganize may have closed the period mid-txn, in
  // which case the entries are already gone). Only the aborting thread's
  // own journal is touched — concurrent clients' in-flight observations
  // stay intact. Aborted transactions do not advance the observation
  // period either.
  auto journal = txn_journals_.find(std::this_thread::get_id());
  if (journal == txn_journals_.end()) return;
  for (const auto& pair : journal->second) {
    auto it = observation_.find(pair);
    if (it != observation_.end()) {
      it->second -= 1.0;
      if (it->second <= 0.0) observation_.erase(it);
    }
    if (stats_.observed_crossings > 0) --stats_.observed_crossings;
  }
  txn_journals_.erase(journal);
}

void Dstc::OnLinkCross(Oid from, Oid to, RefTypeId type, bool reverse) {
  (void)type;
  if (reverse && !options_.observe_reverse_crossings) return;
  if (from == kInvalidOid || to == kInvalidOid || from == to) return;
  observation_[{from, to}] += 1.0;
  txn_journals_[std::this_thread::get_id()].push_back({from, to});
  ++stats_.observed_crossings;
}

void Dstc::CloseObservationPeriod() {
  // Phase 2 (Selection): keep significant entries only.
  // Phase 3 (Consolidation): age old knowledge, fold the new period in.
  for (auto& [pair, weight] : consolidated_) {
    weight *= options_.consolidation_decay;
  }
  for (const auto& [pair, count] : observation_) {
    if (count >= options_.selection_threshold) {
      consolidated_[pair] += count;
    }
  }
  // Drop consolidated entries that decayed into noise; keeps the persistent
  // matrix bounded over long runs.
  for (auto it = consolidated_.begin(); it != consolidated_.end();) {
    if (it->second < 0.25 * options_.unit_link_threshold) {
      it = consolidated_.erase(it);
    } else {
      ++it;
    }
  }
  observation_.clear();
  transactions_in_period_ = 0;
}

std::vector<std::vector<Oid>> Dstc::BuildClusteringUnits(
    Database* db) const {
  // Symmetrize the consolidated matrix into undirected adjacency lists.
  struct Edge {
    Oid a, b;
    double weight;
  };
  std::unordered_map<Oid, std::vector<std::pair<Oid, double>>> adjacency;
  std::vector<Edge> edges;
  {
    Matrix undirected;
    for (const auto& [pair, weight] : consolidated_) {
      if (weight < options_.unit_link_threshold) continue;
      auto key = pair.first < pair.second
                     ? pair
                     : std::make_pair(pair.second, pair.first);
      undirected[key] += weight;
    }
    edges.reserve(undirected.size());
    for (const auto& [pair, weight] : undirected) {
      edges.push_back(Edge{pair.first, pair.second, weight});
      adjacency[pair.first].push_back({pair.second, weight});
      adjacency[pair.second].push_back({pair.first, weight});
    }
  }
  // Heaviest edges seed units first (deterministic tie-break on oids).
  std::sort(edges.begin(), edges.end(), [](const Edge& x, const Edge& y) {
    if (x.weight != y.weight) return x.weight > y.weight;
    if (x.a != y.a) return x.a < y.a;
    return x.b < y.b;
  });
  for (auto& [oid, neighbors] : adjacency) {
    std::sort(neighbors.begin(), neighbors.end(),
              [](const auto& x, const auto& y) {
                if (x.second != y.second) return x.second > y.second;
                return x.first < y.first;
              });
  }

  const size_t page_budget = db->object_store()->max_object_size();
  std::unordered_set<Oid> clustered;
  std::vector<std::vector<Oid>> units;

  auto object_size = [&](Oid oid) -> size_t {
    auto obj = db->PeekObject(oid);
    if (!obj.ok()) return 0;
    return obj->EncodedSize();
  };

  for (const Edge& seed : edges) {
    // A unit grows from every not-yet-clustered endpoint; an edge with one
    // clustered endpoint still seeds a unit from the free one, so no
    // significant object is orphaned onto unclustered pages.
    std::vector<Oid> unit;
    for (Oid endpoint : {seed.a, seed.b}) {
      if (!clustered.count(endpoint) &&
          db->object_store()->Contains(endpoint)) {
        unit.push_back(endpoint);
      }
    }
    if (unit.empty()) continue;
    // Grow the unit by best-first expansion along the heaviest links,
    // bounded by one page's worth of bytes.
    size_t unit_bytes = 0;
    for (Oid member : unit) {
      clustered.insert(member);
      unit_bytes += object_size(member);
    }
    size_t frontier = 0;
    while (frontier < unit.size()) {
      if (options_.max_unit_objects > 0 &&
          unit.size() >= options_.max_unit_objects) {
        break;
      }
      const Oid current = unit[frontier++];
      auto it = adjacency.find(current);
      if (it == adjacency.end()) continue;
      for (const auto& [neighbor, weight] : it->second) {
        if (clustered.count(neighbor)) continue;
        if (!db->object_store()->Contains(neighbor)) continue;
        const size_t size = object_size(neighbor);
        if (unit_bytes + size > page_budget) continue;
        unit.push_back(neighbor);
        clustered.insert(neighbor);
        unit_bytes += size;
        if (options_.max_unit_objects > 0 &&
            unit.size() >= options_.max_unit_objects) {
          break;
        }
      }
    }
    units.push_back(std::move(unit));
  }
  return units;
}

Status Dstc::Reorganize(Database* db) {
  // Close a half-open observation period so fresh statistics count.
  if (!observation_.empty()) CloseObservationPeriod();
  if (consolidated_.empty()) return Status::OK();

  // Everything below — including the object-size probes of unit
  // construction — is clustering overhead I/O.
  Database::QuiesceGuard quiesce(db);
  ScopedIoScope scope(db->disk(), IoScope::kClustering);

  std::vector<std::vector<Oid>> units = BuildClusteringUnits(db);
  if (units.empty()) return Status::OK();

  // Phase 5: physical clustering. The clustering units go first, each
  // page-aligned; every object no unit claimed is then compacted behind
  // them in its previous physical order. Without this compaction the
  // database would double in pages (moved objects leave their old pages
  // three-quarters empty), which *worsens* locality — the physical
  // organization phase rewrites placement wholesale, as Texas' segment
  // reorganization does.
  uint64_t moved = 0;
  std::unordered_set<Oid> in_units;
  for (const auto& unit : units) {
    moved += unit.size();
    in_units.insert(unit.begin(), unit.end());
  }
  std::vector<Oid> leftover;
  for (Oid oid : db->object_store()->LiveOidsInPhysicalOrder()) {
    if (!in_units.count(oid)) leftover.push_back(oid);
  }
  if (options_.page_align_units) {
    std::vector<std::vector<Oid>> layout = units;
    if (!leftover.empty()) layout.push_back(std::move(leftover));
    OCB_RETURN_NOT_OK(db->object_store()->PlaceUnits(layout));
  } else {
    std::vector<Oid> sequence;
    sequence.reserve(db->object_count());
    for (const auto& unit : units) {
      sequence.insert(sequence.end(), unit.begin(), unit.end());
    }
    sequence.insert(sequence.end(), leftover.begin(), leftover.end());
    OCB_RETURN_NOT_OK(db->object_store()->PlaceSequence(sequence));
  }
  OCB_RETURN_NOT_OK(db->buffer_pool()->FlushAll());

  ++stats_.reorganizations;
  stats_.objects_moved += moved;
  stats_.clustering_units = units.size();
  last_units_ = std::move(units);
  return Status::OK();
}

void Dstc::ResetStatistics() {
  observation_.clear();
  consolidated_.clear();
  transactions_in_period_ = 0;
  last_units_.clear();
  txn_journals_.clear();
  stats_ = ClusteringStats{};
}

}  // namespace ocb
