/// \file dfs_placement.h
/// \brief Static depth-first placement (Cactis-style) — a structural
///        comparison policy that ignores usage statistics entirely.
///
/// Objects are re-placed in the order of a depth-first traversal of the
/// object graph (ascending-oid roots, ORef slot order), matching the
/// access order of depth-first navigational workloads. It is the classic
/// "cluster by structure, not by usage" baseline: cheap, oblivious, good
/// when the workload is stereotyped depth-first traversals and mediocre
/// otherwise — exactly the contrast OCB's diversified workload exposes.

#ifndef OCB_CLUSTERING_DFS_PLACEMENT_H_
#define OCB_CLUSTERING_DFS_PLACEMENT_H_

#include "clustering/policy.h"

namespace ocb {

/// \brief Statistics-free depth-first structural clustering.
class DfsPlacement : public ClusteringPolicy {
 public:
  std::string name() const override { return "DFS-Structural"; }

  /// No observation needed.
  void OnLinkCross(Oid, Oid, RefTypeId, bool) override {}

  Status Reorganize(Database* db) override;

  void ResetStatistics() override { stats_ = ClusteringStats{}; }
};

}  // namespace ocb

#endif  // OCB_CLUSTERING_DFS_PLACEMENT_H_
