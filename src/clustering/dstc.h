/// \file dstc.h
/// \brief DSTC — the Dynamic, Statistical and Tunable Clustering technique
///        (Bullat, ECOOP'96) benchmarked by the paper (§4.1).
///
/// DSTC observes database usage (inter-object link crossings) and
/// dynamically reorganizes placement. Five phases:
///
///   1. *Observation*: during a fixed Observation Period, link crossings are
///      counted in a transient Observation Matrix.
///   2. *Selection*: at period end, only statistically significant entries
///      (count >= selection_threshold) are kept.
///   3. *Consolidation*: selected counts are merged into a persistent
///      Consolidated Matrix, past knowledge being aged by a decay factor.
///   4. *Dynamic cluster reorganization*: consolidated statistics are used
///      to build (or rebuild) Clustering Units — ordered groups of objects
///      that should live together, grown greedily from the heaviest links
///      up to a page's worth of bytes.
///   5. *Physical clustering organization*: units are applied to disk, i.e.
///      objects are rewritten unit-by-unit onto fresh pages. Triggered when
///      the system is idle — in the harness, via Reorganize().
///
/// All thresholds are tunable (the "T" of DSTC); DstcOptions exposes them
/// and bench_dstc_ablation sweeps them.

#ifndef OCB_CLUSTERING_DSTC_H_
#define OCB_CLUSTERING_DSTC_H_

#include <cstdint>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "clustering/policy.h"

namespace ocb {

/// Tunables of DSTC.
struct DstcOptions {
  /// Observation period length, in transactions.
  uint64_t observation_period_transactions = 100;

  /// Phase 2: minimum crossings for a link to survive selection.
  double selection_threshold = 2.0;

  /// Phase 3: multiplier applied to existing consolidated weights before
  /// merging a new period (1.0 = never forget, 0.0 = only last period).
  double consolidation_decay = 0.8;

  /// Phase 4: minimum consolidated weight for a link to seed/extend a
  /// clustering unit.
  double unit_link_threshold = 1.0;

  /// Phase 4: hard cap on objects per clustering unit (0 = page-bytes cap
  /// only). Prevents one hot hub from swallowing the database.
  uint64_t max_unit_objects = 0;

  /// Count reverse (BackRef) crossings toward statistics as well.
  bool observe_reverse_crossings = true;

  /// Phase 5 placement: align each clustering unit to a page boundary
  /// (no unit straddles two pages, at the cost of internal fragmentation)
  /// versus packing units back to back (dense pages; a unit may straddle
  /// a boundary). Dense packing keeps the database page count — and thus
  /// the cache-resident fraction — unchanged, which dominates when the
  /// database barely spills out of memory (the paper's regime); ablated
  /// in bench_dstc_ablation.
  bool page_align_units = false;
};

/// \brief DSTC policy implementation.
class Dstc : public ClusteringPolicy {
 public:
  explicit Dstc(DstcOptions options = DstcOptions());

  std::string name() const override { return "DSTC"; }

  // -- AccessObserver (phase 1) --
  void OnTransactionBegin() override;
  void OnTransactionEnd() override;
  /// Rolled-back transactions never logically happened: their crossings
  /// are compensated out of the observation matrix so DSTC does not learn
  /// placement from accesses the undo log erased.
  void OnTransactionAbort() override;
  void OnLinkCross(Oid from, Oid to, RefTypeId type, bool reverse) override;

  /// Phases 4 + 5 (phases 2 + 3 run automatically at each period end).
  /// Safe to call with a partially elapsed period: it is closed first.
  Status Reorganize(Database* db) override;

  void ResetStatistics() override;

  /// The clustering units built by the last Reorganize (ordered object
  /// sequences); exposed for tests and reports.
  const std::vector<std::vector<Oid>>& last_units() const {
    return last_units_;
  }

  /// Consolidated matrix size (number of significant links).
  size_t consolidated_links() const { return consolidated_.size(); }

  const DstcOptions& options() const { return options_; }

 private:
  /// Canonical undirected pair key: (min << 32-ish) — we keep directed
  /// counts separately and symmetrize at unit-building time.
  struct PairHash {
    size_t operator()(const std::pair<Oid, Oid>& p) const {
      return std::hash<Oid>()(p.first * 0x9E3779B97F4A7C15ULL ^ p.second);
    }
  };
  using Matrix = std::unordered_map<std::pair<Oid, Oid>, double, PairHash>;

  /// Phases 2 + 3: filter the observation matrix and fold it into the
  /// consolidated matrix.
  void CloseObservationPeriod();

  /// Phase 4: greedy unit construction from the consolidated matrix.
  std::vector<std::vector<Oid>> BuildClusteringUnits(Database* db) const;

  DstcOptions options_;
  Matrix observation_;
  Matrix consolidated_;
  uint64_t transactions_in_period_ = 0;
  std::vector<std::vector<Oid>> last_units_;

  /// Crossings recorded since each in-flight transaction began, keyed by
  /// the client thread driving it (one thread drives at most one open
  /// transaction, and every observer callback for a transaction arrives
  /// on its own thread, serialized by the Database's observer mutex). On
  /// abort the owning
  /// thread's entries are subtracted back out of observation_; on commit
  /// they are simply dropped.
  std::unordered_map<std::thread::id,
                     std::vector<std::pair<Oid, Oid>>>
      txn_journals_;
};

}  // namespace ocb

#endif  // OCB_CLUSTERING_DSTC_H_
