/// \file policy.h
/// \brief Abstract interface of an object-clustering policy.
///
/// A policy is an AccessObserver (it watches the workload through the
/// Database's hooks) plus a Reorganize() entry point that may rewrite the
/// physical placement of objects. The benchmark harness:
///
///   1. attaches the policy to the Database,
///   2. runs the workload (the policy gathers statistics),
///   3. calls Reorganize() "when the system is idle" (paper §4.1, phase 5),
///   4. re-runs the workload and compares I/O counts.
///
/// Reorganize() must perform its I/O inside IoScope::kClustering so the
/// paper's "clustering I/O overhead" metric is attributed correctly; the
/// harness sets that scope around the call.

#ifndef OCB_CLUSTERING_POLICY_H_
#define OCB_CLUSTERING_POLICY_H_

#include <cstdint>
#include <string>

#include "oodb/database.h"
#include "util/status.h"

namespace ocb {

/// Bookkeeping a policy reports after reorganizations.
struct ClusteringStats {
  uint64_t reorganizations = 0;      ///< Times Reorganize actually rewrote.
  uint64_t objects_moved = 0;        ///< Total relocations performed.
  uint64_t clustering_units = 0;     ///< Units built by the last pass.
  uint64_t observed_crossings = 0;   ///< Link crossings seen so far.
};

/// \brief Base class of all clustering policies.
class ClusteringPolicy : public AccessObserver {
 public:
  ~ClusteringPolicy() override = default;

  /// Human-readable policy name for reports ("DSTC", "NoClustering"...).
  virtual std::string name() const = 0;

  /// Rewrites object placement using gathered statistics. May be a no-op
  /// when statistics do not justify clustering.
  virtual Status Reorganize(Database* db) = 0;

  /// Drops gathered statistics (fresh benchmark run).
  virtual void ResetStatistics() = 0;

  virtual const ClusteringStats& stats() const { return stats_; }

 protected:
  ClusteringStats stats_;
};

/// \brief Baseline policy: observe nothing, never move anything.
///
/// Placement stays whatever the generator produced (creation order), which
/// is exactly the "before reclustering" configuration of Tables 4 and 5.
class NoClustering : public ClusteringPolicy {
 public:
  std::string name() const override { return "NoClustering"; }
  Status Reorganize(Database* db) override {
    (void)db;
    return Status::OK();
  }
  void ResetStatistics() override { stats_ = ClusteringStats{}; }
};

}  // namespace ocb

#endif  // OCB_CLUSTERING_POLICY_H_
