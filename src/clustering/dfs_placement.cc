#include "clustering/dfs_placement.h"

#include <unordered_set>
#include <vector>

namespace ocb {

Status DfsPlacement::Reorganize(Database* db) {
  std::vector<Oid> sequence;
  std::unordered_set<Oid> visited;
  const std::vector<Oid> all = db->object_store()->LiveOids();
  sequence.reserve(all.size());

  Database::QuiesceGuard quiesce(db);
  // The DFS itself reads every object: clustering overhead I/O.
  ScopedIoScope scope(db->disk(), IoScope::kClustering);
  for (Oid root : all) {
    if (visited.count(root)) continue;
    std::vector<Oid> stack = {root};
    while (!stack.empty()) {
      const Oid current = stack.back();
      stack.pop_back();
      if (!visited.insert(current).second) continue;
      sequence.push_back(current);
      auto obj = db->PeekObject(current);
      if (!obj.ok()) continue;
      // Push in reverse slot order so slot 0 is explored first.
      for (auto it = obj->orefs.rbegin(); it != obj->orefs.rend(); ++it) {
        if (*it != kInvalidOid && !visited.count(*it)) {
          stack.push_back(*it);
        }
      }
    }
  }
  if (sequence.empty()) return Status::OK();
  OCB_RETURN_NOT_OK(db->object_store()->PlaceSequence(sequence));
  OCB_RETURN_NOT_OK(db->buffer_pool()->FlushAll());
  ++stats_.reorganizations;
  stats_.objects_moved += sequence.size();
  return Status::OK();
}

}  // namespace ocb
