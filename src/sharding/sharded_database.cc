#include "sharding/sharded_database.h"

#include <algorithm>

#include "oodb/snapshot.h"
#include "storage/io_backend.h"
#include "util/format.h"
#include "wal/wal_writer.h"

namespace ocb {

namespace {

/// Per-shard lock wait timeout: long enough that real intra-shard
/// conflicts resolve through the wait-for graph first, short enough that
/// a cross-shard deadlock (invisible to every per-shard graph) stalls a
/// client for a fraction of a second, not the single-store default of 2 s.
constexpr uint64_t kShardLockTimeoutNanos = 250'000'000;  // 250 ms

}  // namespace

ShardedDatabase::ShardedDatabase(const StorageOptions& base,
                                 uint32_t shard_count)
    : base_options_(base), router_(shard_count) {
  const uint32_t n = router_.shard_count();
  StorageOptions per = base;
  // Equal total memory across shard counts: N pools of pages/N frames.
  per.buffer_pool_pages =
      std::max<size_t>(base.buffer_pool_pages / n, size_t{8});
  per.oid_stride = router_.OidStride();
  per.lock_wait_timeout_nanos =
      std::min<uint64_t>(base.lock_wait_timeout_nanos,
                         kShardLockTimeoutNanos);
  // One I/O worker group for the whole deployment: each shard's DiskSim
  // submits to the shared backend instead of spawning io_workers threads
  // per shard (N shards would otherwise mean N * io_workers threads).
  if (base.io_workers > 0 && per.io_backend == nullptr) {
    per.io_backend = std::make_shared<IoBackend>(base.io_workers);
  }
  shards_.reserve(n);
  std::vector<Database*> raw;
  for (uint32_t k = 0; k < n; ++k) {
    per.first_oid = router_.FirstOidFor(k);
    per.backing_file = base.backing_file.empty()
                           ? std::string()
                           : base.backing_file + Format(".shard%u", k);
    per.wal_path = base.wal_path.empty()
                       ? std::string()
                       : base.wal_path + Format(".shard%u", k);
    shards_.push_back(std::make_unique<Database>(per));
    raw.push_back(shards_.back().get());
  }
  coordinator_ = std::make_unique<CrossShardCoordinator>(std::move(raw));
  if (!base.wal_path.empty()) {
    // The coordinator's marker log pairs with the shard logs: a 2PC
    // participant record replays only when its marker is here.
    auto coord_wal = wal::WalWriter::Open(base.wal_path + ".coord",
                                          base.wal_segment_bytes);
    if (coord_wal.ok()) {
      coord_wal_ = std::move(coord_wal).value();
      coordinator_->AttachWal(coord_wal_.get());
    } else {
      coord_wal_status_ = coord_wal.status();
    }
  }
  // One wait-for graph across every shard's lock manager: per-shard DFS
  // handles intra-shard cycles, the graph refuses cross-shard ones (see
  // wait_graph.h) — without it every such cycle burned the wait timeout.
  for (auto& shard : shards_) {
    shard->lock_manager()->SetWaitGraph(coordinator_->wait_graph());
  }
#ifndef OCB_OBS_DISABLED
  // Coordinator-level gauges; per-shard engine gauges are registered by
  // each Database and sum under their shared names.
  obs_callbacks_.Register("db.coord.fast_path_commits", [this] {
    return coordinator_->stats().fast_path_commits;
  });
  obs_callbacks_.Register("db.coord.cross_shard_commits", [this] {
    return coordinator_->stats().cross_shard_commits;
  });
  obs_callbacks_.Register("db.coord.prepares", [this] {
    return coordinator_->stats().prepares;
  });
  obs_callbacks_.Register("db.coord.aborts", [this] {
    return coordinator_->stats().aborts;
  });
  obs_callbacks_.Register("db.coord.twopc_nanos", [this] {
    return coordinator_->stats().twopc_nanos;
  });
#endif
}

// Out of line: the header only forward-declares wal::WalWriter.
ShardedDatabase::~ShardedDatabase() = default;

Status ShardedDatabase::wal_open_status() const {
  if (!coord_wal_status_.ok()) return coord_wal_status_;
  for (const auto& shard : shards_) {
    Status st = shard->wal_open_status();
    if (!st.ok()) return st;
  }
  return Status::OK();
}

void ShardedDatabase::SetSchema(Schema schema) {
  for (auto& shard : shards_) {
    Schema copy = schema;
    shard->SetSchema(std::move(copy));
  }
  schema_ = std::move(schema);
}

std::unique_ptr<ShardedTransaction> ShardedDatabase::BeginTxn(
    bool read_only, CcAlgorithm cc) {
  // Both MVCC readers and the optimistic algorithms are built on the
  // version store; with MVCC off everything degrades to locking.
  if (!mvcc_enabled()) {
    read_only = false;
    cc = CcAlgorithm::kStrict2PL;
  }
  if (read_only) cc = CcAlgorithm::kStrict2PL;
  auto txn = std::make_unique<ShardedTransaction>(
      next_txn_id_.fetch_add(1, std::memory_order_relaxed),
      router_.shard_count(), read_only);
  txn->cc_ = cc;
  if (read_only) {
    coordinator_->OpenGlobalSnapshot(txn.get());
  } else if (cc == CcAlgorithm::kSnapshotIsolation) {
    // Eager contexts, all views pinned at one global snapshot point (see
    // BeginTxn's doc comment: lazy opening would race per-shard GC).
    coordinator_->OpenGlobalSiContexts(txn.get());
  }
  return txn;
}

Status ShardedDatabase::CommitTxn(ShardedTransaction* txn) {
  return coordinator_->Commit(txn);
}

Status ShardedDatabase::AbortTxn(ShardedTransaction* txn) {
  return coordinator_->Abort(txn);
}

Status ShardedDatabase::CommitTxnGrouped(ShardedTransaction* txn) {
  return coordinator_->CommitGrouped(txn);
}

void ShardedDatabase::SetGroupCommitMaxBatch(uint32_t n) {
  coordinator_->SetGroupCommitMaxBatch(n);
}

void ShardedDatabase::SetGroupCommitWindow(uint64_t nanos) {
  coordinator_->SetGroupCommitWindow(nanos);
}

GroupCommitStats ShardedDatabase::group_commit_stats() const {
  return coordinator_->group_commit_stats();
}

void ShardedDatabase::SetDeadlockPolicy(DeadlockPolicy policy) {
  for (auto& shard : shards_) shard->SetDeadlockPolicy(policy);
}

DeadlockPolicy ShardedDatabase::deadlock_policy() const {
  return shards_[0]->deadlock_policy();
}

TransactionContext* ShardedDatabase::ContextFor(ShardedTransaction* txn,
                                                uint32_t k) {
  if (txn == nullptr) return nullptr;
  if (txn->contexts_[k] == nullptr) {
    // Same id on every shard: the GlobalWaitGraph needs one identity per
    // sharded transaction to see cycles that cross shards. The cc
    // algorithm rides along (SI contexts are never created here — they
    // were opened eagerly at begin).
    txn->contexts_[k] =
        shards_[k]->BeginTxnWithId(txn->id(), /*read_only=*/false,
                                   txn->cc());
  }
  return txn->contexts_[k].get();
}

Status ShardedDatabase::RefuseReadOnly(const ShardedTransaction* txn,
                                       const char* op) {
  if (txn != nullptr && txn->read_only()) {
    return Status::InvalidArgument(
        Format("%s refused: sharded txn is read-only (snapshot %llu)", op,
               (unsigned long long)txn->snapshot_ts()));
  }
  return Status::OK();
}

Status ShardedDatabase::RefuseNonLocking(const ShardedTransaction* txn,
                                         const char* op) {
  if (txn != nullptr && !txn->read_only() &&
      txn->cc() != CcAlgorithm::kStrict2PL) {
    return Status::NotSupported(
        Format("%s refused under %s: multi-object choreography (symmetric "
               "backref maintenance) needs 2PL's eager write footprint; "
               "use a kStrict2PL transaction",
               op, CcAlgorithmToString(txn->cc())));
  }
  return Status::OK();
}

Status ShardedDatabase::RefuseFinished(const ShardedTransaction* txn,
                                       const char* op) {
  if (txn != nullptr && !txn->active()) {
    return Status::InvalidArgument(
        Format("%s refused: sharded txn %llu is %s (use-after-finish)", op,
               (unsigned long long)txn->id(),
               TxnStateToString(txn->state())));
  }
  return Status::OK();
}

Result<Oid> ShardedDatabase::CreateObject(ShardedTransaction* txn,
                                          ClassId class_id) {
  OCB_RETURN_NOT_OK(RefuseFinished(txn, "CreateObject"));
  OCB_RETURN_NOT_OK(RefuseReadOnly(txn, "CreateObject"));
  const uint32_t k = static_cast<uint32_t>(
      create_cursor_.fetch_add(1, std::memory_order_relaxed) %
      router_.shard_count());
  return shards_[k]->CreateObject(ContextFor(txn, k), class_id);
}

Result<Object> ShardedDatabase::GetObject(ShardedTransaction* txn,
                                          Oid oid) {
  OCB_RETURN_NOT_OK(RefuseFinished(txn, "GetObject"));
  const uint32_t k = router_.ShardOf(oid);
  return shards_[k]->GetObject(ContextFor(txn, k), oid);
}

Result<Object> ShardedDatabase::PeekObject(Oid oid) {
  return shards_[router_.ShardOf(oid)]->PeekObject(oid);
}

Result<Object> ShardedDatabase::CrossLink(ShardedTransaction* txn, Oid from,
                                          Oid to, RefTypeId type,
                                          bool reverse) {
  OCB_RETURN_NOT_OK(RefuseFinished(txn, "CrossLink"));
  const uint32_t k = router_.ShardOf(to);
  return shards_[k]->CrossLink(ContextFor(txn, k), from, to, type, reverse);
}

Status ShardedDatabase::PutObject(ShardedTransaction* txn,
                                  const Object& object) {
  OCB_RETURN_NOT_OK(RefuseFinished(txn, "PutObject"));
  OCB_RETURN_NOT_OK(RefuseReadOnly(txn, "PutObject"));
  const uint32_t k = router_.ShardOf(object.oid);
  return shards_[k]->PutObject(ContextFor(txn, k), object);
}

Status ShardedDatabase::SetReference(ShardedTransaction* txn, Oid from,
                                     uint32_t slot, Oid to) {
  OCB_RETURN_NOT_OK(RefuseFinished(txn, "SetReference"));
  OCB_RETURN_NOT_OK(RefuseReadOnly(txn, "SetReference"));
  OCB_RETURN_NOT_OK(RefuseNonLocking(txn, "SetReference"));
  const uint32_t from_shard = router_.ShardOf(from);
  if (router_.shard_count() == 1) {
    return shards_[0]->SetReference(ContextFor(txn, 0), from, slot, to);
  }
  TransactionContext* from_ctx = ContextFor(txn, from_shard);
  // The X lock on `from` freezes its slots, so `previous` stays stable
  // while the rest of the footprint is locked (same argument as
  // Database::SetReference).
  OCB_RETURN_NOT_OK(
      shards_[from_shard]->AcquireLock(from_ctx, from,
                                       LockMode::kExclusive));
  OCB_ASSIGN_OR_RETURN(Object source,
                       shards_[from_shard]->PeekObject(from));
  if (slot >= source.orefs.size()) {
    return Status::InvalidArgument(
        Format("slot %u out of range for class %u", slot, source.class_id));
  }
  const Oid previous = source.orefs[slot];
  if (previous == to) return Status::OK();
  const uint32_t prev_shard = router_.ShardOf(previous);
  const uint32_t to_shard = router_.ShardOf(to);
  if ((previous == kInvalidOid || prev_shard == from_shard) &&
      (to == kInvalidOid || to_shard == from_shard)) {
    // Whole footprint is shard-local: the owning shard's own choreography
    // is atomic and exact (it re-acquires the held X idempotently).
    return shards_[from_shard]->SetReference(from_ctx, from, slot, to);
  }
  // Cross-shard: X-lock the remaining footprint through each owner's
  // lock manager — in ascending oid order, so concurrent SetReferences
  // over the same {previous, to} pair cannot deadlock each other — then
  // validate everything before the first write. (Cycles through the
  // primary locks, which are necessarily taken first, are refused by
  // the GlobalWaitGraph.)
  {
    std::vector<Oid> rest;
    if (previous != kInvalidOid) rest.push_back(previous);
    if (to != kInvalidOid) rest.push_back(to);
    std::sort(rest.begin(), rest.end());
    for (Oid oid : rest) {
      const uint32_t k = router_.ShardOf(oid);
      OCB_RETURN_NOT_OK(shards_[k]->AcquireLock(ContextFor(txn, k), oid,
                                                LockMode::kExclusive));
    }
  }
  Object target;
  const bool self_target = to == from;
  if (to != kInvalidOid && !self_target) {
    // A vanished target surfaces here, while nothing is written yet.
    OCB_ASSIGN_OR_RETURN(target, shards_[to_shard]->PeekObject(to));
  }
  {
    Object* absorbing = self_target ? &source : &target;
    if (to != kInvalidOid &&
        absorbing->EncodedSize() + sizeof(Oid) >
            shards_[0]->object_store()->max_object_size()) {
      return Status::NoSpace(
          Format("backref array of oid %llu would exceed page capacity",
                 (unsigned long long)to));
    }
  }
  // Unlink the previous target's backref.
  if (previous == from) {
    auto it = std::find(source.backrefs.begin(), source.backrefs.end(),
                        from);
    if (it != source.backrefs.end()) source.backrefs.erase(it);
  } else if (previous != kInvalidOid) {
    auto old_read = shards_[prev_shard]->PeekObject(previous);
    if (old_read.ok()) {
      Object old_target = std::move(old_read).value();
      auto it = std::find(old_target.backrefs.begin(),
                          old_target.backrefs.end(), from);
      if (it != old_target.backrefs.end()) {
        old_target.backrefs.erase(it);
        OCB_RETURN_NOT_OK(shards_[prev_shard]->PutObject(
            ContextFor(txn, prev_shard), old_target));
      }
    }
  }
  source.orefs[slot] = to;
  if (self_target) {
    source.backrefs.push_back(from);
    return shards_[from_shard]->PutObject(from_ctx, source);
  }
  OCB_RETURN_NOT_OK(shards_[from_shard]->PutObject(from_ctx, source));
  if (to != kInvalidOid) {
    target.backrefs.push_back(from);
    OCB_RETURN_NOT_OK(
        shards_[to_shard]->PutObject(ContextFor(txn, to_shard), target));
  }
  return Status::OK();
}

Status ShardedDatabase::DeleteObject(ShardedTransaction* txn, Oid oid) {
  OCB_RETURN_NOT_OK(RefuseFinished(txn, "DeleteObject"));
  OCB_RETURN_NOT_OK(RefuseReadOnly(txn, "DeleteObject"));
  OCB_RETURN_NOT_OK(RefuseNonLocking(txn, "DeleteObject"));
  const uint32_t owner = router_.ShardOf(oid);
  if (router_.shard_count() == 1) {
    return shards_[0]->DeleteObject(ContextFor(txn, 0), oid);
  }
  TransactionContext* owner_ctx = ContextFor(txn, owner);
  OCB_RETURN_NOT_OK(
      shards_[owner]->AcquireLock(owner_ctx, oid, LockMode::kExclusive));
  OCB_ASSIGN_OR_RETURN(Object obj, shards_[owner]->PeekObject(oid));
  // X-lock the whole neighborhood (the X on `oid` freezes its arrays).
  std::vector<Oid> neighbors;
  for (Oid target : obj.orefs) {
    if (target != kInvalidOid && target != oid) neighbors.push_back(target);
  }
  for (Oid referer : obj.backrefs) {
    if (referer != oid) neighbors.push_back(referer);
  }
  std::sort(neighbors.begin(), neighbors.end());
  neighbors.erase(std::unique(neighbors.begin(), neighbors.end()),
                  neighbors.end());
  for (Oid n : neighbors) {
    const uint32_t k = router_.ShardOf(n);
    OCB_RETURN_NOT_OK(
        shards_[k]->AcquireLock(ContextFor(txn, k), n,
                                LockMode::kExclusive));
  }
  // Patch *remote* neighbors here (the owning shard's DeleteObject below
  // cannot see them); iteration mirrors Database::DeleteObject so
  // duplicate links unlink symmetrically.
  for (Oid target : obj.orefs) {
    if (target == kInvalidOid) continue;
    const uint32_t k = router_.ShardOf(target);
    if (k == owner) continue;
    auto tr = shards_[k]->PeekObject(target);
    if (!tr.ok()) continue;  // Target already gone.
    Object t = std::move(tr).value();
    auto it = std::find(t.backrefs.begin(), t.backrefs.end(), oid);
    if (it != t.backrefs.end()) {
      t.backrefs.erase(it);
      OCB_RETURN_NOT_OK(
          shards_[k]->PutObject(ContextFor(txn, k), t));
    }
  }
  for (Oid referer : obj.backrefs) {
    const uint32_t k = router_.ShardOf(referer);
    if (k == owner) continue;
    auto rr = shards_[k]->PeekObject(referer);
    if (!rr.ok()) continue;
    Object r = std::move(rr).value();
    if (std::find(r.orefs.begin(), r.orefs.end(), oid) == r.orefs.end()) {
      continue;
    }
    for (Oid& slot : r.orefs) {
      if (slot == oid) slot = kInvalidOid;
    }
    OCB_RETURN_NOT_OK(shards_[k]->PutObject(ContextFor(txn, k), r));
  }
  // Local half: same-shard neighbor unlinking, extent removal, record
  // delete. Remote neighbors read back NotFound there and are skipped.
  return shards_[owner]->DeleteObject(owner_ctx, oid);
}

Status ShardedDatabase::GetObjectsBatched(ShardedTransaction* txn,
                                          std::span<const Oid> oids,
                                          std::vector<Object>* out) {
  OCB_RETURN_NOT_OK(RefuseFinished(txn, "GetMany"));
  out->reserve(out->size() + oids.size());
  if (txn != nullptr && !txn->read_only() &&
      txn->cc() == CcAlgorithm::kStrict2PL) {
    // One ascending-oid S-lock pass across the owning shards; the
    // per-oid reads below then re-acquire idempotently (no blocking, no
    // deadlock — all GetMany footprints ascend the same global order).
    // SI/OCC transactions skip it: their reads never take S locks.
    std::vector<Oid> footprint(oids.begin(), oids.end());
    std::sort(footprint.begin(), footprint.end());
    footprint.erase(std::unique(footprint.begin(), footprint.end()),
                    footprint.end());
    for (Oid oid : footprint) {
      const uint32_t k = router_.ShardOf(oid);
      OCB_RETURN_NOT_OK(shards_[k]->AcquireLock(ContextFor(txn, k), oid,
                                                LockMode::kShared));
    }
  }
  for (Oid oid : oids) {
    auto obj = GetObject(txn, oid);
    if (obj.ok()) {
      out->push_back(std::move(obj).value());
    } else if (!obj.status().IsNotFound()) {
      return obj.status();
    }
  }
  return Status::OK();
}

Status ShardedDatabase::AcquireWriteFootprint(ShardedTransaction* txn,
                                              std::vector<Oid> oids) {
  OCB_RETURN_NOT_OK(RefuseFinished(txn, "ApplyWriteBatch"));
  OCB_RETURN_NOT_OK(RefuseReadOnly(txn, "ApplyWriteBatch"));
  if (txn == nullptr) return Status::OK();
  if (txn->cc() != CcAlgorithm::kStrict2PL) {
    // SI/OCC defer their write footprint to commit-time finalization;
    // the batch declaration is still a cache-warm hint.
    if (oids.size() > 1) (void)PrefetchObjects(oids);
    return Status::OK();
  }
  std::sort(oids.begin(), oids.end());
  oids.erase(std::unique(oids.begin(), oids.end()), oids.end());
  for (Oid oid : oids) {
    const uint32_t k = router_.ShardOf(oid);
    OCB_RETURN_NOT_OK(shards_[k]->AcquireLock(ContextFor(txn, k), oid,
                                              LockMode::kExclusive));
  }
  return Status::OK();
}

void ShardedDatabase::SetObserver(AccessObserver* observer) {
  for (auto& shard : shards_) shard->SetObserver(observer);
}

void ShardedDatabase::BeginTransaction() {
  for (auto& shard : shards_) shard->BeginTransaction();
}

void ShardedDatabase::EndTransaction() {
  for (auto& shard : shards_) shard->EndTransaction();
}

Status ShardedDatabase::ColdRestart() {
  // Refuse up front, before restarting ANY shard: per-shard refusal
  // alone would leave the deployment half cold-restarted when shard k
  // is busy but shards 0..k-1 already dropped their caches.
  for (uint32_t k = 0; k < shard_count(); ++k) {
    if (shards_[k]->lock_manager()->locked_object_count() > 0) {
      return Status::InvalidArgument(
          Format("ColdRestart refused: shard %u has in-flight "
                 "transactions holding object locks; commit or abort "
                 "them first",
                 k));
    }
    if (shards_[k]->read_views()->open_count() > 0) {
      return Status::InvalidArgument(
          Format("ColdRestart refused: shard %u has open snapshot "
                 "ReadViews still pinned; finish the readers first",
                 k));
    }
  }
  for (auto& shard : shards_) {
    OCB_RETURN_NOT_OK(shard->ColdRestart());
  }
  return Status::OK();
}

void ShardedDatabase::SetMvccEnabled(bool on) {
  mvcc_enabled_.store(on, std::memory_order_relaxed);
  for (auto& shard : shards_) shard->SetMvccEnabled(on);
}

void ShardedDatabase::SetSerializedPhysical(bool on) {
  for (auto& shard : shards_) shard->SetSerializedPhysical(on);
}

uint64_t ShardedDatabase::object_count() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->object_count();
  return total;
}

std::vector<Oid> ShardedDatabase::ExtentSnapshot(ClassId class_id) {
  std::vector<Oid> out;
  for (auto& shard : shards_) {
    std::vector<Oid> part = shard->ExtentSnapshot(class_id);
    out.insert(out.end(), part.begin(), part.end());
  }
  // Ascending oids: the walk order (and thus every root pool and Scan)
  // is identical for every shard count over the same logical database.
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Oid> ShardedDatabase::ExtentSnapshot(ClassId class_id,
                                                 ShardedTransaction* txn) {
  if (txn == nullptr ||
      (!txn->read_only() && txn->cc() == CcAlgorithm::kStrict2PL)) {
    return ExtentSnapshot(class_id);
  }
  std::vector<Oid> out;
  for (uint32_t k = 0; k < shard_count(); ++k) {
    // Each shard filters its own membership at the transaction's global
    // snapshot point through its per-shard context (readers and SI
    // writers). OCC scans materialize the context so each shard records
    // its extent version for commit-time phantom validation.
    TransactionContext* ctx = txn->read_only() ? txn->contexts_[k].get()
                                               : ContextFor(txn, k);
    std::vector<Oid> part = shards_[k]->ExtentSnapshot(class_id, ctx);
    out.insert(out.end(), part.begin(), part.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Oid> ShardedDatabase::LiveOidsSnapshot() {
  std::vector<Oid> out;
  for (auto& shard : shards_) {
    std::vector<Oid> part = shard->LiveOidsSnapshot();
    out.insert(out.end(), part.begin(), part.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool ShardedDatabase::ContainsObject(Oid oid) {
  return shards_[router_.ShardOf(oid)]->ContainsObject(oid);
}

uint64_t ShardedDatabase::CollectVersionGarbage() {
  uint64_t total = 0;
  for (auto& shard : shards_) total += shard->CollectVersionGarbage();
  return total;
}

uint64_t ShardedDatabase::SimNowNanos() const {
  uint64_t total = think_clock_.now_nanos();
  for (const auto& shard : shards_) total += shard->SimNowNanos();
  return total;
}

IoCounters ShardedDatabase::IoCountersFor(IoScope scope) const {
  IoCounters out;
  uint64_t reads = 0;
  uint64_t writes = 0;
  for (const auto& shard : shards_) {
    const IoCounters c = shard->IoCountersFor(scope);
    reads += c.reads.load(std::memory_order_relaxed);
    writes += c.writes.load(std::memory_order_relaxed);
  }
  out.reads.store(reads, std::memory_order_relaxed);
  out.writes.store(writes, std::memory_order_relaxed);
  return out;
}

void ShardedDatabase::SetIoScope(IoScope scope) {
  for (auto& shard : shards_) shard->SetIoScope(scope);
}

BufferPoolStats ShardedDatabase::PoolStats() const {
  BufferPoolStats out;
  uint64_t hits = 0, misses = 0, evictions = 0, writebacks = 0;
  for (const auto& shard : shards_) {
    const BufferPoolStats s = shard->PoolStats();
    hits += s.hits.load(std::memory_order_relaxed);
    misses += s.misses.load(std::memory_order_relaxed);
    evictions += s.evictions.load(std::memory_order_relaxed);
    writebacks += s.dirty_writebacks.load(std::memory_order_relaxed);
  }
  out.hits.store(hits, std::memory_order_relaxed);
  out.misses.store(misses, std::memory_order_relaxed);
  out.evictions.store(evictions, std::memory_order_relaxed);
  out.dirty_writebacks.store(writebacks, std::memory_order_relaxed);
  return out;
}

ObjectStoreStats ShardedDatabase::StoreStats() const {
  ObjectStoreStats out;
  uint64_t objects = 0, pages = 0, relocations = 0, bytes = 0;
  for (const auto& shard : shards_) {
    const ObjectStoreStats s = shard->StoreStats();
    objects += s.objects.load(std::memory_order_relaxed);
    pages += s.data_pages.load(std::memory_order_relaxed);
    relocations += s.relocations.load(std::memory_order_relaxed);
    bytes += s.bytes_stored.load(std::memory_order_relaxed);
  }
  out.objects.store(objects, std::memory_order_relaxed);
  out.data_pages.store(pages, std::memory_order_relaxed);
  out.relocations.store(relocations, std::memory_order_relaxed);
  out.bytes_stored.store(bytes, std::memory_order_relaxed);
  return out;
}

Status ShardedDatabase::FlushPools() {
  for (auto& shard : shards_) {
    OCB_RETURN_NOT_OK(shard->FlushPools());
  }
  return Status::OK();
}

Status ShardedDatabase::PrefetchObjects(std::span<const Oid> oids) {
  if (oids.size() < 2) return Status::OK();
  std::vector<std::vector<Oid>> per_shard(router_.shard_count());
  for (Oid oid : oids) {
    per_shard[router_.ShardOf(oid)].push_back(oid);
  }
  Status first_error;
  for (uint32_t k = 0; k < router_.shard_count(); ++k) {
    if (per_shard[k].empty()) continue;
    Status st = shards_[k]->PrefetchObjects(per_shard[k]);
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  return first_error;
}

Status SaveShardedSnapshot(ShardedDatabase* db, const std::string& path) {
  for (uint32_t k = 0; k < db->shard_count(); ++k) {
    OCB_RETURN_NOT_OK(
        SaveSnapshot(db->shard(k), path + Format(".shard%u", k)));
  }
  return Status::OK();
}

Status LoadShardedSnapshot(ShardedDatabase* db, const std::string& path) {
  for (uint32_t k = 0; k < db->shard_count(); ++k) {
    OCB_RETURN_NOT_OK(
        LoadSnapshot(db->shard(k), path + Format(".shard%u", k)));
  }
  // Shards now hold the loaded schema; refresh the master descriptors.
  db->SetMasterSchemaFromShards();
  return Status::OK();
}

}  // namespace ocb
