/// \file sharded_database.h
/// \brief N independent Database shards behind one object-database
///        facade, with two-phase cross-shard commit.
///
/// Past per-page latching (PR 3) the remaining single-store bottlenecks
/// are the singletons: one lock-manager mutex, one catalog latch, one
/// version-store commit mutex. Sharding removes them by *partitioning
/// the oid space* across N complete Databases — each with its own
/// LockManager, VersionStore, BufferPool and DiskSim — so transactions
/// that touch different shards share no synchronization at all below the
/// coordinator.
///
///   * Routing is hash-by-oid (ShardRouter: (oid-1) mod N), paired with
///     strided per-shard oid allocation so every oid routes to the shard
///     that created it. Creation round-robins across shards.
///   * Single-object operations (Get/Peek/Put/Create/CrossLink) forward
///     to the owning shard verbatim.
///   * Multi-object operations (SetReference, DeleteObject) delegate to
///     the owning shard when the whole footprint is local, and otherwise
///     are choreographed here: X-lock the footprint through each shard's
///     lock manager, validate before the first write, then apply per
///     shard via PutObject (which undo-logs and version-publishes per
///     shard, keeping rollback and MVCC sound).
///   * Commit/abort run through the CrossShardCoordinator: single-shard
///     transactions take a fast path with no coordinator state;
///     multi-shard writers run two-phase commit stamped with one global
///     timestamp, and MVCC readers pin one global snapshot point across
///     every shard — see cross_shard_coordinator.h for the consistency
///     argument.
///
/// Reorganizers and snapshot save/load quiesce **per shard**
/// (shard(k) + Database::QuiesceGuard): rewriting shard k's physical
/// layout never stalls traffic on the other shards. Cross-shard
/// deadlocks — invisible to every per-shard wait-for DFS — are refused
/// by the coordinator's GlobalWaitGraph, which every shard's lock
/// manager registers its blocking waits in (sharded transactions carry
/// one deployment-wide txn id across their per-shard contexts for
/// exactly this); the lowered per-shard lock wait timeout survives only
/// as the backstop for cycles the graph's edge approximation misses.
///
/// The complete ordering rules (locks before latches, coordinator commit
/// mutex before shard commit mutexes, ascending-oid cross-shard lock
/// acquisition) live in ARCHITECTURE.md §"Ordering rules".

#ifndef OCB_SHARDING_SHARDED_DATABASE_H_
#define OCB_SHARDING_SHARDED_DATABASE_H_

#include <atomic>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "oodb/database.h"
#include "sharding/cross_shard_coordinator.h"
#include "sharding/shard_router.h"
#include "sharding/sharded_transaction.h"
#include "util/status.h"

namespace ocb {

template <typename DB>
class SessionT;
template <typename DB>
class TransactionT;

/// \brief The sharded OODB: Database's API surface over N shards.
class ShardedDatabase {
 public:
  /// \param base Options applied to every shard, except: the buffer pool
  ///        is split evenly (total frames ≈ base.buffer_pool_pages, so
  ///        SHARDN sweeps compare equal memory), the oid progression is
  ///        set per shard to match the router, the lock wait timeout is
  ///        lowered (cross-shard deadlock backstop), and a non-empty
  ///        backing_file gets a per-shard suffix.
  ShardedDatabase(const StorageOptions& base, uint32_t shard_count);

  ~ShardedDatabase();

  ShardedDatabase(const ShardedDatabase&) = delete;
  ShardedDatabase& operator=(const ShardedDatabase&) = delete;

  uint32_t shard_count() const { return router_.shard_count(); }
  const ShardRouter& router() const { return router_; }
  Database* shard(uint32_t k) { return shards_[k].get(); }
  CrossShardCoordinator* coordinator() { return coordinator_.get(); }

  /// Installs the schema on every shard (each maintains its own extents —
  /// the members it owns) and keeps a master copy for descriptor lookups.
  void SetSchema(Schema schema);

  /// Master schema: class descriptors are authoritative, extents are NOT
  /// maintained here — use ExtentSnapshot for membership.
  Schema& schema() { return schema_; }
  const Schema& schema() const { return schema_; }

  // --- Transaction lifecycle ---

  /// Starts a sharded transaction. Writers acquire per-shard contexts
  /// lazily on first touch; with \p read_only (and MVCC enabled) one
  /// global snapshot point is pinned and a ReadView opened on every
  /// shard, so all reads resolve against one cross-shard instant.
  ///
  /// \p cc selects the concurrency-control algorithm for writers (see
  /// CcAlgorithm; ignored for readers). Snapshot-isolation writers get
  /// *eager* contexts — one per shard, every view pinned at one global
  /// snapshot point under the coordinator's commit mutex, exactly like a
  /// reader (lazy opening would race per-shard version GC). Silo-OCC
  /// writers keep lazy contexts: their reads resolve committed-latest,
  /// pinning nothing. 2PC prepare validates SI/OCC participants
  /// (Database::PrepareTxn → FinalizeCc) so a validation loss aborts the
  /// whole sharded transaction with Status::WriteConflict.
  std::unique_ptr<ShardedTransaction> BeginTxn(
      bool read_only = false,
      CcAlgorithm cc = CcAlgorithm::kStrict2PL);

  /// Commits via the coordinator: fast path for a single writer shard,
  /// two-phase commit for several. Status::Aborted means the commit
  /// itself was aborted (2PC failpoint) and everything rolled back.
  Status CommitTxn(ShardedTransaction* txn);

  /// Aborts every participant shard (per-shard undo-log rollback).
  Status AbortTxn(ShardedTransaction* txn);

  /// CommitTxn through the coordinator's group-commit pipeline (the
  /// Session API's commit path): fast-path members coalesce their
  /// in-flight-registry traffic, 2PC members share ONE coordinator
  /// commit-mutex section for the whole batch. Read-only transactions
  /// bypass the pipeline.
  Status CommitTxnGrouped(ShardedTransaction* txn);

  /// Group-commit batch cap, accumulation window / counters
  /// (coordinator pipeline).
  void SetGroupCommitMaxBatch(uint32_t n);
  void SetGroupCommitWindow(uint64_t nanos);
  GroupCommitStats group_commit_stats() const;

  /// Deadlock victim policy, applied to every shard's lock manager.
  void SetDeadlockPolicy(DeadlockPolicy policy);
  DeadlockPolicy deadlock_policy() const;

  /// Opens a Session on this engine (see engine/session.h).
  SessionT<ShardedDatabase> OpenSession();

  // --- Object operations (legacy, non-transactional path) ---
  //
  // Like Database: the public forms are the single-threaded legacy path;
  // transactional operations go through Session/Transaction
  // (engine/session.h), which drives the private overloads below.

  /// Creates an object on the next shard in round-robin order; its oid
  /// routes back to that shard by the allocation contract.
  Result<Oid> CreateObject(ClassId class_id) {
    return CreateObject(nullptr, class_id);
  }

  Result<Object> GetObject(Oid oid) { return GetObject(nullptr, oid); }

  Result<Object> PeekObject(Oid oid);

  /// Database::SetReference semantics across shards (symmetric backref
  /// maintenance, validate-before-write, NoSpace on a full backref page).
  Status SetReference(Oid from, uint32_t slot, Oid to) {
    return SetReference(nullptr, from, slot, to);
  }

  /// Link crossing routed to the *target's* shard: its observer records
  /// the crossing (cross-shard crossings are charged to the destination).
  Result<Object> CrossLink(Oid from, Oid to, RefTypeId type, bool reverse) {
    return CrossLink(nullptr, from, to, type, reverse);
  }

  Status PutObject(const Object& object) { return PutObject(nullptr, object); }

  /// Database::DeleteObject semantics across shards: the whole neighbor-
  /// hood is X-locked, remote neighbors are unlinked here, then the
  /// owning shard deletes the record and patches its local neighbors.
  Status DeleteObject(Oid oid) { return DeleteObject(nullptr, oid); }

  /// Attaches \p observer to every shard. Per-shard callbacks are
  /// serialized per shard only, so an observer shared across shards must
  /// tolerate concurrent invocation — clustering policies should instead
  /// be attached per shard (shard(k)->SetObserver), matching per-shard
  /// reorganization.
  void SetObserver(AccessObserver* observer);

  /// Legacy observer transaction brackets, forwarded to every shard.
  void BeginTransaction();
  void EndTransaction();

  /// Cold cache on every shard.
  Status ColdRestart();

  void SetMvccEnabled(bool on);
  bool mvcc_enabled() const {
    return mvcc_enabled_.load(std::memory_order_relaxed);
  }

  /// Forwards the serialize-physical compatibility mode to every shard.
  void SetSerializedPhysical(bool on);

  uint64_t object_count() const;

  /// Class extent across all shards (ascending oid order, so root pools
  /// and Scan walks are identical for every shard count).
  std::vector<Oid> ExtentSnapshot(ClassId class_id);

  /// Snapshot-consistent extent: per-shard membership filtered through
  /// each shard's version store at \p txn's global snapshot point (see
  /// Database::ExtentSnapshot(ClassId, TransactionContext*)). SI writers
  /// filter like readers; OCC transactions record each shard's extent
  /// version for commit-time phantom validation (non-const for exactly
  /// that reason).
  std::vector<Oid> ExtentSnapshot(ClassId class_id, ShardedTransaction* txn);

  // --- Write-ahead log (real durability; see src/wal/) ---

  /// True when StorageOptions::wal_path was set and every log opened:
  /// shard k logs to "<wal_path>.shard<k>", the coordinator's 2PC commit
  /// markers go to "<wal_path>.coord".
  bool wal_enabled() const { return coord_wal_ != nullptr; }

  /// OK, or why some log configured via StorageOptions::wal_path could
  /// not be opened (first failure across the coordinator log and the
  /// shards). Writer commits fail with this status instead of
  /// acknowledging without durability.
  Status wal_open_status() const;

  /// All live oids across all shards, ascending.
  std::vector<Oid> LiveOidsSnapshot();

  bool ContainsObject(Oid oid);

  /// One version-GC pass on every shard; returns versions reclaimed.
  uint64_t CollectVersionGarbage();

  // --- Uniform engine surface (see oodb/database.h) ---

  using TxnHandle = ShardedTransaction;

  /// Simulated time: think latency plus every shard's charged I/O.
  uint64_t SimNowNanos() const;
  void AdvanceSimClock(uint64_t nanos) { think_clock_.Advance(nanos); }

  IoCounters IoCountersFor(IoScope scope) const;
  IoScope io_scope() const { return shards_[0]->io_scope(); }
  void SetIoScope(IoScope scope);
  BufferPoolStats PoolStats() const;
  ObjectStoreStats StoreStats() const;
  Status FlushPools();

  /// Advisory batch cache-warm (see Database::PrefetchObjects):
  /// partitions \p oids by owning shard and issues each shard's misses as
  /// one overlapped batch. Every shard's pool shares the deployment's one
  /// I/O worker group, so the batches overlap across shards too.
  Status PrefetchObjects(std::span<const Oid> oids);

  const StorageOptions& options() const { return base_options_; }

  /// Re-adopts shard 0's schema descriptors as the master copy —
  /// LoadShardedSnapshot calls this after per-shard loads installed the
  /// persisted schema directly on the shards.
  void SetMasterSchemaFromShards() { schema_ = shards_[0]->schema(); }

 private:
  // The session layer is the only public route to the transactional
  // object operations (same friendship as on Database).
  template <typename DB>
  friend class SessionT;
  template <typename DB>
  friend class TransactionT;

  // --- Transactional object operations (session-internal) ---
  Result<Oid> CreateObject(ShardedTransaction* txn, ClassId class_id);
  Result<Object> GetObject(ShardedTransaction* txn, Oid oid);
  Status SetReference(ShardedTransaction* txn, Oid from, uint32_t slot,
                      Oid to);
  Result<Object> CrossLink(ShardedTransaction* txn, Oid from, Oid to,
                           RefTypeId type, bool reverse);
  Status PutObject(ShardedTransaction* txn, const Object& object);
  Status DeleteObject(ShardedTransaction* txn, Oid oid);

  /// Batched read (Transaction::GetMany): one ascending-oid S-lock pass
  /// across the owning shards' managers, then per-oid reads in input
  /// order. MVCC readers resolve through their per-shard ReadViews.
  Status GetObjectsBatched(ShardedTransaction* txn,
                           std::span<const Oid> oids,
                           std::vector<Object>* out);

  /// Batched write-footprint acquisition (Transaction::Apply): X-locks
  /// in ascending global oid order through each owner's manager.
  Status AcquireWriteFootprint(ShardedTransaction* txn,
                               std::vector<Oid> oids);

  /// Lazily opens shard \p k's participant context (nullptr passthrough
  /// on the legacy path).
  TransactionContext* ContextFor(ShardedTransaction* txn, uint32_t k);

  /// Rejects writes through read-only sharded transactions.
  Status RefuseReadOnly(const ShardedTransaction* txn, const char* op);

  /// Rejects SetReference/DeleteObject under SI/OCC (NotSupported): their
  /// cross-shard choreography locks-then-writes eagerly, which the
  /// buffered-write algorithms cannot express (same refusal as
  /// Database::RefuseNonLocking on the single store).
  Status RefuseNonLocking(const ShardedTransaction* txn, const char* op);

  /// Rejects object operations through a finished sharded transaction.
  Status RefuseFinished(const ShardedTransaction* txn, const char* op);

  StorageOptions base_options_;
  ShardRouter router_;
  std::vector<std::unique_ptr<Database>> shards_;
  /// Coordinator commit-marker log ("<wal_path>.coord"). Declared before
  /// coordinator_ (which holds a raw pointer to it) so the coordinator
  /// is destroyed first.
  std::unique_ptr<wal::WalWriter> coord_wal_;
  Status coord_wal_status_;
  std::unique_ptr<CrossShardCoordinator> coordinator_;
  /// Coordinator gauge-callback registrations (db.coord.*). Declared
  /// after coordinator_ so it is destroyed (unregistered) first; the
  /// shards' own gauges are owned by each Database.
  obs::ScopedCallbacks obs_callbacks_;
  Schema schema_;
  SimClock think_clock_;
  std::atomic<uint64_t> create_cursor_{0};  ///< Round-robin creation.
  std::atomic<TxnId> next_txn_id_{1};       ///< Deployment-wide txn ids.
  std::atomic<bool> mvcc_enabled_{true};
};

/// \brief Saves every shard to "<path>.shard<k>" (generate-once campaign
/// workflows). Same contract as SaveSnapshot: no transaction may hold
/// locks; each shard quiesces individually.
Status SaveShardedSnapshot(ShardedDatabase* db, const std::string& path);

/// \brief Loads "<path>.shard<k>" into every shard of a freshly
/// constructed ShardedDatabase with the *same shard count* the snapshot
/// was saved with, then refreshes the master schema.
Status LoadShardedSnapshot(ShardedDatabase* db, const std::string& path);

}  // namespace ocb

#endif  // OCB_SHARDING_SHARDED_DATABASE_H_
