/// \file cross_shard_coordinator.h
/// \brief Two-phase commit and the global timestamp axis of a
///        ShardedDatabase.
///
/// Each Database shard is a complete store with its own lock manager and
/// version store, so intra-shard isolation needs no help. What the
/// coordinator adds is the *cross-shard* story:
///
///   * **One timestamp axis.** Every commit/abort in a sharded deployment
///     is stamped with a timestamp drawn from the coordinator's single
///     monotonic counter (never from a shard's local one), so "state as
///     of S" is meaningful across shards and a reader's ReadViews — all
///     pinned at one global S — compose into one consistent snapshot.
///   * **Two-phase commit for multi-shard writers.** Prepare freezes
///     every writer participant (writes applied, locks held, only
///     commit/abort legal); then, under the coordinator's commit mutex,
///     one timestamp T is drawn and stamped into every participant's
///     version store. OpenGlobalSnapshot takes the same mutex, so no
///     reader can pin an S >= T while any shard's half of commit T is
///     still pending: a snapshot sees all of a cross-shard commit or
///     none of it.
///   * **Fast path.** Transactions with at most one *writer* participant
///     skip 2PC entirely — no prepare, no commit-mutex serialization.
///     Read-only participants of any transaction commit plainly (they
///     have nothing to stamp). What the fast path cannot skip is
///     snapshot atomicity: its timestamp is drawn *and registered as
///     in-flight* in one step, and OpenGlobalSnapshot pins S strictly
///     below every in-flight commit — otherwise a reader could pin
///     S >= ts while the commit's versions are still being stamped and
///     watch it flip from invisible (pending = +infinity) to visible
///     (ts <= S) mid-snapshot, seeing half a multi-object commit.
///
/// Cross-shard *deadlocks* are invisible to the per-shard wait-for
/// graphs, so the coordinator owns a deployment-wide GlobalWaitGraph
/// (wait_graph.h) that every shard's lock manager registers its blocking
/// waits in: cycle-closing waits are refused with Status::Aborted, the
/// same newcomer-victim policy as intra-shard detection. The per-shard
/// lock wait timeout (StorageOptions::lock_wait_timeout_nanos, lowered
/// by ShardedDatabase) remains only as the backstop for cycles the
/// graph's conflicting-edges-only approximation cannot express.

#ifndef OCB_SHARDING_CROSS_SHARD_COORDINATOR_H_
#define OCB_SHARDING_CROSS_SHARD_COORDINATOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <set>
#include <vector>

#include "concurrency/commit_pipeline.h"
#include "concurrency/wait_graph.h"
#include "oodb/database.h"
#include "sharding/sharded_transaction.h"
#include "util/status.h"
#include "util/sync.h"

namespace ocb {

/// Aggregate coordinator counters (monotonic; read via stats()).
struct CrossShardStats {
  uint64_t fast_path_commits = 0;   ///< Commits with <= 1 writer shard.
  uint64_t cross_shard_commits = 0; ///< Two-phase commits.
  uint64_t prepares = 0;            ///< Participant PrepareTxn calls.
  uint64_t aborts = 0;              ///< Coordinator-driven aborts.
  uint64_t injected_aborts = 0;     ///< Failpoint-triggered 2PC aborts.
  uint64_t snapshots_opened = 0;    ///< Global read snapshots pinned.
  uint64_t twopc_nanos = 0;         ///< Wall time inside 2PC paths.
};

/// \brief Issues global timestamps and drives sharded commit/abort.
class CrossShardCoordinator {
 public:
  explicit CrossShardCoordinator(std::vector<Database*> shards)
      : shards_(std::move(shards)) {}

  CrossShardCoordinator(const CrossShardCoordinator&) = delete;
  CrossShardCoordinator& operator=(const CrossShardCoordinator&) = delete;

  /// Latest timestamp handed out on the global axis.
  CommitTs latest_ts() const {
    return next_ts_.load(std::memory_order_relaxed);
  }

  /// Pins one global snapshot point S and opens a ReadView at S on every
  /// shard, filling \p txn's per-shard contexts. Serializes against
  /// multi-shard commit stamping (commit mutex), so S can never split a
  /// cross-shard commit.
  void OpenGlobalSnapshot(ShardedTransaction* txn);

  /// OpenGlobalSnapshot's analog for a snapshot-isolation *writer*: pins
  /// one global snapshot point S and opens an SI participant context at
  /// S on every shard (Database::BeginSiWriterTxnAt). Eager for the same
  /// reason readers are — every shard's view must be registered before
  /// any shard's GC can advance past S.
  void OpenGlobalSiContexts(ShardedTransaction* txn);

  /// Commits \p txn: plain per-shard commit for readers, fast path for a
  /// single writer shard, two-phase commit for several. On the 2PC path
  /// a failpoint (SetCommitFailpoint) may inject an abort between
  /// prepare and commit, in which case every participant rolls back and
  /// Status::Aborted is returned.
  Status Commit(ShardedTransaction* txn);

  /// Commit through the group-commit pipeline: committing transactions
  /// form batches (commit_pipeline.h) whose leader coalesces the
  /// coordinator's serialized work — ONE in-flight-registry pass draws
  /// every fast-path member's timestamp, ONE commit-mutex section stamps
  /// every 2PC member. Per-member semantics (prepare, failpoint, abort
  /// isolation) are identical to Commit: an injected abort kills only
  /// the member it fires for, the rest of the batch commits.
  Status CommitGrouped(ShardedTransaction* txn);

  /// Group-commit batch cap, accumulation window / pipeline counters.
  void SetGroupCommitMaxBatch(uint32_t n) { pipeline_.set_max_batch(n); }
  void SetGroupCommitWindow(uint64_t nanos) {
    pipeline_.set_window_nanos(nanos);
  }
  GroupCommitStats group_commit_stats() const { return pipeline_.stats(); }

  /// Aborts \p txn on every participant shard (one globally drawn seal
  /// timestamp for all writer participants). Idempotent: aborting an
  /// already-aborted transaction returns OK.
  Status Abort(ShardedTransaction* txn);

  /// Test hook: when set and returning true, a two-phase commit aborts
  /// after every participant prepared and before any shard is stamped —
  /// the window whose atomicity the 2PC tests pin down. Set/clear only
  /// while no transaction is committing.
  void SetCommitFailpoint(std::function<bool()> failpoint) {
    commit_failpoint_ = std::move(failpoint);
  }

  /// The deployment-wide wait-for graph every shard's lock manager is
  /// wired to (ShardedDatabase attaches it at construction) — the
  /// cross-shard deadlock detector.
  GlobalWaitGraph* wait_graph() { return &wait_graph_; }

  /// Attaches the coordinator's marker log ("<wal_path>.coord", owned by
  /// the ShardedDatabase). A 2PC commit appends its participants' redo
  /// records, forces the participating shards' logs, appends one commit
  /// marker here — all before any participant lock is released — and
  /// forces the marker before the ack. Recovery replays a kCoordinated
  /// participant record only if its marker is present, which is what
  /// makes a cross-shard commit recover on all shards or none.
  void AttachWal(wal::WalWriter* coord_wal) { coord_wal_ = coord_wal; }
  wal::WalWriter* coord_wal() { return coord_wal_; }

  /// Advances the global timestamp axis to at least \p ts. Recovery calls
  /// this after replay so new commits stamp past every replayed one; call
  /// only while no transaction is in flight.
  void AdvanceTimestampTo(CommitTs ts);

  CrossShardStats stats() const;

 private:
  /// Draws the next timestamp on the global axis.
  CommitTs NextTimestamp() {
    return next_ts_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Draws a fast-path commit timestamp and marks it in-flight (one
  /// atomic step under inflight_mu_); EndFastPathCommit retires it once
  /// every version is stamped. OpenGlobalSnapshot pins below the oldest
  /// in-flight timestamp, which is what keeps fast-path stamping — done
  /// outside commit_mu_ — invisible-or-complete to every snapshot.
  CommitTs BeginFastPathCommit();
  void EndFastPathCommit(CommitTs ts);

  /// Rolls every participant back (writers sealed at one global
  /// timestamp) and marks \p txn aborted. Returns the first rollback
  /// failure, OK otherwise.
  Status AbortParticipants(ShardedTransaction* txn);

  /// Runs Database::FinalizeCc on every participant context of a non-
  /// read-only transaction (no-op per context under 2PL or when already
  /// finalized): SI/OCC validation and buffered-write apply happen here,
  /// BEFORE classification and WAL append — the redo record is built
  /// from the undo log the apply phase populates, and OCC read sets on
  /// pure-read participant shards must validate too. Contexts iterate in
  /// ascending shard order and each shard's write set locks in ascending
  /// oid order, so concurrent finalizers cannot deadlock each other. On
  /// a validation loss every participant is rolled back and the
  /// WriteConflict is returned; the transaction is left aborted.
  Status FinalizeParticipants(ShardedTransaction* txn);

  /// 2PC durability choreography for one transaction (caller holds
  /// commit_mu_, coord_wal_ attached): append every writer participant's
  /// redo record, force the participating shards' logs, then append —
  /// not force — the commit marker. Marker-present therefore implies
  /// every participant record is durable; the caller forces the marker
  /// (after the mutex, before the ack).
  Status LogCoordinatedCommit(ShardedTransaction* txn,
                              const std::vector<uint32_t>& writers,
                              CommitTs ts);

  /// Group-commit batch body (pipeline leader): classifies members,
  /// batches the fast-path registry traffic and the 2PC commit-mutex
  /// section.
  void CommitBatch(const std::vector<CommitPipeline::Request*>& batch);

  /// Charges \p batches simulated commit-record forces
  /// (StorageOptions::commit_log_force_nanos) to the deployment log.
  void ChargeLogForce(uint64_t batches);

  std::vector<Database*> shards_;
  std::atomic<CommitTs> next_ts_{0};

  /// Group-commit pipeline behind CommitGrouped.
  CommitPipeline pipeline_{
      [this](const std::vector<CommitPipeline::Request*>& batch) {
        CommitBatch(batch);
      }};

  /// Spans every multi-shard stamping loop; OpenGlobalSnapshot takes it
  /// too. Ordering: this mutex is acquired *before* any shard's
  /// version-store commit mutex, never after.
  Mutex commit_mu_{lockdep::kCoordinatorCommitClass};

  /// Fast-path commits whose timestamps are drawn but not yet fully
  /// stamped (guarded by inflight_mu_, a leaf mutex). std::set: the
  /// snapshot path needs the minimum.
  Mutex inflight_mu_{lockdep::kCoordinatorInflightClass};
  std::set<CommitTs> inflight_commits_ OCB_GUARDED_BY(inflight_mu_);

  std::function<bool()> commit_failpoint_;
  GlobalWaitGraph wait_graph_;

  /// 2PC commit-marker log, owned by the ShardedDatabase (see AttachWal);
  /// nullptr when real durability is off.
  wal::WalWriter* coord_wal_ = nullptr;

  mutable std::atomic<uint64_t> fast_path_commits_{0};
  mutable std::atomic<uint64_t> cross_shard_commits_{0};
  mutable std::atomic<uint64_t> prepares_{0};
  mutable std::atomic<uint64_t> aborts_{0};
  mutable std::atomic<uint64_t> injected_aborts_{0};
  mutable std::atomic<uint64_t> snapshots_opened_{0};
  mutable std::atomic<uint64_t> twopc_nanos_{0};
};

}  // namespace ocb

#endif  // OCB_SHARDING_CROSS_SHARD_COORDINATOR_H_
