/// \file shard_router.h
/// \brief Oid-space partitioning function of the ShardedDatabase.
///
/// A ShardedDatabase splits the object space across N independent
/// Database shards; the router is the pure function that says which shard
/// *owns* an oid. Ownership must be recomputable from the oid alone (no
/// directory lookups on the hot path) and stable for the lifetime of the
/// deployment, so routing is hash-by-oid over the identity hash:
///
///     ShardOf(oid) = (oid - 1) mod N
///
/// paired with the allocation side of the contract: shard k's ObjectStore
/// allocates oids from the arithmetic progression k + 1, k + 1 + N, …
/// (StorageOptions::first_oid / oid_stride), so every oid a shard creates
/// routes back to that shard by construction. Because ShardedDatabase
/// round-robins object creation across shards, the *global* oid sequence
/// stays dense (1, 2, 3, …) regardless of N — the same generation seed
/// produces the identical logical object graph at every shard count,
/// which is what makes SHARDN sweeps an apples-to-apples comparison.
///
/// Directory-based routing (movable ownership, rebalancing) is a
/// deliberate non-goal here and a recorded ROADMAP follow-on; it would
/// slot in behind this same interface.

#ifndef OCB_SHARDING_SHARD_ROUTER_H_
#define OCB_SHARDING_SHARD_ROUTER_H_

#include <cstdint>

#include "storage/types.h"

namespace ocb {

/// \brief Stateless oid → shard mapping (modulo the shard count).
class ShardRouter {
 public:
  explicit ShardRouter(uint32_t shard_count)
      : shard_count_(shard_count < 1 ? 1 : shard_count) {}

  uint32_t shard_count() const { return shard_count_; }

  /// Owning shard of \p oid. kInvalidOid routes to shard 0, whose store
  /// reports NotFound — the same surface a single Database presents for
  /// an invalid oid.
  uint32_t ShardOf(Oid oid) const {
    if (oid == kInvalidOid) return 0;
    return static_cast<uint32_t>((oid - 1) % shard_count_);
  }

  /// First oid of shard \p shard's allocation progression.
  Oid FirstOidFor(uint32_t shard) const { return shard + 1; }

  /// Step of every shard's allocation progression.
  uint64_t OidStride() const { return shard_count_; }

 private:
  uint32_t shard_count_;
};

}  // namespace ocb

#endif  // OCB_SHARDING_SHARD_ROUTER_H_
