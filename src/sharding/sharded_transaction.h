/// \file sharded_transaction.h
/// \brief Transaction handle of the ShardedDatabase.
///
/// A sharded transaction is a bundle of per-shard TransactionContexts —
/// one for every shard the transaction has touched, created lazily on
/// first touch for writers and eagerly on every shard for MVCC readers
/// (a reader's per-shard ReadViews must all be registered at the global
/// snapshot point *before* any read, or a shard's GC could reclaim
/// history the reader still needs).
///
/// Like TransactionContext, a ShardedTransaction is single-threaded:
/// exactly one client thread drives it, so the bundle needs no internal
/// synchronization. The accounting accessors (lock_wait_nanos,
/// snapshot_reads) sum over the participant contexts; shards_touched /
/// cross_shard / twopc_nanos feed the bench's cross-shard-fraction and
/// 2PC-overhead metrics.

#ifndef OCB_SHARDING_SHARDED_TRANSACTION_H_
#define OCB_SHARDING_SHARDED_TRANSACTION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "concurrency/transaction_context.h"
#include "concurrency/version_store.h"

namespace ocb {

class ShardedDatabase;
class CrossShardCoordinator;

/// \brief State of one in-flight sharded transaction.
class ShardedTransaction {
 public:
  ShardedTransaction(TxnId id, uint32_t shard_count, bool read_only)
      : id_(id), contexts_(shard_count), read_only_(read_only) {}

  ShardedTransaction(const ShardedTransaction&) = delete;
  ShardedTransaction& operator=(const ShardedTransaction&) = delete;

  /// Deployment-wide transaction id; every participant context carries
  /// the same one (the GlobalWaitGraph's identity — see wait_graph.h).
  TxnId id() const { return id_; }

  bool read_only() const { return read_only_; }

  /// Concurrency-control algorithm every participant context runs under
  /// (one algorithm per transaction; see CcAlgorithm).
  CcAlgorithm cc() const { return cc_; }

  TxnState state() const { return state_; }
  bool active() const { return state_ == TxnState::kActive; }
  bool prepared() const { return state_ == TxnState::kPrepared; }

  /// Global snapshot point (read-only transactions; 0 otherwise). Every
  /// participant shard's ReadView is pinned at this one timestamp.
  CommitTs snapshot_ts() const { return snapshot_ts_; }

  /// Participant context on \p shard, or nullptr if untouched.
  TransactionContext* context(uint32_t shard) const {
    return contexts_[shard].get();
  }

  /// Number of shards this transaction actually *used* — locked, wrote
  /// or snapshot-read on. Mere context existence doesn't count: MVCC
  /// readers open a context on every shard up front (the ReadViews must
  /// all pin before any read), which would otherwise tag every snapshot
  /// reader as maximally cross-shard. Commit/abort releases the locks
  /// the count is derived from, so the coordinator freezes it on entry;
  /// after finish this returns the frozen footprint.
  uint32_t shards_touched() const {
    if (touched_frozen_ != kUnfrozen) return touched_frozen_;
    uint32_t n = 0;
    for (const auto& ctx : contexts_) {
      if (ctx == nullptr) continue;
      // has_writes() covers both in-place (undo-logged) and still-
      // buffered SI/OCC writes; OCC read sets count like S locks.
      if (!ctx->held_locks().empty() || ctx->has_writes() ||
          !ctx->occ_read_set().empty() || ctx->snapshot_reads() > 0) {
        ++n;
      }
    }
    return n;
  }

  /// True when the footprint spans more than one shard (the bench's
  /// cross-shard-fraction numerator).
  bool cross_shard() const { return shards_touched() > 1; }

  /// Wall time spent inside the coordinator's two-phase commit/abort for
  /// this transaction (0 on the single-shard fast path — which performs
  /// no prepare and touches no coordinator state).
  uint64_t twopc_nanos() const { return twopc_nanos_; }

  /// Cumulative lock-wait time over all participant shards.
  uint64_t lock_wait_nanos() const {
    uint64_t total = 0;
    for (const auto& ctx : contexts_) {
      if (ctx != nullptr) total += ctx->lock_wait_nanos();
    }
    return total;
  }

  /// Reads served through the per-shard ReadViews.
  uint64_t snapshot_reads() const {
    uint64_t total = 0;
    for (const auto& ctx : contexts_) {
      if (ctx != nullptr) total += ctx->snapshot_reads();
    }
    return total;
  }

 private:
  friend class ShardedDatabase;      ///< Creates contexts, drives state.
  friend class CrossShardCoordinator;  ///< Commit/abort + 2PC accounting.

  /// Sentinel for "still in flight, compute the footprint live".
  static constexpr uint32_t kUnfrozen = ~uint32_t{0};

  /// Records the live footprint permanently (coordinator, on the way
  /// into commit/abort, before any lock is released).
  void FreezeTouched() {
    if (touched_frozen_ == kUnfrozen) touched_frozen_ = shards_touched();
  }

  TxnId id_ = kInvalidTxnId;
  std::vector<std::unique_ptr<TransactionContext>> contexts_;
  bool read_only_ = false;
  CcAlgorithm cc_ = CcAlgorithm::kStrict2PL;
  TxnState state_ = TxnState::kActive;
  CommitTs snapshot_ts_ = 0;
  uint64_t twopc_nanos_ = 0;
  uint32_t touched_frozen_ = kUnfrozen;
};

}  // namespace ocb

#endif  // OCB_SHARDING_SHARDED_TRANSACTION_H_
