#include "sharding/cross_shard_coordinator.h"

#include <chrono>

#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "wal/killpoint.h"
#include "wal/wal_writer.h"

namespace ocb {

namespace {

uint64_t NanosSince(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

/// Registry histogram of the per-txn 2PC section time (prepare through
/// stamp). Same measurement as twopc_nanos_ — two sinks, one clock read.
void RecordTwopcSection(uint64_t nanos) {
#ifndef OCB_OBS_DISABLED
  static obs::LatencyHistogram* h =
      obs::MetricsRegistry::Global().GetHistogram("twopc.section");
  h->Record(nanos);
#else
  (void)nanos;
#endif
}

}  // namespace

void CrossShardCoordinator::ChargeLogForce(uint64_t batches) {
  // The deployment keeps one (simulated) commit log; shard 0's clock
  // stands in for it. Shards' own CommitTxnAt calls never charge (they
  // run under external timestamps), so the force is paid exactly once
  // per commit batch.
  const uint64_t force = shards_[0]->options().commit_log_force_nanos;
  if (force > 0 && batches > 0) {
    shards_[0]->AdvanceSimClock(force * batches);
  }
}

CommitTs CrossShardCoordinator::BeginFastPathCommit() {
  MutexLock lock(inflight_mu_);
  const CommitTs ts = NextTimestamp();
  inflight_commits_.insert(ts);
  return ts;
}

void CrossShardCoordinator::EndFastPathCommit(CommitTs ts) {
  MutexLock lock(inflight_mu_);
  inflight_commits_.erase(ts);
}

void CrossShardCoordinator::AdvanceTimestampTo(CommitTs ts) {
  CommitTs cur = next_ts_.load(std::memory_order_relaxed);
  while (cur < ts && !next_ts_.compare_exchange_weak(
                         cur, ts, std::memory_order_relaxed)) {
  }
}

Status CrossShardCoordinator::LogCoordinatedCommit(
    ShardedTransaction* txn, const std::vector<uint32_t>& writers,
    CommitTs ts) {
  for (uint32_t k : writers) {
    OCB_RETURN_NOT_OK(
        shards_[k]->WalAppendTxn(txn->contexts_[k].get(), ts,
                                 /*coordinated=*/true));
  }
  for (uint32_t k : writers) {
    OCB_RETURN_NOT_OK(shards_[k]->WalForce());
  }
  wal::WalRecord marker;
  marker.type = wal::WalRecordType::kCoordMarker;
  marker.txn_id = txn->id();
  marker.commit_ts = ts;
  return coord_wal_->Append(marker);
}

void CrossShardCoordinator::OpenGlobalSnapshot(ShardedTransaction* txn) {
  // Holding commit_mu_ across every per-shard registration is what makes
  // S a consistent cut against *2PC* commits: they stamp all their
  // shards under this same mutex, so S either precedes all of commit T's
  // stamps or follows all of them — never lands in between.
  MutexLock lock(commit_mu_);
  // Fast-path commits stamp outside commit_mu_, so additionally pin S
  // strictly below the oldest timestamp still being stamped: a commit
  // with ts <= S is therefore always *fully* stamped (it retired itself
  // from the in-flight set), and a half-stamped one is simply not yet
  // visible — the reader sees its pre-images on every shard.
  CommitTs s;
  {
    MutexLock inflight(inflight_mu_);
    s = next_ts_.load(std::memory_order_relaxed);
    if (!inflight_commits_.empty()) {
      s = std::min(s, *inflight_commits_.begin() - 1);
    }
  }
  for (size_t k = 0; k < shards_.size(); ++k) {
    txn->contexts_[k] = shards_[k]->BeginSnapshotTxnAt(s, txn->id());
  }
  txn->snapshot_ts_ = s;
  snapshots_opened_.fetch_add(1, std::memory_order_relaxed);
}

void CrossShardCoordinator::OpenGlobalSiContexts(ShardedTransaction* txn) {
  // Same consistent-cut choreography as OpenGlobalSnapshot — an SI
  // writer's reads are a reader's reads until commit.
  MutexLock lock(commit_mu_);
  CommitTs s;
  {
    MutexLock inflight(inflight_mu_);
    s = next_ts_.load(std::memory_order_relaxed);
    if (!inflight_commits_.empty()) {
      s = std::min(s, *inflight_commits_.begin() - 1);
    }
  }
  for (size_t k = 0; k < shards_.size(); ++k) {
    txn->contexts_[k] = shards_[k]->BeginSiWriterTxnAt(s, txn->id());
  }
  txn->snapshot_ts_ = s;
  snapshots_opened_.fetch_add(1, std::memory_order_relaxed);
}

Status CrossShardCoordinator::FinalizeParticipants(ShardedTransaction* txn) {
  if (txn->read_only()) return Status::OK();
  for (uint32_t k = 0; k < shards_.size(); ++k) {
    TransactionContext* ctx = txn->contexts_[k].get();
    if (ctx == nullptr) continue;
    Status st = shards_[k]->FinalizeCc(ctx);
    if (!st.ok()) {
      AbortParticipants(txn);
      return st;
    }
  }
  return Status::OK();
}

Status CrossShardCoordinator::Commit(ShardedTransaction* txn) {
  if (txn == nullptr) return Status::InvalidArgument("null txn");
  if (!txn->active()) {
    return Status::InvalidArgument("sharded txn is not active");
  }
  txn->FreezeTouched();  // Commit releases the locks the count reads.
  Status first_failure = Status::OK();
  if (txn->read_only()) {
    for (size_t k = 0; k < shards_.size(); ++k) {
      TransactionContext* ctx = txn->contexts_[k].get();
      if (ctx == nullptr) continue;
      Status st = shards_[k]->CommitTxn(ctx);
      if (!st.ok() && first_failure.ok()) first_failure = st;
    }
    txn->state_ = TxnState::kCommitted;
    return first_failure;
  }

  // SI/OCC validation + buffered-write apply, before anything is
  // classified or logged; a validation loss rolled everything back.
  OCB_RETURN_NOT_OK(FinalizeParticipants(txn));

  // Split participants: only shards the transaction *wrote* have pending
  // versions to stamp and therefore take part in 2PC; pure-read
  // participants just release their S locks (finalization above drained
  // every write buffer, so has_writes() ≡ a non-empty undo log here).
  std::vector<uint32_t> writers;
  std::vector<uint32_t> readers;
  for (uint32_t k = 0; k < shards_.size(); ++k) {
    TransactionContext* ctx = txn->contexts_[k].get();
    if (ctx == nullptr) continue;
    if (ctx->has_writes()) {
      writers.push_back(k);
    } else {
      readers.push_back(k);
    }
  }

  if (writers.size() <= 1) {
    // Fast path: no prepare, no commit-mutex serialization, no 2PC
    // accounting. The timestamp is registered in-flight until stamping
    // completes so OpenGlobalSnapshot never pins past a half-stamped
    // commit (see BeginFastPathCommit).
    if (!writers.empty()) {
      const uint32_t k = writers[0];
      const CommitTs ts = BeginFastPathCommit();
      // Redo precedes CommitTxnAt, which clears the undo log the record
      // is built from and releases the locks that order dependents.
      Status wal_st =
          shards_[k]->WalAppendTxn(txn->contexts_[k].get(), ts,
                                   /*coordinated=*/false);
      Status st = shards_[k]->CommitTxnAt(txn->contexts_[k].get(), ts);
      EndFastPathCommit(ts);
      if (shards_[k]->wal_enabled()) {
        // Force before the ack: this shard's log, then any coordinator
        // marker a predecessor 2PC commit appended but has not yet
        // forced — this commit may depend on it, and an ack here must
        // not outlive the predecessor's recovery.
        if (wal_st.ok()) wal_st = shards_[k]->WalForce();
        if (wal_st.ok() && coord_wal_ != nullptr) {
          wal_st = coord_wal_->ForceIfDirty();
        }
      }
      if (!st.ok() && first_failure.ok()) first_failure = st;
      if (!wal_st.ok() && first_failure.ok()) first_failure = wal_st;
      ChargeLogForce(1);
    }
    for (uint32_t k : readers) {
      Status st = shards_[k]->CommitTxn(txn->contexts_[k].get());
      if (!st.ok() && first_failure.ok()) first_failure = st;
    }
    txn->state_ = TxnState::kCommitted;
    fast_path_commits_.fetch_add(1, std::memory_order_relaxed);
    return first_failure;
  }

  // Two-phase commit.
  const auto start = std::chrono::steady_clock::now();
  {
    obs::TraceSpan prepare_span("2pc.prepare", "txn", txn->id(), "writers",
                                writers.size());
    for (uint32_t k : writers) {
      Status st = shards_[k]->PrepareTxn(txn->contexts_[k].get());
      prepares_.fetch_add(1, std::memory_order_relaxed);
      if (!st.ok()) {
        // A participant refused to promise (lifecycle bug upstream): the
        // only safe decision is abort-everything.
        AbortParticipants(txn);
        twopc_nanos_.fetch_add(NanosSince(start),
                               std::memory_order_relaxed);
        return st;
      }
    }
  }
  if (commit_failpoint_ && commit_failpoint_()) {
    // Injected coordinator crash between prepare and commit: the decision
    // becomes abort, and every participant — all merely prepared, none
    // stamped — must roll back. This is the atomicity window the 2PC
    // tests exercise.
    injected_aborts_.fetch_add(1, std::memory_order_relaxed);
    Status st = AbortParticipants(txn);
    txn->twopc_nanos_ = NanosSince(start);
    twopc_nanos_.fetch_add(txn->twopc_nanos_, std::memory_order_relaxed);
    if (!st.ok()) return st;
    return Status::Aborted("2PC commit failpoint injected an abort");
  }
  Status wal_st = Status::OK();
  {
    // Decision: commit. One timestamp for every shard, stamped under the
    // commit mutex so no global snapshot can interleave (see
    // OpenGlobalSnapshot). Durability before visibility: participant
    // redo records are appended and forced and the coordinator marker
    // appended inside the same mutex section, before any CommitTxnAt
    // releases a lock — so no dependent can commit (let alone force its
    // ack) ahead of this commit's durability choreography.
    obs::TraceSpan commit_span("2pc.commit", "txn", txn->id(), "writers",
                               writers.size());
    MutexLock lock(commit_mu_);
    const CommitTs ts = NextTimestamp();
    if (coord_wal_ != nullptr) {
      wal_st = LogCoordinatedCommit(txn, writers, ts);
    }
    for (uint32_t k : writers) {
      Status st = shards_[k]->CommitTxnAt(txn->contexts_[k].get(), ts);
      if (!st.ok() && first_failure.ok()) first_failure = st;
    }
  }
  for (uint32_t k : readers) {
    Status st = shards_[k]->CommitTxn(txn->contexts_[k].get());
    if (!st.ok() && first_failure.ok()) first_failure = st;
  }
  // Marker force is the commit point on disk: after it, recovery replays
  // this commit on every participant; before it, on none.
  if (coord_wal_ != nullptr && wal_st.ok()) wal_st = coord_wal_->Force();
  if (!wal_st.ok() && first_failure.ok()) first_failure = wal_st;
  ChargeLogForce(1);
  txn->state_ = TxnState::kCommitted;
  txn->twopc_nanos_ = NanosSince(start);
  twopc_nanos_.fetch_add(txn->twopc_nanos_, std::memory_order_relaxed);
  RecordTwopcSection(txn->twopc_nanos_);
  cross_shard_commits_.fetch_add(1, std::memory_order_relaxed);
  return first_failure;
}

Status CrossShardCoordinator::CommitGrouped(ShardedTransaction* txn) {
  if (txn == nullptr) return Status::InvalidArgument("null txn");
  if (!txn->active()) {
    return Status::InvalidArgument("sharded txn is not active");
  }
  // Readers only close per-shard ReadViews — nothing to amortize, and
  // they must never wait behind a writer batch.
  if (txn->read_only()) return Commit(txn);
  // Finalize on the submitter's thread, not the batch leader's: SI/OCC
  // write-set locking may block, and a leader blocked on one member's
  // locks would stall the whole batch (same discipline as the single
  // store's CommitTxnGrouped). A validation loss aborts here and never
  // enters the pipeline.
  OCB_RETURN_NOT_OK(FinalizeParticipants(txn));
  return pipeline_.Submit(txn);
}

void CrossShardCoordinator::CommitBatch(
    const std::vector<CommitPipeline::Request*>& batch) {
  struct Member {
    CommitPipeline::Request* req = nullptr;
    ShardedTransaction* txn = nullptr;
    std::vector<uint32_t> writers;
    std::vector<uint32_t> readers;
    CommitTs ts = 0;
    Status failure;       // First per-shard failure.
    bool finished = false;  // Aborted before the stamping section.
  };
  std::vector<Member> members(batch.size());
  std::vector<Member*> fast;
  std::vector<Member*> twopc;
  for (size_t i = 0; i < batch.size(); ++i) {
    Member& m = members[i];
    m.req = batch[i];
    m.txn = static_cast<ShardedTransaction*>(batch[i]->handle);
    m.txn->FreezeTouched();
    for (uint32_t k = 0; k < shards_.size(); ++k) {
      TransactionContext* ctx = m.txn->contexts_[k].get();
      if (ctx == nullptr) continue;
      // Members were finalized in CommitGrouped before Submit, so
      // has_writes() ≡ a non-empty undo log.
      (ctx->has_writes() ? m.writers : m.readers).push_back(k);
    }
    (m.writers.size() <= 1 ? fast : twopc).push_back(&m);
  }
  // Whether some member actually *committed* writes this batch — only
  // then is a commit record forced (charged once, at the end; a batch
  // whose writers all abort forces nothing, matching Commit()).
  bool committed_writes = false;

  // --- Fast-path members: ONE registry pass draws every timestamp (the
  // snapshot-atomicity argument of BeginFastPathCommit holds per member),
  // stamping runs outside any coordinator mutex, ONE pass retires them.
  if (!fast.empty()) {
    {
      MutexLock inflight(inflight_mu_);
      for (Member* m : fast) {
        if (m->writers.empty()) continue;
        m->ts = NextTimestamp();
        inflight_commits_.insert(m->ts);
      }
    }
    std::set<uint32_t> fast_wal_shards;
    for (Member* m : fast) {
      if (!m->writers.empty()) {
        const uint32_t k = m->writers[0];
        // Redo precedes CommitTxnAt (which clears the undo log the
        // record is built from); the force is batched below.
        Status wst = shards_[k]->WalAppendTxn(m->txn->contexts_[k].get(),
                                              m->ts,
                                              /*coordinated=*/false);
        if (!wst.ok() && m->failure.ok()) m->failure = wst;
        if (shards_[k]->wal_enabled()) {
          fast_wal_shards.insert(k);
          wal_killpoint::MaybeKill("mid-batch");
        }
        Status st = shards_[k]->CommitTxnAt(m->txn->contexts_[k].get(),
                                            m->ts);
        if (!st.ok() && m->failure.ok()) m->failure = st;
        committed_writes = true;
      }
      for (uint32_t k : m->readers) {
        Status st = shards_[k]->CommitTxn(m->txn->contexts_[k].get());
        if (!st.ok() && m->failure.ok()) m->failure = st;
      }
      m->txn->state_ = TxnState::kCommitted;
      fast_path_commits_.fetch_add(1, std::memory_order_relaxed);
      m->req->status = m->failure;
    }
    {
      MutexLock inflight(inflight_mu_);
      for (Member* m : fast) {
        if (m->ts != 0) inflight_commits_.erase(m->ts);
      }
    }
    // ONE force per participating shard for the whole batch, plus any
    // coordinator marker a predecessor 2PC commit still owes a force
    // for. The pipeline unblocks members only after this body returns,
    // so every force lands before any ack.
    Status fast_wal_st = Status::OK();
    for (uint32_t k : fast_wal_shards) {
      Status st = shards_[k]->WalForce();
      if (!st.ok() && fast_wal_st.ok()) fast_wal_st = st;
    }
    if (!fast_wal_shards.empty() && coord_wal_ != nullptr &&
        fast_wal_st.ok()) {
      fast_wal_st = coord_wal_->ForceIfDirty();
    }
    if (!fast_wal_st.ok()) {
      for (Member* m : fast) {
        if (!m->writers.empty() && m->req->status.ok()) {
          m->req->status = fast_wal_st;
        }
      }
    }
  }

  // --- 2PC members: per-member prepare + failpoint outside the commit
  // mutex (an injected abort kills only that member), then ONE
  // commit-mutex section draws and stamps every survivor.
  if (!twopc.empty()) {
    const auto start = std::chrono::steady_clock::now();
    {
      obs::TraceSpan prepare_span("2pc.prepare", "members", twopc.size());
      for (Member* m : twopc) {
        for (uint32_t k : m->writers) {
          Status st = shards_[k]->PrepareTxn(m->txn->contexts_[k].get());
          prepares_.fetch_add(1, std::memory_order_relaxed);
          if (!st.ok()) {
            AbortParticipants(m->txn);
            m->req->status = st;
            m->finished = true;
            break;
          }
        }
        if (m->finished) continue;
        if (commit_failpoint_ && commit_failpoint_()) {
          injected_aborts_.fetch_add(1, std::memory_order_relaxed);
          Status st = AbortParticipants(m->txn);
          m->req->status =
              st.ok()
                  ? Status::Aborted("2PC commit failpoint injected an abort")
                  : st;
          m->finished = true;
        }
      }
    }
    Status wal_st = Status::OK();
    {
      obs::TraceSpan commit_span("2pc.commit", "members", twopc.size());
      MutexLock lock(commit_mu_);
      if (coord_wal_ != nullptr) {
        // Batched durability choreography, same invariant as the
        // per-txn path but amortized: every survivor's participant
        // records first, ONE force per participating shard, then every
        // marker — so any marker that reaches disk has all its records
        // durable — and all of it before the stamping loop below
        // releases a single lock.
        std::set<uint32_t> wal_shards;
        for (Member* m : twopc) {
          if (m->finished) continue;
          m->ts = NextTimestamp();
          for (uint32_t k : m->writers) {
            Status st = shards_[k]->WalAppendTxn(
                m->txn->contexts_[k].get(), m->ts, /*coordinated=*/true);
            if (!st.ok() && wal_st.ok()) wal_st = st;
            wal_shards.insert(k);
          }
          wal_killpoint::MaybeKill("mid-batch");
        }
        for (uint32_t k : wal_shards) {
          Status st = shards_[k]->WalForce();
          if (!st.ok() && wal_st.ok()) wal_st = st;
        }
        for (Member* m : twopc) {
          if (m->finished) continue;
          wal::WalRecord marker;
          marker.type = wal::WalRecordType::kCoordMarker;
          marker.txn_id = m->txn->id();
          marker.commit_ts = m->ts;
          Status st = coord_wal_->Append(marker);
          if (!st.ok() && wal_st.ok()) wal_st = st;
        }
      }
      for (Member* m : twopc) {
        if (m->finished) continue;
        if (m->ts == 0) m->ts = NextTimestamp();
        for (uint32_t k : m->writers) {
          Status st = shards_[k]->CommitTxnAt(m->txn->contexts_[k].get(),
                                              m->ts);
          if (!st.ok() && m->failure.ok()) m->failure = st;
        }
      }
    }
    // Marker force = the batch's on-disk commit point for every member.
    if (coord_wal_ != nullptr && wal_st.ok()) {
      wal_st = coord_wal_->ForceIfDirty();
    }
    uint64_t survivors = 0;
    for (Member* m : twopc) {
      if (m->finished) continue;
      for (uint32_t k : m->readers) {
        Status st = shards_[k]->CommitTxn(m->txn->contexts_[k].get());
        if (!st.ok() && m->failure.ok()) m->failure = st;
      }
      m->txn->state_ = TxnState::kCommitted;
      cross_shard_commits_.fetch_add(1, std::memory_order_relaxed);
      if (m->failure.ok()) m->failure = wal_st;
      m->req->status = m->failure;
      ++survivors;
    }
    if (survivors > 0) committed_writes = true;
    // 2PC time: the whole section is shared work; attribute an even
    // share to each *surviving* member (the aggregate — what the bench
    // reports — stays exact; aborted members rolled back before the
    // stamping section and are not credited commit time).
    const uint64_t section = NanosSince(start);
    if (survivors > 0) {
      const uint64_t share = section / survivors;
      for (Member* m : twopc) {
        if (!m->finished) m->txn->twopc_nanos_ = share;
      }
    }
    twopc_nanos_.fetch_add(section, std::memory_order_relaxed);
    RecordTwopcSection(section);
  }
  if (committed_writes) ChargeLogForce(1);
}

Status CrossShardCoordinator::Abort(ShardedTransaction* txn) {
  if (txn == nullptr) return Status::InvalidArgument("null txn");
  if (txn->state() == TxnState::kAborted) return Status::OK();
  if (!txn->active()) {
    return Status::InvalidArgument("sharded txn is not active");
  }
  return AbortParticipants(txn);
}

Status CrossShardCoordinator::AbortParticipants(ShardedTransaction* txn) {
  txn->FreezeTouched();
  Status first_failure = Status::OK();
  // One globally drawn seal timestamp for every writer participant keeps
  // each shard's chains on the single global axis (drawn lazily: pure
  // readers and read-only transactions seal nothing).
  CommitTs seal_ts = 0;
  for (uint32_t k = 0; k < shards_.size(); ++k) {
    TransactionContext* ctx = txn->contexts_[k].get();
    if (ctx == nullptr) continue;
    Status st;
    if (!txn->read_only() && !ctx->undo_log().empty()) {
      if (seal_ts == 0) seal_ts = NextTimestamp();
      st = shards_[k]->AbortTxnAt(ctx, seal_ts);
    } else {
      st = shards_[k]->AbortTxn(ctx);
    }
    if (!st.ok() && first_failure.ok()) first_failure = st;
  }
  txn->state_ = TxnState::kAborted;
  aborts_.fetch_add(1, std::memory_order_relaxed);
  return first_failure;
}

CrossShardStats CrossShardCoordinator::stats() const {
  CrossShardStats out;
  out.fast_path_commits =
      fast_path_commits_.load(std::memory_order_relaxed);
  out.cross_shard_commits =
      cross_shard_commits_.load(std::memory_order_relaxed);
  out.prepares = prepares_.load(std::memory_order_relaxed);
  out.aborts = aborts_.load(std::memory_order_relaxed);
  out.injected_aborts = injected_aborts_.load(std::memory_order_relaxed);
  out.snapshots_opened =
      snapshots_opened_.load(std::memory_order_relaxed);
  out.twopc_nanos = twopc_nanos_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace ocb
