/// \file disk_sim.h
/// \brief Simulated disk: the unit of OCB's headline metric (page I/Os).
///
/// Pages live in memory (optionally mirrored write-through to a real file);
/// every read/write increments a counter and charges simulated latency to a
/// SimClock. The paper distinguishes the I/Os needed to execute transactions
/// from the clustering overhead I/Os (§3.3, metrics): DiskSim therefore
/// attributes every I/O to the currently active *accounting scope*.

#ifndef OCB_STORAGE_DISK_SIM_H_
#define OCB_STORAGE_DISK_SIM_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "storage/storage_options.h"
#include "storage/types.h"
#include "util/sim_clock.h"
#include "util/status.h"

namespace ocb {

/// Who is performing I/O right now. Mirrors the paper's metric split.
enum class IoScope {
  kGeneration = 0,  ///< Database creation / load phase.
  kTransaction,     ///< Workload transactions (the paper's "I/Os").
  kClustering,      ///< Clustering overhead (statistics + reorganization).
  kNumScopes,
};

const char* IoScopeToString(IoScope scope);

/// Per-scope read/write counters.
///
/// Fields are atomic (relaxed) so concurrent clients may increment from
/// any thread while phase-boundary readers snapshot concurrently;
/// copying yields a plain consistent-enough snapshot for metric deltas.
struct IoCounters {
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> writes{0};

  IoCounters() = default;
  IoCounters(const IoCounters& other)
      : reads(other.reads.load(std::memory_order_relaxed)),
        writes(other.writes.load(std::memory_order_relaxed)) {}
  IoCounters& operator=(const IoCounters& other) {
    reads.store(other.reads.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    writes.store(other.writes.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    return *this;
  }

  uint64_t total() const {
    return reads.load(std::memory_order_relaxed) +
           writes.load(std::memory_order_relaxed);
  }
};

/// \brief In-memory page array with I/O accounting and simulated latency.
///
/// Thread-safe for concurrent I/O on *distinct* pages: the page directory
/// is guarded by a reader/writer mutex (AllocatePage writes it, page I/O
/// reads it) and the counters are atomic. Concurrent ReadPage/WritePage of
/// the *same* page are excluded by the buffer pool's per-frame latches and
/// per-stripe eviction protocol, never by this class — raw multi-threaded
/// users must provide the same exclusion themselves.
class DiskSim {
 public:
  /// \param clock Simulated clock charged for every I/O; may be nullptr to
  ///        disable latency accounting.
  explicit DiskSim(const StorageOptions& options, SimClock* clock = nullptr);
  ~DiskSim();

  DiskSim(const DiskSim&) = delete;
  DiskSim& operator=(const DiskSim&) = delete;

  /// Allocates a fresh zeroed page and returns its id. No I/O is charged;
  /// the page is charged when first written back.
  PageId AllocatePage();

  /// Copies page \p page_id into \p out (page_size bytes). Counts one read.
  Status ReadPage(PageId page_id, uint8_t* out);

  /// Overwrites page \p page_id from \p data. Counts one write.
  Status WritePage(PageId page_id, const uint8_t* data);

  /// Number of allocated pages.
  size_t num_pages() const {
    std::shared_lock<std::shared_mutex> lock(pages_mu_);
    return pages_.size();
  }

  /// Direct (uncounted, zero-latency) access to a page image — snapshot
  /// save/load utilities only; all benchmark reads go through ReadPage.
  const uint8_t* raw_page(PageId page_id) const {
    std::shared_lock<std::shared_mutex> lock(pages_mu_);
    return pages_[page_id].get();  // Buffer address is stable once allocated.
  }

  /// Overwrites a page image without I/O accounting (snapshot load only).
  void LoadPageImage(PageId page_id, const uint8_t* data);

  size_t page_size() const { return options_.page_size; }

  /// Sets the accounting scope for subsequent I/Os.
  void set_scope(IoScope scope) {
    scope_.store(scope, std::memory_order_relaxed);
  }
  IoScope scope() const { return scope_.load(std::memory_order_relaxed); }

  /// Counters for one scope.
  const IoCounters& counters(IoScope scope) const {
    return counters_[static_cast<size_t>(scope)];
  }

  /// Sum over all scopes.
  IoCounters TotalCounters() const;

  /// Zeroes all counters (pages are untouched).
  void ResetCounters();

 private:
  StorageOptions options_;
  SimClock* clock_;
  std::atomic<IoScope> scope_{IoScope::kGeneration};
  /// Guards the page *directory* (the vector, not the page bytes):
  /// AllocatePage appends under a writer lock; page I/O resolves the
  /// buffer under a reader lock. Same-page byte races are the buffer
  /// pool's contract (see class comment).
  mutable std::shared_mutex pages_mu_;
  std::vector<std::unique_ptr<uint8_t[]>> pages_;
  std::array<IoCounters, static_cast<size_t>(IoScope::kNumScopes)> counters_;
  std::mutex backing_mu_;  ///< Serializes write-through fseek+fwrite pairs.
  std::FILE* backing_ = nullptr;
};

/// \brief RAII guard that switches the DiskSim accounting scope and restores
/// the previous scope on destruction.
class ScopedIoScope {
 public:
  ScopedIoScope(DiskSim* disk, IoScope scope)
      : disk_(disk), previous_(disk->scope()) {
    disk_->set_scope(scope);
  }
  ~ScopedIoScope() { disk_->set_scope(previous_); }

  ScopedIoScope(const ScopedIoScope&) = delete;
  ScopedIoScope& operator=(const ScopedIoScope&) = delete;

 private:
  DiskSim* disk_;
  IoScope previous_;
};

/// \brief ScopedIoScope generalized over the engine surface: works for
/// any type exposing io_scope()/SetIoScope (Database switches its one
/// DiskSim, ShardedDatabase switches every shard's). The templated OCB
/// execution layer uses this form.
template <typename DB>
class ScopedEngineIoScope {
 public:
  ScopedEngineIoScope(DB* db, IoScope scope)
      : db_(db), previous_(db->io_scope()) {
    db_->SetIoScope(scope);
  }
  ~ScopedEngineIoScope() { db_->SetIoScope(previous_); }

  ScopedEngineIoScope(const ScopedEngineIoScope&) = delete;
  ScopedEngineIoScope& operator=(const ScopedEngineIoScope&) = delete;

 private:
  DB* db_;
  IoScope previous_;
};

}  // namespace ocb

#endif  // OCB_STORAGE_DISK_SIM_H_
