/// \file disk_sim.h
/// \brief Simulated disk: the unit of OCB's headline metric (page I/Os).
///
/// Pages live in memory (optionally mirrored write-through to a real file);
/// every read/write increments a counter and charges simulated latency to a
/// SimClock. The paper distinguishes the I/Os needed to execute transactions
/// from the clustering overhead I/Os (§3.3, metrics): DiskSim therefore
/// attributes every I/O to the currently active *accounting scope*.

#ifndef OCB_STORAGE_DISK_SIM_H_
#define OCB_STORAGE_DISK_SIM_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "storage/storage_options.h"
#include "storage/types.h"
#include "util/sim_clock.h"
#include "util/status.h"
#include "util/sync.h"

namespace ocb {

/// Who is performing I/O right now. Mirrors the paper's metric split.
enum class IoScope {
  kGeneration = 0,  ///< Database creation / load phase.
  kTransaction,     ///< Workload transactions (the paper's "I/Os").
  kClustering,      ///< Clustering overhead (statistics + reorganization).
  kNumScopes,
};

const char* IoScopeToString(IoScope scope);

/// Per-scope read/write counters.
///
/// Fields are atomic (relaxed) so concurrent clients may increment from
/// any thread while phase-boundary readers snapshot concurrently;
/// copying yields a plain consistent-enough snapshot for metric deltas.
struct IoCounters {
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> writes{0};

  IoCounters() = default;
  IoCounters(const IoCounters& other)
      : reads(other.reads.load(std::memory_order_relaxed)),
        writes(other.writes.load(std::memory_order_relaxed)) {}
  IoCounters& operator=(const IoCounters& other) {
    reads.store(other.reads.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    writes.store(other.writes.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    return *this;
  }

  uint64_t total() const {
    return reads.load(std::memory_order_relaxed) +
           writes.load(std::memory_order_relaxed);
  }
};

class DiskSim;
class IoBackend;

/// \brief One in-flight asynchronous page I/O (internal to DiskSim).
///
/// Accounting (counter increment, simulated completion instant, overlap
/// bookkeeping) happens at *submission* on the caller's thread, so metric
/// deltas and simulated time stay deterministic regardless of worker
/// scheduling; execution (the byte movement, plus the wall-clock sleep in
/// wall_clock_io mode) happens wherever the request runs and is published
/// to the awaiting thread through the (mu, cv, done) completion state.
struct IoRequest {
  enum class Kind : uint8_t { kRead, kWrite };

  Kind kind = Kind::kRead;
  DiskSim* disk = nullptr;
  PageId page_id = kInvalidPageId;
  uint8_t* out = nullptr;              ///< Read destination (caller-owned).
  std::unique_ptr<uint8_t[]> payload;  ///< Write source (request-owned).
  uint64_t latency_nanos = 0;
  /// Simulated instant this request completes (issue time + latency);
  /// Await advances the SimClock to it. 0 when no clock is attached.
  uint64_t complete_sim_nanos = 0;

  /// Completion state. The issue→await window spans threads and
  /// functions, so TSA cannot follow it; the mutex still registers with
  /// lockdep (rank: leaf under the stripe mutexes that await under them).
  Mutex mu{lockdep::kIoRequestClass};
  std::condition_variable_any cv;
  bool done OCB_GUARDED_BY(mu) = false;
  Status status OCB_GUARDED_BY(mu);
};

/// \brief Move-only handle to a pending asynchronous I/O.
///
/// Obtained from DiskSim::StartRead/StartWrite, resolved by
/// DiskSim::Await. Destroying an unawaited ticket blocks until the request
/// has executed (the worker writes through the request's buffers, so the
/// ticket may never outrun it) and drops the result.
class IoTicket {
 public:
  IoTicket() = default;
  ~IoTicket();

  IoTicket(IoTicket&& other) noexcept = default;
  IoTicket& operator=(IoTicket&& other) noexcept;
  IoTicket(const IoTicket&) = delete;
  IoTicket& operator=(const IoTicket&) = delete;

  bool valid() const { return req_ != nullptr; }

 private:
  friend class DiskSim;
  explicit IoTicket(std::unique_ptr<IoRequest> req) : req_(std::move(req)) {}

  std::unique_ptr<IoRequest> req_;
};

/// \brief In-memory page array with I/O accounting and simulated latency.
///
/// Thread-safe for concurrent I/O on *distinct* pages: the page directory
/// is guarded by a reader/writer mutex (AllocatePage writes it, page I/O
/// reads it) and the counters are atomic. Concurrent ReadPage/WritePage of
/// the *same* page are excluded by the buffer pool's per-frame latches and
/// per-stripe eviction protocol, never by this class — raw multi-threaded
/// users must provide the same exclusion themselves. The same contract
/// extends to the async path: two in-flight requests on one page must be
/// ordered by the caller (the buffer pool awaits a page's pending
/// write-back before issuing a read or another write for it).
class DiskSim {
 public:
  /// \param clock Simulated clock charged for every I/O; may be nullptr to
  ///        disable latency accounting.
  explicit DiskSim(const StorageOptions& options, SimClock* clock = nullptr);
  ~DiskSim();

  DiskSim(const DiskSim&) = delete;
  DiskSim& operator=(const DiskSim&) = delete;

  /// Allocates a fresh zeroed page and returns its id. No I/O is charged;
  /// the page is charged when first written back.
  PageId AllocatePage();

  /// Copies page \p page_id into \p out (page_size bytes). Counts one read.
  /// Blocking: equivalent to Await(StartRead(...)) without the queue hop.
  Status ReadPage(PageId page_id, uint8_t* out);

  /// Overwrites page \p page_id from \p data. Counts one write. Blocking.
  Status WritePage(PageId page_id, const uint8_t* data);

  // --- Asynchronous issue/await path ---

  /// Issues a read of \p page_id into \p out and returns immediately. The
  /// destination must stay valid (and unread) until Await returns. With
  /// io workers the byte movement happens on a backend thread; without,
  /// it happens inline and the ticket comes back already complete.
  IoTicket StartRead(PageId page_id, uint8_t* out);

  /// Issues a write of \p data (ownership transferred; page_size bytes)
  /// to \p page_id. The buffer is released when the request completes.
  IoTicket StartWrite(PageId page_id, std::unique_ptr<uint8_t[]> data);

  /// Blocks until \p ticket's request has executed, charges the request's
  /// simulated completion instant to the clock, records the wall wait in
  /// the "io.wait" histogram, and returns the request's status. The
  /// ticket becomes invalid.
  Status Await(IoTicket& ticket);

  /// True when submissions run on background workers (io_workers > 0 or a
  /// shared backend was injected).
  bool async_enabled() const { return backend_ != nullptr; }

  /// The worker group (null in inline mode). Shards of one
  /// ShardedDatabase report the same backend.
  IoBackend* backend() const { return backend_.get(); }

  /// Sum of every successful request's device latency — what a fully
  /// serialized execution would have charged the clock.
  uint64_t serial_io_nanos() const {
    return serial_io_nanos_.load(std::memory_order_relaxed);
  }

  /// Simulated nanoseconds actually charged to the clock by I/O
  /// completions. serial/charged >= 1 is the overlap ratio: 1.0 means
  /// fully serialized, N means N-way overlapped on average.
  uint64_t charged_io_nanos() const {
    return charged_io_nanos_.load(std::memory_order_relaxed);
  }

  /// Number of allocated pages.
  size_t num_pages() const {
    ReaderMutexLock lock(pages_mu_);
    return pages_.size();
  }

  /// Direct (uncounted, zero-latency) access to a page image — snapshot
  /// save/load utilities only; all benchmark reads go through ReadPage.
  const uint8_t* raw_page(PageId page_id) const {
    ReaderMutexLock lock(pages_mu_);
    return pages_[page_id].get();  // Buffer address is stable once allocated.
  }

  /// Overwrites a page image without I/O accounting (snapshot load only).
  void LoadPageImage(PageId page_id, const uint8_t* data);

  size_t page_size() const { return options_.page_size; }

  /// Sets the accounting scope for subsequent I/Os.
  void set_scope(IoScope scope) {
    scope_.store(scope, std::memory_order_relaxed);
  }
  IoScope scope() const { return scope_.load(std::memory_order_relaxed); }

  /// Counters for one scope.
  const IoCounters& counters(IoScope scope) const {
    return counters_[static_cast<size_t>(scope)];
  }

  /// Sum over all scopes.
  IoCounters TotalCounters() const;

  /// Zeroes all counters (pages are untouched).
  void ResetCounters();

  /// Executes \p request's byte movement (worker-side half). Public only
  /// for IoBackend's worker loop; not part of the user API.
  static void ExecuteRequest(IoRequest* request);

 private:
  friend class IoTicket;

  /// Builds a charged, ready-to-execute request, or an already-failed one
  /// when \p page_id is unallocated. Accounting happens here.
  std::unique_ptr<IoRequest> PrepareRequest(IoRequest::Kind kind,
                                            PageId page_id);

  /// Submits to the backend or executes inline when there is none.
  void Dispatch(IoRequest* request);

  /// Await without histogram/clock bookkeeping — the abandoned-ticket
  /// path (charging still happens because accounting is submission-side,
  /// except the clock advance, which an abandoned result forfeits).
  static void WaitDone(IoRequest* request);

  StorageOptions options_;
  SimClock* clock_;
  std::shared_ptr<IoBackend> backend_;
  std::atomic<uint64_t> serial_io_nanos_{0};
  std::atomic<uint64_t> charged_io_nanos_{0};
  std::atomic<IoScope> scope_{IoScope::kGeneration};
  /// Guards the page *directory* (the vector, not the page bytes):
  /// AllocatePage appends under a writer lock; page I/O resolves the
  /// buffer under a reader lock. Same-page byte races are the buffer
  /// pool's contract (see class comment).
  mutable SharedMutex pages_mu_{lockdep::kDiskDirectoryClass};
  std::vector<std::unique_ptr<uint8_t[]>> pages_ OCB_GUARDED_BY(pages_mu_);
  std::array<IoCounters, static_cast<size_t>(IoScope::kNumScopes)> counters_;
  /// Serializes write-through fseek+fwrite pairs. The pointer itself is
  /// set at construction and read freely; the mutex guards the stream
  /// *position* between the seek and the write.
  Mutex backing_mu_{lockdep::kDiskBackingClass};
  std::FILE* backing_ = nullptr;
};

/// \brief RAII guard that switches the DiskSim accounting scope and restores
/// the previous scope on destruction.
class ScopedIoScope {
 public:
  ScopedIoScope(DiskSim* disk, IoScope scope)
      : disk_(disk), previous_(disk->scope()) {
    disk_->set_scope(scope);
  }
  ~ScopedIoScope() { disk_->set_scope(previous_); }

  ScopedIoScope(const ScopedIoScope&) = delete;
  ScopedIoScope& operator=(const ScopedIoScope&) = delete;

 private:
  DiskSim* disk_;
  IoScope previous_;
};

/// \brief ScopedIoScope generalized over the engine surface: works for
/// any type exposing io_scope()/SetIoScope (Database switches its one
/// DiskSim, ShardedDatabase switches every shard's). The templated OCB
/// execution layer uses this form.
template <typename DB>
class ScopedEngineIoScope {
 public:
  ScopedEngineIoScope(DB* db, IoScope scope)
      : db_(db), previous_(db->io_scope()) {
    db_->SetIoScope(scope);
  }
  ~ScopedEngineIoScope() { db_->SetIoScope(previous_); }

  ScopedEngineIoScope(const ScopedEngineIoScope&) = delete;
  ScopedEngineIoScope& operator=(const ScopedEngineIoScope&) = delete;

 private:
  DB* db_;
  IoScope previous_;
};

}  // namespace ocb

#endif  // OCB_STORAGE_DISK_SIM_H_
