/// \file buffer_pool.h
/// \brief Striped, page-latched cache between the object store and DiskSim.
///
/// A buffer-pool *miss* is exactly one disk read; evicting a dirty frame is
/// one disk write. This is the mechanism by which object clustering shows
/// up in OCB's metrics: co-locating frequently co-accessed objects on the
/// same page turns would-be misses into hits.
///
/// Concurrency (latching contract):
///
///   * The page table is *striped*: page p belongs to stripe p % N, each
///     stripe with its own mutex, its own share of the frames, and its own
///     LRU/Clock/FIFO replacement state. A miss (victim writeback + disk
///     read) in one stripe never blocks hits or misses in another, so
///     CLIENTN clients overlap their physical I/O instead of convoying on
///     one pool-wide latch. N defaults to 1 for small pools (< 64 frames,
///     preserving exact single-list LRU order for ablations) and to
///     OCB_LATCH_STRIPES (8 unless overridden at build time) otherwise;
///     StorageOptions::latch_stripes pins it explicitly.
///   * Every frame carries a reader/writer *page latch* and an atomic pin
///     count. FetchPage/NewPage return a PageHandle that holds the frame
///     pinned (pin blocks eviction) and latched in the requested LatchMode:
///     kShared readers of one page proceed in parallel, a kExclusive
///     mutator excludes them for the duration of the handle. Latches are
///     operation-lifetime only — transaction-lifetime isolation is the
///     LockManager's job (see database.h for the full lock → catalog latch
///     → page latch hierarchy).
///   * Callers must not fetch a page they already hold a handle to (frame
///     latches are not recursive), and a thread holding one handle may
///     fetch a second page only in ascending page-id order (the object
///     store's relocation paths follow this rule; single-handle callers
///     are unconstrained).
///
/// Quiesce: reorganizers and snapshot save/load need the pre-latch world —
/// exclusive access to every page at once. BeginQuiesce() blocks new
/// fetches from other threads (threads mid-operation, i.e. already holding
/// a pin, are allowed to finish) and waits until every outstanding pin has
/// drained; the owning thread then operates alone. Database::QuiesceGuard
/// is the intended entry point.
///
/// Asynchronous I/O (issue/await): StartFetch() performs the table lookup
/// and, on a miss, claims + installs the frame and *issues* the disk read
/// without waiting for it; Await() blocks on the completion, downgrades to
/// the requested latch mode, and returns the handle. FetchPage is exactly
/// Await(StartFetch(...)) — the blocking contract is unchanged. A pending
/// frame is X-latched by the issuing thread for the whole issue→await
/// window, so concurrent fetchers pin and block on the latch precisely as
/// they do for a blocking miss. FetchMany() is the multi-miss batch form:
/// it issues every miss before awaiting any, then *releases* each page
/// (latch and pin) as its read lands — pure cache warming, so it never
/// blocks on a latch while holding another and is deadlock-free under any
/// interleaving with the ascending-page-id multi-handle rule. Dirty-victim
/// write-back is asynchronous too when the DiskSim has I/O workers:
/// eviction moves the dirty image into a per-stripe write-back queue
/// (DiskSim::StartWrite) and reuses the frame immediately; a later miss on
/// a queued page awaits its write before re-reading, and FlushAll /
/// BeginQuiesce / InvalidateAll drain the queue so snapshot/checkpoint
/// durability ordering is untouched.

#ifndef OCB_STORAGE_BUFFER_POOL_H_
#define OCB_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "storage/disk_sim.h"
#include "storage/latch.h"
#include "storage/page.h"
#include "storage/storage_options.h"
#include "storage/types.h"
#include "util/status.h"
#include "util/sync.h"

namespace ocb {

class BufferPool;

/// \brief Pinned, latched reference to a cached page; unlatches and unpins
/// on destruction.
///
/// Handles are movable but not copyable, and must not outlive their pool.
/// Mutating the page through the handle requires a kExclusive handle and a
/// MarkDirty() call so the frame is written back on eviction. A handle must
/// be released by the thread that fetched it (the latch is thread-owned).
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(BufferPool* pool, size_t frame_index, uint8_t* data,
             size_t page_size, LatchMode mode);
  ~PageHandle();

  PageHandle(PageHandle&& other) noexcept;
  PageHandle& operator=(PageHandle&& other) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;

  bool valid() const { return pool_ != nullptr; }

  /// Latch mode the frame is held in.
  LatchMode mode() const { return mode_; }

  /// Typed slotted-page view over the cached frame.
  Page page() { return Page(data_, page_size_); }
  const Page page() const { return Page(data_, page_size_); }

  /// Marks the frame dirty (must be called after any mutation; requires a
  /// kExclusive handle).
  void MarkDirty();

  /// Explicitly unlatches and unpins; the handle becomes invalid.
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  size_t frame_index_ = 0;
  uint8_t* data_ = nullptr;
  size_t page_size_ = 0;
  LatchMode mode_ = LatchMode::kExclusive;
};

/// \brief An issued-but-not-awaited page fetch (the async half-open state
/// between StartFetch and Await).
///
/// Move-only. The owning thread must resolve it with BufferPool::Await on
/// the same thread that issued it (a pending miss holds the frame's X
/// latch, and latches are thread-owned). Destroying an unresolved
/// PendingFetch abandons it safely: the read is awaited (the frame stays
/// installed on success, is uninstalled on error) and the pin released.
class PendingFetch {
 public:
  PendingFetch() = default;
  ~PendingFetch();

  PendingFetch(PendingFetch&& other) noexcept;
  PendingFetch& operator=(PendingFetch&& other) noexcept;
  PendingFetch(const PendingFetch&) = delete;
  PendingFetch& operator=(const PendingFetch&) = delete;

  /// False for default-constructed, failed-at-issue, moved-from or
  /// already-awaited fetches.
  bool pending() const { return pool_ != nullptr; }

  /// Why issuing failed (only meaningful when !pending() right after
  /// StartFetch — e.g. every frame of the stripe was pinned).
  const Status& issue_status() const { return issue_status_; }

  PageId page_id() const { return page_id_; }

 private:
  friend class BufferPool;

  BufferPool* pool_ = nullptr;
  size_t frame_index_ = 0;
  PageId page_id_ = kInvalidPageId;
  LatchMode mode_ = LatchMode::kExclusive;
  bool miss_ = false;  ///< Miss: frame X-latched by us, ticket_ in flight.
  IoTicket ticket_;
  Status issue_status_;
};

/// Hit/miss statistics of a buffer pool.
struct BufferPoolStats {
  // Atomic (relaxed) so phase-boundary readers may snapshot while other
  // client threads hit the pool concurrently.
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> misses{0};
  std::atomic<uint64_t> evictions{0};
  std::atomic<uint64_t> dirty_writebacks{0};

  BufferPoolStats() = default;
  BufferPoolStats(const BufferPoolStats& other)
      : hits(other.hits.load(std::memory_order_relaxed)),
        misses(other.misses.load(std::memory_order_relaxed)),
        evictions(other.evictions.load(std::memory_order_relaxed)),
        dirty_writebacks(
            other.dirty_writebacks.load(std::memory_order_relaxed)) {}
  BufferPoolStats& operator=(const BufferPoolStats& other) {
    hits.store(other.hits.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
    misses.store(other.misses.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    evictions.store(other.evictions.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    dirty_writebacks.store(
        other.dirty_writebacks.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    return *this;
  }

  double hit_ratio() const {
    const uint64_t total = hits.load(std::memory_order_relaxed) +
                           misses.load(std::memory_order_relaxed);
    return total == 0
               ? 0.0
               : static_cast<double>(hits.load(std::memory_order_relaxed)) /
                     total;
  }
};

/// \brief Striped LRU/Clock/FIFO page cache over a DiskSim.
///
/// Thread-safe: concurrent FetchPage/NewPage/handle-release from any number
/// of threads. FlushAll/InvalidateAll/ResetStats are safe but intended for
/// idle or quiesced moments (they visit every stripe).
class BufferPool {
 public:
  BufferPool(DiskSim* disk, const StorageOptions& options);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns a pinned handle to \p page_id latched in \p mode, reading the
  /// page from disk on a miss. kShared handles of one page coexist; a
  /// kExclusive handle waits out every other handle of that page.
  /// Blocking wrapper over the issue/await pair below.
  Result<PageHandle> FetchPage(PageId page_id,
                               LatchMode mode = LatchMode::kExclusive);

  /// Issues a fetch of \p page_id without waiting for the disk. On a hit
  /// the page is pinned (not yet latched); on a miss the frame is claimed,
  /// installed and X-latched, and the read is submitted to the DiskSim —
  /// outside the stripe mutex. Resolve with Await on the same thread.
  /// When issuing fails (e.g. all frames pinned), the returned object is
  /// !pending() and carries issue_status().
  PendingFetch StartFetch(PageId page_id,
                          LatchMode mode = LatchMode::kExclusive);

  /// Completes \p fetch: waits for the miss read (if any), acquires the
  /// requested latch mode, and returns the pinned handle. Retries
  /// internally if the frame was retired under us by a failed install.
  Result<PageHandle> Await(PendingFetch fetch);

  /// Multi-miss batch prefetch: issues the disk read for *every* missing
  /// page of \p page_ids (deduplicated, ascending) before awaiting any,
  /// then releases each page as its read lands — on return the pages are
  /// resident but unpinned, so subsequent FetchPage calls hit. Never
  /// blocks on a page latch, so it is safe to call regardless of what
  /// other threads hold. Returns the first read error, if any (callers
  /// treating this as a hint may ignore it; the authoritative error
  /// surfaces on the later FetchPage).
  Status FetchMany(std::span<const PageId> page_ids);

  /// Allocates a brand-new page on disk and returns it pinned, dirty and
  /// kExclusive-latched.
  Result<PageHandle> NewPage(PageId* out_page_id = nullptr);

  /// Writes back every dirty frame (e.g. after the generation phase).
  Status FlushAll();

  /// Drops every unpinned frame (writing dirty ones back first). Used by
  /// benchmarks to cold-start the cache between runs.
  Status InvalidateAll();

  const BufferPoolStats& stats() const { return stats_; }
  void ResetStats() {
    stats_ = BufferPoolStats{};
    writeback_peak_.store(0, std::memory_order_relaxed);
  }

  /// Dirty-victim write-backs currently in flight on the background queue
  /// (0 in inline-I/O mode and after any drain point).
  uint64_t pending_writebacks() const {
    return writeback_pending_.load(std::memory_order_relaxed);
  }

  /// High-water mark of the background write-back queue depth since the
  /// last ResetStats — the bench's "flusher depth".
  uint64_t writeback_peak_depth() const {
    return writeback_peak_.load(std::memory_order_relaxed);
  }

  size_t capacity() const { return frame_count_; }
  size_t pinned_frames() const;
  DiskSim* disk() { return disk_; }

  /// Number of page-table stripes in effect (1 = the degenerate,
  /// seed-equivalent single-latch layout).
  size_t latch_stripes() const { return stripes_.size(); }

  /// Sum of all outstanding pins (0 when no handle is live).
  uint64_t total_pins() const {
    return static_cast<uint64_t>(
        total_pins_.load(std::memory_order_acquire));
  }

  // --- Quiesce gate (Database::QuiesceGuard) ---

  /// Blocks until every outstanding pin has drained and, until the matching
  /// EndQuiesce, makes other threads' FetchPage/NewPage wait *before*
  /// pinning anything (threads already holding a pin — i.e. mid multi-page
  /// operation — pass through so pins always drain). Re-entrant on the
  /// owning thread.
  void BeginQuiesce();
  void EndQuiesce();

 private:
  friend class PageHandle;
  friend class PendingFetch;

  struct Frame {
    /// The page latch. Its lockdep key is rebound (SetLockdepKey) to the
    /// resident page id at every install, so the ascending-page-id
    /// multi-handle rule is checked against *page* order, which is what
    /// the contract promises — frame indices are an implementation
    /// accident.
    SharedMutex latch{lockdep::kFrameLatchClass};
    std::atomic<uint32_t> pin_count{0};  ///< Pinned frames are not evicted.
    // The fields below are guarded by the owning stripe's mutex, except
    // `dirty` (guarded by the frame latch) and `data` (the pointer only
    // changes under the stripe mutex + frame latch with no pins — an
    // async dirty eviction donates the buffer to the write-back queue —
    // so it is stable for as long as any handle pins the frame; the bytes
    // are guarded by the frame latch).
    PageId page_id = kInvalidPageId;
    std::unique_ptr<uint8_t[]> data;
    bool dirty = false;
    bool referenced = false;  // Clock bit.
    std::list<size_t>::iterator lru_pos;  // Valid iff resident.
  };

  /// One page-table shard: pages with page_id % stripes == index live here,
  /// cached in the frames this stripe owns (frame % stripes == index).
  /// The stripe index is the mutex's lockdep key: multi-stripe sweeps
  /// (FlushAll, DrainWritebacks, pinned_frames) hold several stripe
  /// mutexes only in ascending-index order.
  struct Stripe {
    explicit Stripe(size_t index) : mu(lockdep::kBufferStripeClass, index) {}

    mutable Mutex mu;
    std::unordered_map<PageId, size_t> page_table OCB_GUARDED_BY(mu);
    /// Front = most recent, back = victim.
    std::list<size_t> lru OCB_GUARDED_BY(mu);
    std::vector<size_t> free_frames OCB_GUARDED_BY(mu);
    /// All frame indices of the stripe (fixed at construction).
    std::vector<size_t> owned_frames;
    size_t clock_pos OCB_GUARDED_BY(mu) = 0;  ///< Index into owned_frames.
    /// In-flight dirty-victim write-backs of this stripe's pages, keyed by
    /// page id (at most one per page: a re-eviction awaits its
    /// predecessor). A miss extracts and awaits its page's entry before
    /// issuing the read, preserving write→read order per page.
    std::unordered_map<PageId, IoTicket> writebacks OCB_GUARDED_BY(mu);
  };

  Stripe& stripe_of(PageId page_id) {
    return *stripes_[page_id % stripes_.size()];
  }

  /// Waits while another thread holds the quiesce gate (no-op for the gate
  /// owner and for threads that already hold pins).
  void MaybeWaitForQuiesce();

  /// Claims a frame of \p stripe for a new resident page and returns it
  /// with its latch held exclusively, evicting a victim if needed (victim
  /// writeback happens under the stripe mutex, so a concurrent re-fetch of
  /// the victim page — same stripe by construction — serializes behind the
  /// completed writeback). Requires \p stripe.mu.
  Result<size_t> ClaimFrame(Stripe& stripe) OCB_REQUIRES(stripe.mu);

  /// Evicts resident \p frame_index (writes back if dirty) and removes the
  /// page-table entry. Requires \p stripe.mu and the frame latch.
  Status EvictFrame(Stripe& stripe, size_t frame_index)
      OCB_REQUIRES(stripe.mu);

  /// Awaits and removes \p page_id's pending write-back, if any. Requires
  /// \p stripe.mu. The await itself blocks only on the I/O worker (which
  /// never takes stripe mutexes), not on other pool threads.
  Status SettleWriteback(Stripe& stripe, PageId page_id)
      OCB_REQUIRES(stripe.mu);

  /// Awaits every queued write-back of every stripe. Called from
  /// FlushAll/InvalidateAll/BeginQuiesce so durability-ordering points see
  /// a settled disk.
  Status DrainWritebacks();

  /// Finishes a prefetch-issued page: awaits the miss read (if any) and
  /// releases the page (latch + pin) immediately. Never blocks on a
  /// latch. Also the ~PendingFetch abandon path.
  Status FinishPrefetch(PendingFetch& fetch);

  /// Uninstalls a miss frame whose read failed (FetchPage's historical
  /// disk-error cleanup). Requires the frame X latch, which it releases
  /// along with the pin.
  void UninstallFailedMiss(size_t frame_index, PageId page_id);

  void Unpin(size_t frame_index, LatchMode mode,
             bool latch_already_released = false);
  void TouchLru(Stripe& stripe, size_t frame_index)
      OCB_REQUIRES(stripe.mu);

  DiskSim* disk_;
  StorageOptions options_;
  size_t frame_count_ = 0;
  std::unique_ptr<Frame[]> frames_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
  BufferPoolStats stats_;
  std::atomic<uint64_t> writeback_pending_{0};
  std::atomic<uint64_t> writeback_peak_{0};

  // Quiesce gate state. The atomics are the fast-path reads (pin counts,
  // "is anyone quiescing"); owner identity and depth only change under
  // quiesce_mu_.
  std::atomic<bool> quiescing_{false};
  std::atomic<int64_t> total_pins_{0};
  Mutex quiesce_mu_{lockdep::kQuiesceClass};
  std::condition_variable_any quiesce_cv_;
  std::thread::id quiesce_owner_ OCB_GUARDED_BY(quiesce_mu_){};
  int quiesce_depth_ OCB_GUARDED_BY(quiesce_mu_) = 0;
};

}  // namespace ocb

#endif  // OCB_STORAGE_BUFFER_POOL_H_
