/// \file buffer_pool.h
/// \brief Fixed-capacity page cache between the object store and DiskSim.
///
/// A buffer-pool *miss* is exactly one disk read; evicting a dirty frame is
/// one disk write. This is the mechanism by which object clustering shows
/// up in OCB's metrics: co-locating frequently co-accessed objects on the
/// same page turns would-be misses into hits.
///
/// Replacement is LRU by default (Clock and FIFO are available for
/// ablations). Frames can be pinned during access; pinned frames are never
/// evicted.

#ifndef OCB_STORAGE_BUFFER_POOL_H_
#define OCB_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "storage/disk_sim.h"
#include "storage/page.h"
#include "storage/storage_options.h"
#include "storage/types.h"
#include "util/status.h"

namespace ocb {

class BufferPool;

/// \brief Pinned reference to a cached page; unpins on destruction.
///
/// Handles are movable but not copyable. Mutating the page through the
/// handle requires calling MarkDirty() so the frame is written back on
/// eviction.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(BufferPool* pool, size_t frame_index, uint8_t* data,
             size_t page_size);
  ~PageHandle();

  PageHandle(PageHandle&& other) noexcept;
  PageHandle& operator=(PageHandle&& other) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;

  bool valid() const { return pool_ != nullptr; }

  /// Typed slotted-page view over the cached frame.
  Page page() { return Page(data_, page_size_); }
  const Page page() const { return Page(data_, page_size_); }

  /// Marks the frame dirty (must be called after any mutation).
  void MarkDirty();

  /// Explicitly unpins; the handle becomes invalid.
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  size_t frame_index_ = 0;
  uint8_t* data_ = nullptr;
  size_t page_size_ = 0;
};

/// Hit/miss statistics of a buffer pool.
struct BufferPoolStats {
  // Atomic (relaxed) so phase-boundary readers may snapshot while other
  // client threads hit the pool under the Database latch.
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> misses{0};
  std::atomic<uint64_t> evictions{0};
  std::atomic<uint64_t> dirty_writebacks{0};

  BufferPoolStats() = default;
  BufferPoolStats(const BufferPoolStats& other)
      : hits(other.hits.load(std::memory_order_relaxed)),
        misses(other.misses.load(std::memory_order_relaxed)),
        evictions(other.evictions.load(std::memory_order_relaxed)),
        dirty_writebacks(
            other.dirty_writebacks.load(std::memory_order_relaxed)) {}
  BufferPoolStats& operator=(const BufferPoolStats& other) {
    hits.store(other.hits.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
    misses.store(other.misses.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    evictions.store(other.evictions.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    dirty_writebacks.store(
        other.dirty_writebacks.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    return *this;
  }

  double hit_ratio() const {
    const uint64_t total = hits.load(std::memory_order_relaxed) +
                           misses.load(std::memory_order_relaxed);
    return total == 0
               ? 0.0
               : static_cast<double>(hits.load(std::memory_order_relaxed)) /
                     total;
  }
};

/// \brief LRU/Clock/FIFO page cache over a DiskSim.
///
/// Not thread-safe; callers serialize (see DiskSim note).
class BufferPool {
 public:
  BufferPool(DiskSim* disk, const StorageOptions& options);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns a pinned handle to \p page_id, reading it from disk on a miss.
  Result<PageHandle> FetchPage(PageId page_id);

  /// Allocates a brand-new page on disk and returns it pinned and dirty.
  Result<PageHandle> NewPage(PageId* out_page_id = nullptr);

  /// Writes back every dirty frame (e.g. after the generation phase).
  Status FlushAll();

  /// Drops every unpinned frame (writing dirty ones back first). Used by
  /// benchmarks to cold-start the cache between runs.
  Status InvalidateAll();

  const BufferPoolStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BufferPoolStats{}; }

  size_t capacity() const { return frames_.size(); }
  size_t pinned_frames() const;
  DiskSim* disk() { return disk_; }

 private:
  friend class PageHandle;

  struct Frame {
    PageId page_id = kInvalidPageId;
    std::unique_ptr<uint8_t[]> data;
    bool dirty = false;
    bool referenced = false;  // Clock bit.
    uint32_t pin_count = 0;
    std::list<size_t>::iterator lru_pos;  // Valid iff resident.
  };

  /// Picks a victim frame (resident and unpinned) according to the policy,
  /// or an unused frame if one exists. Fails when everything is pinned.
  Result<size_t> PickVictim();

  /// Evicts the frame (writes back if dirty) and removes map entry.
  Status EvictFrame(size_t frame_index);

  void Unpin(size_t frame_index);
  void TouchLru(size_t frame_index);

  DiskSim* disk_;
  StorageOptions options_;
  std::vector<Frame> frames_;
  std::vector<size_t> free_frames_;
  std::list<size_t> lru_;  ///< Front = most recent, back = victim candidate.
  size_t clock_hand_ = 0;
  std::unordered_map<PageId, size_t> page_table_;
  BufferPoolStats stats_;
};

}  // namespace ocb

#endif  // OCB_STORAGE_BUFFER_POOL_H_
