/// \file storage_options.h
/// \brief Tunables of the storage substrate (RocksDB-style options struct).
///
/// Defaults model the paper's testbed (§4.2): 4 KB pages and an 8 MB main
/// memory on the Sun SPARC/ELC, i.e. a 2048-page buffer pool. Simulated
/// latencies approximate a 1998-era disk (~10 ms seek+rotation per page I/O)
/// so that simulated response times have a realistic I/O-dominated shape.

#ifndef OCB_STORAGE_STORAGE_OPTIONS_H_
#define OCB_STORAGE_STORAGE_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "util/status.h"

namespace ocb {

class IoBackend;

/// Buffer-pool replacement policy.
enum class ReplacementPolicy {
  kLru,    ///< Strict least-recently-used (default).
  kClock,  ///< Second-chance clock; cheaper bookkeeping, near-LRU quality.
  kFifo,   ///< First-in-first-out; degenerate baseline for ablations.
};

const char* ReplacementPolicyToString(ReplacementPolicy policy);

/// \brief Configuration of DiskSim + BufferPool + ObjectStore.
struct StorageOptions {
  /// Page size in bytes. The paper's Texas setup used 4 KB pages.
  size_t page_size = 4096;

  /// Number of frames in the buffer pool. Default 2048 frames × 4 KB = 8 MB,
  /// matching the paper's available main memory.
  size_t buffer_pool_pages = 2048;

  /// Replacement policy for the buffer pool.
  ReplacementPolicy replacement_policy = ReplacementPolicy::kLru;

  /// Buffer-pool page-table stripes (each with its own mutex, frames and
  /// replacement state — the unit of physical-I/O parallelism). 0 = auto:
  /// pools of >= 64 frames use the build-time default (OCB_LATCH_STRIPES,
  /// 8 unless overridden), smaller pools use 1 stripe, which reproduces
  /// the seed's exact global LRU order. Clamped to [1, buffer_pool_pages];
  /// a build that defines OCB_LATCH_STRIPES caps explicit values too.
  size_t latch_stripes = 0;

  /// First oid the object store hands out and the step between
  /// consecutive allocations. The defaults (1, 1) give the historical
  /// dense sequence 1, 2, 3, …; shard k of an N-shard ShardedDatabase
  /// uses (k + 1, N) so every oid it allocates satisfies
  /// (oid - 1) % N == k — the ShardRouter's routing function — while the
  /// *global* oid space stays dense when creation round-robins across
  /// shards. Oids are identity, not placement: changing these never
  /// affects physical layout.
  uint64_t first_oid = 1;
  uint64_t oid_stride = 1;

  /// Upper bound on one blocking lock-manager Acquire (nanoseconds);
  /// expiring returns Status::Aborted. A backstop: intra-store cycles
  /// are caught by the wait-for DFS and cross-shard ones by the
  /// coordinator's GlobalWaitGraph, so the timeout only fires for
  /// conflicts neither edge approximation can express (e.g. FIFO-gated
  /// queue waits). ShardedDatabase lowers it for its shards so even
  /// those resolve in a fraction of a second.
  uint64_t lock_wait_timeout_nanos = 2'000'000'000;

  /// Simulated latency charged per page read, in nanoseconds.
  /// Default 10 ms: a 1998 commodity disk's seek + rotational delay.
  uint64_t read_latency_nanos = 10'000'000;

  /// Simulated latency charged per page write, in nanoseconds.
  uint64_t write_latency_nanos = 10'000'000;

  /// Simulated latency of forcing a commit record durable (a WAL
  /// fsync), charged once per *commit batch* on the group-commit
  /// pipeline — the cost group commit classically amortizes: N
  /// transactions sharing one batch pay one force instead of N.
  /// Default 0 keeps the seed's commit path free (the paper's protocol
  /// has no logging component); bench_multiclient's group-commit
  /// section sets ~1 ms (a sequential log write on the 1998 disk).
  uint64_t commit_log_force_nanos = 0;

  /// Number of background I/O worker threads servicing asynchronous
  /// StartRead/StartWrite submissions (DiskSim's issue/await path). 0 (the
  /// default) executes every submission inline on the calling thread — the
  /// blocking baseline, byte-identical to the historical synchronous path.
  /// With workers, BufferPool misses are issued to the queue and awaited,
  /// batched misses overlap, and dirty-victim write-back becomes a
  /// background flush instead of a write under the stripe mutex.
  size_t io_workers = 0;

  /// When true, I/O latency is injected in *wall-clock* time: whichever
  /// thread executes the request (an io_worker, or the caller when
  /// io_workers == 0) sleeps read/write_latency_nanos of real time before
  /// the bytes move. Simulated-clock charging is unchanged. This lets even
  /// a single-core host demonstrate genuine overlap: N batched misses
  /// across N workers cost ~1 latency of wall time instead of N. Meant for
  /// benchmarks/tests with latencies dialed down to the 100 µs range.
  bool wall_clock_io = false;

  /// Per-stripe cap on pending background write-backs before eviction
  /// throttles (awaits the oldest in-flight write). Bounds both memory
  /// (each entry owns one page image) and the recovery distance of the
  /// backing file. Only meaningful when io_workers > 0.
  size_t writeback_queue_depth = 16;

  /// Shared asynchronous I/O backend. When set, this DiskSim submits to
  /// the given worker group instead of spawning its own — ShardedDatabase
  /// sets one backend on every shard's options so per-shard pools share
  /// one I/O worker group. When null and io_workers > 0, the DiskSim owns
  /// a private backend.
  std::shared_ptr<IoBackend> io_backend;

  /// If non-empty, pages are also persisted (write-through) to this file,
  /// demonstrating durable storage; empty keeps the disk purely in memory.
  std::string backing_file;

  /// If non-empty, a *real* redo write-ahead log is kept at this path:
  /// the commit pipeline's leader appends every committed transaction's
  /// post-images and issues one fsync per group-commit batch before any
  /// member is acknowledged. Recovery (wal::RecoverDatabase /
  /// wal::RecoverShardedDatabase) replays the log over the newest
  /// loadable checkpoint snapshot. Under ShardedDatabase this is a base
  /// path: shard k logs to "<wal_path>.shard<k>" and the coordinator's
  /// commit markers go to "<wal_path>.coord". Empty (the default) keeps
  /// durability purely simulated via commit_log_force_nanos.
  std::string wal_path;

  /// If non-zero, the WAL rotates to a fresh segment once the active file
  /// exceeds this many bytes: segment 0 is `wal_path` itself, segment k>0
  /// is "<wal_path>.seg<k>". Recovery scans segments in order; a
  /// checkpoint deletes segments whose records all fall at or below the
  /// checkpoint watermark. 0 (the default) keeps one unbounded file.
  uint64_t wal_segment_bytes = 0;

  /// If non-zero, a background scheduler takes an automatic checkpoint
  /// (SaveSnapshot + WAL checkpoint record + segment pruning) every this
  /// many writer commits. The trigger is refused cleanly — retried on a
  /// later commit — whenever taking it now would violate the
  /// ColdRestart/quiesce rules (transactions holding locks or open read
  /// views). Requires wal_path to be set; 0 (default) keeps checkpoints
  /// manual-only.
  uint64_t checkpoint_interval_commits = 0;

  /// Returns InvalidArgument for nonsensical combinations.
  Status Validate() const {
    if (page_size < 128 || (page_size & (page_size - 1)) != 0) {
      return Status::InvalidArgument(
          "page_size must be a power of two >= 128");
    }
    if (buffer_pool_pages < 1) {
      return Status::InvalidArgument("buffer_pool_pages must be >= 1");
    }
    if (first_oid < 1 || oid_stride < 1) {
      return Status::InvalidArgument(
          "first_oid and oid_stride must be >= 1");
    }
    return Status::OK();
  }
};

inline const char* ReplacementPolicyToString(ReplacementPolicy policy) {
  switch (policy) {
    case ReplacementPolicy::kLru:
      return "LRU";
    case ReplacementPolicy::kClock:
      return "Clock";
    case ReplacementPolicy::kFifo:
      return "FIFO";
  }
  return "Unknown";
}

}  // namespace ocb

#endif  // OCB_STORAGE_STORAGE_OPTIONS_H_
