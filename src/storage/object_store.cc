#include "storage/object_store.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "util/format.h"

namespace ocb {

namespace {
// An optimistic resolution (table lookup → page latch → re-validate)
// retries when a concurrent relocation moved the object between the lookup
// and the latch. Every retry requires a *completed* relocation of the same
// object in the window, so the bound is generous: hitting it indicates a
// livelock bug, not load.
constexpr int kMaxResolveAttempts = 64;
}  // namespace

ObjectStore::ObjectStore(BufferPool* pool, Oid first_oid,
                         uint64_t oid_stride)
    : pool_(pool),
      table_(pool->latch_stripes()),
      first_oid_(first_oid < 1 ? 1 : first_oid),
      oid_stride_(oid_stride < 1 ? 1 : oid_stride),
      next_oid_(first_oid_) {}

Result<ObjectLocation> ObjectStore::Place(std::span<const uint8_t> bytes,
                                          PageId hint_page) {
  const size_t needed = bytes.size() + sizeof(Page::Slot);
  // 1. Hinted page (co-location request).
  // 2. Current fill page (append fast path).
  // 3. Any known page with space.
  // 4. Fresh page.
  PageId target = kInvalidPageId;
  if (hint_page != kInvalidPageId) {
    target = free_space_.FindPageWithSpace(needed, hint_page);
    if (target != hint_page) target = kInvalidPageId;  // Hint only.
  }
  const PageId fill = current_fill_page_.load(std::memory_order_relaxed);
  if (target == kInvalidPageId && fill != kInvalidPageId) {
    target = free_space_.FindPageWithSpace(needed, fill);
    if (target != fill) target = kInvalidPageId;
  }
  if (target == kInvalidPageId) {
    target = free_space_.FindPageWithSpace(needed);
  }
  if (target != kInvalidPageId) {
    OCB_ASSIGN_OR_RETURN(PageHandle handle,
                         pool_->FetchPage(target, LatchMode::kExclusive));
    Page page = handle.page();
    auto slot = page.Insert(bytes);
    if (slot.ok()) {
      handle.MarkDirty();
      free_space_.Update(target, page.FreeSpace());
      if (hint_page == kInvalidPageId) {
        current_fill_page_.store(target, std::memory_order_relaxed);
      }
      return ObjectLocation{target, slot.value()};
    }
    // Advisory estimate was stale (possibly a concurrent placement won the
    // space); refresh it and fall through to a fresh page.
    free_space_.Update(target, page.FreeSpace());
  }
  PageId new_page_id = kInvalidPageId;
  OCB_ASSIGN_OR_RETURN(PageHandle handle, pool_->NewPage(&new_page_id));
  Page page = handle.page();
  OCB_ASSIGN_OR_RETURN(SlotId slot, page.Insert(bytes));
  handle.MarkDirty();
  free_space_.Update(new_page_id, page.FreeSpace());
  current_fill_page_.store(new_page_id, std::memory_order_relaxed);
  stats_.data_pages.fetch_add(1, std::memory_order_relaxed);
  return ObjectLocation{new_page_id, slot};
}

Result<Oid> ObjectStore::Insert(std::span<const uint8_t> bytes,
                                Oid placement_hint) {
  if (bytes.size() > max_object_size()) {
    return Status::InvalidArgument(
        Format("object of %zu bytes exceeds max object size %zu",
               bytes.size(), max_object_size()));
  }
  PageId hint_page = kInvalidPageId;
  if (placement_hint != kInvalidOid) {
    ObjectLocation hint_loc;
    if (table_.Lookup(placement_hint, &hint_loc)) {
      hint_page = hint_loc.page_id;
    }
  }
  OCB_ASSIGN_OR_RETURN(ObjectLocation loc, Place(bytes, hint_page));
  const Oid oid = next_oid_.fetch_add(oid_stride_, std::memory_order_relaxed);
  table_.Put(oid, loc);
  stats_.objects.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_stored.fetch_add(bytes.size(), std::memory_order_relaxed);
  return oid;
}

Status ObjectStore::InsertWithOid(Oid oid, std::span<const uint8_t> bytes) {
  if (oid == kInvalidOid) {
    return Status::InvalidArgument("InsertWithOid requires a valid oid");
  }
  if (table_.Contains(oid)) {
    return Status::AlreadyExists(
        Format("oid %llu is live", (unsigned long long)oid));
  }
  if (bytes.size() > max_object_size()) {
    return Status::InvalidArgument("object exceeds max object size");
  }
  OCB_ASSIGN_OR_RETURN(ObjectLocation loc, Place(bytes, kInvalidPageId));
  if (!table_.PutIfAbsent(oid, loc)) {
    // Lost a (caller-contract-violating) race to register the same oid;
    // undo the placement so no orphan record leaks.
    auto handle = pool_->FetchPage(loc.page_id, LatchMode::kExclusive);
    if (handle.ok()) {
      Page page = handle->page();
      (void)page.Erase(loc.slot_id);
      handle->MarkDirty();
      free_space_.Update(loc.page_id, page.FreeSpace());
    }
    return Status::AlreadyExists(
        Format("oid %llu is live", (unsigned long long)oid));
  }
  // Keep the allocator ahead of re-registered oids while staying on the
  // store's progression (first_oid_ + k * oid_stride_): the bump target is
  // the smallest progression member > oid. Foreign oids below first_oid_
  // can never collide with future allocations, so they skip the bump.
  if (oid >= first_oid_) {
    const Oid bumped =
        oid + oid_stride_ - (oid - first_oid_) % oid_stride_;
    Oid expected = next_oid_.load(std::memory_order_relaxed);
    while (bumped > expected &&
           !next_oid_.compare_exchange_weak(expected, bumped,
                                            std::memory_order_relaxed)) {
    }
  }
  stats_.objects.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_stored.fetch_add(bytes.size(), std::memory_order_relaxed);
  return Status::OK();
}

Status ObjectStore::Prefetch(std::span<const Oid> oids) {
  if (oids.empty()) return Status::OK();
  // Unvalidated lookups are fine here: a location that goes stale before
  // the later Read just warms one extra page — the read path re-validates
  // under the latch as always.
  std::vector<PageId> pages;
  pages.reserve(oids.size());
  for (Oid oid : oids) {
    ObjectLocation loc;
    if (table_.Lookup(oid, &loc)) pages.push_back(loc.page_id);
  }
  return pool_->FetchMany(pages);
}

Status ObjectStore::Read(Oid oid, std::vector<uint8_t>* out) {
  for (int attempt = 0; attempt < kMaxResolveAttempts; ++attempt) {
    ObjectLocation loc;
    if (!table_.Lookup(oid, &loc)) {
      return Status::NotFound(Format("oid %llu", (unsigned long long)oid));
    }
    OCB_ASSIGN_OR_RETURN(PageHandle handle,
                         pool_->FetchPage(loc.page_id, LatchMode::kShared));
    // Re-validate under the latch: a relocation publishes the new location
    // while holding both page latches, so an unchanged entry proves the
    // record is still at `loc`.
    ObjectLocation now;
    if (!table_.Lookup(oid, &now)) {
      return Status::NotFound(Format("oid %llu", (unsigned long long)oid));
    }
    if (!(now == loc)) continue;  // Moved between lookup and latch.
    const Page page = handle.page();
    OCB_ASSIGN_OR_RETURN(std::span<const uint8_t> record,
                         page.Read(loc.slot_id));
    out->assign(record.begin(), record.end());
    return Status::OK();
  }
  return Status::Aborted(
      Format("oid %llu kept relocating during read",
             (unsigned long long)oid));
}

Status ObjectStore::Update(Oid oid, std::span<const uint8_t> bytes) {
  if (bytes.size() > max_object_size()) {
    return Status::InvalidArgument("object exceeds max object size");
  }
  for (int attempt = 0; attempt < kMaxResolveAttempts; ++attempt) {
    ObjectLocation loc;
    if (!table_.Lookup(oid, &loc)) {
      return Status::NotFound(Format("oid %llu", (unsigned long long)oid));
    }
    {
      OCB_ASSIGN_OR_RETURN(
          PageHandle handle,
          pool_->FetchPage(loc.page_id, LatchMode::kExclusive));
      ObjectLocation now;
      if (!table_.Lookup(oid, &now)) {
        return Status::NotFound(Format("oid %llu", (unsigned long long)oid));
      }
      if (!(now == loc)) continue;
      Page page = handle.page();
      OCB_ASSIGN_OR_RETURN(std::span<const uint8_t> old_record,
                           page.Read(loc.slot_id));
      const size_t old_size = old_record.size();
      Status st = page.Update(loc.slot_id, bytes);
      if (st.ok()) {
        handle.MarkDirty();
        free_space_.Update(loc.page_id, page.FreeSpace());
        stats_.bytes_stored.fetch_add(bytes.size(),
                                      std::memory_order_relaxed);
        stats_.bytes_stored.fetch_sub(old_size, std::memory_order_relaxed);
        return Status::OK();
      }
      if (!st.IsNoSpace()) return st;
      // Does not fit on its page any more: relocate (the move re-validates
      // and erases the old copy under both latches).
    }
    OCB_ASSIGN_OR_RETURN(ObjectLocation moved,
                         MoveRecord(oid, bytes, kInvalidPageId));
    (void)moved;
    return Status::OK();
  }
  return Status::Aborted(
      Format("oid %llu kept relocating during update",
             (unsigned long long)oid));
}

Result<ObjectLocation> ObjectStore::MoveRecord(Oid oid,
                                               std::span<const uint8_t> bytes,
                                               PageId hint_page) {
  const size_t needed = bytes.size() + sizeof(Page::Slot);
  for (int attempt = 0; attempt < kMaxResolveAttempts; ++attempt) {
    ObjectLocation loc;
    if (!table_.Lookup(oid, &loc)) {
      return Status::NotFound(Format("oid %llu", (unsigned long long)oid));
    }
    // Destination candidate: hint page, then fill page, then any page with
    // room; never the source page (the caller either proved the record no
    // longer fits there or wants it moved off).
    PageId dest = kInvalidPageId;
    if (hint_page != kInvalidPageId && hint_page != loc.page_id) {
      dest = free_space_.FindPageWithSpace(needed, hint_page);
      if (dest != hint_page) dest = kInvalidPageId;  // Hint only.
    }
    if (dest == kInvalidPageId) {
      const PageId fill = current_fill_page_.load(std::memory_order_relaxed);
      if (fill != kInvalidPageId && fill != loc.page_id) {
        dest = free_space_.FindPageWithSpace(needed, fill);
        if (dest != fill) dest = kInvalidPageId;
      }
    }
    if (dest == kInvalidPageId) {
      dest = free_space_.FindPageWithSpace(needed);
      if (dest == loc.page_id) dest = kInvalidPageId;
    }
    PageHandle src, dst;
    PageId dest_page = dest;
    const bool fresh = dest == kInvalidPageId;
    if (!fresh) {
      // Latch source and destination in ascending page-id order so
      // concurrent movers can never deadlock each other.
      if (dest < loc.page_id) {
        OCB_ASSIGN_OR_RETURN(dst,
                             pool_->FetchPage(dest, LatchMode::kExclusive));
        OCB_ASSIGN_OR_RETURN(
            src, pool_->FetchPage(loc.page_id, LatchMode::kExclusive));
      } else {
        OCB_ASSIGN_OR_RETURN(
            src, pool_->FetchPage(loc.page_id, LatchMode::kExclusive));
        OCB_ASSIGN_OR_RETURN(dst,
                             pool_->FetchPage(dest, LatchMode::kExclusive));
      }
    } else {
      // A fresh page always has the highest page id yet, so this order is
      // ascending too.
      OCB_ASSIGN_OR_RETURN(
          src, pool_->FetchPage(loc.page_id, LatchMode::kExclusive));
      OCB_ASSIGN_OR_RETURN(dst, pool_->NewPage(&dest_page));
    }
    ObjectLocation now;
    if (!table_.Lookup(oid, &now)) {
      return Status::NotFound(Format("oid %llu", (unsigned long long)oid));
    }
    if (!(now == loc)) continue;  // Moved before we latched; retry.
    Page dest_view = dst.page();
    auto slot = dest_view.Insert(bytes);
    if (!slot.ok()) {
      if (fresh) return slot.status();  // Cannot happen for legal sizes.
      // Stale estimate (or a concurrent placement filled it): refresh the
      // map and retry with another destination.
      free_space_.Update(dest_page, dest_view.FreeSpace());
      continue;
    }
    dst.MarkDirty();
    Page src_view = src.page();
    OCB_ASSIGN_OR_RETURN(std::span<const uint8_t> old_record,
                         src_view.Read(loc.slot_id));
    const size_t old_size = old_record.size();
    OCB_RETURN_NOT_OK(src_view.Erase(loc.slot_id));
    src.MarkDirty();
    // Publish the new location while both latches are held: a reader
    // validating against either location sees a record that is really
    // there.
    const ObjectLocation moved{dest_page, slot.value()};
    table_.Put(oid, moved);
    free_space_.Update(loc.page_id, src_view.FreeSpace());
    free_space_.Update(dest_page, dest_view.FreeSpace());
    if (fresh) {
      stats_.data_pages.fetch_add(1, std::memory_order_relaxed);
      current_fill_page_.store(dest_page, std::memory_order_relaxed);
    }
    stats_.relocations.fetch_add(1, std::memory_order_relaxed);
    stats_.bytes_stored.fetch_add(bytes.size(), std::memory_order_relaxed);
    stats_.bytes_stored.fetch_sub(old_size, std::memory_order_relaxed);
    return moved;
  }
  return Status::Aborted(
      Format("oid %llu kept moving during relocation",
             (unsigned long long)oid));
}

Status ObjectStore::EraseRecord(Oid oid, size_t* erased_bytes) {
  for (int attempt = 0; attempt < kMaxResolveAttempts; ++attempt) {
    ObjectLocation loc;
    if (!table_.Lookup(oid, &loc)) {
      return Status::NotFound(Format("oid %llu", (unsigned long long)oid));
    }
    OCB_ASSIGN_OR_RETURN(
        PageHandle handle,
        pool_->FetchPage(loc.page_id, LatchMode::kExclusive));
    ObjectLocation now;
    if (!table_.Lookup(oid, &now)) {
      return Status::NotFound(Format("oid %llu", (unsigned long long)oid));
    }
    if (!(now == loc)) continue;
    Page page = handle.page();
    OCB_ASSIGN_OR_RETURN(std::span<const uint8_t> record,
                         page.Read(loc.slot_id));
    if (erased_bytes != nullptr) *erased_bytes = record.size();
    OCB_RETURN_NOT_OK(page.Erase(loc.slot_id));
    handle.MarkDirty();
    free_space_.Update(loc.page_id, page.FreeSpace());
    table_.Erase(oid);
    return Status::OK();
  }
  return Status::Aborted(
      Format("oid %llu kept relocating during delete",
             (unsigned long long)oid));
}

Status ObjectStore::Delete(Oid oid) {
  size_t erased = 0;
  OCB_RETURN_NOT_OK(EraseRecord(oid, &erased));
  stats_.bytes_stored.fetch_sub(erased, std::memory_order_relaxed);
  stats_.objects.fetch_sub(1, std::memory_order_relaxed);
  return Status::OK();
}

bool ObjectStore::Contains(Oid oid) const { return table_.Contains(oid); }

Result<ObjectLocation> ObjectStore::Locate(Oid oid) const {
  ObjectLocation loc;
  if (!table_.Lookup(oid, &loc)) {
    return Status::NotFound(Format("oid %llu", (unsigned long long)oid));
  }
  return loc;
}

Status ObjectStore::Relocate(Oid oid, Oid neighbor) {
  ObjectLocation loc;
  if (!table_.Lookup(oid, &loc)) {
    return Status::NotFound(Format("oid %llu", (unsigned long long)oid));
  }
  ObjectLocation neighbor_loc;
  if (!table_.Lookup(neighbor, &neighbor_loc)) {
    return Status::NotFound(
        Format("neighbor oid %llu", (unsigned long long)neighbor));
  }
  if (loc.page_id == neighbor_loc.page_id) return Status::OK();
  // Reorganizer primitive (callers quiesce): read-then-move is not atomic
  // against concurrent Updates of the same object, which quiescence rules
  // out.
  std::vector<uint8_t> bytes;
  OCB_RETURN_NOT_OK(Read(oid, &bytes));
  OCB_ASSIGN_OR_RETURN(ObjectLocation moved,
                       MoveRecord(oid, bytes, neighbor_loc.page_id));
  (void)moved;
  return Status::OK();
}

Status ObjectStore::PlaceSequence(const std::vector<Oid>& sequence) {
  return PlaceUnits({sequence});
}

Status ObjectStore::PlaceUnits(const std::vector<std::vector<Oid>>& units) {
  // Erase every listed object from its current page first, then re-place
  // them unit by unit on fresh pages. Erase-then-place keeps peak space at
  // one extra page sequence and guarantees the new layout is contiguous.
  // Quiesced by the caller: table entries dangle (point at erased slots)
  // between the two passes.
  struct Payload {
    Oid oid;
    std::vector<uint8_t> bytes;
  };
  std::vector<std::vector<Payload>> payload_units;
  payload_units.reserve(units.size());
  for (const auto& unit : units) {
    std::vector<Payload>& payloads = payload_units.emplace_back();
    payloads.reserve(unit.size());
    for (Oid oid : unit) {
      ObjectLocation loc;
      if (!table_.Lookup(oid, &loc)) {
        return Status::NotFound(Format("oid %llu in placement sequence",
                                       (unsigned long long)oid));
      }
      std::vector<uint8_t> bytes;
      OCB_RETURN_NOT_OK(Read(oid, &bytes));
      payloads.push_back(Payload{oid, std::move(bytes)});
      OCB_ASSIGN_OR_RETURN(
          PageHandle handle,
          pool_->FetchPage(loc.page_id, LatchMode::kExclusive));
      Page page = handle.page();
      OCB_RETURN_NOT_OK(page.Erase(loc.slot_id));
      handle.MarkDirty();
      free_space_.Update(loc.page_id, page.FreeSpace());
    }
  }
  // Re-place: within a unit objects are packed back to back; a unit that
  // does not fit in the current page's remainder opens a fresh page so
  // units never straddle page boundaries (oversized units still spill).
  PageId fill_page = kInvalidPageId;
  size_t fill_free = 0;
  for (const auto& payloads : payload_units) {
    size_t unit_bytes = 0;
    for (const Payload& p : payloads) {
      unit_bytes += p.bytes.size() + sizeof(Page::Slot);
    }
    if (fill_page != kInvalidPageId && fill_free < unit_bytes) {
      fill_page = kInvalidPageId;  // Align the unit to a fresh page.
    }
    for (const Payload& p : payloads) {
      ObjectLocation loc;
      bool placed = false;
      if (fill_page != kInvalidPageId) {
        OCB_ASSIGN_OR_RETURN(
            PageHandle handle,
            pool_->FetchPage(fill_page, LatchMode::kExclusive));
        Page page = handle.page();
        auto slot = page.Insert(p.bytes);
        if (slot.ok()) {
          handle.MarkDirty();
          fill_free = page.FreeSpace();
          free_space_.Update(fill_page, fill_free);
          loc = ObjectLocation{fill_page, slot.value()};
          placed = true;
        }
      }
      if (!placed) {
        PageId new_page_id = kInvalidPageId;
        OCB_ASSIGN_OR_RETURN(PageHandle handle, pool_->NewPage(&new_page_id));
        Page page = handle.page();
        OCB_ASSIGN_OR_RETURN(SlotId slot, page.Insert(p.bytes));
        handle.MarkDirty();
        fill_free = page.FreeSpace();
        free_space_.Update(new_page_id, fill_free);
        stats_.data_pages.fetch_add(1, std::memory_order_relaxed);
        fill_page = new_page_id;
        loc = ObjectLocation{new_page_id, slot};
      }
      table_.Put(p.oid, loc);
      stats_.relocations.fetch_add(1, std::memory_order_relaxed);
    }
  }
  current_fill_page_.store(kInvalidPageId, std::memory_order_relaxed);
  return Status::OK();
}

std::vector<Oid> ObjectStore::LiveOids() const {
  std::vector<Oid> oids;
  oids.reserve(static_cast<size_t>(table_.size()));
  table_.ForEach(
      [&](Oid oid, const ObjectLocation&) { oids.push_back(oid); });
  std::sort(oids.begin(), oids.end());
  return oids;
}

Status ObjectStore::RestoreTable(
    std::unordered_map<Oid, ObjectLocation> table, Oid next_oid) {
  // Scan every referenced page once to rebuild the free-space map and
  // byte statistics (generation-scope I/O: it is part of loading).
  std::unordered_set<PageId> pages;
  for (const auto& [oid, loc] : table) pages.insert(loc.page_id);
  const uint64_t object_count = table.size();
  table_.Reset(std::move(table));
  next_oid_.store(next_oid, std::memory_order_relaxed);
  current_fill_page_.store(kInvalidPageId, std::memory_order_relaxed);
  free_space_.Clear();
  stats_ = ObjectStoreStats{};
  stats_.objects.store(object_count, std::memory_order_relaxed);
  for (PageId page_id : pages) {
    OCB_ASSIGN_OR_RETURN(PageHandle handle,
                         pool_->FetchPage(page_id, LatchMode::kShared));
    const Page page = handle.page();
    free_space_.Update(page_id, page.FreeSpace());
    stats_.bytes_stored.fetch_add(page.LiveBytes(),
                                  std::memory_order_relaxed);
    stats_.data_pages.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

std::vector<Oid> ObjectStore::LiveOidsInPhysicalOrder() const {
  std::vector<std::pair<ObjectLocation, Oid>> located;
  located.reserve(static_cast<size_t>(table_.size()));
  table_.ForEach([&](Oid oid, const ObjectLocation& loc) {
    located.push_back({loc, oid});
  });
  std::sort(located.begin(), located.end(),
            [](const auto& a, const auto& b) {
              if (a.first.page_id != b.first.page_id) {
                return a.first.page_id < b.first.page_id;
              }
              return a.first.slot_id < b.first.slot_id;
            });
  std::vector<Oid> oids;
  oids.reserve(located.size());
  for (const auto& [loc, oid] : located) oids.push_back(oid);
  return oids;
}

}  // namespace ocb
