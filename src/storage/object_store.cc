#include "storage/object_store.h"

#include <algorithm>
#include <unordered_set>

#include "util/format.h"

namespace ocb {

ObjectStore::ObjectStore(BufferPool* pool) : pool_(pool) {}

Result<ObjectLocation> ObjectStore::Place(std::span<const uint8_t> bytes,
                                          PageId hint_page) {
  const size_t needed = bytes.size() + sizeof(Page::Slot);
  // 1. Hinted page (co-location request).
  // 2. Current fill page (append fast path).
  // 3. Any known page with space.
  // 4. Fresh page.
  PageId target = kInvalidPageId;
  if (hint_page != kInvalidPageId) {
    target = free_space_.FindPageWithSpace(needed, hint_page);
    if (target != hint_page) target = kInvalidPageId;  // Hint only.
  }
  if (target == kInvalidPageId && current_fill_page_ != kInvalidPageId) {
    target = free_space_.FindPageWithSpace(needed, current_fill_page_);
    if (target != current_fill_page_) target = kInvalidPageId;
  }
  if (target == kInvalidPageId) {
    target = free_space_.FindPageWithSpace(needed);
  }
  if (target != kInvalidPageId) {
    OCB_ASSIGN_OR_RETURN(PageHandle handle, pool_->FetchPage(target));
    Page page = handle.page();
    auto slot = page.Insert(bytes);
    if (slot.ok()) {
      handle.MarkDirty();
      free_space_.Update(target, page.FreeSpace());
      if (hint_page == kInvalidPageId) current_fill_page_ = target;
      return ObjectLocation{target, slot.value()};
    }
    // Advisory estimate was stale; fall through to a fresh page.
    free_space_.Update(target, page.FreeSpace());
  }
  PageId new_page_id = kInvalidPageId;
  OCB_ASSIGN_OR_RETURN(PageHandle handle, pool_->NewPage(&new_page_id));
  Page page = handle.page();
  OCB_ASSIGN_OR_RETURN(SlotId slot, page.Insert(bytes));
  handle.MarkDirty();
  free_space_.Update(new_page_id, page.FreeSpace());
  current_fill_page_ = new_page_id;
  ++stats_.data_pages;
  return ObjectLocation{new_page_id, slot};
}

Result<Oid> ObjectStore::Insert(std::span<const uint8_t> bytes,
                                Oid placement_hint) {
  if (bytes.size() > max_object_size()) {
    return Status::InvalidArgument(
        Format("object of %zu bytes exceeds max object size %zu",
               bytes.size(), max_object_size()));
  }
  PageId hint_page = kInvalidPageId;
  if (placement_hint != kInvalidOid) {
    auto it = table_.find(placement_hint);
    if (it != table_.end()) hint_page = it->second.page_id;
  }
  OCB_ASSIGN_OR_RETURN(ObjectLocation loc, Place(bytes, hint_page));
  const Oid oid = next_oid_++;
  table_[oid] = loc;
  ++stats_.objects;
  stats_.bytes_stored += bytes.size();
  return oid;
}

Status ObjectStore::InsertWithOid(Oid oid, std::span<const uint8_t> bytes) {
  if (oid == kInvalidOid) {
    return Status::InvalidArgument("InsertWithOid requires a valid oid");
  }
  if (table_.count(oid) != 0) {
    return Status::AlreadyExists(
        Format("oid %llu is live", (unsigned long long)oid));
  }
  if (bytes.size() > max_object_size()) {
    return Status::InvalidArgument("object exceeds max object size");
  }
  OCB_ASSIGN_OR_RETURN(ObjectLocation loc, Place(bytes, kInvalidPageId));
  table_[oid] = loc;
  if (oid >= next_oid_) next_oid_ = oid + 1;
  ++stats_.objects;
  stats_.bytes_stored += bytes.size();
  return Status::OK();
}

Status ObjectStore::Read(Oid oid, std::vector<uint8_t>* out) {
  auto it = table_.find(oid);
  if (it == table_.end()) {
    return Status::NotFound(Format("oid %llu", (unsigned long long)oid));
  }
  OCB_ASSIGN_OR_RETURN(PageHandle handle,
                       pool_->FetchPage(it->second.page_id));
  const Page page = handle.page();
  OCB_ASSIGN_OR_RETURN(std::span<const uint8_t> record,
                       page.Read(it->second.slot_id));
  out->assign(record.begin(), record.end());
  return Status::OK();
}

Status ObjectStore::Update(Oid oid, std::span<const uint8_t> bytes) {
  auto it = table_.find(oid);
  if (it == table_.end()) {
    return Status::NotFound(Format("oid %llu", (unsigned long long)oid));
  }
  if (bytes.size() > max_object_size()) {
    return Status::InvalidArgument("object exceeds max object size");
  }
  {
    OCB_ASSIGN_OR_RETURN(PageHandle handle,
                         pool_->FetchPage(it->second.page_id));
    Page page = handle.page();
    OCB_ASSIGN_OR_RETURN(std::span<const uint8_t> old_record,
                         page.Read(it->second.slot_id));
    const size_t old_size = old_record.size();
    Status st = page.Update(it->second.slot_id, bytes);
    if (st.ok()) {
      handle.MarkDirty();
      free_space_.Update(it->second.page_id, page.FreeSpace());
      stats_.bytes_stored += bytes.size();
      stats_.bytes_stored -= old_size;
      return Status::OK();
    }
    if (!st.IsNoSpace()) return st;
    // Does not fit on its page any more: erase here, relocate below.
    OCB_RETURN_NOT_OK(page.Erase(it->second.slot_id));
    handle.MarkDirty();
    free_space_.Update(it->second.page_id, page.FreeSpace());
    stats_.bytes_stored -= old_size;
  }
  OCB_ASSIGN_OR_RETURN(ObjectLocation loc, Place(bytes, kInvalidPageId));
  it->second = loc;
  ++stats_.relocations;
  stats_.bytes_stored += bytes.size();
  return Status::OK();
}

Status ObjectStore::Delete(Oid oid) {
  auto it = table_.find(oid);
  if (it == table_.end()) {
    return Status::NotFound(Format("oid %llu", (unsigned long long)oid));
  }
  OCB_ASSIGN_OR_RETURN(PageHandle handle,
                       pool_->FetchPage(it->second.page_id));
  Page page = handle.page();
  OCB_ASSIGN_OR_RETURN(std::span<const uint8_t> record,
                       page.Read(it->second.slot_id));
  stats_.bytes_stored -= record.size();
  OCB_RETURN_NOT_OK(page.Erase(it->second.slot_id));
  handle.MarkDirty();
  free_space_.Update(it->second.page_id, page.FreeSpace());
  table_.erase(it);
  --stats_.objects;
  return Status::OK();
}

bool ObjectStore::Contains(Oid oid) const { return table_.count(oid) > 0; }

Result<ObjectLocation> ObjectStore::Locate(Oid oid) const {
  auto it = table_.find(oid);
  if (it == table_.end()) {
    return Status::NotFound(Format("oid %llu", (unsigned long long)oid));
  }
  return it->second;
}

Status ObjectStore::Relocate(Oid oid, Oid neighbor) {
  auto it = table_.find(oid);
  if (it == table_.end()) {
    return Status::NotFound(Format("oid %llu", (unsigned long long)oid));
  }
  auto nit = table_.find(neighbor);
  if (nit == table_.end()) {
    return Status::NotFound(
        Format("neighbor oid %llu", (unsigned long long)neighbor));
  }
  if (it->second.page_id == nit->second.page_id) return Status::OK();
  std::vector<uint8_t> bytes;
  OCB_RETURN_NOT_OK(Read(oid, &bytes));
  {
    OCB_ASSIGN_OR_RETURN(PageHandle handle,
                         pool_->FetchPage(it->second.page_id));
    Page page = handle.page();
    OCB_RETURN_NOT_OK(page.Erase(it->second.slot_id));
    handle.MarkDirty();
    free_space_.Update(it->second.page_id, page.FreeSpace());
  }
  OCB_ASSIGN_OR_RETURN(ObjectLocation loc,
                       Place(bytes, nit->second.page_id));
  it->second = loc;
  ++stats_.relocations;
  return Status::OK();
}

Status ObjectStore::PlaceSequence(const std::vector<Oid>& sequence) {
  return PlaceUnits({sequence});
}

Status ObjectStore::PlaceUnits(const std::vector<std::vector<Oid>>& units) {
  // Erase every listed object from its current page first, then re-place
  // them unit by unit on fresh pages. Erase-then-place keeps peak space at
  // one extra page sequence and guarantees the new layout is contiguous.
  struct Payload {
    Oid oid;
    std::vector<uint8_t> bytes;
  };
  std::vector<std::vector<Payload>> payload_units;
  payload_units.reserve(units.size());
  for (const auto& unit : units) {
    std::vector<Payload>& payloads = payload_units.emplace_back();
    payloads.reserve(unit.size());
    for (Oid oid : unit) {
      auto it = table_.find(oid);
      if (it == table_.end()) {
        return Status::NotFound(Format("oid %llu in placement sequence",
                                       (unsigned long long)oid));
      }
      std::vector<uint8_t> bytes;
      OCB_RETURN_NOT_OK(Read(oid, &bytes));
      payloads.push_back(Payload{oid, std::move(bytes)});
      OCB_ASSIGN_OR_RETURN(PageHandle handle,
                           pool_->FetchPage(it->second.page_id));
      Page page = handle.page();
      OCB_RETURN_NOT_OK(page.Erase(it->second.slot_id));
      handle.MarkDirty();
      free_space_.Update(it->second.page_id, page.FreeSpace());
    }
  }
  // Re-place: within a unit objects are packed back to back; a unit that
  // does not fit in the current page's remainder opens a fresh page so
  // units never straddle page boundaries (oversized units still spill).
  PageId fill_page = kInvalidPageId;
  size_t fill_free = 0;
  for (const auto& payloads : payload_units) {
    size_t unit_bytes = 0;
    for (const Payload& p : payloads) {
      unit_bytes += p.bytes.size() + sizeof(Page::Slot);
    }
    if (fill_page != kInvalidPageId && fill_free < unit_bytes) {
      fill_page = kInvalidPageId;  // Align the unit to a fresh page.
    }
    for (const Payload& p : payloads) {
      ObjectLocation loc;
      bool placed = false;
      if (fill_page != kInvalidPageId) {
        OCB_ASSIGN_OR_RETURN(PageHandle handle, pool_->FetchPage(fill_page));
        Page page = handle.page();
        auto slot = page.Insert(p.bytes);
        if (slot.ok()) {
          handle.MarkDirty();
          fill_free = page.FreeSpace();
          free_space_.Update(fill_page, fill_free);
          loc = ObjectLocation{fill_page, slot.value()};
          placed = true;
        }
      }
      if (!placed) {
        PageId new_page_id = kInvalidPageId;
        OCB_ASSIGN_OR_RETURN(PageHandle handle, pool_->NewPage(&new_page_id));
        Page page = handle.page();
        OCB_ASSIGN_OR_RETURN(SlotId slot, page.Insert(p.bytes));
        handle.MarkDirty();
        fill_free = page.FreeSpace();
        free_space_.Update(new_page_id, fill_free);
        ++stats_.data_pages;
        fill_page = new_page_id;
        loc = ObjectLocation{new_page_id, slot};
      }
      table_[p.oid] = loc;
      ++stats_.relocations;
    }
  }
  current_fill_page_ = kInvalidPageId;
  return Status::OK();
}

std::vector<Oid> ObjectStore::LiveOids() const {
  std::vector<Oid> oids;
  oids.reserve(table_.size());
  for (const auto& [oid, loc] : table_) oids.push_back(oid);
  std::sort(oids.begin(), oids.end());
  return oids;
}

Status ObjectStore::RestoreTable(
    std::unordered_map<Oid, ObjectLocation> table, Oid next_oid) {
  table_ = std::move(table);
  next_oid_ = next_oid;
  current_fill_page_ = kInvalidPageId;
  free_space_.Clear();
  stats_ = ObjectStoreStats{};
  stats_.objects = table_.size();
  // Scan every referenced page once to rebuild the free-space map and
  // byte statistics (generation-scope I/O: it is part of loading).
  std::unordered_set<PageId> pages;
  for (const auto& [oid, loc] : table_) pages.insert(loc.page_id);
  for (PageId page_id : pages) {
    OCB_ASSIGN_OR_RETURN(PageHandle handle, pool_->FetchPage(page_id));
    const Page page = handle.page();
    free_space_.Update(page_id, page.FreeSpace());
    stats_.bytes_stored += page.LiveBytes();
    ++stats_.data_pages;
  }
  return Status::OK();
}

std::vector<Oid> ObjectStore::LiveOidsInPhysicalOrder() const {
  std::vector<std::pair<ObjectLocation, Oid>> located;
  located.reserve(table_.size());
  for (const auto& [oid, loc] : table_) located.push_back({loc, oid});
  std::sort(located.begin(), located.end(),
            [](const auto& a, const auto& b) {
              if (a.first.page_id != b.first.page_id) {
                return a.first.page_id < b.first.page_id;
              }
              return a.first.slot_id < b.first.slot_id;
            });
  std::vector<Oid> oids;
  oids.reserve(located.size());
  for (const auto& [loc, oid] : located) oids.push_back(oid);
  return oids;
}

}  // namespace ocb
