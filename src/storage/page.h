/// \file page.h
/// \brief Slotted-page layout over a raw byte buffer.
///
/// Layout (offsets in bytes):
///
///   [0..12)   PageHeader { page_id, slot_count, free_space_end, flags }
///   [12..)    slot directory, growing upward: Slot { offset, length }
///   ...       free space
///   [...page) record data, growing downward from the end of the page
///
/// A Page does not own memory: it is a typed view over a frame owned by the
/// buffer pool (or any aligned buffer), so "reading a page" never copies.
/// Records are variable length; deleting a record frees its slot for reuse
/// and its bytes are reclaimed by Compact() when insertion needs room.

#ifndef OCB_STORAGE_PAGE_H_
#define OCB_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>
#include <span>

#include "storage/types.h"
#include "util/status.h"

namespace ocb {

/// \brief Mutable view of one slotted page.
class Page {
 public:
  struct Header {
    PageId page_id;
    uint16_t slot_count;      ///< Number of slot directory entries.
    uint16_t free_space_end;  ///< Records occupy [free_space_end, page_size).
    uint32_t flags;           ///< Reserved.
  };
  static_assert(sizeof(Header) == 12);

  struct Slot {
    uint16_t offset;  ///< Byte offset of the record; kFreeSlot if unused.
    uint16_t length;  ///< Record length in bytes.
  };
  static constexpr uint16_t kFreeSlot = 0xFFFF;

  /// Wraps \p data (of \p page_size bytes) without taking ownership.
  Page(uint8_t* data, size_t page_size)
      : data_(data), page_size_(page_size) {}

  /// Formats the buffer as an empty page with the given id.
  void Init(PageId page_id);

  PageId page_id() const { return header()->page_id; }
  uint16_t slot_count() const { return header()->slot_count; }

  /// Bytes available for one more record *including* a possible new slot
  /// directory entry (contiguous + reclaimable via compaction).
  size_t FreeSpace() const;

  /// True if a record of \p length bytes can be inserted.
  bool CanInsert(size_t length) const;

  /// Inserts a record; returns its slot id. Reuses free slots. Compacts the
  /// page if fragmented. Fails with NoSpace when the record does not fit.
  Result<SlotId> Insert(std::span<const uint8_t> record);

  /// Returns a read-only view of the record in \p slot (valid until the
  /// page is next mutated).
  Result<std::span<const uint8_t>> Read(SlotId slot) const;

  /// Overwrites the record in \p slot. The new record may have a different
  /// length; fails with NoSpace when it cannot fit even after compaction.
  Status Update(SlotId slot, std::span<const uint8_t> record);

  /// Frees \p slot. The slot id may be reused by later insertions.
  Status Erase(SlotId slot);

  /// Number of live (non-free) records.
  uint16_t LiveRecords() const;

  /// Total bytes of live record payload.
  size_t LiveBytes() const;

  /// Rewrites records contiguously at the end of the page, squeezing out
  /// holes left by Erase/Update. Slot ids are preserved.
  void Compact();

  /// Page capacity for a single record on an empty page.
  static size_t MaxRecordSize(size_t page_size) {
    return page_size - sizeof(Header) - sizeof(Slot);
  }

 private:
  Header* header() { return reinterpret_cast<Header*>(data_); }
  const Header* header() const {
    return reinterpret_cast<const Header*>(data_);
  }
  Slot* slot_array() {
    return reinterpret_cast<Slot*>(data_ + sizeof(Header));
  }
  const Slot* slot_array() const {
    return reinterpret_cast<const Slot*>(data_ + sizeof(Header));
  }
  size_t DirectoryEnd() const {
    return sizeof(Header) + sizeof(Slot) * header()->slot_count;
  }
  /// Finds a free slot directory entry, or kInvalidSlotId.
  SlotId FindFreeSlot() const;

  uint8_t* data_;
  size_t page_size_;
};

}  // namespace ocb

#endif  // OCB_STORAGE_PAGE_H_
