/// \file free_space_map.h
/// \brief Coarse free-space tracking for object placement.
///
/// Maps each data page to its last known free-byte count. Placement is
/// append-mostly (the generator and the reclusterer both fill pages in
/// sequence), so lookups first try the current fill page and only fall back
/// to a scan over known pages.

#ifndef OCB_STORAGE_FREE_SPACE_MAP_H_
#define OCB_STORAGE_FREE_SPACE_MAP_H_

#include <cstdint>
#include <unordered_map>

#include "storage/types.h"
#include "util/sync.h"

namespace ocb {

/// \brief Page-id → approximate free bytes. Purely advisory: the object
/// store re-checks actual page capacity before inserting.
///
/// Internally synchronized (one leaf mutex, never held while acquiring any
/// other lock), so placement threads may update estimates concurrently.
/// Because the map is advisory, a torn read costs at most one wasted page
/// probe: FindPageWithSpace may return a page that just filled up, and the
/// store's insert re-check handles it.
class FreeSpaceMap {
 public:
  /// Records the free-space estimate for a page.
  void Update(PageId page_id, size_t free_bytes) {
    MutexLock lock(mu_);
    spaces_[page_id] = free_bytes;
  }

  /// Removes a page from consideration (e.g. retired by reclustering).
  void Remove(PageId page_id) {
    MutexLock lock(mu_);
    spaces_.erase(page_id);
  }

  /// Returns a page believed to have at least \p needed free bytes, or
  /// kInvalidPageId. Prefers the hinted page when it qualifies.
  PageId FindPageWithSpace(size_t needed, PageId hint = kInvalidPageId) const {
    MutexLock lock(mu_);
    if (hint != kInvalidPageId) {
      auto it = spaces_.find(hint);
      if (it != spaces_.end() && it->second >= needed) return hint;
    }
    for (const auto& [page_id, free_bytes] : spaces_) {
      if (free_bytes >= needed) return page_id;
    }
    return kInvalidPageId;
  }

  size_t num_pages() const {
    MutexLock lock(mu_);
    return spaces_.size();
  }

  void Clear() {
    MutexLock lock(mu_);
    spaces_.clear();
  }

 private:
  mutable Mutex mu_{lockdep::kFreeSpaceClass};
  std::unordered_map<PageId, size_t> spaces_ OCB_GUARDED_BY(mu_);
};

}  // namespace ocb

#endif  // OCB_STORAGE_FREE_SPACE_MAP_H_
