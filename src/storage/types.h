/// \file types.h
/// \brief Fundamental identifier types of the storage substrate.

#ifndef OCB_STORAGE_TYPES_H_
#define OCB_STORAGE_TYPES_H_

#include <cstdint>
#include <limits>

namespace ocb {

/// Physical page number on the (simulated) disk.
using PageId = uint32_t;
inline constexpr PageId kInvalidPageId =
    std::numeric_limits<PageId>::max();

/// Slot index within a slotted page.
using SlotId = uint16_t;
inline constexpr SlotId kInvalidSlotId =
    std::numeric_limits<SlotId>::max();

/// Logical object identifier. Objects are always addressed by Oid through
/// the object table, never by physical address, so physical reclustering
/// can move objects freely (the Texas-swizzling contract at the level that
/// matters for I/O counting).
using Oid = uint64_t;
inline constexpr Oid kInvalidOid = 0;  ///< Oids are allocated from 1.

/// Physical location of an object: page + slot.
struct ObjectLocation {
  PageId page_id = kInvalidPageId;
  SlotId slot_id = kInvalidSlotId;

  bool valid() const { return page_id != kInvalidPageId; }
  bool operator==(const ObjectLocation&) const = default;
};

}  // namespace ocb

#endif  // OCB_STORAGE_TYPES_H_
