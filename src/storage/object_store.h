/// \file object_store.h
/// \brief OID-addressed variable-length record store over the buffer pool.
///
/// The object store is the substrate equivalent of the Texas persistent
/// store: objects are byte strings addressed by a stable Oid through an
/// object table (Oid → page/slot). Physical placement is fully decoupled
/// from identity, which is what allows a clustering policy to *relocate*
/// objects (or rewrite the whole database in a chosen order) without
/// touching any inter-object reference.
///
/// Latching contract (who may call what under which latch):
///
///   * The store is thread-safe. Every page access goes through latched
///     PageHandles: reads latch the object's page kShared, mutations latch
///     it kExclusive, so readers of one page proceed in parallel and never
///     observe a torn record. No caller-side serialization is required —
///     the Database facade latch no longer covers physical access.
///   * The object table is a striped hash map (see striped_oid_map.h).
///     Resolution is optimistic: look up the location, latch the page,
///     re-validate the entry under the latch — a concurrent relocation
///     publishes the new location while holding *both* page latches, so a
///     validated entry proves the record is where the table says.
///   * Insert/Update-relocation/Relocate latch source and destination
///     pages in ascending page-id order (a fresh destination page always
///     has the highest id yet, so the fresh-page path is ascending by
///     construction) — the store never deadlocks against itself.
///   * Logical isolation (who may read/write *which object* when) is the
///     caller's business: the Database's LockManager on the transactional
///     path, quiescence (BufferPool::BeginQuiesce via Database::
///     QuiesceGuard) for reorganizers. PlaceSequence/PlaceUnits/
///     RestoreTable and the table/extent snapshots taken by SaveSnapshot
///     assume a quiesced store.

#ifndef OCB_STORAGE_OBJECT_STORE_H_
#define OCB_STORAGE_OBJECT_STORE_H_

#include <atomic>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/free_space_map.h"
#include "storage/striped_oid_map.h"
#include "storage/types.h"
#include "util/status.h"

namespace ocb {

/// Aggregate placement statistics (atomic: placement threads update them
/// concurrently; copying yields a consistent-enough snapshot for deltas).
struct ObjectStoreStats {
  std::atomic<uint64_t> objects{0};
  std::atomic<uint64_t> data_pages{0};
  std::atomic<uint64_t> relocations{0};
  std::atomic<uint64_t> bytes_stored{0};

  ObjectStoreStats() = default;
  ObjectStoreStats(const ObjectStoreStats& other)
      : objects(other.objects.load(std::memory_order_relaxed)),
        data_pages(other.data_pages.load(std::memory_order_relaxed)),
        relocations(other.relocations.load(std::memory_order_relaxed)),
        bytes_stored(other.bytes_stored.load(std::memory_order_relaxed)) {}
  ObjectStoreStats& operator=(const ObjectStoreStats& other) {
    objects.store(other.objects.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    data_pages.store(other.data_pages.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    relocations.store(other.relocations.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    bytes_stored.store(other.bytes_stored.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    return *this;
  }
};

/// \brief Variable-length object heap with stable logical ids.
class ObjectStore {
 public:
  /// \param first_oid / \p oid_stride Arithmetic progression the store
  ///        allocates oids from (defaults: the dense sequence 1, 2, 3…).
  ///        A ShardedDatabase gives shard k of N the progression
  ///        (k + 1, N) so ownership is recomputable from the oid alone —
  ///        see sharding/shard_router.h.
  explicit ObjectStore(BufferPool* pool, Oid first_oid = 1,
                       uint64_t oid_stride = 1);

  ObjectStore(const ObjectStore&) = delete;
  ObjectStore& operator=(const ObjectStore&) = delete;

  /// Stores \p bytes as a new object and returns its Oid (the next value
  /// of the store's allocation progression).
  ///
  /// \param placement_hint If valid, try to co-locate the new object on the
  ///        same page as the hinted object (clustering policies use this).
  Result<Oid> Insert(std::span<const uint8_t> bytes,
                     Oid placement_hint = kInvalidOid);

  /// Re-registers a previously allocated (since deleted) \p oid with the
  /// given bytes. Used by transaction rollback to restore the pre-image of
  /// an object the aborting transaction deleted. AlreadyExists if \p oid
  /// is live.
  Status InsertWithOid(Oid oid, std::span<const uint8_t> bytes);

  /// Copies the object's bytes into \p out (under the page's shared
  /// latch, so the copy is never torn by a concurrent writer).
  Status Read(Oid oid, std::vector<uint8_t>* out);

  /// Warms the cache for a batch of upcoming reads: resolves each oid to
  /// its page and issues every buffer-pool miss as ONE batch
  /// (BufferPool::FetchMany) so the disk reads overlap instead of
  /// serializing miss-by-miss. Purely advisory — unknown oids are skipped,
  /// a stale location just prefetches a page the read path will not use,
  /// and errors are returned only as a hint (the authoritative error
  /// surfaces on the later Read). Never blocks on a page latch.
  Status Prefetch(std::span<const Oid> oids);

  /// Replaces the object's bytes (may relocate it if it no longer fits).
  Status Update(Oid oid, std::span<const uint8_t> bytes);

  /// Deletes the object. Its Oid is never reused.
  Status Delete(Oid oid);

  /// True if \p oid currently maps to a live object.
  bool Contains(Oid oid) const;

  /// Physical location (page/slot) of an object; NotFound if deleted.
  Result<ObjectLocation> Locate(Oid oid) const;

  /// Moves an object next to \p neighbor (same page if it fits, else a
  /// fresh page). Used by incremental clustering policies.
  Status Relocate(Oid oid, Oid neighbor);

  /// Rewrites the given objects, in order, onto a fresh sequence of pages;
  /// objects not listed keep their location. This is the primitive behind
  /// "physical clustering organization" (DSTC phase 5): the page images the
  /// sequence produces are exactly the clustering units laid end to end.
  ///
  /// Old page space is reclaimed (erased); I/O for the rewrite is charged
  /// to whatever scope the caller set on the DiskSim. Callers quiesce the
  /// store first (Database::QuiesceGuard).
  Status PlaceSequence(const std::vector<Oid>& sequence);

  /// Like PlaceSequence, but starts a fresh page whenever the next *unit*
  /// does not fit entirely in the current page's remaining space, so a
  /// clustering unit never straddles a page boundary (a unit larger than
  /// one page still spills). This is how clustering units are "applied to
  /// consider a new object placement on disk" (DSTC phase 5).
  Status PlaceUnits(const std::vector<std::vector<Oid>>& units);

  /// Largest object the store accepts.
  size_t max_object_size() const {
    return Page::MaxRecordSize(pool_->disk()->page_size());
  }

  /// Oids of all live objects, ascending.
  std::vector<Oid> LiveOids() const;

  /// Oids of all live objects in physical order (page, then slot) —
  /// reorganizers use this to preserve residual locality when compacting
  /// objects that no clustering unit claimed.
  std::vector<Oid> LiveOidsInPhysicalOrder() const;

  /// Upper bound on the oids allocated so far: every live oid is
  /// <= max_oid(), and snapshot save/load round-trips max_oid() + 1 as
  /// the restored counter. (With oid_stride == 1 this is exactly the
  /// highest Oid allocated, 0 if none.)
  Oid max_oid() const {
    return next_oid_.load(std::memory_order_relaxed) - 1;
  }

  const ObjectStoreStats& stats() const { return stats_; }

  BufferPool* buffer_pool() { return pool_; }

  // --- Snapshot support (see oodb/snapshot.h) ---

  /// Copy of the object table for serialization (callers quiesce first for
  /// a point-in-time image).
  std::unordered_map<Oid, ObjectLocation> TableSnapshot() const {
    return table_.Snapshot();
  }

  /// Restores the table and oid counter from a snapshot, then rebuilds
  /// free-space and statistics by scanning every data page. Requires the
  /// underlying disk to already hold the snapshot's page images.
  Status RestoreTable(std::unordered_map<Oid, ObjectLocation> table,
                      Oid next_oid);

 private:
  /// Inserts bytes into a page with room (hinted page, any page with space,
  /// or a fresh page) and returns the location. Self-contained: returns
  /// with no latches held.
  Result<ObjectLocation> Place(std::span<const uint8_t> bytes,
                               PageId hint_page);

  /// Moves \p oid's record (holding \p bytes as its new contents) off its
  /// current page: destination chosen via the free-space map with
  /// \p hint_page preferred, fresh page as fallback. Source and
  /// destination are latched in ascending page-id order; the table entry
  /// is re-validated under the latches and republished before either latch
  /// drops, so concurrent readers either see the old location (record
  /// still there) or the new one (record already there).
  Result<ObjectLocation> MoveRecord(Oid oid, std::span<const uint8_t> bytes,
                                    PageId hint_page);

  /// Erases \p oid's record (validated against the table under the page's
  /// X latch) and removes the table entry. Returns the erased record's
  /// size via \p erased_bytes when non-null.
  Status EraseRecord(Oid oid, size_t* erased_bytes);

  BufferPool* pool_;
  FreeSpaceMap free_space_;
  StripedOidMap table_;
  const Oid first_oid_;
  const uint64_t oid_stride_;
  std::atomic<Oid> next_oid_;
  std::atomic<PageId> current_fill_page_{kInvalidPageId};
  ObjectStoreStats stats_;
};

}  // namespace ocb

#endif  // OCB_STORAGE_OBJECT_STORE_H_
