/// \file object_store.h
/// \brief OID-addressed variable-length record store over the buffer pool.
///
/// The object store is the substrate equivalent of the Texas persistent
/// store: objects are byte strings addressed by a stable Oid through an
/// object table (Oid → page/slot). Physical placement is fully decoupled
/// from identity, which is what allows a clustering policy to *relocate*
/// objects (or rewrite the whole database in a chosen order) without
/// touching any inter-object reference.

#ifndef OCB_STORAGE_OBJECT_STORE_H_
#define OCB_STORAGE_OBJECT_STORE_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/free_space_map.h"
#include "storage/types.h"
#include "util/status.h"

namespace ocb {

/// Aggregate placement statistics.
struct ObjectStoreStats {
  uint64_t objects = 0;
  uint64_t data_pages = 0;
  uint64_t relocations = 0;
  uint64_t bytes_stored = 0;
};

/// \brief Variable-length object heap with stable logical ids.
///
/// Not thread-safe (see DiskSim note); the Database facade serializes.
class ObjectStore {
 public:
  explicit ObjectStore(BufferPool* pool);

  ObjectStore(const ObjectStore&) = delete;
  ObjectStore& operator=(const ObjectStore&) = delete;

  /// Stores \p bytes as a new object and returns its Oid (allocated
  /// sequentially from 1).
  ///
  /// \param placement_hint If valid, try to co-locate the new object on the
  ///        same page as the hinted object (clustering policies use this).
  Result<Oid> Insert(std::span<const uint8_t> bytes,
                     Oid placement_hint = kInvalidOid);

  /// Re-registers a previously allocated (since deleted) \p oid with the
  /// given bytes. Used by transaction rollback to restore the pre-image of
  /// an object the aborting transaction deleted. AlreadyExists if \p oid
  /// is live.
  Status InsertWithOid(Oid oid, std::span<const uint8_t> bytes);

  /// Copies the object's bytes into \p out.
  Status Read(Oid oid, std::vector<uint8_t>* out);

  /// Replaces the object's bytes (may relocate it if it no longer fits).
  Status Update(Oid oid, std::span<const uint8_t> bytes);

  /// Deletes the object. Its Oid is never reused.
  Status Delete(Oid oid);

  /// True if \p oid currently maps to a live object.
  bool Contains(Oid oid) const;

  /// Physical location (page/slot) of an object; NotFound if deleted.
  Result<ObjectLocation> Locate(Oid oid) const;

  /// Moves an object next to \p neighbor (same page if it fits, else a
  /// fresh page). Used by incremental clustering policies.
  Status Relocate(Oid oid, Oid neighbor);

  /// Rewrites the given objects, in order, onto a fresh sequence of pages;
  /// objects not listed keep their location. This is the primitive behind
  /// "physical clustering organization" (DSTC phase 5): the page images the
  /// sequence produces are exactly the clustering units laid end to end.
  ///
  /// Old page space is reclaimed (erased); I/O for the rewrite is charged
  /// to whatever scope the caller set on the DiskSim.
  Status PlaceSequence(const std::vector<Oid>& sequence);

  /// Like PlaceSequence, but starts a fresh page whenever the next *unit*
  /// does not fit entirely in the current page's remaining space, so a
  /// clustering unit never straddles a page boundary (a unit larger than
  /// one page still spills). This is how clustering units are "applied to
  /// consider a new object placement on disk" (DSTC phase 5).
  Status PlaceUnits(const std::vector<std::vector<Oid>>& units);

  /// Largest object the store accepts.
  size_t max_object_size() const {
    return Page::MaxRecordSize(pool_->disk()->page_size());
  }

  /// Oids of all live objects, ascending.
  std::vector<Oid> LiveOids() const;

  /// Oids of all live objects in physical order (page, then slot) —
  /// reorganizers use this to preserve residual locality when compacting
  /// objects that no clustering unit claimed.
  std::vector<Oid> LiveOidsInPhysicalOrder() const;

  /// Highest Oid allocated so far (0 if none).
  Oid max_oid() const { return next_oid_ - 1; }

  const ObjectStoreStats& stats() const { return stats_; }

  BufferPool* buffer_pool() { return pool_; }

  // --- Snapshot support (see oodb/snapshot.h) ---

  /// Read access to the object table for serialization.
  const std::unordered_map<Oid, ObjectLocation>& table() const {
    return table_;
  }

  /// Restores the table and oid counter from a snapshot, then rebuilds
  /// free-space and statistics by scanning every data page. Requires the
  /// underlying disk to already hold the snapshot's page images.
  Status RestoreTable(std::unordered_map<Oid, ObjectLocation> table,
                      Oid next_oid);

 private:
  /// Inserts bytes into a page with room (hinted page, any page with space,
  /// or a fresh page) and returns the location.
  Result<ObjectLocation> Place(std::span<const uint8_t> bytes,
                               PageId hint_page);

  BufferPool* pool_;
  FreeSpaceMap free_space_;
  std::unordered_map<Oid, ObjectLocation> table_;
  Oid next_oid_ = 1;
  PageId current_fill_page_ = kInvalidPageId;
  ObjectStoreStats stats_;
};

}  // namespace ocb

#endif  // OCB_STORAGE_OBJECT_STORE_H_
