#include "storage/page.h"

#include <algorithm>
#include <vector>

#include "util/format.h"

namespace ocb {

void Page::Init(PageId page_id) {
  std::memset(data_, 0, page_size_);
  Header* h = header();
  h->page_id = page_id;
  h->slot_count = 0;
  h->free_space_end = static_cast<uint16_t>(page_size_);
  h->flags = 0;
}

size_t Page::FreeSpace() const {
  // Contiguous gap plus holes reclaimable by compaction, minus room for a
  // new slot entry if no free slot exists.
  const size_t payload_capacity =
      page_size_ - DirectoryEnd();
  const size_t live = LiveBytes();
  const bool has_free_slot = FindFreeSlot() != kInvalidSlotId;
  const size_t slot_cost = has_free_slot ? 0 : sizeof(Slot);
  if (payload_capacity < live + slot_cost) return 0;
  return payload_capacity - live - slot_cost;
}

bool Page::CanInsert(size_t length) const { return FreeSpace() >= length; }

SlotId Page::FindFreeSlot() const {
  const Slot* slots = slot_array();
  for (uint16_t i = 0; i < header()->slot_count; ++i) {
    if (slots[i].offset == kFreeSlot) return i;
  }
  return kInvalidSlotId;
}

Result<SlotId> Page::Insert(std::span<const uint8_t> record) {
  if (record.size() > MaxRecordSize(page_size_)) {
    return Status::InvalidArgument(
        Format("record of %zu bytes exceeds page capacity %zu", record.size(),
               MaxRecordSize(page_size_)));
  }
  if (!CanInsert(record.size())) {
    return Status::NoSpace("page full");
  }
  SlotId slot = FindFreeSlot();
  Header* h = header();
  const bool needs_new_slot = (slot == kInvalidSlotId);
  const size_t needed =
      record.size() + (needs_new_slot ? sizeof(Slot) : 0);
  // Ensure the contiguous gap can hold the record *and* a grown slot
  // directory; compact first if fragmentation hides the free space
  // (compaction never moves the directory, so growing it afterwards is
  // safe).
  if (static_cast<size_t>(h->free_space_end) - DirectoryEnd() < needed) {
    Compact();
  }
  if (needs_new_slot) {
    slot = h->slot_count;
    ++h->slot_count;
    slot_array()[slot].offset = kFreeSlot;
    slot_array()[slot].length = 0;
  }
  h->free_space_end = static_cast<uint16_t>(h->free_space_end - record.size());
  // Empty spans carry a null data(); memcpy's pointers must be non-null
  // even for size 0 (UBSan enforces the letter of the law).
  if (!record.empty()) {
    std::memcpy(data_ + h->free_space_end, record.data(), record.size());
  }
  slot_array()[slot].offset = h->free_space_end;
  slot_array()[slot].length = static_cast<uint16_t>(record.size());
  return slot;
}

Result<std::span<const uint8_t>> Page::Read(SlotId slot) const {
  if (slot >= header()->slot_count) {
    return Status::NotFound(Format("slot %u out of range", slot));
  }
  const Slot& s = slot_array()[slot];
  if (s.offset == kFreeSlot) {
    return Status::NotFound(Format("slot %u is free", slot));
  }
  return std::span<const uint8_t>(data_ + s.offset, s.length);
}

Status Page::Update(SlotId slot, std::span<const uint8_t> record) {
  if (slot >= header()->slot_count) {
    return Status::NotFound(Format("slot %u out of range", slot));
  }
  Slot& s = slot_array()[slot];
  if (s.offset == kFreeSlot) {
    return Status::NotFound(Format("slot %u is free", slot));
  }
  if (record.size() <= s.length) {
    // Shrink (or equal) in place; trailing bytes become a hole reclaimed by
    // the next compaction.
    if (!record.empty()) {
      std::memcpy(data_ + s.offset, record.data(), record.size());
    }
    s.length = static_cast<uint16_t>(record.size());
    return Status::OK();
  }
  // Grow: erase then reinsert into the same slot id.
  const uint16_t old_offset = s.offset;
  const uint16_t old_length = s.length;
  s.offset = kFreeSlot;
  s.length = 0;
  if (!CanInsert(record.size())) {
    s.offset = old_offset;  // Roll back.
    s.length = old_length;
    return Status::NoSpace("record grew beyond page capacity");
  }
  Header* h = header();
  const size_t gap = h->free_space_end - DirectoryEnd();
  if (gap < record.size()) Compact();
  h->free_space_end = static_cast<uint16_t>(h->free_space_end - record.size());
  // Empty spans carry a null data(); memcpy's pointers must be non-null
  // even for size 0 (UBSan enforces the letter of the law).
  if (!record.empty()) {
    std::memcpy(data_ + h->free_space_end, record.data(), record.size());
  }
  Slot& s2 = slot_array()[slot];  // Compact() may have moved others, not us.
  s2.offset = h->free_space_end;
  s2.length = static_cast<uint16_t>(record.size());
  return Status::OK();
}

Status Page::Erase(SlotId slot) {
  if (slot >= header()->slot_count) {
    return Status::NotFound(Format("slot %u out of range", slot));
  }
  Slot& s = slot_array()[slot];
  if (s.offset == kFreeSlot) {
    return Status::NotFound(Format("slot %u already free", slot));
  }
  s.offset = kFreeSlot;
  s.length = 0;
  return Status::OK();
}

uint16_t Page::LiveRecords() const {
  const Slot* slots = slot_array();
  uint16_t live = 0;
  for (uint16_t i = 0; i < header()->slot_count; ++i) {
    if (slots[i].offset != kFreeSlot) ++live;
  }
  return live;
}

size_t Page::LiveBytes() const {
  const Slot* slots = slot_array();
  size_t bytes = 0;
  for (uint16_t i = 0; i < header()->slot_count; ++i) {
    if (slots[i].offset != kFreeSlot) bytes += slots[i].length;
  }
  return bytes;
}

void Page::Compact() {
  Header* h = header();
  Slot* slots = slot_array();
  // Sort live slots by offset descending so records can be slid toward the
  // end of the page without overlap.
  std::vector<uint16_t> live;
  live.reserve(h->slot_count);
  for (uint16_t i = 0; i < h->slot_count; ++i) {
    if (slots[i].offset != kFreeSlot) live.push_back(i);
  }
  std::sort(live.begin(), live.end(), [&](uint16_t a, uint16_t b) {
    return slots[a].offset > slots[b].offset;
  });
  uint16_t cursor = static_cast<uint16_t>(page_size_);
  for (uint16_t idx : live) {
    Slot& s = slots[idx];
    cursor = static_cast<uint16_t>(cursor - s.length);
    std::memmove(data_ + cursor, data_ + s.offset, s.length);
    s.offset = cursor;
  }
  h->free_space_end = cursor;
}

}  // namespace ocb
