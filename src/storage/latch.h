/// \file latch.h
/// \brief Short-duration physical latches and per-thread wait accounting.
///
/// The storage substrate distinguishes *locks* (logical, transaction-
/// lifetime, managed by LockManager) from *latches* (physical, operation-
/// lifetime, plain mutexes). This header provides the latch-side plumbing:
///
///   * LatchMode — the access mode a page is latched in (kShared for
///     readers, kExclusive for mutators), carried by PageHandle.
///   * ThreadLatchWaits — a thread-local pair of counters recording how
///     long the calling thread spent *blocked* acquiring (a) the Database
///     facade/catalog latch and (b) page-level latches (frame latches and
///     buffer-pool stripe mutexes). The transaction executor snapshots the
///     counters around each transaction so bench_multiclient can report
///     facade-latch vs page-latch wait per phase — the headline number of
///     the per-page-latching refactor.
///
/// The accounting helpers take the uncontended path for free: they try_lock
/// first and only start a clock when that fails, so the fast path adds two
/// atomic ops at most and no timer syscalls.

#ifndef OCB_STORAGE_LATCH_H_
#define OCB_STORAGE_LATCH_H_

#include <chrono>
#include <cstdint>

#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "util/sync.h"

namespace ocb {

/// Access mode a page latch is held in.
enum class LatchMode : uint8_t {
  kShared = 0,    ///< Concurrent readers of the frame allowed.
  kExclusive = 1  ///< Single mutator, no readers.
};

inline const char* LatchModeToString(LatchMode mode) {
  return mode == LatchMode::kShared ? "S" : "X";
}

/// Per-thread cumulative latch-wait accounting (nanoseconds of wall time
/// spent blocked). Reset-by-snapshot: callers record before/after values
/// and subtract; the counters themselves only grow.
///
/// Contract for delta-takers (the transaction executor is the canonical
/// one): the counters are `thread_local`, so a delta is meaningful only
/// when the "before" and "after" snapshots are taken on the SAME thread
/// that performed the latched work — handing a transaction across
/// threads mid-flight would split its wait between two counters. That
/// is why TransactionResult's facade/page wait fields are filled inside
/// Execute on the client thread, and why the per-client rows of
/// bench_multiclient sum exactly to the phase totals: every nanosecond
/// of blocked wall time is charged to exactly one thread, once.
///
/// The counters deliberately never reset: concurrent phases on one
/// thread (cold run, warm run) each subtract their own start snapshot,
/// so overlapping intervals still attribute correctly. In a sharded
/// deployment the same two counters serve all shards — the split is by
/// latch *class* (facade/catalog vs page), not by owner, so per-shard
/// attribution comes from lock-manager stats instead.
struct ThreadLatchWaits {
  uint64_t facade_nanos = 0;  ///< Database facade/catalog latch.
  uint64_t page_nanos = 0;    ///< Frame latches + buffer-pool stripes.
};

/// The calling thread's latch-wait counters.
inline ThreadLatchWaits& CurrentThreadLatchWaits() {
  thread_local ThreadLatchWaits waits;
  return waits;
}

namespace latch_internal {

/// Registry histogram for blocked page-latch acquisitions ("latch.page.
/// wait", nanoseconds). Cached function-local static: one registry lookup
/// per process, null when the layer is compiled out. The thread-local
/// ThreadLatchWaits counters above stay the *primary* sink (they feed
/// TransactionResult); the registry histogram is a second sink fed from
/// the SAME measurement, so the two can never drift (ISSUE 6, dedupe
/// satellite).
inline obs::LatencyHistogram* PageWaitHistogram() {
#ifndef OCB_OBS_DISABLED
  static obs::LatencyHistogram* h =
      obs::MetricsRegistry::Global().GetHistogram("latch.page.wait");
  return h;
#else
  return nullptr;
#endif
}

/// Same for the facade/catalog latch ("latch.facade.wait").
inline obs::LatencyHistogram* FacadeWaitHistogram() {
#ifndef OCB_OBS_DISABLED
  static obs::LatencyHistogram* h =
      obs::MetricsRegistry::Global().GetHistogram("latch.facade.wait");
  return h;
#else
  return nullptr;
#endif
}

template <typename LockFn, typename TryFn>
inline void AcquireTimed(uint64_t* counter, obs::LatencyHistogram* histo,
                         const char* span_name, TryFn&& try_fn,
                         LockFn&& lock_fn) {
  if (try_fn()) return;  // Uncontended: no timing overhead.
  const auto start = std::chrono::steady_clock::now();
  lock_fn();
  const uint64_t waited = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  *counter += waited;
#ifndef OCB_OBS_DISABLED
  if (histo != nullptr) histo->Record(waited);
  auto& rec = obs::TraceRecorder::Global();
  if (rec.enabled()) {
    // Reconstruct the span start in recorder time from the measured wait
    // (both clocks are steady_clock, so the subtraction is exact).
    const uint64_t end_ns = rec.NowNanos();
    rec.RecordComplete(span_name, end_ns >= waited ? end_ns - waited : 0,
                       waited);
  }
#else
  (void)histo;
  (void)span_name;
#endif
}

}  // namespace latch_internal

// The helpers below are acquire-shaped: the caller (or its RAII guard /
// PageHandle) owns the release. The ocb::Mutex / ocb::SharedMutex
// overloads carry the caller-facing OCB_ACQUIRE contract; their *bodies*
// are exempt because the acquisition happens inside AcquireTimed's
// lambdas, a hop the intraprocedural analysis cannot follow (lockdep
// still sees it, via the wrappers' lock paths). The generic template
// stays unannotated: it also serves std types (the serialize-physical
// std::recursive_mutex), and a capability attribute on a non-capability
// type is itself a -Wthread-safety-attributes error.

/// Locks \p mu exclusively, charging blocked time to the thread's
/// page-latch counter (generic, unannotated — see above).
template <typename MutexT>
inline void LatchPageExclusive(MutexT& mu) {
  latch_internal::AcquireTimed(
      &CurrentThreadLatchWaits().page_nanos,
      latch_internal::PageWaitHistogram(), "latch.page.wait",
      [&] { return mu.try_lock(); }, [&] { mu.lock(); });
}

inline void LatchPageExclusive(Mutex& mu)
    OCB_ACQUIRE(mu) OCB_NO_THREAD_SAFETY_ANALYSIS {
  LatchPageExclusive<Mutex>(mu);
}

inline void LatchPageExclusive(SharedMutex& mu)
    OCB_ACQUIRE(mu) OCB_NO_THREAD_SAFETY_ANALYSIS {
  LatchPageExclusive<SharedMutex>(mu);
}

/// Locks \p mu shared, charging blocked time to the page-latch counter.
inline void LatchPageShared(SharedMutex& mu)
    OCB_ACQUIRE_SHARED(mu) OCB_NO_THREAD_SAFETY_ANALYSIS {
  latch_internal::AcquireTimed(
      &CurrentThreadLatchWaits().page_nanos,
      latch_internal::PageWaitHistogram(), "latch.page.wait",
      [&] { return mu.try_lock_shared(); }, [&] { mu.lock_shared(); });
}

/// Locks \p mu exclusively, charging blocked time to the facade counter
/// (generic, unannotated — see above).
template <typename MutexT>
inline void LatchFacadeExclusive(MutexT& mu) {
  latch_internal::AcquireTimed(
      &CurrentThreadLatchWaits().facade_nanos,
      latch_internal::FacadeWaitHistogram(), "latch.facade.wait",
      [&] { return mu.try_lock(); }, [&] { mu.lock(); });
}

inline void LatchFacadeExclusive(SharedMutex& mu)
    OCB_ACQUIRE(mu) OCB_NO_THREAD_SAFETY_ANALYSIS {
  LatchFacadeExclusive<SharedMutex>(mu);
}

/// Locks \p mu shared, charging blocked time to the facade counter.
inline void LatchFacadeShared(SharedMutex& mu)
    OCB_ACQUIRE_SHARED(mu) OCB_NO_THREAD_SAFETY_ANALYSIS {
  latch_internal::AcquireTimed(
      &CurrentThreadLatchWaits().facade_nanos,
      latch_internal::FacadeWaitHistogram(), "latch.facade.wait",
      [&] { return mu.try_lock_shared(); }, [&] { mu.lock_shared(); });
}

/// RAII shared/exclusive facade-latch guards with wait accounting.
class OCB_SCOPED_CAPABILITY TimedSharedLock {
 public:
  explicit TimedSharedLock(SharedMutex& mu) OCB_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    LatchFacadeShared(mu_);
  }
  ~TimedSharedLock() OCB_RELEASE() { mu_.unlock_shared(); }
  TimedSharedLock(const TimedSharedLock&) = delete;
  TimedSharedLock& operator=(const TimedSharedLock&) = delete;

 private:
  SharedMutex& mu_;
};

class OCB_SCOPED_CAPABILITY TimedUniqueLock {
 public:
  explicit TimedUniqueLock(SharedMutex& mu) OCB_ACQUIRE(mu) : mu_(mu) {
    LatchFacadeExclusive(mu_);
  }
  ~TimedUniqueLock() OCB_RELEASE() { mu_.unlock(); }
  TimedUniqueLock(const TimedUniqueLock&) = delete;
  TimedUniqueLock& operator=(const TimedUniqueLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace ocb

#endif  // OCB_STORAGE_LATCH_H_
