#include "storage/io_backend.h"

#include <algorithm>

#include "storage/disk_sim.h"

namespace ocb {

IoBackend::IoBackend(size_t workers) {
  const size_t count = std::max<size_t>(workers, 1);
  workers_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

IoBackend::~IoBackend() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void IoBackend::Submit(IoRequest* request) {
  {
    MutexLock lock(mu_);
    queue_.push_back(request);
  }
  cv_.notify_one();
}

// TSA-exempt: the cv wait unlocks/relocks mu_ through the unique_lock, a
// flow the intraprocedural analysis cannot follow.
void IoBackend::WorkerLoop() OCB_NO_THREAD_SAFETY_ANALYSIS {
  for (;;) {
    IoRequest* request = nullptr;
    {
      std::unique_lock<Mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      // Drain the queue even when stopping: a request still queued here
      // has an owner blocked in Await (or an IoTicket destructor) that
      // only we can release.
      if (queue_.empty()) return;
      request = queue_.front();
      queue_.pop_front();
    }
    DiskSim::ExecuteRequest(request);
  }
}

}  // namespace ocb
