#include "storage/io_backend.h"

#include <algorithm>

#include "storage/disk_sim.h"

namespace ocb {

IoBackend::IoBackend(size_t workers) {
  const size_t count = std::max<size_t>(workers, 1);
  workers_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

IoBackend::~IoBackend() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void IoBackend::Submit(IoRequest* request) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(request);
  }
  cv_.notify_one();
}

void IoBackend::WorkerLoop() {
  for (;;) {
    IoRequest* request = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      // Drain the queue even when stopping: a request still queued here
      // has an owner blocked in Await (or an IoTicket destructor) that
      // only we can release.
      if (queue_.empty()) return;
      request = queue_.front();
      queue_.pop_front();
    }
    DiskSim::ExecuteRequest(request);
  }
}

}  // namespace ocb
