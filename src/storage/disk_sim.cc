#include "storage/disk_sim.h"

#include <chrono>
#include <cstring>
#include <thread>

#include "obs/metrics_registry.h"
#include "storage/io_backend.h"
#include "util/format.h"

namespace ocb {

namespace {

/// Wall time the submitting thread spends blocked in Await ("io.wait",
/// nanoseconds). Cached function-local static, null when obs is off.
obs::LatencyHistogram* IoWaitHistogram() {
#ifndef OCB_OBS_DISABLED
  static obs::LatencyHistogram* h =
      obs::MetricsRegistry::Global().GetHistogram("io.wait");
  return h;
#else
  return nullptr;
#endif
}

}  // namespace

const char* IoScopeToString(IoScope scope) {
  switch (scope) {
    case IoScope::kGeneration:
      return "generation";
    case IoScope::kTransaction:
      return "transaction";
    case IoScope::kClustering:
      return "clustering";
    case IoScope::kNumScopes:
      break;
  }
  return "unknown";
}

IoTicket::~IoTicket() {
  if (req_ != nullptr) DiskSim::WaitDone(req_.get());
}

IoTicket& IoTicket::operator=(IoTicket&& other) noexcept {
  if (this != &other) {
    if (req_ != nullptr) DiskSim::WaitDone(req_.get());
    req_ = std::move(other.req_);
  }
  return *this;
}

DiskSim::DiskSim(const StorageOptions& options, SimClock* clock)
    : options_(options), clock_(clock) {
  // Resolve the io.wait instrument now, with no lock held: Await runs
  // under buffer-pool frame latches on the miss path, and the registry
  // mutex ranks above every engine mutex, so the one-time lookup must
  // never happen there.
  IoWaitHistogram();
  if (!options_.backing_file.empty()) {
    backing_ = std::fopen(options_.backing_file.c_str(), "wb+");
  }
  if (options_.io_backend != nullptr) {
    backend_ = options_.io_backend;
  } else if (options_.io_workers > 0) {
    backend_ = std::make_shared<IoBackend>(options_.io_workers);
  }
}

DiskSim::~DiskSim() {
  // Every ticket owner (the buffer pool) awaits before tearing the pool
  // down, so no request of ours is in flight here; a shared backend may
  // outlive us and keep serving the other shards.
  backend_.reset();
  if (backing_ != nullptr) std::fclose(backing_);
}

PageId DiskSim::AllocatePage() {
  auto page = std::make_unique<uint8_t[]>(options_.page_size);
  std::memset(page.get(), 0, options_.page_size);
  WriterMutexLock lock(pages_mu_);
  pages_.push_back(std::move(page));
  return static_cast<PageId>(pages_.size() - 1);
}

// TSA-exempt: the freshly built request is thread-private until Dispatch,
// so its done/status fields are written without its mutex.
std::unique_ptr<IoRequest> DiskSim::PrepareRequest(
    IoRequest::Kind kind, PageId page_id) OCB_NO_THREAD_SAFETY_ANALYSIS {
  auto req = std::make_unique<IoRequest>();
  req->kind = kind;
  req->disk = this;
  req->page_id = page_id;
  {
    ReaderMutexLock lock(pages_mu_);
    if (page_id >= pages_.size()) {
      req->done = true;
      req->status = Status::IOError(
          Format(kind == IoRequest::Kind::kRead
                     ? "read of unallocated page %u"
                     : "write of unallocated page %u",
                 page_id));
      return req;
    }
  }
  // Accounting happens at issue, on the caller's thread: the counter
  // increment and the simulated completion instant depend only on the
  // submission sequence, never on worker scheduling, so single-threaded
  // runs stay bit-deterministic.
  if (kind == IoRequest::Kind::kRead) {
    ++counters_[static_cast<size_t>(scope())].reads;
    req->latency_nanos = options_.read_latency_nanos;
  } else {
    ++counters_[static_cast<size_t>(scope())].writes;
    req->latency_nanos = options_.write_latency_nanos;
  }
  serial_io_nanos_.fetch_add(req->latency_nanos, std::memory_order_relaxed);
  if (clock_ != nullptr) {
    req->complete_sim_nanos = clock_->now_nanos() + req->latency_nanos;
  }
  return req;
}

void DiskSim::ExecuteRequest(IoRequest* request) {
  DiskSim* disk = request->disk;
  Status status = Status::OK();
  if (disk->options_.wall_clock_io && request->latency_nanos > 0) {
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(request->latency_nanos));
  }
  if (request->kind == IoRequest::Kind::kRead) {
    ReaderMutexLock lock(disk->pages_mu_);
    std::memcpy(request->out, disk->pages_[request->page_id].get(),
                disk->options_.page_size);
  } else {
    const uint8_t* src = request->payload.get();
    {
      ReaderMutexLock lock(disk->pages_mu_);
      std::memcpy(disk->pages_[request->page_id].get(), src,
                  disk->options_.page_size);
    }
    if (disk->backing_ != nullptr) {
      MutexLock file_lock(disk->backing_mu_);
      const long offset = static_cast<long>(request->page_id) *
                          static_cast<long>(disk->options_.page_size);
      if (std::fseek(disk->backing_, offset, SEEK_SET) != 0 ||
          std::fwrite(src, 1, disk->options_.page_size, disk->backing_) !=
              disk->options_.page_size) {
        status = Status::IOError(
            Format("write-through to backing file failed for page %u",
                   request->page_id));
      }
    }
  }
  {
    MutexLock lock(request->mu);
    request->status = status;
    request->done = true;
    // Notify while still holding the mutex: the moment `done` is visible,
    // the awaiting thread may destroy the request, so the broadcast must
    // complete before the waiter can re-acquire the lock and return.
    request->cv.notify_all();
  }
}

void DiskSim::Dispatch(IoRequest* request) {
  if (backend_ != nullptr) {
    backend_->Submit(request);
  } else {
    ExecuteRequest(request);
  }
}

// TSA-exempt: cv wait relocks through the unique_lock.
void DiskSim::WaitDone(IoRequest* request) OCB_NO_THREAD_SAFETY_ANALYSIS {
  std::unique_lock<Mutex> lock(request->mu);
  request->cv.wait(lock, [&] { return request->done; });
}

IoTicket DiskSim::StartRead(PageId page_id, uint8_t* out) {
  auto req = PrepareRequest(IoRequest::Kind::kRead, page_id);
  if (!req->done) {
    req->out = out;
    Dispatch(req.get());
  }
  return IoTicket(std::move(req));
}

IoTicket DiskSim::StartWrite(PageId page_id,
                             std::unique_ptr<uint8_t[]> data) {
  auto req = PrepareRequest(IoRequest::Kind::kWrite, page_id);
  if (!req->done) {
    req->payload = std::move(data);
    Dispatch(req.get());
  }
  return IoTicket(std::move(req));
}

// TSA-exempt: cv wait relocks through the unique_lock.
Status DiskSim::Await(IoTicket& ticket) OCB_NO_THREAD_SAFETY_ANALYSIS {
  if (!ticket.valid()) {
    return Status::InvalidArgument("await of an empty io ticket");
  }
  std::unique_ptr<IoRequest> req = std::move(ticket.req_);
  // Resolve before locking: the first lookup takes the registry mutex,
  // which ranks above io.request in the lock hierarchy.
  obs::LatencyHistogram* histo = IoWaitHistogram();
  {
    std::unique_lock<Mutex> lock(req->mu);
    if (!req->done) {
      const auto start = std::chrono::steady_clock::now();
      req->cv.wait(lock, [&] { return req->done; });
#ifndef OCB_OBS_DISABLED
      if (histo != nullptr) {
        histo->Record(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start)
                .count()));
      }
#else
      (void)start;
      (void)histo;
#endif
    }
  }
  if (req->status.ok() && clock_ != nullptr &&
      req->complete_sim_nanos != 0) {
    charged_io_nanos_.fetch_add(clock_->AdvanceTo(req->complete_sim_nanos),
                                std::memory_order_relaxed);
  }
  return req->status;
}

Status DiskSim::ReadPage(PageId page_id, uint8_t* out) {
  auto req = PrepareRequest(IoRequest::Kind::kRead, page_id);
  if (!req->done) {
    // Blocking wrapper: execute inline on the caller — semantically
    // Await(StartRead(...)) minus the queue hop. In wall_clock_io mode
    // the injected sleep lands on this thread, which is exactly the
    // blocking baseline's cost model.
    req->out = out;
    ExecuteRequest(req.get());
  }
  if (req->status.ok() && clock_ != nullptr &&
      req->complete_sim_nanos != 0) {
    charged_io_nanos_.fetch_add(clock_->AdvanceTo(req->complete_sim_nanos),
                                std::memory_order_relaxed);
  }
  return req->status;
}

Status DiskSim::WritePage(PageId page_id, const uint8_t* data) {
  auto req = PrepareRequest(IoRequest::Kind::kWrite, page_id);
  if (!req->done) {
    // Blocking write: copy once so the inline executor can share the
    // async code path (which owns its payload).
    auto payload = std::make_unique<uint8_t[]>(options_.page_size);
    std::memcpy(payload.get(), data, options_.page_size);
    req->payload = std::move(payload);
    ExecuteRequest(req.get());
  }
  if (req->status.ok() && clock_ != nullptr &&
      req->complete_sim_nanos != 0) {
    charged_io_nanos_.fetch_add(clock_->AdvanceTo(req->complete_sim_nanos),
                                std::memory_order_relaxed);
  }
  return req->status;
}

void DiskSim::LoadPageImage(PageId page_id, const uint8_t* data) {
  ReaderMutexLock lock(pages_mu_);
  std::memcpy(pages_[page_id].get(), data, options_.page_size);
}

IoCounters DiskSim::TotalCounters() const {
  IoCounters total;
  for (const IoCounters& c : counters_) {
    total.reads += c.reads;
    total.writes += c.writes;
  }
  return total;
}

void DiskSim::ResetCounters() {
  for (IoCounters& c : counters_) c = IoCounters{};
  serial_io_nanos_.store(0, std::memory_order_relaxed);
  charged_io_nanos_.store(0, std::memory_order_relaxed);
}

}  // namespace ocb
