#include "storage/disk_sim.h"

#include <cstring>

#include "util/format.h"

namespace ocb {

const char* IoScopeToString(IoScope scope) {
  switch (scope) {
    case IoScope::kGeneration:
      return "generation";
    case IoScope::kTransaction:
      return "transaction";
    case IoScope::kClustering:
      return "clustering";
    case IoScope::kNumScopes:
      break;
  }
  return "unknown";
}

DiskSim::DiskSim(const StorageOptions& options, SimClock* clock)
    : options_(options), clock_(clock) {
  if (!options_.backing_file.empty()) {
    backing_ = std::fopen(options_.backing_file.c_str(), "wb+");
  }
}

DiskSim::~DiskSim() {
  if (backing_ != nullptr) std::fclose(backing_);
}

PageId DiskSim::AllocatePage() {
  auto page = std::make_unique<uint8_t[]>(options_.page_size);
  std::memset(page.get(), 0, options_.page_size);
  std::unique_lock<std::shared_mutex> lock(pages_mu_);
  pages_.push_back(std::move(page));
  return static_cast<PageId>(pages_.size() - 1);
}

Status DiskSim::ReadPage(PageId page_id, uint8_t* out) {
  {
    std::shared_lock<std::shared_mutex> lock(pages_mu_);
    if (page_id >= pages_.size()) {
      return Status::IOError(Format("read of unallocated page %u", page_id));
    }
    std::memcpy(out, pages_[page_id].get(), options_.page_size);
  }
  ++counters_[static_cast<size_t>(scope())].reads;
  if (clock_ != nullptr) clock_->Advance(options_.read_latency_nanos);
  return Status::OK();
}

Status DiskSim::WritePage(PageId page_id, const uint8_t* data) {
  {
    std::shared_lock<std::shared_mutex> lock(pages_mu_);
    if (page_id >= pages_.size()) {
      return Status::IOError(
          Format("write of unallocated page %u", page_id));
    }
    std::memcpy(pages_[page_id].get(), data, options_.page_size);
  }
  if (backing_ != nullptr) {
    std::lock_guard<std::mutex> file_lock(backing_mu_);
    const long offset =
        static_cast<long>(page_id) * static_cast<long>(options_.page_size);
    if (std::fseek(backing_, offset, SEEK_SET) != 0 ||
        std::fwrite(data, 1, options_.page_size, backing_) !=
            options_.page_size) {
      return Status::IOError(
          Format("write-through to backing file failed for page %u",
                 page_id));
    }
  }
  ++counters_[static_cast<size_t>(scope())].writes;
  if (clock_ != nullptr) clock_->Advance(options_.write_latency_nanos);
  return Status::OK();
}

void DiskSim::LoadPageImage(PageId page_id, const uint8_t* data) {
  std::shared_lock<std::shared_mutex> lock(pages_mu_);
  std::memcpy(pages_[page_id].get(), data, options_.page_size);
}

IoCounters DiskSim::TotalCounters() const {
  IoCounters total;
  for (const IoCounters& c : counters_) {
    total.reads += c.reads;
    total.writes += c.writes;
  }
  return total;
}

void DiskSim::ResetCounters() {
  for (IoCounters& c : counters_) c = IoCounters{};
}

}  // namespace ocb
