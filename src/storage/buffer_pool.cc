#include "storage/buffer_pool.h"

#include <cassert>
#include <cstring>

#include "util/format.h"

namespace ocb {

PageHandle::PageHandle(BufferPool* pool, size_t frame_index, uint8_t* data,
                       size_t page_size)
    : pool_(pool), frame_index_(frame_index), data_(data),
      page_size_(page_size) {}

PageHandle::~PageHandle() { Release(); }

PageHandle::PageHandle(PageHandle&& other) noexcept
    : pool_(other.pool_), frame_index_(other.frame_index_),
      data_(other.data_), page_size_(other.page_size_) {
  other.pool_ = nullptr;
}

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_index_ = other.frame_index_;
    data_ = other.data_;
    page_size_ = other.page_size_;
    other.pool_ = nullptr;
  }
  return *this;
}

void PageHandle::MarkDirty() {
  assert(valid());
  pool_->frames_[frame_index_].dirty = true;
}

void PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_index_);
    pool_ = nullptr;
  }
}

BufferPool::BufferPool(DiskSim* disk, const StorageOptions& options)
    : disk_(disk), options_(options) {
  frames_.resize(options.buffer_pool_pages);
  free_frames_.reserve(frames_.size());
  for (size_t i = frames_.size(); i > 0; --i) {
    free_frames_.push_back(i - 1);
  }
}

Result<PageHandle> BufferPool::FetchPage(PageId page_id) {
  auto it = page_table_.find(page_id);
  if (it != page_table_.end()) {
    ++stats_.hits;
    Frame& frame = frames_[it->second];
    ++frame.pin_count;
    frame.referenced = true;
    TouchLru(it->second);
    return PageHandle(this, it->second, frame.data.get(),
                      options_.page_size);
  }
  ++stats_.misses;
  OCB_ASSIGN_OR_RETURN(size_t frame_index, PickVictim());
  Frame& frame = frames_[frame_index];
  if (frame.data == nullptr) {
    frame.data = std::make_unique<uint8_t[]>(options_.page_size);
  }
  OCB_RETURN_NOT_OK(disk_->ReadPage(page_id, frame.data.get()));
  frame.page_id = page_id;
  frame.dirty = false;
  frame.referenced = true;
  frame.pin_count = 1;
  page_table_[page_id] = frame_index;
  lru_.push_front(frame_index);
  frame.lru_pos = lru_.begin();
  return PageHandle(this, frame_index, frame.data.get(), options_.page_size);
}

Result<PageHandle> BufferPool::NewPage(PageId* out_page_id) {
  const PageId page_id = disk_->AllocatePage();
  if (out_page_id != nullptr) *out_page_id = page_id;
  OCB_ASSIGN_OR_RETURN(size_t frame_index, PickVictim());
  Frame& frame = frames_[frame_index];
  if (frame.data == nullptr) {
    frame.data = std::make_unique<uint8_t[]>(options_.page_size);
  }
  std::memset(frame.data.get(), 0, options_.page_size);
  Page(frame.data.get(), options_.page_size).Init(page_id);
  frame.page_id = page_id;
  frame.dirty = true;
  frame.referenced = true;
  frame.pin_count = 1;
  page_table_[page_id] = frame_index;
  lru_.push_front(frame_index);
  frame.lru_pos = lru_.begin();
  return PageHandle(this, frame_index, frame.data.get(), options_.page_size);
}

Status BufferPool::FlushAll() {
  for (Frame& frame : frames_) {
    if (frame.page_id != kInvalidPageId && frame.dirty) {
      OCB_RETURN_NOT_OK(disk_->WritePage(frame.page_id, frame.data.get()));
      ++stats_.dirty_writebacks;
      frame.dirty = false;
    }
  }
  return Status::OK();
}

Status BufferPool::InvalidateAll() {
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& frame = frames_[i];
    if (frame.page_id == kInvalidPageId) continue;
    if (frame.pin_count > 0) {
      return Status::Aborted("cannot invalidate pinned frame");
    }
    OCB_RETURN_NOT_OK(EvictFrame(i));
    free_frames_.push_back(i);
  }
  return Status::OK();
}

size_t BufferPool::pinned_frames() const {
  size_t pinned = 0;
  for (const Frame& frame : frames_) {
    if (frame.page_id != kInvalidPageId && frame.pin_count > 0) ++pinned;
  }
  return pinned;
}

Result<size_t> BufferPool::PickVictim() {
  if (!free_frames_.empty()) {
    const size_t frame_index = free_frames_.back();
    free_frames_.pop_back();
    return frame_index;
  }
  switch (options_.replacement_policy) {
    case ReplacementPolicy::kLru:
    case ReplacementPolicy::kFifo: {
      // LRU: the back of the list is least recently used. FIFO: TouchLru is
      // a no-op on hits, so the back is the oldest resident page.
      for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
        if (frames_[*it].pin_count == 0) {
          const size_t victim = *it;
          OCB_RETURN_NOT_OK(EvictFrame(victim));
          return victim;
        }
      }
      break;
    }
    case ReplacementPolicy::kClock: {
      for (size_t sweep = 0; sweep < 2 * frames_.size(); ++sweep) {
        Frame& frame = frames_[clock_hand_];
        const size_t index = clock_hand_;
        clock_hand_ = (clock_hand_ + 1) % frames_.size();
        if (frame.pin_count > 0) continue;
        if (frame.referenced) {
          frame.referenced = false;
          continue;
        }
        OCB_RETURN_NOT_OK(EvictFrame(index));
        return index;
      }
      break;
    }
  }
  return Status::NoSpace("all buffer-pool frames are pinned");
}

Status BufferPool::EvictFrame(size_t frame_index) {
  Frame& frame = frames_[frame_index];
  if (frame.dirty) {
    OCB_RETURN_NOT_OK(disk_->WritePage(frame.page_id, frame.data.get()));
    ++stats_.dirty_writebacks;
  }
  ++stats_.evictions;
  page_table_.erase(frame.page_id);
  lru_.erase(frame.lru_pos);
  frame.page_id = kInvalidPageId;
  frame.dirty = false;
  frame.referenced = false;
  frame.pin_count = 0;
  return Status::OK();
}

void BufferPool::Unpin(size_t frame_index) {
  Frame& frame = frames_[frame_index];
  assert(frame.pin_count > 0);
  --frame.pin_count;
}

void BufferPool::TouchLru(size_t frame_index) {
  if (options_.replacement_policy == ReplacementPolicy::kFifo) return;
  Frame& frame = frames_[frame_index];
  lru_.erase(frame.lru_pos);
  lru_.push_front(frame_index);
  frame.lru_pos = lru_.begin();
}

}  // namespace ocb
