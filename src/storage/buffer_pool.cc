#include "storage/buffer_pool.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "obs/trace.h"
#include "util/format.h"

namespace ocb {

namespace {

// Stripe count: explicit option wins; otherwise pools of >= 64 frames get
// the build-time default (OCB_LATCH_STRIPES, 8 unless overridden) and
// smaller pools stay single-striped so the seed's exact global LRU order is
// preserved for the replacement-policy ablations and their tests. When the
// build pins OCB_LATCH_STRIPES it also caps explicit requests — that is
// what the -DOCB_LATCH_STRIPES=1 CI configuration uses to prove correctness
// does not depend on striping.
#ifdef OCB_LATCH_STRIPES
constexpr size_t kDefaultStripes = OCB_LATCH_STRIPES;
#else
constexpr size_t kDefaultStripes = 8;
#endif
constexpr size_t kAutoStripeMinFrames = 64;

size_t EffectiveStripes(const StorageOptions& options) {
  size_t stripes =
      options.latch_stripes != 0
          ? options.latch_stripes
          : (options.buffer_pool_pages >= kAutoStripeMinFrames
                 ? kDefaultStripes
                 : 1);
#ifdef OCB_LATCH_STRIPES
  stripes = std::min(stripes, kDefaultStripes);
#endif
  stripes = std::max<size_t>(stripes, 1);
  return std::min(stripes, options.buffer_pool_pages);
}

// Outstanding pins held by the calling thread. Lets the quiesce gate admit
// threads that are mid multi-page operation (they must be able to finish so
// pins drain) while parking threads that have not started one. The counter
// is per thread, not per pool: in practice a thread operates on one
// Database's pool at a time.
thread_local int64_t tls_pin_depth = 0;

}  // namespace

PageHandle::PageHandle(BufferPool* pool, size_t frame_index, uint8_t* data,
                       size_t page_size, LatchMode mode)
    : pool_(pool), frame_index_(frame_index), data_(data),
      page_size_(page_size), mode_(mode) {}

PageHandle::~PageHandle() { Release(); }

PageHandle::PageHandle(PageHandle&& other) noexcept
    : pool_(other.pool_), frame_index_(other.frame_index_),
      data_(other.data_), page_size_(other.page_size_), mode_(other.mode_) {
  other.pool_ = nullptr;
}

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_index_ = other.frame_index_;
    data_ = other.data_;
    page_size_ = other.page_size_;
    mode_ = other.mode_;
    other.pool_ = nullptr;
  }
  return *this;
}

void PageHandle::MarkDirty() {
  assert(valid());
  assert(mode_ == LatchMode::kExclusive);
  pool_->frames_[frame_index_].dirty = true;
}

void PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_index_, mode_);
    pool_ = nullptr;
  }
}

BufferPool::BufferPool(DiskSim* disk, const StorageOptions& options)
    : disk_(disk), options_(options) {
  frame_count_ = options.buffer_pool_pages;
  frames_ = std::make_unique<Frame[]>(frame_count_);
  const size_t stripe_count = EffectiveStripes(options);
  stripes_.reserve(stripe_count);
  for (size_t s = 0; s < stripe_count; ++s) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
  // Frame i belongs to stripe i % N; free lists hand out the lowest frame
  // first, matching the seed's allocation order in the 1-stripe layout.
  for (size_t i = frame_count_; i > 0; --i) {
    Stripe& stripe = *stripes_[(i - 1) % stripe_count];
    stripe.free_frames.push_back(i - 1);
  }
  for (size_t i = 0; i < frame_count_; ++i) {
    stripes_[i % stripe_count]->owned_frames.push_back(i);
  }
}

void BufferPool::MaybeWaitForQuiesce() {
  if (!quiescing_.load(std::memory_order_acquire)) return;
  if (tls_pin_depth > 0) return;  // Mid-operation: allowed to finish.
  std::unique_lock<std::mutex> lock(quiesce_mu_);
  if (quiesce_owner_ == std::this_thread::get_id()) return;
  quiesce_cv_.wait(lock, [&] { return quiesce_depth_ == 0; });
}

void BufferPool::BeginQuiesce() {
  std::unique_lock<std::mutex> lock(quiesce_mu_);
  const std::thread::id me = std::this_thread::get_id();
  if (quiesce_depth_ > 0 && quiesce_owner_ == me) {
    ++quiesce_depth_;
    return;
  }
  assert(tls_pin_depth == 0 &&
         "quiesce owner must not hold page handles when entering");
  quiesce_cv_.wait(lock, [&] { return quiesce_depth_ == 0; });
  quiesce_owner_ = me;
  quiesce_depth_ = 1;
  quiescing_.store(true, std::memory_order_release);
  // Drain: in-flight operations keep their gate exemption via tls_pin_depth
  // and finish; nobody else can start pinning.
  quiesce_cv_.wait(lock, [&] {
    return total_pins_.load(std::memory_order_acquire) == 0;
  });
}

void BufferPool::EndQuiesce() {
  std::lock_guard<std::mutex> lock(quiesce_mu_);
  assert(quiesce_depth_ > 0 &&
         quiesce_owner_ == std::this_thread::get_id());
  if (--quiesce_depth_ == 0) {
    quiesce_owner_ = std::thread::id{};
    quiescing_.store(false, std::memory_order_release);
    quiesce_cv_.notify_all();
  }
}

Result<PageHandle> BufferPool::FetchPage(PageId page_id, LatchMode mode) {
  MaybeWaitForQuiesce();
  Stripe& stripe = stripe_of(page_id);
  for (;;) {
    size_t frame_index = 0;
    bool miss = false;
    {
      LatchPageExclusive(stripe.mu);
      std::unique_lock<std::mutex> lock(stripe.mu, std::adopt_lock);
      auto it = stripe.page_table.find(page_id);
      if (it != stripe.page_table.end()) {
        stats_.hits.fetch_add(1, std::memory_order_relaxed);
        frame_index = it->second;
        Frame& frame = frames_[frame_index];
        frame.pin_count.fetch_add(1, std::memory_order_relaxed);
        total_pins_.fetch_add(1, std::memory_order_acq_rel);
        ++tls_pin_depth;
        frame.referenced = true;
        TouchLru(stripe, frame_index);
      } else {
        stats_.misses.fetch_add(1, std::memory_order_relaxed);
        auto claimed = ClaimFrame(stripe);
        if (!claimed.ok()) return claimed.status();
        frame_index = claimed.value();
        Frame& frame = frames_[frame_index];
        if (frame.data == nullptr) {
          frame.data = std::make_unique<uint8_t[]>(options_.page_size);
        }
        frame.page_id = page_id;
        frame.dirty = false;
        frame.referenced = true;
        frame.pin_count.fetch_add(1, std::memory_order_relaxed);
        total_pins_.fetch_add(1, std::memory_order_acq_rel);
        ++tls_pin_depth;
        stripe.page_table[page_id] = frame_index;
        stripe.lru.push_front(frame_index);
        frame.lru_pos = stripe.lru.begin();
        miss = true;
      }
    }
    Frame& frame = frames_[frame_index];
    if (miss) {
      // Miss I/O runs outside the stripe mutex, under the frame's X latch
      // (held since ClaimFrame): concurrent fetchers of this page pin the
      // frame and block on the latch until the read completes, while the
      // rest of the stripe stays available.
      obs::TraceSpan io_span("io.miss", "page", page_id);
      Status read = disk_->ReadPage(page_id, frame.data.get());
      if (!read.ok()) {
        {
          std::lock_guard<std::mutex> lock(stripe.mu);
          stripe.page_table.erase(page_id);
          stripe.lru.erase(frame.lru_pos);
          frame.page_id = kInvalidPageId;
          frame.referenced = false;
          stripe.free_frames.push_back(frame_index);
        }
        frame.latch.unlock();
        Unpin(frame_index, LatchMode::kExclusive,
              /*latch_already_released=*/true);
        return read;
      }
      if (mode == LatchMode::kShared) {
        // std::shared_mutex has no downgrade; the gap is benign — the
        // handle's read view only begins once the S latch is held.
        frame.latch.unlock();
        LatchPageShared(frame.latch);
      }
    } else {
      if (mode == LatchMode::kShared) {
        LatchPageShared(frame.latch);
      } else {
        LatchPageExclusive(frame.latch);
      }
      // A failed install (disk error on the frame we were waiting for) can
      // retire the frame under us; page_id is stable while we hold the
      // latch, so re-check and retry the lookup.
      if (frame.page_id != page_id) {
        if (mode == LatchMode::kShared) {
          frame.latch.unlock_shared();
        } else {
          frame.latch.unlock();
        }
        Unpin(frame_index, mode, /*latch_already_released=*/true);
        continue;
      }
    }
    return PageHandle(this, frame_index, frame.data.get(),
                      options_.page_size, mode);
  }
}

Result<PageHandle> BufferPool::NewPage(PageId* out_page_id) {
  MaybeWaitForQuiesce();
  const PageId page_id = disk_->AllocatePage();
  if (out_page_id != nullptr) *out_page_id = page_id;
  Stripe& stripe = stripe_of(page_id);
  LatchPageExclusive(stripe.mu);
  std::unique_lock<std::mutex> lock(stripe.mu, std::adopt_lock);
  auto claimed = ClaimFrame(stripe);
  if (!claimed.ok()) return claimed.status();
  const size_t frame_index = claimed.value();
  Frame& frame = frames_[frame_index];
  if (frame.data == nullptr) {
    frame.data = std::make_unique<uint8_t[]>(options_.page_size);
  }
  std::memset(frame.data.get(), 0, options_.page_size);
  Page(frame.data.get(), options_.page_size).Init(page_id);
  frame.page_id = page_id;
  frame.dirty = true;
  frame.referenced = true;
  frame.pin_count.fetch_add(1, std::memory_order_relaxed);
  total_pins_.fetch_add(1, std::memory_order_acq_rel);
  ++tls_pin_depth;
  stripe.page_table[page_id] = frame_index;
  stripe.lru.push_front(frame_index);
  frame.lru_pos = stripe.lru.begin();
  return PageHandle(this, frame_index, frame.data.get(), options_.page_size,
                    LatchMode::kExclusive);
}

Status BufferPool::FlushAll() {
  for (auto& stripe_ptr : stripes_) {
    Stripe& stripe = *stripe_ptr;
    std::vector<std::pair<size_t, PageId>> resident;
    {
      std::lock_guard<std::mutex> lock(stripe.mu);
      resident.reserve(stripe.page_table.size());
      for (const auto& [pid, idx] : stripe.page_table) {
        resident.push_back({idx, pid});
      }
    }
    for (const auto& [frame_index, pid] : resident) {
      Frame& frame = frames_[frame_index];
      LatchPageExclusive(frame.latch);
      // Holding the latch pins down page_id and dirty; re-check that the
      // frame still caches the page we collected (it may have been evicted
      // and reused between the two loops).
      if (frame.page_id == pid && frame.dirty) {
        Status written = disk_->WritePage(pid, frame.data.get());
        if (!written.ok()) {
          frame.latch.unlock();
          return written;
        }
        stats_.dirty_writebacks.fetch_add(1, std::memory_order_relaxed);
        frame.dirty = false;
      }
      frame.latch.unlock();
    }
  }
  return Status::OK();
}

Status BufferPool::InvalidateAll() {
  for (auto& stripe_ptr : stripes_) {
    Stripe& stripe = *stripe_ptr;
    std::lock_guard<std::mutex> lock(stripe.mu);
    std::vector<size_t> resident;
    resident.reserve(stripe.page_table.size());
    for (const auto& [pid, idx] : stripe.page_table) {
      resident.push_back(idx);
    }
    // Deterministic order (the seed walked frames in index order).
    std::sort(resident.begin(), resident.end());
    for (size_t frame_index : resident) {
      Frame& frame = frames_[frame_index];
      if (frame.pin_count.load(std::memory_order_relaxed) > 0 ||
          !frame.latch.try_lock()) {
        return Status::Aborted("cannot invalidate pinned frame");
      }
      Status evicted = EvictFrame(stripe, frame_index);
      frame.latch.unlock();
      if (!evicted.ok()) return evicted;
      stripe.free_frames.push_back(frame_index);
    }
  }
  return Status::OK();
}

size_t BufferPool::pinned_frames() const {
  size_t pinned = 0;
  for (const auto& stripe_ptr : stripes_) {
    Stripe& stripe = *stripe_ptr;
    std::lock_guard<std::mutex> lock(stripe.mu);
    for (const auto& [pid, idx] : stripe.page_table) {
      if (frames_[idx].pin_count.load(std::memory_order_relaxed) > 0) {
        ++pinned;
      }
    }
  }
  return pinned;
}

Result<size_t> BufferPool::ClaimFrame(Stripe& stripe) {
  // Free frames usually have neither pins nor latch holders — but a
  // failed install (FetchPage's disk-error cleanup) free-lists a frame
  // while late waiters of the failed page still pin it for their page_id
  // re-check. Skip such frames (their pins drain on their own) instead of
  // handing out a frame someone else is latched on.
  for (size_t i = stripe.free_frames.size(); i > 0; --i) {
    const size_t frame_index = stripe.free_frames[i - 1];
    Frame& frame = frames_[frame_index];
    if (frame.pin_count.load(std::memory_order_relaxed) != 0 ||
        !frame.latch.try_lock()) {
      continue;
    }
    stripe.free_frames.erase(stripe.free_frames.begin() +
                             static_cast<ptrdiff_t>(i - 1));
    return frame_index;
  }
  switch (options_.replacement_policy) {
    case ReplacementPolicy::kLru:
    case ReplacementPolicy::kFifo: {
      // LRU: the back of the list is least recently used. FIFO: TouchLru is
      // a no-op on hits, so the back is the oldest resident page. Pinned or
      // latched frames are skipped (try_lock never blocks while we hold the
      // stripe mutex — a latch holder may be waiting for it).
      for (auto it = stripe.lru.rbegin(); it != stripe.lru.rend(); ++it) {
        Frame& frame = frames_[*it];
        if (frame.pin_count.load(std::memory_order_relaxed) != 0) continue;
        if (!frame.latch.try_lock()) continue;
        const size_t victim = *it;
        Status evicted = EvictFrame(stripe, victim);
        if (!evicted.ok()) {
          frame.latch.unlock();
          return evicted;
        }
        return victim;
      }
      break;
    }
    case ReplacementPolicy::kClock: {
      const size_t owned = stripe.owned_frames.size();
      for (size_t sweep = 0; sweep < 2 * owned; ++sweep) {
        const size_t frame_index = stripe.owned_frames[stripe.clock_pos];
        stripe.clock_pos = (stripe.clock_pos + 1) % owned;
        Frame& frame = frames_[frame_index];
        if (frame.page_id == kInvalidPageId) continue;
        if (frame.pin_count.load(std::memory_order_relaxed) != 0) continue;
        if (frame.referenced) {
          frame.referenced = false;
          continue;
        }
        if (!frame.latch.try_lock()) continue;
        Status evicted = EvictFrame(stripe, frame_index);
        if (!evicted.ok()) {
          frame.latch.unlock();
          return evicted;
        }
        return frame_index;
      }
      break;
    }
  }
  return Status::NoSpace("all buffer-pool frames of the stripe are pinned");
}

Status BufferPool::EvictFrame(Stripe& stripe, size_t frame_index) {
  // Requires stripe.mu and the frame latch: the victim's writeback
  // completes under the stripe mutex, so a concurrent re-fetch of the page
  // (same stripe by construction) serializes behind the finished write.
  Frame& frame = frames_[frame_index];
  if (frame.dirty) {
    Status written = disk_->WritePage(frame.page_id, frame.data.get());
    if (!written.ok()) return written;
    stats_.dirty_writebacks.fetch_add(1, std::memory_order_relaxed);
  }
  stats_.evictions.fetch_add(1, std::memory_order_relaxed);
  stripe.page_table.erase(frame.page_id);
  stripe.lru.erase(frame.lru_pos);
  frame.page_id = kInvalidPageId;
  frame.dirty = false;
  frame.referenced = false;
  return Status::OK();
}

void BufferPool::Unpin(size_t frame_index, LatchMode mode,
                       bool latch_already_released) {
  Frame& frame = frames_[frame_index];
  if (!latch_already_released) {
    if (mode == LatchMode::kShared) {
      frame.latch.unlock_shared();
    } else {
      frame.latch.unlock();
    }
  }
  assert(frame.pin_count.load(std::memory_order_relaxed) > 0);
  frame.pin_count.fetch_sub(1, std::memory_order_relaxed);
  --tls_pin_depth;
  if (total_pins_.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
      quiescing_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(quiesce_mu_);
    quiesce_cv_.notify_all();
  }
}

void BufferPool::TouchLru(Stripe& stripe, size_t frame_index) {
  if (options_.replacement_policy == ReplacementPolicy::kFifo) return;
  Frame& frame = frames_[frame_index];
  stripe.lru.erase(frame.lru_pos);
  stripe.lru.push_front(frame_index);
  frame.lru_pos = stripe.lru.begin();
}

}  // namespace ocb
