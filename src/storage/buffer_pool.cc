#include "storage/buffer_pool.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "obs/trace.h"
#include "util/format.h"

namespace ocb {

namespace {

// Stripe count: explicit option wins; otherwise pools of >= 64 frames get
// the build-time default (OCB_LATCH_STRIPES, 8 unless overridden) and
// smaller pools stay single-striped so the seed's exact global LRU order is
// preserved for the replacement-policy ablations and their tests. When the
// build pins OCB_LATCH_STRIPES it also caps explicit requests — that is
// what the -DOCB_LATCH_STRIPES=1 CI configuration uses to prove correctness
// does not depend on striping.
#ifdef OCB_LATCH_STRIPES
constexpr size_t kDefaultStripes = OCB_LATCH_STRIPES;
#else
constexpr size_t kDefaultStripes = 8;
#endif
constexpr size_t kAutoStripeMinFrames = 64;

size_t EffectiveStripes(const StorageOptions& options) {
  size_t stripes =
      options.latch_stripes != 0
          ? options.latch_stripes
          : (options.buffer_pool_pages >= kAutoStripeMinFrames
                 ? kDefaultStripes
                 : 1);
#ifdef OCB_LATCH_STRIPES
  stripes = std::min(stripes, kDefaultStripes);
#endif
  stripes = std::max<size_t>(stripes, 1);
  return std::min(stripes, options.buffer_pool_pages);
}

// Outstanding pins held by the calling thread. Lets the quiesce gate admit
// threads that are mid multi-page operation (they must be able to finish so
// pins drain) while parking threads that have not started one. The counter
// is per thread, not per pool: in practice a thread operates on one
// Database's pool at a time.
thread_local int64_t tls_pin_depth = 0;

}  // namespace

PendingFetch::~PendingFetch() {
  if (pool_ != nullptr) pool_->FinishPrefetch(*this);
}

PendingFetch::PendingFetch(PendingFetch&& other) noexcept
    : pool_(other.pool_), frame_index_(other.frame_index_),
      page_id_(other.page_id_), mode_(other.mode_), miss_(other.miss_),
      ticket_(std::move(other.ticket_)),
      issue_status_(other.issue_status_) {
  other.pool_ = nullptr;
}

PendingFetch& PendingFetch::operator=(PendingFetch&& other) noexcept {
  if (this != &other) {
    if (pool_ != nullptr) pool_->FinishPrefetch(*this);
    pool_ = other.pool_;
    frame_index_ = other.frame_index_;
    page_id_ = other.page_id_;
    mode_ = other.mode_;
    miss_ = other.miss_;
    ticket_ = std::move(other.ticket_);
    issue_status_ = other.issue_status_;
    other.pool_ = nullptr;
  }
  return *this;
}

PageHandle::PageHandle(BufferPool* pool, size_t frame_index, uint8_t* data,
                       size_t page_size, LatchMode mode)
    : pool_(pool), frame_index_(frame_index), data_(data),
      page_size_(page_size), mode_(mode) {}

PageHandle::~PageHandle() { Release(); }

PageHandle::PageHandle(PageHandle&& other) noexcept
    : pool_(other.pool_), frame_index_(other.frame_index_),
      data_(other.data_), page_size_(other.page_size_), mode_(other.mode_) {
  other.pool_ = nullptr;
}

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_index_ = other.frame_index_;
    data_ = other.data_;
    page_size_ = other.page_size_;
    mode_ = other.mode_;
    other.pool_ = nullptr;
  }
  return *this;
}

void PageHandle::MarkDirty() {
  assert(valid());
  assert(mode_ == LatchMode::kExclusive);
  pool_->frames_[frame_index_].dirty = true;
}

void PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_index_, mode_);
    pool_ = nullptr;
  }
}

BufferPool::BufferPool(DiskSim* disk, const StorageOptions& options)
    : disk_(disk), options_(options) {
  frame_count_ = options.buffer_pool_pages;
  frames_ = std::make_unique<Frame[]>(frame_count_);
  const size_t stripe_count = EffectiveStripes(options);
  stripes_.reserve(stripe_count);
  for (size_t s = 0; s < stripe_count; ++s) {
    stripes_.push_back(std::make_unique<Stripe>(s));
  }
  // Frame i belongs to stripe i % N; free lists hand out the lowest frame
  // first, matching the seed's allocation order in the 1-stripe layout.
  for (size_t i = frame_count_; i > 0; --i) {
    Stripe& stripe = *stripes_[(i - 1) % stripe_count];
    stripe.free_frames.push_back(i - 1);
  }
  for (size_t i = 0; i < frame_count_; ++i) {
    stripes_[i % stripe_count]->owned_frames.push_back(i);
  }
  // Resolve the latch-wait instruments now, with no lock held. The first
  // lookup takes the metrics-registry mutex, which ranks above every
  // engine mutex (Snapshot() runs gauge callbacks under it) — so a lazy
  // resolution from a latch callsite while this thread already holds a
  // frame latch (the prefetch issue loop) would invert the hierarchy.
  latch_internal::PageWaitHistogram();
  latch_internal::FacadeWaitHistogram();
}

// TSA exemption: the cv wait unlocks and relocks quiesce_mu_ mid-function,
// a flow the intraprocedural analysis cannot follow; lockdep still sees
// every transition.
void BufferPool::MaybeWaitForQuiesce() OCB_NO_THREAD_SAFETY_ANALYSIS {
  if (!quiescing_.load(std::memory_order_acquire)) return;
  if (tls_pin_depth > 0) return;  // Mid-operation: allowed to finish.
  std::unique_lock<Mutex> lock(quiesce_mu_);
  if (quiesce_owner_ == std::this_thread::get_id()) return;
  quiesce_cv_.wait(lock, [&] { return quiesce_depth_ == 0; });
}

// TSA exemption: cv waits relock quiesce_mu_ mid-function.
void BufferPool::BeginQuiesce() OCB_NO_THREAD_SAFETY_ANALYSIS {
  std::unique_lock<Mutex> lock(quiesce_mu_);
  const std::thread::id me = std::this_thread::get_id();
  if (quiesce_depth_ > 0 && quiesce_owner_ == me) {
    ++quiesce_depth_;
    return;
  }
  assert(tls_pin_depth == 0 &&
         "quiesce owner must not hold page handles when entering");
  quiesce_cv_.wait(lock, [&] { return quiesce_depth_ == 0; });
  quiesce_owner_ = me;
  quiesce_depth_ = 1;
  quiescing_.store(true, std::memory_order_release);
  // Drain: in-flight operations keep their gate exemption via tls_pin_depth
  // and finish; nobody else can start pinning.
  quiesce_cv_.wait(lock, [&] {
    return total_pins_.load(std::memory_order_acquire) == 0;
  });
  // With every pin drained and the gate closed, settle the background
  // write-back queue too: the quiesce owner (snapshot save/load, cold
  // restart) expects all physical I/O at rest. The awaits only block on
  // the I/O workers, which never take pool mutexes.
  DrainWritebacks();
}

void BufferPool::EndQuiesce() {
  MutexLock lock(quiesce_mu_);
  assert(quiesce_depth_ > 0 &&
         quiesce_owner_ == std::this_thread::get_id());
  if (--quiesce_depth_ == 0) {
    quiesce_owner_ = std::thread::id{};
    quiescing_.store(false, std::memory_order_release);
    quiesce_cv_.notify_all();
  }
}

Result<PageHandle> BufferPool::FetchPage(PageId page_id, LatchMode mode) {
  return Await(StartFetch(page_id, mode));
}

// TSA exemption: the miss path returns holding the frame's X latch (the
// matching release lives in Await/FinishPrefetch), a cross-function hold
// the intraprocedural analysis cannot follow; lockdep tracks it.
PendingFetch BufferPool::StartFetch(PageId page_id, LatchMode mode)
    OCB_NO_THREAD_SAFETY_ANALYSIS {
  MaybeWaitForQuiesce();
  Stripe& stripe = stripe_of(page_id);
  PendingFetch fetch;
  fetch.page_id_ = page_id;
  fetch.mode_ = mode;
  {
    LatchPageExclusive(stripe.mu);
    std::unique_lock<Mutex> lock(stripe.mu, std::adopt_lock);
    auto it = stripe.page_table.find(page_id);
    if (it != stripe.page_table.end()) {
      stats_.hits.fetch_add(1, std::memory_order_relaxed);
      const size_t frame_index = it->second;
      Frame& frame = frames_[frame_index];
      frame.pin_count.fetch_add(1, std::memory_order_relaxed);
      total_pins_.fetch_add(1, std::memory_order_acq_rel);
      ++tls_pin_depth;
      frame.referenced = true;
      TouchLru(stripe, frame_index);
      fetch.pool_ = this;
      fetch.frame_index_ = frame_index;
      fetch.miss_ = false;
      return fetch;
    }
    stats_.misses.fetch_add(1, std::memory_order_relaxed);
    auto claimed = ClaimFrame(stripe);
    if (!claimed.ok()) {
      fetch.issue_status_ = claimed.status();
      return fetch;
    }
    const size_t frame_index = claimed.value();
    Frame& frame = frames_[frame_index];
    if (frame.data == nullptr) {
      frame.data = std::make_unique<uint8_t[]>(options_.page_size);
    }
    frame.page_id = page_id;
    frame.latch.SetLockdepKey(page_id);
    frame.dirty = false;
    frame.referenced = true;
    frame.pin_count.fetch_add(1, std::memory_order_relaxed);
    total_pins_.fetch_add(1, std::memory_order_acq_rel);
    ++tls_pin_depth;
    stripe.page_table[page_id] = frame_index;
    stripe.lru.push_front(frame_index);
    frame.lru_pos = stripe.lru.begin();
    fetch.pool_ = this;
    fetch.frame_index_ = frame_index;
    fetch.miss_ = true;
    // If this page's previous dirty image is still on the write-back
    // queue, retire that write before re-reading — per-page write→read
    // order is the pool's contract with DiskSim.
    Status settled = SettleWriteback(stripe, page_id);
    if (!settled.ok()) {
      lock.unlock();
      UninstallFailedMiss(frame_index, page_id);
      fetch.pool_ = nullptr;
      fetch.issue_status_ = settled;
      return fetch;
    }
  }
  // Miss I/O is *issued* outside the stripe mutex, under the frame's X
  // latch (held since ClaimFrame): concurrent fetchers of this page pin
  // the frame and block on the latch until Await installs the bytes,
  // while the rest of the stripe stays available. The span covers the
  // inline execution in blocking mode and just the submission with I/O
  // workers (the wait lands in the "io.wait" histogram).
  {
    obs::TraceSpan io_span("io.miss", "page", page_id);
    fetch.ticket_ =
        disk_->StartRead(page_id, frames_[fetch.frame_index_].data.get());
  }
  return fetch;
}

// TSA exemption: resolves latches acquired by StartFetch and performs the
// X→S downgrade with bare unlock/lock pairs — cross-function holds TSA
// cannot follow; lockdep sees every transition.
Result<PageHandle> BufferPool::Await(PendingFetch fetch)
    OCB_NO_THREAD_SAFETY_ANALYSIS {
  for (;;) {
    if (!fetch.pending()) {
      return fetch.issue_status_.ok()
                 ? Status::InvalidArgument("await of an empty pending fetch")
                 : fetch.issue_status_;
    }
    const PageId page_id = fetch.page_id_;
    const LatchMode mode = fetch.mode_;
    const size_t frame_index = fetch.frame_index_;
    Frame& frame = frames_[frame_index];
    fetch.pool_ = nullptr;  // Resolved below; disarm the destructor.
    if (fetch.miss_) {
      Status read = disk_->Await(fetch.ticket_);
      if (!read.ok()) {
        UninstallFailedMiss(frame_index, page_id);
        return read;
      }
      if (mode == LatchMode::kShared) {
        // std::shared_mutex has no downgrade; the gap is benign — the
        // handle's read view only begins once the S latch is held.
        frame.latch.unlock();
        LatchPageShared(frame.latch);
      }
      return PageHandle(this, frame_index, frame.data.get(),
                        options_.page_size, mode);
    }
    if (mode == LatchMode::kShared) {
      LatchPageShared(frame.latch);
    } else {
      LatchPageExclusive(frame.latch);
    }
    // A failed install (disk error on the frame we were waiting for) can
    // retire the frame under us; page_id is stable while we hold the
    // latch, so re-check and retry the lookup.
    if (frame.page_id != page_id) {
      if (mode == LatchMode::kShared) {
        frame.latch.unlock_shared();
      } else {
        frame.latch.unlock();
      }
      Unpin(frame_index, mode, /*latch_already_released=*/true);
      fetch = StartFetch(page_id, mode);
      continue;
    }
    return PageHandle(this, frame_index, frame.data.get(),
                      options_.page_size, mode);
  }
}

Status BufferPool::FetchMany(std::span<const PageId> page_ids) {
  if (page_ids.empty()) return Status::OK();
  std::vector<PageId> pages(page_ids.begin(), page_ids.end());
  std::sort(pages.begin(), pages.end());
  pages.erase(std::unique(pages.begin(), pages.end()), pages.end());
  obs::TraceSpan batch_span("io.batch", "pages",
                            static_cast<uint64_t>(pages.size()));
  // Issue the misses of a chunk before awaiting any. FinishPrefetch
  // releases each page (latch + pin) as soon as its read lands, so this
  // loop never blocks on a page latch while holding another — no
  // latch-order hazard regardless of what other threads hold. Chunking
  // bounds the pins a batch holds at once: in the worst case every page
  // of a chunk maps to the same stripe, so a chunk must stay well under
  // one stripe's frame share or a frontier larger than the stripe pins
  // it solid and allocation fails with every frame held by this batch.
  const size_t stripe_frames =
      std::max<size_t>(1, options_.buffer_pool_pages / stripes_.size());
  const size_t chunk = std::max<size_t>(1, stripe_frames / 2);
  std::vector<PendingFetch> pending;
  pending.reserve(std::min(chunk, pages.size()));
  Status first_error;
  for (size_t begin = 0; begin < pages.size(); begin += chunk) {
    const size_t end = std::min(begin + chunk, pages.size());
    pending.clear();
    for (size_t i = begin; i < end; ++i) {
      pending.push_back(StartFetch(pages[i], LatchMode::kShared));
    }
    for (PendingFetch& fetch : pending) {
      Status finished = fetch.pending() ? FinishPrefetch(fetch)
                                        : fetch.issue_status();
      // Prefetch is advisory warming: when concurrent pin pressure
      // leaves no frame for a miss, skip the page — the caller's later
      // read fetches it through the blocking path one page at a time.
      if (finished.IsNoSpace()) continue;
      if (!finished.ok() && first_error.ok()) first_error = finished;
    }
  }
  return first_error;
}

// TSA exemption: releases the frame latch StartFetch left held.
Status BufferPool::FinishPrefetch(PendingFetch& fetch)
    OCB_NO_THREAD_SAFETY_ANALYSIS {
  if (fetch.pool_ == nullptr) return fetch.issue_status_;
  const size_t frame_index = fetch.frame_index_;
  const PageId page_id = fetch.page_id_;
  const bool miss = fetch.miss_;
  const LatchMode mode = fetch.mode_;
  fetch.pool_ = nullptr;
  if (!miss) {
    // Hit: never latched — just drop the pin.
    Unpin(frame_index, mode, /*latch_already_released=*/true);
    return Status::OK();
  }
  Status read = disk_->Await(fetch.ticket_);
  if (!read.ok()) {
    UninstallFailedMiss(frame_index, page_id);
    return read;
  }
  frames_[frame_index].latch.unlock();
  Unpin(frame_index, LatchMode::kExclusive,
        /*latch_already_released=*/true);
  return Status::OK();
}

// TSA exemption: releases the frame latch its caller's StartFetch left
// held.
void BufferPool::UninstallFailedMiss(size_t frame_index, PageId page_id)
    OCB_NO_THREAD_SAFETY_ANALYSIS {
  Stripe& stripe = stripe_of(page_id);
  Frame& frame = frames_[frame_index];
  {
    MutexLock lock(stripe.mu);
    stripe.page_table.erase(page_id);
    stripe.lru.erase(frame.lru_pos);
    frame.page_id = kInvalidPageId;
    frame.referenced = false;
    stripe.free_frames.push_back(frame_index);
  }
  frame.latch.unlock();
  Unpin(frame_index, LatchMode::kExclusive,
        /*latch_already_released=*/true);
}

// TSA exemption: returns holding the new frame's X latch (released by the
// PageHandle), a cross-function hold TSA cannot follow.
Result<PageHandle> BufferPool::NewPage(PageId* out_page_id)
    OCB_NO_THREAD_SAFETY_ANALYSIS {
  MaybeWaitForQuiesce();
  const PageId page_id = disk_->AllocatePage();
  if (out_page_id != nullptr) *out_page_id = page_id;
  Stripe& stripe = stripe_of(page_id);
  LatchPageExclusive(stripe.mu);
  std::unique_lock<Mutex> lock(stripe.mu, std::adopt_lock);
  auto claimed = ClaimFrame(stripe);
  if (!claimed.ok()) return claimed.status();
  const size_t frame_index = claimed.value();
  Frame& frame = frames_[frame_index];
  if (frame.data == nullptr) {
    frame.data = std::make_unique<uint8_t[]>(options_.page_size);
  }
  std::memset(frame.data.get(), 0, options_.page_size);
  Page(frame.data.get(), options_.page_size).Init(page_id);
  frame.page_id = page_id;
  frame.latch.SetLockdepKey(page_id);
  frame.dirty = true;
  frame.referenced = true;
  frame.pin_count.fetch_add(1, std::memory_order_relaxed);
  total_pins_.fetch_add(1, std::memory_order_acq_rel);
  ++tls_pin_depth;
  stripe.page_table[page_id] = frame_index;
  stripe.lru.push_front(frame_index);
  frame.lru_pos = stripe.lru.begin();
  return PageHandle(this, frame_index, frame.data.get(), options_.page_size,
                    LatchMode::kExclusive);
}

// TSA exemption: frame latches are acquired and released across loop
// arms with early-error returns; lockdep tracks each pair.
Status BufferPool::FlushAll() OCB_NO_THREAD_SAFETY_ANALYSIS {
  // Settle the background write-back queue first: FlushAll is a
  // durability-ordering point (snapshot save, checkpoint, cold restart)
  // and must leave the DiskSim holding every image the pool has retired.
  Status drained = DrainWritebacks();
  if (!drained.ok()) return drained;
  for (auto& stripe_ptr : stripes_) {
    Stripe& stripe = *stripe_ptr;
    std::vector<std::pair<size_t, PageId>> resident;
    {
      MutexLock lock(stripe.mu);
      resident.reserve(stripe.page_table.size());
      for (const auto& [pid, idx] : stripe.page_table) {
        resident.push_back({idx, pid});
      }
    }
    for (const auto& [frame_index, pid] : resident) {
      Frame& frame = frames_[frame_index];
      LatchPageExclusive(frame.latch);
      // Holding the latch pins down page_id and dirty; re-check that the
      // frame still caches the page we collected (it may have been evicted
      // and reused between the two loops).
      if (frame.page_id == pid && frame.dirty) {
        Status written = disk_->WritePage(pid, frame.data.get());
        if (!written.ok()) {
          frame.latch.unlock();
          return written;
        }
        stats_.dirty_writebacks.fetch_add(1, std::memory_order_relaxed);
        frame.dirty = false;
      }
      frame.latch.unlock();
    }
  }
  return Status::OK();
}

// TSA exemption: victim latches are try-locked here and released after
// EvictFrame; the conditional hold is invisible to the analysis.
Status BufferPool::InvalidateAll() OCB_NO_THREAD_SAFETY_ANALYSIS {
  for (auto& stripe_ptr : stripes_) {
    Stripe& stripe = *stripe_ptr;
    MutexLock lock(stripe.mu);
    std::vector<size_t> resident;
    resident.reserve(stripe.page_table.size());
    for (const auto& [pid, idx] : stripe.page_table) {
      resident.push_back(idx);
    }
    // Deterministic order (the seed walked frames in index order).
    std::sort(resident.begin(), resident.end());
    for (size_t frame_index : resident) {
      Frame& frame = frames_[frame_index];
      if (frame.pin_count.load(std::memory_order_relaxed) > 0 ||
          !frame.latch.try_lock()) {
        return Status::Aborted("cannot invalidate pinned frame");
      }
      Status evicted = EvictFrame(stripe, frame_index);
      frame.latch.unlock();
      if (!evicted.ok()) return evicted;
      stripe.free_frames.push_back(frame_index);
    }
  }
  // Evicting dirty frames above may have queued background write-backs;
  // leave the disk settled (benchmarks read raw pages right after).
  return DrainWritebacks();
}

size_t BufferPool::pinned_frames() const {
  // Lock-free on purpose: callers often hold page handles (frame
  // latches), and a stats probe has no business blocking them on every
  // stripe mutex. Pin counts are atomic, and a pinned frame is resident
  // by invariant, so scanning the fixed frame table needs no mutex.
  size_t pinned = 0;
  for (size_t i = 0; i < frame_count_; ++i) {
    if (frames_[i].pin_count.load(std::memory_order_relaxed) > 0) ++pinned;
  }
  return pinned;
}

// TSA exemption: returns holding the claimed frame's X latch (try-locked
// victim-by-victim); the matching release is the caller's.
Result<size_t> BufferPool::ClaimFrame(Stripe& stripe)
    OCB_NO_THREAD_SAFETY_ANALYSIS {
  // Free frames usually have neither pins nor latch holders — but a
  // failed install (FetchPage's disk-error cleanup) free-lists a frame
  // while late waiters of the failed page still pin it for their page_id
  // re-check. Skip such frames (their pins drain on their own) instead of
  // handing out a frame someone else is latched on.
  for (size_t i = stripe.free_frames.size(); i > 0; --i) {
    const size_t frame_index = stripe.free_frames[i - 1];
    Frame& frame = frames_[frame_index];
    if (frame.pin_count.load(std::memory_order_relaxed) != 0 ||
        !frame.latch.try_lock()) {
      continue;
    }
    stripe.free_frames.erase(stripe.free_frames.begin() +
                             static_cast<ptrdiff_t>(i - 1));
    return frame_index;
  }
  switch (options_.replacement_policy) {
    case ReplacementPolicy::kLru:
    case ReplacementPolicy::kFifo: {
      // LRU: the back of the list is least recently used. FIFO: TouchLru is
      // a no-op on hits, so the back is the oldest resident page. Pinned or
      // latched frames are skipped (try_lock never blocks while we hold the
      // stripe mutex — a latch holder may be waiting for it).
      for (auto it = stripe.lru.rbegin(); it != stripe.lru.rend(); ++it) {
        Frame& frame = frames_[*it];
        if (frame.pin_count.load(std::memory_order_relaxed) != 0) continue;
        if (!frame.latch.try_lock()) continue;
        const size_t victim = *it;
        Status evicted = EvictFrame(stripe, victim);
        if (!evicted.ok()) {
          frame.latch.unlock();
          return evicted;
        }
        return victim;
      }
      break;
    }
    case ReplacementPolicy::kClock: {
      const size_t owned = stripe.owned_frames.size();
      for (size_t sweep = 0; sweep < 2 * owned; ++sweep) {
        const size_t frame_index = stripe.owned_frames[stripe.clock_pos];
        stripe.clock_pos = (stripe.clock_pos + 1) % owned;
        Frame& frame = frames_[frame_index];
        if (frame.page_id == kInvalidPageId) continue;
        if (frame.pin_count.load(std::memory_order_relaxed) != 0) continue;
        if (frame.referenced) {
          frame.referenced = false;
          continue;
        }
        if (!frame.latch.try_lock()) continue;
        Status evicted = EvictFrame(stripe, frame_index);
        if (!evicted.ok()) {
          frame.latch.unlock();
          return evicted;
        }
        return frame_index;
      }
      break;
    }
  }
  return Status::NoSpace("all buffer-pool frames of the stripe are pinned");
}

Status BufferPool::EvictFrame(Stripe& stripe, size_t frame_index) {
  // Requires stripe.mu and the frame latch. Inline mode: the victim's
  // writeback completes under the stripe mutex, so a concurrent re-fetch
  // of the page (same stripe by construction) serializes behind the
  // finished write. Async mode: the dirty image is donated to the
  // write-back queue and the frame is reusable immediately; the re-fetch
  // serializes through SettleWriteback instead.
  Frame& frame = frames_[frame_index];
  if (frame.dirty) {
    if (disk_->async_enabled()) {
      // Any failure must leave the frame resident (ClaimFrame's error
      // contract), so both awaits happen before the frame is touched:
      // the page's previous queued write (per-page order), then the
      // throttle when the stripe's queue is at depth.
      Status settled = SettleWriteback(stripe, frame.page_id);
      if (!settled.ok()) return settled;
      while (stripe.writebacks.size() >= options_.writeback_queue_depth &&
             !stripe.writebacks.empty()) {
        auto oldest = stripe.writebacks.begin();
        IoTicket ticket = std::move(oldest->second);
        stripe.writebacks.erase(oldest);
        writeback_pending_.fetch_sub(1, std::memory_order_relaxed);
        Status retired = disk_->Await(ticket);
        if (!retired.ok()) return retired;
      }
      IoTicket ticket =
          disk_->StartWrite(frame.page_id, std::move(frame.data));
      stripe.writebacks.emplace(frame.page_id, std::move(ticket));
      const uint64_t depth =
          writeback_pending_.fetch_add(1, std::memory_order_relaxed) + 1;
      uint64_t peak = writeback_peak_.load(std::memory_order_relaxed);
      while (peak < depth &&
             !writeback_peak_.compare_exchange_weak(
                 peak, depth, std::memory_order_relaxed)) {
      }
    } else {
      Status written = disk_->WritePage(frame.page_id, frame.data.get());
      if (!written.ok()) return written;
    }
    stats_.dirty_writebacks.fetch_add(1, std::memory_order_relaxed);
  }
  stats_.evictions.fetch_add(1, std::memory_order_relaxed);
  stripe.page_table.erase(frame.page_id);
  stripe.lru.erase(frame.lru_pos);
  frame.page_id = kInvalidPageId;
  frame.dirty = false;
  frame.referenced = false;
  return Status::OK();
}

Status BufferPool::SettleWriteback(Stripe& stripe, PageId page_id) {
  auto it = stripe.writebacks.find(page_id);
  if (it == stripe.writebacks.end()) return Status::OK();
  IoTicket ticket = std::move(it->second);
  stripe.writebacks.erase(it);
  writeback_pending_.fetch_sub(1, std::memory_order_relaxed);
  return disk_->Await(ticket);
}

Status BufferPool::DrainWritebacks() {
  Status first_error;
  for (auto& stripe_ptr : stripes_) {
    Stripe& stripe = *stripe_ptr;
    std::vector<IoTicket> tickets;
    {
      MutexLock lock(stripe.mu);
      tickets.reserve(stripe.writebacks.size());
      for (auto& [pid, ticket] : stripe.writebacks) {
        tickets.push_back(std::move(ticket));
      }
      writeback_pending_.fetch_sub(stripe.writebacks.size(),
                                   std::memory_order_relaxed);
      stripe.writebacks.clear();
    }
    for (IoTicket& ticket : tickets) {
      Status retired = disk_->Await(ticket);
      if (!retired.ok() && first_error.ok()) first_error = retired;
    }
  }
  return first_error;
}

// TSA exemption: conditionally releases a latch acquired by another
// function (the fetch path), selected by a runtime mode flag.
void BufferPool::Unpin(size_t frame_index, LatchMode mode,
                       bool latch_already_released)
    OCB_NO_THREAD_SAFETY_ANALYSIS {
  Frame& frame = frames_[frame_index];
  if (!latch_already_released) {
    if (mode == LatchMode::kShared) {
      frame.latch.unlock_shared();
    } else {
      frame.latch.unlock();
    }
  }
  assert(frame.pin_count.load(std::memory_order_relaxed) > 0);
  frame.pin_count.fetch_sub(1, std::memory_order_relaxed);
  --tls_pin_depth;
  if (total_pins_.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
      quiescing_.load(std::memory_order_acquire)) {
    MutexLock lock(quiesce_mu_);
    quiesce_cv_.notify_all();
  }
}

void BufferPool::TouchLru(Stripe& stripe, size_t frame_index) {
  if (options_.replacement_policy == ReplacementPolicy::kFifo) return;
  Frame& frame = frames_[frame_index];
  stripe.lru.erase(frame.lru_pos);
  stripe.lru.push_front(frame_index);
  frame.lru_pos = stripe.lru.begin();
}

}  // namespace ocb
