/// \file striped_oid_map.h
/// \brief Sharded Oid → ObjectLocation table for the object store.
///
/// The object table is on every physical access path (each Read/Update/
/// Delete starts by resolving its Oid), so under CLIENTN clients a single
/// map mutex would re-create the facade convoy the per-page-latching
/// refactor removes. The table is therefore striped: oid o lives in shard
/// o % N, each shard an unordered_map behind its own mutex. Operations on
/// different shards never contend; operations on one shard hold its mutex
/// only for the few map operations involved.
///
/// Lock-ordering rule: shard mutexes are *leaf-adjacent* — a caller may
/// take one while holding page latches (the relocation paths publish the
/// new location while both page latches are held), but must never acquire
/// a page latch, the catalog latch, or a lock-manager mutex while holding
/// a shard mutex.
///
/// Revalidation contract (the reason optimistic resolution is sound):
/// a Lookup NOT performed under the target page's latch returns a
/// location that may be stale by the time the caller latches anything —
/// a concurrent Update/Relocate can move the record. Readers therefore
/// run lookup → latch the page → Lookup AGAIN under the latch and
/// compare: because every relocation publishes the new table entry (Put)
/// while holding BOTH page latches (source and destination, ascending
/// page-id order), an entry revalidated under the page's latch proves
/// the record is on that page right now — the mover could not have
/// published-and-moved while the reader held the latch. A failed
/// revalidation just retries the loop (bounded; see object_store.cc's
/// kMaxResolveAttempts). Erase-then-miss is equally final: a vanished
/// entry under latch means the object is deleted, not moving.

#ifndef OCB_STORAGE_STRIPED_OID_MAP_H_
#define OCB_STORAGE_STRIPED_OID_MAP_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "storage/types.h"
#include "util/sync.h"

namespace ocb {

/// \brief Striped hash map from Oid to physical location.
class StripedOidMap {
 public:
  explicit StripedOidMap(size_t stripes)
      : stripes_(std::max<size_t>(stripes, 1)) {
    shards_.reserve(stripes_);
    for (size_t i = 0; i < stripes_; ++i) {
      shards_.push_back(std::make_unique<Shard>(i));
    }
  }

  StripedOidMap(const StripedOidMap&) = delete;
  StripedOidMap& operator=(const StripedOidMap&) = delete;

  size_t stripes() const { return stripes_; }

  /// Copies the location of \p oid into \p out; false if absent.
  bool Lookup(Oid oid, ObjectLocation* out) const {
    Shard& shard = shard_of(oid);
    MutexLock lock(shard.mu);
    auto it = shard.map.find(oid);
    if (it == shard.map.end()) return false;
    *out = it->second;
    return true;
  }

  bool Contains(Oid oid) const {
    Shard& shard = shard_of(oid);
    MutexLock lock(shard.mu);
    return shard.map.count(oid) != 0;
  }

  /// Inserts or overwrites the entry.
  void Put(Oid oid, ObjectLocation loc) {
    Shard& shard = shard_of(oid);
    MutexLock lock(shard.mu);
    auto [it, inserted] = shard.map.insert_or_assign(oid, loc);
    (void)it;
    if (inserted) size_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Inserts only if absent; returns false when the oid was already live.
  bool PutIfAbsent(Oid oid, ObjectLocation loc) {
    Shard& shard = shard_of(oid);
    MutexLock lock(shard.mu);
    if (!shard.map.emplace(oid, loc).second) return false;
    size_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Removes the entry; false if absent.
  bool Erase(Oid oid) {
    Shard& shard = shard_of(oid);
    MutexLock lock(shard.mu);
    if (shard.map.erase(oid) == 0) return false;
    size_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }

  uint64_t size() const { return size_.load(std::memory_order_relaxed); }

  /// Consistent-enough copy of the whole table (shard by shard — callers
  /// wanting a point-in-time image run under the quiesce guard).
  std::unordered_map<Oid, ObjectLocation> Snapshot() const {
    std::unordered_map<Oid, ObjectLocation> out;
    out.reserve(static_cast<size_t>(size()));
    for (const auto& shard_ptr : shards_) {
      Shard& shard = *shard_ptr;
      MutexLock lock(shard.mu);
      out.insert(shard.map.begin(), shard.map.end());
    }
    return out;
  }

  /// Replaces the whole table (snapshot restore; quiesced).
  void Reset(std::unordered_map<Oid, ObjectLocation> table) {
    for (const auto& shard_ptr : shards_) {
      Shard& shard = *shard_ptr;
      MutexLock lock(shard.mu);
      shard.map.clear();
    }
    size_.store(0, std::memory_order_relaxed);
    for (const auto& [oid, loc] : table) Put(oid, loc);
  }

  /// Invokes \p fn(oid, location) for every entry, one shard at a time
  /// (each shard locked for the duration of its pass).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& shard_ptr : shards_) {
      Shard& shard = *shard_ptr;
      MutexLock lock(shard.mu);
      for (const auto& [oid, loc] : shard.map) fn(oid, loc);
    }
  }

 private:
  struct Shard {
    explicit Shard(size_t index) : mu(lockdep::kOidTableClass, index) {}
    mutable Mutex mu;
    std::unordered_map<Oid, ObjectLocation> map OCB_GUARDED_BY(mu);
  };

  Shard& shard_of(Oid oid) const { return *shards_[oid % stripes_]; }

  const size_t stripes_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> size_{0};
};

}  // namespace ocb

#endif  // OCB_STORAGE_STRIPED_OID_MAP_H_
