/// \file io_backend.h
/// \brief Background worker group draining DiskSim's async submission queue.
///
/// One IoBackend owns N threads and a FIFO of in-flight IoRequests. A
/// request is *charged* (counters, simulated completion instant) by the
/// submitting DiskSim at issue time; the workers only move the bytes — and,
/// in wall-clock mode, sleep the injected device latency — then flip the
/// request's completion state so DiskSim::Await can return. The group is
/// shareable: ShardedDatabase hands one backend to every shard's DiskSim so
/// per-shard pools draw from a single pool of I/O threads, mirroring how a
/// real engine shares its io_uring/AIO contexts across partitions.

#ifndef OCB_STORAGE_IO_BACKEND_H_
#define OCB_STORAGE_IO_BACKEND_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <thread>
#include <vector>

#include "util/sync.h"

namespace ocb {

struct IoRequest;

class IoBackend {
 public:
  /// Spawns \p workers threads (at least 1) that drain the queue until
  /// destruction.
  explicit IoBackend(size_t workers);

  /// Joins the workers. Every submitted request must have been awaited by
  /// its owner before the backend dies — IoTicket's destructor guarantees
  /// this — so the queue is empty except for requests whose owners are
  /// blocked in Await; those are executed before the threads exit.
  ~IoBackend();

  IoBackend(const IoBackend&) = delete;
  IoBackend& operator=(const IoBackend&) = delete;

  /// Enqueues \p request for execution. The caller keeps ownership; the
  /// request must stay alive until its completion state is signalled
  /// (DiskSim::Await or the IoTicket destructor enforce this).
  void Submit(IoRequest* request);

  size_t worker_count() const { return workers_.size(); }

 private:
  void WorkerLoop();

  Mutex mu_{lockdep::kIoQueueClass};
  std::condition_variable_any cv_;
  std::deque<IoRequest*> queue_ OCB_GUARDED_BY(mu_);
  bool stop_ OCB_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace ocb

#endif  // OCB_STORAGE_IO_BACKEND_H_
