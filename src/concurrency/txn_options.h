/// \file txn_options.h
/// \brief Per-transaction options of the Session API (Session::Begin).
///
/// TxnOptions is the public face of the concurrency-control subsystem's
/// tunables: what a caller asks for when beginning a transaction. The
/// session layer maps it onto the engine's internals — read_only +
/// kSnapshot becomes an MVCC ReadView transaction, deadlock_policy flows
/// into LockManagerOptions::victim_policy (engine-wide: all sessions of
/// one run are expected to agree, the same discipline as
/// Database::SetMvccEnabled).

#ifndef OCB_CONCURRENCY_TXN_OPTIONS_H_
#define OCB_CONCURRENCY_TXN_OPTIONS_H_

#include <optional>

#include "concurrency/lock_manager.h"
#include "concurrency/transaction_context.h"

namespace ocb {

/// Isolation level requested for a transaction.
enum class IsolationLevel : uint8_t {
  /// Read-only transactions read a consistent MVCC snapshot (ReadView
  /// pinned at begin, no S locks, never blocks, never deadlocks);
  /// read-write transactions run strict 2PL. The default.
  kSnapshot = 0,
  /// Pure strict 2PL for everything: even read-only transactions take S
  /// locks and queue behind writers (the pure-2PL baseline
  /// bench_multiclient measures).
  kStrict2PL,
};

const char* IsolationLevelToString(IsolationLevel level);

/// \brief What Session::Begin was asked for.
struct TxnOptions {
  /// The transaction promises not to write. With kSnapshot isolation it
  /// becomes an MVCC snapshot reader; with kStrict2PL it is a locking
  /// transaction whose writes the session layer refuses.
  bool read_only = false;

  /// See IsolationLevel. Only consulted for read-only transactions (a
  /// writer always runs strict 2PL).
  IsolationLevel isolation = IsolationLevel::kSnapshot;

  /// Deadlock victim policy the engine's lock managers should apply.
  /// Unset (the default) keeps whatever the engine is configured with —
  /// a Begin with default options never reverts a configured policy.
  /// When set it applies engine-wide (Session::Begin forwards it to
  /// every lock manager), so all concurrent sessions of one run must
  /// agree on it.
  std::optional<DeadlockPolicy> deadlock_policy;
};

/// Maps the per-transaction options onto the lock manager's option
/// struct, preserving \p base for everything TxnOptions does not cover
/// (the wait timeout, and the victim policy when unset).
inline LockManagerOptions ToLockManagerOptions(
    const TxnOptions& options, const LockManagerOptions& base) {
  LockManagerOptions out = base;
  if (options.deadlock_policy.has_value()) {
    out.victim_policy = *options.deadlock_policy;
  }
  return out;
}

inline const char* IsolationLevelToString(IsolationLevel level) {
  switch (level) {
    case IsolationLevel::kSnapshot:
      return "snapshot";
    case IsolationLevel::kStrict2PL:
      return "strict-2PL";
  }
  return "?";
}

}  // namespace ocb

#endif  // OCB_CONCURRENCY_TXN_OPTIONS_H_
