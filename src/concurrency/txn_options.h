/// \file txn_options.h
/// \brief Per-transaction options of the Session API (Session::Begin).
///
/// TxnOptions is the public face of the concurrency-control subsystem's
/// tunables: what a caller asks for when beginning a transaction. The
/// session layer maps it onto the engine's internals — read_only +
/// snapshot isolation becomes an MVCC ReadView transaction, cc selects
/// the writer algorithm (see CcAlgorithm), deadlock_policy flows into
/// LockManagerOptions::victim_policy (engine-wide: all sessions of one
/// run are expected to agree, the same discipline as
/// Database::SetMvccEnabled).
///
/// The option matrix is validated explicitly (ValidateTxnOptions):
/// nonsensical combinations — a writer asking for kSnapshot *isolation*
/// without the kSnapshotIsolation *algorithm*, a read-only transaction
/// asking for an optimistic writer algorithm — are refused with a typed
/// InvalidArgument instead of being silently downgraded to 2PL.

#ifndef OCB_CONCURRENCY_TXN_OPTIONS_H_
#define OCB_CONCURRENCY_TXN_OPTIONS_H_

#include <optional>

#include "concurrency/lock_manager.h"
#include "concurrency/transaction_context.h"
#include "util/format.h"
#include "util/status.h"

namespace ocb {

/// Isolation level requested for a transaction.
enum class IsolationLevel : uint8_t {
  /// Derive the level from the other options: read-only transactions
  /// read a consistent MVCC snapshot, read-write transactions follow
  /// TxnOptions::cc. The default — callers that don't care never have
  /// to spell an isolation level.
  kDefault = 0,
  /// Read a consistent MVCC snapshot (ReadView pinned at begin, no S
  /// locks, never blocks, never deadlocks). For a read-write
  /// transaction this is only meaningful with cc = kSnapshotIsolation
  /// (SI writers read from their pinned view); any other cc is refused.
  kSnapshot,
  /// Pure strict 2PL for everything: even read-only transactions take S
  /// locks and queue behind writers (the pure-2PL baseline
  /// bench_multiclient measures). Requires cc = kStrict2PL.
  kStrict2PL,
};

const char* IsolationLevelToString(IsolationLevel level);

// CcAlgorithm (the CC_ALG axis — kStrict2PL / kSnapshotIsolation /
// kSiloOCC) lives in transaction_context.h with the other CC enums.

/// \brief What Session::Begin was asked for.
struct TxnOptions {
  /// The transaction promises not to write. Under MVCC it becomes a
  /// snapshot reader; with kStrict2PL isolation it is a locking
  /// transaction whose writes the session layer refuses.
  bool read_only = false;

  /// See IsolationLevel. kDefault derives the level from read_only + cc.
  IsolationLevel isolation = IsolationLevel::kDefault;

  /// Writer concurrency-control algorithm. Ignored for read-only
  /// transactions under MVCC (they are pure snapshot readers); with
  /// MVCC disabled engine-wide, SI/OCC are unavailable and Begin
  /// refuses them (both algorithms are built on the version store).
  CcAlgorithm cc = CcAlgorithm::kStrict2PL;

  /// Deadlock victim policy the engine's lock managers should apply.
  /// Unset (the default) keeps whatever the engine is configured with —
  /// a Begin with default options never reverts a configured policy.
  /// When set it applies engine-wide (Session::Begin forwards it to
  /// every lock manager), so all concurrent sessions of one run must
  /// agree on it.
  std::optional<DeadlockPolicy> deadlock_policy;
};

/// Validates the {read_only, isolation, cc} matrix. The combinations
/// that used to be accepted silently as something else are now typed
/// refusals:
///   * writer + kSnapshot isolation requires cc == kSnapshotIsolation
///     (previously this silently ran strict 2PL);
///   * writer + kStrict2PL isolation requires cc == kStrict2PL;
///   * read-only + a non-2PL cc is meaningless (snapshot readers never
///     validate) and refused rather than ignored.
/// \p mvcc_enabled gates the SI/OCC algorithms: both are built on the
/// version store, so with MVCC off they are refused, not downgraded.
inline Status ValidateTxnOptions(const TxnOptions& options,
                                 bool mvcc_enabled) {
  if (options.read_only && options.cc != CcAlgorithm::kStrict2PL) {
    return Status::InvalidArgument(
        Format("Begin refused: read_only with cc=%s is meaningless — "
               "snapshot readers never validate; leave cc at its default",
               CcAlgorithmToString(options.cc)));
  }
  if (!options.read_only && options.isolation == IsolationLevel::kSnapshot &&
      options.cc != CcAlgorithm::kSnapshotIsolation) {
    return Status::InvalidArgument(
        Format("Begin refused: a writer with isolation=snapshot requires "
               "cc=si (got cc=%s); this combination used to silently run "
               "strict 2PL",
               CcAlgorithmToString(options.cc)));
  }
  if (options.isolation == IsolationLevel::kStrict2PL &&
      options.cc != CcAlgorithm::kStrict2PL) {
    return Status::InvalidArgument(
        Format("Begin refused: isolation=strict-2PL contradicts cc=%s",
               CcAlgorithmToString(options.cc)));
  }
  if (!mvcc_enabled && options.cc != CcAlgorithm::kStrict2PL) {
    return Status::InvalidArgument(
        Format("Begin refused: cc=%s requires MVCC, which is disabled "
               "engine-wide (SetMvccEnabled(false))",
               CcAlgorithmToString(options.cc)));
  }
  return Status::OK();
}

/// Maps the per-transaction options onto the lock manager's option
/// struct, preserving \p base for everything TxnOptions does not cover
/// (the wait timeout, and the victim policy when unset).
inline LockManagerOptions ToLockManagerOptions(
    const TxnOptions& options, const LockManagerOptions& base) {
  LockManagerOptions out = base;
  if (options.deadlock_policy.has_value()) {
    out.victim_policy = *options.deadlock_policy;
  }
  return out;
}

inline const char* IsolationLevelToString(IsolationLevel level) {
  switch (level) {
    case IsolationLevel::kDefault:
      return "default";
    case IsolationLevel::kSnapshot:
      return "snapshot";
    case IsolationLevel::kStrict2PL:
      return "strict-2PL";
  }
  return "?";
}

}  // namespace ocb

#endif  // OCB_CONCURRENCY_TXN_OPTIONS_H_
