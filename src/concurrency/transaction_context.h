/// \file transaction_context.h
/// \brief Per-transaction concurrency-control state.
///
/// A TransactionContext is handed out by Database::BeginTxn and threaded
/// through every object operation executed on the transaction's behalf. It
/// carries:
///
///   * the transaction id (monotonic; doubles as age for victim policies),
///   * the set of object locks currently held (maintained by LockManager),
///   * an undo log of pre-images (maintained by Database) replayed in
///     reverse on abort,
///   * for *read-only* transactions, the MVCC ReadView pinning the commit
///     timestamp their snapshot reads resolve against (no locks, no undo),
///   * accounting: cumulative lock-wait time and snapshot reads served.
///
/// Lifecycle: kActive → (CommitTxn → kCommitted | AbortTxn → kAborted).
/// A context is single-threaded — exactly one client thread drives it — so
/// its members need no internal synchronization beyond what LockManager and
/// Database provide for their own structures.

#ifndef OCB_CONCURRENCY_TRANSACTION_CONTEXT_H_
#define OCB_CONCURRENCY_TRANSACTION_CONTEXT_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "oodb/schema.h"  // ClassId (for extent maintenance on rollback).
#include "storage/types.h"

namespace ocb {

/// Monotonic transaction identifier (1-based; 0 is reserved/invalid).
using TxnId = uint64_t;
inline constexpr TxnId kInvalidTxnId = 0;

/// Lock strength requested on one object.
enum class LockMode : uint8_t {
  kShared = 0,    ///< Concurrent readers allowed.
  kExclusive = 1  ///< Single writer, no readers.
};

const char* LockModeToString(LockMode mode);

/// Deadlock victim-selection policy of a LockManager (see lock_manager.h
/// for the per-policy semantics; transaction ids double as age — a larger
/// id is a younger transaction).
enum class DeadlockPolicy : uint8_t {
  /// The historical PR 2 policy: the requester whose wait would close the
  /// cycle is refused (exactly one victim per cycle, sleepers sleep on).
  kCycleCloser = 0,
  /// The youngest transaction in the detected cycle aborts; if that is a
  /// sleeping waiter it is woken with Status::Aborted and the requester
  /// waits on.
  kYoungest,
  /// Wound-wait (Rosenkrantz et al.): an older requester wounds younger
  /// conflicting holders (they abort at their next lock request, or
  /// immediately if asleep); a younger requester waits behind older ones.
  kWoundWait,
};

const char* DeadlockPolicyToString(DeadlockPolicy policy);

/// Concurrency-control algorithm for read-write transactions (the
/// CC_ALG axis; see ARCHITECTURE.md "Concurrency control algorithms").
enum class CcAlgorithm : uint8_t {
  /// Strict two-phase locking: S locks on reads, X locks on writes,
  /// in-place writes with undo logging. The default path, unchanged.
  kStrict2PL = 0,
  /// Snapshot isolation: reads resolve against a ReadView pinned at
  /// begin, writes are buffered in the transaction context, and commit
  /// validates first-committer-wins against version-store commit
  /// timestamps — a concurrent commit to any written object since the
  /// snapshot aborts this transaction with Status::WriteConflict.
  /// Admits write skew (disjoint write sets, intersecting read sets).
  kSnapshotIsolation,
  /// Silo-style optimistic CC: no S locks ever. Reads record per-object
  /// version stamps; commit X-locks the write set in ascending oid
  /// order, validates that every read stamp is unchanged (and no other
  /// writer holds the object), then stamps through the ordinary commit
  /// pipeline. Serializable: conflicts surface as Status::WriteConflict.
  kSiloOCC,
};

const char* CcAlgorithmToString(CcAlgorithm cc);

/// Transaction lifecycle state. kPrepared is the two-phase-commit limbo a
/// cross-shard participant enters between Database::PrepareTxn and the
/// coordinator's decision: all writes are applied, all locks are held, and
/// the only legal transitions are CommitTxnAt / AbortTxn(At).
enum class TxnState : uint8_t { kActive, kPrepared, kCommitted, kAborted };

const char* TxnStateToString(TxnState state);

/// One entry of the undo log: enough to restore the object's earliest
/// within-transaction state.
struct UndoRecord {
  enum class Kind : uint8_t {
    kCreate,  ///< Object was created by this txn: undo deletes it.
    kRestore  ///< Object pre-existed: undo restores \c pre_image (re-
              ///< inserting the record if the txn later deleted it).
  };
  Kind kind = Kind::kRestore;
  Oid oid = kInvalidOid;
  ClassId class_id = kNullClass;        ///< For extent maintenance.
  std::vector<uint8_t> pre_image;       ///< Encoded bytes (kRestore only).
};

/// One write buffered by an SI/OCC transaction: the encoded post-image,
/// applied under the X lock acquired at commit-time finalization.
struct BufferedWrite {
  ClassId class_id = kNullClass;
  std::vector<uint8_t> encoded;
};

/// \brief State of one in-flight transaction.
class TransactionContext {
 public:
  explicit TransactionContext(TxnId id, bool read_only = false)
      : id_(id), read_only_(read_only) {}

  TransactionContext(const TransactionContext&) = delete;
  TransactionContext& operator=(const TransactionContext&) = delete;

  TxnId id() const { return id_; }
  TxnState state() const { return state_; }
  bool active() const { return state_ == TxnState::kActive; }
  bool prepared() const { return state_ == TxnState::kPrepared; }

  /// True for MVCC readers: object reads resolve against the snapshot
  /// pinned at BeginTxn (no S locks taken, so this txn never deadlocks),
  /// and every write operation is refused with InvalidArgument.
  bool read_only() const { return read_only_; }

  /// Concurrency-control algorithm this transaction runs under
  /// (read-write transactions; readers are plain snapshot readers).
  CcAlgorithm cc() const { return cc_; }

  /// True when object reads resolve through a pinned ReadView: MVCC
  /// readers, and SI writers (whose reads come from their snapshot).
  bool uses_snapshot_reads() const {
    return read_only_ ||
           (owns_view_ && cc_ == CcAlgorithm::kSnapshotIsolation);
  }

  /// True when this transaction has work to commit: in-place undo-logged
  /// writes (2PL, or finalized SI/OCC) or still-buffered SI/OCC writes.
  /// The writer-classification predicate everywhere `!undo_log().empty()`
  /// used to be the test.
  bool has_writes() const {
    return !undo_log_.empty() || !write_buffer_.empty();
  }

  /// Buffered SI/OCC writes (oid → post-image), ascending oid order —
  /// commit-time finalization X-locks them in this order.
  const std::map<Oid, BufferedWrite>& write_buffer() const {
    return write_buffer_;
  }

  /// OCC read set: oid → last-committed-write timestamp observed at read
  /// time. Commit validation re-reads each stamp and aborts on change.
  const std::unordered_map<Oid, uint64_t>& occ_read_set() const {
    return occ_read_set_;
  }

  /// Commit timestamp the snapshot is pinned at (read-only txns only).
  uint64_t snapshot_ts() const { return snapshot_ts_; }

  /// Object reads this txn served through its ReadView (version chain or
  /// store fall-through).
  uint64_t snapshot_reads() const { return snapshot_reads_; }

  /// True when this txn holds a lock on \p oid at least as strong as
  /// \p mode.
  bool HoldsLock(Oid oid, LockMode mode) const {
    auto it = held_locks_.find(oid);
    if (it == held_locks_.end()) return false;
    return mode == LockMode::kShared || it->second == LockMode::kExclusive;
  }

  /// Locks currently held (oid → strongest granted mode).
  const std::unordered_map<Oid, LockMode>& held_locks() const {
    return held_locks_;
  }

  /// Undo log in append order; Database replays it in reverse on abort.
  const std::vector<UndoRecord>& undo_log() const { return undo_log_; }

  /// Cumulative wall time this txn spent blocked on locks.
  uint64_t lock_wait_nanos() const { return lock_wait_nanos_; }

 private:
  friend class LockManager;  ///< Maintains held_locks_, lock_wait_nanos_.
  friend class Database;     ///< Maintains undo_log_, state_, CC state.

  TxnId id_;
  bool read_only_ = false;
  TxnState state_ = TxnState::kActive;
  CcAlgorithm cc_ = CcAlgorithm::kStrict2PL;
  std::unordered_map<Oid, LockMode> held_locks_;
  std::vector<UndoRecord> undo_log_;
  std::unordered_set<Oid> undo_logged_;  ///< Oids with a pre-image already.
  uint64_t lock_wait_nanos_ = 0;
  uint64_t snapshot_ts_ = 0;     ///< Pinned ReadView ts (see owns_view_).
  uint64_t snapshot_reads_ = 0;  ///< Reads served through the ReadView.
  /// True when this context owns an open ReadView that commit/abort must
  /// close: MVCC readers AND SI writers (whose snapshot_ts_ pins their
  /// read snapshot). Keyed on this, not read_only_.
  bool owns_view_ = false;
  /// SI/OCC: writes buffered until commit-time finalization (applied
  /// in-place only after validation, under X locks).
  std::map<Oid, BufferedWrite> write_buffer_;
  /// SI/OCC: set once Database::FinalizeCc validated and applied the
  /// buffered writes — the commit paths that follow (pipeline, 2PC
  /// CommitTxnAt) must not finalize twice.
  bool cc_finalized_ = false;
  /// OCC: per-object version stamps observed by reads (see occ_read_set).
  std::unordered_map<Oid, uint64_t> occ_read_set_;
  /// OCC phantom protection: per-class extent version counters observed
  /// by ExtentSnapshot, revalidated at commit.
  std::unordered_map<ClassId, uint64_t> occ_extent_versions_;
};

}  // namespace ocb

#endif  // OCB_CONCURRENCY_TRANSACTION_CONTEXT_H_
