/// \file transaction_context.h
/// \brief Per-transaction concurrency-control state.
///
/// A TransactionContext is handed out by Database::BeginTxn and threaded
/// through every object operation executed on the transaction's behalf. It
/// carries:
///
///   * the transaction id (monotonic; doubles as age for victim policies),
///   * the set of object locks currently held (maintained by LockManager),
///   * an undo log of pre-images (maintained by Database) replayed in
///     reverse on abort,
///   * for *read-only* transactions, the MVCC ReadView pinning the commit
///     timestamp their snapshot reads resolve against (no locks, no undo),
///   * accounting: cumulative lock-wait time and snapshot reads served.
///
/// Lifecycle: kActive → (CommitTxn → kCommitted | AbortTxn → kAborted).
/// A context is single-threaded — exactly one client thread drives it — so
/// its members need no internal synchronization beyond what LockManager and
/// Database provide for their own structures.

#ifndef OCB_CONCURRENCY_TRANSACTION_CONTEXT_H_
#define OCB_CONCURRENCY_TRANSACTION_CONTEXT_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "oodb/schema.h"  // ClassId (for extent maintenance on rollback).
#include "storage/types.h"

namespace ocb {

/// Monotonic transaction identifier (1-based; 0 is reserved/invalid).
using TxnId = uint64_t;
inline constexpr TxnId kInvalidTxnId = 0;

/// Lock strength requested on one object.
enum class LockMode : uint8_t {
  kShared = 0,    ///< Concurrent readers allowed.
  kExclusive = 1  ///< Single writer, no readers.
};

const char* LockModeToString(LockMode mode);

/// Deadlock victim-selection policy of a LockManager (see lock_manager.h
/// for the per-policy semantics; transaction ids double as age — a larger
/// id is a younger transaction).
enum class DeadlockPolicy : uint8_t {
  /// The historical PR 2 policy: the requester whose wait would close the
  /// cycle is refused (exactly one victim per cycle, sleepers sleep on).
  kCycleCloser = 0,
  /// The youngest transaction in the detected cycle aborts; if that is a
  /// sleeping waiter it is woken with Status::Aborted and the requester
  /// waits on.
  kYoungest,
  /// Wound-wait (Rosenkrantz et al.): an older requester wounds younger
  /// conflicting holders (they abort at their next lock request, or
  /// immediately if asleep); a younger requester waits behind older ones.
  kWoundWait,
};

const char* DeadlockPolicyToString(DeadlockPolicy policy);

/// Transaction lifecycle state. kPrepared is the two-phase-commit limbo a
/// cross-shard participant enters between Database::PrepareTxn and the
/// coordinator's decision: all writes are applied, all locks are held, and
/// the only legal transitions are CommitTxnAt / AbortTxn(At).
enum class TxnState : uint8_t { kActive, kPrepared, kCommitted, kAborted };

const char* TxnStateToString(TxnState state);

/// One entry of the undo log: enough to restore the object's earliest
/// within-transaction state.
struct UndoRecord {
  enum class Kind : uint8_t {
    kCreate,  ///< Object was created by this txn: undo deletes it.
    kRestore  ///< Object pre-existed: undo restores \c pre_image (re-
              ///< inserting the record if the txn later deleted it).
  };
  Kind kind = Kind::kRestore;
  Oid oid = kInvalidOid;
  ClassId class_id = kNullClass;        ///< For extent maintenance.
  std::vector<uint8_t> pre_image;       ///< Encoded bytes (kRestore only).
};

/// \brief State of one in-flight transaction.
class TransactionContext {
 public:
  explicit TransactionContext(TxnId id, bool read_only = false)
      : id_(id), read_only_(read_only) {}

  TransactionContext(const TransactionContext&) = delete;
  TransactionContext& operator=(const TransactionContext&) = delete;

  TxnId id() const { return id_; }
  TxnState state() const { return state_; }
  bool active() const { return state_ == TxnState::kActive; }
  bool prepared() const { return state_ == TxnState::kPrepared; }

  /// True for MVCC readers: object reads resolve against the snapshot
  /// pinned at BeginTxn (no S locks taken, so this txn never deadlocks),
  /// and every write operation is refused with InvalidArgument.
  bool read_only() const { return read_only_; }

  /// Commit timestamp the snapshot is pinned at (read-only txns only).
  uint64_t snapshot_ts() const { return snapshot_ts_; }

  /// Object reads this txn served through its ReadView (version chain or
  /// store fall-through).
  uint64_t snapshot_reads() const { return snapshot_reads_; }

  /// True when this txn holds a lock on \p oid at least as strong as
  /// \p mode.
  bool HoldsLock(Oid oid, LockMode mode) const {
    auto it = held_locks_.find(oid);
    if (it == held_locks_.end()) return false;
    return mode == LockMode::kShared || it->second == LockMode::kExclusive;
  }

  /// Locks currently held (oid → strongest granted mode).
  const std::unordered_map<Oid, LockMode>& held_locks() const {
    return held_locks_;
  }

  /// Undo log in append order; Database replays it in reverse on abort.
  const std::vector<UndoRecord>& undo_log() const { return undo_log_; }

  /// Cumulative wall time this txn spent blocked on locks.
  uint64_t lock_wait_nanos() const { return lock_wait_nanos_; }

 private:
  friend class LockManager;  ///< Maintains held_locks_, lock_wait_nanos_.
  friend class Database;     ///< Maintains undo_log_, state_.

  TxnId id_;
  bool read_only_ = false;
  TxnState state_ = TxnState::kActive;
  std::unordered_map<Oid, LockMode> held_locks_;
  std::vector<UndoRecord> undo_log_;
  std::unordered_set<Oid> undo_logged_;  ///< Oids with a pre-image already.
  uint64_t lock_wait_nanos_ = 0;
  uint64_t snapshot_ts_ = 0;     ///< Pinned ReadView ts (read-only txns).
  uint64_t snapshot_reads_ = 0;  ///< Reads served through the ReadView.
};

}  // namespace ocb

#endif  // OCB_CONCURRENCY_TRANSACTION_CONTEXT_H_
