/// \file read_view.h
/// \brief Snapshot handles for MVCC readers.
///
/// A ReadView pins the commit timestamp a read-only transaction was born
/// at: every object read through it resolves against the database as of
/// that instant (committed writes with ts <= snapshot are visible, later
/// or in-flight ones are not). The registry tracks all open views so the
/// version-store garbage collector knows the oldest snapshot any reader
/// can still demand — everything older is reclaimable.
///
/// ReadViews are deliberately dumb data: the interesting state (the open
/// multiset) lives in the registry, which is internally synchronized and
/// shared by all client threads and the GC thread.

#ifndef OCB_CONCURRENCY_READ_VIEW_H_
#define OCB_CONCURRENCY_READ_VIEW_H_

#include <cstdint>
#include <map>

#include "concurrency/version_store.h"
#include "util/sync.h"

namespace ocb {

/// \brief A pinned snapshot timestamp. Valid from VersionStore::
/// OpenSnapshot until the matching ReadViewRegistry::Close.
struct ReadView {
  CommitTs snapshot_ts = 0;
};

/// \brief Registry of open ReadViews; the GC's source of truth.
class ReadViewRegistry {
 public:
  ReadViewRegistry() = default;

  ReadViewRegistry(const ReadViewRegistry&) = delete;
  ReadViewRegistry& operator=(const ReadViewRegistry&) = delete;

  /// Registers a view pinned at \p ts. Called by VersionStore::
  /// OpenSnapshot under the store's mutex so pinning is atomic against
  /// commit stamping and garbage collection; prefer that entry point.
  void OpenAt(CommitTs ts);

  /// Closes \p view; its snapshot no longer holds back garbage collection.
  void Close(const ReadView& view);

  /// The oldest snapshot any open view still needs, or \p fallback (the
  /// current commit timestamp) when no view is open.
  CommitTs OldestActive(CommitTs fallback) const;

  /// Number of views currently open.
  size_t open_count() const;

 private:
  mutable Mutex mu_{lockdep::kReadViewRegistryClass};
  /// snapshot_ts → open view count.
  std::map<CommitTs, uint64_t> open_ OCB_GUARDED_BY(mu_);
};

}  // namespace ocb

#endif  // OCB_CONCURRENCY_READ_VIEW_H_
