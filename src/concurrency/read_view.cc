#include "concurrency/read_view.h"

namespace ocb {

void ReadViewRegistry::OpenAt(CommitTs ts) {
  MutexLock lock(mu_);
  ++open_[ts];
}

void ReadViewRegistry::Close(const ReadView& view) {
  MutexLock lock(mu_);
  auto it = open_.find(view.snapshot_ts);
  if (it == open_.end()) return;
  if (--it->second == 0) open_.erase(it);
}

CommitTs ReadViewRegistry::OldestActive(CommitTs fallback) const {
  MutexLock lock(mu_);
  if (open_.empty()) return fallback;
  return open_.begin()->first;
}

size_t ReadViewRegistry::open_count() const {
  MutexLock lock(mu_);
  size_t n = 0;
  for (const auto& [ts, count] : open_) n += count;
  return n;
}

}  // namespace ocb
