#include "concurrency/transaction_context.h"

namespace ocb {

const char* LockModeToString(LockMode mode) {
  switch (mode) {
    case LockMode::kShared:
      return "S";
    case LockMode::kExclusive:
      return "X";
  }
  return "?";
}

const char* DeadlockPolicyToString(DeadlockPolicy policy) {
  switch (policy) {
    case DeadlockPolicy::kCycleCloser:
      return "cycle-closer";
    case DeadlockPolicy::kYoungest:
      return "youngest";
    case DeadlockPolicy::kWoundWait:
      return "wound-wait";
  }
  return "?";
}

const char* CcAlgorithmToString(CcAlgorithm cc) {
  switch (cc) {
    case CcAlgorithm::kStrict2PL:
      return "2pl";
    case CcAlgorithm::kSnapshotIsolation:
      return "si";
    case CcAlgorithm::kSiloOCC:
      return "occ";
  }
  return "?";
}

const char* TxnStateToString(TxnState state) {
  switch (state) {
    case TxnState::kActive:
      return "active";
    case TxnState::kPrepared:
      return "prepared";
    case TxnState::kCommitted:
      return "committed";
    case TxnState::kAborted:
      return "aborted";
  }
  return "?";
}

}  // namespace ocb
