/// \file wait_graph.h
/// \brief Cross-lock-manager wait-for graph for sharded deployments.
///
/// Each LockManager detects deadlocks with a DFS over its *own* queues,
/// which is complete for a single store but blind to cycles that span
/// shards: txn A blocked in shard 0's manager waiting for B, while B is
/// blocked in shard 1's manager waiting for A. Before the global graph,
/// such cycles could only be broken by the wait timeout — hundreds of
/// milliseconds of dead wait per occurrence, which the SHARDN bench
/// showed dominating the write-heavy mix.
///
/// The GlobalWaitGraph closes that gap: every shard's lock manager,
/// right before blocking a transaction, registers the edges
/// waiter → {direct blockers} here and asks whether they close a cycle
/// anywhere in the deployment. Registration and cycle check are one
/// atomic step under the graph mutex, and the victim policy matches the
/// per-shard one — the edge-adding *newcomer* is refused (Aborted), so
/// each cycle aborts exactly one transaction.
///
/// Identity: edges are keyed by TxnId, so all participant contexts of one
/// sharded transaction must share one globally unique id
/// (Database::BeginTxnWithId) — otherwise shard 0's half of a transaction
/// and shard 1's half would look like two unrelated transactions and the
/// cycle through them would go unseen.
///
/// Precision: edges are a snapshot taken when the waiter blocks and are
/// removed when it wakes. A blocker that releases mid-wait leaves a stale
/// edge behind until then, so the check may abort a transaction whose
/// cycle had just dissolved — a conservative false positive, never a
/// missed deadlock *among registered edges*. FIFO-gating waits (queued
/// behind a compatible waiter) are not registered, mirroring the
/// per-shard DFS's edge definition; the wait timeout still backstops
/// those.
///
/// Ordering: the graph mutex is a leaf below every lock-manager mutex
/// (managers call in while holding their table mutex); the graph never
/// calls out.

#ifndef OCB_CONCURRENCY_WAIT_GRAPH_H_
#define OCB_CONCURRENCY_WAIT_GRAPH_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "concurrency/transaction_context.h"
#include "util/sync.h"

namespace ocb {

/// \brief Deployment-wide txn → txn wait edges with cycle refusal.
class GlobalWaitGraph {
 public:
  GlobalWaitGraph() = default;

  GlobalWaitGraph(const GlobalWaitGraph&) = delete;
  GlobalWaitGraph& operator=(const GlobalWaitGraph&) = delete;

  /// Atomically checks whether the edges \p waiter → each of \p blockers
  /// would close a cycle with the edges already registered; if so,
  /// registers nothing and returns false (the caller must refuse the
  /// wait). Otherwise registers them and returns true — pair with
  /// Clear(waiter) once the wait ends, however it ends.
  bool TryRegisterWaits(TxnId waiter, const std::vector<TxnId>& blockers) {
    MutexLock lock(mu_);
    // DFS from every blocker: reaching `waiter` means the new edges close
    // a cycle.
    std::unordered_set<TxnId> visited;
    std::vector<TxnId> stack(blockers.begin(), blockers.end());
    while (!stack.empty()) {
      const TxnId current = stack.back();
      stack.pop_back();
      if (current == waiter) return false;
      if (!visited.insert(current).second) continue;
      auto it = out_.find(current);
      if (it == out_.end()) continue;
      stack.insert(stack.end(), it->second.begin(), it->second.end());
    }
    if (!blockers.empty()) out_[waiter] = blockers;
    return true;
  }

  /// Drops \p waiter's out-edges (it stopped waiting: granted, refused,
  /// or timed out).
  void Clear(TxnId waiter) {
    MutexLock lock(mu_);
    out_.erase(waiter);
  }

  /// Number of currently registered waiters (tests).
  size_t waiter_count() const {
    MutexLock lock(mu_);
    return out_.size();
  }

 private:
  mutable Mutex mu_{lockdep::kWaitGraphClass};
  std::unordered_map<TxnId, std::vector<TxnId>> out_ OCB_GUARDED_BY(mu_);
};

}  // namespace ocb

#endif  // OCB_CONCURRENCY_WAIT_GRAPH_H_
