/// \file lock_manager.h
/// \brief Object-granularity two-phase lock manager.
///
/// The lock manager implements strict 2PL for the Database's transactional
/// path: transactions acquire shared (S) or exclusive (X) locks per object
/// as they touch it and hold everything until commit or abort, when
/// ReleaseAll drains the lot at once.
///
/// Grant policy is FIFO per object: a request is granted when it is
/// compatible with every granted request of other transactions *and* no
/// earlier waiter is still queued ahead of it (no writer starvation). The
/// one queue-jump is the S→X upgrade, which is placed at the head of the
/// wait section so the upgrader drains concurrent readers as fast as
/// possible.
///
/// Deadlock handling: when a request must wait, the manager builds the
/// wait-for graph implied by the queues and runs a DFS from the requester.
/// Which transaction dies is chosen by LockManagerOptions::victim_policy:
///
///   * kCycleCloser (default, the PR 2 baseline contract) — the requester
///     whose wait would close the cycle is refused with Status::Aborted,
///     so each cycle aborts exactly one transaction (everyone already
///     asleep stays asleep).
///   * kYoungest — the youngest (largest-id) transaction in the cycle is
///     the victim. When that is a sleeping waiter it is woken with
///     Status::Aborted and the requester waits on; when the requester is
///     itself the youngest it is refused as under kCycleCloser.
///   * kWoundWait — no cycle search at all: an older requester *wounds*
///     every younger conflicting blocker (sleeping ones wake Aborted,
///     running ones die at their next Acquire), a younger requester
///     simply waits behind older ones. Deadlock-free by construction,
///     at the price of aborts without a proven cycle.
///
/// A wait-die-style timeout (LockManagerOptions::wait_timeout_nanos)
/// backstops anything the policy cannot see.
///
/// All blocking happens inside Acquire on a per-object condition variable;
/// the table itself is protected by one mutex (critical sections are a few
/// map operations — contention on it is far cheaper than the storage work
/// done while holding the locks it hands out).

#ifndef OCB_CONCURRENCY_LOCK_MANAGER_H_
#define OCB_CONCURRENCY_LOCK_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "concurrency/transaction_context.h"
#include "concurrency/wait_graph.h"
#include "storage/types.h"
#include "util/status.h"
#include "util/sync.h"

namespace ocb {

namespace obs {
class LatencyHistogram;
}  // namespace obs

/// Tunables of the lock manager.
struct LockManagerOptions {
  /// Upper bound on one blocking Acquire; expiring returns Aborted. The
  /// fallback for conflicts the wait-for graph cannot express.
  uint64_t wait_timeout_nanos = 2'000'000'000;  // 2 s

  /// Deadlock victim-selection policy (see DeadlockPolicy). The default
  /// preserves the PR 2 baseline contract: one victim per cycle (the
  /// cycle-closing requester), FIFO fairness across aborts.
  DeadlockPolicy victim_policy = DeadlockPolicy::kCycleCloser;
};

/// Aggregate counters (monotonic; read via stats()).
struct LockManagerStats {
  uint64_t acquisitions = 0;     ///< Granted requests (incl. re-grants).
  uint64_t waits = 0;            ///< Requests that had to block.
  uint64_t deadlocks = 0;        ///< Requests refused by cycle detection.
  uint64_t timeouts = 0;         ///< Requests refused by the timeout.
  uint64_t total_wait_nanos = 0; ///< Wall time spent blocked, all txns.
  uint64_t victim_wakeups = 0;   ///< Sleeping waiters aborted as victims.
  uint64_t wounds = 0;           ///< Wound-wait wounds dealt to younger txns.
};

/// \brief Shared/exclusive object lock table with deadlock detection.
class LockManager {
 public:
  explicit LockManager(LockManagerOptions options = LockManagerOptions());
  ~LockManager();

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Acquires \p mode on \p oid for \p txn, blocking while conflicting
  /// transactions hold the object. Idempotent: re-requesting a held (or
  /// weaker) mode returns immediately. S→X upgrades are supported.
  ///
  /// \return OK when granted; Aborted when the wait would deadlock or
  ///         timed out — the caller must abort the transaction (its
  ///         already-granted locks stay held until ReleaseAll).
  Status Acquire(TransactionContext* txn, Oid oid, LockMode mode);

  /// Releases every lock \p txn holds and wakes eligible waiters.
  /// Called exactly once, at commit or abort (strict 2PL).
  void ReleaseAll(TransactionContext* txn);

  LockManagerStats stats() const;

  /// Number of objects with at least one granted or waiting request.
  size_t locked_object_count() const;

  /// True when a transaction other than \p self currently holds the X
  /// lock on \p oid. Silo's locked-tuple rule: OCC validation treats an
  /// object X-locked by a concurrently committing writer as a conflict
  /// even though its stamp has not changed yet — without it two
  /// validating transactions could mutually pass stamp-only checks.
  bool IsXLockedByOther(Oid oid, TxnId self) const;

  /// Current / new deadlock victim policy. The setter is safe to call at
  /// any time (it takes the table mutex) but, like SetMvccEnabled, is
  /// meant to be flipped between runs: all clients of one run share one
  /// policy (ProtocolRunner applies WorkloadParameters::deadlock_policy
  /// at construction).
  DeadlockPolicy victim_policy() const;
  void SetVictimPolicy(DeadlockPolicy policy);

  /// Attaches a deployment-wide wait-for graph (ShardedDatabase wires all
  /// its shards' managers to one). When set, every blocking Acquire also
  /// registers its direct-blocker edges there and refuses the wait if
  /// they close a *cross-shard* cycle — the per-shard DFS cannot see
  /// those, and before the graph they burned the full wait timeout. Set
  /// while no Acquire is in flight (construction time); pass nullptr to
  /// detach.
  void SetWaitGraph(GlobalWaitGraph* graph) { wait_graph_ = graph; }

 private:
  struct Request {
    TxnId txn = kInvalidTxnId;
    LockMode mode = LockMode::kShared;
    bool granted = false;
    bool upgrade = false;  ///< X request of a txn that holds S.
    bool victim = false;   ///< Marked for abort (youngest / wound-wait);
                           ///< the sleeping owner wakes and returns
                           ///< Aborted instead of being granted.
  };
  struct LockQueue {
    std::list<Request> requests;      ///< Granted block, then FIFO waiters.
    /// _any: waits relock through ocb::Mutex's Lockable interface so the
    /// lockdep held-stack stays accurate across the sleep.
    std::condition_variable_any cv;
  };

  /// Grants every waiter the FIFO policy allows; notifies when any grant
  /// happened. Requires mu_.
  void TryGrantQueue(LockQueue* queue) OCB_REQUIRES(mu_);

  /// True when \p request conflicts with \p other (other txn, incompatible
  /// modes; an upgrader never conflicts with its own S).
  static bool Conflicts(const Request& request, const Request& other);

  /// DFS over the wait-for graph: does blocking \p waiter on \p oid close
  /// a cycle? When it does and \p cycle is non-null, the cycle's member
  /// transactions (including \p waiter) are appended to it. Requires mu_.
  bool WouldDeadlock(TxnId waiter, Oid oid, LockMode mode,
                     std::vector<TxnId>* cycle = nullptr) const
      OCB_REQUIRES(mu_);

  /// DFS worker of WouldDeadlock: can \p node reach \p waiter? \p path
  /// accumulates the nodes of the successful branch. Requires mu_.
  bool CycleFrom(TxnId node, TxnId waiter, Oid waiter_oid,
                 std::unordered_set<TxnId>* visited,
                 std::vector<TxnId>* path) const OCB_REQUIRES(mu_);

  /// Direct blockers of \p txn's waiting request on \p oid: every
  /// conflicting request of another txn ahead of it. Requires mu_.
  std::vector<TxnId> DirectBlockers(TxnId txn, Oid oid) const
      OCB_REQUIRES(mu_);

  /// Marks \p victim's *sleeping* waiting request as a deadlock victim
  /// and wakes it; its Acquire returns Aborted. Returns false when
  /// \p victim is not currently blocked in this manager. Requires mu_.
  bool MarkWaiterVictim(TxnId victim) OCB_REQUIRES(mu_);

  /// True when \p txn's current wait has been marked victim (such a
  /// wait no longer carries wait-for edges). Requires mu_.
  bool HasVictimWait(TxnId txn) const OCB_REQUIRES(mu_);

  /// Wound-wait: wounds every conflicting blocker of \p txn's request on
  /// \p oid that is *younger* (larger id). Sleeping younger blockers are
  /// woken as victims; running ones are flagged in wounded_ and die at
  /// their next Acquire. Requires mu_.
  void WoundYoungerBlockers(TxnId txn, Oid oid) OCB_REQUIRES(mu_);

  mutable Mutex mu_{lockdep::kLockManagerTableClass};
  std::unordered_map<Oid, std::unique_ptr<LockQueue>> table_
      OCB_GUARDED_BY(mu_);
  /// "lock.wait" registry histogram, resolved in the constructor — never
  /// under mu_: the registry's gauge callbacks take mu_ via stats(), so a
  /// lazy lookup from Acquire would invert the two mutex orders.
  obs::LatencyHistogram* lock_wait_histo_ = nullptr;
  /// Blocked txn → object.
  std::unordered_map<TxnId, Oid> waiting_on_ OCB_GUARDED_BY(mu_);
  /// Wound-wait: die at next Acquire.
  std::unordered_set<TxnId> wounded_ OCB_GUARDED_BY(mu_);
  LockManagerOptions options_ OCB_GUARDED_BY(mu_);
  LockManagerStats stats_ OCB_GUARDED_BY(mu_);
  GlobalWaitGraph* wait_graph_ = nullptr;  ///< Optional (sharded mode).
};

}  // namespace ocb

#endif  // OCB_CONCURRENCY_LOCK_MANAGER_H_
