/// \file lock_manager.h
/// \brief Object-granularity two-phase lock manager.
///
/// The lock manager implements strict 2PL for the Database's transactional
/// path: transactions acquire shared (S) or exclusive (X) locks per object
/// as they touch it and hold everything until commit or abort, when
/// ReleaseAll drains the lot at once.
///
/// Grant policy is FIFO per object: a request is granted when it is
/// compatible with every granted request of other transactions *and* no
/// earlier waiter is still queued ahead of it (no writer starvation). The
/// one queue-jump is the S→X upgrade, which is placed at the head of the
/// wait section so the upgrader drains concurrent readers as fast as
/// possible.
///
/// Deadlock handling: when a request must wait, the manager builds the
/// wait-for graph implied by the queues and runs a DFS from the requester;
/// if the requester can reach itself the wait would close a cycle and the
/// request is refused with Status::Aborted — the *newcomer* is the victim,
/// so each cycle aborts exactly one transaction (everyone already asleep
/// stays asleep). A wait-die-style timeout (LockManagerOptions::
/// wait_timeout_nanos) backstops anything the graph cannot see.
///
/// All blocking happens inside Acquire on a per-object condition variable;
/// the table itself is protected by one mutex (critical sections are a few
/// map operations — contention on it is far cheaper than the storage work
/// done while holding the locks it hands out).

#ifndef OCB_CONCURRENCY_LOCK_MANAGER_H_
#define OCB_CONCURRENCY_LOCK_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "concurrency/transaction_context.h"
#include "concurrency/wait_graph.h"
#include "storage/types.h"
#include "util/status.h"

namespace ocb {

/// Tunables of the lock manager.
struct LockManagerOptions {
  /// Upper bound on one blocking Acquire; expiring returns Aborted. The
  /// fallback for conflicts the wait-for graph cannot express.
  uint64_t wait_timeout_nanos = 2'000'000'000;  // 2 s
};

/// Aggregate counters (monotonic; read via stats()).
struct LockManagerStats {
  uint64_t acquisitions = 0;     ///< Granted requests (incl. re-grants).
  uint64_t waits = 0;            ///< Requests that had to block.
  uint64_t deadlocks = 0;        ///< Requests refused by cycle detection.
  uint64_t timeouts = 0;         ///< Requests refused by the timeout.
  uint64_t total_wait_nanos = 0; ///< Wall time spent blocked, all txns.
};

/// \brief Shared/exclusive object lock table with deadlock detection.
class LockManager {
 public:
  explicit LockManager(LockManagerOptions options = LockManagerOptions());
  ~LockManager();

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Acquires \p mode on \p oid for \p txn, blocking while conflicting
  /// transactions hold the object. Idempotent: re-requesting a held (or
  /// weaker) mode returns immediately. S→X upgrades are supported.
  ///
  /// \return OK when granted; Aborted when the wait would deadlock or
  ///         timed out — the caller must abort the transaction (its
  ///         already-granted locks stay held until ReleaseAll).
  Status Acquire(TransactionContext* txn, Oid oid, LockMode mode);

  /// Releases every lock \p txn holds and wakes eligible waiters.
  /// Called exactly once, at commit or abort (strict 2PL).
  void ReleaseAll(TransactionContext* txn);

  LockManagerStats stats() const;

  /// Number of objects with at least one granted or waiting request.
  size_t locked_object_count() const;

  /// Attaches a deployment-wide wait-for graph (ShardedDatabase wires all
  /// its shards' managers to one). When set, every blocking Acquire also
  /// registers its direct-blocker edges there and refuses the wait if
  /// they close a *cross-shard* cycle — the per-shard DFS cannot see
  /// those, and before the graph they burned the full wait timeout. Set
  /// while no Acquire is in flight (construction time); pass nullptr to
  /// detach.
  void SetWaitGraph(GlobalWaitGraph* graph) { wait_graph_ = graph; }

 private:
  struct Request {
    TxnId txn = kInvalidTxnId;
    LockMode mode = LockMode::kShared;
    bool granted = false;
    bool upgrade = false;  ///< X request of a txn that holds S.
  };
  struct LockQueue {
    std::list<Request> requests;      ///< Granted block, then FIFO waiters.
    std::condition_variable cv;
  };

  /// Grants every waiter the FIFO policy allows; notifies when any grant
  /// happened. Requires mu_.
  void TryGrantQueue(LockQueue* queue);

  /// True when \p request conflicts with \p other (other txn, incompatible
  /// modes; an upgrader never conflicts with its own S).
  static bool Conflicts(const Request& request, const Request& other);

  /// DFS over the wait-for graph: does blocking \p waiter on \p oid close
  /// a cycle? Requires mu_.
  bool WouldDeadlock(TxnId waiter, Oid oid, LockMode mode) const;

  /// Direct blockers of \p txn's waiting request on \p oid: every
  /// conflicting request of another txn ahead of it. Requires mu_.
  std::vector<TxnId> DirectBlockers(TxnId txn, Oid oid) const;

  mutable std::mutex mu_;
  std::unordered_map<Oid, std::unique_ptr<LockQueue>> table_;
  std::unordered_map<TxnId, Oid> waiting_on_;  ///< Blocked txn → object.
  LockManagerOptions options_;
  LockManagerStats stats_;
  GlobalWaitGraph* wait_graph_ = nullptr;  ///< Optional (sharded mode).
};

}  // namespace ocb

#endif  // OCB_CONCURRENCY_LOCK_MANAGER_H_
