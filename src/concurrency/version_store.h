/// \file version_store.h
/// \brief Multi-version store of committed object pre-images.
///
/// The version store gives snapshot readers a consistent past to read
/// while writers mutate the object store in place under strict 2PL. It
/// reuses the undo-log discipline the Database already follows: the first
/// time a transaction writes an object it records the object's committed
/// pre-image. The version store receives the same pre-image as a *pending*
/// version owned by the writing transaction:
///
///   * While the writer is in flight, the pending version shields readers
///     from the writer's dirty in-place writes (a pending version behaves
///     as if committed at time +infinity — visible to every snapshot).
///   * At commit the writer stamps all its pending versions with one fresh
///     commit timestamp drawn from the store's global counter; from then on
///     only snapshots older than that timestamp read the pre-image.
///   * At abort the pending versions are *sealed* (StampAborted): they get
///     a fresh timestamp exactly as on commit. The object store is rolled
///     back to the very same pre-image, so the sealed version states a
///     truth — "before T the state was P" — that also matches the current
///     state; it exists so a reader that raced the dirty in-place writes
///     can still recover the pre-image (see the validate step below). GC
///     reclaims it like any committed version.
///
/// Visibility rule for a snapshot pinned at S reading object o: the state
/// of o at S is the pre-image of the *earliest* version of o committed
/// after S (chains are kept in commit order, so this is the first chain
/// entry with commit_ts > S, pending counting as +infinity); if no such
/// version exists the current object-store state is already correct. A
/// version whose pre-image is "the object did not exist yet" (a creation)
/// makes the object invisible to older snapshots.
///
/// Garbage collection removes committed versions no live snapshot can
/// select: a version with commit_ts <= S_oldest (the oldest live ReadView,
/// or the current commit timestamp when none is open) is unreachable.
///
/// Thread safety and scaling: the chain table is *sharded* by oid, each
/// shard behind its own mutex, so GetVisible — the per-object-read hot
/// path of every MVCC transaction — never funnels CLIENTN readers through
/// one lock. One `commit_mu_` covers the transaction-grained operations:
/// it serializes timestamp allocation, the whole stamping loop of a
/// commit/abort, snapshot opening and the GC threshold computation
/// against each other. Holding it across the full stamping loop is what
/// keeps multi-object commits atomic for newborn snapshots: OpenSnapshot
/// cannot pin timestamp T until every version of the commit that produced
/// T is stamped, so no view ever sees half a transaction stamped and the
/// other half pending.
///
/// Since the per-page-latching refactor there is *no* facade latch making
/// a chain lookup and the object-store read it may fall through to
/// atomic. Soundness instead comes from a read-validate protocol in
/// Database::SnapshotRead built on two writer-side guarantees:
///
///   1. a writer publishes its pre-image version *before* its first
///      in-place write of the object, and
///   2. published versions are never silently dropped — commit stamps
///      them, abort seals them (StampAborted) — until GC proves no live
///      snapshot can need them.
///
/// A reader that got kUseCurrent, read the store, and re-checks the chain
/// therefore either confirms no conflicting write existed or finds the
/// version carrying the state it should have seen.

#ifndef OCB_CONCURRENCY_VERSION_STORE_H_
#define OCB_CONCURRENCY_VERSION_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "concurrency/transaction_context.h"
#include "storage/types.h"
#include "util/sync.h"

namespace ocb {

class ReadViewRegistry;

/// Commit timestamp; 0 means "initial load" (visible to every snapshot).
using CommitTs = uint64_t;

/// Aggregate counters (monotonic except live_*; read via stats()).
struct VersionStoreStats {
  uint64_t versions_published = 0;  ///< Pending versions installed.
  uint64_t versions_stamped = 0;    ///< Pending versions committed.
  uint64_t versions_discarded = 0;  ///< Pending versions sealed on abort.
  uint64_t versions_gced = 0;       ///< Committed versions reclaimed.
  uint64_t gc_passes = 0;           ///< GarbageCollect invocations.
  uint64_t snapshot_hits = 0;       ///< Reads served from a version chain.
  uint64_t snapshot_current = 0;    ///< Reads that fell through to current.
  uint64_t live_versions = 0;       ///< Versions currently held.
  uint64_t live_chains = 0;         ///< Objects with at least one version.
};

/// Outcome of a snapshot lookup.
enum class VersionLookup {
  kUseCurrent,  ///< No version newer than the snapshot: read the store.
  kVersion,     ///< The out-param bytes are the state at the snapshot.
  kInvisible    ///< The object did not exist at the snapshot.
};

/// \brief Per-object chains of committed pre-images keyed by commit time.
class VersionStore {
 public:
  /// Snapshot sentinel meaning "committed latest": GetVisible at this
  /// timestamp sees every *committed* write and no in-flight one (only a
  /// pending version, stamped +infinity, is newer — and its pre-image is
  /// exactly the last committed state). The OCC read protocol reads at
  /// this point. Strictly below kPendingTs by construction.
  static constexpr CommitTs kReadLatestTs = ~CommitTs{0} - 1;

  VersionStore();

  VersionStore(const VersionStore&) = delete;
  VersionStore& operator=(const VersionStore&) = delete;

  /// Installs a pending version of \p oid owned by \p txn holding the
  /// committed pre-image \p pre_image. Call exactly once per object per
  /// transaction, before the first in-place write (the caller's undo-log
  /// dedup provides the once-ness). The owner must hold the object's X
  /// lock, so at most one pending version per object exists at a time.
  void PublishPreImage(TxnId txn, Oid oid, std::vector<uint8_t> pre_image);

  /// Installs a pending *creation* version: \p oid did not exist before
  /// the owning transaction. Same contract as PublishPreImage.
  void PublishCreation(TxnId txn, Oid oid);

  /// Commits every pending version of \p txn under one freshly drawn
  /// commit timestamp, which is returned (and becomes the new latest()).
  /// Must be called before the transaction's X locks are released so the
  /// next writer of any of these objects appends behind the stamped
  /// versions.
  CommitTs StampCommitted(TxnId txn);

  /// Group-commit form of StampCommitted: commits every transaction of
  /// \p txns under ONE commit-mutex acquisition, each with its own fresh
  /// consecutive timestamp (identical per-chain outcome to calling
  /// StampCommitted once per transaction, amortizing the mutex and the
  /// snapshot-atomicity serialization across the batch). The same
  /// preconditions apply per member: all of a member's writes are
  /// applied and its X locks are still held. Returns the last (largest)
  /// timestamp drawn; 0 when \p txns is empty.
  CommitTs StampCommittedBatch(const std::vector<TxnId>& txns);

  /// StampCommitted with an *externally issued* timestamp instead of a
  /// locally drawn one — the sharded-commit entry point: the
  /// CrossShardCoordinator draws one global timestamp and stamps every
  /// participant shard's versions with it, which is what makes a
  /// cross-shard commit a single point on the global snapshot axis.
  ///
  /// Stamping invariants the caller must uphold (they are what keep each
  /// per-object chain ascending, the property GetVisible's earliest-
  /// newer-than-S scan relies on):
  ///
  ///   * \p ts comes from one monotonic source shared by *every* stamping
  ///     call on this store — never mix locally drawn and external
  ///     timestamps on the same store;
  ///   * \p ts was drawn *after* the owning transaction's writes were
  ///     applied (successive writers of an object serialize on its X
  ///     lock, so a later writer always stamps a later timestamp);
  ///   * as with StampCommitted, the call precedes lock release.
  ///
  /// latest() advances to max(latest(), ts).
  void StampCommittedAt(TxnId txn, CommitTs ts);

  /// Seals every pending version of \p txn under a fresh timestamp (abort
  /// path). The caller has rolled the object store back to the same
  /// pre-images, so current state and sealed history agree; keeping the
  /// version (instead of dropping it) is what lets a latch-free snapshot
  /// reader that raced the aborted writer's dirty writes re-check the
  /// chain and recover the correct state. Call *after* the rollback
  /// writes complete.
  void StampAborted(TxnId txn);

  /// StampAborted with an externally issued timestamp — the sharded abort
  /// path. Same invariants as StampCommittedAt.
  void StampAbortedAt(TxnId txn, CommitTs ts);

  /// Latest commit timestamp handed out; a ReadView pinned at this value
  /// sees every committed write and no in-flight one.
  CommitTs latest() const;

  /// Draws \p n fresh consecutive commit timestamps without stamping
  /// anything, returning the *last* (largest) one; 0 when \p n is 0. The
  /// WAL path uses this when MVCC stamping is off: committed transactions
  /// still need distinct log timestamps on the same monotonic axis that
  /// stamping would have used. Serializes on commit_mu_ like every other
  /// timestamp draw.
  CommitTs AllocateTimestamps(uint64_t n);

  /// Advances latest() to max(latest(), ts). Recovery calls this after
  /// replay so the timestamp axis resumes past every replayed commit;
  /// never call it while transactions are in flight.
  void AdvanceLatest(CommitTs ts);

  /// Pins a snapshot at the current commit timestamp and registers it in
  /// \p views, atomically with respect to StampCommitted/StampAborted and
  /// GarbageCollect (all serialize on commit_mu_) — a concurrent GC pass
  /// can never reclaim a version the newborn snapshot still needs, and a
  /// half-stamped commit is never pinned past. Returns the pinned
  /// timestamp; wrap it in a ReadView and Close it when done.
  CommitTs OpenSnapshot(ReadViewRegistry* views);

  /// Registers a view pinned at the *caller-chosen* timestamp \p ts
  /// (typically the ShardedDatabase's global snapshot point) instead of
  /// this store's own latest(). Serializes on commit_mu_ like
  /// OpenSnapshot, so the registration is atomic against stamping loops
  /// and the GC threshold computation; cross-*shard* half-commit
  /// exclusion is the coordinator's job (its commit mutex spans all
  /// shards' stamping loops). Returns \p ts.
  CommitTs OpenSnapshotAt(CommitTs ts, ReadViewRegistry* views);

  /// Resolves the state of \p oid for a snapshot pinned at \p snapshot_ts.
  /// On kVersion, \p out receives the encoded pre-image bytes. Takes only
  /// the oid's shard mutex — the reader hot path never crosses the
  /// commit-grained lock.
  ///
  /// \p revalidate marks the second lookup of the read-validate protocol
  /// (the caller already counted the read as a store fall-through): it
  /// keeps the hit/current statistics at one count per logical read,
  /// reclassifying the earlier fall-through as a chain hit when the
  /// re-check catches a racing writer.
  VersionLookup GetVisible(Oid oid, CommitTs snapshot_ts,
                           std::vector<uint8_t>* out,
                           bool revalidate = false) const;

  /// True when \p oid did not exist yet at \p snapshot_ts — its earliest
  /// version newer than the snapshot is a creation (pending counts as
  /// +infinity). Membership probe for extent filtering: unlike
  /// GetVisible it copies no bytes and touches no read statistics
  /// (membership checks are not logical reads).
  bool CreatedAfter(Oid oid, CommitTs snapshot_ts) const;

  /// Commit timestamp of the last committed write of \p oid, or 0 if the
  /// store never saw one commit. Maintained in StampOids (commit path
  /// only — aborts don't count) and **never garbage-collected**: GC
  /// reclaims pre-image chains, but the stamps OCC/SI validation
  /// compares against must outlive every open view. Takes only the oid's
  /// shard mutex. Because stamping precedes lock release, a stamp read
  /// while holding the object's X lock is final.
  CommitTs LastWriteTs(Oid oid) const;

  /// Reclaims every committed version no snapshot in \p views (nor any
  /// future one) can select; returns the number removed. The oldest-open
  /// computation happens under commit_mu_, pairing with OpenSnapshot.
  uint64_t GarbageCollect(const ReadViewRegistry& views);

  /// Lower-level form: reclaims committed versions with
  /// commit_ts <= \p oldest_snapshot. Deterministic-test hook.
  uint64_t GarbageCollect(CommitTs oldest_snapshot);

  VersionStoreStats stats() const;

 private:
  /// Sentinel commit_ts of a pending (uncommitted) version.
  static constexpr CommitTs kPendingTs = ~CommitTs{0};

  struct Version {
    CommitTs commit_ts = kPendingTs;
    TxnId owner = kInvalidTxnId;     ///< Valid while pending.
    bool creation = false;           ///< Object absent before commit_ts.
    std::vector<uint8_t> pre_image;  ///< Meaningful when !creation.
  };

  /// One chain-table shard; oid o lives in shard o % shards_.size().
  struct Shard {
    explicit Shard(size_t index) : mu(lockdep::kVersionChainClass, index) {}
    mutable Mutex mu;
    /// Chain per object, ascending commit_ts, pending (if any) at the
    /// tail.
    std::unordered_map<Oid, std::vector<Version>> chains OCB_GUARDED_BY(mu);
    /// Last committed-write stamp per object (see LastWriteTs). Never
    /// GC'd — chains come and go, these stamps persist.
    std::unordered_map<Oid, CommitTs> last_write_ts OCB_GUARDED_BY(mu);
  };

  Shard& shard_of(Oid oid) const { return *shards_[oid % shards_.size()]; }

  /// Installs one pending version (shared by both Publish forms).
  void PublishVersion(TxnId txn, Oid oid, Version version);

  /// Pops and returns \p txn's pending-oid set (leaf pending_mu_).
  std::vector<Oid> TakePending(TxnId txn);

  /// Stamps the pending tail version of every oid in \p oids with \p ts.
  /// Requires commit_mu_.
  void StampOids(TxnId txn, const std::vector<Oid>& oids, CommitTs ts,
                 bool aborted) OCB_REQUIRES(commit_mu_);

  /// Stamps every pending version of \p txn; \p aborted only picks the
  /// stats bucket. \p external_ts == 0 draws a fresh local timestamp,
  /// otherwise the given one is used and latest() advances to the max.
  /// Shared by all four commit/abort entry points.
  CommitTs StampAll(TxnId txn, bool aborted, CommitTs external_ts = 0);

  /// GC worker; requires commit_mu_ (walks the shards one by one).
  uint64_t CollectLocked(CommitTs oldest_snapshot) OCB_REQUIRES(commit_mu_);

  /// Serializes transaction-grained operations: timestamp allocation +
  /// full stamping loops, snapshot opening, GC threshold computation.
  /// Never taken by GetVisible.
  mutable Mutex commit_mu_{lockdep::kVersionStoreCommitClass};
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Objects with a pending version per transaction (stamp/discard sets);
  /// writer-only traffic.
  Mutex pending_mu_{lockdep::kVersionStorePendingClass};
  std::unordered_map<TxnId, std::vector<Oid>> pending_by_txn_
      OCB_GUARDED_BY(pending_mu_);
  CommitTs last_commit_ts_ OCB_GUARDED_BY(commit_mu_) = 0;

  // Stats: atomics so the reader hot path can count without a lock.
  mutable std::atomic<uint64_t> versions_published_{0};
  mutable std::atomic<uint64_t> versions_stamped_{0};
  mutable std::atomic<uint64_t> versions_discarded_{0};
  mutable std::atomic<uint64_t> versions_gced_{0};
  mutable std::atomic<uint64_t> gc_passes_{0};
  mutable std::atomic<uint64_t> snapshot_hits_{0};
  mutable std::atomic<uint64_t> snapshot_current_{0};
  mutable std::atomic<uint64_t> live_versions_{0};
  mutable std::atomic<uint64_t> live_chains_{0};
};

}  // namespace ocb

#endif  // OCB_CONCURRENCY_VERSION_STORE_H_
