#include "concurrency/version_store.h"

#include <algorithm>
#include <cassert>

#include "concurrency/read_view.h"

namespace ocb {

void VersionStore::PublishPreImage(TxnId txn, Oid oid,
                                   std::vector<uint8_t> pre_image) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& chain = chains_[oid];
  if (chain.empty()) ++stats_.live_chains;
  Version v;
  v.owner = txn;
  v.pre_image = std::move(pre_image);
  chain.push_back(std::move(v));
  pending_by_txn_[txn].push_back(oid);
  ++stats_.versions_published;
  ++stats_.live_versions;
}

void VersionStore::PublishCreation(TxnId txn, Oid oid) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& chain = chains_[oid];
  if (chain.empty()) ++stats_.live_chains;
  Version v;
  v.owner = txn;
  v.creation = true;
  chain.push_back(std::move(v));
  pending_by_txn_[txn].push_back(oid);
  ++stats_.versions_published;
  ++stats_.live_versions;
}

CommitTs VersionStore::StampCommitted(TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  const CommitTs ts = ++last_commit_ts_;
  auto it = pending_by_txn_.find(txn);
  if (it == pending_by_txn_.end()) return ts;
  for (Oid oid : it->second) {
    auto cit = chains_.find(oid);
    if (cit == chains_.end()) continue;
    // The pending version is the chain tail (X lock ⇒ at most one, and
    // nothing can append behind it until the lock is released).
    Version& tail = cit->second.back();
    assert(tail.commit_ts == kPendingTs && tail.owner == txn);
    tail.commit_ts = ts;
    tail.owner = kInvalidTxnId;
    ++stats_.versions_stamped;
  }
  pending_by_txn_.erase(it);
  return ts;
}

void VersionStore::DiscardPending(TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pending_by_txn_.find(txn);
  if (it == pending_by_txn_.end()) return;
  for (Oid oid : it->second) {
    auto cit = chains_.find(oid);
    if (cit == chains_.end()) continue;
    std::vector<Version>& chain = cit->second;
    if (!chain.empty() && chain.back().commit_ts == kPendingTs &&
        chain.back().owner == txn) {
      chain.pop_back();
      ++stats_.versions_discarded;
      --stats_.live_versions;
    }
    if (chain.empty()) {
      chains_.erase(cit);
      --stats_.live_chains;
    }
  }
  pending_by_txn_.erase(it);
}

CommitTs VersionStore::latest() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_commit_ts_;
}

CommitTs VersionStore::OpenSnapshot(ReadViewRegistry* views) {
  std::lock_guard<std::mutex> lock(mu_);
  views->OpenAt(last_commit_ts_);
  return last_commit_ts_;
}

VersionLookup VersionStore::GetVisible(Oid oid, CommitTs snapshot_ts,
                                       std::vector<uint8_t>* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = chains_.find(oid);
  if (it != chains_.end()) {
    // Chains are ascending in commit_ts with any pending version (treated
    // as +infinity) at the tail, so the first entry newer than the
    // snapshot is the earliest one — exactly the state at snapshot_ts.
    for (const Version& v : it->second) {
      if (v.commit_ts <= snapshot_ts) continue;
      if (v.creation) return VersionLookup::kInvisible;
      ++stats_.snapshot_hits;
      *out = v.pre_image;
      return VersionLookup::kVersion;
    }
  }
  ++stats_.snapshot_current;
  return VersionLookup::kUseCurrent;
}

uint64_t VersionStore::GarbageCollect(const ReadViewRegistry& views) {
  std::lock_guard<std::mutex> lock(mu_);
  return CollectLocked(views.OldestActive(last_commit_ts_));
}

uint64_t VersionStore::GarbageCollect(CommitTs oldest_snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  return CollectLocked(oldest_snapshot);
}

uint64_t VersionStore::CollectLocked(CommitTs oldest_snapshot) {
  ++stats_.gc_passes;
  uint64_t removed = 0;
  for (auto it = chains_.begin(); it != chains_.end();) {
    std::vector<Version>& chain = it->second;
    // A committed version at ts C is selected only by snapshots S < C;
    // with S >= oldest_snapshot for every live ReadView, C <= oldest is
    // unreachable. Committed versions are a chain prefix (pending at the
    // tail), so this removes a prefix and order is preserved.
    auto keep = std::find_if(chain.begin(), chain.end(),
                             [oldest_snapshot](const Version& v) {
                               return v.commit_ts > oldest_snapshot;
                             });
    removed += static_cast<uint64_t>(keep - chain.begin());
    chain.erase(chain.begin(), keep);
    if (chain.empty()) {
      it = chains_.erase(it);
      --stats_.live_chains;
    } else {
      ++it;
    }
  }
  stats_.versions_gced += removed;
  stats_.live_versions -= removed;
  return removed;
}

VersionStoreStats VersionStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace ocb
