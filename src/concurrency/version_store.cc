#include "concurrency/version_store.h"

#include <algorithm>
#include <cassert>

#include "concurrency/read_view.h"
#include "obs/trace.h"

namespace ocb {

namespace {
// Shard count of the chain table. Follows the storage layer's striping
// convention: OCB_LATCH_STRIPES, when defined, caps it so the degenerate
// single-stripe CI build also proves the version store correct with one
// shard.
#ifdef OCB_LATCH_STRIPES
constexpr size_t kConfiguredShards =
    OCB_LATCH_STRIPES < 16 ? OCB_LATCH_STRIPES : 16;
constexpr size_t kChainShards = kConfiguredShards < 1 ? 1 : kConfiguredShards;
#else
constexpr size_t kChainShards = 16;
#endif
}  // namespace

VersionStore::VersionStore() {
  shards_.reserve(kChainShards);
  for (size_t i = 0; i < kChainShards; ++i) {
    shards_.push_back(std::make_unique<Shard>(i));
  }
}

void VersionStore::PublishVersion(TxnId txn, Oid oid, Version version) {
  {
    Shard& shard = shard_of(oid);
    MutexLock lock(shard.mu);
    auto& chain = shard.chains[oid];
    if (chain.empty()) {
      live_chains_.fetch_add(1, std::memory_order_relaxed);
    }
    chain.push_back(std::move(version));
  }
  {
    MutexLock lock(pending_mu_);
    pending_by_txn_[txn].push_back(oid);
  }
  versions_published_.fetch_add(1, std::memory_order_relaxed);
  live_versions_.fetch_add(1, std::memory_order_relaxed);
}

void VersionStore::PublishPreImage(TxnId txn, Oid oid,
                                   std::vector<uint8_t> pre_image) {
  Version v;
  v.owner = txn;
  v.pre_image = std::move(pre_image);
  PublishVersion(txn, oid, std::move(v));
}

void VersionStore::PublishCreation(TxnId txn, Oid oid) {
  Version v;
  v.owner = txn;
  v.creation = true;
  PublishVersion(txn, oid, std::move(v));
}

std::vector<Oid> VersionStore::TakePending(TxnId txn) {
  MutexLock lock(pending_mu_);
  std::vector<Oid> oids;
  auto it = pending_by_txn_.find(txn);
  if (it != pending_by_txn_.end()) {
    oids = std::move(it->second);
    pending_by_txn_.erase(it);
  }
  return oids;
}

void VersionStore::StampOids(TxnId txn, const std::vector<Oid>& oids,
                             CommitTs ts, bool aborted) {
  for (Oid oid : oids) {
    Shard& shard = shard_of(oid);
    MutexLock shard_lock(shard.mu);
    auto cit = shard.chains.find(oid);
    if (cit == shard.chains.end()) continue;
    // The pending version is the chain tail (X lock ⇒ at most one, and
    // nothing can append behind it until the lock is released).
    Version& tail = cit->second.back();
    assert(tail.commit_ts == kPendingTs && tail.owner == txn);
    (void)txn;
    tail.commit_ts = ts;
    tail.owner = kInvalidTxnId;
    if (!aborted) {
      // Committed-write stamp for OCC/SI validation (see LastWriteTs).
      // Sealed aborts don't count: the object's committed state did not
      // change, so readers that observed the old stamp stay valid.
      shard.last_write_ts[oid] = ts;
    }
    auto& counter = aborted ? versions_discarded_ : versions_stamped_;
    counter.fetch_add(1, std::memory_order_relaxed);
  }
}

CommitTs VersionStore::StampAll(TxnId txn, bool aborted,
                                CommitTs external_ts) {
  const std::vector<Oid> oids = TakePending(txn);
  // commit_mu_ is held across the whole stamping loop: OpenSnapshot also
  // takes it, so a newborn view can never pin a timestamp whose commit is
  // only half stamped.
  MutexLock lock(commit_mu_);
  const CommitTs ts = external_ts == 0 ? ++last_commit_ts_ : external_ts;
  if (external_ts != 0 && external_ts > last_commit_ts_) {
    last_commit_ts_ = external_ts;
  }
  StampOids(txn, oids, ts, aborted);
  return ts;
}

CommitTs VersionStore::StampCommittedBatch(const std::vector<TxnId>& txns) {
  if (txns.empty()) return 0;
  std::vector<std::vector<Oid>> oid_sets;
  oid_sets.reserve(txns.size());
  for (TxnId txn : txns) oid_sets.push_back(TakePending(txn));
  // One commit-mutex acquisition covers every member's timestamp draw
  // and stamping loop — the serialized work group commit amortizes. Each
  // member still gets its own timestamp, so per-chain history is
  // identical to per-transaction commits.
  MutexLock lock(commit_mu_);
  CommitTs last = 0;
  for (size_t i = 0; i < txns.size(); ++i) {
    last = ++last_commit_ts_;
    StampOids(txns[i], oid_sets[i], last, /*aborted=*/false);
  }
  return last;
}

CommitTs VersionStore::StampCommitted(TxnId txn) {
  return StampAll(txn, /*aborted=*/false);
}

void VersionStore::StampAborted(TxnId txn) {
  StampAll(txn, /*aborted=*/true);
}

void VersionStore::StampCommittedAt(TxnId txn, CommitTs ts) {
  StampAll(txn, /*aborted=*/false, ts);
}

void VersionStore::StampAbortedAt(TxnId txn, CommitTs ts) {
  StampAll(txn, /*aborted=*/true, ts);
}

CommitTs VersionStore::latest() const {
  MutexLock lock(commit_mu_);
  return last_commit_ts_;
}

CommitTs VersionStore::AllocateTimestamps(uint64_t n) {
  if (n == 0) return 0;
  MutexLock lock(commit_mu_);
  last_commit_ts_ += n;
  return last_commit_ts_;
}

void VersionStore::AdvanceLatest(CommitTs ts) {
  MutexLock lock(commit_mu_);
  if (ts > last_commit_ts_) last_commit_ts_ = ts;
}

CommitTs VersionStore::OpenSnapshot(ReadViewRegistry* views) {
  MutexLock lock(commit_mu_);
  views->OpenAt(last_commit_ts_);
  return last_commit_ts_;
}

CommitTs VersionStore::OpenSnapshotAt(CommitTs ts, ReadViewRegistry* views) {
  MutexLock lock(commit_mu_);
  views->OpenAt(ts);
  return ts;
}

VersionLookup VersionStore::GetVisible(Oid oid, CommitTs snapshot_ts,
                                       std::vector<uint8_t>* out,
                                       bool revalidate) const {
  Shard& shard = shard_of(oid);
  MutexLock lock(shard.mu);
  auto it = shard.chains.find(oid);
  if (it != shard.chains.end()) {
    // Chains are ascending in commit_ts with any pending version (treated
    // as +infinity) at the tail, so the first entry newer than the
    // snapshot is the earliest one — exactly the state at snapshot_ts.
    for (const Version& v : it->second) {
      if (v.commit_ts <= snapshot_ts) continue;
      if (revalidate) {
        // The caller's first lookup counted this read as a fall-through;
        // the re-check caught a racing writer, so it was a chain hit.
        snapshot_current_.fetch_sub(1, std::memory_order_relaxed);
      }
      if (v.creation) return VersionLookup::kInvisible;
      snapshot_hits_.fetch_add(1, std::memory_order_relaxed);
      *out = v.pre_image;
      return VersionLookup::kVersion;
    }
  }
  if (!revalidate) {
    snapshot_current_.fetch_add(1, std::memory_order_relaxed);
  }
  return VersionLookup::kUseCurrent;
}

CommitTs VersionStore::LastWriteTs(Oid oid) const {
  Shard& shard = shard_of(oid);
  MutexLock lock(shard.mu);
  auto it = shard.last_write_ts.find(oid);
  return it == shard.last_write_ts.end() ? 0 : it->second;
}

bool VersionStore::CreatedAfter(Oid oid, CommitTs snapshot_ts) const {
  Shard& shard = shard_of(oid);
  MutexLock lock(shard.mu);
  auto it = shard.chains.find(oid);
  if (it == shard.chains.end()) return false;
  for (const Version& v : it->second) {
    if (v.commit_ts <= snapshot_ts) continue;
    return v.creation;
  }
  return false;
}

uint64_t VersionStore::GarbageCollect(const ReadViewRegistry& views) {
  MutexLock lock(commit_mu_);
  return CollectLocked(views.OldestActive(last_commit_ts_));
}

uint64_t VersionStore::GarbageCollect(CommitTs oldest_snapshot) {
  MutexLock lock(commit_mu_);
  return CollectLocked(oldest_snapshot);
}

uint64_t VersionStore::CollectLocked(CommitTs oldest_snapshot) {
  gc_passes_.fetch_add(1, std::memory_order_relaxed);
  obs::TraceSpan gc_span("gc.pass", "oldest_snapshot", oldest_snapshot);
  uint64_t removed = 0;
  for (const auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    MutexLock shard_lock(shard.mu);
    for (auto it = shard.chains.begin(); it != shard.chains.end();) {
      std::vector<Version>& chain = it->second;
      // A committed version at ts C is selected only by snapshots S < C;
      // with S >= oldest_snapshot for every live ReadView, C <= oldest is
      // unreachable. Committed versions are a chain prefix (pending at the
      // tail), so this removes a prefix and order is preserved.
      auto keep = std::find_if(chain.begin(), chain.end(),
                               [oldest_snapshot](const Version& v) {
                                 return v.commit_ts > oldest_snapshot;
                               });
      removed += static_cast<uint64_t>(keep - chain.begin());
      chain.erase(chain.begin(), keep);
      if (chain.empty()) {
        it = shard.chains.erase(it);
        live_chains_.fetch_sub(1, std::memory_order_relaxed);
      } else {
        ++it;
      }
    }
  }
  versions_gced_.fetch_add(removed, std::memory_order_relaxed);
  live_versions_.fetch_sub(removed, std::memory_order_relaxed);
  gc_span.SetArg2("reclaimed", removed);
  return removed;
}

VersionStoreStats VersionStore::stats() const {
  VersionStoreStats out;
  out.versions_published =
      versions_published_.load(std::memory_order_relaxed);
  out.versions_stamped = versions_stamped_.load(std::memory_order_relaxed);
  out.versions_discarded =
      versions_discarded_.load(std::memory_order_relaxed);
  out.versions_gced = versions_gced_.load(std::memory_order_relaxed);
  out.gc_passes = gc_passes_.load(std::memory_order_relaxed);
  out.snapshot_hits = snapshot_hits_.load(std::memory_order_relaxed);
  out.snapshot_current =
      snapshot_current_.load(std::memory_order_relaxed);
  out.live_versions = live_versions_.load(std::memory_order_relaxed);
  out.live_chains = live_chains_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace ocb
