/// \file commit_pipeline.h
/// \brief Leader–follower group-commit pipeline.
///
/// Behind Transaction::Commit every committing transaction pays a fixed
/// per-transaction toll: a commit-mutex acquisition in the version store
/// (timestamp allocation + version stamping) — and, on a sharded engine,
/// the coordinator's commit mutex and in-flight registry. At high CLIENTN
/// those serialized sections dominate the commit path. The pipeline
/// amortizes them the way write-ahead-logging engines amortize the log
/// fsync:
///
///   * A committer enqueues its request. If no leader is active it
///     becomes the leader immediately (an uncontended commit forms a
///     batch of one — group commit adds no idle latency).
///   * While the leader processes its batch, later committers enqueue
///     and sleep. When the leader finishes it wakes everyone; one of the
///     still-pending committers becomes the next leader and takes the
///     whole accumulated queue (up to max_batch) as one batch.
///   * The engine-supplied batch function performs the per-batch work
///     once for the whole group: one commit-mutex acquisition stamps
///     every member's versions with consecutive timestamps, one observer
///     pass fires the end callbacks (see Database::CommitBatch and
///     CrossShardCoordinator::CommitBatch).
///
/// The pipeline itself knows nothing about transactions: requests carry
/// an opaque handle and receive a Status. Correctness (per-txn stamping
/// order, stamp-before-release) is the batch function's contract.
///
/// max_batch = 1 degrades to per-transaction commits through the same
/// code path — the baseline the group-commit bench section compares
/// against.

#ifndef OCB_CONCURRENCY_COMMIT_PIPELINE_H_
#define OCB_CONCURRENCY_COMMIT_PIPELINE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "util/status.h"
#include "util/sync.h"

namespace ocb {

/// Group-commit tunables.
struct GroupCommitOptions {
  /// Largest batch one leader may take. 1 = per-transaction commits
  /// (group commit effectively off); larger values let a leader absorb
  /// every committer that arrived while its predecessor worked.
  uint32_t max_batch = 32;

  /// Optional accumulation window: a fresh leader waits up to this long
  /// for followers before taking its batch (it leaves early the moment
  /// max_batch committers are queued). 0 — the default — means a leader
  /// never waits: batches only form from committers that arrived while
  /// the *previous* leader worked, so an uncontended commit pays zero
  /// added latency. A non-zero window trades commit latency for larger
  /// batches — the binlog_group_commit_sync_delay idea — and is what
  /// lets single-core hosts (where a leader finishes before the OS
  /// schedules the next committer) form batches at all.
  uint64_t window_nanos = 0;
};

/// Aggregate pipeline counters (monotonic; read via stats()).
struct GroupCommitStats {
  uint64_t commits = 0;         ///< Requests processed.
  uint64_t batches = 0;         ///< Leader rounds (>= 1 request each).
  uint64_t grouped_commits = 0; ///< Requests that shared a batch (> 1).
  uint64_t max_batch_formed = 0;///< Largest batch observed.
  uint64_t batch_nanos = 0;     ///< Wall time inside the batch function —
                                ///< the serialized commit-path work the
                                ///< grouping amortizes.

  /// Mean commits per leader round.
  double mean_batch() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(commits) /
                              static_cast<double>(batches);
  }
};

/// \brief Serializes commits into batches processed by one leader at a
/// time.
class CommitPipeline {
 public:
  /// One enqueued commit. The batch function reads \c handle and must
  /// set \c status before returning.
  struct Request {
    void* handle = nullptr;
    Status status;
  };

  /// Processes one batch. Called by exactly one thread at a time (the
  /// current leader), outside the pipeline mutex.
  using BatchFn = std::function<void(const std::vector<Request*>&)>;

  explicit CommitPipeline(BatchFn fn) : fn_(std::move(fn)) {}

  CommitPipeline(const CommitPipeline&) = delete;
  CommitPipeline& operator=(const CommitPipeline&) = delete;

  /// Current / new batch-size cap. Safe to change between runs (takes
  /// the pipeline mutex); in-flight batches keep the cap they started
  /// with.
  uint32_t max_batch() const {
    MutexLock lock(mu_);
    return options_.max_batch;
  }
  void set_max_batch(uint32_t n) {
    MutexLock lock(mu_);
    options_.max_batch = n < 1 ? 1 : n;
  }

  /// Accumulation window (see GroupCommitOptions::window_nanos).
  uint64_t window_nanos() const {
    MutexLock lock(mu_);
    return options_.window_nanos;
  }
  void set_window_nanos(uint64_t nanos) {
    MutexLock lock(mu_);
    options_.window_nanos = nanos;
  }

  /// Enqueues \p handle and blocks until a leader (possibly this thread)
  /// has processed it; returns the status the batch function assigned.
  ///
  /// TSA-exempt: the cv wait and the unlock-around-fn_ window unlock and
  /// relock mu_ mid-function, a flow the intraprocedural analysis cannot
  /// follow. Lockdep still sees every transition through Mutex::lock/
  /// unlock.
  Status Submit(void* handle) OCB_NO_THREAD_SAFETY_ANALYSIS {
    Request req;
    req.handle = handle;
    std::unique_lock<Mutex> lock(mu_);
    queue_.push_back(&req);
    cv_.notify_all();  // A window-waiting leader counts arrivals.
    // A processed request has its handle nulled by the leader. A thread
    // may have to lead more than one round before its own request is
    // taken: with a small max_batch the queue front can be a full batch
    // of *earlier* arrivals.
    while (req.handle != nullptr) {
      if (leader_active_) {
        cv_.wait(lock);
        continue;
      }
      leader_active_ = true;
      const uint32_t cap = options_.max_batch;
      if (options_.window_nanos > 0 && queue_.size() < cap) {
        // Accumulation window: give followers a beat to pile in. Idle
        // wait — deliberately NOT counted as commit-path work.
        cv_.wait_for(lock, std::chrono::nanoseconds(options_.window_nanos),
                     [&]() { return queue_.size() >= cap; });
      }
      std::vector<Request*> batch;
      while (!queue_.empty() && batch.size() < cap) {
        batch.push_back(queue_.front());
        queue_.pop_front();
      }
      lock.unlock();

      const auto start = std::chrono::steady_clock::now();
      fn_(batch);
      const uint64_t nanos = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start)
              .count());

      lock.lock();
      stats_.commits += batch.size();
      ++stats_.batches;
      if (batch.size() > 1) stats_.grouped_commits += batch.size();
      if (batch.size() > stats_.max_batch_formed) {
        stats_.max_batch_formed = batch.size();
      }
      stats_.batch_nanos += nanos;
      for (Request* r : batch) r->handle = nullptr;  // Mark processed.
      leader_active_ = false;
      cv_.notify_all();
    }
    return req.status;
  }

  GroupCommitStats stats() const {
    MutexLock lock(mu_);
    return stats_;
  }

 private:
  BatchFn fn_;
  mutable Mutex mu_{lockdep::kCommitPipelineClass};
  std::condition_variable_any cv_;
  std::deque<Request*> queue_ OCB_GUARDED_BY(mu_);
  bool leader_active_ OCB_GUARDED_BY(mu_) = false;
  GroupCommitOptions options_ OCB_GUARDED_BY(mu_);
  GroupCommitStats stats_ OCB_GUARDED_BY(mu_);
};

}  // namespace ocb

#endif  // OCB_CONCURRENCY_COMMIT_PIPELINE_H_
