#include "concurrency/lock_manager.h"

#include <algorithm>
#include <chrono>
#include <unordered_set>
#include <vector>

#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "util/format.h"

namespace ocb {

namespace {

bool ModesCompatible(LockMode a, LockMode b) {
  return a == LockMode::kShared && b == LockMode::kShared;
}

uint64_t ElapsedNanos(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

}  // namespace

LockManager::LockManager(LockManagerOptions options) : options_(options) {
#ifndef OCB_OBS_DISABLED
  // Resolved here, where no lock is held. GetHistogram takes the registry
  // mutex and the registry's gauge callbacks take mu_ (via stats()), so a
  // lazy lookup from inside Acquire — which holds mu_ — would acquire the
  // two mutexes in the opposite order and risk deadlock.
  lock_wait_histo_ =
      obs::MetricsRegistry::Global().GetHistogram("lock.wait");
#endif
}

LockManager::~LockManager() = default;

bool LockManager::Conflicts(const Request& request, const Request& other) {
  if (request.txn == other.txn) return false;
  return !ModesCompatible(request.mode, other.mode);
}

void LockManager::TryGrantQueue(LockQueue* queue) {
  bool granted_any = false;
  for (auto it = queue->requests.begin(); it != queue->requests.end(); ++it) {
    if (it->granted) continue;
    // A victim-marked waiter is about to wake and erase itself; never
    // grant it, and let later waiters be considered past it.
    if (it->victim) continue;
    bool grantable = true;
    if (it->upgrade) {
      // An upgrade is grantable only when its own S is the sole granted
      // request left on the object.
      for (const Request& r : queue->requests) {
        if (r.granted && r.txn != it->txn) {
          grantable = false;
          break;
        }
      }
    } else {
      for (const Request& r : queue->requests) {
        if (r.granted && Conflicts(*it, r)) {
          grantable = false;
          break;
        }
      }
    }
    if (!grantable) break;  // FIFO: later waiters queue behind.
    if (it->upgrade) {
      // Fold the txn's granted S into this request: it becomes the only
      // granted entry for the txn.
      for (auto g = queue->requests.begin(); g != queue->requests.end();) {
        if (g->granted && g->txn == it->txn) {
          g = queue->requests.erase(g);
        } else {
          ++g;
        }
      }
    }
    it->granted = true;
    granted_any = true;
  }
  if (granted_any) queue->cv.notify_all();
}

std::vector<TxnId> LockManager::DirectBlockers(TxnId txn, Oid oid) const {
  // Direct blockers of a txn's first non-granted request on an object:
  // every conflicting request of another txn positioned ahead of it.
  std::vector<TxnId> out;
  auto qit = table_.find(oid);
  if (qit == table_.end()) return out;
  const LockQueue& queue = *qit->second;
  // Find the txn's waiting request to know its mode and position.
  const Request* own = nullptr;
  for (const Request& r : queue.requests) {
    if (r.txn == txn && !r.granted) {
      own = &r;
      break;
    }
  }
  if (own == nullptr) return out;
  for (const Request& r : queue.requests) {
    if (&r == own) break;
    if (Conflicts(*own, r)) out.push_back(r.txn);
  }
  return out;
}

bool LockManager::HasVictimWait(TxnId txn) const {
  auto wit = waiting_on_.find(txn);
  if (wit == waiting_on_.end()) return false;
  auto qit = table_.find(wit->second);
  if (qit == table_.end()) return false;
  for (const Request& r : qit->second->requests) {
    if (r.txn == txn && !r.granted) return r.victim;
  }
  return false;
}

bool LockManager::CycleFrom(TxnId node, TxnId waiter, Oid waiter_oid,
                            std::unordered_set<TxnId>* visited,
                            std::vector<TxnId>* path) const {
  Oid oid = waiter_oid;
  if (node != waiter) {
    auto wit = waiting_on_.find(node);
    if (wit == waiting_on_.end()) return false;  // Running, not blocked.
    // A victim-marked waiter is as good as awake-and-aborting: its wait
    // no longer sustains a cycle (and treating it as edge-less is what
    // lets the kYoungest loop below re-search for *further* cycles
    // without re-finding the one it just broke).
    if (HasVictimWait(node)) return false;
    oid = wit->second;
  }
  for (TxnId blocker : DirectBlockers(node, oid)) {
    if (blocker == waiter) return true;  // Cycle closes back at the waiter.
    if (!visited->insert(blocker).second) continue;
    path->push_back(blocker);
    if (CycleFrom(blocker, waiter, waiter_oid, visited, path)) return true;
    path->pop_back();
  }
  return false;
}

bool LockManager::WouldDeadlock(TxnId waiter, Oid oid, LockMode mode,
                                std::vector<TxnId>* cycle) const {
  (void)mode;  // The waiter's own queued request carries the mode.
  std::unordered_set<TxnId> visited;
  std::vector<TxnId> path;
  if (!CycleFrom(waiter, waiter, oid, &visited, &path)) return false;
  if (cycle != nullptr) {
    cycle->push_back(waiter);
    cycle->insert(cycle->end(), path.begin(), path.end());
  }
  return true;
}

bool LockManager::MarkWaiterVictim(TxnId victim) {
  auto wit = waiting_on_.find(victim);
  if (wit == waiting_on_.end()) return false;
  auto qit = table_.find(wit->second);
  if (qit == table_.end()) return false;
  LockQueue* queue = qit->second.get();
  for (Request& r : queue->requests) {
    if (r.txn == victim && !r.granted) {
      r.victim = true;
      queue->cv.notify_all();
      ++stats_.victim_wakeups;
      return true;
    }
  }
  return false;
}

void LockManager::WoundYoungerBlockers(TxnId txn, Oid oid) {
  for (TxnId blocker : DirectBlockers(txn, oid)) {
    if (blocker <= txn) continue;  // Older (or self): wait behind it.
    ++stats_.wounds;
    if (!MarkWaiterVictim(blocker)) {
      // Running, not blocked here: it dies at its next Acquire.
      wounded_.insert(blocker);
    }
  }
}

// TSA-exempt: the cv wait_until unlocks and relocks mu_ mid-function
// through the unique_lock, a flow the intraprocedural analysis cannot
// follow; lockdep still sees every transition.
Status LockManager::Acquire(TransactionContext* txn, Oid oid,
                            LockMode mode) OCB_NO_THREAD_SAFETY_ANALYSIS {
  std::unique_lock<Mutex> lock(mu_);
  if (options_.victim_policy == DeadlockPolicy::kWoundWait &&
      wounded_.erase(txn->id()) > 0) {
    // An older transaction wounded us while we were running; honor the
    // wound at this, our next lock request.
    return Status::Aborted(
        Format("txn %llu wounded by an older transaction (wound-wait)",
               (unsigned long long)txn->id()));
  }
  if (txn->HoldsLock(oid, mode)) {
    ++stats_.acquisitions;
    return Status::OK();
  }
  auto& queue_ptr = table_[oid];
  if (queue_ptr == nullptr) queue_ptr = std::make_unique<LockQueue>();
  LockQueue* queue = queue_ptr.get();

  Request request;
  request.txn = txn->id();
  request.mode = mode;
  request.upgrade = mode == LockMode::kExclusive &&
                    txn->HoldsLock(oid, LockMode::kShared);

  std::list<Request>::iterator mine;
  if (request.upgrade) {
    // Jump the queue: upgrades sit at the head of the wait section so the
    // upgrader only drains already-granted readers.
    auto pos = std::find_if(queue->requests.begin(), queue->requests.end(),
                            [](const Request& r) { return !r.granted; });
    mine = queue->requests.insert(pos, request);
  } else {
    mine = queue->requests.insert(queue->requests.end(), request);
  }
  TryGrantQueue(queue);

  if (!mine->granted) {
    ++stats_.waits;
    // Local deadlock handling per the victim policy (exact within this
    // manager), then — in a sharded deployment — register the
    // direct-blocker edges in the global graph, which refuses waits that
    // close a cycle *across* managers (newcomer-victim policy there,
    // regardless of the local one).
    bool deadlock = false;
    if (options_.victim_policy == DeadlockPolicy::kWoundWait) {
      // No cycle search: wound younger conflicting blockers and wait.
      WoundYoungerBlockers(txn->id(), oid);
    } else {
      // Our wait may close SEVERAL cycles (one per independent blocker
      // chain); under kYoungest each is broken in turn — a marked
      // victim stops carrying wait-for edges, so the re-search finds
      // the next cycle, not the same one.
      std::vector<TxnId> cycle;
      while (WouldDeadlock(txn->id(), oid, mode, &cycle)) {
        if (options_.victim_policy == DeadlockPolicy::kYoungest) {
          const TxnId youngest =
              *std::max_element(cycle.begin(), cycle.end());
          if (youngest != txn->id() && MarkWaiterVictim(youngest)) {
            cycle.clear();
            continue;  // That cycle dies with its youngest member.
          }
        }
        deadlock = true;  // kCycleCloser, or we are the youngest.
        break;
      }
    }
    bool registered = false;
    if (!deadlock && wait_graph_ != nullptr) {
      registered = wait_graph_->TryRegisterWaits(
          txn->id(), DirectBlockers(txn->id(), oid));
      deadlock = !registered;
    }
    if (deadlock) {
      queue->requests.erase(mine);
      TryGrantQueue(queue);
      ++stats_.deadlocks;
      return Status::Aborted(
          Format("deadlock: txn %llu would wait cyclically for oid %llu",
                 (unsigned long long)txn->id(), (unsigned long long)oid));
    }
    waiting_on_[txn->id()] = oid;
    const auto wait_start = std::chrono::steady_clock::now();
    const auto deadline =
        wait_start + std::chrono::nanoseconds(options_.wait_timeout_nanos);
    bool woke = queue->cv.wait_until(lock, deadline, [&mine]() {
      return mine->granted || mine->victim;
    });
    const uint64_t waited = ElapsedNanos(wait_start);
    txn->lock_wait_nanos_ += waited;
    stats_.total_wait_nanos += waited;
#ifndef OCB_OBS_DISABLED
    // Second sink for the SAME measurement (registry histogram + trace
    // span) — txn->lock_wait_nanos_ stays the source that feeds
    // TransactionResult, so the two views cannot drift. The cv.wait
    // released mu_ for the duration; recording here holds it again, but
    // these are relaxed stores only.
    {
      lock_wait_histo_->Record(waited);
      auto& rec = obs::TraceRecorder::Global();
      if (rec.enabled()) {
        const uint64_t end_ns = rec.NowNanos();
        rec.RecordComplete("lock.wait",
                           end_ns >= waited ? end_ns - waited : 0, waited,
                           "txn", txn->id(), "oid", oid);
      }
    }
#endif
    waiting_on_.erase(txn->id());
    // The wait ended (either way): its snapshot of edges is obsolete.
    if (registered) wait_graph_->Clear(txn->id());
    if (mine->victim && !mine->granted) {
      // Chosen as the victim (youngest-in-cycle or wound-wait) while
      // asleep: abort instead of being granted.
      queue->requests.erase(mine);
      TryGrantQueue(queue);
      ++stats_.deadlocks;
      return Status::Aborted(
          Format("deadlock: txn %llu chosen as %s victim on oid %llu",
                 (unsigned long long)txn->id(),
                 DeadlockPolicyToString(options_.victim_policy),
                 (unsigned long long)oid));
    }
    if (!woke) {
      queue->requests.erase(mine);
      TryGrantQueue(queue);
      ++stats_.timeouts;
      return Status::Aborted(
          Format("lock wait timeout: txn %llu on oid %llu",
                 (unsigned long long)txn->id(), (unsigned long long)oid));
    }
  }
  txn->held_locks_[oid] = mode;
  ++stats_.acquisitions;
  return Status::OK();
}

void LockManager::ReleaseAll(TransactionContext* txn) {
  MutexLock lock(mu_);
  waiting_on_.erase(txn->id());
  wounded_.erase(txn->id());  // A finished txn outran its wound.
  for (const auto& [oid, mode] : txn->held_locks_) {
    (void)mode;
    auto qit = table_.find(oid);
    if (qit == table_.end()) continue;
    LockQueue* queue = qit->second.get();
    for (auto it = queue->requests.begin(); it != queue->requests.end();) {
      if (it->txn == txn->id()) {
        it = queue->requests.erase(it);
      } else {
        ++it;
      }
    }
    if (queue->requests.empty()) {
      table_.erase(qit);
    } else {
      TryGrantQueue(queue);
    }
  }
  txn->held_locks_.clear();
}

LockManagerStats LockManager::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

size_t LockManager::locked_object_count() const {
  MutexLock lock(mu_);
  return table_.size();
}

bool LockManager::IsXLockedByOther(Oid oid, TxnId self) const {
  MutexLock lock(mu_);
  auto it = table_.find(oid);
  if (it == table_.end()) return false;
  for (const Request& r : it->second->requests) {
    if (r.granted && r.mode == LockMode::kExclusive && r.txn != self) {
      return true;
    }
  }
  return false;
}

DeadlockPolicy LockManager::victim_policy() const {
  MutexLock lock(mu_);
  return options_.victim_policy;
}

void LockManager::SetVictimPolicy(DeadlockPolicy policy) {
  MutexLock lock(mu_);
  options_.victim_policy = policy;
  if (policy != DeadlockPolicy::kWoundWait) wounded_.clear();
}

}  // namespace ocb
