#include "concurrency/lock_manager.h"

#include <algorithm>
#include <chrono>
#include <unordered_set>
#include <vector>

#include "util/format.h"

namespace ocb {

namespace {

bool ModesCompatible(LockMode a, LockMode b) {
  return a == LockMode::kShared && b == LockMode::kShared;
}

uint64_t ElapsedNanos(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

}  // namespace

LockManager::LockManager(LockManagerOptions options) : options_(options) {}

LockManager::~LockManager() = default;

bool LockManager::Conflicts(const Request& request, const Request& other) {
  if (request.txn == other.txn) return false;
  return !ModesCompatible(request.mode, other.mode);
}

void LockManager::TryGrantQueue(LockQueue* queue) {
  bool granted_any = false;
  for (auto it = queue->requests.begin(); it != queue->requests.end(); ++it) {
    if (it->granted) continue;
    bool grantable = true;
    if (it->upgrade) {
      // An upgrade is grantable only when its own S is the sole granted
      // request left on the object.
      for (const Request& r : queue->requests) {
        if (r.granted && r.txn != it->txn) {
          grantable = false;
          break;
        }
      }
    } else {
      for (const Request& r : queue->requests) {
        if (r.granted && Conflicts(*it, r)) {
          grantable = false;
          break;
        }
      }
    }
    if (!grantable) break;  // FIFO: later waiters queue behind.
    if (it->upgrade) {
      // Fold the txn's granted S into this request: it becomes the only
      // granted entry for the txn.
      for (auto g = queue->requests.begin(); g != queue->requests.end();) {
        if (g->granted && g->txn == it->txn) {
          g = queue->requests.erase(g);
        } else {
          ++g;
        }
      }
    }
    it->granted = true;
    granted_any = true;
  }
  if (granted_any) queue->cv.notify_all();
}

std::vector<TxnId> LockManager::DirectBlockers(TxnId txn, Oid oid) const {
  // Direct blockers of a txn's first non-granted request on an object:
  // every conflicting request of another txn positioned ahead of it.
  std::vector<TxnId> out;
  auto qit = table_.find(oid);
  if (qit == table_.end()) return out;
  const LockQueue& queue = *qit->second;
  // Find the txn's waiting request to know its mode and position.
  const Request* own = nullptr;
  for (const Request& r : queue.requests) {
    if (r.txn == txn && !r.granted) {
      own = &r;
      break;
    }
  }
  if (own == nullptr) return out;
  for (const Request& r : queue.requests) {
    if (&r == own) break;
    if (Conflicts(*own, r)) out.push_back(r.txn);
  }
  return out;
}

bool LockManager::WouldDeadlock(TxnId waiter, Oid oid, LockMode mode) const {
  (void)mode;  // The waiter's own queued request carries the mode.
  std::unordered_set<TxnId> visited;
  std::vector<TxnId> stack = DirectBlockers(waiter, oid);
  while (!stack.empty()) {
    const TxnId current = stack.back();
    stack.pop_back();
    if (current == waiter) return true;
    if (!visited.insert(current).second) continue;
    auto wit = waiting_on_.find(current);
    if (wit == waiting_on_.end()) continue;  // Running, not blocked.
    const std::vector<TxnId> next = DirectBlockers(current, wit->second);
    stack.insert(stack.end(), next.begin(), next.end());
  }
  return false;
}

Status LockManager::Acquire(TransactionContext* txn, Oid oid,
                            LockMode mode) {
  std::unique_lock<std::mutex> lock(mu_);
  if (txn->HoldsLock(oid, mode)) {
    ++stats_.acquisitions;
    return Status::OK();
  }
  auto& queue_ptr = table_[oid];
  if (queue_ptr == nullptr) queue_ptr = std::make_unique<LockQueue>();
  LockQueue* queue = queue_ptr.get();

  Request request;
  request.txn = txn->id();
  request.mode = mode;
  request.upgrade = mode == LockMode::kExclusive &&
                    txn->HoldsLock(oid, LockMode::kShared);

  std::list<Request>::iterator mine;
  if (request.upgrade) {
    // Jump the queue: upgrades sit at the head of the wait section so the
    // upgrader only drains already-granted readers.
    auto pos = std::find_if(queue->requests.begin(), queue->requests.end(),
                            [](const Request& r) { return !r.granted; });
    mine = queue->requests.insert(pos, request);
  } else {
    mine = queue->requests.insert(queue->requests.end(), request);
  }
  TryGrantQueue(queue);

  if (!mine->granted) {
    ++stats_.waits;
    // Local cycle search first (exact within this manager), then — in a
    // sharded deployment — register the direct-blocker edges in the
    // global graph, which refuses waits that close a cycle *across*
    // managers. Victim policy is the same in both: the newcomer aborts.
    bool deadlock = WouldDeadlock(txn->id(), oid, mode);
    bool registered = false;
    if (!deadlock && wait_graph_ != nullptr) {
      registered = wait_graph_->TryRegisterWaits(
          txn->id(), DirectBlockers(txn->id(), oid));
      deadlock = !registered;
    }
    if (deadlock) {
      queue->requests.erase(mine);
      TryGrantQueue(queue);
      ++stats_.deadlocks;
      return Status::Aborted(
          Format("deadlock: txn %llu would wait cyclically for oid %llu",
                 (unsigned long long)txn->id(), (unsigned long long)oid));
    }
    waiting_on_[txn->id()] = oid;
    const auto wait_start = std::chrono::steady_clock::now();
    const auto deadline =
        wait_start + std::chrono::nanoseconds(options_.wait_timeout_nanos);
    bool granted = queue->cv.wait_until(
        lock, deadline, [&mine]() { return mine->granted; });
    const uint64_t waited = ElapsedNanos(wait_start);
    txn->lock_wait_nanos_ += waited;
    stats_.total_wait_nanos += waited;
    waiting_on_.erase(txn->id());
    // The wait ended (either way): its snapshot of edges is obsolete.
    if (registered) wait_graph_->Clear(txn->id());
    if (!granted) {
      queue->requests.erase(mine);
      TryGrantQueue(queue);
      ++stats_.timeouts;
      return Status::Aborted(
          Format("lock wait timeout: txn %llu on oid %llu",
                 (unsigned long long)txn->id(), (unsigned long long)oid));
    }
  }
  txn->held_locks_[oid] = mode;
  ++stats_.acquisitions;
  return Status::OK();
}

void LockManager::ReleaseAll(TransactionContext* txn) {
  std::lock_guard<std::mutex> lock(mu_);
  waiting_on_.erase(txn->id());
  for (const auto& [oid, mode] : txn->held_locks_) {
    (void)mode;
    auto qit = table_.find(oid);
    if (qit == table_.end()) continue;
    LockQueue* queue = qit->second.get();
    for (auto it = queue->requests.begin(); it != queue->requests.end();) {
      if (it->txn == txn->id()) {
        it = queue->requests.erase(it);
      } else {
        ++it;
      }
    }
    if (queue->requests.empty()) {
      table_.erase(qit);
    } else {
      TryGrantQueue(queue);
    }
  }
  txn->held_locks_.clear();
}

LockManagerStats LockManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t LockManager::locked_object_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return table_.size();
}

}  // namespace ocb
