/// \file write_batch.h
/// \brief Multi-object write description applied in one Transaction call.
///
/// A WriteBatch collects Put / SetReference / Delete operations and hands
/// them to Transaction::Apply, which executes them engine-side in one
/// crossing: the statically known lock footprint is sorted and X-locked
/// in ONE ascending pass (two batches can never deadlock each other on
/// their static footprints), then the operations run in order. Dynamic
/// footprint — a previous reference target discovered only by reading,
/// a delete's neighborhood — is picked up by the per-operation logic as
/// usual.
///
/// Failure semantics: Status::Aborted (deadlock victim / lock timeout)
/// aborts the whole batch immediately — the transaction is dead and the
/// caller must Abort (RAII does it). Every other per-operation error
/// (NotFound target, NoSpace backref page, ...) is recorded in
/// WriteBatchResult::statuses and the batch continues, mirroring how
/// workloads tolerate vanished neighbors under concurrency; transaction-
/// level atomicity still holds — aborting later undoes every applied
/// operation.

#ifndef OCB_ENGINE_WRITE_BATCH_H_
#define OCB_ENGINE_WRITE_BATCH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "oodb/object.h"
#include "storage/types.h"
#include "util/status.h"

namespace ocb {

/// \brief An ordered list of write operations.
class WriteBatch {
 public:
  enum class OpKind : uint8_t { kPut, kSetReference, kDelete };

  struct Op {
    OpKind kind = OpKind::kPut;
    Object object;        ///< kPut: the full new state (object.oid set).
    Oid from = kInvalidOid;  ///< kSetReference source / kDelete target.
    uint32_t slot = 0;       ///< kSetReference slot.
    Oid to = kInvalidOid;    ///< kSetReference target.
  };

  /// Rewrites \p object (X lock on object.oid).
  void Put(Object object) {
    Op op;
    op.kind = OpKind::kPut;
    op.from = object.oid;
    op.object = std::move(object);
    ops_.push_back(std::move(op));
  }

  /// Sets ORef \p slot of \p from to \p to (symmetric backref upkeep).
  void SetReference(Oid from, uint32_t slot, Oid to) {
    Op op;
    op.kind = OpKind::kSetReference;
    op.from = from;
    op.slot = slot;
    op.to = to;
    ops_.push_back(std::move(op));
  }

  /// Deletes \p oid (neighborhood unlink included).
  void Delete(Oid oid) {
    Op op;
    op.kind = OpKind::kDelete;
    op.from = oid;
    ops_.push_back(std::move(op));
  }

  const std::vector<Op>& ops() const { return ops_; }
  size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }
  void Clear() { ops_.clear(); }

  /// Statically known oids the batch will X-lock up front (operation
  /// sources and named reference targets; dynamic footprint is acquired
  /// per operation).
  std::vector<Oid> StaticFootprint() const {
    std::vector<Oid> out;
    out.reserve(ops_.size() * 2);
    for (const Op& op : ops_) {
      if (op.from != kInvalidOid) out.push_back(op.from);
      if (op.kind == OpKind::kSetReference && op.to != kInvalidOid) {
        out.push_back(op.to);
      }
    }
    return out;
  }

 private:
  std::vector<Op> ops_;
};

/// \brief Per-operation outcome of Transaction::Apply.
struct WriteBatchResult {
  /// One Status per batch operation, in order.
  std::vector<Status> statuses;

  /// Operations that applied cleanly.
  uint64_t applied = 0;

  bool all_ok() const { return applied == statuses.size(); }
};

}  // namespace ocb

#endif  // OCB_ENGINE_WRITE_BATCH_H_
