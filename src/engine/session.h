/// \file session.h
/// \brief Session API v2 — the public transactional surface of the engine.
///
/// This layer replaces the old duck-typed raw-handle surface (callers
/// holding a TxnHandle and calling per-object Database overloads) with
/// first-class RAII objects:
///
///   Engine (Database | ShardedDatabase)
///     └─ OpenSession()            → Session (cheap; a factory + defaults)
///          └─ Begin(TxnOptions)   → Transaction (RAII)
///               ├─ Get / Put / SetReference / Delete / Create / CrossLink
///               ├─ GetMany(span)  — batched read, ONE sorted lock pass
///               ├─ Apply(WriteBatch&&) — batched writes, ONE footprint sort
///               ├─ Traverse(root, depth, policy) — whole traversal
///               │     executed engine-side in one call
///               └─ Commit() — group-commit pipeline / Abort()
///
/// Contracts:
///
///   * **RAII** — a Transaction that goes out of scope without Commit
///     auto-aborts: locks release, undo replays, pending versions seal.
///     Legacy (non-transactional) brackets auto-close the observer
///     transaction.
///   * **Typed lifecycle errors, never UB** — using a committed/aborted
///     transaction, double commit, writes through a read-only one: all
///     return Status::InvalidArgument (checked here *and* engine-side).
///     Abort is idempotent.
///   * **Batching** — GetMany/Apply sort their lock footprint once and
///     acquire in ascending oid order (no two batches can deadlock each
///     other on static footprints); Traverse crosses the API once per
///     traversal instead of once per object. Observer fidelity is
///     preserved: every object access and link crossing still fires.
///   * **Group commit** — Commit() routes writers through the engine's
///     commit pipeline (concurrency/commit_pipeline.h): batches share
///     one version-store commit-mutex section (single store) or one
///     coordinator commit-mutex / in-flight-registry section (sharded).
///
/// Like the executor, the session layer is a template over the engine —
/// the one remaining place the engine surface is generic; everything
/// above it (workload executor, protocol runner, benches, examples,
/// tests) speaks Session/Transaction only.

#ifndef OCB_ENGINE_SESSION_H_
#define OCB_ENGINE_SESSION_H_

#include <memory>
#include <span>
#include <utility>
#include <vector>

#include <chrono>

#include "concurrency/txn_options.h"
#include "engine/write_batch.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "oodb/database.h"
#include "sharding/sharded_database.h"
#include "util/format.h"
#include "util/rng.h"
#include "util/status.h"

namespace ocb {

/// Traversal algorithm run engine-side by Transaction::Traverse (the
/// paper's four transaction shapes, Fig. 3).
enum class TraverseKind : uint8_t {
  kBreadthFirst = 0,  ///< Set-oriented: all references, level by level.
  kDepthFirst,        ///< Simple traversal: all references, depth-first.
  kHierarchy,         ///< One reference type only, depth-first.
  kStochastic,        ///< Random next link, p(N) = 1/2^N.
};

/// \brief How Transaction::Traverse should walk the graph.
struct TraversePolicy {
  TraverseKind kind = TraverseKind::kDepthFirst;

  /// Ascend through BackRefs instead of descending ORefs.
  bool reversed = false;

  /// Reference type followed by kHierarchy.
  RefTypeId hierarchy_type = 0;

  /// Link-choice stream for kStochastic (required for that kind).
  LewisPayneRng* rng = nullptr;
};

/// \brief RAII transaction handle (move-only). Obtained from
/// Session::Begin / Session::BeginLegacy; auto-aborts on destruction.
template <typename DB>
class TransactionT {
 public:
  using Handle = typename DB::TxnHandle;

  /// An empty (finished / moved-from) transaction; every operation on it
  /// returns InvalidArgument.
  TransactionT() = default;

  TransactionT(TransactionT&& other) noexcept
      : db_(other.db_),
        handle_(std::move(other.handle_)),
        legacy_(other.legacy_),
        options_(other.options_),
        begin_status_(std::move(other.begin_status_)),
        begin_nanos_(other.begin_nanos_),
        commit_nanos_(other.commit_nanos_) {
    other.db_ = nullptr;
    other.legacy_ = false;
    other.begin_status_ = Status::OK();
    other.begin_nanos_ = 0;
  }

  TransactionT& operator=(TransactionT&& other) noexcept {
    if (this != &other) {
      Dispose();
      db_ = other.db_;
      handle_ = std::move(other.handle_);
      legacy_ = other.legacy_;
      options_ = other.options_;
      begin_status_ = std::move(other.begin_status_);
      begin_nanos_ = other.begin_nanos_;
      commit_nanos_ = other.commit_nanos_;
      other.db_ = nullptr;
      other.legacy_ = false;
      other.begin_status_ = Status::OK();
      other.begin_nanos_ = 0;
    }
    return *this;
  }

  TransactionT(const TransactionT&) = delete;
  TransactionT& operator=(const TransactionT&) = delete;

  /// Auto-abort: an unfinished transaction rolls back (locks released,
  /// undo replayed, pending versions sealed); an unfinished legacy
  /// bracket closes the observer transaction.
  ~TransactionT() { Dispose(); }

  /// True while this handle is attached to an engine (not moved-from,
  /// not refused at Begin).
  bool valid() const { return db_ != nullptr; }

  /// Why Session::Begin refused this transaction (OK when it did not):
  /// a nonsensical {read_only, isolation, cc} combination is refused
  /// with typed InvalidArgument instead of silently running as 2PL —
  /// the handle comes back *poisoned*, and every operation (including
  /// Commit/Abort) returns this status.
  const Status& begin_status() const { return begin_status_; }

  /// True for legacy (non-transactional) brackets.
  bool legacy() const { return legacy_; }

  /// Commits through the engine's group-commit pipeline. Double commit /
  /// commit of an aborted transaction returns InvalidArgument; a
  /// Status::Aborted return (sharded 2PC failpoint) means the commit
  /// became an abort and everything rolled back.
  Status Commit() {
    if (db_ == nullptr) {
      if (!begin_status_.ok()) return begin_status_;
      return Status::InvalidArgument("Commit on an empty Transaction");
    }
    if (legacy_) {
      db_->EndTransaction();
      db_ = nullptr;
      return Status::OK();
    }
    // One commit-latency measurement, two sinks: commit_nanos() feeds
    // TransactionResult/PhaseMetrics (OBS-independent), the registry
    // histogram feeds Snapshot()-based reporting. Group-commit queue
    // time is included — that is the latency a client observes.
    const auto commit_start = std::chrono::steady_clock::now();
    Status st = db_->CommitTxnGrouped(handle_.get());
    commit_nanos_ = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - commit_start)
            .count());
#ifndef OCB_OBS_DISABLED
    if (obs::Enabled() && !read_only()) {
      static obs::LatencyHistogram* commit_histo =
          obs::MetricsRegistry::Global().GetHistogram("txn.commit");
      commit_histo->Record(commit_nanos_);
    }
#endif
    EmitTxnSpan();
    return st;
  }

  /// Aborts. Idempotent: aborting an already-aborted transaction is OK;
  /// aborting a committed one is InvalidArgument.
  Status Abort() {
    if (db_ == nullptr) {
      if (!begin_status_.ok()) return begin_status_;
      return Status::InvalidArgument("Abort on an empty Transaction");
    }
    if (legacy_) {
      db_->EndTransaction();
      db_ = nullptr;
      return Status::OK();
    }
    Status st = db_->AbortTxn(handle_.get());
    EmitTxnSpan();
    return st;
  }

  // --- Object operations ------------------------------------------------

  /// Reads one object (S lock, or the MVCC snapshot for read-only
  /// transactions). Fires OnObjectAccess.
  Result<Object> Get(Oid oid) {
    OCB_RETURN_NOT_OK(CheckUsable("Get"));
    return db_->GetObject(raw(), oid);
  }

  /// Batched read: every object of \p oids in input order, in ONE
  /// engine call — one sorted ascending S-lock pass (no two GetMany
  /// calls can deadlock each other), one latch walk, one observer pass.
  /// Vanished oids are skipped (the same tolerance single gets give
  /// concurrent deletes); Status::Aborted means deadlock victim.
  Result<std::vector<Object>> GetMany(std::span<const Oid> oids) {
    OCB_RETURN_NOT_OK(CheckUsable("GetMany"));
    std::vector<Object> out;
    OCB_RETURN_NOT_OK(db_->GetObjectsBatched(raw(), oids, &out));
    return out;
  }

  /// Class-extent membership as seen by THIS transaction: an MVCC
  /// snapshot reader gets the extent with members created after its
  /// snapshot filtered out (extents themselves are unversioned — see
  /// Database::ExtentSnapshot(ClassId, const TxnHandle*)); locking and
  /// legacy transactions get the current extent. An empty/finished
  /// handle returns the current extent too (legacy path semantics).
  std::vector<Oid> ExtentSnapshot(ClassId class_id) {
    if (db_ == nullptr) return {};
    return db_->ExtentSnapshot(class_id, raw());
  }

  /// Creates an instance of \p class_id (X lock on the fresh oid).
  Result<Oid> Create(ClassId class_id) {
    OCB_RETURN_NOT_OK(CheckUsable("Create"));
    OCB_RETURN_NOT_OK(CheckWritable("Create"));
    return db_->CreateObject(raw(), class_id);
  }

  /// Rewrites \p object in place (X lock).
  Status Put(const Object& object) {
    OCB_RETURN_NOT_OK(CheckUsable("Put"));
    OCB_RETURN_NOT_OK(CheckWritable("Put"));
    return db_->PutObject(raw(), object);
  }

  /// Sets ORef \p slot of \p from to \p to with symmetric backref upkeep.
  Status SetReference(Oid from, uint32_t slot, Oid to) {
    OCB_RETURN_NOT_OK(CheckUsable("SetReference"));
    OCB_RETURN_NOT_OK(CheckWritable("SetReference"));
    return db_->SetReference(raw(), from, slot, to);
  }

  /// Deletes \p oid and unlinks its neighborhood.
  Status Delete(Oid oid) {
    OCB_RETURN_NOT_OK(CheckUsable("Delete"));
    OCB_RETURN_NOT_OK(CheckWritable("Delete"));
    return db_->DeleteObject(raw(), oid);
  }

  /// Follows the link \p from → \p to (observer OnLinkCross + read).
  Result<Object> CrossLink(Oid from, Oid to, RefTypeId type, bool reverse) {
    OCB_RETURN_NOT_OK(CheckUsable("CrossLink"));
    return db_->CrossLink(raw(), from, to, type, reverse);
  }

  /// Applies a WriteBatch in ONE engine call: the statically known
  /// footprint is sorted and X-locked in one ascending pass, then the
  /// operations run in order (see write_batch.h for the failure
  /// semantics: Aborted kills the batch, everything else is recorded
  /// per-operation and the batch continues).
  Result<WriteBatchResult> Apply(WriteBatch&& batch) {
    OCB_RETURN_NOT_OK(CheckUsable("Apply"));
    OCB_RETURN_NOT_OK(CheckWritable("Apply"));
    OCB_RETURN_NOT_OK(
        db_->AcquireWriteFootprint(raw(), batch.StaticFootprint()));
    WriteBatchResult result;
    result.statuses.reserve(batch.size());
    for (const WriteBatch::Op& op : batch.ops()) {
      Status st;
      switch (op.kind) {
        case WriteBatch::OpKind::kPut:
          st = db_->PutObject(raw(), op.object);
          break;
        case WriteBatch::OpKind::kSetReference:
          st = db_->SetReference(raw(), op.from, op.slot, op.to);
          break;
        case WriteBatch::OpKind::kDelete:
          st = db_->DeleteObject(raw(), op.from);
          break;
      }
      if (st.IsAborted()) return st;  // Transaction is dead.
      if (st.ok()) ++result.applied;
      result.statuses.push_back(std::move(st));
    }
    return result;
  }

  /// Runs a whole traversal engine-side in one call: walks from \p root
  /// up to \p depth following \p policy, firing the usual per-link
  /// observer crossings, and returns the number of objects accessed
  /// (the root itself not included). Status::Aborted means the
  /// transaction became a deadlock victim mid-walk and must abort.
  Result<uint64_t> Traverse(const Object& root, uint32_t depth,
                            const TraversePolicy& policy) {
    OCB_RETURN_NOT_OK(CheckUsable("Traverse"));
    if (policy.kind == TraverseKind::kStochastic && policy.rng == nullptr) {
      return Status::InvalidArgument(
          "stochastic traversal requires TraversePolicy::rng");
    }
    Status failure;
    uint64_t accessed = 0;
    switch (policy.kind) {
      case TraverseKind::kBreadthFirst:
        accessed = Bfs(root, depth, policy.reversed, &failure);
        break;
      case TraverseKind::kDepthFirst:
        accessed = Dfs(root, depth, policy.reversed, &failure);
        break;
      case TraverseKind::kHierarchy:
        accessed = Hier(root, depth, policy.hierarchy_type,
                        policy.reversed, &failure);
        break;
      case TraverseKind::kStochastic:
        accessed = Stoch(root, depth, policy.reversed, policy.rng);
        break;
    }
    if (!failure.ok()) return failure;
    return accessed;
  }

  // --- Introspection / accounting --------------------------------------

  /// Engine transaction id (kInvalidTxnId for legacy brackets).
  TxnId id() const {
    return handle_ == nullptr ? kInvalidTxnId : handle_->id();
  }

  /// Lifecycle state (legacy brackets report kActive until finished).
  TxnState state() const {
    if (handle_ != nullptr) return handle_->state();
    return db_ == nullptr ? TxnState::kCommitted : TxnState::kActive;
  }

  /// True when the engine runs this transaction as an MVCC snapshot
  /// reader (what was *asked for* lives in options().read_only — the
  /// engine downgrades when MVCC is disabled).
  bool read_only() const {
    return handle_ != nullptr && handle_->read_only();
  }

  /// The options Session::Begin was called with.
  const TxnOptions& options() const { return options_; }

  /// The concurrency-control algorithm the engine actually runs this
  /// transaction under (the engine may degrade — e.g. MVCC disabled
  /// forces kStrict2PL before the session-level refusal existed).
  CcAlgorithm cc() const {
    if constexpr (requires(const Handle& h) { h.cc(); }) {
      return handle_ == nullptr ? options_.cc : handle_->cc();
    } else {
      return options_.cc;
    }
  }

  uint64_t lock_wait_nanos() const {
    return handle_ == nullptr ? 0 : handle_->lock_wait_nanos();
  }
  uint64_t snapshot_reads() const {
    return handle_ == nullptr ? 0 : handle_->snapshot_reads();
  }

  /// Wall time the last Commit() call took (0 before commit / for
  /// legacy brackets). Includes group-commit queue time — the latency
  /// the client actually observed.
  uint64_t commit_nanos() const { return commit_nanos_; }

  /// Sharded-execution attribution; single-store engines report the
  /// trivial values (1 shard, not cross-shard, no 2PC time).
  uint32_t shards_touched() const {
    if constexpr (requires(const Handle& h) { h.shards_touched(); }) {
      return handle_ == nullptr ? 1 : handle_->shards_touched();
    } else {
      return 1;
    }
  }
  bool cross_shard() const {
    if constexpr (requires(const Handle& h) { h.cross_shard(); }) {
      return handle_ != nullptr && handle_->cross_shard();
    } else {
      return false;
    }
  }
  uint64_t twopc_nanos() const {
    if constexpr (requires(const Handle& h) { h.twopc_nanos(); }) {
      return handle_ == nullptr ? 0 : handle_->twopc_nanos();
    } else {
      return 0;
    }
  }

 private:
  friend class SessionT<DB>;

  /// A *poisoned* transaction: Session::Begin refused \p options. Not
  /// attached to any engine; every operation returns \p refusal.
  TransactionT(Status refusal, TxnOptions options)
      : options_(options), begin_status_(std::move(refusal)) {}

  TransactionT(DB* db, std::unique_ptr<Handle> handle, TxnOptions options,
               bool legacy)
      : db_(db),
        handle_(std::move(handle)),
        legacy_(legacy),
        options_(options) {
#ifndef OCB_OBS_DISABLED
    // Stamp the lifetime-span start only when tracing is live (no clock
    // read otherwise). 0 means "no span pending".
    if (!legacy_ && handle_ != nullptr &&
        obs::TraceRecorder::Global().enabled()) {
      begin_nanos_ = obs::TraceRecorder::Global().NowNanos();
      if (begin_nanos_ == 0) begin_nanos_ = 1;
    }
#endif
  }

  /// The raw engine handle (nullptr selects the engine's legacy path).
  Handle* raw() const { return legacy_ ? nullptr : handle_.get(); }

  /// Destructor / move-assign cleanup: auto-abort unfinished work.
  void Dispose() {
    if (db_ == nullptr) return;
    if (legacy_) {
      db_->EndTransaction();
    } else if (handle_ != nullptr &&
               (handle_->active() || handle_->prepared())) {
      db_->AbortTxn(handle_.get());
      EmitTxnSpan();
    }
    db_ = nullptr;
  }

  /// Records the "txn" lifetime span (begin → finish) once; subsequent
  /// calls are no-ops. The span nests every lock.wait / io.miss /
  /// commit.stamp span this transaction's thread produced.
  void EmitTxnSpan() {
#ifndef OCB_OBS_DISABLED
    if (begin_nanos_ == 0) return;
    auto& rec = obs::TraceRecorder::Global();
    if (rec.enabled() && handle_ != nullptr) {
      const uint64_t end = rec.NowNanos();
      rec.RecordComplete(
          "txn", begin_nanos_,
          end >= begin_nanos_ ? end - begin_nanos_ : 0, "txn",
          handle_->id(), "ro", read_only() ? 1 : 0);
    }
    begin_nanos_ = 0;
#endif
  }

  Status CheckUsable(const char* op) const {
    if (db_ == nullptr) {
      if (!begin_status_.ok()) return begin_status_;
      return Status::InvalidArgument(
          Format("%s on an empty (finished or moved-from) Transaction",
                 op));
    }
    if (!legacy_ && handle_ != nullptr && !handle_->active()) {
      return Status::InvalidArgument(
          Format("%s refused: transaction %llu is %s (use-after-finish)",
                 op, (unsigned long long)handle_->id(),
                 TxnStateToString(handle_->state())));
    }
    return Status::OK();
  }

  /// API-level read-only refusal: covers the kStrict2PL read-only case
  /// the engine cannot see (its handle is a plain locking transaction).
  Status CheckWritable(const char* op) const {
    if (!legacy_ && options_.read_only) {
      return Status::InvalidArgument(
          Format("%s refused: transaction opened read-only", op));
    }
    return Status::OK();
  }

  // --- Traversal engine (the paper's four shapes, ported from the
  // workload executor so they run below the API boundary) ---------------

  /// Issues the page reads for every child the walk is about to follow
  /// as ONE overlapped batch (DB::PrefetchObjects), so a frontier of N
  /// cache misses costs one device latency instead of N. MVCC snapshot
  /// readers skip it: their reads may resolve from the version store, so
  /// prefetching would charge I/O the blocking path never performs.
  void PrefetchFrontier(const std::vector<Oid>& frontier) {
    if (frontier.size() < 2) return;
    // Snapshot-resolving transactions (MVCC readers, SI writers) may
    // serve reads from the version store; prefetching would charge I/O
    // those reads never perform. OCC reads committed-latest, which
    // nearly always falls through to the store — keep its prefetch.
    if (!legacy_ && handle_ != nullptr &&
        (handle_->read_only() ||
         options_.cc == CcAlgorithm::kSnapshotIsolation)) {
      return;
    }
    (void)db_->PrefetchObjects(frontier);
  }

  /// Collects \p node's traversable link targets (the walk's next
  /// frontier contribution) into \p out.
  void CollectChildren(const Object& node, bool reversed,
                       std::vector<Oid>* out) {
    if (reversed) {
      out->insert(out->end(), node.backrefs.begin(), node.backrefs.end());
      return;
    }
    for (Oid target : node.orefs) {
      if (target != kInvalidOid) out->push_back(target);
    }
  }

  /// Follows reference \p index of \p from; latches the first Aborted
  /// into \p failure so walks unwind promptly.
  Result<Object> Follow(const Object& from, size_t index, bool reversed,
                        Status* failure) {
    Result<Object> result = [&]() -> Result<Object> {
      if (!reversed) {
        const Oid target = from.orefs[index];
        const ClassDescriptor& cls = db_->schema().GetClass(from.class_id);
        const RefTypeId type =
            index < cls.tref.size() ? cls.tref[index] : RefTypeId{0};
        return db_->CrossLink(raw(), from.oid, target, type,
                              /*reverse=*/false);
      }
      const Oid target = from.backrefs[index];
      return db_->CrossLink(raw(), from.oid, target, /*type=*/0,
                            /*reverse=*/true);
    }();
    if (!result.ok() && result.status().IsAborted() && failure->ok()) {
      *failure = result.status();
    }
    return result;
  }

  uint64_t Bfs(const Object& root, uint32_t depth, bool reversed,
               Status* failure) {
    // Breadth-first on all the references, level by level, duplicates
    // kept (set-oriented access).
    uint64_t accessed = 0;
    std::vector<Object> level = {root};
    for (uint32_t d = 0; d < depth && !level.empty(); ++d) {
      // Prefetch the whole next frontier as one batch before crossing
      // any of its links.
      std::vector<Oid> frontier;
      for (const Object& node : level) {
        CollectChildren(node, reversed, &frontier);
      }
      PrefetchFrontier(frontier);
      std::vector<Object> next;
      for (const Object& node : level) {
        const size_t fanout =
            reversed ? node.backrefs.size() : node.orefs.size();
        for (size_t i = 0; i < fanout; ++i) {
          if (!reversed && node.orefs[i] == kInvalidOid) continue;
          auto child = Follow(node, i, reversed, failure);
          if (!failure->ok()) return accessed;
          if (!child.ok()) continue;  // Vanished under a concurrent client.
          ++accessed;
          next.push_back(std::move(child).value());
        }
      }
      level = std::move(next);
    }
    return accessed;
  }

  uint64_t Dfs(const Object& node, uint32_t depth, bool reversed,
               Status* failure) {
    if (depth == 0) return 0;
    uint64_t accessed = 0;
    // This node's children are the walk's next frontier: batch their
    // misses before descending into the first.
    std::vector<Oid> children;
    CollectChildren(node, reversed, &children);
    PrefetchFrontier(children);
    const size_t fanout =
        reversed ? node.backrefs.size() : node.orefs.size();
    for (size_t i = 0; i < fanout; ++i) {
      if (!reversed && node.orefs[i] == kInvalidOid) continue;
      auto child = Follow(node, i, reversed, failure);
      if (!failure->ok()) return accessed;
      if (!child.ok()) continue;
      ++accessed;
      accessed += Dfs(child.value(), depth - 1, reversed, failure);
      if (!failure->ok()) return accessed;
    }
    return accessed;
  }

  uint64_t Hier(const Object& node, uint32_t depth, RefTypeId type,
                bool reversed, Status* failure) {
    if (depth == 0) return 0;
    uint64_t accessed = 0;
    if (!reversed) {
      const ClassDescriptor& cls = db_->schema().GetClass(node.class_id);
      // Batch the type-matching children (this walk's frontier at the
      // node) before the first crossing.
      std::vector<Oid> children;
      for (size_t i = 0; i < node.orefs.size(); ++i) {
        if (node.orefs[i] == kInvalidOid) continue;
        if (i >= cls.tref.size() || cls.tref[i] != type) continue;
        children.push_back(node.orefs[i]);
      }
      PrefetchFrontier(children);
      for (size_t i = 0; i < node.orefs.size(); ++i) {
        if (node.orefs[i] == kInvalidOid) continue;
        if (i >= cls.tref.size() || cls.tref[i] != type) continue;
        auto child = Follow(node, i, /*reversed=*/false, failure);
        if (!failure->ok()) return accessed;
        if (!child.ok()) continue;
        ++accessed;
        accessed += Hier(child.value(), depth - 1, type, reversed, failure);
        if (!failure->ok()) return accessed;
      }
      return accessed;
    }
    // Reversed hierarchy traversal ascends through BackRefs, which carry
    // no slot type, so the reverse direction follows all of them — a
    // documented approximation (see DESIGN.md §5).
    PrefetchFrontier(node.backrefs);
    for (size_t i = 0; i < node.backrefs.size(); ++i) {
      auto child = Follow(node, i, /*reversed=*/true, failure);
      if (!failure->ok()) return accessed;
      if (!child.ok()) continue;
      ++accessed;
      accessed += Hier(child.value(), depth - 1, type, reversed, failure);
      if (!failure->ok()) return accessed;
    }
    return accessed;
  }

  uint64_t Stoch(const Object& node, uint32_t depth, bool reversed,
                 LewisPayneRng* rng) {
    // Random walk: at each step the probability of following reference
    // number N (1-based) is 1/2^N; failing every coin flip ends the
    // walk, as does a null or missing link.
    Status failure;  // A broken walk simply ends; Aborted still latches.
    uint64_t accessed = 0;
    Object current = node;
    for (uint32_t step = 0; step < depth; ++step) {
      const size_t fanout =
          reversed ? current.backrefs.size() : current.orefs.size();
      size_t chosen = fanout;  // Sentinel: no link chosen.
      for (size_t i = 0; i < fanout; ++i) {
        if (rng->Bernoulli(0.5)) {
          chosen = i;
          break;
        }
      }
      if (chosen == fanout) break;
      if (!reversed && current.orefs[chosen] == kInvalidOid) break;
      auto next = Follow(current, chosen, reversed, &failure);
      if (!next.ok()) break;
      ++accessed;
      current = std::move(next).value();
    }
    return accessed;
  }

  DB* db_ = nullptr;
  std::unique_ptr<Handle> handle_;
  bool legacy_ = false;
  TxnOptions options_;
  /// Session::Begin's refusal when this handle was born poisoned (see
  /// begin_status()); OK for every attached handle.
  Status begin_status_;
  /// Trace-epoch stamp of Begin when the recorder was live (0 = no
  /// pending lifetime span).
  uint64_t begin_nanos_ = 0;
  /// Wall nanos of the last Commit() (accessor commit_nanos()).
  uint64_t commit_nanos_ = 0;
};

/// \brief A client's connection to an engine: a factory of RAII
/// transactions plus the TxnOptions defaults they begin with. Cheap to
/// create (pointer + options); any number of transactions may be live
/// per session, each driven by one thread.
template <typename DB>
class SessionT {
 public:
  explicit SessionT(DB* db, TxnOptions defaults = TxnOptions())
      : db_(db), defaults_(defaults) {}

  /// Begins a transaction with this session's default options.
  TransactionT<DB> Begin() { return Begin(defaults_); }

  /// Begins a transaction. The option matrix is validated first
  /// (ValidateTxnOptions): nonsensical combinations — a read-only txn
  /// asking for SI/OCC write machinery, a writer pinning kSnapshot
  /// isolation under 2PL, kStrict2PL isolation paired with an optimistic
  /// algorithm, or any non-2PL algorithm on an MVCC-disabled engine —
  /// yield a *poisoned* handle: valid() is false, begin_status() carries
  /// the typed InvalidArgument, and Commit/Abort return it verbatim.
  ///
  /// For accepted options: read_only with kDefault/kSnapshot isolation
  /// becomes an MVCC snapshot reader (engine MVCC permitting), and
  /// options.cc selects the concurrency-control algorithm for writers.
  /// A *set* deadlock policy is forwarded to the engine's lock managers
  /// when it differs (engine-wide — all sessions of one run must agree,
  /// the SetMvccEnabled discipline; unset keeps the engine's policy).
  TransactionT<DB> Begin(const TxnOptions& options) {
    Status valid = ValidateTxnOptions(options, db_->mvcc_enabled());
    if (!valid.ok()) {
      return TransactionT<DB>(std::move(valid), options);
    }
    if (options.deadlock_policy.has_value() &&
        *options.deadlock_policy != db_->deadlock_policy()) {
      db_->SetDeadlockPolicy(*options.deadlock_policy);
    }
    const bool snapshot = options.read_only &&
                          options.isolation != IsolationLevel::kStrict2PL;
    return TransactionT<DB>(db_, db_->BeginTxn(snapshot, options.cc),
                            options, /*legacy=*/false);
  }

  /// Begins a *legacy* bracket: no locks, no undo, seed-exact single-
  /// threaded semantics (the CLIENTN=1 benches). Only the observer
  /// transaction boundaries fire.
  TransactionT<DB> BeginLegacy() {
    db_->BeginTransaction();
    return TransactionT<DB>(db_, nullptr, TxnOptions(), /*legacy=*/true);
  }

  DB* engine() { return db_; }
  const TxnOptions& defaults() const { return defaults_; }
  void set_defaults(const TxnOptions& options) { defaults_ = options; }

 private:
  DB* db_;
  TxnOptions defaults_;
};

/// The single-store session (the canonical names).
using Session = SessionT<Database>;
using Transaction = TransactionT<Database>;
using ShardedSession = SessionT<ShardedDatabase>;
using ShardedSessionTransaction = TransactionT<ShardedDatabase>;

inline SessionT<Database> Database::OpenSession() {
  return SessionT<Database>(this);
}

inline SessionT<ShardedDatabase> ShardedDatabase::OpenSession() {
  return SessionT<ShardedDatabase>(this);
}

}  // namespace ocb

#endif  // OCB_ENGINE_SESSION_H_
