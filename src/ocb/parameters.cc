#include "ocb/parameters.h"

#include <cmath>

#include "util/format.h"

namespace ocb {

const char* TransactionTypeToString(TransactionType type) {
  switch (type) {
    case TransactionType::kSetOriented:
      return "SetOriented";
    case TransactionType::kSimpleTraversal:
      return "SimpleTraversal";
    case TransactionType::kHierarchyTraversal:
      return "HierarchyTraversal";
    case TransactionType::kStochasticTraversal:
      return "StochasticTraversal";
    case TransactionType::kUpdate:
      return "Update";
    case TransactionType::kInsert:
      return "Insert";
    case TransactionType::kDelete:
      return "Delete";
    case TransactionType::kScan:
      return "Scan";
  }
  return "Unknown";
}

Status DatabaseParameters::Validate() const {
  if (num_classes == 0) {
    return Status::InvalidArgument("num_classes must be >= 1");
  }
  if (num_objects == 0) {
    return Status::InvalidArgument("num_objects must be >= 1");
  }
  if (num_ref_types == 0) {
    return Status::InvalidArgument("num_ref_types must be >= 1");
  }
  if (!per_class_max_nref.empty() &&
      per_class_max_nref.size() != num_classes) {
    return Status::InvalidArgument(
        "per_class_max_nref must have num_classes entries");
  }
  if (!per_class_base_size.empty() &&
      per_class_base_size.size() != num_classes) {
    return Status::InvalidArgument(
        "per_class_base_size must have num_classes entries");
  }
  if (inf_class < 0 ||
      inf_class > EffectiveSupClass() ||
      EffectiveSupClass() >= static_cast<int64_t>(num_classes)) {
    return Status::InvalidArgument("invalid [inf_class, sup_class] interval");
  }
  if (inf_ref < 0) {
    return Status::InvalidArgument("inf_ref must be >= 0");
  }
  if (!fixed_tref.empty() && fixed_tref.size() != num_classes) {
    return Status::InvalidArgument("fixed_tref must have num_classes rows");
  }
  if (!fixed_cref.empty() && fixed_cref.size() != num_classes) {
    return Status::InvalidArgument("fixed_cref must have num_classes rows");
  }
  OCB_RETURN_NOT_OK(dist1_ref_types.Validate());
  OCB_RETURN_NOT_OK(dist2_class_refs.Validate());
  OCB_RETURN_NOT_OK(dist3_objects_in_classes.Validate());
  OCB_RETURN_NOT_OK(dist4_object_refs.Validate());
  return Status::OK();
}

std::string DatabaseParameters::ToTableString() const {
  TextTable t({"Name", "Parameter", "Value"});
  t.AddRow({"NC", "Number of classes in the database",
            Format("%u", num_classes)});
  t.AddRow({"MAXNREF", "Maximum number of references, per class",
            Format("%u", max_nref)});
  t.AddRow({"BASESIZE", "Instances base size, per class (bytes)",
            Format("%u", base_size)});
  t.AddRow({"NO", "Total number of objects",
            Format("%llu", (unsigned long long)num_objects)});
  t.AddRow({"NREFT", "Number of reference types",
            Format("%u", num_ref_types)});
  t.AddRow({"INFCLASS", "Inferior bound, set of referenced classes",
            Format("%lld", (long long)inf_class)});
  t.AddRow({"SUPCLASS", "Superior bound, set of referenced classes",
            Format("%lld", (long long)EffectiveSupClass())});
  t.AddRow({"INFREF", "Inferior bound, set of referenced objects",
            Format("%lld", (long long)inf_ref)});
  t.AddRow({"SUPREF", "Superior bound, set of referenced objects",
            sup_ref < 0 ? "extent end" : Format("%lld", (long long)sup_ref)});
  t.AddRow({"DIST1", "Reference types random distribution",
            dist1_ref_types.ToString()});
  t.AddRow({"DIST2", "Class references random distribution",
            dist2_class_refs.ToString()});
  t.AddRow({"DIST3", "Objects in classes random distribution",
            dist3_objects_in_classes.ToString()});
  t.AddRow({"DIST4", "Objects references random distribution",
            dist4_object_refs.ToString()});
  return t.ToString();
}

Status WorkloadParameters::Validate() const {
  const double sum = p_set + p_simple + p_hierarchy + p_stochastic +
                     p_update + p_insert + p_delete + p_scan;
  if (std::abs(sum - 1.0) > 1e-9) {
    return Status::InvalidArgument(
        Format("transaction probabilities sum to %.6f, expected 1", sum));
  }
  if (p_set < 0 || p_simple < 0 || p_hierarchy < 0 || p_stochastic < 0 ||
      p_update < 0 || p_insert < 0 || p_delete < 0 || p_scan < 0) {
    return Status::InvalidArgument("probabilities must be non-negative");
  }
  if (p_reverse < 0.0 || p_reverse > 1.0) {
    return Status::InvalidArgument("p_reverse must be in [0, 1]");
  }
  if (client_count == 0) {
    return Status::InvalidArgument("client_count must be >= 1");
  }
  if (group_commit_max_batch == 0) {
    return Status::InvalidArgument("group_commit_max_batch must be >= 1");
  }
  OCB_RETURN_NOT_OK(dist5_roots.Validate());
  return Status::OK();
}

std::string WorkloadParameters::ToTableString() const {
  TextTable t({"Name", "Parameter", "Value"});
  t.AddRow({"SETDEPTH", "Set-oriented Access depth", Format("%u", set_depth)});
  t.AddRow({"SIMDEPTH", "Simple Traversal depth", Format("%u", simple_depth)});
  t.AddRow({"HIEDEPTH", "Hierarchy Traversal depth",
            Format("%u", hierarchy_depth)});
  t.AddRow({"STODEPTH", "Stochastic Traversal depth",
            Format("%u", stochastic_depth)});
  t.AddRow({"COLDN", "Transactions executed during cold run",
            Format("%llu", (unsigned long long)cold_transactions)});
  t.AddRow({"HOTN", "Transactions executed during warm run",
            Format("%llu", (unsigned long long)hot_transactions)});
  t.AddRow({"THINK", "Average latency time between transactions (ns)",
            Format("%llu", (unsigned long long)think_nanos)});
  t.AddRow({"PSET", "Set Access occurrence probability",
            Format("%.2f", p_set)});
  t.AddRow({"PSIMPLE", "Simple Traversal occurrence probability",
            Format("%.2f", p_simple)});
  t.AddRow({"PHIER", "Hierarchy Traversal occurrence probability",
            Format("%.2f", p_hierarchy)});
  t.AddRow({"PSTOCH", "Stochastic Traversal occurrence probability",
            Format("%.2f", p_stochastic)});
  t.AddRow({"RAND5", "Transaction root object random distribution",
            dist5_roots.ToString()});
  t.AddRow({"CLIENTN", "Number of clients", Format("%u", client_count)});
  t.AddRow({"MVCC", "Snapshot reads for read-only transactions",
            mvcc_snapshot_reads ? "on" : "off"});
  t.AddRow({"GCBATCH", "Group-commit batch cap",
            Format("%u", group_commit_max_batch)});
  t.AddRow({"DLPOLICY", "Deadlock victim policy",
            DeadlockPolicyToString(deadlock_policy)});
  return t.ToString();
}

}  // namespace ocb
