/// \file parameters.h
/// \brief OCB's parameter sets: database (paper Table 1) and workload
///        (paper Table 2), with the paper's default values.
///
/// Indexing note: the paper is 1-based (classes 1..NC, objects 1..NO); this
/// implementation is 0-based throughout (classes 0..NC-1, extent indices
/// 0..count-1). Interval parameters INFCLASS/SUPCLASS/INFREF/SUPREF are
/// expressed 0-based; the sentinel -1 means "the top of the range"
/// (NC-1 / extent end), matching the paper's NC / NO defaults.

#ifndef OCB_OCB_PARAMETERS_H_
#define OCB_OCB_PARAMETERS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "concurrency/transaction_context.h"
#include "util/distribution.h"
#include "util/status.h"

namespace ocb {

/// \brief Paper Table 1 — database parameters.
struct DatabaseParameters {
  /// NC: number of classes in the database.
  uint32_t num_classes = 20;

  /// MAXNREF(i): maximum number of references per class. Uniform default;
  /// per-class overrides via per_class_max_nref.
  uint32_t max_nref = 10;

  /// BASESIZE(i): instance base size per class, in bytes.
  uint32_t base_size = 50;

  /// Optional per-class overrides (size must be num_classes when set).
  std::vector<uint32_t> per_class_max_nref;
  std::vector<uint32_t> per_class_base_size;

  /// NO: total number of objects.
  uint64_t num_objects = 20000;

  /// NREFT: number of reference types (inheritance, composition, ...).
  uint16_t num_ref_types = 4;

  /// INFCLASS / SUPCLASS: bounds (0-based, inclusive) of the class interval
  /// a reference may target — locality of reference at the class level.
  /// -1 for sup_class means num_classes - 1.
  int64_t inf_class = 0;
  int64_t sup_class = -1;

  /// INFREF / SUPREF: bounds (0-based extent indices, inclusive) of the
  /// objects a reference may target. -1 for sup_ref means "extent end".
  int64_t inf_ref = 0;
  int64_t sup_ref = -1;

  /// DIST1..DIST4: reference types / class refs / class membership /
  /// object refs.
  DistributionSpec dist1_ref_types;
  DistributionSpec dist2_class_refs;
  DistributionSpec dist3_objects_in_classes;
  DistributionSpec dist4_object_refs;

  /// Fixed a-priori reference typing / class targets instead of DIST1/DIST2
  /// draws (the paper allows both). When set, sized [NC][MAXNREF(i)].
  std::vector<std::vector<uint16_t>> fixed_tref;
  std::vector<std::vector<int64_t>> fixed_cref;  ///< -1 entries mean NIL.

  /// Seed for the Lewis–Payne generator (database generation stream).
  uint64_t seed = 1998;

  uint32_t MaxNrefFor(uint32_t class_id) const {
    return per_class_max_nref.empty() ? max_nref
                                      : per_class_max_nref[class_id];
  }
  uint32_t BaseSizeFor(uint32_t class_id) const {
    return per_class_base_size.empty() ? base_size
                                       : per_class_base_size[class_id];
  }
  int64_t EffectiveSupClass() const {
    return sup_class < 0 ? static_cast<int64_t>(num_classes) - 1 : sup_class;
  }

  Status Validate() const;

  /// Renders the parameter set as a paper-Table-1-style ASCII table.
  std::string ToTableString() const;
};

/// The four OCB transaction classes (paper Fig. 3), plus the *generic
/// extension* of §5: the paper excluded operations that cannot benefit
/// from clustering (creation/update, scans) from the clustering-oriented
/// workload but names extending the transaction set as the path to "a
/// fully generic object-oriented benchmark". Types 4–7 implement that
/// extension; their occurrence probabilities default to 0, preserving
/// Table 2 semantics.
enum class TransactionType {
  kSetOriented = 0,      ///< Breadth-first on all references.
  kSimpleTraversal,      ///< Depth-first on all references.
  kHierarchyTraversal,   ///< Depth-first following one reference type.
  kStochasticTraversal,  ///< Random next link, p(N) = 1/2^N.
  // --- generic extension (paper §5) ---
  kUpdate,               ///< Rewrite one object (HyperModel "Editing").
  kInsert,               ///< Create + wire one object (OO1 "Insert").
  kDelete,               ///< Delete one object and unlink it.
  kScan,                 ///< Sequential scan of the root's class extent.
};
inline constexpr int kNumTransactionTypes = 8;

const char* TransactionTypeToString(TransactionType type);

/// \brief Paper Table 2 — workload parameters.
struct WorkloadParameters {
  /// SETDEPTH / SIMDEPTH / HIEDEPTH / STODEPTH.
  uint32_t set_depth = 3;
  uint32_t simple_depth = 3;
  uint32_t hierarchy_depth = 5;
  uint32_t stochastic_depth = 50;

  /// COLDN / HOTN: transactions in the cold and warm runs.
  uint64_t cold_transactions = 1000;
  uint64_t hot_transactions = 10000;

  /// THINK: average latency between transactions (simulated nanoseconds).
  uint64_t think_nanos = 0;

  /// PSET / PSIMPLE / PHIER / PSTOCH: occurrence probabilities
  /// (all eight probabilities must sum to 1).
  double p_set = 0.25;
  double p_simple = 0.25;
  double p_hierarchy = 0.25;
  double p_stochastic = 0.25;

  /// Generic-extension probabilities (paper §5; default 0 = the paper's
  /// clustering-oriented workload of Table 2).
  double p_update = 0.0;
  double p_insert = 0.0;
  double p_delete = 0.0;
  double p_scan = 0.0;

  /// RAND5 / DIST5: transaction root object distribution.
  DistributionSpec dist5_roots;

  /// Number of distinct objects transaction roots are drawn from
  /// (0 = every live object, the paper's default). A small pool models
  /// *stereotyped* workloads — OO1 and DSTC-CluB re-run their traversal
  /// from a handful of roots, which is precisely the access-pattern
  /// stereotypy the paper credits for DSTC-CluB's outsized gain (§4.3).
  /// The pool is a deterministic seed-derived sample of the live objects.
  uint64_t root_pool_size = 0;

  /// CLIENTN: number of concurrent clients.
  uint32_t client_count = 1;

  /// Runs every transaction under the 2PL concurrency-control subsystem
  /// (object locks, undo-log rollback, deadlock victims). Auto-enabled
  /// whenever client_count > 1; with a single client the default (false)
  /// keeps the seed's serialized path and its exact metrics.
  bool transactional = false;

  /// On the transactional path, runs read-only transaction types (the
  /// four traversals and Scan) as MVCC snapshot readers: a ReadView is
  /// pinned at begin, reads resolve through the version store without
  /// taking S locks, so readers never wait on writers and never abort.
  /// Disable to measure the pure-2PL baseline (readers block behind
  /// writers' X locks). Ignored on the legacy path.
  bool mvcc_snapshot_reads = true;

  /// Group-commit batch-size cap of the engine's commit pipeline
  /// (ProtocolRunner forwards it at construction). 1 = per-transaction
  /// commits through the same path — the baseline the group-commit
  /// bench section compares against.
  uint32_t group_commit_max_batch = 32;

  /// Deadlock victim policy applied engine-wide for the run (forwarded
  /// by ProtocolRunner and by Session::Begin via TxnOptions).
  DeadlockPolicy deadlock_policy = DeadlockPolicy::kCycleCloser;

  /// Reference type followed by hierarchy traversals (paper Fig. 3
  /// "Reference type" attribute). Default 1 = composition under
  /// Schema::DefaultTraits.
  uint16_t hierarchy_ref_type = 1;

  /// Probability that a transaction runs *reversed* (ascending the graphs
  /// through BackRefs). The paper states all transactions can be reversed
  /// but leaves the mix unspecified; default 0 keeps Table 2 semantics.
  double p_reverse = 0.0;

  /// Seed for the workload random stream (independent of generation).
  uint64_t seed = 2026;

  Status Validate() const;

  /// Renders the parameter set as a paper-Table-2-style ASCII table.
  std::string ToTableString() const;
};

}  // namespace ocb

#endif  // OCB_OCB_PARAMETERS_H_
