/// \file experiment.h
/// \brief The before/after-reclustering experiment harness behind the
///        paper's Tables 4 and 5.
///
/// Protocol (mirrors §4.3):
///   1. Generate the OCB database (generation-scope I/O).
///   2. Cold-restart the cache; attach the clustering policy.
///   3. Run the cold+warm workload — the "before reclustering" measurement;
///      the policy observes link crossings throughout.
///   4. Trigger Reorganize() ("when the system is idle") — its I/O is the
///      clustering overhead.
///   5. Cold-restart again and re-run the workload — the "after
///      reclustering" measurement.
///
/// The headline number reported by the paper is the mean number of I/Os
/// per transaction in the warm run, before vs after, and their ratio (the
/// "gain factor").

#ifndef OCB_OCB_EXPERIMENT_H_
#define OCB_OCB_EXPERIMENT_H_

#include <limits>
#include <memory>
#include <string>

#include "clustering/policy.h"
#include "ocb/client.h"
#include "ocb/generator.h"
#include "ocb/metrics.h"
#include "ocb/presets.h"
#include "oodb/database.h"
#include "storage/storage_options.h"

namespace ocb {

/// Configuration of one before/after experiment.
struct ExperimentConfig {
  OcbPreset preset;
  StorageOptions storage;

  ExperimentConfig() {
    // The paper's setup has the database much larger than main memory
    // (15 MB DB vs 8 MB RAM). Default to a 256-page (1 MB) pool so a
    // ~20000-object OCB database spills, as in the paper; benches override
    // as needed.
    storage.buffer_pool_pages = 256;
  }
};

/// All measurements from one before/after experiment.
struct BeforeAfterResult {
  std::string policy_name;
  GenerationReport generation;
  MultiClientReport before;
  MultiClientReport after;
  uint64_t clustering_overhead_io = 0;  ///< Reorganization I/O (scope).
  ClusteringStats policy_stats;

  /// Mean warm-run I/Os per transaction, before / after reclustering —
  /// the quantities of paper Tables 4 and 5.
  double ios_before() const {
    return before.merged.warm.mean_ios_per_transaction();
  }
  double ios_after() const {
    return after.merged.warm.mean_ios_per_transaction();
  }
  /// Paper Tables 4/5 "Gain Factor". A zero after-cost with a non-zero
  /// before-cost is an unbounded win (the whole warm working set became
  /// cache-resident) and reports +infinity.
  double gain_factor() const {
    if (ios_after() == 0.0) {
      return ios_before() == 0.0
                 ? 1.0
                 : std::numeric_limits<double>::infinity();
    }
    return ios_before() / ios_after();
  }
};

/// \brief Runs the full generate → before → reorganize → after pipeline
/// with \p policy attached. The Database is created and owned internally.
Result<BeforeAfterResult> RunBeforeAfterExperiment(
    const ExperimentConfig& config, ClusteringPolicy* policy);

/// \brief Variant reusing an already generated database: \p db must hold a
/// generated OCB database; runs steps 2-5 only. Allows comparing policies
/// on identical physical layouts (the caller re-generates in between).
Result<BeforeAfterResult> RunBeforeAfterOnDatabase(
    Database* db, const WorkloadParameters& workload,
    ClusteringPolicy* policy);

}  // namespace ocb

#endif  // OCB_OCB_EXPERIMENT_H_
