#include "ocb/generator.h"

#include <algorithm>
#include <chrono>

#include "util/format.h"

namespace ocb {

Result<GenerationReport> GenerateDatabase(const DatabaseParameters& params,
                                          Database* db) {
  OCB_RETURN_NOT_OK(params.Validate());
  if (db->object_count() != 0) {
    return Status::InvalidArgument("database is not empty");
  }
  const auto wall_start = std::chrono::steady_clock::now();
  const uint64_t sim_start = db->sim_clock()->now_nanos();
  ScopedIoScope scope(db->disk(), IoScope::kGeneration);

  LewisPayneRng rng(params.seed);
  GenerationReport report;

  // ---- Step 1: schema instantiation (classes, then inter-class refs) ----
  Schema schema;
  schema.SetRefTypes(Schema::DefaultTraits(params.num_ref_types));
  for (ClassId i = 0; i < params.num_classes; ++i) {
    ClassDescriptor cls;
    cls.id = i;
    cls.maxnref = params.MaxNrefFor(i);
    cls.basesize = params.BaseSizeFor(i);
    cls.instance_size = cls.basesize;  // Finalized by ComputeInstanceSizes.
    cls.tref.resize(cls.maxnref);
    cls.cref.assign(cls.maxnref, kNullClass);
    for (uint32_t j = 0; j < cls.maxnref; ++j) {
      if (!params.fixed_tref.empty()) {
        cls.tref[j] = params.fixed_tref[i][j];
      } else {
        cls.tref[j] = static_cast<RefTypeId>(DrawFromDistribution(
            params.dist1_ref_types, &rng, 0, params.num_ref_types - 1));
      }
    }
    OCB_RETURN_NOT_OK(schema.AddClass(std::move(cls)));
    ++report.classes_created;
  }
  const int64_t sup_class = params.EffectiveSupClass();
  for (ClassId i = 0; i < params.num_classes; ++i) {
    ClassDescriptor& cls = schema.GetMutableClass(i);
    for (uint32_t j = 0; j < cls.maxnref; ++j) {
      if (!params.fixed_cref.empty()) {
        const int64_t fixed = params.fixed_cref[i][j];
        cls.cref[j] =
            fixed < 0 ? kNullClass : static_cast<ClassId>(fixed);
      } else {
        cls.cref[j] = static_cast<ClassId>(DrawFromDistribution(
            params.dist2_class_refs, &rng, params.inf_class, sup_class,
            /*center=*/i));
      }
    }
  }

  // ---- Step 2: consistency check-up ----
  report.cycles_removed = schema.RemoveCycles();
  schema.ComputeInstanceSizes();
  OCB_RETURN_NOT_OK(schema.Validate());
  db->SetSchema(std::move(schema));

  // ---- Step 3: object instantiation ----
  // 3a. Create the objects; class membership per DIST3.
  std::vector<Oid> all_objects;
  all_objects.reserve(params.num_objects);
  for (uint64_t n = 0; n < params.num_objects; ++n) {
    const ClassId cls = static_cast<ClassId>(DrawFromDistribution(
        params.dist3_objects_in_classes, &rng, 0, params.num_classes - 1));
    OCB_ASSIGN_OR_RETURN(Oid oid, db->CreateObject(cls));
    all_objects.push_back(oid);
    ++report.objects_created;
  }

  // 3b. Bind inter-object references; reverse refs are maintained by
  // Database::SetReference. Iterate per class extent, as Fig. 2 does.
  const Schema& sch = db->schema();
  for (ClassId i = 0; i < params.num_classes; ++i) {
    const ClassDescriptor& cls = sch.GetClass(i);
    // Copy: SetReference never changes extents, but be defensive about
    // iterator stability across the loop.
    const std::vector<Oid> extent = cls.iterator;
    for (size_t j = 0; j < extent.size(); ++j) {
      for (uint32_t k = 0; k < cls.maxnref; ++k) {
        const ClassId target_class = cls.cref[k];
        if (target_class == kNullClass) {
          ++report.nil_references;
          continue;
        }
        const auto& target_extent = sch.GetClass(target_class).iterator;
        if (target_extent.empty()) {
          ++report.nil_references;
          continue;
        }
        // Draw an extent index l in [INFREF, SUPREF] ∩ [0, count-1];
        // DIST4's locality center is the source's own extent position
        // (OO1's "Part #i links near #i" transposed to extents).
        const int64_t hi_bound =
            params.sup_ref < 0
                ? static_cast<int64_t>(target_extent.size()) - 1
                : std::min<int64_t>(
                      params.sup_ref,
                      static_cast<int64_t>(target_extent.size()) - 1);
        const int64_t lo_bound = std::min<int64_t>(params.inf_ref, hi_bound);
        const int64_t l = DrawFromDistribution(
            params.dist4_object_refs, &rng, lo_bound, hi_bound,
            /*center=*/static_cast<int64_t>(j));
        const Oid target = target_extent[static_cast<size_t>(l)];
        Status st = db->SetReference(extent[j], k, target);
        if (st.IsNoSpace()) {
          ++report.backref_overflows;  // Target's backref array is full.
          ++report.nil_references;
          continue;
        }
        OCB_RETURN_NOT_OK(st);
        ++report.references_bound;
      }
    }
  }

  OCB_RETURN_NOT_OK(db->buffer_pool()->FlushAll());

  const auto wall_end = std::chrono::steady_clock::now();
  report.wall_micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(wall_end -
                                                            wall_start)
          .count());
  report.sim_nanos = db->sim_clock()->now_nanos() - sim_start;
  report.generation_ios =
      db->disk()->counters(IoScope::kGeneration).total();
  report.data_pages = db->object_store()->stats().data_pages;
  report.database_bytes = db->object_store()->stats().bytes_stored;
  return report;
}

}  // namespace ocb
