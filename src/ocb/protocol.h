/// \file protocol.h
/// \brief OCB's execution protocol (paper §3.3): per client, a cold run of
///        COLDN transactions (to fill the cache and reach the clustering
///        algorithm's stationary behaviour) followed by a warm run of HOTN
///        transactions; an optional THINK latency separates transactions.
///
/// Transaction types are drawn per PSET..PSTOCH; the root object is drawn
/// per DIST5 over the live objects. Metrics are recorded separately for the
/// cold and warm phases.

#ifndef OCB_OCB_PROTOCOL_H_
#define OCB_OCB_PROTOCOL_H_

#include <cstdint>
#include <vector>

#include "ocb/metrics.h"
#include "ocb/parameters.h"
#include "ocb/transaction.h"
#include "oodb/database.h"
#include "util/rng.h"

namespace ocb {

/// \brief Runs the cold/warm protocol for one client.
class ProtocolRunner {
 public:
  /// \param client_id Offsets the RNG stream so concurrent clients draw
  ///        independent transaction sequences from one WorkloadParameters.
  ProtocolRunner(Database* db, const WorkloadParameters& params,
                 uint32_t client_id = 0);

  /// Executes COLDN + HOTN transactions; returns per-phase metrics.
  Result<WorkloadMetrics> Run();

  /// Runs only \p count transactions into \p out (building block used by
  /// Run and by ablation benches that want custom phases).
  Status RunPhase(uint64_t count, PhaseMetrics* out);

 private:
  /// Draws a pool index per DIST5 and validates liveness: a stale entry
  /// (its object died under a Delete transaction — ours or a concurrent
  /// client's) is swapped for a random live object before being returned,
  /// so the pool never hands out dead roots no matter *which* entry went
  /// stale.
  Oid DrawRoot();

  /// Swaps pool entry \p index for a random live object.
  void ReplaceRootAt(size_t index);

  /// Swaps the most recently drawn pool entry (called when a Delete
  /// transaction consumed the root).
  void ReplaceLastRoot() { ReplaceRootAt(last_root_index_); }

  Database* db_;
  WorkloadParameters params_;
  TransactionExecutor executor_;
  LewisPayneRng rng_;
  std::vector<Oid> root_pool_;  ///< Snapshot of live oids for DIST5 draws.
  size_t last_root_index_ = 0;
};

}  // namespace ocb

#endif  // OCB_OCB_PROTOCOL_H_
