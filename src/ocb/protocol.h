/// \file protocol.h
/// \brief OCB's execution protocol (paper §3.3): per client, a cold run of
///        COLDN transactions (to fill the cache and reach the clustering
///        algorithm's stationary behaviour) followed by a warm run of HOTN
///        transactions; an optional THINK latency separates transactions.
///
/// Transaction types are drawn per PSET..PSTOCH; the root object is drawn
/// per DIST5 over the live objects. Metrics are recorded separately for the
/// cold and warm phases.
///
/// Like the executor, the runner is a template over the engine:
/// ProtocolRunnerT<Database> (alias ProtocolRunner) and
/// ProtocolRunnerT<ShardedDatabase> run the identical protocol.

#ifndef OCB_OCB_PROTOCOL_H_
#define OCB_OCB_PROTOCOL_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <vector>

#include "ocb/metrics.h"
#include "ocb/parameters.h"
#include "ocb/transaction.h"
#include "oodb/database.h"
#include "util/rng.h"

namespace ocb {

/// \brief Runs the cold/warm protocol for one client.
template <typename DB>
class ProtocolRunnerT {
 public:
  /// \param client_id Offsets the RNG stream so concurrent clients draw
  ///        independent transaction sequences from one WorkloadParameters.
  ProtocolRunnerT(DB* db, const WorkloadParameters& params,
                  uint32_t client_id = 0);

  /// Executes COLDN + HOTN transactions; returns per-phase metrics.
  Result<WorkloadMetrics> Run();

  /// Runs only \p count transactions into \p out (building block used by
  /// Run and by ablation benches that want custom phases).
  Status RunPhase(uint64_t count, PhaseMetrics* out);

 private:
  /// Draws a pool index per DIST5 and validates liveness: a stale entry
  /// (its object died under a Delete transaction — ours or a concurrent
  /// client's) is swapped for a random live object before being returned,
  /// so the pool never hands out dead roots no matter *which* entry went
  /// stale.
  Oid DrawRoot();

  /// Swaps pool entry \p index for a random live object.
  void ReplaceRootAt(size_t index);

  /// Swaps the most recently drawn pool entry (called when a Delete
  /// transaction consumed the root).
  void ReplaceLastRoot() { ReplaceRootAt(last_root_index_); }

  DB* db_;
  WorkloadParameters params_;
  TransactionExecutorT<DB> executor_;
  LewisPayneRng rng_;
  std::vector<Oid> root_pool_;  ///< Snapshot of live oids for DIST5 draws.
  size_t last_root_index_ = 0;
};

/// The single-store runner (the historical name).
using ProtocolRunner = ProtocolRunnerT<Database>;

// --- Template implementation -----------------------------------------------

template <typename DB>
ProtocolRunnerT<DB>::ProtocolRunnerT(DB* db,
                                     const WorkloadParameters& params,
                                     uint32_t client_id)
    : db_(db), params_(params), executor_(db, params_),
      rng_(params.seed + 0x9E3779B9ULL * (client_id + 1)) {
  root_pool_ = db_->LiveOidsSnapshot();
  if (params_.root_pool_size > 0 &&
      params_.root_pool_size < root_pool_.size()) {
    // Deterministic sample shared by all clients: derived from the
    // workload seed only, not the per-client stream.
    LewisPayneRng pool_rng(params_.seed);
    std::shuffle(root_pool_.begin(), root_pool_.end(), pool_rng);
    root_pool_.resize(params_.root_pool_size);
  }
  const bool txn_mode = params_.transactional || params_.client_count > 1;
  executor_.set_transactional(txn_mode);
  if (txn_mode) {
    // Propagate the run-wide engine knobs: the MVCC choice (a disabled
    // run — the pure-2PL baseline — skips version publication entirely),
    // the group-commit batch cap, and the deadlock victim policy. All
    // clients of one run share the same parameters, so concurrent
    // construction writes the same values.
    db_->SetMvccEnabled(params_.mvcc_snapshot_reads);
    db_->SetGroupCommitMaxBatch(params_.group_commit_max_batch);
    db_->SetDeadlockPolicy(params_.deadlock_policy);
  }
}

template <typename DB>
Oid ProtocolRunnerT<DB>::DrawRoot() {
  if (root_pool_.empty()) return kInvalidOid;
  last_root_index_ = static_cast<size_t>(DrawFromDistribution(
      params_.dist5_roots, &rng_, 0,
      static_cast<int64_t>(root_pool_.size()) - 1));
  // A Delete transaction may have killed *any* pool entry, not only the
  // last one drawn (its root's neighborhood is untouched, but other
  // entries can alias the deleted object); validate on draw and repair
  // stale entries in place. The replacement is drawn from the live set, so
  // one swap suffices — under concurrent clients a freshly drawn object
  // can still die before use, which Execute tolerates as NotFound.
  if (!db_->ContainsObject(root_pool_[last_root_index_])) {
    ReplaceRootAt(last_root_index_);
  }
  return root_pool_[last_root_index_];
}

template <typename DB>
void ProtocolRunnerT<DB>::ReplaceRootAt(size_t index) {
  // The entry's object was deleted by a Delete transaction (ours or a
  // concurrent client's); adopt a random live object in its place so the
  // workload follows the evolving database instead of starving.
  const std::vector<Oid> live = db_->LiveOidsSnapshot();
  if (live.empty()) return;
  root_pool_[index] = live[static_cast<size_t>(
      rng_.UniformInt(0, static_cast<int64_t>(live.size()) - 1))];
}

template <typename DB>
Status ProtocolRunnerT<DB>::RunPhase(uint64_t count, PhaseMetrics* out) {
  const auto wall_start = std::chrono::steady_clock::now();
  const IoCounters io_start = db_->IoCountersFor(IoScope::kTransaction);
  const BufferPoolStats pool_start = db_->PoolStats();

  ScopedEngineIoScope<DB> scope(db_, IoScope::kTransaction);
  for (uint64_t i = 0; i < count; ++i) {
    const TransactionType type = executor_.DrawType(&rng_);
    const bool reversed =
        params_.p_reverse > 0.0 && rng_.Bernoulli(params_.p_reverse);
    const Oid root = DrawRoot();
    if (root == kInvalidOid) {
      return Status::Aborted("no live objects to draw a root from");
    }
    auto result = executor_.Execute(type, root, reversed, &rng_);
    if (!result.ok()) {
      // A deleted root is tolerated: adopt a live replacement into the
      // pool and move on. Anything else aborts the phase.
      if (result.status().IsNotFound()) {
        ReplaceLastRoot();
        continue;
      }
      return result.status();
    }
    out->lock_wait_nanos += result->lock_wait_nanos;
    out->facade_wait_nanos += result->facade_wait_nanos;
    out->page_latch_wait_nanos += result->page_latch_wait_nanos;
    out->snapshot_reads += result->snapshot_reads;
    out->twopc_nanos += result->twopc_nanos;
    // Tail distributions (sums above hide what victim policies change):
    // lock wait over committed AND aborted txns, like the sum.
    if (result->lock_wait_nanos > 0) {
      out->lock_wait_histogram.Record(result->lock_wait_nanos);
    }
    if (result->read_only && !result->aborted) ++out->read_only_commits;
    if (result->aborted) {
      // Deadlock victim (or lock timeout): the txn rolled back — its root
      // is still live and nothing it did counts toward the aggregates.
      ++out->aborts;
      continue;
    }
    if (result->commit_nanos > 0) {
      out->commit_latency_histogram.Record(result->commit_nanos);
    }
    if (result->twopc_nanos > 0) {
      out->twopc_histogram.Record(result->twopc_nanos);
    }
    if (result->cross_shard) ++out->cross_shard_commits;
    if (type == TransactionType::kDelete) {
      // The transaction consumed its root; keep the pool live.
      ReplaceLastRoot();
    }
    out->per_type[static_cast<size_t>(result->type)].Record(
        result->sim_nanos, result->objects_accessed, result->io_reads);
    out->global.Record(result->sim_nanos, result->objects_accessed,
                       result->io_reads);

    if (params_.think_nanos > 0) {
      db_->AdvanceSimClock(params_.think_nanos);
    }
  }

  const IoCounters io_end = db_->IoCountersFor(IoScope::kTransaction);
  const BufferPoolStats pool_end = db_->PoolStats();
  out->transaction_io_reads += io_end.reads - io_start.reads;
  out->transaction_io_writes += io_end.writes - io_start.writes;
  out->buffer_hits += pool_end.hits - pool_start.hits;
  out->buffer_misses += pool_end.misses - pool_start.misses;
  out->wall_micros += static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - wall_start)
          .count());
  return Status::OK();
}

template <typename DB>
Result<WorkloadMetrics> ProtocolRunnerT<DB>::Run() {
  OCB_RETURN_NOT_OK(params_.Validate());
  WorkloadMetrics metrics;
  const uint64_t clustering_start =
      db_->IoCountersFor(IoScope::kClustering).total();
  OCB_RETURN_NOT_OK(RunPhase(params_.cold_transactions, &metrics.cold));
  OCB_RETURN_NOT_OK(RunPhase(params_.hot_transactions, &metrics.warm));
  metrics.clustering_io =
      db_->IoCountersFor(IoScope::kClustering).total() - clustering_start;
  return metrics;
}

}  // namespace ocb

#endif  // OCB_OCB_PROTOCOL_H_
