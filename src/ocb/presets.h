/// \file presets.h
/// \brief Canned OCB parameterizations.
///
/// OCB's genericity claim (paper §3.1, §5) is that its database can be
/// tuned to fit the databases of the main existing benchmarks. These
/// presets encode: the paper's defaults (Tables 1+2), the DSTC-CluB
/// approximation of paper Table 3 (used for Table 4), and approximations
/// of OO1, HyperModel and OO7-small used by the genericity bench.

#ifndef OCB_OCB_PRESETS_H_
#define OCB_OCB_PRESETS_H_

#include "ocb/parameters.h"

namespace ocb {

/// A full OCB configuration: database + workload.
struct OcbPreset {
  const char* name;
  DatabaseParameters database;
  WorkloadParameters workload;
};

namespace presets {

/// Paper Tables 1 + 2 defaults.
OcbPreset Default();

/// Paper Table 3: OCB tuned to approximate DSTC-CluB's database — two
/// classes, 3 references, constant distributions, OO1-style RefZone
/// locality — plus DSTC-CluB's workload (pure depth-first traversal of
/// 7 hops, OO1's traversal).
///
/// \param ref_zone OO1 locality half-width (DSTC-CluB inherits OO1's
///        reference zone; 100 is 0.5% of the 20000-part database).
OcbPreset DstcClubApprox(int64_t ref_zone = 100);

/// OO1/Cattell approximation: same database as DstcClubApprox, workload
/// mixing lookups (modeled as depth-0 set accesses) and traversals.
OcbPreset OO1Approx(int64_t ref_zone = 100);

/// HyperModel approximation: one node hierarchy with aggregation fan-out 5,
/// M-N partOf links and refTo associations.
OcbPreset HyperModelApprox();

/// OO7-small approximation: a 10-class design hierarchy (modules,
/// assemblies, composite parts, atomic parts, documentation).
OcbPreset OO7SmallApprox();

}  // namespace presets

}  // namespace ocb

#endif  // OCB_OCB_PRESETS_H_
