#include "ocb/presets.h"

namespace ocb {
namespace presets {

OcbPreset Default() {
  OcbPreset preset;
  preset.name = "OCB-default";
  // Struct defaults are exactly paper Tables 1 + 2.
  return preset;
}

OcbPreset DstcClubApprox(int64_t ref_zone) {
  OcbPreset preset;
  preset.name = "OCB-as-DSTC-CluB";

  DatabaseParameters& db = preset.database;
  db.num_classes = 2;      // Part + Connection.
  db.max_nref = 3;         // Each part connects to three parts.
  db.base_size = 50;
  db.num_objects = 20000;
  db.num_ref_types = 3;
  db.inf_class = 0;
  db.sup_class = -1;       // SUPCLASS = NC.
  // DIST1..DIST3 constant (paper Table 3): every reference slot carries
  // type 2 (a plain association — the part graph is cyclic), every class
  // reference targets class 0 (Part), every object instantiates class 0.
  db.dist1_ref_types = DistributionSpec::Constant(2);
  db.dist2_class_refs = DistributionSpec::Constant(0);
  db.dist3_objects_in_classes = DistributionSpec::Constant(0);
  // DIST4 "Special": INFREF/SUPREF = PartId ± RefZone with OO1's 0.9
  // locality probability.
  db.dist4_object_refs = DistributionSpec::SpecialRefZone(ref_zone, 0.9);

  WorkloadParameters& wl = preset.workload;
  // DSTC-CluB runs a single transaction type: OO1's traversal — depth
  // first, seven hops, all references — repeatedly from a small root set
  // (the stereotypy the paper credits for CluB's outsized gain, §4.3).
  wl.p_set = 0.0;
  wl.p_simple = 1.0;
  wl.p_hierarchy = 0.0;
  wl.p_stochastic = 0.0;
  wl.simple_depth = 7;
  wl.root_pool_size = 32;
  return preset;
}

OcbPreset OO1Approx(int64_t ref_zone) {
  OcbPreset preset = DstcClubApprox(ref_zone);
  preset.name = "OCB-as-OO1";
  WorkloadParameters& wl = preset.workload;
  // OO1 runs lookups (random point accesses — set accesses of depth 0)
  // and traversals in equal parts; inserts are outside OCB's
  // clustering-oriented transaction set (paper §3.3 excludes updates).
  wl.p_set = 0.5;
  wl.p_simple = 0.5;
  wl.p_hierarchy = 0.0;
  wl.p_stochastic = 0.0;
  wl.set_depth = 0;  // A pure lookup: access the root only.
  wl.simple_depth = 7;
  return preset;
}

OcbPreset HyperModelApprox() {
  OcbPreset preset;
  preset.name = "OCB-as-HyperModel";

  DatabaseParameters& db = preset.database;
  // HyperModel: one extended-hypertext Node hierarchy. Relationships:
  // parent/children aggregation (fan-out 5), partOf/parts M-N, refTo/
  // refFrom association, plus attribute inheritance. Approximated with 5
  // node-like classes whose slots carry inheritance (0), aggregation (1)
  // and association (2) types.
  db.num_classes = 5;
  db.max_nref = 7;  // 5 children + 1 partOf + 1 refTo.
  db.base_size = 40;
  db.num_objects = 15625;  // HyperModel's five full aggregation levels.
  db.num_ref_types = 3;
  db.dist1_ref_types = DistributionSpec::Uniform();
  db.dist2_class_refs = DistributionSpec::Uniform();
  db.dist3_objects_in_classes = DistributionSpec::Uniform();
  // Aggregation links are local (children are created near parents).
  db.dist4_object_refs = DistributionSpec::SpecialRefZone(50, 0.9);

  WorkloadParameters& wl = preset.workload;
  // HyperModel operations ≈ group lookups (breadth-first one level),
  // closure traversals (depth-first to a predefined depth) and reference
  // lookups (reverse group lookups).
  wl.p_set = 0.4;
  wl.p_simple = 0.3;
  wl.p_hierarchy = 0.3;
  wl.p_stochastic = 0.0;
  wl.set_depth = 1;        // Group lookup: one level.
  wl.simple_depth = 5;     // Closure traversal depth (HyperModel's 25 is
                           // infeasible with fan-out 7; 5 keeps the shape).
  wl.hierarchy_depth = 5;
  wl.p_reverse = 0.25;     // Reference lookup = reverse group lookup.
  return preset;
}

OcbPreset OO7SmallApprox() {
  OcbPreset preset;
  preset.name = "OCB-as-OO7-small";

  DatabaseParameters& db = preset.database;
  // OO7-small: Module → 7-level complex assembly tree (fan-out 3) →
  // base assemblies → 3 composite parts each → graphs of 20 atomic parts
  // (fan-out 3) + documentation. Ten classes with heterogeneous sizes.
  db.num_classes = 10;
  db.per_class_max_nref = {3, 3, 3, 3, 3, 3, 4, 3, 2, 1};
  db.per_class_base_size = {100, 80, 80, 80, 80, 60, 120, 40, 2000, 200};
  db.num_objects = 12000;
  db.num_ref_types = 4;
  db.dist1_ref_types = DistributionSpec::Uniform();
  db.dist2_class_refs = DistributionSpec::Uniform();
  db.dist3_objects_in_classes = DistributionSpec::Uniform();
  db.dist4_object_refs = DistributionSpec::SpecialRefZone(30, 0.9);

  WorkloadParameters& wl = preset.workload;
  // OO7's T1 (full traversal) ≈ deep simple traversal; T6 ≈ hierarchy
  // traversal touching one link type; Q1 (lookup) ≈ depth-0 set access.
  wl.p_set = 0.25;
  wl.p_simple = 0.35;
  wl.p_hierarchy = 0.4;
  wl.p_stochastic = 0.0;
  wl.set_depth = 0;
  wl.simple_depth = 6;
  wl.hierarchy_depth = 7;
  return preset;
}

}  // namespace presets
}  // namespace ocb
