/// \file metrics.h
/// \brief OCB's measurements (paper §3.3): database response time (global
///        and per transaction type), number of accessed objects (idem),
///        and I/O counts — transaction I/Os vs clustering overhead I/Os.

#ifndef OCB_OCB_METRICS_H_
#define OCB_OCB_METRICS_H_

#include <array>
#include <cstdint>
#include <string>

#include "ocb/parameters.h"
#include "storage/buffer_pool.h"
#include "util/stats.h"

namespace ocb {

/// Per-transaction-type aggregates.
struct TypeMetrics {
  uint64_t transactions = 0;
  Accumulator response_nanos;    ///< Simulated response time / transaction.
  Accumulator objects_accessed;  ///< Objects touched / transaction.
  Accumulator io_reads;          ///< Transaction-scope reads / transaction.
  Histogram response_histogram;  ///< Response-time distribution (p50/p99).

  void Record(uint64_t nanos, uint64_t objects, uint64_t reads) {
    ++transactions;
    response_nanos.Add(static_cast<double>(nanos));
    objects_accessed.Add(static_cast<double>(objects));
    io_reads.Add(static_cast<double>(reads));
    response_histogram.Record(nanos);
  }

  void Merge(const TypeMetrics& other) {
    transactions += other.transactions;
    response_nanos.Merge(other.response_nanos);
    objects_accessed.Merge(other.objects_accessed);
    io_reads.Merge(other.io_reads);
    response_histogram.Merge(other.response_histogram);
  }
};

/// \brief Aggregate result of one protocol phase (cold run or warm run).
struct PhaseMetrics {
  std::array<TypeMetrics, kNumTransactionTypes> per_type;
  TypeMetrics global;

  /// Transaction-scope I/O totals over the phase.
  uint64_t transaction_io_reads = 0;
  uint64_t transaction_io_writes = 0;

  /// Buffer-pool behaviour over the phase.
  uint64_t buffer_hits = 0;
  uint64_t buffer_misses = 0;

  uint64_t wall_micros = 0;  ///< Real time spent executing the phase.

  /// Concurrency-control behaviour (2PL path; zero on the legacy path).
  /// Aborted transactions are rolled back and excluded from the response /
  /// object / I/O aggregates above; lock-wait time accumulates over both
  /// committed and aborted transactions.
  uint64_t aborts = 0;
  uint64_t lock_wait_nanos = 0;

  /// Latch behaviour (physical wait, all transactions of the phase): time
  /// client threads spent blocked on the Database facade latch vs on page
  /// latches. With per-page latching the facade component collapses to the
  /// catalog latch's short critical sections; the serialize-physical
  /// baseline re-creates the old big-latch convoy and shows up here.
  uint64_t facade_wait_nanos = 0;
  uint64_t page_latch_wait_nanos = 0;

  /// MVCC behaviour (zero when snapshot reads are disabled): transactions
  /// that ran as snapshot readers (pinned ReadView, no locks) and the
  /// object reads they served through it.
  uint64_t read_only_commits = 0;
  uint64_t snapshot_reads = 0;

  /// Sharded-execution behaviour (zero on a single Database): committed
  /// transactions whose footprint spanned more than one shard, and the
  /// wall time spent inside the coordinator's two-phase commit paths
  /// (all transactions of the phase — the 2PC overhead number).
  uint64_t cross_shard_commits = 0;
  uint64_t twopc_nanos = 0;

  /// Tail distributions of the per-transaction wall-time components
  /// (nanoseconds; util/stats.h log-bucket histograms, so they exist in
  /// every build — independent of the obs layer / OCB_OBS). Sums hide
  /// the tail that deadlock-victim policies actually change; p50/p95/p99
  /// of these are what bench_multiclient and BENCH_*.json report.
  ///
  ///   * lock_wait_histogram — one sample per transaction with nonzero
  ///     lock wait (committed and aborted alike).
  ///   * commit_latency_histogram — one sample per committed
  ///     transactional commit (the Commit() call, incl. group-commit
  ///     queue time).
  ///   * twopc_histogram — one sample per transaction that paid a 2PC
  ///     section (cross-shard writers).
  Histogram lock_wait_histogram;
  Histogram commit_latency_histogram;
  Histogram twopc_histogram;

  void Merge(const PhaseMetrics& other);

  double mean_ios_per_transaction() const {
    return global.io_reads.mean();
  }
  double buffer_hit_ratio() const {
    const uint64_t total = buffer_hits + buffer_misses;
    return total == 0 ? 0.0 : static_cast<double>(buffer_hits) / total;
  }

  /// Aborted / attempted transactions (0 when nothing ran).
  double abort_rate() const {
    const uint64_t attempted = global.transactions + aborts;
    return attempted == 0 ? 0.0
                          : static_cast<double>(aborts) / attempted;
  }

  /// Per-type + global summary table.
  std::string ToTableString(const std::string& title) const;
};

/// \brief Full workload result: cold phase, warm phase, clustering overhead.
struct WorkloadMetrics {
  PhaseMetrics cold;
  PhaseMetrics warm;

  /// Clustering-scope I/Os charged during the run (observation upkeep and
  /// reorganizations triggered mid-run).
  uint64_t clustering_io = 0;

  void Merge(const WorkloadMetrics& other) {
    cold.Merge(other.cold);
    warm.Merge(other.warm);
    clustering_io += other.clustering_io;
  }
};

}  // namespace ocb

#endif  // OCB_OCB_METRICS_H_
