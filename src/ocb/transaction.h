/// \file transaction.h
/// \brief OCB's transaction classes (paper Fig. 3 / §3.3).
///
/// Each transaction proceeds from a randomly chosen root object up to a
/// predefined depth:
///
///   * Set-oriented access — breadth-first on all the references
///     ([McIver & King]'s set-oriented accesses match breadth-first).
///   * Simple traversal — depth-first on all the references.
///   * Hierarchy traversal — depth-first, always following the same
///     reference type.
///   * Stochastic traversal — selects the next link at random: at each
///     step the probability to follow reference number N is p(N) = 1/2^N
///     (approaching Markov-chain access patterns, per Tsangaris &
///     Naughton).
///
/// Every transaction can be reversed, "ascending" the graphs by following
/// BackRefs instead of ORefs. Duplicates are possible along a traversal
/// (as in OO1's 3280-part traversal); the executor does not deduplicate.

#ifndef OCB_OCB_TRANSACTION_H_
#define OCB_OCB_TRANSACTION_H_

#include <cstdint>

#include "oodb/database.h"
#include "ocb/parameters.h"
#include "util/rng.h"
#include "util/status.h"

namespace ocb {

/// Result of executing one transaction.
struct TransactionResult {
  TransactionType type = TransactionType::kSetOriented;
  Oid root = kInvalidOid;
  bool reversed = false;
  bool aborted = false;     ///< Deadlock victim / lock timeout, rolled back.
  bool read_only = false;   ///< Ran as an MVCC snapshot reader (ReadView).
  uint64_t objects_accessed = 0;
  uint64_t sim_nanos = 0;   ///< Simulated response time.
  uint64_t io_reads = 0;    ///< Transaction-scope page reads incurred.
  uint64_t lock_wait_nanos = 0;  ///< Wall time blocked on object locks.
  uint64_t snapshot_reads = 0;   ///< Reads served through the ReadView.

  /// Wall time this transaction's thread spent blocked on *latches*
  /// (physical, operation-lifetime — distinct from lock_wait_nanos above):
  /// the Database facade/catalog latch vs page-level latches. The split is
  /// the headline measurement of the per-page-latching refactor — in
  /// serialize-physical mode facade wait dominates, with page latches it
  /// collapses to the catalog latch's short critical sections.
  uint64_t facade_wait_nanos = 0;
  uint64_t page_latch_wait_nanos = 0;
};

/// True for transaction types that only read (the four traversals and
/// Scan): candidates for MVCC snapshot execution.
bool IsReadOnlyTransactionType(TransactionType type);

/// \brief Executes OCB transactions against a Database.
///
/// Stateless apart from configuration; one executor per client thread
/// (each with its own RNG). In *transactional* mode every Execute runs
/// inside a Database transaction: object locks via strict 2PL, undo-log
/// rollback when the transaction is chosen as a deadlock victim (reported
/// through TransactionResult::aborted, not an error status). Read-only
/// transaction types additionally run as MVCC snapshot readers when
/// WorkloadParameters::mvcc_snapshot_reads is set — no S locks, no lock
/// waits, no aborts. In the default legacy mode Execute behaves exactly
/// as the seed did — facade-serialized, never aborted.
class TransactionExecutor {
 public:
  TransactionExecutor(Database* db, const WorkloadParameters& params)
      : db_(db), params_(params) {}

  /// Enables/disables the 2PL transactional path (default off).
  void set_transactional(bool on) { transactional_ = on; }
  bool transactional() const { return transactional_; }

  /// Runs one transaction of \p type from \p root. \p rng drives the
  /// stochastic traversal's link choices only.
  Result<TransactionResult> Execute(TransactionType type, Oid root,
                                    bool reversed, LewisPayneRng* rng);

  /// Draws a transaction type according to PSET..PSTOCH.
  TransactionType DrawType(LewisPayneRng* rng) const;

 private:
  uint64_t SetOriented(const Object& root, uint32_t depth, bool reversed);
  uint64_t DepthFirst(const Object& node, uint32_t depth, bool reversed);
  uint64_t Hierarchy(const Object& node, uint32_t depth, RefTypeId type,
                     bool reversed);
  uint64_t Stochastic(const Object& node, uint32_t depth, bool reversed,
                      LewisPayneRng* rng);

  /// Follows one link with observer notification; returns the target or
  /// an error when the target vanished (concurrent delete). A
  /// Status::Aborted from the lock manager additionally latches
  /// txn_failure_ so traversals unwind promptly.
  Result<Object> Follow(const Object& from, size_t slot_or_backref_index,
                        bool reversed);

  /// True while the in-flight transaction must be rolled back.
  bool failed() const { return !txn_failure_.ok(); }

  Database* db_;
  const WorkloadParameters& params_;
  bool transactional_ = false;
  TransactionContext* txn_ = nullptr;  ///< In-flight txn (Execute scope).
  Status txn_failure_;                 ///< First Aborted seen this txn.
};

}  // namespace ocb

#endif  // OCB_OCB_TRANSACTION_H_
