/// \file transaction.h
/// \brief OCB's workload transaction executor (paper Fig. 3 / §3.3).
///
/// Each workload transaction proceeds from a randomly chosen root object
/// up to a predefined depth:
///
///   * Set-oriented access — breadth-first on all the references
///     ([McIver & King]'s set-oriented accesses match breadth-first).
///   * Simple traversal — depth-first on all the references.
///   * Hierarchy traversal — depth-first, always following the same
///     reference type.
///   * Stochastic traversal — selects the next link at random: at each
///     step the probability to follow reference number N is p(N) = 1/2^N
///     (approaching Markov-chain access patterns, per Tsangaris &
///     Naughton).
///
/// Every transaction can be reversed, "ascending" the graphs by following
/// BackRefs instead of ORefs. Duplicates are possible along a traversal
/// (as in OO1's 3280-part traversal); nothing deduplicates.
///
/// The executor speaks the *Session API* (engine/session.h): it opens
/// one Session per executor, begins an RAII Transaction per workload
/// transaction, and uses the batched operations — Traverse runs a whole
/// walk engine-side in one call, Scan is one GetMany over the extent,
/// Update/Insert apply WriteBatches — with Commit() riding the engine's
/// group-commit pipeline. The executor is a template over the engine:
/// TransactionExecutorT<Database> drives a single store,
/// TransactionExecutorT<ShardedDatabase> the sharded engine — same
/// workload logic, the engine decides routing, locking and commit
/// protocol underneath.

#ifndef OCB_OCB_TRANSACTION_H_
#define OCB_OCB_TRANSACTION_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "engine/session.h"
#include "ocb/parameters.h"
#include "oodb/database.h"
#include "util/rng.h"
#include "util/status.h"

namespace ocb {

/// Result of executing one transaction.
struct TransactionResult {
  TransactionType type = TransactionType::kSetOriented;
  Oid root = kInvalidOid;
  bool reversed = false;
  bool aborted = false;     ///< Deadlock victim / lock timeout, rolled back.
  bool read_only = false;   ///< Ran as an MVCC snapshot reader (ReadView).
  uint64_t objects_accessed = 0;
  uint64_t sim_nanos = 0;   ///< Simulated response time.
  uint64_t io_reads = 0;    ///< Transaction-scope page reads incurred.
  uint64_t lock_wait_nanos = 0;  ///< Wall time blocked on object locks.
  uint64_t snapshot_reads = 0;   ///< Reads served through the ReadView.
  uint64_t commit_nanos = 0;     ///< Wall time of the Commit() call
                                 ///< (incl. group-commit queue time); 0
                                 ///< for rolled-back / legacy brackets.

  /// Wall time this transaction's thread spent blocked on *latches*
  /// (physical, operation-lifetime — distinct from lock_wait_nanos above):
  /// the Database facade/catalog latch vs page-level latches. The split is
  /// the headline measurement of the per-page-latching refactor — in
  /// serialize-physical mode facade wait dominates, with page latches it
  /// collapses to the catalog latch's short critical sections.
  uint64_t facade_wait_nanos = 0;
  uint64_t page_latch_wait_nanos = 0;

  /// Sharded-execution attribution (sharded engine only; a single
  /// Database reports 1 shard, never cross-shard, zero 2PC time): how
  /// many shards the footprint touched, whether it crossed shards, and
  /// the wall time spent in the coordinator's two-phase commit/abort.
  uint32_t shards_touched = 1;
  bool cross_shard = false;
  uint64_t twopc_nanos = 0;
};

/// True for transaction types that only read (the four traversals and
/// Scan): candidates for MVCC snapshot execution.
bool IsReadOnlyTransactionType(TransactionType type);

/// \brief Executes OCB transactions against an engine (Database or
/// ShardedDatabase) through its Session API.
///
/// Stateless apart from configuration; one executor (and thus one
/// Session) per client thread, each with its own RNG. In *transactional*
/// mode every Execute runs inside an engine transaction: object locks
/// via strict 2PL, undo-log rollback when the transaction is chosen as a
/// deadlock victim (reported through TransactionResult::aborted, not an
/// error status). Read-only transaction types additionally run as MVCC
/// snapshot readers when WorkloadParameters::mvcc_snapshot_reads is set
/// — no S locks, no lock waits, no aborts. In the default legacy mode
/// Execute behaves exactly as the seed did — facade-serialized, never
/// aborted.
template <typename DB>
class TransactionExecutorT {
 public:
  TransactionExecutorT(DB* db, const WorkloadParameters& params)
      : db_(db), params_(params), session_(db) {}

  /// Enables/disables the 2PL transactional path (default off).
  void set_transactional(bool on) { transactional_ = on; }
  bool transactional() const { return transactional_; }

  /// Runs one transaction of \p type from \p root. \p rng drives the
  /// stochastic traversal's link choices only.
  Result<TransactionResult> Execute(TransactionType type, Oid root,
                                    bool reversed, LewisPayneRng* rng);

  /// Draws a transaction type according to PSET..PSTOCH.
  TransactionType DrawType(LewisPayneRng* rng) const;

 private:
  DB* db_;
  const WorkloadParameters& params_;
  SessionT<DB> session_;
  bool transactional_ = false;
};

/// The single-store executor (the historical name).
using TransactionExecutor = TransactionExecutorT<Database>;

// --- Template implementation -----------------------------------------------

template <typename DB>
TransactionType TransactionExecutorT<DB>::DrawType(
    LewisPayneRng* rng) const {
  const double u = rng->NextDouble();
  double cumulative = params_.p_set;
  if (u < cumulative) return TransactionType::kSetOriented;
  cumulative += params_.p_simple;
  if (u < cumulative) return TransactionType::kSimpleTraversal;
  cumulative += params_.p_hierarchy;
  if (u < cumulative) return TransactionType::kHierarchyTraversal;
  cumulative += params_.p_stochastic;
  if (u < cumulative) return TransactionType::kStochasticTraversal;
  cumulative += params_.p_update;
  if (u < cumulative) return TransactionType::kUpdate;
  cumulative += params_.p_insert;
  if (u < cumulative) return TransactionType::kInsert;
  cumulative += params_.p_delete;
  if (u < cumulative) return TransactionType::kDelete;
  if (params_.p_scan > 0.0) return TransactionType::kScan;
  return TransactionType::kStochasticTraversal;  // Rounding fallback.
}

template <typename DB>
Result<TransactionResult> TransactionExecutorT<DB>::Execute(
    TransactionType type, Oid root, bool reversed, LewisPayneRng* rng) {
  TransactionResult result;
  result.type = type;
  result.root = root;
  result.reversed = reversed;

  const uint64_t sim_start = db_->SimNowNanos();
  const uint64_t reads_start =
      db_->IoCountersFor(IoScope::kTransaction)
          .reads.load(std::memory_order_relaxed);
  // Latch-wait accounting is thread-local (see storage/latch.h); snapshot
  // the counters so the deltas attribute to this transaction.
  const ThreadLatchWaits latch_start = CurrentThreadLatchWaits();
  auto fill_latch_waits = [&result, &latch_start]() {
    const ThreadLatchWaits& now = CurrentThreadLatchWaits();
    result.facade_wait_nanos = now.facade_nanos - latch_start.facade_nanos;
    result.page_latch_wait_nanos = now.page_nanos - latch_start.page_nanos;
  };

  // Transaction bracket: the 2PL path begins a real RAII transaction
  // (locks + undo log); read-only types become MVCC snapshot readers
  // when enabled; the legacy path only notifies the observer. The first
  // Aborted any operation returns is latched into txn_failure.
  TransactionT<DB> txn;
  Status txn_failure;
  if (transactional_) {
    TxnOptions options;
    options.read_only =
        params_.mvcc_snapshot_reads && IsReadOnlyTransactionType(type);
    // deadlock_policy stays unset: ProtocolRunner applied the run-wide
    // WorkloadParameters::deadlock_policy once at construction, and an
    // unset option never touches (or re-reads) the engine's policy.
    txn = session_.Begin(options);
    // BeginTxn downgrades to a locking txn when MVCC is disabled
    // database-wide; report what actually ran.
    result.read_only = txn.read_only();
  } else {
    txn = session_.BeginLegacy();
  }
  // Ends the transaction bracket (legacy brackets always "commit").
  auto finish = [&](bool rolled_back) {
    if (transactional_) {
      result.lock_wait_nanos = txn.lock_wait_nanos();
      result.snapshot_reads = txn.snapshot_reads();
      if (rolled_back) {
        txn.Abort();
      } else {
        Status commit = txn.Commit();
        // A sharded 2PC failpoint can turn the commit itself into an
        // abort; everything already rolled back, so report it as one.
        if (commit.IsAborted() && txn_failure.ok()) {
          txn_failure = commit;
        }
      }
      result.shards_touched = txn.shards_touched();
      result.cross_shard = txn.cross_shard();
      result.twopc_nanos = txn.twopc_nanos();
      result.commit_nanos = txn.commit_nanos();
    } else {
      txn.Commit();
    }
  };
  auto failed = [&]() { return !txn_failure.ok(); };

  auto root_obj = txn.Get(root);
  if (!root_obj.ok()) {
    if (root_obj.status().IsAborted()) {
      finish(/*rolled_back=*/true);
      result.aborted = true;
      result.sim_nanos = db_->SimNowNanos() - sim_start;
      result.io_reads = db_->IoCountersFor(IoScope::kTransaction)
                            .reads.load(std::memory_order_relaxed) -
                        reads_start;
      fill_latch_waits();
      return result;
    }
    finish(/*rolled_back=*/transactional_);
    return root_obj.status();
  }
  uint64_t accessed = 1;  // The root itself.
  switch (type) {
    case TransactionType::kSetOriented:
    case TransactionType::kSimpleTraversal:
    case TransactionType::kHierarchyTraversal:
    case TransactionType::kStochasticTraversal: {
      // One engine-side call runs the whole walk (engine/session.h).
      TraversePolicy policy;
      policy.reversed = reversed;
      uint32_t depth = 0;
      switch (type) {
        case TransactionType::kSetOriented:
          policy.kind = TraverseKind::kBreadthFirst;
          depth = params_.set_depth;
          break;
        case TransactionType::kSimpleTraversal:
          policy.kind = TraverseKind::kDepthFirst;
          depth = params_.simple_depth;
          break;
        case TransactionType::kHierarchyTraversal:
          policy.kind = TraverseKind::kHierarchy;
          policy.hierarchy_type = params_.hierarchy_ref_type;
          depth = params_.hierarchy_depth;
          break;
        default:
          policy.kind = TraverseKind::kStochastic;
          policy.rng = rng;
          depth = params_.stochastic_depth;
          break;
      }
      auto walked = txn.Traverse(root_obj.value(), depth, policy);
      if (walked.ok()) {
        accessed += *walked;
      } else if (walked.status().IsAborted()) {
        txn_failure = walked.status();
      } else {
        finish(/*rolled_back=*/transactional_);
        return walked.status();
      }
      break;
    }
    case TransactionType::kUpdate: {
      // Rewrite the root in place (attribute edit; size unchanged) as a
      // one-operation WriteBatch.
      WriteBatch batch;
      batch.Put(root_obj.value());
      auto applied = txn.Apply(std::move(batch));
      if (!applied.ok()) {
        if (applied.status().IsAborted()) {
          txn_failure = applied.status();
          break;
        }
        finish(/*rolled_back=*/transactional_);
        return applied.status();
      }
      const Status& st = applied->statuses[0];
      if (!st.ok()) {
        finish(/*rolled_back=*/transactional_);
        return st;
      }
      break;
    }
    case TransactionType::kInsert: {
      // Create a sibling of the root's class, then wire its references
      // to uniform members of the schema-declared target extents as one
      // WriteBatch (one sorted X-lock footprint pass).
      const ClassId class_id = root_obj->class_id;
      auto created = txn.Create(class_id);
      if (!created.ok()) {
        if (created.status().IsAborted()) {
          txn_failure = created.status();
          break;
        }
        finish(/*rolled_back=*/transactional_);
        return created.status();
      }
      ++accessed;
      const ClassDescriptor& cls = db_->schema().GetClass(class_id);
      WriteBatch links;
      for (uint32_t k = 0; k < cls.maxnref; ++k) {
        if (cls.cref[k] == kNullClass) continue;
        // Latched copy: a concurrent client may be growing this extent.
        const std::vector<Oid> extent = db_->ExtentSnapshot(cls.cref[k]);
        if (extent.empty()) continue;
        const Oid target = extent[static_cast<size_t>(rng->UniformInt(
            0, static_cast<int64_t>(extent.size()) - 1))];
        links.SetReference(*created, k, target);
      }
      if (!links.empty()) {
        auto applied = txn.Apply(std::move(links));
        if (!applied.ok()) {
          if (applied.status().IsAborted()) {
            txn_failure = applied.status();
            break;
          }
          finish(/*rolled_back=*/transactional_);
          return applied.status();
        }
        for (const Status& st : applied->statuses) {
          if (st.ok()) {
            ++accessed;
          } else if (!st.IsNoSpace() && !st.IsNotFound()) {
            finish(/*rolled_back=*/transactional_);
            return st;
          }
        }
      }
      break;
    }
    case TransactionType::kDelete: {
      Status st = txn.Delete(root);
      if (!st.ok() && !st.IsNotFound()) {
        if (st.IsAborted()) {
          txn_failure = st;
          break;
        }
        finish(/*rolled_back=*/transactional_);
        return st;
      }
      break;
    }
    case TransactionType::kScan: {
      // Sequential scan of the root's class extent (HyperModel-style) as
      // ONE batched GetMany — latched extent copy first, a concurrent
      // client may mutate it. Extents are not versioned, so the raw copy
      // is *current* membership; for an MVCC snapshot reader the filtered
      // overload drops members created after the view's instant (the
      // member objects themselves already read snapshot-consistently).
      const std::vector<Oid> extent =
          txn.ExtentSnapshot(root_obj->class_id);
      auto scanned = txn.GetMany(extent);
      if (scanned.ok()) {
        accessed += scanned->size();
      } else if (scanned.status().IsAborted()) {
        txn_failure = scanned.status();
      } else {
        finish(/*rolled_back=*/transactional_);
        return scanned.status();
      }
      break;
    }
  }
  const bool rolled_back = transactional_ && failed();
  finish(rolled_back);
  result.aborted = rolled_back || (transactional_ && failed());

  result.objects_accessed = accessed;
  result.sim_nanos = db_->SimNowNanos() - sim_start;
  result.io_reads = db_->IoCountersFor(IoScope::kTransaction)
                        .reads.load(std::memory_order_relaxed) -
                    reads_start;
  fill_latch_waits();
  return result;
}

}  // namespace ocb

#endif  // OCB_OCB_TRANSACTION_H_
