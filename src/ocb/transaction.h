/// \file transaction.h
/// \brief OCB's transaction classes (paper Fig. 3 / §3.3).
///
/// Each transaction proceeds from a randomly chosen root object up to a
/// predefined depth:
///
///   * Set-oriented access — breadth-first on all the references
///     ([McIver & King]'s set-oriented accesses match breadth-first).
///   * Simple traversal — depth-first on all the references.
///   * Hierarchy traversal — depth-first, always following the same
///     reference type.
///   * Stochastic traversal — selects the next link at random: at each
///     step the probability to follow reference number N is p(N) = 1/2^N
///     (approaching Markov-chain access patterns, per Tsangaris &
///     Naughton).
///
/// Every transaction can be reversed, "ascending" the graphs by following
/// BackRefs instead of ORefs. Duplicates are possible along a traversal
/// (as in OO1's 3280-part traversal); the executor does not deduplicate.
///
/// The executor is a template over the *engine* (see "Uniform engine
/// surface" in oodb/database.h): TransactionExecutorT<Database> is the
/// single-store executor the seed shipped, TransactionExecutorT<
/// ShardedDatabase> drives the sharded engine — same workload logic, the
/// engine decides routing, locking and commit protocol underneath.

#ifndef OCB_OCB_TRANSACTION_H_
#define OCB_OCB_TRANSACTION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "oodb/database.h"
#include "ocb/parameters.h"
#include "util/rng.h"
#include "util/status.h"

namespace ocb {

/// Result of executing one transaction.
struct TransactionResult {
  TransactionType type = TransactionType::kSetOriented;
  Oid root = kInvalidOid;
  bool reversed = false;
  bool aborted = false;     ///< Deadlock victim / lock timeout, rolled back.
  bool read_only = false;   ///< Ran as an MVCC snapshot reader (ReadView).
  uint64_t objects_accessed = 0;
  uint64_t sim_nanos = 0;   ///< Simulated response time.
  uint64_t io_reads = 0;    ///< Transaction-scope page reads incurred.
  uint64_t lock_wait_nanos = 0;  ///< Wall time blocked on object locks.
  uint64_t snapshot_reads = 0;   ///< Reads served through the ReadView.

  /// Wall time this transaction's thread spent blocked on *latches*
  /// (physical, operation-lifetime — distinct from lock_wait_nanos above):
  /// the Database facade/catalog latch vs page-level latches. The split is
  /// the headline measurement of the per-page-latching refactor — in
  /// serialize-physical mode facade wait dominates, with page latches it
  /// collapses to the catalog latch's short critical sections.
  uint64_t facade_wait_nanos = 0;
  uint64_t page_latch_wait_nanos = 0;

  /// Sharded-execution attribution (sharded engine only; a single
  /// Database reports 1 shard, never cross-shard, zero 2PC time): how
  /// many shards the footprint touched, whether it crossed shards, and
  /// the wall time spent in the coordinator's two-phase commit/abort.
  uint32_t shards_touched = 1;
  bool cross_shard = false;
  uint64_t twopc_nanos = 0;
};

/// True for transaction types that only read (the four traversals and
/// Scan): candidates for MVCC snapshot execution.
bool IsReadOnlyTransactionType(TransactionType type);

namespace txn_internal {

// Sharded-attribution accessors, defaulting gracefully for transaction
// handles that do not model sharding (TransactionContext): a single-store
// transaction trivially touches one shard and pays no 2PC.
template <typename Txn>
uint32_t ShardsTouched(const Txn& txn) {
  if constexpr (requires { txn.shards_touched(); }) {
    return txn.shards_touched();
  } else {
    return 1;
  }
}

template <typename Txn>
bool CrossShard(const Txn& txn) {
  if constexpr (requires { txn.cross_shard(); }) {
    return txn.cross_shard();
  } else {
    return false;
  }
}

template <typename Txn>
uint64_t TwopcNanos(const Txn& txn) {
  if constexpr (requires { txn.twopc_nanos(); }) {
    return txn.twopc_nanos();
  } else {
    return 0;
  }
}

}  // namespace txn_internal

/// \brief Executes OCB transactions against an engine (Database or
/// ShardedDatabase).
///
/// Stateless apart from configuration; one executor per client thread
/// (each with its own RNG). In *transactional* mode every Execute runs
/// inside an engine transaction: object locks via strict 2PL, undo-log
/// rollback when the transaction is chosen as a deadlock victim (reported
/// through TransactionResult::aborted, not an error status). Read-only
/// transaction types additionally run as MVCC snapshot readers when
/// WorkloadParameters::mvcc_snapshot_reads is set — no S locks, no lock
/// waits, no aborts. In the default legacy mode Execute behaves exactly
/// as the seed did — facade-serialized, never aborted.
template <typename DB>
class TransactionExecutorT {
 public:
  using TxnHandle = typename DB::TxnHandle;

  TransactionExecutorT(DB* db, const WorkloadParameters& params)
      : db_(db), params_(params) {}

  /// Enables/disables the 2PL transactional path (default off).
  void set_transactional(bool on) { transactional_ = on; }
  bool transactional() const { return transactional_; }

  /// Runs one transaction of \p type from \p root. \p rng drives the
  /// stochastic traversal's link choices only.
  Result<TransactionResult> Execute(TransactionType type, Oid root,
                                    bool reversed, LewisPayneRng* rng);

  /// Draws a transaction type according to PSET..PSTOCH.
  TransactionType DrawType(LewisPayneRng* rng) const;

 private:
  uint64_t SetOriented(const Object& root, uint32_t depth, bool reversed);
  uint64_t DepthFirst(const Object& node, uint32_t depth, bool reversed);
  uint64_t Hierarchy(const Object& node, uint32_t depth, RefTypeId type,
                     bool reversed);
  uint64_t Stochastic(const Object& node, uint32_t depth, bool reversed,
                      LewisPayneRng* rng);

  /// Follows one link with observer notification; returns the target or
  /// an error when the target vanished (concurrent delete). A
  /// Status::Aborted from the lock manager additionally latches
  /// txn_failure_ so traversals unwind promptly.
  Result<Object> Follow(const Object& from, size_t slot_or_backref_index,
                        bool reversed);

  /// True while the in-flight transaction must be rolled back.
  bool failed() const { return !txn_failure_.ok(); }

  DB* db_;
  const WorkloadParameters& params_;
  bool transactional_ = false;
  TxnHandle* txn_ = nullptr;  ///< In-flight txn (Execute scope).
  Status txn_failure_;        ///< First Aborted seen this txn.
};

/// The single-store executor (the historical name).
using TransactionExecutor = TransactionExecutorT<Database>;

// --- Template implementation -----------------------------------------------

template <typename DB>
TransactionType TransactionExecutorT<DB>::DrawType(
    LewisPayneRng* rng) const {
  const double u = rng->NextDouble();
  double cumulative = params_.p_set;
  if (u < cumulative) return TransactionType::kSetOriented;
  cumulative += params_.p_simple;
  if (u < cumulative) return TransactionType::kSimpleTraversal;
  cumulative += params_.p_hierarchy;
  if (u < cumulative) return TransactionType::kHierarchyTraversal;
  cumulative += params_.p_stochastic;
  if (u < cumulative) return TransactionType::kStochasticTraversal;
  cumulative += params_.p_update;
  if (u < cumulative) return TransactionType::kUpdate;
  cumulative += params_.p_insert;
  if (u < cumulative) return TransactionType::kInsert;
  cumulative += params_.p_delete;
  if (u < cumulative) return TransactionType::kDelete;
  if (params_.p_scan > 0.0) return TransactionType::kScan;
  return TransactionType::kStochasticTraversal;  // Rounding fallback.
}

template <typename DB>
Result<Object> TransactionExecutorT<DB>::Follow(const Object& from,
                                                size_t index,
                                                bool reversed) {
  Result<Object> result = [&]() -> Result<Object> {
    if (!reversed) {
      const Oid target = from.orefs[index];
      const ClassDescriptor& cls = db_->schema().GetClass(from.class_id);
      const RefTypeId type =
          index < cls.tref.size() ? cls.tref[index] : RefTypeId{0};
      return db_->CrossLink(txn_, from.oid, target, type, /*reverse=*/false);
    }
    const Oid target = from.backrefs[index];
    return db_->CrossLink(txn_, from.oid, target, /*type=*/0,
                          /*reverse=*/true);
  }();
  if (!result.ok() && result.status().IsAborted() && txn_failure_.ok()) {
    txn_failure_ = result.status();
  }
  return result;
}

template <typename DB>
uint64_t TransactionExecutorT<DB>::SetOriented(const Object& root,
                                               uint32_t depth,
                                               bool reversed) {
  // Breadth-first on all the references, level by level, duplicates kept.
  uint64_t accessed = 0;
  std::vector<Object> level = {root};
  for (uint32_t d = 0; d < depth && !level.empty(); ++d) {
    std::vector<Object> next;
    for (const Object& node : level) {
      const size_t fanout =
          reversed ? node.backrefs.size() : node.orefs.size();
      for (size_t i = 0; i < fanout; ++i) {
        if (!reversed && node.orefs[i] == kInvalidOid) continue;
        auto child = Follow(node, i, reversed);
        if (failed()) return accessed;
        if (!child.ok()) continue;  // Vanished under a concurrent client.
        ++accessed;
        next.push_back(std::move(child).value());
      }
    }
    level = std::move(next);
  }
  return accessed;
}

template <typename DB>
uint64_t TransactionExecutorT<DB>::DepthFirst(const Object& node,
                                              uint32_t depth,
                                              bool reversed) {
  if (depth == 0) return 0;
  uint64_t accessed = 0;
  const size_t fanout = reversed ? node.backrefs.size() : node.orefs.size();
  for (size_t i = 0; i < fanout; ++i) {
    if (!reversed && node.orefs[i] == kInvalidOid) continue;
    auto child = Follow(node, i, reversed);
    if (failed()) return accessed;
    if (!child.ok()) continue;
    ++accessed;
    accessed += DepthFirst(child.value(), depth - 1, reversed);
    if (failed()) return accessed;
  }
  return accessed;
}

template <typename DB>
uint64_t TransactionExecutorT<DB>::Hierarchy(const Object& node,
                                             uint32_t depth, RefTypeId type,
                                             bool reversed) {
  if (depth == 0) return 0;
  uint64_t accessed = 0;
  if (!reversed) {
    const ClassDescriptor& cls = db_->schema().GetClass(node.class_id);
    for (size_t i = 0; i < node.orefs.size(); ++i) {
      if (node.orefs[i] == kInvalidOid) continue;
      if (i >= cls.tref.size() || cls.tref[i] != type) continue;
      auto child = Follow(node, i, /*reversed=*/false);
      if (failed()) return accessed;
      if (!child.ok()) continue;
      ++accessed;
      accessed += Hierarchy(child.value(), depth - 1, type, reversed);
      if (failed()) return accessed;
    }
    return accessed;
  }
  // Reversed hierarchy traversal ascends through BackRefs. BackRefs carry
  // no slot type, so the reverse direction follows all of them — a
  // documented approximation (see DESIGN.md §5).
  for (size_t i = 0; i < node.backrefs.size(); ++i) {
    auto child = Follow(node, i, /*reversed=*/true);
    if (failed()) return accessed;
    if (!child.ok()) continue;
    ++accessed;
    accessed += Hierarchy(child.value(), depth - 1, type, reversed);
    if (failed()) return accessed;
  }
  return accessed;
}

template <typename DB>
uint64_t TransactionExecutorT<DB>::Stochastic(const Object& node,
                                              uint32_t depth, bool reversed,
                                              LewisPayneRng* rng) {
  // Random walk: at each step the probability of following reference
  // number N (1-based) is 1/2^N; failing every coin flip ends the walk, as
  // does a null or missing link.
  uint64_t accessed = 0;
  Object current = node;
  for (uint32_t step = 0; step < depth; ++step) {
    const size_t fanout =
        reversed ? current.backrefs.size() : current.orefs.size();
    size_t chosen = fanout;  // Sentinel: no link chosen.
    for (size_t i = 0; i < fanout; ++i) {
      if (rng->Bernoulli(0.5)) {
        chosen = i;
        break;
      }
    }
    if (chosen == fanout) break;
    if (!reversed && current.orefs[chosen] == kInvalidOid) break;
    auto next = Follow(current, chosen, reversed);
    if (!next.ok()) break;
    ++accessed;
    current = std::move(next).value();
  }
  return accessed;
}

template <typename DB>
Result<TransactionResult> TransactionExecutorT<DB>::Execute(
    TransactionType type, Oid root, bool reversed, LewisPayneRng* rng) {
  TransactionResult result;
  result.type = type;
  result.root = root;
  result.reversed = reversed;

  const uint64_t sim_start = db_->SimNowNanos();
  const uint64_t reads_start =
      db_->IoCountersFor(IoScope::kTransaction)
          .reads.load(std::memory_order_relaxed);
  // Latch-wait accounting is thread-local (see storage/latch.h); snapshot
  // the counters so the deltas attribute to this transaction.
  const ThreadLatchWaits latch_start = CurrentThreadLatchWaits();
  auto fill_latch_waits = [&result, &latch_start]() {
    const ThreadLatchWaits& now = CurrentThreadLatchWaits();
    result.facade_wait_nanos = now.facade_nanos - latch_start.facade_nanos;
    result.page_latch_wait_nanos = now.page_nanos - latch_start.page_nanos;
  };

  // Transaction bracket: the 2PL path begins a real transaction (locks +
  // undo log); read-only types become MVCC snapshot readers when enabled;
  // the legacy path only notifies the observer.
  std::unique_ptr<TxnHandle> txn;
  txn_failure_ = Status::OK();
  if (transactional_) {
    const bool read_only =
        params_.mvcc_snapshot_reads && IsReadOnlyTransactionType(type);
    txn = db_->BeginTxn(read_only);
    txn_ = txn.get();
    // BeginTxn downgrades to a locking txn when MVCC is disabled
    // database-wide; report what actually ran.
    result.read_only = txn->read_only();
  } else {
    txn_ = nullptr;
    db_->BeginTransaction();
  }
  // Ends the transaction bracket; returns true when the txn committed
  // (legacy brackets always "commit").
  auto finish = [&](bool rolled_back) {
    if (transactional_) {
      result.lock_wait_nanos = txn->lock_wait_nanos();
      result.snapshot_reads = txn->snapshot_reads();
      if (rolled_back) {
        db_->AbortTxn(txn.get());
      } else {
        Status commit = db_->CommitTxn(txn.get());
        // A sharded 2PC failpoint can turn the commit itself into an
        // abort; everything already rolled back, so report it as one.
        if (commit.IsAborted() && txn_failure_.ok()) {
          txn_failure_ = commit;
        }
      }
      result.shards_touched = txn_internal::ShardsTouched(*txn);
      result.cross_shard = txn_internal::CrossShard(*txn);
      result.twopc_nanos = txn_internal::TwopcNanos(*txn);
      txn_ = nullptr;
    } else {
      db_->EndTransaction();
    }
  };

  auto root_obj = db_->GetObject(txn_, root);
  if (!root_obj.ok()) {
    if (root_obj.status().IsAborted()) {
      finish(/*rolled_back=*/true);
      result.aborted = true;
      result.sim_nanos = db_->SimNowNanos() - sim_start;
      result.io_reads = db_->IoCountersFor(IoScope::kTransaction)
                            .reads.load(std::memory_order_relaxed) -
                        reads_start;
      fill_latch_waits();
      return result;
    }
    finish(/*rolled_back=*/transactional_);
    return root_obj.status();
  }
  uint64_t accessed = 1;  // The root itself.
  switch (type) {
    case TransactionType::kSetOriented:
      accessed += SetOriented(root_obj.value(), params_.set_depth, reversed);
      break;
    case TransactionType::kSimpleTraversal:
      accessed += DepthFirst(root_obj.value(), params_.simple_depth,
                             reversed);
      break;
    case TransactionType::kHierarchyTraversal:
      accessed += Hierarchy(root_obj.value(), params_.hierarchy_depth,
                            params_.hierarchy_ref_type, reversed);
      break;
    case TransactionType::kStochasticTraversal:
      accessed += Stochastic(root_obj.value(), params_.stochastic_depth,
                             reversed, rng);
      break;
    case TransactionType::kUpdate: {
      // Rewrite the root in place (attribute edit; size unchanged).
      Status st = db_->PutObject(txn_, root_obj.value());
      if (!st.ok()) {
        if (st.IsAborted()) {
          txn_failure_ = st;
          break;
        }
        finish(/*rolled_back=*/transactional_);
        return st;
      }
      break;
    }
    case TransactionType::kInsert: {
      // Create a sibling of the root's class and wire its references to
      // uniform members of the schema-declared target extents.
      const ClassId class_id = root_obj->class_id;
      auto created = db_->CreateObject(txn_, class_id);
      if (!created.ok()) {
        if (created.status().IsAborted()) {
          txn_failure_ = created.status();
          break;
        }
        finish(/*rolled_back=*/transactional_);
        return created.status();
      }
      ++accessed;
      const ClassDescriptor& cls = db_->schema().GetClass(class_id);
      for (uint32_t k = 0; k < cls.maxnref && !failed(); ++k) {
        if (cls.cref[k] == kNullClass) continue;
        // Latched copy: a concurrent client may be growing this extent.
        const std::vector<Oid> extent = db_->ExtentSnapshot(cls.cref[k]);
        if (extent.empty()) continue;
        const Oid target = extent[static_cast<size_t>(rng->UniformInt(
            0, static_cast<int64_t>(extent.size()) - 1))];
        Status st = db_->SetReference(txn_, *created, k, target);
        if (st.ok()) {
          ++accessed;
        } else if (st.IsAborted()) {
          txn_failure_ = st;
        } else if (!st.IsNoSpace() && !st.IsNotFound()) {
          finish(/*rolled_back=*/transactional_);
          return st;
        }
      }
      break;
    }
    case TransactionType::kDelete: {
      Status st = db_->DeleteObject(txn_, root);
      if (!st.ok() && !st.IsNotFound()) {
        if (st.IsAborted()) {
          txn_failure_ = st;
          break;
        }
        finish(/*rolled_back=*/transactional_);
        return st;
      }
      break;
    }
    case TransactionType::kScan: {
      // Sequential scan of the root's class extent (HyperModel-style);
      // latched copy first — a concurrent client may mutate it. Under
      // MVCC the *member objects* read snapshot-consistently, but the
      // membership list itself is the current extent (extents are not
      // versioned): an object deleted or created by a concurrent txn may
      // be missing from / extra in the walk. Snapshot-invisible members
      // come back NotFound and are skipped. See ROADMAP "versioned
      // extents".
      const std::vector<Oid> extent =
          db_->ExtentSnapshot(root_obj->class_id);
      for (Oid member : extent) {
        auto obj = db_->GetObject(txn_, member);
        if (obj.ok()) {
          ++accessed;
        } else if (obj.status().IsAborted()) {
          txn_failure_ = obj.status();
          break;
        }
      }
      break;
    }
  }
  const bool rolled_back = transactional_ && failed();
  finish(rolled_back);
  result.aborted = rolled_back || (transactional_ && failed());

  result.objects_accessed = accessed;
  result.sim_nanos = db_->SimNowNanos() - sim_start;
  result.io_reads = db_->IoCountersFor(IoScope::kTransaction)
                        .reads.load(std::memory_order_relaxed) -
                    reads_start;
  fill_latch_waits();
  return result;
}

}  // namespace ocb

#endif  // OCB_OCB_TRANSACTION_H_
