/// \file client.h
/// \brief Multi-user execution (paper §3.1: "the last version of OCB also
///        supports multiple users, in a very simple way").
///
/// CLIENTN clients run the cold/warm protocol concurrently against one
/// shared engine — a single Database or a ShardedDatabase (threads stand
/// in for the paper's processes; the contention surface — shared store(s),
/// shared buffer pool(s) — is the same). With more than one client the run
/// is automatically *transactional*: every client transaction executes
/// under the 2PL concurrency-control subsystem, so conflicting clients
/// block on object locks, deadlock victims roll back, and the report
/// carries per-client abort counts and lock-wait time. On a sharded
/// engine the report additionally carries the cross-shard transaction
/// count and cumulative 2PC time. Per-phase metrics from all clients are
/// merged.
///
/// Caveat: with more than one client, per-transaction I/O attribution is
/// approximate (the disk counters are shared), while phase totals remain
/// exact. Single-client runs are fully exact.

#ifndef OCB_OCB_CLIENT_H_
#define OCB_OCB_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "ocb/metrics.h"
#include "ocb/parameters.h"
#include "ocb/protocol.h"
#include "oodb/database.h"
#include "util/status.h"

namespace ocb {

/// Per-client outcome of a multi-client run.
struct ClientOutcome {
  uint32_t client_id = 0;
  uint64_t committed = 0;        ///< Transactions that committed.
  uint64_t aborts = 0;           ///< Deadlock victims / lock timeouts.
  uint64_t lock_wait_nanos = 0;  ///< Cumulative blocked wall time (locks).
  uint64_t facade_wait_nanos = 0;      ///< Blocked on the facade latch.
  uint64_t page_latch_wait_nanos = 0;  ///< Blocked on page latches.
  uint64_t cross_shard_commits = 0;    ///< Commits spanning > 1 shard.
  uint64_t twopc_nanos = 0;            ///< Time inside 2PC commit/abort.
  uint64_t wall_micros = 0;      ///< This client's end-to-end wall time.

  double throughput_tps() const {
    if (wall_micros == 0) return 0.0;
    return static_cast<double>(committed) * 1e6 /
           static_cast<double>(wall_micros);
  }
};

/// Result of a multi-client run.
struct MultiClientReport {
  WorkloadMetrics merged;              ///< All clients' metrics combined.
  std::vector<ClientOutcome> per_client;
  uint64_t wall_micros = 0;            ///< End-to-end wall time of the run.
  uint32_t clients = 0;

  /// Transactions per wall-second across all clients.
  double throughput_tps() const {
    if (wall_micros == 0) return 0.0;
    const uint64_t txns =
        merged.cold.global.transactions + merged.warm.global.transactions;
    return static_cast<double>(txns) * 1e6 /
           static_cast<double>(wall_micros);
  }

  uint64_t total_aborts() const {
    return merged.cold.aborts + merged.warm.aborts;
  }
  uint64_t total_lock_wait_nanos() const {
    return merged.cold.lock_wait_nanos + merged.warm.lock_wait_nanos;
  }
  uint64_t total_facade_wait_nanos() const {
    return merged.cold.facade_wait_nanos + merged.warm.facade_wait_nanos;
  }
  uint64_t total_page_latch_wait_nanos() const {
    return merged.cold.page_latch_wait_nanos +
           merged.warm.page_latch_wait_nanos;
  }
  uint64_t total_read_only_commits() const {
    return merged.cold.read_only_commits + merged.warm.read_only_commits;
  }
  uint64_t total_snapshot_reads() const {
    return merged.cold.snapshot_reads + merged.warm.snapshot_reads;
  }
  uint64_t total_cross_shard_commits() const {
    return merged.cold.cross_shard_commits +
           merged.warm.cross_shard_commits;
  }
  uint64_t total_twopc_nanos() const {
    return merged.cold.twopc_nanos + merged.warm.twopc_nanos;
  }

  /// Tail distributions merged over both phases and every client —
  /// p50/p95/p99 of per-transaction lock wait, commit latency, and 2PC
  /// section time. Sums (above) hide the tail that deadlock-victim
  /// policies and group-commit windows actually change; these are what
  /// the benches and BENCH_*.json report.
  Histogram lock_wait_histogram() const {
    Histogram h = merged.cold.lock_wait_histogram;
    h.Merge(merged.warm.lock_wait_histogram);
    return h;
  }
  Histogram commit_latency_histogram() const {
    Histogram h = merged.cold.commit_latency_histogram;
    h.Merge(merged.warm.commit_latency_histogram);
    return h;
  }
  Histogram twopc_histogram() const {
    Histogram h = merged.cold.twopc_histogram;
    h.Merge(merged.warm.twopc_histogram);
    return h;
  }
  /// Committed transactions whose footprint crossed shards / all
  /// committed transactions (0 on a single Database).
  double cross_shard_fraction() const {
    const uint64_t committed =
        merged.cold.global.transactions + merged.warm.global.transactions;
    return committed == 0
               ? 0.0
               : static_cast<double>(total_cross_shard_commits()) /
                     static_cast<double>(committed);
  }
  double abort_rate() const {
    const uint64_t committed =
        merged.cold.global.transactions + merged.warm.global.transactions;
    const uint64_t attempted = committed + total_aborts();
    return attempted == 0
               ? 0.0
               : static_cast<double>(total_aborts()) / attempted;
  }
};

namespace client_internal {

inline ClientOutcome OutcomeFrom(uint32_t client_id,
                                 const WorkloadMetrics& m,
                                 uint64_t wall_micros) {
  ClientOutcome outcome;
  outcome.client_id = client_id;
  outcome.committed =
      m.cold.global.transactions + m.warm.global.transactions;
  outcome.aborts = m.cold.aborts + m.warm.aborts;
  outcome.lock_wait_nanos = m.cold.lock_wait_nanos + m.warm.lock_wait_nanos;
  outcome.facade_wait_nanos =
      m.cold.facade_wait_nanos + m.warm.facade_wait_nanos;
  outcome.page_latch_wait_nanos =
      m.cold.page_latch_wait_nanos + m.warm.page_latch_wait_nanos;
  outcome.cross_shard_commits =
      m.cold.cross_shard_commits + m.warm.cross_shard_commits;
  outcome.twopc_nanos = m.cold.twopc_nanos + m.warm.twopc_nanos;
  outcome.wall_micros = wall_micros;
  return outcome;
}

inline uint64_t MicrosSince(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace client_internal

/// \brief Runs CLIENTN concurrent ProtocolRunners over one shared engine
/// (Database or ShardedDatabase) and merges their metrics.
template <typename DB>
Result<MultiClientReport> RunMultiClient(DB* db,
                                         const WorkloadParameters& params) {
  using client_internal::MicrosSince;
  using client_internal::OutcomeFrom;
  OCB_RETURN_NOT_OK(params.Validate());
  MultiClientReport report;
  report.clients = params.client_count;
  const auto wall_start = std::chrono::steady_clock::now();

  if (params.client_count == 1) {
    ProtocolRunnerT<DB> runner(db, params, /*client_id=*/0);
    OCB_ASSIGN_OR_RETURN(WorkloadMetrics metrics, runner.Run());
    report.per_client.push_back(
        OutcomeFrom(0, metrics, MicrosSince(wall_start)));
    report.merged = std::move(metrics);
  } else {
    // CLIENTN real threads over one shared engine: the transactional
    // path isolates their interleavings (ProtocolRunner auto-enables it
    // for client_count > 1).
    std::vector<std::thread> threads;
    std::vector<WorkloadMetrics> results(params.client_count);
    std::vector<uint64_t> client_wall(params.client_count, 0);
    std::vector<Status> statuses(params.client_count, Status::OK());
    for (uint32_t c = 0; c < params.client_count; ++c) {
      threads.emplace_back([&, c]() {
        const auto client_start = std::chrono::steady_clock::now();
        ProtocolRunnerT<DB> runner(db, params, /*client_id=*/c);
        auto metrics = runner.Run();
        if (metrics.ok()) {
          results[c] = std::move(metrics).value();
        } else {
          statuses[c] = metrics.status();
        }
        client_wall[c] = MicrosSince(client_start);
      });
    }
    for (std::thread& t : threads) t.join();
    for (const Status& st : statuses) {
      OCB_RETURN_NOT_OK(st);
    }
    for (uint32_t c = 0; c < params.client_count; ++c) {
      report.per_client.push_back(
          OutcomeFrom(c, results[c], client_wall[c]));
      report.merged.Merge(results[c]);
    }
  }

  report.wall_micros = MicrosSince(wall_start);
  return report;
}

}  // namespace ocb

#endif  // OCB_OCB_CLIENT_H_
