/// \file client.h
/// \brief Multi-user execution (paper §3.1: "the last version of OCB also
///        supports multiple users, in a very simple way").
///
/// CLIENTN clients run the cold/warm protocol concurrently against one
/// shared Database (threads stand in for the paper's processes; the
/// contention surface — one shared store, one buffer pool — is the same).
/// Per-phase metrics from all clients are merged.
///
/// Caveat: with more than one client, per-transaction I/O attribution is
/// approximate (the disk counters are shared), while phase totals remain
/// exact. Single-client runs are fully exact.

#ifndef OCB_OCB_CLIENT_H_
#define OCB_OCB_CLIENT_H_

#include <cstdint>

#include "ocb/metrics.h"
#include "ocb/parameters.h"
#include "oodb/database.h"
#include "util/status.h"

namespace ocb {

/// Result of a multi-client run.
struct MultiClientReport {
  WorkloadMetrics merged;       ///< All clients' metrics combined.
  uint64_t wall_micros = 0;     ///< End-to-end wall time of the run.
  uint32_t clients = 0;

  /// Transactions per wall-second across all clients.
  double throughput_tps() const {
    if (wall_micros == 0) return 0.0;
    const uint64_t txns =
        merged.cold.global.transactions + merged.warm.global.transactions;
    return static_cast<double>(txns) * 1e6 /
           static_cast<double>(wall_micros);
  }
};

/// \brief Runs CLIENTN concurrent ProtocolRunners and merges their metrics.
Result<MultiClientReport> RunMultiClient(Database* db,
                                         const WorkloadParameters& params);

}  // namespace ocb

#endif  // OCB_OCB_CLIENT_H_
