/// \file client.h
/// \brief Multi-user execution (paper §3.1: "the last version of OCB also
///        supports multiple users, in a very simple way").
///
/// CLIENTN clients run the cold/warm protocol concurrently against one
/// shared Database (threads stand in for the paper's processes; the
/// contention surface — one shared store, one buffer pool — is the same).
/// With more than one client the run is automatically *transactional*:
/// every client transaction executes under the 2PL concurrency-control
/// subsystem, so conflicting clients block on object locks, deadlock
/// victims roll back, and the report carries per-client abort counts and
/// lock-wait time. Per-phase metrics from all clients are merged.
///
/// Caveat: with more than one client, per-transaction I/O attribution is
/// approximate (the disk counters are shared), while phase totals remain
/// exact. Single-client runs are fully exact.

#ifndef OCB_OCB_CLIENT_H_
#define OCB_OCB_CLIENT_H_

#include <cstdint>
#include <vector>

#include "ocb/metrics.h"
#include "ocb/parameters.h"
#include "oodb/database.h"
#include "util/status.h"

namespace ocb {

/// Per-client outcome of a multi-client run.
struct ClientOutcome {
  uint32_t client_id = 0;
  uint64_t committed = 0;        ///< Transactions that committed.
  uint64_t aborts = 0;           ///< Deadlock victims / lock timeouts.
  uint64_t lock_wait_nanos = 0;  ///< Cumulative blocked wall time (locks).
  uint64_t facade_wait_nanos = 0;      ///< Blocked on the facade latch.
  uint64_t page_latch_wait_nanos = 0;  ///< Blocked on page latches.
  uint64_t wall_micros = 0;      ///< This client's end-to-end wall time.

  double throughput_tps() const {
    if (wall_micros == 0) return 0.0;
    return static_cast<double>(committed) * 1e6 /
           static_cast<double>(wall_micros);
  }
};

/// Result of a multi-client run.
struct MultiClientReport {
  WorkloadMetrics merged;              ///< All clients' metrics combined.
  std::vector<ClientOutcome> per_client;
  uint64_t wall_micros = 0;            ///< End-to-end wall time of the run.
  uint32_t clients = 0;

  /// Transactions per wall-second across all clients.
  double throughput_tps() const {
    if (wall_micros == 0) return 0.0;
    const uint64_t txns =
        merged.cold.global.transactions + merged.warm.global.transactions;
    return static_cast<double>(txns) * 1e6 /
           static_cast<double>(wall_micros);
  }

  uint64_t total_aborts() const {
    return merged.cold.aborts + merged.warm.aborts;
  }
  uint64_t total_lock_wait_nanos() const {
    return merged.cold.lock_wait_nanos + merged.warm.lock_wait_nanos;
  }
  uint64_t total_facade_wait_nanos() const {
    return merged.cold.facade_wait_nanos + merged.warm.facade_wait_nanos;
  }
  uint64_t total_page_latch_wait_nanos() const {
    return merged.cold.page_latch_wait_nanos +
           merged.warm.page_latch_wait_nanos;
  }
  uint64_t total_read_only_commits() const {
    return merged.cold.read_only_commits + merged.warm.read_only_commits;
  }
  uint64_t total_snapshot_reads() const {
    return merged.cold.snapshot_reads + merged.warm.snapshot_reads;
  }
  double abort_rate() const {
    const uint64_t committed =
        merged.cold.global.transactions + merged.warm.global.transactions;
    const uint64_t attempted = committed + total_aborts();
    return attempted == 0
               ? 0.0
               : static_cast<double>(total_aborts()) / attempted;
  }
};

/// \brief Runs CLIENTN concurrent ProtocolRunners and merges their metrics.
Result<MultiClientReport> RunMultiClient(Database* db,
                                         const WorkloadParameters& params);

}  // namespace ocb

#endif  // OCB_OCB_CLIENT_H_
