#include "ocb/client.h"

#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "ocb/protocol.h"

namespace ocb {

Result<MultiClientReport> RunMultiClient(Database* db,
                                         const WorkloadParameters& params) {
  OCB_RETURN_NOT_OK(params.Validate());
  MultiClientReport report;
  report.clients = params.client_count;
  const auto wall_start = std::chrono::steady_clock::now();

  if (params.client_count == 1) {
    ProtocolRunner runner(db, params, /*client_id=*/0);
    OCB_ASSIGN_OR_RETURN(WorkloadMetrics metrics, runner.Run());
    report.merged = std::move(metrics);
  } else {
    std::vector<std::thread> threads;
    std::vector<WorkloadMetrics> results(params.client_count);
    std::vector<Status> statuses(params.client_count, Status::OK());
    for (uint32_t c = 0; c < params.client_count; ++c) {
      threads.emplace_back([&, c]() {
        ProtocolRunner runner(db, params, /*client_id=*/c);
        auto metrics = runner.Run();
        if (metrics.ok()) {
          results[c] = std::move(metrics).value();
        } else {
          statuses[c] = metrics.status();
        }
      });
    }
    for (std::thread& t : threads) t.join();
    for (const Status& st : statuses) {
      OCB_RETURN_NOT_OK(st);
    }
    for (WorkloadMetrics& m : results) report.merged.Merge(m);
  }

  report.wall_micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - wall_start)
          .count());
  return report;
}

}  // namespace ocb
