#include "ocb/client.h"

#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "ocb/protocol.h"

namespace ocb {

namespace {

ClientOutcome OutcomeFrom(uint32_t client_id, const WorkloadMetrics& m,
                          uint64_t wall_micros) {
  ClientOutcome outcome;
  outcome.client_id = client_id;
  outcome.committed =
      m.cold.global.transactions + m.warm.global.transactions;
  outcome.aborts = m.cold.aborts + m.warm.aborts;
  outcome.lock_wait_nanos = m.cold.lock_wait_nanos + m.warm.lock_wait_nanos;
  outcome.facade_wait_nanos =
      m.cold.facade_wait_nanos + m.warm.facade_wait_nanos;
  outcome.page_latch_wait_nanos =
      m.cold.page_latch_wait_nanos + m.warm.page_latch_wait_nanos;
  outcome.wall_micros = wall_micros;
  return outcome;
}

uint64_t MicrosSince(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

Result<MultiClientReport> RunMultiClient(Database* db,
                                         const WorkloadParameters& params) {
  OCB_RETURN_NOT_OK(params.Validate());
  MultiClientReport report;
  report.clients = params.client_count;
  const auto wall_start = std::chrono::steady_clock::now();

  if (params.client_count == 1) {
    ProtocolRunner runner(db, params, /*client_id=*/0);
    OCB_ASSIGN_OR_RETURN(WorkloadMetrics metrics, runner.Run());
    report.per_client.push_back(
        OutcomeFrom(0, metrics, MicrosSince(wall_start)));
    report.merged = std::move(metrics);
  } else {
    // CLIENTN real threads over one shared Database: the transactional
    // path isolates their interleavings (ProtocolRunner auto-enables it
    // for client_count > 1).
    std::vector<std::thread> threads;
    std::vector<WorkloadMetrics> results(params.client_count);
    std::vector<uint64_t> client_wall(params.client_count, 0);
    std::vector<Status> statuses(params.client_count, Status::OK());
    for (uint32_t c = 0; c < params.client_count; ++c) {
      threads.emplace_back([&, c]() {
        const auto client_start = std::chrono::steady_clock::now();
        ProtocolRunner runner(db, params, /*client_id=*/c);
        auto metrics = runner.Run();
        if (metrics.ok()) {
          results[c] = std::move(metrics).value();
        } else {
          statuses[c] = metrics.status();
        }
        client_wall[c] = MicrosSince(client_start);
      });
    }
    for (std::thread& t : threads) t.join();
    for (const Status& st : statuses) {
      OCB_RETURN_NOT_OK(st);
    }
    for (uint32_t c = 0; c < params.client_count; ++c) {
      report.per_client.push_back(
          OutcomeFrom(c, results[c], client_wall[c]));
      report.merged.Merge(results[c]);
    }
  }

  report.wall_micros = MicrosSince(wall_start);
  return report;
}

}  // namespace ocb
