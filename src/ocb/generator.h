/// \file generator.h
/// \brief OCB database generation — the three-step algorithm of paper
///        Fig. 2.
///
///   1. Schema instantiation: NC classes from the CLASS metaclass; each
///      reference slot gets a type (DIST1, or fixed a priori) and a target
///      class drawn in [INFCLASS, SUPCLASS] (DIST2, or fixed).
///   2. Consistency check-up: cycles and discrepancies are suppressed in
///      graphs that do not allow them (inheritance, composition), then
///      InstanceSize is accumulated through the inheritance graph.
///   3. Object instantiation: NO objects are created (class per DIST3),
///      then each reference slot is bound to an object of the target class
///      drawn in [INFREF, SUPREF] per DIST4. Reverse references (BackRef)
///      are instantiated together with the direct links.
///
/// All randomness comes from a Lewis–Payne generator seeded from
/// DatabaseParameters::seed, making generation fully reproducible.
///
/// Generation is a template over the engine. On a ShardedDatabase,
/// CreateObject round-robins across shards whose oid progressions
/// interleave into the dense global sequence 1, 2, 3, … — so one seed
/// produces the *identical logical object graph at every shard count*
/// (only physical placement differs), which is what makes SHARDN sweeps
/// comparable.

#ifndef OCB_OCB_GENERATOR_H_
#define OCB_OCB_GENERATOR_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <vector>

#include "oodb/database.h"
#include "ocb/parameters.h"
#include "util/rng.h"
#include "util/status.h"

namespace ocb {

/// Outcome of a generation run (feeds Fig. 4's creation-time series).
struct GenerationReport {
  uint64_t classes_created = 0;
  uint64_t objects_created = 0;
  uint64_t references_bound = 0;
  uint64_t nil_references = 0;       ///< Slots left NIL (cycle removal etc.).
  uint64_t cycles_removed = 0;       ///< Consistency-pass suppressions.
  uint64_t backref_overflows = 0;    ///< SetReference refusals (page cap).
  uint64_t wall_micros = 0;          ///< Real elapsed generation time.
  uint64_t sim_nanos = 0;            ///< Simulated I/O time charged.
  uint64_t generation_ios = 0;       ///< Page I/Os in the generation scope.
  uint64_t data_pages = 0;
  uint64_t database_bytes = 0;       ///< Payload bytes stored.
};

/// \brief Generates the OCB database described by \p params into \p db
/// (a Database or a ShardedDatabase).
///
/// The database must be empty. On success the schema is installed and every
/// object is stored; the caller typically follows with db->ColdRestart() so
/// the workload starts on a cold cache.
template <typename DB>
Result<GenerationReport> GenerateDatabase(const DatabaseParameters& params,
                                          DB* db) {
  OCB_RETURN_NOT_OK(params.Validate());
  if (db->object_count() != 0) {
    return Status::InvalidArgument("database is not empty");
  }
  const auto wall_start = std::chrono::steady_clock::now();
  const uint64_t sim_start = db->SimNowNanos();
  ScopedEngineIoScope<DB> scope(db, IoScope::kGeneration);

  LewisPayneRng rng(params.seed);
  GenerationReport report;

  // ---- Step 1: schema instantiation (classes, then inter-class refs) ----
  Schema schema;
  schema.SetRefTypes(Schema::DefaultTraits(params.num_ref_types));
  for (ClassId i = 0; i < params.num_classes; ++i) {
    ClassDescriptor cls;
    cls.id = i;
    cls.maxnref = params.MaxNrefFor(i);
    cls.basesize = params.BaseSizeFor(i);
    cls.instance_size = cls.basesize;  // Finalized by ComputeInstanceSizes.
    cls.tref.resize(cls.maxnref);
    cls.cref.assign(cls.maxnref, kNullClass);
    for (uint32_t j = 0; j < cls.maxnref; ++j) {
      if (!params.fixed_tref.empty()) {
        cls.tref[j] = params.fixed_tref[i][j];
      } else {
        cls.tref[j] = static_cast<RefTypeId>(DrawFromDistribution(
            params.dist1_ref_types, &rng, 0, params.num_ref_types - 1));
      }
    }
    OCB_RETURN_NOT_OK(schema.AddClass(std::move(cls)));
    ++report.classes_created;
  }
  const int64_t sup_class = params.EffectiveSupClass();
  for (ClassId i = 0; i < params.num_classes; ++i) {
    ClassDescriptor& cls = schema.GetMutableClass(i);
    for (uint32_t j = 0; j < cls.maxnref; ++j) {
      if (!params.fixed_cref.empty()) {
        const int64_t fixed = params.fixed_cref[i][j];
        cls.cref[j] =
            fixed < 0 ? kNullClass : static_cast<ClassId>(fixed);
      } else {
        cls.cref[j] = static_cast<ClassId>(DrawFromDistribution(
            params.dist2_class_refs, &rng, params.inf_class, sup_class,
            /*center=*/i));
      }
    }
  }

  // ---- Step 2: consistency check-up ----
  report.cycles_removed = schema.RemoveCycles();
  schema.ComputeInstanceSizes();
  OCB_RETURN_NOT_OK(schema.Validate());
  db->SetSchema(std::move(schema));

  // ---- Step 3: object instantiation ----
  // 3a. Create the objects; class membership per DIST3.
  std::vector<Oid> all_objects;
  all_objects.reserve(params.num_objects);
  for (uint64_t n = 0; n < params.num_objects; ++n) {
    const ClassId cls = static_cast<ClassId>(DrawFromDistribution(
        params.dist3_objects_in_classes, &rng, 0, params.num_classes - 1));
    OCB_ASSIGN_OR_RETURN(Oid oid, db->CreateObject(cls));
    all_objects.push_back(oid);
    ++report.objects_created;
  }

  // 3b. Bind inter-object references; reverse refs are maintained by
  // SetReference. Iterate per class extent, as Fig. 2 does. Extents come
  // through ExtentSnapshot — on a sharded engine the per-shard extents
  // merge into the same ascending-oid order a single store would hold.
  const Schema& sch = db->schema();
  // Extent membership is frozen during binding (SetReference never
  // changes extents), so snapshot every class extent once up front.
  std::vector<std::vector<Oid>> extents(params.num_classes);
  for (ClassId i = 0; i < params.num_classes; ++i) {
    extents[i] = db->ExtentSnapshot(i);
  }
  for (ClassId i = 0; i < params.num_classes; ++i) {
    const ClassDescriptor& cls = sch.GetClass(i);
    const std::vector<Oid>& extent = extents[i];
    for (size_t j = 0; j < extent.size(); ++j) {
      for (uint32_t k = 0; k < cls.maxnref; ++k) {
        const ClassId target_class = cls.cref[k];
        if (target_class == kNullClass) {
          ++report.nil_references;
          continue;
        }
        const std::vector<Oid>& target_extent = extents[target_class];
        if (target_extent.empty()) {
          ++report.nil_references;
          continue;
        }
        // Draw an extent index l in [INFREF, SUPREF] ∩ [0, count-1];
        // DIST4's locality center is the source's own extent position
        // (OO1's "Part #i links near #i" transposed to extents).
        const int64_t hi_bound =
            params.sup_ref < 0
                ? static_cast<int64_t>(target_extent.size()) - 1
                : std::min<int64_t>(
                      params.sup_ref,
                      static_cast<int64_t>(target_extent.size()) - 1);
        const int64_t lo_bound = std::min<int64_t>(params.inf_ref, hi_bound);
        const int64_t l = DrawFromDistribution(
            params.dist4_object_refs, &rng, lo_bound, hi_bound,
            /*center=*/static_cast<int64_t>(j));
        const Oid target = target_extent[static_cast<size_t>(l)];
        Status st = db->SetReference(extent[j], k, target);
        if (st.IsNoSpace()) {
          ++report.backref_overflows;  // Target's backref array is full.
          ++report.nil_references;
          continue;
        }
        OCB_RETURN_NOT_OK(st);
        ++report.references_bound;
      }
    }
  }

  OCB_RETURN_NOT_OK(db->FlushPools());

  const auto wall_end = std::chrono::steady_clock::now();
  report.wall_micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(wall_end -
                                                            wall_start)
          .count());
  report.sim_nanos = db->SimNowNanos() - sim_start;
  report.generation_ios =
      db->IoCountersFor(IoScope::kGeneration).total();
  const ObjectStoreStats store_stats = db->StoreStats();
  report.data_pages =
      store_stats.data_pages.load(std::memory_order_relaxed);
  report.database_bytes =
      store_stats.bytes_stored.load(std::memory_order_relaxed);
  return report;
}

}  // namespace ocb

#endif  // OCB_OCB_GENERATOR_H_
