/// \file generator.h
/// \brief OCB database generation — the three-step algorithm of paper
///        Fig. 2.
///
///   1. Schema instantiation: NC classes from the CLASS metaclass; each
///      reference slot gets a type (DIST1, or fixed a priori) and a target
///      class drawn in [INFCLASS, SUPCLASS] (DIST2, or fixed).
///   2. Consistency check-up: cycles and discrepancies are suppressed in
///      graphs that do not allow them (inheritance, composition), then
///      InstanceSize is accumulated through the inheritance graph.
///   3. Object instantiation: NO objects are created (class per DIST3),
///      then each reference slot is bound to an object of the target class
///      drawn in [INFREF, SUPREF] per DIST4. Reverse references (BackRef)
///      are instantiated together with the direct links.
///
/// All randomness comes from a Lewis–Payne generator seeded from
/// DatabaseParameters::seed, making generation fully reproducible.

#ifndef OCB_OCB_GENERATOR_H_
#define OCB_OCB_GENERATOR_H_

#include <cstdint>

#include "oodb/database.h"
#include "ocb/parameters.h"
#include "util/rng.h"
#include "util/status.h"

namespace ocb {

/// Outcome of a generation run (feeds Fig. 4's creation-time series).
struct GenerationReport {
  uint64_t classes_created = 0;
  uint64_t objects_created = 0;
  uint64_t references_bound = 0;
  uint64_t nil_references = 0;       ///< Slots left NIL (cycle removal etc.).
  uint64_t cycles_removed = 0;       ///< Consistency-pass suppressions.
  uint64_t backref_overflows = 0;    ///< SetReference refusals (page cap).
  uint64_t wall_micros = 0;          ///< Real elapsed generation time.
  uint64_t sim_nanos = 0;            ///< Simulated I/O time charged.
  uint64_t generation_ios = 0;       ///< Page I/Os in the generation scope.
  uint64_t data_pages = 0;
  uint64_t database_bytes = 0;       ///< Payload bytes stored.
};

/// \brief Generates the OCB database described by \p params into \p db.
///
/// The database must be empty. On success the schema is installed and every
/// object is stored; the caller typically follows with db->ColdRestart() so
/// the workload starts on a cold cache.
Result<GenerationReport> GenerateDatabase(const DatabaseParameters& params,
                                          Database* db);

}  // namespace ocb

#endif  // OCB_OCB_GENERATOR_H_
