#include "ocb/transaction.h"

namespace ocb {

bool IsReadOnlyTransactionType(TransactionType type) {
  switch (type) {
    case TransactionType::kSetOriented:
    case TransactionType::kSimpleTraversal:
    case TransactionType::kHierarchyTraversal:
    case TransactionType::kStochasticTraversal:
    case TransactionType::kScan:
      return true;
    case TransactionType::kUpdate:
    case TransactionType::kInsert:
    case TransactionType::kDelete:
      return false;
  }
  return false;
}

TransactionType TransactionExecutor::DrawType(LewisPayneRng* rng) const {
  const double u = rng->NextDouble();
  double cumulative = params_.p_set;
  if (u < cumulative) return TransactionType::kSetOriented;
  cumulative += params_.p_simple;
  if (u < cumulative) return TransactionType::kSimpleTraversal;
  cumulative += params_.p_hierarchy;
  if (u < cumulative) return TransactionType::kHierarchyTraversal;
  cumulative += params_.p_stochastic;
  if (u < cumulative) return TransactionType::kStochasticTraversal;
  cumulative += params_.p_update;
  if (u < cumulative) return TransactionType::kUpdate;
  cumulative += params_.p_insert;
  if (u < cumulative) return TransactionType::kInsert;
  cumulative += params_.p_delete;
  if (u < cumulative) return TransactionType::kDelete;
  if (params_.p_scan > 0.0) return TransactionType::kScan;
  return TransactionType::kStochasticTraversal;  // Rounding fallback.
}

Result<Object> TransactionExecutor::Follow(const Object& from, size_t index,
                                           bool reversed) {
  Result<Object> result = [&]() -> Result<Object> {
    if (!reversed) {
      const Oid target = from.orefs[index];
      const ClassDescriptor& cls = db_->schema().GetClass(from.class_id);
      const RefTypeId type =
          index < cls.tref.size() ? cls.tref[index] : RefTypeId{0};
      return db_->CrossLink(txn_, from.oid, target, type, /*reverse=*/false);
    }
    const Oid target = from.backrefs[index];
    return db_->CrossLink(txn_, from.oid, target, /*type=*/0,
                          /*reverse=*/true);
  }();
  if (!result.ok() && result.status().IsAborted() && txn_failure_.ok()) {
    txn_failure_ = result.status();
  }
  return result;
}

uint64_t TransactionExecutor::SetOriented(const Object& root, uint32_t depth,
                                          bool reversed) {
  // Breadth-first on all the references, level by level, duplicates kept.
  uint64_t accessed = 0;
  std::vector<Object> level = {root};
  for (uint32_t d = 0; d < depth && !level.empty(); ++d) {
    std::vector<Object> next;
    for (const Object& node : level) {
      const size_t fanout =
          reversed ? node.backrefs.size() : node.orefs.size();
      for (size_t i = 0; i < fanout; ++i) {
        if (!reversed && node.orefs[i] == kInvalidOid) continue;
        auto child = Follow(node, i, reversed);
        if (failed()) return accessed;
        if (!child.ok()) continue;  // Vanished under a concurrent client.
        ++accessed;
        next.push_back(std::move(child).value());
      }
    }
    level = std::move(next);
  }
  return accessed;
}

uint64_t TransactionExecutor::DepthFirst(const Object& node, uint32_t depth,
                                         bool reversed) {
  if (depth == 0) return 0;
  uint64_t accessed = 0;
  const size_t fanout = reversed ? node.backrefs.size() : node.orefs.size();
  for (size_t i = 0; i < fanout; ++i) {
    if (!reversed && node.orefs[i] == kInvalidOid) continue;
    auto child = Follow(node, i, reversed);
    if (failed()) return accessed;
    if (!child.ok()) continue;
    ++accessed;
    accessed += DepthFirst(child.value(), depth - 1, reversed);
    if (failed()) return accessed;
  }
  return accessed;
}

uint64_t TransactionExecutor::Hierarchy(const Object& node, uint32_t depth,
                                        RefTypeId type, bool reversed) {
  if (depth == 0) return 0;
  uint64_t accessed = 0;
  if (!reversed) {
    const ClassDescriptor& cls = db_->schema().GetClass(node.class_id);
    for (size_t i = 0; i < node.orefs.size(); ++i) {
      if (node.orefs[i] == kInvalidOid) continue;
      if (i >= cls.tref.size() || cls.tref[i] != type) continue;
      auto child = Follow(node, i, /*reversed=*/false);
      if (failed()) return accessed;
      if (!child.ok()) continue;
      ++accessed;
      accessed += Hierarchy(child.value(), depth - 1, type, reversed);
      if (failed()) return accessed;
    }
    return accessed;
  }
  // Reversed hierarchy traversal ascends through BackRefs. BackRefs carry
  // no slot type, so the reverse direction follows all of them — a
  // documented approximation (see DESIGN.md §5).
  for (size_t i = 0; i < node.backrefs.size(); ++i) {
    auto child = Follow(node, i, /*reversed=*/true);
    if (failed()) return accessed;
    if (!child.ok()) continue;
    ++accessed;
    accessed += Hierarchy(child.value(), depth - 1, type, reversed);
    if (failed()) return accessed;
  }
  return accessed;
}

uint64_t TransactionExecutor::Stochastic(const Object& node, uint32_t depth,
                                         bool reversed, LewisPayneRng* rng) {
  // Random walk: at each step the probability of following reference
  // number N (1-based) is 1/2^N; failing every coin flip ends the walk, as
  // does a null or missing link.
  uint64_t accessed = 0;
  Object current = node;
  for (uint32_t step = 0; step < depth; ++step) {
    const size_t fanout =
        reversed ? current.backrefs.size() : current.orefs.size();
    size_t chosen = fanout;  // Sentinel: no link chosen.
    for (size_t i = 0; i < fanout; ++i) {
      if (rng->Bernoulli(0.5)) {
        chosen = i;
        break;
      }
    }
    if (chosen == fanout) break;
    if (!reversed && current.orefs[chosen] == kInvalidOid) break;
    auto next = Follow(current, chosen, reversed);
    if (!next.ok()) break;
    ++accessed;
    current = std::move(next).value();
  }
  return accessed;
}

Result<TransactionResult> TransactionExecutor::Execute(TransactionType type,
                                                       Oid root,
                                                       bool reversed,
                                                       LewisPayneRng* rng) {
  TransactionResult result;
  result.type = type;
  result.root = root;
  result.reversed = reversed;

  const uint64_t sim_start = db_->sim_clock()->now_nanos();
  const uint64_t reads_start =
      db_->disk()->counters(IoScope::kTransaction).reads;
  // Latch-wait accounting is thread-local (see storage/latch.h); snapshot
  // the counters so the deltas attribute to this transaction.
  const ThreadLatchWaits latch_start = CurrentThreadLatchWaits();
  auto fill_latch_waits = [&result, &latch_start]() {
    const ThreadLatchWaits& now = CurrentThreadLatchWaits();
    result.facade_wait_nanos = now.facade_nanos - latch_start.facade_nanos;
    result.page_latch_wait_nanos = now.page_nanos - latch_start.page_nanos;
  };

  // Transaction bracket: the 2PL path begins a real transaction (locks +
  // undo log); read-only types become MVCC snapshot readers when enabled;
  // the legacy path only notifies the observer.
  std::unique_ptr<TransactionContext> txn;
  txn_failure_ = Status::OK();
  if (transactional_) {
    const bool read_only =
        params_.mvcc_snapshot_reads && IsReadOnlyTransactionType(type);
    txn = db_->BeginTxn(read_only);
    txn_ = txn.get();
    // BeginTxn downgrades to a locking txn when MVCC is disabled
    // database-wide; report what actually ran.
    result.read_only = txn->read_only();
  } else {
    txn_ = nullptr;
    db_->BeginTransaction();
  }
  // Ends the transaction bracket; returns true when the txn committed
  // (legacy brackets always "commit").
  auto finish = [&](bool rolled_back) {
    if (transactional_) {
      result.lock_wait_nanos = txn->lock_wait_nanos();
      result.snapshot_reads = txn->snapshot_reads();
      if (rolled_back) {
        db_->AbortTxn(txn.get());
      } else {
        db_->CommitTxn(txn.get());
      }
      txn_ = nullptr;
    } else {
      db_->EndTransaction();
    }
  };

  auto root_obj = db_->GetObject(txn_, root);
  if (!root_obj.ok()) {
    if (root_obj.status().IsAborted()) {
      finish(/*rolled_back=*/true);
      result.aborted = true;
      result.sim_nanos = db_->sim_clock()->now_nanos() - sim_start;
      result.io_reads =
          db_->disk()->counters(IoScope::kTransaction).reads - reads_start;
      fill_latch_waits();
      return result;
    }
    finish(/*rolled_back=*/transactional_);
    return root_obj.status();
  }
  uint64_t accessed = 1;  // The root itself.
  switch (type) {
    case TransactionType::kSetOriented:
      accessed += SetOriented(root_obj.value(), params_.set_depth, reversed);
      break;
    case TransactionType::kSimpleTraversal:
      accessed += DepthFirst(root_obj.value(), params_.simple_depth,
                             reversed);
      break;
    case TransactionType::kHierarchyTraversal:
      accessed += Hierarchy(root_obj.value(), params_.hierarchy_depth,
                            params_.hierarchy_ref_type, reversed);
      break;
    case TransactionType::kStochasticTraversal:
      accessed += Stochastic(root_obj.value(), params_.stochastic_depth,
                             reversed, rng);
      break;
    case TransactionType::kUpdate: {
      // Rewrite the root in place (attribute edit; size unchanged).
      Status st = db_->PutObject(txn_, root_obj.value());
      if (!st.ok()) {
        if (st.IsAborted()) {
          txn_failure_ = st;
          break;
        }
        finish(/*rolled_back=*/transactional_);
        return st;
      }
      break;
    }
    case TransactionType::kInsert: {
      // Create a sibling of the root's class and wire its references to
      // uniform members of the schema-declared target extents.
      const ClassId class_id = root_obj->class_id;
      auto created = db_->CreateObject(txn_, class_id);
      if (!created.ok()) {
        if (created.status().IsAborted()) {
          txn_failure_ = created.status();
          break;
        }
        finish(/*rolled_back=*/transactional_);
        return created.status();
      }
      ++accessed;
      const ClassDescriptor& cls = db_->schema().GetClass(class_id);
      for (uint32_t k = 0; k < cls.maxnref && !failed(); ++k) {
        if (cls.cref[k] == kNullClass) continue;
        // Latched copy: a concurrent client may be growing this extent.
        const std::vector<Oid> extent = db_->ExtentSnapshot(cls.cref[k]);
        if (extent.empty()) continue;
        const Oid target = extent[static_cast<size_t>(rng->UniformInt(
            0, static_cast<int64_t>(extent.size()) - 1))];
        Status st = db_->SetReference(txn_, *created, k, target);
        if (st.ok()) {
          ++accessed;
        } else if (st.IsAborted()) {
          txn_failure_ = st;
        } else if (!st.IsNoSpace() && !st.IsNotFound()) {
          finish(/*rolled_back=*/transactional_);
          return st;
        }
      }
      break;
    }
    case TransactionType::kDelete: {
      Status st = db_->DeleteObject(txn_, root);
      if (!st.ok() && !st.IsNotFound()) {
        if (st.IsAborted()) {
          txn_failure_ = st;
          break;
        }
        finish(/*rolled_back=*/transactional_);
        return st;
      }
      break;
    }
    case TransactionType::kScan: {
      // Sequential scan of the root's class extent (HyperModel-style);
      // latched copy first — a concurrent client may mutate it. Under
      // MVCC the *member objects* read snapshot-consistently, but the
      // membership list itself is the current extent (extents are not
      // versioned): an object deleted or created by a concurrent txn may
      // be missing from / extra in the walk. Snapshot-invisible members
      // come back NotFound and are skipped. See ROADMAP "versioned
      // extents".
      const std::vector<Oid> extent =
          db_->ExtentSnapshot(root_obj->class_id);
      for (Oid member : extent) {
        auto obj = db_->GetObject(txn_, member);
        if (obj.ok()) {
          ++accessed;
        } else if (obj.status().IsAborted()) {
          txn_failure_ = obj.status();
          break;
        }
      }
      break;
    }
  }
  const bool rolled_back = transactional_ && failed();
  finish(rolled_back);
  result.aborted = rolled_back;

  result.objects_accessed = accessed;
  result.sim_nanos = db_->sim_clock()->now_nanos() - sim_start;
  result.io_reads =
      db_->disk()->counters(IoScope::kTransaction).reads - reads_start;
  fill_latch_waits();
  return result;
}

}  // namespace ocb
