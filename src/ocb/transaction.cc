#include "ocb/transaction.h"

namespace ocb {

bool IsReadOnlyTransactionType(TransactionType type) {
  switch (type) {
    case TransactionType::kSetOriented:
    case TransactionType::kSimpleTraversal:
    case TransactionType::kHierarchyTraversal:
    case TransactionType::kStochasticTraversal:
    case TransactionType::kScan:
      return true;
    case TransactionType::kUpdate:
    case TransactionType::kInsert:
    case TransactionType::kDelete:
      return false;
  }
  return false;
}

}  // namespace ocb
