#include "ocb/experiment.h"

namespace ocb {

Result<BeforeAfterResult> RunBeforeAfterOnDatabase(
    Database* db, const WorkloadParameters& workload,
    ClusteringPolicy* policy) {
  BeforeAfterResult result;
  result.policy_name = policy->name();

  OCB_RETURN_NOT_OK(db->ColdRestart());
  db->SetObserver(policy);

  // "Before reclustering": the policy observes but has not reorganized.
  OCB_ASSIGN_OR_RETURN(MultiClientReport before,
                       RunMultiClient(db, workload));
  result.before = std::move(before);

  // Reorganize while idle; measure the clustering overhead I/O.
  const uint64_t clustering_start =
      db->disk()->counters(IoScope::kClustering).total();
  OCB_RETURN_NOT_OK(policy->Reorganize(db));
  result.clustering_overhead_io =
      db->disk()->counters(IoScope::kClustering).total() - clustering_start;

  // "After reclustering": cold cache, same workload.
  OCB_RETURN_NOT_OK(db->ColdRestart());
  OCB_ASSIGN_OR_RETURN(MultiClientReport after,
                       RunMultiClient(db, workload));
  result.after = std::move(after);

  result.policy_stats = policy->stats();
  db->SetObserver(nullptr);
  return result;
}

Result<BeforeAfterResult> RunBeforeAfterExperiment(
    const ExperimentConfig& config, ClusteringPolicy* policy) {
  OCB_RETURN_NOT_OK(config.storage.Validate());
  Database db(config.storage);
  OCB_ASSIGN_OR_RETURN(GenerationReport generation,
                       GenerateDatabase(config.preset.database, &db));
  OCB_ASSIGN_OR_RETURN(
      BeforeAfterResult result,
      RunBeforeAfterOnDatabase(&db, config.preset.workload, policy));
  result.generation = generation;
  return result;
}

}  // namespace ocb
