#include "ocb/metrics.h"

#include "util/format.h"

namespace ocb {

void PhaseMetrics::Merge(const PhaseMetrics& other) {
  for (int t = 0; t < kNumTransactionTypes; ++t) {
    per_type[static_cast<size_t>(t)].Merge(
        other.per_type[static_cast<size_t>(t)]);
  }
  global.Merge(other.global);
  transaction_io_reads += other.transaction_io_reads;
  transaction_io_writes += other.transaction_io_writes;
  buffer_hits += other.buffer_hits;
  buffer_misses += other.buffer_misses;
  wall_micros += other.wall_micros;
  aborts += other.aborts;
  lock_wait_nanos += other.lock_wait_nanos;
  facade_wait_nanos += other.facade_wait_nanos;
  page_latch_wait_nanos += other.page_latch_wait_nanos;
  read_only_commits += other.read_only_commits;
  snapshot_reads += other.snapshot_reads;
  cross_shard_commits += other.cross_shard_commits;
  twopc_nanos += other.twopc_nanos;
  lock_wait_histogram.Merge(other.lock_wait_histogram);
  commit_latency_histogram.Merge(other.commit_latency_histogram);
  twopc_histogram.Merge(other.twopc_histogram);
}

std::string PhaseMetrics::ToTableString(const std::string& title) const {
  TextTable t({"Transaction type", "Count", "Mean response", "p50", "p99",
               "Mean objects", "Mean I/Os"});
  auto row = [&](const std::string& name, const TypeMetrics& m) {
    t.AddRow({name, Format("%llu", (unsigned long long)m.transactions),
              HumanDuration(static_cast<uint64_t>(m.response_nanos.mean())),
              HumanDuration(m.response_histogram.Percentile(50)),
              HumanDuration(m.response_histogram.Percentile(99)),
              Format("%.1f", m.objects_accessed.mean()),
              Format("%.2f", m.io_reads.mean())});
  };
  for (int i = 0; i < kNumTransactionTypes; ++i) {
    const TypeMetrics& m = per_type[static_cast<size_t>(i)];
    if (m.transactions == 0 && i >= 4) continue;  // Hide unused extension.
    row(TransactionTypeToString(static_cast<TransactionType>(i)), m);
  }
  t.AddSeparator();
  row("GLOBAL", global);
  std::string footer =
      Format("transaction I/O: %llu reads, %llu writes; buffer hit "
             "ratio %.3f\n",
             (unsigned long long)transaction_io_reads,
             (unsigned long long)transaction_io_writes,
             buffer_hit_ratio());
  if (aborts > 0 || lock_wait_nanos > 0) {
    footer += Format("concurrency: %llu aborts (rate %.3f), lock wait %s\n",
                     (unsigned long long)aborts, abort_rate(),
                     HumanDuration(lock_wait_nanos).c_str());
  }
  if (lock_wait_histogram.count() > 0) {
    footer += Format("lock wait/txn: p50 %s, p95 %s, p99 %s, max %s\n",
                     HumanDuration(lock_wait_histogram.Percentile(50)).c_str(),
                     HumanDuration(lock_wait_histogram.Percentile(95)).c_str(),
                     HumanDuration(lock_wait_histogram.Percentile(99)).c_str(),
                     HumanDuration(lock_wait_histogram.max()).c_str());
  }
  if (commit_latency_histogram.count() > 0) {
    footer += Format(
        "commit latency: p50 %s, p95 %s, p99 %s, max %s\n",
        HumanDuration(commit_latency_histogram.Percentile(50)).c_str(),
        HumanDuration(commit_latency_histogram.Percentile(95)).c_str(),
        HumanDuration(commit_latency_histogram.Percentile(99)).c_str(),
        HumanDuration(commit_latency_histogram.max()).c_str());
  }
  if (twopc_histogram.count() > 0) {
    footer += Format("2pc section/txn: p50 %s, p95 %s, p99 %s, max %s\n",
                     HumanDuration(twopc_histogram.Percentile(50)).c_str(),
                     HumanDuration(twopc_histogram.Percentile(95)).c_str(),
                     HumanDuration(twopc_histogram.Percentile(99)).c_str(),
                     HumanDuration(twopc_histogram.max()).c_str());
  }
  if (facade_wait_nanos > 0 || page_latch_wait_nanos > 0) {
    footer += Format("latching: facade wait %s, page-latch wait %s\n",
                     HumanDuration(facade_wait_nanos).c_str(),
                     HumanDuration(page_latch_wait_nanos).c_str());
  }
  if (read_only_commits > 0) {
    footer += Format(
        "mvcc: %llu snapshot transactions, %llu snapshot reads\n",
        (unsigned long long)read_only_commits,
        (unsigned long long)snapshot_reads);
  }
  return title + "\n" + t.ToString() + footer;
}

}  // namespace ocb
