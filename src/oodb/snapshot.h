/// \file snapshot.h
/// \brief Whole-database snapshot save/load.
///
/// OCB's generation phase is the expensive part of a benchmark campaign
/// (paper Fig. 4: the largest database took hours on the 1998 testbed).
/// Snapshots let a campaign generate once and re-load for every policy /
/// parameter variation: the file captures the schema (classes, traits,
/// extents), the object table, the oid counter and every disk page image.
///
/// Format (little-endian, versioned):
///   magic "OCBSNAP1" | u64 page_size | u64 page_count
///   schema: u64 nreft | per type {u8 acyclic, u8 inheritance, name}
///           u64 nclasses | per class {ids, sizes, tref[], cref[], extent}
///   table:  u64 next_oid | u64 entries | per entry {oid, page, slot}
///   pages:  page_count raw page images
///
/// Loading requires a Database whose StorageOptions use the same
/// page_size; buffer-pool size and latencies are free to differ (they are
/// benchmark knobs, not data).

#ifndef OCB_OODB_SNAPSHOT_H_
#define OCB_OODB_SNAPSHOT_H_

#include <string>

#include "oodb/database.h"
#include "util/status.h"

namespace ocb {

/// \brief Flushes \p db and writes a complete snapshot to \p path.
///
/// Runs under Database::QuiesceGuard: it first waits out every in-flight
/// page pin (a reader mid-fetch can no longer race the flush) and holds
/// exclusive physical access for the whole save. It still refuses
/// (InvalidArgument) while any transaction holds object locks: their
/// uncommitted in-place writes would be persisted with no undo log to
/// repair them on load. Commit or abort every in-flight transaction
/// first — pins drain on their own.
Status SaveSnapshot(Database* db, const std::string& path);

/// \brief Loads a snapshot into \p db, which must be freshly constructed
/// (empty) with a matching page_size. On success the database is
/// byte-for-byte equivalent to the saved one (cold cache).
Status LoadSnapshot(Database* db, const std::string& path);

}  // namespace ocb

#endif  // OCB_OODB_SNAPSHOT_H_
