#include "oodb/schema.h"

#include <algorithm>
#include <unordered_set>

#include "util/format.h"

namespace ocb {

void Schema::SetRefTypes(std::vector<RefTypeTraits> traits) {
  ref_types_ = std::move(traits);
}

std::vector<RefTypeTraits> Schema::DefaultTraits(size_t nreft) {
  std::vector<RefTypeTraits> traits;
  traits.reserve(nreft);
  for (size_t t = 0; t < nreft; ++t) {
    RefTypeTraits r;
    if (t == 0) {
      r = RefTypeTraits{"inheritance", /*acyclic=*/true,
                        /*is_inheritance=*/true};
    } else if (t == 1) {
      r = RefTypeTraits{"composition", /*acyclic=*/true,
                        /*is_inheritance=*/false};
    } else {
      r = RefTypeTraits{Format("association-%zu", t), /*acyclic=*/false,
                        /*is_inheritance=*/false};
    }
    traits.push_back(std::move(r));
  }
  return traits;
}

Status Schema::AddClass(ClassDescriptor descriptor) {
  if (descriptor.id != classes_.size()) {
    return Status::InvalidArgument(
        Format("class id %u does not match position %zu", descriptor.id,
               classes_.size()));
  }
  if (descriptor.tref.size() != descriptor.maxnref ||
      descriptor.cref.size() != descriptor.maxnref) {
    return Status::InvalidArgument("tref/cref size must equal maxnref");
  }
  classes_.push_back(std::move(descriptor));
  return Status::OK();
}

namespace {

/// DFS over the class graph restricted to references of type \p type,
/// returning true if \p target is reachable from \p start.
bool Reaches(const std::vector<ClassDescriptor>& classes, ClassId start,
             ClassId target, RefTypeId type) {
  if (start == kNullClass) return false;
  std::vector<ClassId> stack = {start};
  std::unordered_set<ClassId> visited;
  while (!stack.empty()) {
    const ClassId current = stack.back();
    stack.pop_back();
    if (current == target) return true;
    if (!visited.insert(current).second) continue;
    const ClassDescriptor& cls = classes[current];
    for (uint32_t j = 0; j < cls.maxnref; ++j) {
      if (cls.tref[j] == type && cls.cref[j] != kNullClass) {
        stack.push_back(cls.cref[j]);
      }
    }
  }
  return false;
}

}  // namespace

size_t Schema::RemoveCycles() {
  size_t nulled = 0;
  // Fig. 2: for each class i and slot j whose type forbids cycles, browse
  // the CRef(j) graph following same-typed references; if class i appears
  // (i.e. the new edge i->CRef(j) would close a cycle), null the reference.
  // Scanning in (i, j) order and checking against the *current* graph makes
  // the pass deterministic and leaves a DAG: an edge is kept only if, at
  // its turn, it cannot reach back to its source.
  for (ClassId i = 0; i < classes_.size(); ++i) {
    ClassDescriptor& cls = classes_[i];
    for (uint32_t j = 0; j < cls.maxnref; ++j) {
      if (cls.cref[j] == kNullClass) continue;
      const RefTypeId type = cls.tref[j];
      if (!ref_types_[type].acyclic) continue;
      if (cls.cref[j] == i || Reaches(classes_, cls.cref[j], i, type)) {
        cls.cref[j] = kNullClass;
        ++nulled;
      }
    }
  }
  return nulled;
}

void Schema::ComputeInstanceSizes() {
  // ancestors[c] = set of classes whose BASESIZE flows into c. An edge
  // i --inheritance--> c means c inherits from i.
  const size_t nc = classes_.size();
  std::vector<std::unordered_set<ClassId>> ancestors(nc);
  std::vector<std::vector<ClassId>> children(nc);  // i -> {c : i inh-> c}
  std::vector<uint32_t> indegree(nc, 0);
  for (ClassId i = 0; i < nc; ++i) {
    const ClassDescriptor& cls = classes_[i];
    for (uint32_t j = 0; j < cls.maxnref; ++j) {
      if (cls.cref[j] == kNullClass) continue;
      if (!ref_types_[cls.tref[j]].is_inheritance) continue;
      children[i].push_back(cls.cref[j]);
      ++indegree[cls.cref[j]];
    }
  }
  // Topological propagation (RemoveCycles guarantees a DAG).
  std::vector<ClassId> queue;
  for (ClassId c = 0; c < nc; ++c) {
    if (indegree[c] == 0) queue.push_back(c);
  }
  for (size_t head = 0; head < queue.size(); ++head) {
    const ClassId i = queue[head];
    for (ClassId c : children[i]) {
      ancestors[c].insert(i);
      ancestors[c].insert(ancestors[i].begin(), ancestors[i].end());
      if (--indegree[c] == 0) queue.push_back(c);
    }
  }
  for (ClassId c = 0; c < nc; ++c) {
    uint64_t size = classes_[c].basesize;
    for (ClassId a : ancestors[c]) size += classes_[a].basesize;
    classes_[c].instance_size = static_cast<uint32_t>(size);
  }
}

Status Schema::Validate() const {
  if (ref_types_.empty()) {
    return Status::InvalidArgument("schema has no reference types");
  }
  for (const ClassDescriptor& cls : classes_) {
    if (cls.tref.size() != cls.maxnref || cls.cref.size() != cls.maxnref) {
      return Status::Corruption(
          Format("class %u slot arrays do not match maxnref", cls.id));
    }
    for (uint32_t j = 0; j < cls.maxnref; ++j) {
      if (cls.tref[j] >= ref_types_.size()) {
        return Status::Corruption(
            Format("class %u slot %u has unknown ref type %u", cls.id, j,
                   cls.tref[j]));
      }
      if (cls.cref[j] != kNullClass && cls.cref[j] >= classes_.size()) {
        return Status::Corruption(
            Format("class %u slot %u targets unknown class %u", cls.id, j,
                   cls.cref[j]));
      }
    }
  }
  return Status::OK();
}

bool Schema::HasForbiddenCycle() const {
  for (RefTypeId t = 0; t < ref_types_.size(); ++t) {
    if (!ref_types_[t].acyclic) continue;
    // Kahn's algorithm per acyclic type: leftovers indicate a cycle.
    const size_t nc = classes_.size();
    std::vector<uint32_t> indegree(nc, 0);
    for (ClassId i = 0; i < nc; ++i) {
      for (uint32_t j = 0; j < classes_[i].maxnref; ++j) {
        if (classes_[i].tref[j] == t && classes_[i].cref[j] != kNullClass) {
          ++indegree[classes_[i].cref[j]];
        }
      }
    }
    std::vector<ClassId> queue;
    for (ClassId c = 0; c < nc; ++c) {
      if (indegree[c] == 0) queue.push_back(c);
    }
    size_t processed = 0;
    for (size_t head = 0; head < queue.size(); ++head, ++processed) {
      const ClassId i = queue[head];
      for (uint32_t j = 0; j < classes_[i].maxnref; ++j) {
        if (classes_[i].tref[j] == t && classes_[i].cref[j] != kNullClass) {
          if (--indegree[classes_[i].cref[j]] == 0) {
            queue.push_back(classes_[i].cref[j]);
          }
        }
      }
    }
    if (processed != nc) return true;
  }
  return false;
}

uint64_t Schema::TotalInstances() const {
  uint64_t total = 0;
  for (const ClassDescriptor& cls : classes_) total += cls.iterator.size();
  return total;
}

}  // namespace ocb
