/// \file schema.h
/// \brief OCB's metaclass-instantiated schema (paper Fig. 1) and the
///        consistency pass of the generation algorithm (paper Fig. 2).
///
/// A schema is NC classes, each an instantiation of the CLASS metaclass
/// with two parameters: MAXNREF (number of inter-class references) and
/// BASESIZE (increment used to compute InstanceSize once the inheritance
/// graph is processed). Each reference slot j of class i carries a
/// reference *type* TRef(j) ∈ [0, NREFT) — modeling inheritance,
/// aggregation, user association, ... — and a target class CRef(j), which
/// may be null.
///
/// Reference types have traits: *acyclic* types (inheritance, composition)
/// must form DAGs, enforced by RemoveCycles(); *inheritance* types
/// additionally propagate BASESIZE down the hierarchy, computed by
/// ComputeInstanceSizes().

#ifndef OCB_OODB_SCHEMA_H_
#define OCB_OODB_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/types.h"
#include "util/status.h"

namespace ocb {

/// Class identifier; classes are numbered 0..NC-1.
using ClassId = uint32_t;
inline constexpr ClassId kNullClass = 0xFFFFFFFFu;  ///< NIL class reference.

/// Reference type identifier, in [0, NREFT).
using RefTypeId = uint16_t;

/// Semantic traits of one reference type.
struct RefTypeTraits {
  std::string name;          ///< For reports: "inheritance", "aggregation"...
  bool acyclic = false;      ///< Graphs of this type must be cycle-free.
  bool is_inheritance = false;  ///< Propagates BASESIZE to subclasses.
};

/// \brief One instantiation of the CLASS metaclass.
struct ClassDescriptor {
  ClassId id = 0;
  uint32_t maxnref = 0;    ///< Reference slots per instance.
  uint32_t basesize = 0;   ///< Size increment (bytes).
  uint32_t instance_size = 0;  ///< Filler bytes; set by ComputeInstanceSizes.

  std::vector<RefTypeId> tref;  ///< Type of each reference slot [maxnref].
  std::vector<ClassId> cref;    ///< Target class of each slot; kNullClass ok.

  /// Extent: every live instance of the class, in creation order
  /// (the paper's "Iterator: Array [0..*] of Reference to OBJECT").
  std::vector<Oid> iterator;
};

/// \brief The instantiated schema plus reference-type metadata.
class Schema {
 public:
  Schema() = default;

  /// Declares NREFT reference types. Index 0 is conventionally inheritance.
  /// If \p traits is empty, DefaultTraits(nreft) is used.
  void SetRefTypes(std::vector<RefTypeTraits> traits);

  /// The default trait assignment used by the generator: type 0 =
  /// inheritance (acyclic), type 1 = composition (acyclic), further types
  /// are plain associations (cycles allowed).
  static std::vector<RefTypeTraits> DefaultTraits(size_t nreft);

  /// Appends a class (id must equal the current class_count()).
  Status AddClass(ClassDescriptor descriptor);

  size_t class_count() const { return classes_.size(); }
  size_t ref_type_count() const { return ref_types_.size(); }

  const ClassDescriptor& GetClass(ClassId id) const { return classes_[id]; }
  ClassDescriptor& GetMutableClass(ClassId id) { return classes_[id]; }

  const RefTypeTraits& ref_type(RefTypeId t) const { return ref_types_[t]; }

  /// Fig. 2 consistency step: for every acyclic reference type, nulls out
  /// class references that would close a cycle or that reach back to the
  /// referencing class. Deterministic: slots are scanned in (class, slot)
  /// order. Returns the number of references nulled.
  size_t RemoveCycles();

  /// Computes InstanceSize for every class: its own BASESIZE plus the
  /// BASESIZE of every distinct transitive inheritance ancestor. An edge
  /// i --(inheritance)--> c makes c (and c's inheritance descendants)
  /// inherit from i, per Fig. 2's "add BASESIZE(i) to InstanceSize for each
  /// subclass". Requires RemoveCycles() to have run (inheritance is a DAG).
  void ComputeInstanceSizes();

  /// Validates structural invariants: slot vector sizes match maxnref, all
  /// cref targets in range, tref values < NREFT.
  Status Validate() const;

  /// True if any class still participates in a cycle of acyclic-typed
  /// references (used by tests; RemoveCycles guarantees false).
  bool HasForbiddenCycle() const;

  /// Sum over classes of instances * size — a size estimate for reports.
  uint64_t TotalInstances() const;

 private:
  std::vector<ClassDescriptor> classes_;
  std::vector<RefTypeTraits> ref_types_;
};

}  // namespace ocb

#endif  // OCB_OODB_SCHEMA_H_
