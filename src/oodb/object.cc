#include "oodb/object.h"

#include <cstring>

#include "util/format.h"

namespace ocb {
namespace {

void PutU16(std::vector<uint8_t>* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}
void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}
void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}
uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}
uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}
uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

void Object::EncodeTo(std::vector<uint8_t>* out) const {
  out->clear();
  out->reserve(EncodedSize());
  PutU32(out, class_id);
  PutU16(out, static_cast<uint16_t>(orefs.size()));
  PutU16(out, static_cast<uint16_t>(backrefs.size()));
  PutU32(out, filler_size);
  for (Oid ref : orefs) PutU64(out, ref);
  for (Oid ref : backrefs) PutU64(out, ref);
  // Filler: a cheap deterministic pattern keyed by class so that tests can
  // detect relocation corrupting payload bytes.
  for (uint32_t i = 0; i < filler_size; ++i) {
    out->push_back(static_cast<uint8_t>((class_id * 131 + i) & 0xFF));
  }
}

Result<Object> Object::Decode(std::span<const uint8_t> bytes) {
  if (bytes.size() < 12) {
    return Status::Corruption("object record shorter than header");
  }
  Object obj;
  obj.class_id = GetU32(bytes.data());
  const uint16_t oref_count = GetU16(bytes.data() + 4);
  const uint16_t backref_count = GetU16(bytes.data() + 6);
  obj.filler_size = GetU32(bytes.data() + 8);
  const size_t expected = 12 + 8 * (static_cast<size_t>(oref_count) +
                                    backref_count) +
                          obj.filler_size;
  if (bytes.size() != expected) {
    return Status::Corruption(
        Format("object record size %zu, expected %zu", bytes.size(),
               expected));
  }
  const uint8_t* p = bytes.data() + 12;
  obj.orefs.resize(oref_count);
  for (uint16_t i = 0; i < oref_count; ++i, p += 8) obj.orefs[i] = GetU64(p);
  obj.backrefs.resize(backref_count);
  for (uint16_t i = 0; i < backref_count; ++i, p += 8) {
    obj.backrefs[i] = GetU64(p);
  }
  // Verify the filler pattern (cheap corruption tripwire).
  for (uint32_t i = 0; i < obj.filler_size; ++i) {
    if (p[i] != static_cast<uint8_t>((obj.class_id * 131 + i) & 0xFF)) {
      return Status::Corruption(
          Format("filler corruption at byte %u", i));
    }
  }
  return obj;
}

size_t Object::LiveRefCount() const {
  size_t live = 0;
  for (Oid ref : orefs) {
    if (ref != kInvalidOid) ++live;
  }
  return live;
}

}  // namespace ocb
