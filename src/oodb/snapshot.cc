#include "oodb/snapshot.h"

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "util/format.h"
#include "wal/killpoint.h"
#include "wal/wal_format.h"
#include "wal/wal_writer.h"

namespace ocb {
namespace {

constexpr char kMagic[8] = {'O', 'C', 'B', 'S', 'N', 'A', 'P', '1'};

class Writer {
 public:
  explicit Writer(std::FILE* file) : file_(file) {}

  void U8(uint8_t v) { Raw(&v, 1); }
  void U16(uint16_t v) { Raw(&v, 2); }
  void U32(uint32_t v) { Raw(&v, 4); }
  void U64(uint64_t v) { Raw(&v, 8); }
  void Str(const std::string& s) {
    U64(s.size());
    Raw(s.data(), s.size());
  }
  void Raw(const void* data, size_t size) {
    if (ok_ && std::fwrite(data, 1, size, file_) != size) ok_ = false;
  }
  bool ok() const { return ok_; }

 private:
  std::FILE* file_;
  bool ok_ = true;
};

class Reader {
 public:
  explicit Reader(std::FILE* file) : file_(file) {}

  uint8_t U8() { return RawInt<uint8_t>(); }
  uint16_t U16() { return RawInt<uint16_t>(); }
  uint32_t U32() { return RawInt<uint32_t>(); }
  uint64_t U64() { return RawInt<uint64_t>(); }
  std::string Str() {
    const uint64_t size = U64();
    if (!ok_ || size > (1u << 20)) {
      ok_ = false;
      return {};
    }
    std::string s(size, '\0');
    Raw(s.data(), size);
    return s;
  }
  void Raw(void* data, size_t size) {
    if (ok_ && std::fread(data, 1, size, file_) != size) ok_ = false;
  }
  bool ok() const { return ok_; }

 private:
  template <typename T>
  T RawInt() {
    T v{};
    Raw(&v, sizeof(T));
    return v;
  }
  std::FILE* file_;
  bool ok_ = true;
};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

Status SaveSnapshot(Database* db, const std::string& path) {
  // Quiesce: drains every in-flight page pin (so a reader mid-fetch
  // cannot race the flush below) and blocks new physical activity from
  // other threads for the duration of the save.
  Database::QuiesceGuard quiesce(db);
  // An in-flight transaction holding locks means the pages (and the undo
  // state that would repair them) are mid-flight too: a snapshot taken now
  // would capture uncommitted writes with no way to roll them back on
  // load. Refuse instead of persisting a torn database.
  if (db->lock_manager()->locked_object_count() > 0) {
    return Status::InvalidArgument(
        "SaveSnapshot refused: in-flight transactions hold object locks; "
        "commit or abort them first");
  }
  OCB_RETURN_NOT_OK(db->buffer_pool()->FlushAll());

  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) {
    return Status::IOError(Format("cannot create '%s'", path.c_str()));
  }
  Writer w(file.get());
  w.Raw(kMagic, sizeof(kMagic));
  w.U64(db->options().page_size);
  w.U64(db->disk()->num_pages());

  // Schema.
  const Schema& schema = db->schema();
  w.U64(schema.ref_type_count());
  for (RefTypeId t = 0; t < schema.ref_type_count(); ++t) {
    const RefTypeTraits& traits = schema.ref_type(t);
    w.U8(traits.acyclic ? 1 : 0);
    w.U8(traits.is_inheritance ? 1 : 0);
    w.Str(traits.name);
  }
  w.U64(schema.class_count());
  for (ClassId c = 0; c < schema.class_count(); ++c) {
    const ClassDescriptor& cls = schema.GetClass(c);
    w.U32(cls.maxnref);
    w.U32(cls.basesize);
    w.U32(cls.instance_size);
    for (uint32_t j = 0; j < cls.maxnref; ++j) w.U16(cls.tref[j]);
    for (uint32_t j = 0; j < cls.maxnref; ++j) w.U32(cls.cref[j]);
    w.U64(cls.iterator.size());
    for (Oid oid : cls.iterator) w.U64(oid);
  }

  // Object table.
  const auto table = db->object_store()->TableSnapshot();
  w.U64(db->object_store()->max_oid() + 1);  // next_oid.
  w.U64(table.size());
  for (const auto& [oid, loc] : table) {
    w.U64(oid);
    w.U32(loc.page_id);
    w.U16(loc.slot_id);
  }

  // Page images.
  for (PageId p = 0; p < db->disk()->num_pages(); ++p) {
    w.Raw(db->disk()->raw_page(p), db->options().page_size);
  }
  if (!w.ok()) {
    return Status::IOError(Format("short write to '%s'", path.c_str()));
  }
  // The checkpoint record below must never point at a snapshot the
  // kernel could still lose: flush and fsync before logging it.
  if (std::fflush(file.get()) != 0 || ::fsync(fileno(file.get())) != 0) {
    return Status::IOError(Format("fsync failed for '%s'", path.c_str()));
  }
  if (db->wal_enabled()) {
    // Crash window the kill-point harness probes: snapshot durable but
    // its checkpoint record not yet logged — recovery must fall back to
    // an older checkpoint or a from-scratch replay.
    wal_killpoint::MaybeKill("mid-checkpoint");
    // Watermark: with no transaction in flight (checked above), every
    // commit <= latest is in the snapshot and every later one is not.
    // Replay is idempotent, so a conservative (low) watermark is safe.
    wal::WalRecord rec;
    rec.type = wal::WalRecordType::kCheckpoint;
    rec.commit_ts = db->version_store()->latest();
    wal::WalOp op;
    op.kind = wal::WalOpKind::kCheckpointInfo;
    op.payload.assign(path.begin(), path.end());
    rec.ops.push_back(std::move(op));
    OCB_RETURN_NOT_OK(db->wal()->Append(rec));
    OCB_RETURN_NOT_OK(db->wal()->Force());
    // Closed segments wholly below this checkpoint replay to state the
    // snapshot already captures — reclaim them. Best-effort: a prune that
    // keeps a segment only costs replay time, never correctness.
    (void)db->wal()->PruneSegments(rec.commit_ts);
  }
  return Status::OK();
}

Status LoadSnapshot(Database* db, const std::string& path) {
  Database::QuiesceGuard quiesce(db);
  if (db->object_count() != 0) {
    return Status::InvalidArgument("LoadSnapshot requires an empty database");
  }
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return Status::IOError(Format("cannot open '%s'", path.c_str()));
  }
  Reader r(file.get());
  char magic[8];
  r.Raw(magic, sizeof(magic));
  if (!r.ok() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("not an OCB snapshot");
  }
  const uint64_t page_size = r.U64();
  if (page_size != db->options().page_size) {
    return Status::InvalidArgument(
        Format("snapshot page_size %llu != database page_size %zu",
               (unsigned long long)page_size, db->options().page_size));
  }
  const uint64_t page_count = r.U64();

  // Schema.
  Schema schema;
  const uint64_t nreft = r.U64();
  if (!r.ok() || nreft > 1024) return Status::Corruption("bad nreft");
  std::vector<RefTypeTraits> traits(nreft);
  for (auto& t : traits) {
    t.acyclic = r.U8() != 0;
    t.is_inheritance = r.U8() != 0;
    t.name = r.Str();
  }
  schema.SetRefTypes(std::move(traits));
  const uint64_t nclasses = r.U64();
  if (!r.ok() || nclasses > (1u << 20)) {
    return Status::Corruption("bad class count");
  }
  for (ClassId c = 0; c < nclasses; ++c) {
    ClassDescriptor cls;
    cls.id = c;
    cls.maxnref = r.U32();
    cls.basesize = r.U32();
    cls.instance_size = r.U32();
    if (!r.ok() || cls.maxnref > (1u << 16)) {
      return Status::Corruption("bad class header");
    }
    cls.tref.resize(cls.maxnref);
    cls.cref.resize(cls.maxnref);
    for (uint32_t j = 0; j < cls.maxnref; ++j) cls.tref[j] = r.U16();
    for (uint32_t j = 0; j < cls.maxnref; ++j) cls.cref[j] = r.U32();
    const uint64_t extent = r.U64();
    if (!r.ok() || extent > (1ull << 32)) {
      return Status::Corruption("bad extent size");
    }
    cls.iterator.resize(extent);
    for (uint64_t i = 0; i < extent; ++i) cls.iterator[i] = r.U64();
    OCB_RETURN_NOT_OK(schema.AddClass(std::move(cls)));
  }
  OCB_RETURN_NOT_OK(schema.Validate());

  // Object table.
  const Oid next_oid = r.U64();
  const uint64_t entries = r.U64();
  if (!r.ok() || entries > (1ull << 32)) {
    return Status::Corruption("bad table size");
  }
  std::unordered_map<Oid, ObjectLocation> table;
  table.reserve(entries);
  for (uint64_t i = 0; i < entries; ++i) {
    const Oid oid = r.U64();
    ObjectLocation loc;
    loc.page_id = r.U32();
    loc.slot_id = r.U16();
    if (loc.page_id >= page_count) {
      return Status::Corruption("table entry past page count");
    }
    table[oid] = loc;
  }

  // Page images.
  std::vector<uint8_t> buffer(page_size);
  for (uint64_t p = 0; p < page_count; ++p) {
    r.Raw(buffer.data(), buffer.size());
    const PageId id = db->disk()->AllocatePage();
    db->disk()->LoadPageImage(id, buffer.data());
  }
  if (!r.ok()) {
    return Status::Corruption(Format("short read from '%s'", path.c_str()));
  }

  db->SetSchema(std::move(schema));
  {
    ScopedIoScope scope(db->disk(), IoScope::kGeneration);
    OCB_RETURN_NOT_OK(
        db->object_store()->RestoreTable(std::move(table), next_oid));
  }
  return db->ColdRestart();
}

}  // namespace ocb
