/// \file object.h
/// \brief The OBJECT instance layout (paper Fig. 1) and its on-page codec.
///
/// An object is: a class pointer, a fixed array of ORef slots (exactly
/// MAXNREF of its class, null allowed), a variable array of BackRefs
/// (reverse references, maintained symmetric with ORefs), and Filler —
/// InstanceSize real bytes that give the object its physical footprint.
///
/// Encoding (little-endian, packed):
///   u32 class_id | u16 oref_count | u16 backref_count | u32 filler_size |
///   u64 oref[oref_count] | u64 backref[backref_count] | u8 filler[...]
///
/// ORef slots are fixed at creation so setting references never changes the
/// record size; only BackRef growth can (pages handle that via record
/// update/relocation).

#ifndef OCB_OODB_OBJECT_H_
#define OCB_OODB_OBJECT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "oodb/schema.h"
#include "storage/types.h"
#include "util/status.h"

namespace ocb {

/// \brief Decoded in-memory object.
struct Object {
  Oid oid = kInvalidOid;  ///< Not stored; filled in by Database on read.
  ClassId class_id = kNullClass;
  std::vector<Oid> orefs;     ///< Fixed MAXNREF slots; kInvalidOid = null.
  std::vector<Oid> backrefs;  ///< Objects whose ORefs point here.
  uint32_t filler_size = 0;   ///< InstanceSize of the class.

  /// Serialized size in bytes for the current ref counts.
  size_t EncodedSize() const {
    return 12 + 8 * (orefs.size() + backrefs.size()) + filler_size;
  }

  /// Serializes into \p out (resized; filler bytes are a deterministic
  /// pattern so corruption is detectable).
  void EncodeTo(std::vector<uint8_t>* out) const;

  /// Deserializes from \p bytes; validates framing.
  static Result<Object> Decode(std::span<const uint8_t> bytes);

  /// Number of non-null ORefs.
  size_t LiveRefCount() const;
};

}  // namespace ocb

#endif  // OCB_OODB_OBJECT_H_
