#include "oodb/database.h"

#include <algorithm>
#include <chrono>

#include "oodb/snapshot.h"
#include "util/format.h"
#include "wal/killpoint.h"
#include "wal/wal_writer.h"

namespace ocb {

Database::Database(const StorageOptions& options)
    : options_(options),
      lock_manager_(LockManagerOptions{options.lock_wait_timeout_nanos}),
      commit_pipeline_([this](const std::vector<CommitPipeline::Request*>&
                                  batch) { CommitBatch(batch); }) {
  disk_ = std::make_unique<DiskSim>(options_, &clock_);
  pool_ = std::make_unique<BufferPool>(disk_.get(), options_);
  store_ = std::make_unique<ObjectStore>(pool_.get(), options_.first_oid,
                                         options_.oid_stride);
  if (!options_.wal_path.empty()) {
    // Open (or create) the redo log, truncating any torn tail. The
    // constructor cannot fail; a failed open parks the error in
    // wal_open_status_ and every writer commit returns it instead of
    // acknowledging without durability.
    auto wal =
        wal::WalWriter::Open(options_.wal_path, options_.wal_segment_bytes);
    if (wal.ok()) {
      wal_ = std::move(wal).value();
    } else {
      wal_open_status_ = wal.status();
    }
  }
  if (wal_ != nullptr && options_.checkpoint_interval_commits > 0) {
    ckpt_thread_ = std::thread([this] { CheckpointLoop(); });
  }
  RegisterObsCallbacks();
}

Database::~Database() {
  // First: stop exporting gauges that read members about to be torn down.
  // Clear() synchronizes with any in-flight registry Snapshot().
  obs_callbacks_.Clear();
  // The checkpoint thread drives SaveSnapshot, which touches the whole
  // store — it must be gone before any teardown begins.
  {
    MutexLock lock(ckpt_mu_);
    ckpt_stop_ = true;
  }
  ckpt_cv_.notify_all();
  if (ckpt_thread_.joinable()) ckpt_thread_.join();
  {
    MutexLock lock(gc_mu_);
    gc_stop_ = true;
  }
  gc_cv_.notify_all();
  if (gc_thread_.joinable()) gc_thread_.join();
}

void Database::RegisterObsCallbacks() {
#ifndef OCB_OBS_DISABLED
  // Gauge callbacks read the engine's own atomic stats — the single
  // increment sites stay where they are (ISSUE 6, dedupe satellite); the
  // registry only *reads* them at snapshot time. Multiple Databases
  // (shards) registering the same names sum in the snapshot, which is
  // exactly the deployment-wide aggregate the benches want.
  auto& reg = obs_callbacks_;
  reg.Register("db.pool.hits", [this] {
    return pool_->stats().hits.load(std::memory_order_relaxed);
  });
  reg.Register("db.pool.misses", [this] {
    return pool_->stats().misses.load(std::memory_order_relaxed);
  });
  reg.Register("db.pool.evictions", [this] {
    return pool_->stats().evictions.load(std::memory_order_relaxed);
  });
  reg.Register("db.pool.dirty_writebacks", [this] {
    return pool_->stats().dirty_writebacks.load(std::memory_order_relaxed);
  });
  reg.Register("db.disk.reads", [this] {
    return disk_->TotalCounters().reads.load(std::memory_order_relaxed);
  });
  reg.Register("db.disk.writes", [this] {
    return disk_->TotalCounters().writes.load(std::memory_order_relaxed);
  });
  // Async-I/O overlap accounting: serial is what a fully serialized
  // execution would have charged the sim clock, charged is what actually
  // was charged (serial/charged = overlap ratio); pending/peak expose the
  // background write-back queue.
  reg.Register("db.io.serial_nanos",
               [this] { return disk_->serial_io_nanos(); });
  reg.Register("db.io.charged_nanos",
               [this] { return disk_->charged_io_nanos(); });
  reg.Register("db.io.pending_writebacks",
               [this] { return pool_->pending_writebacks(); });
  reg.Register("db.io.writeback_peak_depth",
               [this] { return pool_->writeback_peak_depth(); });
  reg.Register("db.store.objects", [this] {
    return store_->stats().objects.load(std::memory_order_relaxed);
  });
  reg.Register("db.store.data_pages", [this] {
    return store_->stats().data_pages.load(std::memory_order_relaxed);
  });
  reg.Register("db.store.relocations", [this] {
    return store_->stats().relocations.load(std::memory_order_relaxed);
  });
  reg.Register("db.lock.acquisitions",
               [this] { return lock_manager_.stats().acquisitions; });
  reg.Register("db.lock.waits",
               [this] { return lock_manager_.stats().waits; });
  reg.Register("db.lock.deadlocks",
               [this] { return lock_manager_.stats().deadlocks; });
  reg.Register("db.lock.timeouts",
               [this] { return lock_manager_.stats().timeouts; });
  reg.Register("db.lock.wait_nanos",
               [this] { return lock_manager_.stats().total_wait_nanos; });
  reg.Register("db.mvcc.versions_published",
               [this] { return version_store_.stats().versions_published; });
  reg.Register("db.mvcc.versions_gced",
               [this] { return version_store_.stats().versions_gced; });
  reg.Register("db.mvcc.gc_passes",
               [this] { return version_store_.stats().gc_passes; });
  reg.Register("db.mvcc.snapshot_hits",
               [this] { return version_store_.stats().snapshot_hits; });
  reg.Register("db.mvcc.live_versions",
               [this] { return version_store_.stats().live_versions; });
  reg.Register("db.groupcommit.commits",
               [this] { return commit_pipeline_.stats().commits; });
  reg.Register("db.groupcommit.batches",
               [this] { return commit_pipeline_.stats().batches; });
  reg.Register("db.groupcommit.grouped_commits",
               [this] { return commit_pipeline_.stats().grouped_commits; });
  reg.Register("db.groupcommit.batch_nanos",
               [this] { return commit_pipeline_.stats().batch_nanos; });
  reg.Register("db.cc.si_conflicts", [this] { return si_conflicts(); });
  reg.Register("db.cc.occ_conflicts", [this] { return occ_conflicts(); });
#endif
}

// TSA exemption: the cv wait unlocks and relocks gc_mu_ mid-function, a
// flow the intraprocedural analysis cannot follow; lockdep still sees
// every transition.
void Database::GcLoop() OCB_NO_THREAD_SAFETY_ANALYSIS {
  std::unique_lock<Mutex> lock(gc_mu_);
  while (!gc_stop_) {
    gc_cv_.wait_for(lock, std::chrono::milliseconds(10));
    if (gc_stop_) break;
    // The pass is cheap when nothing committed since the last one; the
    // version store serializes against OpenSnapshot, so a newborn
    // ReadView can never lose a version it still needs.
    version_store_.GarbageCollect(read_views_);
  }
}

void Database::NoteCommitsForCheckpoint(uint64_t commits) {
  // wal_ and the interval are immutable after construction, so this gate
  // needs no lock; when it passes, the scheduler thread exists.
  if (wal_ == nullptr || options_.checkpoint_interval_commits == 0) return;
  bool wake = false;
  {
    MutexLock lock(ckpt_mu_);
    ckpt_pending_commits_ += commits;
    wake = ckpt_pending_commits_ >= options_.checkpoint_interval_commits;
  }
  if (wake) ckpt_cv_.notify_one();
}

// TSA exemption: cv waits relock ckpt_mu_ mid-function.
void Database::CheckpointLoop() OCB_NO_THREAD_SAFETY_ANALYSIS {
  // Alternate between two snapshot files: a crash mid-save tears at most
  // the file being written, never the previous good checkpoint (recovery
  // skips unloadable snapshots and falls back).
  uint64_t parity = 0;
  std::unique_lock<Mutex> lock(ckpt_mu_);
  for (;;) {
    ckpt_cv_.wait(lock, [&] {
      return ckpt_stop_ ||
             ckpt_pending_commits_ >= options_.checkpoint_interval_commits;
    });
    if (ckpt_stop_) return;
    ckpt_pending_commits_ = 0;
    lock.unlock();
    const std::string path =
        Format("%s.autockpt%llu", options_.wal_path.c_str(),
               static_cast<unsigned long long>(parity & 1));
    // SaveSnapshot enforces its own safety rules (quiesce; refusal while
    // transactions hold object locks). A refusal is not an error here —
    // count it and rearm one commit short of the threshold, so the next
    // durable commit retries instead of waiting out a whole interval.
    const Status st = SaveSnapshot(this, path);
    lock.lock();
    if (st.ok()) {
      ++parity;
      checkpoints_taken_.fetch_add(1, std::memory_order_relaxed);
    } else {
      checkpoints_refused_.fetch_add(1, std::memory_order_relaxed);
      if (ckpt_pending_commits_ + 1 < options_.checkpoint_interval_commits) {
        ckpt_pending_commits_ = options_.checkpoint_interval_commits - 1;
      }
    }
  }
}

void Database::SetSchema(Schema schema) {
  TimedUniqueLock lock(catalog_mu_);
  schema_ = std::move(schema);
}

std::unique_lock<std::recursive_mutex> Database::FacadeGate(bool force) {
  if (!force && !serialize_physical_.load(std::memory_order_relaxed)) {
    return {};
  }
  LatchFacadeExclusive(serial_mu_);
  return std::unique_lock<std::recursive_mutex>(serial_mu_,
                                                std::adopt_lock);
}

void Database::NotifyObjectAccess(Oid oid) {
  MutexLock lock(observer_mu_);
  if (observer_ != nullptr) observer_->OnObjectAccess(oid);
}

void Database::NotifyLinkCross(Oid from, Oid to, RefTypeId type,
                               bool reverse) {
  MutexLock lock(observer_mu_);
  if (observer_ != nullptr) observer_->OnLinkCross(from, to, type, reverse);
}

// --- Transaction lifecycle ---

std::unique_ptr<TransactionContext> Database::BeginTxn(bool read_only,
                                                       CcAlgorithm cc) {
  return BeginTxnWithId(next_txn_id_.fetch_add(1, std::memory_order_relaxed),
                        read_only, cc);
}

std::unique_ptr<TransactionContext> Database::BeginTxnWithId(
    TxnId id, bool read_only, CcAlgorithm cc) {
  // The GC thread exists only once someone transacts: legacy
  // single-client users (generators, the seed benches) never pay for it.
  std::call_once(gc_once_, [this]() {
    gc_thread_ = std::thread([this]() { GcLoop(); });
  });
  // Without MVCC, a "read-only" txn is just a locking txn that happens
  // not to write — the pure-2PL baseline. SI/OCC are built on the
  // version store, so they degrade to 2PL too (the session layer refuses
  // them up front; this is the belt for internal callers).
  if (!mvcc_enabled()) {
    read_only = false;
    cc = CcAlgorithm::kStrict2PL;
  }
  auto txn = std::make_unique<TransactionContext>(id, read_only);
  txn->cc_ = read_only ? CcAlgorithm::kStrict2PL : cc;
  if (read_only || txn->cc_ == CcAlgorithm::kSnapshotIsolation) {
    // Pin the ReadView atomically against commit stamping and GC. An SI
    // writer reads from its pinned view exactly like a reader does.
    txn->snapshot_ts_ = version_store_.OpenSnapshot(&read_views_);
    txn->owns_view_ = true;
  }
  {
    MutexLock lock(observer_mu_);
    if (observer_ != nullptr) observer_->OnTransactionBegin();
  }
  return txn;
}

std::unique_ptr<TransactionContext> Database::BeginSnapshotTxnAt(
    CommitTs ts, TxnId id) {
  std::call_once(gc_once_, [this]() {
    gc_thread_ = std::thread([this]() { GcLoop(); });
  });
  auto txn = std::make_unique<TransactionContext>(id, /*read_only=*/true);
  // Registration serializes on the version store's commit mutex, so this
  // shard's GC can never reclaim a version the view still needs. The
  // caller (the coordinator) excludes cross-shard half-commits by opening
  // all shards' views under its own commit mutex.
  txn->snapshot_ts_ = version_store_.OpenSnapshotAt(ts, &read_views_);
  txn->owns_view_ = true;
  {
    MutexLock lock(observer_mu_);
    if (observer_ != nullptr) observer_->OnTransactionBegin();
  }
  return txn;
}

std::unique_ptr<TransactionContext> Database::BeginSiWriterTxnAt(CommitTs ts,
                                                                 TxnId id) {
  std::call_once(gc_once_, [this]() {
    gc_thread_ = std::thread([this]() { GcLoop(); });
  });
  auto txn = std::make_unique<TransactionContext>(id, /*read_only=*/false);
  txn->cc_ = CcAlgorithm::kSnapshotIsolation;
  // Same GC-safety argument as BeginSnapshotTxnAt: the view registers
  // under the version store's commit mutex at the coordinator-chosen
  // global snapshot.
  txn->snapshot_ts_ = version_store_.OpenSnapshotAt(ts, &read_views_);
  txn->owns_view_ = true;
  {
    MutexLock lock(observer_mu_);
    if (observer_ != nullptr) observer_->OnTransactionBegin();
  }
  return txn;
}

Status Database::PrepareTxn(TransactionContext* txn) {
  if (txn == nullptr) return Status::InvalidArgument("null txn");
  if (txn->read_only()) {
    return Status::InvalidArgument(
        Format("txn %llu is read-only: nothing to prepare",
               (unsigned long long)txn->id()));
  }
  if (!txn->active()) {
    return Status::InvalidArgument(
        Format("txn %llu is %s, not active", (unsigned long long)txn->id(),
               TxnStateToString(txn->state())));
  }
  // SI/OCC participants validate here — prepare is exactly the promise
  // point validation must precede. A validation loss leaves the txn
  // active (locks held) and the coordinator aborts every participant;
  // nothing was stamped or logged for this transaction yet.
  OCB_RETURN_NOT_OK(FinalizeCc(txn));
  // Strict 2PL with in-place writes: every write is already applied under
  // an X lock that stays held, so the participant *can* commit whenever
  // the coordinator decides to. Freezing the state is the whole phase.
  txn->state_ = TxnState::kPrepared;
  return Status::OK();
}

Status Database::CommitTxn(TransactionContext* txn) {
  return CommitTxnInternal(txn, /*external_ts=*/0);
}

Status Database::CommitTxnAt(TransactionContext* txn, CommitTs ts) {
  if (ts == 0) return Status::InvalidArgument("commit ts must be nonzero");
  return CommitTxnInternal(txn, ts);
}

Status Database::CommitTxnInternal(TransactionContext* txn,
                                   CommitTs external_ts) {
  if (txn == nullptr) return Status::InvalidArgument("null txn");
  if (!txn->active() && !txn->prepared()) {
    return Status::InvalidArgument(
        Format("txn %llu is %s, not active", (unsigned long long)txn->id(),
               TxnStateToString(txn->state())));
  }
  // SI/OCC commits entering here directly (not through the pipeline or
  // 2PC prepare, which already finalized) validate and apply now. On a
  // validation loss the transaction aborts — rollback, seal, release —
  // and the caller sees the typed conflict.
  if (txn->active()) {
    Status fin = FinalizeCc(txn);
    if (!fin.ok()) {
      AbortTxnInternal(txn, external_ts);
      return fin;
    }
  }
  txn->state_ = TxnState::kCommitted;
  Status wal_status = Status::OK();
  if (txn->owns_view_) {
    // MVCC readers and SI writers: unpin the ReadView (keyed on view
    // ownership, not read_only_ — an SI writer owns one too).
    read_views_.Close(ReadView{txn->snapshot_ts_});
    txn->owns_view_ = false;
    gc_cv_.notify_all();  // The oldest snapshot may have advanced.
  }
  if (!txn->read_only() && !txn->undo_log_.empty()) {
    // Stamp before releasing any lock: the next writer of these objects
    // must append its pending version *behind* this commit in the chains.
    // Pure readers on the locking path allocate no timestamp.
    obs::TraceSpan stamp_span("commit.stamp", "txn", txn->id(), "batch", 1);
    CommitTs wal_ts = external_ts;
    if (mvcc_enabled()) {
      if (external_ts != 0) {
        version_store_.StampCommittedAt(txn->id(), external_ts);
      } else {
        wal_ts = version_store_.StampCommitted(txn->id());
      }
    } else if (wal_ != nullptr && external_ts == 0) {
      // MVCC off: stamping draws no timestamp, but the log still needs a
      // distinct commit ts on the same monotonic axis.
      wal_ts = version_store_.AllocateTimestamps(1);
    }
    // A lone writer commit forces its own commit record (external_ts
    // means a coordinator drives this commit and charges the force once
    // per cross-shard batch instead).
    if (external_ts == 0 && options_.commit_log_force_nanos > 0) {
      obs::TraceInstant("commit.log_force", "txn", txn->id());
      clock_.Advance(options_.commit_log_force_nanos);
    }
    // Real WAL: a lone writer appends and forces its own record before
    // the commit is acknowledged. Coordinated commits (external_ts != 0)
    // were already appended by the coordinator via WalAppendTxn, which
    // also owns their force.
    if (external_ts == 0) {
      if (wal_ != nullptr) {
        wal_status = wal_->Append(BuildRedoRecord(txn, wal_ts, false));
        if (wal_status.ok()) wal_status = wal_->Force();
      } else {
        wal_status = wal_open_status_;
      }
    }
  }
  const bool durable_writer =
      !txn->read_only() && !txn->undo_log_.empty() && wal_status.ok();
  txn->undo_log_.clear();
  txn->undo_logged_.clear();
  lock_manager_.ReleaseAll(txn);
  {
    MutexLock lock(observer_mu_);
    if (observer_ != nullptr) observer_->OnTransactionEnd();
  }
  if (durable_writer) NoteCommitsForCheckpoint(1);
  return wal_status;
}

Status Database::AbortTxn(TransactionContext* txn) {
  return AbortTxnInternal(txn, /*external_ts=*/0);
}

Status Database::CommitTxnGrouped(TransactionContext* txn) {
  if (txn == nullptr) return Status::InvalidArgument("null txn");
  if (!txn->active() && !txn->prepared()) {
    return Status::InvalidArgument(
        Format("txn %llu is %s, not active", (unsigned long long)txn->id(),
               TxnStateToString(txn->state())));
  }
  // Read-only commits only close a ReadView — no commit-mutex work to
  // amortize, so they skip the pipeline (and never wait behind a batch).
  if (txn->read_only()) return CommitTxnInternal(txn, /*external_ts=*/0);
  // SI/OCC: validate and apply on the *caller's* thread, before joining
  // the batch — the leader must never block on another member's lock
  // acquisitions, and a validation loss must not occupy a batch slot.
  {
    Status fin = FinalizeCc(txn);
    if (!fin.ok()) {
      AbortTxnInternal(txn, /*external_ts=*/0);
      return fin;
    }
  }
  return commit_pipeline_.Submit(txn);
}

void Database::CommitBatch(
    const std::vector<CommitPipeline::Request*>& batch) {
  // Stamp every member's pending versions first — one commit-mutex
  // acquisition, consecutive timestamps — while every member still holds
  // all its X locks (members are distinct transactions, so stamping one
  // before releasing another is safe and preserves the per-transaction
  // stamp-before-release invariant).
  std::vector<TxnId> to_stamp;
  std::vector<TransactionContext*> writers;
  for (CommitPipeline::Request* req : batch) {
    auto* txn = static_cast<TransactionContext*>(req->handle);
    if (!txn->undo_log_.empty()) {
      writers.push_back(txn);
      if (mvcc_enabled()) to_stamp.push_back(txn->id());
    }
  }
  Status wal_status =
      (wal_ == nullptr) ? wal_open_status_ : Status::OK();
  {
    // The batch leader runs this on its own thread, so the span nests
    // inside the leader's "txn" span in the trace; followers' txn spans
    // show the same interval as queue time.
    obs::TraceSpan stamp_span(
        "commit.stamp", "batch", batch.size(), "leader",
        static_cast<TransactionContext*>(batch.front()->handle)->id());
    CommitTs last_ts = 0;
    if (!to_stamp.empty()) {
      last_ts = version_store_.StampCommittedBatch(to_stamp);
    } else if (wal_ != nullptr && !writers.empty()) {
      // MVCC off: draw the members' log timestamps on the same axis
      // stamping would have used.
      last_ts = version_store_.AllocateTimestamps(writers.size());
    }
    // ONE simulated commit-record force for the whole batch — the log
    // amortization that is group commit's classic payoff. Read-only and
    // writeless members force nothing.
    if (!writers.empty() && options_.commit_log_force_nanos > 0) {
      obs::TraceInstant("commit.log_force", "batch", batch.size());
      clock_.Advance(options_.commit_log_force_nanos);
    }
    // Real WAL: one append per writer, ONE force for the whole batch —
    // the actual form of the amortization simulated above. The members'
    // locks are all still held, so the post-images read here are exactly
    // the committed states.
    if (wal_ != nullptr && !writers.empty()) {
      CommitTs ts = last_ts - writers.size() + 1;
      for (TransactionContext* txn : writers) {
        if (wal_status.ok()) {
          wal_status = wal_->Append(BuildRedoRecord(txn, ts, false));
        }
        ++ts;
        wal_killpoint::MaybeKill("mid-batch");
      }
      if (wal_status.ok()) wal_status = wal_->Force();
    }
  }
  bool closed_views = false;
  for (CommitPipeline::Request* req : batch) {
    auto* txn = static_cast<TransactionContext*>(req->handle);
    const bool writer = !txn->undo_log_.empty();
    txn->state_ = TxnState::kCommitted;
    if (txn->owns_view_) {
      // SI members pinned a ReadView at begin (pure readers never enter
      // the pipeline); unpin before releasing locks.
      read_views_.Close(ReadView{txn->snapshot_ts_});
      txn->owns_view_ = false;
      closed_views = true;
    }
    txn->undo_log_.clear();
    txn->undo_logged_.clear();
    lock_manager_.ReleaseAll(txn);
    // A writer whose record may not be durable must not see OK; members
    // without writes never depended on the log.
    req->status = writer ? wal_status : Status::OK();
  }
  // One observer pass for the whole batch (callbacks stay serialized).
  {
    MutexLock lock(observer_mu_);
    if (observer_ != nullptr) {
      for (size_t i = 0; i < batch.size(); ++i) {
        observer_->OnTransactionEnd();
      }
    }
  }
  if (closed_views) gc_cv_.notify_all();
  if (!writers.empty() && wal_status.ok()) {
    NoteCommitsForCheckpoint(writers.size());
  }
}

Status Database::AbortTxnAt(TransactionContext* txn, CommitTs ts) {
  if (ts == 0) return Status::InvalidArgument("seal ts must be nonzero");
  return AbortTxnInternal(txn, ts);
}

Status Database::AbortTxnInternal(TransactionContext* txn,
                                  CommitTs external_ts) {
  if (txn == nullptr) return Status::InvalidArgument("null txn");
  // Idempotent: a second abort of the same transaction is a no-op, not
  // an error (RAII handles may race an explicit Abort with their
  // destructor's auto-abort).
  if (txn->state() == TxnState::kAborted) return Status::OK();
  if (!txn->active() && !txn->prepared()) {
    return Status::InvalidArgument(
        Format("txn %llu is %s, not active", (unsigned long long)txn->id(),
               TxnStateToString(txn->state())));
  }
  if (txn->read_only()) {
    read_views_.Close(ReadView{txn->snapshot_ts_});
    txn->owns_view_ = false;
    gc_cv_.notify_all();
    txn->state_ = TxnState::kAborted;
    MutexLock lock(observer_mu_);
    if (observer_ != nullptr) observer_->OnTransactionAbort();
    return Status::OK();
  }
  // SI/OCC state dies with the transaction: buffered writes were never
  // applied (nothing to roll back for them), read sets never validate.
  txn->write_buffer_.clear();
  txn->occ_read_set_.clear();
  txn->occ_extent_versions_.clear();
  if (txn->owns_view_) {
    read_views_.Close(ReadView{txn->snapshot_ts_});
    txn->owns_view_ = false;
    gc_cv_.notify_all();
  }
  Status first_failure = Status::OK();
  {
    // Roll back while the txn's X locks still shield the restored objects
    // from every other transaction; each physical step takes its own page
    // latches. (In serialize-physical mode the whole rollback re-enters
    // the facade latch, as the seed did.)
    auto facade = FacadeGate();
    auto& log = txn->undo_log_;
    const bool had_undo = !log.empty();
    for (auto it = log.rbegin(); it != log.rend(); ++it) {
      Status st = Status::OK();
      switch (it->kind) {
        case UndoRecord::Kind::kCreate: {
          if (store_->Contains(it->oid)) st = store_->Delete(it->oid);
          TimedUniqueLock cat(catalog_mu_);
          if (it->class_id < schema_.class_count()) {
            auto& extent = schema_.GetMutableClass(it->class_id).iterator;
            extent.erase(
                std::remove(extent.begin(), extent.end(), it->oid),
                extent.end());
            ++extent_versions_[it->class_id];
          }
          break;
        }
        case UndoRecord::Kind::kRestore: {
          if (store_->Contains(it->oid)) {
            st = store_->Update(it->oid, it->pre_image);
          } else {
            st = store_->InsertWithOid(it->oid, it->pre_image);
            if (st.ok()) {
              TimedUniqueLock cat(catalog_mu_);
              if (it->class_id < schema_.class_count()) {
                schema_.GetMutableClass(it->class_id)
                    .iterator.push_back(it->oid);
                ++extent_versions_[it->class_id];
              }
            }
          }
          break;
        }
      }
      if (!st.ok() && first_failure.ok()) first_failure = st;
    }
    log.clear();
    txn->undo_logged_.clear();
    // The store holds the pre-images again. Seal (do not drop) the
    // pending versions: a snapshot reader that raced the dirty writes
    // re-checks the version store after its store read, and the sealed
    // version — whose pre-image equals the rolled-back state — is what
    // keeps that re-check sound. See VersionStore::StampAborted. A txn
    // with no undo published no versions: skip the seal so pure readers
    // on the locking path (and sharded reader participants) never draw a
    // timestamp.
    if (had_undo && mvcc_enabled()) {
      if (external_ts != 0) {
        version_store_.StampAbortedAt(txn->id(), external_ts);
      } else {
        version_store_.StampAborted(txn->id());
      }
    }
    MutexLock lock(observer_mu_);
    if (observer_ != nullptr) observer_->OnTransactionAbort();
  }
  txn->state_ = TxnState::kAborted;
  lock_manager_.ReleaseAll(txn);
  return first_failure;
}

Status Database::LockFor(TransactionContext* txn, Oid oid, LockMode mode) {
  if (txn == nullptr) return Status::OK();
  return lock_manager_.Acquire(txn, oid, mode);
}

void Database::RecordPreImage(TransactionContext* txn, const Object& obj) {
  if (txn == nullptr) return;
  if (!txn->undo_logged_.insert(obj.oid).second) return;
  UndoRecord record;
  record.kind = UndoRecord::Kind::kRestore;
  record.oid = obj.oid;
  record.class_id = obj.class_id;
  obj.EncodeTo(&record.pre_image);
  // The same committed pre-image becomes a pending version. The publish
  // happens before the first in-place write of this object (we hold its X
  // lock and have not written yet), which is the ordering SnapshotRead's
  // read-validate protocol depends on.
  if (mvcc_enabled()) {
    version_store_.PublishPreImage(txn->id(), obj.oid, record.pre_image);
  }
  txn->undo_log_.push_back(std::move(record));
}

Result<Object> Database::SnapshotRead(TransactionContext* txn, Oid oid) {
  return SnapshotReadAt(txn, oid, txn->snapshot_ts_);
}

Result<Object> Database::SnapshotReadAt(TransactionContext* txn, Oid oid,
                                        CommitTs read_ts) {
  std::vector<uint8_t> bytes;
  switch (version_store_.GetVisible(oid, read_ts, &bytes)) {
    case VersionLookup::kInvisible:
      return Status::NotFound(
          Format("oid %llu not visible at snapshot %llu",
                 (unsigned long long)oid, (unsigned long long)read_ts));
    case VersionLookup::kVersion: {
      ++txn->snapshot_reads_;
      OCB_ASSIGN_OR_RETURN(Object obj, Object::Decode(bytes));
      obj.oid = oid;
      return obj;
    }
    case VersionLookup::kUseCurrent:
      break;
  }
  // Fall through to the current store state, then re-check the version
  // store: any conflicting write that raced the (page-latched) store read
  // published its pre-image before writing — and abort seals rather than
  // drops it — so the second lookup either validates the bytes we read or
  // hands us the correct pre-image.
  std::vector<uint8_t> current;
  Status read = store_->Read(oid, &current);
  switch (version_store_.GetVisible(oid, read_ts, &bytes,
                                    /*revalidate=*/true)) {
    case VersionLookup::kInvisible:
      return Status::NotFound(
          Format("oid %llu not visible at snapshot %llu",
                 (unsigned long long)oid, (unsigned long long)read_ts));
    case VersionLookup::kVersion: {
      ++txn->snapshot_reads_;
      OCB_ASSIGN_OR_RETURN(Object obj, Object::Decode(bytes));
      obj.oid = oid;
      return obj;
    }
    case VersionLookup::kUseCurrent:
      break;
  }
  OCB_RETURN_NOT_OK(read);  // Absent now ⇒ absent at the snapshot too.
  ++txn->snapshot_reads_;
  OCB_ASSIGN_OR_RETURN(Object obj, Object::Decode(current));
  obj.oid = oid;
  return obj;
}

Result<Object> Database::OptimisticRead(TransactionContext* txn, Oid oid) {
  // Read-your-writes: the buffered post-image wins, then the txn's own
  // in-place writes (eager creations hold their X lock — the store bytes
  // are this transaction's).
  auto wit = txn->write_buffer_.find(oid);
  if (wit != txn->write_buffer_.end()) {
    OCB_ASSIGN_OR_RETURN(Object obj, Object::Decode(wit->second.encoded));
    obj.oid = oid;
    return obj;
  }
  if (txn->undo_logged_.count(oid) != 0) return ReadDecode(oid);
  if (txn->cc() == CcAlgorithm::kSnapshotIsolation) {
    return SnapshotRead(txn, oid);
  }
  // Silo OCC: committed-latest read inside a stamp-stability loop. An
  // unchanged last-committed-write stamp around the read proves the bytes
  // belong to exactly that stamp (stamps are stamped before lock release
  // and monotonic per object, so there is no ABA).
  for (;;) {
    const CommitTs before = version_store_.LastWriteTs(oid);
    auto obj = SnapshotReadAt(txn, oid, VersionStore::kReadLatestTs);
    if (!obj.ok() && !obj.status().IsNotFound()) return obj;
    const CommitTs after = version_store_.LastWriteTs(oid);
    if (before != after) continue;  // A commit raced the read; retry.
    auto [it, inserted] = txn->occ_read_set_.emplace(oid, after);
    if (!inserted && it->second != after) {
      // A re-read whose stamp moved: the read set can never validate —
      // fail fast instead of letting the txn run doomed to the commit.
      occ_conflicts_.fetch_add(1, std::memory_order_relaxed);
      return Status::WriteConflict(
          Format("occ read of oid %llu saw stamp %llu, first read saw "
                 "%llu: concurrent commit invalidated the read set",
                 (unsigned long long)oid, (unsigned long long)after,
                 (unsigned long long)it->second));
    }
    return obj;
  }
}

Status Database::FinalizeCc(TransactionContext* txn) {
  if (txn == nullptr || txn->cc_ == CcAlgorithm::kStrict2PL ||
      txn->cc_finalized_) {
    return Status::OK();
  }
  // Phase 1: lock the write set, ascending oid order (std::map). Two
  // finalizers can't deadlock each other; contention with a 2PL writer
  // can still surface Aborted and is handled like any deadlock abort.
  for (const auto& [oid, write] : txn->write_buffer_) {
    OCB_RETURN_NOT_OK(LockFor(txn, oid, LockMode::kExclusive));
  }
  // Phase 2: validate.
  if (txn->cc_ == CcAlgorithm::kSnapshotIsolation) {
    // First committer wins: anyone committing a write to our write set
    // after our snapshot invalidates us (covers blind writes too).
    for (const auto& [oid, write] : txn->write_buffer_) {
      const CommitTs last = version_store_.LastWriteTs(oid);
      if (last > txn->snapshot_ts_) {
        si_conflicts_.fetch_add(1, std::memory_order_relaxed);
        return Status::WriteConflict(
            Format("si validation: oid %llu committed at ts %llu, after "
                   "this txn's snapshot %llu (first committer wins)",
                   (unsigned long long)oid, (unsigned long long)last,
                   (unsigned long long)txn->snapshot_ts_));
      }
    }
  } else {
    // Silo: every read stamp unchanged; an object we only read must not
    // be X-locked by a concurrently committing writer (locked-tuple
    // rule — without it two validators could mutually pass stamp-only
    // checks before either stamps).
    for (const auto& [oid, stamp] : txn->occ_read_set_) {
      if (version_store_.LastWriteTs(oid) != stamp) {
        occ_conflicts_.fetch_add(1, std::memory_order_relaxed);
        return Status::WriteConflict(
            Format("occ validation: read stamp of oid %llu changed",
                   (unsigned long long)oid));
      }
      if (txn->write_buffer_.count(oid) == 0 &&
          lock_manager_.IsXLockedByOther(oid, txn->id())) {
        occ_conflicts_.fetch_add(1, std::memory_order_relaxed);
        return Status::WriteConflict(
            Format("occ validation: oid %llu is write-locked by a "
                   "concurrently committing transaction",
                   (unsigned long long)oid));
      }
    }
    // Phantom protection: the extent versions recorded by this txn's
    // scans must be unchanged.
    for (const auto& [class_id, version] : txn->occ_extent_versions_) {
      if (ExtentVersion(class_id) != version) {
        occ_conflicts_.fetch_add(1, std::memory_order_relaxed);
        return Status::WriteConflict(
            Format("occ validation: extent of class %u changed since the "
                   "scan (phantom)", class_id));
      }
    }
  }
  // Phase 3: apply the buffered writes in place under the held X locks —
  // pre-image publish + undo exactly like a 2PL Put, so everything
  // downstream (WAL, stamping, rollback) treats this as a plain writer.
  {
    auto facade = FacadeGate();
    for (const auto& [oid, write] : txn->write_buffer_) {
      if (txn->undo_logged_.count(oid) == 0) {
        auto current = ReadDecode(oid);
        if (!current.ok()) {
          // A blind write to an object someone deleted: surface the
          // NotFound (the caller aborts — nothing was applied for this
          // oid, earlier applied writes are covered by undo).
          return current.status();
        }
        RecordPreImage(txn, current.value());
      }
      OCB_RETURN_NOT_OK(store_->Update(oid, write.encoded));
    }
  }
  txn->write_buffer_.clear();
  txn->occ_read_set_.clear();
  txn->occ_extent_versions_.clear();
  txn->cc_finalized_ = true;
  return Status::OK();
}

Status Database::RefuseReadOnly(const TransactionContext* txn,
                                const char* op) {
  if (txn != nullptr && txn->read_only()) {
    return Status::InvalidArgument(
        Format("%s refused: txn %llu is read-only (snapshot %llu)", op,
               (unsigned long long)txn->id(),
               (unsigned long long)txn->snapshot_ts()));
  }
  return Status::OK();
}

Status Database::RefuseNonLocking(const TransactionContext* txn,
                                  const char* op) {
  if (txn != nullptr && txn->cc() != CcAlgorithm::kStrict2PL) {
    return Status::NotSupported(
        Format("%s refused under cc=%s: its multi-object choreography "
               "(symmetric backref maintenance) needs 2PL's eager write "
               "footprint; run this transaction under the default strict "
               "2PL", op, CcAlgorithmToString(txn->cc())));
  }
  return Status::OK();
}

Status Database::RefuseFinished(const TransactionContext* txn,
                                const char* op) {
  if (txn != nullptr && !txn->active()) {
    return Status::InvalidArgument(
        Format("%s refused: txn %llu is %s (use-after-finish)", op,
               (unsigned long long)txn->id(),
               TxnStateToString(txn->state())));
  }
  return Status::OK();
}

// --- Object operations ---

Result<Oid> Database::CreateObject(TransactionContext* txn,
                                   ClassId class_id) {
  OCB_RETURN_NOT_OK(RefuseFinished(txn, "CreateObject"));
  OCB_RETURN_NOT_OK(RefuseReadOnly(txn, "CreateObject"));
  auto facade = FacadeGate(/*force=*/txn == nullptr);
  Object obj;
  {
    TimedSharedLock cat(catalog_mu_);
    if (class_id >= schema_.class_count()) {
      return Status::InvalidArgument(
          Format("unknown class %u", class_id));
    }
    const ClassDescriptor& cls = schema_.GetClass(class_id);
    obj.class_id = class_id;
    obj.orefs.assign(cls.maxnref, kInvalidOid);
    obj.filler_size = cls.instance_size;
  }
  if (obj.EncodedSize() > store_->max_object_size()) {
    return Status::InvalidArgument(
        Format("instance of class %u (%zu bytes) exceeds max object size "
               "%zu; raise page_size",
               class_id, obj.EncodedSize(), store_->max_object_size()));
  }
  std::vector<uint8_t> bytes;
  obj.EncodeTo(&bytes);
  OCB_ASSIGN_OR_RETURN(Oid oid, store_->Insert(bytes));
  {
    TimedUniqueLock cat(catalog_mu_);
    schema_.GetMutableClass(class_id).iterator.push_back(oid);
    ++extent_versions_[class_id];
  }
  if (txn != nullptr) {
    UndoRecord record;
    record.kind = UndoRecord::Kind::kCreate;
    record.oid = oid;
    record.class_id = class_id;
    txn->undo_log_.push_back(std::move(record));
    txn->undo_logged_.insert(oid);
    // Snapshot readers born before this commit must not see the object.
    if (mvcc_enabled()) version_store_.PublishCreation(txn->id(), oid);
    // A fresh oid is unknown to every other transaction, so this grant
    // never blocks.
    OCB_RETURN_NOT_OK(
        lock_manager_.Acquire(txn, oid, LockMode::kExclusive));
  }
  return oid;
}

Result<Object> Database::ReadDecode(Oid oid) {
  std::vector<uint8_t> bytes;
  OCB_RETURN_NOT_OK(store_->Read(oid, &bytes));
  OCB_ASSIGN_OR_RETURN(Object obj, Object::Decode(bytes));
  obj.oid = oid;
  return obj;
}

Status Database::WriteEncoded(Oid oid, const Object& object) {
  std::vector<uint8_t> bytes;
  object.EncodeTo(&bytes);
  return store_->Update(oid, bytes);
}

Result<Object> Database::GetObject(TransactionContext* txn, Oid oid) {
  OCB_RETURN_NOT_OK(RefuseFinished(txn, "GetObject"));
  if (txn != nullptr && txn->read_only()) {
    // MVCC path: no lock, no facade latch — resolve against the ReadView
    // with the read-validate protocol (see SnapshotRead).
    auto facade = FacadeGate();
    OCB_ASSIGN_OR_RETURN(Object obj, SnapshotRead(txn, oid));
    NotifyObjectAccess(oid);
    return obj;
  }
  if (txn != nullptr && txn->cc() != CcAlgorithm::kStrict2PL) {
    // SI/OCC: no S locks — own writes, then the algorithm's protocol.
    auto facade = FacadeGate();
    OCB_ASSIGN_OR_RETURN(Object obj, OptimisticRead(txn, oid));
    NotifyObjectAccess(oid);
    return obj;
  }
  OCB_RETURN_NOT_OK(LockFor(txn, oid, LockMode::kShared));
  auto facade = FacadeGate();
  OCB_ASSIGN_OR_RETURN(Object obj, ReadDecode(oid));
  NotifyObjectAccess(oid);
  return obj;
}

Result<Object> Database::PeekObject(Oid oid) {
  auto facade = FacadeGate();
  return ReadDecode(oid);
}

Status Database::SetReference(TransactionContext* txn, Oid from,
                              uint32_t slot, Oid to) {
  OCB_RETURN_NOT_OK(RefuseFinished(txn, "SetReference"));
  OCB_RETURN_NOT_OK(RefuseReadOnly(txn, "SetReference"));
  OCB_RETURN_NOT_OK(RefuseNonLocking(txn, "SetReference"));
  // The txn path's multi-object atomicity comes from the X locks acquired
  // below. The legacy path (txn == nullptr) has no object locks, so it
  // holds the facade latch across the whole multi-object operation,
  // exactly like the seed did (the gate is recursive, so the per-section
  // gates below nest). The txn path must NOT hold any latch while lock
  // acquisitions block — it gates each physical section separately.
  auto legacy_hold = txn == nullptr
                         ? FacadeGate(/*force=*/true)
                         : std::unique_lock<std::recursive_mutex>();
  OCB_RETURN_NOT_OK(LockFor(txn, from, LockMode::kExclusive));
  Object source;
  {
    auto facade = FacadeGate();
    OCB_ASSIGN_OR_RETURN(source, ReadDecode(from));
  }
  if (slot >= source.orefs.size()) {
    return Status::InvalidArgument(
        Format("slot %u out of range for class %u", slot, source.class_id));
  }
  // The X lock on `from` freezes its slots, so `previous` is stable while
  // the remaining locks are acquired.
  const Oid previous = source.orefs[slot];
  if (previous == to) return Status::OK();
  if (previous != kInvalidOid) {
    OCB_RETURN_NOT_OK(LockFor(txn, previous, LockMode::kExclusive));
  }
  if (to != kInvalidOid) {
    OCB_RETURN_NOT_OK(LockFor(txn, to, LockMode::kExclusive));
  }

  auto facade = FacadeGate();
  // Read-and-validate everything *before* the first write, so a vanished
  // target (deleted by a concurrently committed transaction) or a full
  // backref page surfaces while the database is still untouched — no
  // dangling oref, no half-applied unlink.
  Object target;
  const bool self_target = to == from;
  if (to != kInvalidOid && !self_target) {
    OCB_ASSIGN_OR_RETURN(target, ReadDecode(to));
  }
  {
    Object* absorbing = self_target ? &source : &target;
    if (to != kInvalidOid &&
        absorbing->EncodedSize() + sizeof(Oid) >
            store_->max_object_size()) {
      return Status::NoSpace(
          Format("backref array of oid %llu would exceed page capacity",
                 (unsigned long long)to));
    }
  }
  RecordPreImage(txn, source);
  // Unlink the previous target's backref, if any.
  if (previous == from) {
    // Self-reference: unlink in the same in-memory copy — a separately
    // read-modify-written alias would be clobbered by the source write
    // below, stranding the old backref.
    auto it = std::find(source.backrefs.begin(), source.backrefs.end(),
                        from);
    if (it != source.backrefs.end()) source.backrefs.erase(it);
  } else if (previous != kInvalidOid) {
    auto old_read = ReadDecode(previous);
    if (old_read.ok()) {
      Object old_target = std::move(old_read).value();
      auto it = std::find(old_target.backrefs.begin(),
                          old_target.backrefs.end(), from);
      if (it != old_target.backrefs.end()) {
        RecordPreImage(txn, old_target);
        old_target.backrefs.erase(it);
        OCB_RETURN_NOT_OK(WriteEncoded(previous, old_target));
      }
    }
  }
  source.orefs[slot] = to;
  if (self_target) {
    source.backrefs.push_back(from);
    return WriteEncoded(from, source);
  }
  OCB_RETURN_NOT_OK(WriteEncoded(from, source));
  if (to != kInvalidOid) {
    RecordPreImage(txn, target);
    target.backrefs.push_back(from);
    OCB_RETURN_NOT_OK(WriteEncoded(to, target));
  }
  return Status::OK();
}

Result<Object> Database::CrossLink(TransactionContext* txn, Oid from, Oid to,
                                   RefTypeId type, bool reverse) {
  OCB_RETURN_NOT_OK(RefuseFinished(txn, "CrossLink"));
  if (txn != nullptr && txn->read_only()) {
    auto facade = FacadeGate();
    NotifyLinkCross(from, to, type, reverse);
    OCB_ASSIGN_OR_RETURN(Object obj, SnapshotRead(txn, to));
    NotifyObjectAccess(to);
    return obj;
  }
  if (txn != nullptr && txn->cc() != CcAlgorithm::kStrict2PL) {
    auto facade = FacadeGate();
    NotifyLinkCross(from, to, type, reverse);
    OCB_ASSIGN_OR_RETURN(Object obj, OptimisticRead(txn, to));
    NotifyObjectAccess(to);
    return obj;
  }
  OCB_RETURN_NOT_OK(LockFor(txn, to, LockMode::kShared));
  auto facade = FacadeGate();
  NotifyLinkCross(from, to, type, reverse);
  OCB_ASSIGN_OR_RETURN(Object obj, ReadDecode(to));
  NotifyObjectAccess(to);
  return obj;
}

Status Database::PutObject(TransactionContext* txn, const Object& object) {
  OCB_RETURN_NOT_OK(RefuseFinished(txn, "PutObject"));
  OCB_RETURN_NOT_OK(RefuseReadOnly(txn, "PutObject"));
  if (object.oid == kInvalidOid) {
    return Status::InvalidArgument("PutObject requires a valid oid");
  }
  if (txn != nullptr && txn->cc() != CcAlgorithm::kStrict2PL) {
    // SI/OCC: buffer the post-image; FinalizeCc locks, validates and
    // applies at commit. A Put to the transaction's own eager creation
    // writes in place — its X lock is already held. A Put to an oid that
    // vanishes before commit surfaces NotFound at finalization.
    if (txn->undo_logged_.count(object.oid) != 0) {
      auto facade = FacadeGate();
      return WriteEncoded(object.oid, object);
    }
    BufferedWrite write;
    write.class_id = object.class_id;
    object.EncodeTo(&write.encoded);
    txn->write_buffer_[object.oid] = std::move(write);
    return Status::OK();
  }
  OCB_RETURN_NOT_OK(LockFor(txn, object.oid, LockMode::kExclusive));
  auto facade = FacadeGate(/*force=*/txn == nullptr);
  if (txn != nullptr && txn->undo_logged_.count(object.oid) == 0) {
    // Pre-image is the *stored* state, not the caller's copy.
    OCB_ASSIGN_OR_RETURN(Object current, ReadDecode(object.oid));
    RecordPreImage(txn, current);
  }
  return WriteEncoded(object.oid, object);
}

Status Database::DeleteObject(TransactionContext* txn, Oid oid) {
  OCB_RETURN_NOT_OK(RefuseFinished(txn, "DeleteObject"));
  OCB_RETURN_NOT_OK(RefuseReadOnly(txn, "DeleteObject"));
  OCB_RETURN_NOT_OK(RefuseNonLocking(txn, "DeleteObject"));
  // See SetReference for the legacy-hold vs per-section gate split.
  auto legacy_hold = txn == nullptr
                         ? FacadeGate(/*force=*/true)
                         : std::unique_lock<std::recursive_mutex>();
  OCB_RETURN_NOT_OK(LockFor(txn, oid, LockMode::kExclusive));
  if (txn != nullptr) {
    // Lock the whole neighborhood up front (the X on `oid` freezes its
    // ORef/BackRef arrays, so the neighbor list cannot change while the
    // remaining locks are collected one by one).
    Object obj;
    {
      auto facade = FacadeGate();
      OCB_ASSIGN_OR_RETURN(obj, ReadDecode(oid));
    }
    std::vector<Oid> neighbors;
    for (Oid target : obj.orefs) {
      if (target != kInvalidOid && target != oid) neighbors.push_back(target);
    }
    for (Oid referer : obj.backrefs) {
      if (referer != oid) neighbors.push_back(referer);
    }
    std::sort(neighbors.begin(), neighbors.end());
    neighbors.erase(std::unique(neighbors.begin(), neighbors.end()),
                    neighbors.end());
    for (Oid n : neighbors) {
      OCB_RETURN_NOT_OK(LockFor(txn, n, LockMode::kExclusive));
    }
  }

  auto facade = FacadeGate();
  OCB_ASSIGN_OR_RETURN(Object obj, ReadDecode(oid));
  RecordPreImage(txn, obj);
  // Unlink from targets' backrefs.
  for (Oid target : obj.orefs) {
    if (target == kInvalidOid) continue;
    auto tr = ReadDecode(target);
    if (!tr.ok()) continue;  // Target already gone.
    Object t = std::move(tr).value();
    auto it = std::find(t.backrefs.begin(), t.backrefs.end(), oid);
    if (it != t.backrefs.end()) {
      RecordPreImage(txn, t);
      t.backrefs.erase(it);
      OCB_RETURN_NOT_OK(WriteEncoded(target, t));
    }
  }
  // Null out referers' oref slots.
  for (Oid referer : obj.backrefs) {
    auto rr = ReadDecode(referer);
    if (!rr.ok()) continue;
    Object r = std::move(rr).value();
    if (std::find(r.orefs.begin(), r.orefs.end(), oid) == r.orefs.end()) {
      continue;
    }
    RecordPreImage(txn, r);
    for (Oid& slot : r.orefs) {
      if (slot == oid) slot = kInvalidOid;
    }
    OCB_RETURN_NOT_OK(WriteEncoded(referer, r));
  }
  // Remove from class extent (catalog latch; the store delete below is
  // page-latched on its own).
  {
    TimedUniqueLock cat(catalog_mu_);
    if (obj.class_id < schema_.class_count()) {
      auto& extent = schema_.GetMutableClass(obj.class_id).iterator;
      extent.erase(std::remove(extent.begin(), extent.end(), oid),
                   extent.end());
      ++extent_versions_[obj.class_id];
    }
  }
  return store_->Delete(oid);
}

Status Database::GetObjectsBatched(TransactionContext* txn,
                                   std::span<const Oid> oids,
                                   std::vector<Object>* out) {
  OCB_RETURN_NOT_OK(RefuseFinished(txn, "GetMany"));
  out->reserve(out->size() + oids.size());
  std::vector<Oid> accessed;
  accessed.reserve(oids.size());
  if (txn != nullptr && txn->read_only()) {
    // MVCC: resolve each oid through the ReadView — no locks at all.
    auto facade = FacadeGate();
    for (Oid oid : oids) {
      auto obj = SnapshotRead(txn, oid);
      if (obj.ok()) {
        accessed.push_back(oid);
        out->push_back(std::move(obj).value());
      } else if (!obj.status().IsNotFound()) {
        return obj.status();
      }
    }
  } else if (txn != nullptr && txn->cc() != CcAlgorithm::kStrict2PL) {
    // SI/OCC: per-oid optimistic reads, no locks. Vanished (or not yet
    // committed) members are skipped like the snapshot path's.
    auto facade = FacadeGate();
    for (Oid oid : oids) {
      auto obj = OptimisticRead(txn, oid);
      if (obj.ok()) {
        accessed.push_back(oid);
        out->push_back(std::move(obj).value());
      } else if (!obj.status().IsNotFound()) {
        return obj.status();
      }
    }
  } else {
    // 2PL: ONE sorted lock-footprint pass (ascending oids — two GetMany
    // calls can never deadlock each other), then one gated read pass.
    if (txn != nullptr) {
      std::vector<Oid> footprint(oids.begin(), oids.end());
      std::sort(footprint.begin(), footprint.end());
      footprint.erase(std::unique(footprint.begin(), footprint.end()),
                      footprint.end());
      for (Oid oid : footprint) {
        OCB_RETURN_NOT_OK(LockFor(txn, oid, LockMode::kShared));
      }
    }
    // Locks held, latches not yet: issue every miss of the batch as one
    // overlapped prefetch so the read pass below runs against a warm
    // cache instead of paying the misses serially.
    if (oids.size() > 1) (void)PrefetchObjects(oids);
    auto facade = FacadeGate();
    for (Oid oid : oids) {
      auto obj = ReadDecode(oid);
      if (obj.ok()) {
        accessed.push_back(oid);
        out->push_back(std::move(obj).value());
      } else if (!obj.status().IsNotFound()) {
        return obj.status();
      }
    }
  }
  // One observer pass for the whole batch.
  MutexLock lock(observer_mu_);
  if (observer_ != nullptr) {
    for (Oid oid : accessed) observer_->OnObjectAccess(oid);
  }
  return Status::OK();
}

Status Database::AcquireWriteFootprint(TransactionContext* txn,
                                       std::vector<Oid> oids) {
  OCB_RETURN_NOT_OK(RefuseFinished(txn, "ApplyWriteBatch"));
  OCB_RETURN_NOT_OK(RefuseReadOnly(txn, "ApplyWriteBatch"));
  if (txn == nullptr) return Status::OK();
  if (txn->cc() != CcAlgorithm::kStrict2PL) {
    // Optimistic transactions take no locks before commit; the batch's
    // writes will be buffered. Keep the prefetch — the reads that feed
    // the batch still profit from a warm cache.
    if (oids.size() > 1) (void)PrefetchObjects(oids);
    return Status::OK();
  }
  std::sort(oids.begin(), oids.end());
  oids.erase(std::unique(oids.begin(), oids.end()), oids.end());
  for (Oid oid : oids) {
    OCB_RETURN_NOT_OK(LockFor(txn, oid, LockMode::kExclusive));
  }
  // The batch's operations will read-modify-write these objects next;
  // warm their pages in one overlapped batch while only locks are held.
  if (oids.size() > 1) (void)PrefetchObjects(oids);
  return Status::OK();
}

void Database::SetObserver(AccessObserver* observer) {
  MutexLock lock(observer_mu_);
  observer_ = observer;
}

void Database::BeginTransaction() {
  MutexLock lock(observer_mu_);
  if (observer_ != nullptr) observer_->OnTransactionBegin();
}

void Database::EndTransaction() {
  MutexLock lock(observer_mu_);
  if (observer_ != nullptr) observer_->OnTransactionEnd();
}

Status Database::ColdRestart() {
  // Mirror the SaveSnapshot contract: flushing would persist uncommitted
  // in-place writes (their undo lives only in memory), and invalidating
  // frames yanks state an open snapshot reader may still fall through
  // to. Typed refusal, never UB.
  if (lock_manager_.locked_object_count() > 0) {
    return Status::InvalidArgument(
        "ColdRestart refused: in-flight transactions hold object locks; "
        "commit or abort them first");
  }
  if (read_views_.open_count() > 0) {
    return Status::InvalidArgument(
        "ColdRestart refused: open snapshot ReadViews are still pinned; "
        "finish the readers first");
  }
  QuiesceGuard quiesce(this);
  OCB_RETURN_NOT_OK(pool_->FlushAll());
  return pool_->InvalidateAll();
}

Status Database::WalAppendTxn(TransactionContext* txn, CommitTs ts,
                              bool coordinated) {
  if (wal_ == nullptr) return wal_open_status_;
  if (txn == nullptr) return Status::InvalidArgument("null txn");
  if (txn->undo_log_.empty()) return Status::OK();  // Reader: nothing to log.
  return wal_->Append(BuildRedoRecord(txn, ts, coordinated));
}

Status Database::WalForce() {
  if (wal_ == nullptr) return wal_open_status_;
  return wal_->Force();
}

wal::WalRecord Database::BuildRedoRecord(TransactionContext* txn,
                                         CommitTs ts, bool coordinated) {
  wal::WalRecord rec;
  rec.type = wal::WalRecordType::kCommit;
  rec.flags = coordinated ? wal::kCoordinated : 0;
  rec.txn_id = txn->id();
  rec.commit_ts = ts;
  rec.ops.reserve(txn->undo_log_.size());
  // One undo record exists per touched oid (undo_logged_ dedup). The
  // current store state *is* the post-image: writes are in-place and the
  // X locks are still held, so nothing can change it under us.
  for (const UndoRecord& undo : txn->undo_log_) {
    wal::WalOp op;
    op.class_id = undo.class_id;
    op.oid = undo.oid;
    std::vector<uint8_t> bytes;
    if (store_->Read(undo.oid, &bytes).ok()) {
      op.kind = wal::WalOpKind::kUpsert;
      op.payload = std::move(bytes);
    } else {
      op.kind = wal::WalOpKind::kDelete;
    }
    rec.ops.push_back(std::move(op));
  }
  return rec;
}

Status Database::ApplyRedoOp(const wal::WalOp& op) {
  switch (op.kind) {
    case wal::WalOpKind::kUpsert: {
      if (store_->Contains(op.oid)) {
        return store_->Update(op.oid, op.payload);
      }
      OCB_RETURN_NOT_OK(store_->InsertWithOid(op.oid, op.payload));
      TimedUniqueLock cat(catalog_mu_);
      // Replayed class ids are bounds-checked like the abort path: a
      // snapshot older than the log's schema must not crash replay.
      if (op.class_id < schema_.class_count()) {
        schema_.GetMutableClass(op.class_id).iterator.push_back(op.oid);
        ++extent_versions_[op.class_id];
      }
      return Status::OK();
    }
    case wal::WalOpKind::kDelete: {
      if (!store_->Contains(op.oid)) return Status::OK();  // Idempotent.
      OCB_RETURN_NOT_OK(store_->Delete(op.oid));
      TimedUniqueLock cat(catalog_mu_);
      if (op.class_id < schema_.class_count()) {
        auto& extent = schema_.GetMutableClass(op.class_id).iterator;
        extent.erase(std::remove(extent.begin(), extent.end(), op.oid),
                     extent.end());
        ++extent_versions_[op.class_id];
      }
      return Status::OK();
    }
    case wal::WalOpKind::kCheckpointInfo:
      break;
  }
  return Status::InvalidArgument("redo op kind does not apply to a store");
}

uint64_t Database::object_count() const {
  return store_->stats().objects.load(std::memory_order_relaxed);
}

std::vector<Oid> Database::ExtentSnapshot(ClassId class_id) {
  TimedSharedLock lock(catalog_mu_);
  if (class_id >= schema_.class_count()) return {};
  return schema_.GetClass(class_id).iterator;
}

uint64_t Database::ExtentVersion(ClassId class_id) {
  TimedSharedLock lock(catalog_mu_);
  auto it = extent_versions_.find(class_id);
  return it == extent_versions_.end() ? 0 : it->second;
}

std::vector<Oid> Database::ExtentSnapshot(ClassId class_id,
                                          TransactionContext* txn) {
  if (txn != nullptr && !txn->read_only() &&
      txn->cc() == CcAlgorithm::kSiloOCC) {
    // OCC scans current membership but records the extent version under
    // the SAME catalog-latch hold as the copy, so the recorded counter
    // provably describes the copied membership. Commit revalidates it
    // (phantom protection). The first scan's version sticks: a later
    // bump fails validation whether observed here again or not.
    TimedSharedLock lock(catalog_mu_);
    auto vit = extent_versions_.find(class_id);
    txn->occ_extent_versions_.emplace(
        class_id, vit == extent_versions_.end() ? 0 : vit->second);
    if (class_id >= schema_.class_count()) return {};
    return schema_.GetClass(class_id).iterator;
  }
  std::vector<Oid> extent = ExtentSnapshot(class_id);
  if (txn == nullptr || !txn->uses_snapshot_reads()) return extent;
  // Extents are not versioned: the copy above is *current* membership, so
  // a snapshot reader (or an SI writer, whose reads come from its pinned
  // view) could observe members created after its instant (a torn
  // extent). Filter through the version store: a creation version newer
  // than the view proves the member was born after the snapshot.
  std::vector<Oid> visible;
  visible.reserve(extent.size());
  for (Oid oid : extent) {
    // An SI writer's own creations are newer than its snapshot but must
    // stay visible to it (read-your-writes); undo_logged_ holds exactly
    // the oids this transaction touched in place.
    if (!version_store_.CreatedAfter(oid, txn->snapshot_ts()) ||
        txn->undo_logged_.count(oid) != 0) {
      visible.push_back(oid);
    }
  }
  return visible;
}

std::vector<Oid> Database::LiveOidsSnapshot() {
  return store_->LiveOids();
}

bool Database::ContainsObject(Oid oid) {
  return store_->Contains(oid);
}

}  // namespace ocb
