#include "oodb/database.h"

#include <algorithm>

#include "util/format.h"

namespace ocb {

Database::Database(const StorageOptions& options) : options_(options) {
  disk_ = std::make_unique<DiskSim>(options_, &clock_);
  pool_ = std::make_unique<BufferPool>(disk_.get(), options_);
  store_ = std::make_unique<ObjectStore>(pool_.get());
}

void Database::SetSchema(Schema schema) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  schema_ = std::move(schema);
}

Result<Oid> Database::CreateObject(ClassId class_id) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  if (class_id >= schema_.class_count()) {
    return Status::InvalidArgument(
        Format("unknown class %u", class_id));
  }
  ClassDescriptor& cls = schema_.GetMutableClass(class_id);
  Object obj;
  obj.class_id = class_id;
  obj.orefs.assign(cls.maxnref, kInvalidOid);
  obj.filler_size = cls.instance_size;
  if (obj.EncodedSize() > store_->max_object_size()) {
    return Status::InvalidArgument(
        Format("instance of class %u (%zu bytes) exceeds max object size "
               "%zu; raise page_size",
               class_id, obj.EncodedSize(), store_->max_object_size()));
  }
  std::vector<uint8_t> bytes;
  obj.EncodeTo(&bytes);
  OCB_ASSIGN_OR_RETURN(Oid oid, store_->Insert(bytes));
  cls.iterator.push_back(oid);
  return oid;
}

Result<Object> Database::ReadDecode(Oid oid) {
  std::vector<uint8_t> bytes;
  OCB_RETURN_NOT_OK(store_->Read(oid, &bytes));
  OCB_ASSIGN_OR_RETURN(Object obj, Object::Decode(bytes));
  obj.oid = oid;
  return obj;
}

Status Database::WriteEncoded(Oid oid, const Object& object) {
  std::vector<uint8_t> bytes;
  object.EncodeTo(&bytes);
  return store_->Update(oid, bytes);
}

Result<Object> Database::GetObject(Oid oid) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  OCB_ASSIGN_OR_RETURN(Object obj, ReadDecode(oid));
  if (observer_ != nullptr) observer_->OnObjectAccess(oid);
  return obj;
}

Result<Object> Database::PeekObject(Oid oid) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  return ReadDecode(oid);
}

Status Database::SetReference(Oid from, uint32_t slot, Oid to) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  OCB_ASSIGN_OR_RETURN(Object source, ReadDecode(from));
  if (slot >= source.orefs.size()) {
    return Status::InvalidArgument(
        Format("slot %u out of range for class %u", slot, source.class_id));
  }
  const Oid previous = source.orefs[slot];
  if (previous == to) return Status::OK();
  // Unlink the previous target's backref, if any.
  if (previous != kInvalidOid) {
    OCB_ASSIGN_OR_RETURN(Object old_target, ReadDecode(previous));
    auto it = std::find(old_target.backrefs.begin(),
                        old_target.backrefs.end(), from);
    if (it != old_target.backrefs.end()) {
      old_target.backrefs.erase(it);
      OCB_RETURN_NOT_OK(WriteEncoded(previous, old_target));
    }
  }
  source.orefs[slot] = to;
  OCB_RETURN_NOT_OK(WriteEncoded(from, source));
  if (to != kInvalidOid) {
    OCB_ASSIGN_OR_RETURN(Object target, ReadDecode(to));
    target.backrefs.push_back(from);
    if (target.EncodedSize() > store_->max_object_size()) {
      // Roll back: the target cannot absorb another backref on one page.
      source.orefs[slot] = previous;
      OCB_RETURN_NOT_OK(WriteEncoded(from, source));
      return Status::NoSpace(
          Format("backref array of oid %llu would exceed page capacity",
                 (unsigned long long)to));
    }
    OCB_RETURN_NOT_OK(WriteEncoded(to, target));
  }
  return Status::OK();
}

Result<Object> Database::CrossLink(Oid from, Oid to, RefTypeId type,
                                   bool reverse) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  if (observer_ != nullptr) observer_->OnLinkCross(from, to, type, reverse);
  OCB_ASSIGN_OR_RETURN(Object obj, ReadDecode(to));
  if (observer_ != nullptr) observer_->OnObjectAccess(to);
  return obj;
}

Status Database::PutObject(const Object& object) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  if (object.oid == kInvalidOid) {
    return Status::InvalidArgument("PutObject requires a valid oid");
  }
  return WriteEncoded(object.oid, object);
}

Status Database::DeleteObject(Oid oid) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  OCB_ASSIGN_OR_RETURN(Object obj, ReadDecode(oid));
  // Unlink from targets' backrefs.
  for (Oid target : obj.orefs) {
    if (target == kInvalidOid) continue;
    auto tr = ReadDecode(target);
    if (!tr.ok()) continue;  // Target already gone.
    Object t = std::move(tr).value();
    auto it = std::find(t.backrefs.begin(), t.backrefs.end(), oid);
    if (it != t.backrefs.end()) {
      t.backrefs.erase(it);
      OCB_RETURN_NOT_OK(WriteEncoded(target, t));
    }
  }
  // Null out referers' oref slots.
  for (Oid referer : obj.backrefs) {
    auto rr = ReadDecode(referer);
    if (!rr.ok()) continue;
    Object r = std::move(rr).value();
    bool changed = false;
    for (Oid& slot : r.orefs) {
      if (slot == oid) {
        slot = kInvalidOid;
        changed = true;
      }
    }
    if (changed) OCB_RETURN_NOT_OK(WriteEncoded(referer, r));
  }
  // Remove from class extent.
  if (obj.class_id < schema_.class_count()) {
    auto& extent = schema_.GetMutableClass(obj.class_id).iterator;
    extent.erase(std::remove(extent.begin(), extent.end(), oid),
                 extent.end());
  }
  return store_->Delete(oid);
}

void Database::SetObserver(AccessObserver* observer) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  observer_ = observer;
}

void Database::BeginTransaction() {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  if (observer_ != nullptr) observer_->OnTransactionBegin();
}

void Database::EndTransaction() {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  if (observer_ != nullptr) observer_->OnTransactionEnd();
}

Status Database::ColdRestart() {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  OCB_RETURN_NOT_OK(pool_->FlushAll());
  return pool_->InvalidateAll();
}

uint64_t Database::object_count() const {
  return store_->stats().objects;
}

}  // namespace ocb
