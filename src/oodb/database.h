/// \file database.h
/// \brief The object-database facade: schema + object store + access hooks.
///
/// Database plays the role Texas plays in the paper: the OODB under test.
/// It owns the whole storage stack (SimClock → DiskSim → BufferPool →
/// ObjectStore), exposes typed object operations, and notifies an
/// AccessObserver (the clustering policy) of every object access and every
/// inter-object link crossing — the raw signal DSTC's observation phase
/// consumes.
///
/// Thread safety: all public operations take an internal mutex, so CLIENTN
/// workload clients may share one Database (the paper's multi-user mode).

#ifndef OCB_OODB_DATABASE_H_
#define OCB_OODB_DATABASE_H_

#include <memory>
#include <mutex>
#include <vector>

#include "oodb/object.h"
#include "oodb/schema.h"
#include "storage/buffer_pool.h"
#include "storage/disk_sim.h"
#include "storage/object_store.h"
#include "storage/storage_options.h"
#include "util/sim_clock.h"
#include "util/status.h"

namespace ocb {

/// \brief Hook interface fed by the Database on every access; implemented
/// by clustering policies (and by test spies).
class AccessObserver {
 public:
  virtual ~AccessObserver() = default;

  /// A workload transaction is starting / has ended.
  virtual void OnTransactionBegin() {}
  virtual void OnTransactionEnd() {}

  /// Object \p oid was read.
  virtual void OnObjectAccess(Oid oid) { (void)oid; }

  /// The workload dereferenced the link \p from → \p to through a reference
  /// slot of type \p type (forward) or a backward reference (reverse).
  virtual void OnLinkCross(Oid from, Oid to, RefTypeId type, bool reverse) {
    (void)from;
    (void)to;
    (void)type;
    (void)reverse;
  }
};

/// \brief The OODB under benchmark.
class Database {
 public:
  explicit Database(const StorageOptions& options);

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Installs the schema (generator output). Must precede object creation.
  void SetSchema(Schema schema);

  Schema& schema() { return schema_; }
  const Schema& schema() const { return schema_; }

  /// Creates an instance of \p class_id with all ORef slots null and the
  /// class's InstanceSize of filler. Appends it to the class extent.
  Result<Oid> CreateObject(ClassId class_id);

  /// Reads and decodes an object. Fires OnObjectAccess.
  Result<Object> GetObject(Oid oid);

  /// Reads an object *silently* (no observer callback, no statistics) —
  /// used by generators and reorganizers that must not pollute the
  /// clustering signal.
  Result<Object> PeekObject(Oid oid);

  /// Sets ORef slot \p slot of \p from to \p to and symmetrically appends
  /// \p from to the BackRef array of \p to (paper: "Reverse references are
  /// instanciated at the same time the direct links are"). A previous
  /// target's backref is unlinked first.
  Status SetReference(Oid from, uint32_t slot, Oid to);

  /// Follows a reference during a traversal: fires OnLinkCross(from, to)
  /// then reads and returns the target object.
  Result<Object> CrossLink(Oid from, Oid to, RefTypeId type, bool reverse);

  /// Rewrites an object's mutable parts (used by update-style workloads).
  Status PutObject(const Object& object);

  /// Deletes an object and unlinks it from neighbors' ORef/BackRef arrays
  /// and from its class extent.
  Status DeleteObject(Oid oid);

  /// Observer management (pass nullptr to detach).
  void SetObserver(AccessObserver* observer);

  /// Notifies transaction boundaries to the observer.
  void BeginTransaction();
  void EndTransaction();

  /// Flushes dirty pages and empties the buffer pool — a cold cache, as
  /// between the paper's generation and cold-run phases.
  Status ColdRestart();

  // --- Substrate access (benchmark harness & clustering reorganizers) ---
  ObjectStore* object_store() { return store_.get(); }
  BufferPool* buffer_pool() { return pool_.get(); }
  DiskSim* disk() { return disk_.get(); }
  SimClock* sim_clock() { return &clock_; }
  const StorageOptions& options() const { return options_; }

  /// Number of live objects.
  uint64_t object_count() const;

  /// Serializes external multi-step operations (used by the multi-client
  /// runner and by reorganizers to make multi-object sequences atomic).
  /// Recursive, so holding it while calling Database operations is safe.
  std::recursive_mutex& big_lock() { return mutex_; }

 private:
  Result<Object> ReadDecode(Oid oid);
  Status WriteEncoded(Oid oid, const Object& object);

  StorageOptions options_;
  SimClock clock_;
  std::unique_ptr<DiskSim> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<ObjectStore> store_;
  Schema schema_;
  AccessObserver* observer_ = nullptr;
  std::recursive_mutex mutex_;
};

}  // namespace ocb

#endif  // OCB_OODB_DATABASE_H_
