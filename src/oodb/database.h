/// \file database.h
/// \brief The object-database facade: schema + object store + access hooks.
///
/// Database plays the role Texas plays in the paper: the OODB under test.
/// It owns the whole storage stack (SimClock → DiskSim → BufferPool →
/// ObjectStore), exposes typed object operations, and notifies an
/// AccessObserver (the clustering policy) of every object access and every
/// inter-object link crossing — the raw signal DSTC's observation phase
/// consumes.
///
/// Concurrency model (multi-user mode, paper §3.1/§3.3):
///
///   * *Transactional path* — BeginTxn hands out a TransactionContext;
///     the txn overloads of the object operations acquire object-
///     granularity S/X locks through a strict-2PL LockManager, log
///     pre-images into an undo log, and hold everything until CommitTxn
///     (release) or AbortTxn (rollback + release). Conflicting CLIENTN
///     clients therefore interleave with real isolation; deadlocks abort
///     exactly one victim (Status::Aborted).
///   * *MVCC snapshot readers* — BeginTxn(read_only=true) additionally
///     pins a ReadView at the current commit timestamp. Reads of such a
///     transaction bypass the lock manager entirely and resolve through
///     the VersionStore — no lock waits, no deadlock aborts, repeatable
///     reads (see SnapshotRead for the read-validate protocol that keeps
///     this sound without a global latch).
///   * *Legacy path* — the historical non-txn signatures remain: no object
///     locks, no undo logging. Generators, reorganizers and the
///     single-client benches use this path single-threaded. Legacy writes
///     bypass the version store, so snapshot readers must not run
///     concurrently with them — the benches never mix the two.
///
/// Lock/latch ordering: locks before latches, catalog latch before page
/// latches, strictly top-down — the complete hierarchy (including the
/// shard-level rules a ShardedDatabase adds on top) is documented once,
/// in ARCHITECTURE.md §"Ordering rules"; this header intentionally no
/// longer duplicates it.
///
/// The pre-refactor facade big-latch survives in two places only:
///
///   * QuiesceGuard — reorganizers and snapshot save/load need the whole
///     store still at once; the guard serializes them against each other
///     and drains every in-flight page pin (BufferPool::BeginQuiesce)
///     before handing the owner exclusive physical access.
///   * SetSerializedPhysical(true) — an opt-in compatibility mode in which
///     every object operation re-acquires one recursive facade latch for
///     its whole duration, reproducing the old serialized substrate.
///     bench_multiclient runs each CLIENTN point in both modes to report
///     the facade-latch vs page-latch win (wait times come from the
///     thread-local accounting in storage/latch.h).
///
/// A Database is also the unit of *sharding*: ShardedDatabase
/// (src/sharding/) composes N of them, each a complete store with its own
/// lock manager, version store, buffer pool and disk, and coordinates
/// cross-shard transactions with two-phase commit through the
/// PrepareTxn/CommitTxnAt/AbortTxnAt entry points below.

#ifndef OCB_OODB_DATABASE_H_
#define OCB_OODB_DATABASE_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "concurrency/commit_pipeline.h"
#include "concurrency/lock_manager.h"
#include "concurrency/read_view.h"
#include "concurrency/transaction_context.h"
#include "concurrency/version_store.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "oodb/object.h"
#include "oodb/schema.h"
#include "storage/buffer_pool.h"
#include "storage/disk_sim.h"
#include "storage/latch.h"
#include "storage/object_store.h"
#include "storage/storage_options.h"
#include "util/sim_clock.h"
#include "util/status.h"
#include "util/sync.h"
#include "wal/wal_format.h"

namespace ocb {

namespace wal {
class WalWriter;
}  // namespace wal

// The public Session API layer (engine/session.h). Sessions and their
// RAII transactions are the only public route to transactional object
// operations; the raw TransactionContext overloads below are private,
// befriended to this layer and to the sharding facade.
template <typename DB>
class SessionT;
template <typename DB>
class TransactionT;
class ShardedDatabase;

/// \brief Hook interface fed by the Database on every access; implemented
/// by clustering policies (and by test spies).
///
/// Callbacks are serialized by the Database (one observer mutex), so
/// implementations need no internal locking against each other — but they
/// must not call back into the Database from inside a callback.
class AccessObserver {
 public:
  virtual ~AccessObserver() = default;

  /// A workload transaction is starting / has ended.
  virtual void OnTransactionBegin() {}
  virtual void OnTransactionEnd() {}

  /// A workload transaction rolled back: observations gathered since the
  /// matching OnTransactionBegin describe accesses that logically never
  /// happened, so learning policies should discard them. Default no-op.
  virtual void OnTransactionAbort() {}

  /// Object \p oid was read.
  virtual void OnObjectAccess(Oid oid) { (void)oid; }

  /// The workload dereferenced the link \p from → \p to through a reference
  /// slot of type \p type (forward) or a backward reference (reverse).
  virtual void OnLinkCross(Oid from, Oid to, RefTypeId type, bool reverse) {
    (void)from;
    (void)to;
    (void)type;
    (void)reverse;
  }
};

/// \brief The OODB under benchmark.
class Database {
 public:
  explicit Database(const StorageOptions& options);
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// \brief Exclusive physical access for reorganizers and snapshot
  /// save/load (the only surviving form of the old facade big-latch).
  ///
  /// Construction serializes against other QuiesceGuards (recursive: one
  /// thread may nest them) and then drains every in-flight page pin —
  /// other threads' FetchPage calls park *before* pinning anything until
  /// destruction, while threads mid multi-page operation finish first.
  /// The owner may use every Database and substrate API freely; logical
  /// lock state (2PL) is NOT affected — callers that need "no uncommitted
  /// writes" (SaveSnapshot) must additionally check the lock manager.
  class QuiesceGuard {
   public:
    explicit QuiesceGuard(Database* db) : db_(db) {
      db_->reorg_mu_.lock();
      db_->pool_->BeginQuiesce();
    }
    ~QuiesceGuard() {
      db_->pool_->EndQuiesce();
      db_->reorg_mu_.unlock();
    }
    QuiesceGuard(const QuiesceGuard&) = delete;
    QuiesceGuard& operator=(const QuiesceGuard&) = delete;

   private:
    // Declared before db_ is used in the body sequence: the span's start
    // stamp is taken at member init (before BeginQuiesce drains pins) and
    // its event is recorded at member destruction (after EndQuiesce), so
    // the trace span covers the whole exclusive window including drain.
    obs::TraceSpan span_{"quiesce"};
    Database* db_;
  };

  /// Installs the schema (generator output). Must precede object creation.
  void SetSchema(Schema schema);

  Schema& schema() { return schema_; }
  const Schema& schema() const { return schema_; }

  // --- Transaction lifecycle (concurrency-control subsystem) ---

  /// Starts a transaction: allocates a TransactionContext and fires
  /// OnTransactionBegin. Pass the context to the txn overloads below;
  /// finish with CommitTxn or AbortTxn (mandatory — locks are held until
  /// then).
  ///
  /// With \p read_only set, the transaction is an MVCC snapshot reader: a
  /// ReadView is pinned at the current commit timestamp, reads bypass the
  /// lock manager (never blocking, never deadlocking) and resolve through
  /// the version store, and every write operation is refused with
  /// InvalidArgument. Finish with CommitTxn/AbortTxn as usual (either
  /// closes the ReadView).
  ///
  /// \p cc selects the writer concurrency-control algorithm (ignored for
  /// read-only transactions; the session layer validates the option
  /// matrix — see ValidateTxnOptions):
  ///
  ///   * kStrict2PL (default) — the unchanged locking path.
  ///   * kSnapshotIsolation — a ReadView is pinned at begin exactly like
  ///     a reader's; reads resolve against it (plus the transaction's own
  ///     writes), Put is buffered, and commit validates first-committer-
  ///     wins: any object in the write set committed by someone else
  ///     since the snapshot aborts this transaction with WriteConflict.
  ///   * kSiloOCC — no S locks and no pinned view: reads record the
  ///     object's last committed-write timestamp, commit X-locks the
  ///     write set in ascending oid order, revalidates every read stamp
  ///     (plus extent versions for scans), then commits as an ordinary
  ///     writer. Read-set or phantom invalidation is WriteConflict.
  ///
  /// Under SI/OCC, SetReference and DeleteObject are refused with
  /// NotSupported (their multi-object choreography needs 2PL's eager
  /// footprint); CreateObject stays eager under a never-blocking X lock
  /// on the fresh oid.
  std::unique_ptr<TransactionContext> BeginTxn(
      bool read_only = false, CcAlgorithm cc = CcAlgorithm::kStrict2PL);

  /// BeginTxn with a *caller-issued* transaction id. The sharding facade
  /// creates every participant context of one sharded transaction with
  /// the same globally unique id, which is what lets the shards' lock
  /// managers link their wait edges in the coordinator's GlobalWaitGraph
  /// (see wait_graph.h) — and is also why the ids must come from one
  /// deployment-wide counter, never this store's own.
  std::unique_ptr<TransactionContext> BeginTxnWithId(
      TxnId id, bool read_only = false,
      CcAlgorithm cc = CcAlgorithm::kStrict2PL);

  /// Commits: stamps the transaction's published versions with a fresh
  /// commit timestamp (making them visible history for snapshot readers),
  /// releases all locks, fires OnTransactionEnd. The undo log is
  /// discarded.
  Status CommitTxn(TransactionContext* txn);

  /// Aborts: replays the undo log in reverse (restoring pre-images and
  /// deleting created objects), seals the transaction's published versions
  /// (see VersionStore::StampAborted), releases all locks, fires
  /// OnTransactionAbort. Idempotent: aborting an already-aborted
  /// transaction returns OK; aborting a committed one is
  /// InvalidArgument.
  Status AbortTxn(TransactionContext* txn);

  /// CommitTxn through the group-commit pipeline (the Session API's
  /// commit path): writers enqueue and a batch leader performs the
  /// serialized commit work — timestamp allocation and version stamping
  /// under ONE version-store commit-mutex acquisition, one observer pass
  /// — for the whole batch (see commit_pipeline.h). Semantically
  /// identical to CommitTxn per transaction; read-only transactions
  /// bypass the pipeline (they have nothing to amortize).
  Status CommitTxnGrouped(TransactionContext* txn);

  /// Group-commit batch-size cap (1 = per-transaction commits through
  /// the same path) and pipeline counters. The cap is applied per run,
  /// like SetMvccEnabled (ProtocolRunner forwards
  /// WorkloadParameters::group_commit_max_batch).
  void SetGroupCommitMaxBatch(uint32_t n) {
    commit_pipeline_.set_max_batch(n);
  }
  /// Accumulation window (GroupCommitOptions::window_nanos; default 0 —
  /// an uncontended commit never waits).
  void SetGroupCommitWindow(uint64_t nanos) {
    commit_pipeline_.set_window_nanos(nanos);
  }
  GroupCommitStats group_commit_stats() const {
    return commit_pipeline_.stats();
  }

  /// Deadlock victim policy of the lock manager (see DeadlockPolicy).
  /// Engine-wide; Session::Begin forwards TxnOptions::deadlock_policy
  /// here, all sessions of one run agreeing on the value.
  void SetDeadlockPolicy(DeadlockPolicy policy) {
    lock_manager_.SetVictimPolicy(policy);
  }
  DeadlockPolicy deadlock_policy() const {
    return lock_manager_.victim_policy();
  }

  /// Opens a Session on this engine — the entry point of the public
  /// transactional API (defined in engine/session.h; include it to
  /// call this).
  SessionT<Database> OpenSession();

  // --- Sharded-transaction entry points (CrossShardCoordinator) ---
  //
  // A ShardedDatabase transaction owns one TransactionContext per shard
  // it touched. Single-shard transactions commit through CommitTxnAt
  // directly (the 2PC fast path: no prepare, no coordinator state);
  // multi-shard ones run two-phase commit: PrepareTxn on every writer
  // participant, then — under the coordinator's commit mutex — one
  // globally drawn timestamp is stamped into every shard via CommitTxnAt,
  // which is what keeps cross-shard MVCC snapshots consistent (a reader
  // either sees every shard's half of the commit or none). All stamping
  // on a sharded member store MUST use the ...At forms with
  // coordinator-issued timestamps; mixing in locally drawn ones would
  // interleave two timestamp axes in the same version chains.

  /// Phase 1 of 2PC: verifies the transaction can commit and freezes it
  /// in TxnState::kPrepared — writes stay applied, locks stay held, and
  /// the only legal exits are CommitTxnAt (coordinator decided commit)
  /// and AbortTxn/AbortTxnAt (coordinator decided abort). Under strict
  /// 2PL with in-place writes there is nothing left to validate, so
  /// prepare can only fail for lifecycle reasons; it exists as the
  /// explicit promise point the coordinator's atomicity argument needs.
  /// SI/OCC participants *do* validate here: prepare runs FinalizeCc —
  /// write-set locking, read/write-set validation, buffered-write apply
  /// — and a validation loss surfaces as WriteConflict (the coordinator
  /// then aborts every participant; nothing of this transaction was
  /// logged or stamped). Refused for read-only transactions.
  Status PrepareTxn(TransactionContext* txn);

  /// Converts an SI/OCC transaction into an ordinary 2PL writer at the
  /// commit point (no-op for 2PL transactions and when already run):
  ///
  ///   1. X-lock the buffered write set in ascending oid order (the
  ///      write buffer is an ordered map) — deadlock-free against other
  ///      finalizers; a conflict with a 2PL writer can still return
  ///      Aborted.
  ///   2. Validate. SI: first-committer-wins — every written object's
  ///      last committed-write timestamp must not exceed the snapshot.
  ///      OCC (Silo): every read stamp unchanged AND, for read-only
  ///      members of the read set, not X-locked by another transaction
  ///      (the locked-tuple rule), plus extent version counters
  ///      unchanged (phantom protection for scans).
  ///   3. Apply the buffered writes in place under the held X locks,
  ///      publishing pre-images / undo exactly like a 2PL Put.
  ///
  /// A validation loss returns WriteConflict with the transaction still
  /// active and its locks held — the caller aborts it (locks must stay
  /// until the abort's rollback for the same reason as 2PL's). After
  /// success the commit paths need no further CC awareness: the undo log
  /// carries the writes, WAL/stamping/release proceed unchanged. Public
  /// for the coordinator, whose fast path must finalize before
  /// WalAppendTxn (the redo record is built from the undo log the apply
  /// phase populates); local commit paths call it internally.
  Status FinalizeCc(TransactionContext* txn);

  /// CommitTxn with a coordinator-issued commit timestamp: stamps the
  /// transaction's pending versions with \p ts (VersionStore::
  /// StampCommittedAt) instead of drawing a local one. Accepts active
  /// (fast path) and prepared (2PC phase 2) transactions.
  Status CommitTxnAt(TransactionContext* txn, CommitTs ts);

  /// AbortTxn with a coordinator-issued *seal* timestamp for the
  /// transaction's published versions. Accepts active and prepared
  /// transactions.
  Status AbortTxnAt(TransactionContext* txn, CommitTs ts);

  /// BeginTxn(read_only=true) pinned at a *caller-chosen* snapshot
  /// timestamp instead of this store's own latest commit: the
  /// ShardedDatabase opens one global snapshot point S and registers a
  /// view at S on every shard so a sharded reader resolves all its reads
  /// against one cross-shard instant. \p id follows the BeginTxnWithId
  /// contract. Callers must ensure MVCC is enabled.
  std::unique_ptr<TransactionContext> BeginSnapshotTxnAt(CommitTs ts,
                                                         TxnId id);

  /// A snapshot-isolation *writer* participant pinned at a caller-chosen
  /// snapshot: like BeginSnapshotTxnAt, but read-write with
  /// cc = kSnapshotIsolation. The ShardedDatabase opens every shard's
  /// view of one SI transaction at the same global snapshot point under
  /// the coordinator's commit mutex (lazily opening them at first touch
  /// would race each shard's GC: a view registered late at an old
  /// timestamp cannot resurrect already-reclaimed versions).
  std::unique_ptr<TransactionContext> BeginSiWriterTxnAt(CommitTs ts,
                                                         TxnId id);

  /// Direct lock-manager access for the sharding facade, which must
  /// acquire locks on objects *before* reading them to choreograph
  /// multi-shard operations (same contract as the internal paths: blocks,
  /// may return Aborted, no latch may be held across the call). No-op
  /// when \p txn is null.
  Status AcquireLock(TransactionContext* txn, Oid oid, LockMode mode) {
    return LockFor(txn, oid, mode);
  }

  // --- Object operations (legacy, non-transactional path) ---
  //
  // Single-threaded callers only (generators, reorganizers, the CLIENTN=1
  // benches): no object locks, no undo logging, seed-exact semantics.
  // *Transactional* object operations are not public: clients open a
  // Session (engine/session.h) whose RAII Transaction exposes Get/Put/
  // SetReference/Delete/Create plus the batched GetMany/Apply/Traverse —
  // the session layer is a friend and drives the private overloads below.

  /// Creates an instance of \p class_id with all ORef slots null and the
  /// class's InstanceSize of filler. Appends it to the class extent.
  Result<Oid> CreateObject(ClassId class_id) {
    return CreateObject(nullptr, class_id);
  }

  /// Reads and decodes an object. Fires OnObjectAccess.
  Result<Object> GetObject(Oid oid) { return GetObject(nullptr, oid); }

  /// Reads an object *silently* (no observer callback, no statistics, no
  /// lock) — used by generators and reorganizers that must not pollute the
  /// clustering signal.
  Result<Object> PeekObject(Oid oid);

  /// Sets ORef slot \p slot of \p from to \p to and symmetrically appends
  /// \p from to the BackRef array of \p to (paper: "Reverse references are
  /// instanciated at the same time the direct links are"). A previous
  /// target's backref is unlinked first.
  Status SetReference(Oid from, uint32_t slot, Oid to) {
    return SetReference(nullptr, from, slot, to);
  }

  /// Follows a reference during a traversal: fires OnLinkCross(from, to)
  /// then reads and returns the target object.
  Result<Object> CrossLink(Oid from, Oid to, RefTypeId type, bool reverse) {
    return CrossLink(nullptr, from, to, type, reverse);
  }

  /// Rewrites an object's mutable parts (used by update-style workloads).
  Status PutObject(const Object& object) { return PutObject(nullptr, object); }

  /// Deletes an object and unlinks it from neighbors' ORef/BackRef arrays
  /// and from its class extent.
  Status DeleteObject(Oid oid) { return DeleteObject(nullptr, oid); }

  /// Observer management (pass nullptr to detach).
  void SetObserver(AccessObserver* observer);

  /// Notifies transaction boundaries to the observer (legacy, non-2PL
  /// path; the txn lifecycle above fires these itself).
  void BeginTransaction();
  void EndTransaction();

  /// Flushes dirty pages and empties the buffer pool — a cold cache, as
  /// between the paper's generation and cold-run phases. Quiesces first.
  /// Refuses (InvalidArgument) while any transaction holds object locks
  /// or any ReadView is open — mirroring the SaveSnapshot contract: the
  /// flush would persist uncommitted in-place writes, and invalidation
  /// yanks pages snapshot readers may still fall through to.
  Status ColdRestart();

  // --- Write-ahead log (real durability; see src/wal/) ---
  //
  // Enabled by StorageOptions::wal_path. Commit paths append one redo
  // record per committed writer and the batch leader forces once per
  // group-commit batch, before any member is acknowledged. Recovery
  // (wal::RecoverDatabase) replays the log over the newest loadable
  // checkpoint snapshot.

  /// True when this store writes a real WAL.
  bool wal_enabled() const { return wal_ != nullptr; }

  /// The WAL writer (nullptr when disabled). SaveSnapshot appends its
  /// checkpoint record through this; tests read append/force counters.
  wal::WalWriter* wal() { return wal_.get(); }

  /// OK, or why the WAL configured in StorageOptions::wal_path could not
  /// be opened (the constructor cannot fail; commits on a store whose WAL
  /// failed to open return this error instead of acknowledging).
  Status wal_open_status() const { return wal_open_status_; }

  /// Appends (without forcing) the redo record of \p txn's writes at
  /// commit timestamp \p ts. The transaction must still hold its locks
  /// and its undo log must be intact (call before CommitTxnAt, which
  /// clears it). \p coordinated marks the record as owned by a 2PC
  /// commit: replay then requires a matching coordinator marker. The
  /// CrossShardCoordinator is the only external caller.
  Status WalAppendTxn(TransactionContext* txn, CommitTs ts, bool coordinated);

  /// Forces this store's WAL (no-op when disabled). The coordinator calls
  /// this once per cross-shard batch on every participating writer shard,
  /// before forcing its own marker log.
  Status WalForce();

  /// Applies one replayed redo operation directly to the store: upsert
  /// installs the post-image (insert-or-update, maintaining the class
  /// extent), delete removes the object if present. Idempotent — a
  /// restart during recovery replays the same records harmlessly.
  /// Recovery-only: no locks, no undo, no versioning.
  Status ApplyRedoOp(const wal::WalOp& op);

  // --- Automatic checkpointing ---
  //
  // With a WAL and a nonzero StorageOptions::checkpoint_interval_commits,
  // a background thread runs SaveSnapshot every N writer commits,
  // alternating between "<wal_path>.autockpt0/1" so a crash mid-save can
  // never destroy the only loadable checkpoint. SaveSnapshot's own safety
  // rules stay in force: an attempt while transactions hold object locks
  // is refused (counted below) and retried on the next commit.

  /// Automatic checkpoints completed so far.
  uint64_t checkpoints_taken() const {
    return checkpoints_taken_.load(std::memory_order_relaxed);
  }
  /// Automatic checkpoint attempts refused (locks were held).
  uint64_t checkpoints_refused() const {
    return checkpoints_refused_.load(std::memory_order_relaxed);
  }

  // --- Uniform engine surface ---
  //
  // Database and ShardedDatabase expose this identically (the sharded
  // form aggregates over its shards); the templated OCB execution layer
  // (generator, TransactionExecutorT, ProtocolRunnerT, RunMultiClient)
  // is written against it and therefore runs unchanged on either engine.
  // See ARCHITECTURE.md §"The engine surface".

  /// The transaction-handle type BeginTxn hands out.
  using TxnHandle = TransactionContext;

  /// Current simulated time (cumulative charged I/O + think latency).
  uint64_t SimNowNanos() const { return clock_.now_nanos(); }

  /// Charges think-time latency to the simulated clock.
  void AdvanceSimClock(uint64_t nanos) { clock_.Advance(nanos); }

  /// I/O counters of one accounting scope.
  IoCounters IoCountersFor(IoScope scope) const {
    return disk_->counters(scope);
  }

  /// Current / new I/O accounting scope (see ScopedEngineIoScope).
  IoScope io_scope() const { return disk_->scope(); }
  void SetIoScope(IoScope scope) { disk_->set_scope(scope); }

  /// Aggregate buffer-pool counters.
  BufferPoolStats PoolStats() const { return pool_->stats(); }

  /// Aggregate object-store placement statistics.
  ObjectStoreStats StoreStats() const { return store_->stats(); }

  /// Writes every dirty page back (generation epilogue). Drains the
  /// background write-back queue first.
  Status FlushPools() { return pool_->FlushAll(); }

  /// Advisory batch cache-warm for an upcoming multi-object read:
  /// resolves \p oids to their pages and issues every buffer-pool miss as
  /// ONE overlapped batch (ObjectStore::Prefetch → BufferPool::FetchMany)
  /// instead of paying the misses one device latency at a time. Purely a
  /// hint — unknown oids are skipped and errors resurface on the real
  /// read. No-op in serialize-physical mode: the compatibility baseline
  /// must keep its strictly serial I/O.
  Status PrefetchObjects(std::span<const Oid> oids) {
    if (serialized_physical()) return Status::OK();
    return store_->Prefetch(oids);
  }

  // --- Substrate access (benchmark harness & clustering reorganizers) ---
  ObjectStore* object_store() { return store_.get(); }
  BufferPool* buffer_pool() { return pool_.get(); }
  DiskSim* disk() { return disk_.get(); }
  SimClock* sim_clock() { return &clock_; }
  LockManager* lock_manager() { return &lock_manager_; }
  VersionStore* version_store() { return &version_store_; }
  ReadViewRegistry* read_views() { return &read_views_; }
  const StorageOptions& options() const { return options_; }

  /// Runs one version-store GC pass right now (the background thread does
  /// this periodically; tests call it for deterministic reclamation).
  /// Returns the number of versions reclaimed.
  uint64_t CollectVersionGarbage() {
    return version_store_.GarbageCollect(read_views_);
  }

  /// Globally enables/disables MVCC (default on). When disabled, writers
  /// stop publishing versions (no version-store copies, stamps, or GC
  /// work) and BeginTxn(read_only=true) silently falls back to a plain
  /// locking transaction — the pure-2PL baseline bench_multiclient
  /// measures. Flip only while no transaction is in flight: versions
  /// published before the flip would never be stamped after it.
  void SetMvccEnabled(bool on) {
    mvcc_enabled_.store(on, std::memory_order_relaxed);
  }
  bool mvcc_enabled() const {
    return mvcc_enabled_.load(std::memory_order_relaxed);
  }

  /// Opt-in compatibility mode: every object operation serializes on one
  /// recursive facade latch for its whole duration, physical I/O included
  /// — the pre-refactor big-latch substrate. bench_multiclient uses it as
  /// the baseline of the facade-latch vs page-latch comparison. Flip only
  /// while no operation is in flight.
  void SetSerializedPhysical(bool on) {
    serialize_physical_.store(on, std::memory_order_relaxed);
  }
  bool serialized_physical() const {
    return serialize_physical_.load(std::memory_order_relaxed);
  }

  /// Number of live objects.
  uint64_t object_count() const;

  // --- Catalog snapshots (safe under concurrent clients) ---
  //
  // Class extents mutate under the catalog latch; these accessors copy
  // them under it so multi-threaded callers (the transaction executor,
  // protocol runners, stress tests) never iterate a vector another client
  // is growing. The returned snapshot may be stale the moment it is
  // returned — callers already tolerate vanished objects (NotFound) by
  // construction.

  /// Copy of class \p class_id's extent.
  std::vector<Oid> ExtentSnapshot(ClassId class_id);

  /// Extent copy filtered through \p txn's visibility: for an MVCC
  /// snapshot reader — and an SI writer, whose reads come from its
  /// pinned view — members the version store proves did not exist at
  /// the view's timestamp (created after it) are dropped, so a snapshot
  /// Scan never observes an object born after its instant. An OCC
  /// transaction sees the plain copy but records the class's extent
  /// version (see ExtentVersion) for commit-time phantom validation.
  /// Locking and legacy transactions (and txn == nullptr) see the plain
  /// copy — their reads target current state by construction.
  std::vector<Oid> ExtentSnapshot(ClassId class_id, TransactionContext* txn);

  /// Monotonic per-class extent-membership version: bumped under the
  /// exclusive catalog latch by every membership mutation (create,
  /// delete, abort rollback of either, redo replay). OCC scans record it
  /// and revalidate at commit — an unchanged counter proves no phantom
  /// joined or left the extent between scan and commit.
  uint64_t ExtentVersion(ClassId class_id);

  /// Commit-time validation losses, per algorithm (monotonic; also
  /// exported as the gauges db.cc.si_conflicts / db.cc.occ_conflicts).
  /// OCC fail-fast read-set aborts count in occ_conflicts too.
  uint64_t si_conflicts() const {
    return si_conflicts_.load(std::memory_order_relaxed);
  }
  uint64_t occ_conflicts() const {
    return occ_conflicts_.load(std::memory_order_relaxed);
  }

  /// Copy of all live oids (the object table is internally striped; the
  /// copy is consistent-enough for root-pool maintenance).
  std::vector<Oid> LiveOidsSnapshot();

  /// True when \p oid is currently live.
  bool ContainsObject(Oid oid);

 private:
  // The session layer (SessionT/TransactionT drive the transactional
  // object operations) and the sharding facade (choreographs cross-shard
  // footprints through its shards' private overloads) are the only
  // callers of the raw TransactionContext object operations.
  template <typename DB>
  friend class SessionT;
  template <typename DB>
  friend class TransactionT;
  friend class ShardedDatabase;

  // --- Transactional object operations (session-internal) ---
  //
  // Each is the transactional twin of the public legacy form: it takes a
  // TransactionContext and participates in 2PL (S lock for reads, X lock
  // for writes, undo logging); a Status::Aborted return means the
  // transaction was chosen as a deadlock victim (or timed out) and the
  // caller must AbortTxn. A null context selects the legacy path.
  // Operations through a finished (committed/aborted/prepared) context
  // are refused with InvalidArgument — never UB.

  Result<Oid> CreateObject(TransactionContext* txn, ClassId class_id);
  Result<Object> GetObject(TransactionContext* txn, Oid oid);
  Status SetReference(TransactionContext* txn, Oid from, uint32_t slot,
                      Oid to);
  Result<Object> CrossLink(TransactionContext* txn, Oid from, Oid to,
                           RefTypeId type, bool reverse);
  Status PutObject(TransactionContext* txn, const Object& object);
  Status DeleteObject(TransactionContext* txn, Oid oid);

  /// Batched read (Transaction::GetMany): ONE sorted lock-footprint pass
  /// (S locks in ascending oid order — no two GetMany calls can deadlock
  /// each other), one facade-gate section, one observer pass. Objects
  /// append to \p out in input order; vanished oids are skipped
  /// (NotFound is not an error, matching the single-get tolerance of
  /// concurrent deletes). MVCC readers resolve each oid through their
  /// ReadView instead (no locks).
  Status GetObjectsBatched(TransactionContext* txn,
                           std::span<const Oid> oids,
                           std::vector<Object>* out);

  /// Batched write-footprint acquisition (Transaction::Apply): X-locks
  /// every oid in \p oids in ascending order before the batch's
  /// operations run. The per-op calls then re-acquire idempotently and
  /// pick up any dynamic footprint (previous reference targets, delete
  /// neighborhoods).
  Status AcquireWriteFootprint(TransactionContext* txn,
                               std::vector<Oid> oids);

  /// Group-commit batch body (runs on the pipeline leader): stamps every
  /// member's versions via one StampCommittedBatch call, then finishes
  /// each member (state, undo discard, lock release) and fires one
  /// observer pass.
  void CommitBatch(const std::vector<CommitPipeline::Request*>& batch);

  /// Rejects object operations through a finished transaction handle.
  Status RefuseFinished(const TransactionContext* txn, const char* op);

  Result<Object> ReadDecode(Oid oid);
  Status WriteEncoded(Oid oid, const Object& object);

  /// Builds \p txn's redo record at \p ts from its undo log: every oid
  /// the transaction touched maps to an upsert carrying the *current*
  /// store bytes (the post-image — writes are in-place and the X locks
  /// are still held) or to a delete when the object no longer exists.
  wal::WalRecord BuildRedoRecord(TransactionContext* txn, CommitTs ts,
                                 bool coordinated);

  /// Shared commit/abort bodies; \p external_ts == 0 draws local
  /// timestamps (CommitTxn/AbortTxn), nonzero uses the coordinator-issued
  /// one (CommitTxnAt/AbortTxnAt).
  Status CommitTxnInternal(TransactionContext* txn, CommitTs external_ts);
  Status AbortTxnInternal(TransactionContext* txn, CommitTs external_ts);

  /// Lock-free read of one object for an SI or OCC transaction: the
  /// transaction's own writes first (buffered post-image, then its own
  /// in-place creations), then the algorithm's read protocol — SI reads
  /// the pinned snapshot, OCC reads committed-latest inside a stamp-
  /// stability loop and records the stamp in the read set. An OCC
  /// re-read whose stamp changed since the first read fails fast with
  /// WriteConflict (the transaction could never validate).
  Result<Object> OptimisticRead(TransactionContext* txn, Oid oid);

  /// Generalized snapshot read at an explicit read point; SnapshotRead
  /// passes the transaction's pinned view, OCC passes
  /// VersionStore::kReadLatestTs (committed-latest).
  Result<Object> SnapshotReadAt(TransactionContext* txn, Oid oid,
                                CommitTs read_ts);

  /// Returns a held lock on the serialize-physical facade latch when the
  /// compatibility mode is on — or when \p force is set, which the legacy
  /// (txn == nullptr) *write* paths use: they have no object locks, so
  /// their multi-object read-modify-write sequences keep the seed's
  /// facade-serialized semantics in every mode. An empty (unheld) lock
  /// otherwise. Blocked time is charged to the thread's facade-wait
  /// counter.
  std::unique_lock<std::recursive_mutex> FacadeGate(bool force = false);

  /// Observer notification helpers (serialize on observer_mu_).
  void NotifyObjectAccess(Oid oid);
  void NotifyLinkCross(Oid from, Oid to, RefTypeId type, bool reverse);

  /// Appends a kRestore undo record holding \p obj's current encoding and
  /// publishes the same bytes as a pending version in the version store —
  /// once per oid per txn (undo restores the earliest state). The publish
  /// strictly precedes the first in-place write, which is what the
  /// snapshot readers' read-validate protocol relies on. No-op when
  /// \p txn is null.
  void RecordPreImage(TransactionContext* txn, const Object& obj);

  /// Acquires \p mode on \p oid for \p txn via the lock manager; no-op
  /// when \p txn is null. Must be called before any latch is taken (it
  /// blocks).
  Status LockFor(TransactionContext* txn, Oid oid, LockMode mode);

  /// Snapshot read for a read-only txn, without any facade latch:
  ///
  ///   1. Resolve through the version store; a version newer than the
  ///      ReadView (pending ones count as +infinity) carries the state at
  ///      the snapshot.
  ///   2. Otherwise read the current store state (under the page's S
  ///      latch) and re-check the version store: writers publish their
  ///      pre-image *before* the first in-place write and aborts seal
  ///      (never drop) published versions, so any write racing the store
  ///      read is visible to the second check, which then supplies the
  ///      correct pre-image. An unchanged second check proves the store
  ///      bytes were the state at the snapshot.
  Result<Object> SnapshotRead(TransactionContext* txn, Oid oid);

  /// Rejects write operations issued through a read-only txn.
  Status RefuseReadOnly(const TransactionContext* txn, const char* op);

  /// Rejects the operations SI/OCC do not support (SetReference,
  /// DeleteObject — multi-object choreography needing 2PL's eager
  /// footprint) with typed NotSupported.
  Status RefuseNonLocking(const TransactionContext* txn, const char* op);

  /// Background version-GC loop: wakes every few milliseconds (or when
  /// prodded) and reclaims versions older than the oldest live ReadView.
  void GcLoop();

  /// Tells the auto-checkpoint scheduler \p commits more writer commits
  /// became durable; wakes the thread when the interval fills. No-op when
  /// automatic checkpointing is off.
  void NoteCommitsForCheckpoint(uint64_t commits);

  /// Background auto-checkpoint loop (see "Automatic checkpointing").
  void CheckpointLoop();

  /// Registers this engine's gauge callbacks (db.pool.*, db.lock.*, ...)
  /// with the global metrics registry; no-op when compiled out.
  void RegisterObsCallbacks();

  /// Gauge-callback registrations with the global metrics registry
  /// (db.pool.*, db.lock.*, db.mvcc.*, ... reading the engine's own
  /// atomic stats — the registry never double-counts them). Cleared at
  /// the TOP of ~Database, before any member the callbacks read dies.
  obs::ScopedCallbacks obs_callbacks_;

  StorageOptions options_;
  SimClock clock_;
  std::unique_ptr<DiskSim> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<ObjectStore> store_;
  Schema schema_;
  AccessObserver* observer_ OCB_GUARDED_BY(observer_mu_) = nullptr;
  LockManager lock_manager_;
  VersionStore version_store_;
  ReadViewRegistry read_views_;
  /// Group-commit pipeline behind CommitTxnGrouped; its batch function is
  /// CommitBatch. Touches lock_manager_/version_store_/read_views_, so
  /// it is declared after them.
  CommitPipeline commit_pipeline_;
  /// Real redo log (StorageOptions::wal_path); nullptr when disabled or
  /// when opening failed (see wal_open_status_).
  std::unique_ptr<wal::WalWriter> wal_;
  Status wal_open_status_;
  std::atomic<bool> mvcc_enabled_{true};
  std::atomic<bool> serialize_physical_{false};
  std::atomic<TxnId> next_txn_id_{1};
  std::atomic<uint64_t> si_conflicts_{0};   ///< See si_conflicts().
  std::atomic<uint64_t> occ_conflicts_{0};  ///< See occ_conflicts().

  /// Catalog latch: schema/class-extent metadata only (level 2 of the
  /// hierarchy above). Never held across physical I/O. (schema_ itself is
  /// not OCB_GUARDED_BY it: the schema object is frozen before clients
  /// run and the accessors hand out bare references; the latch guards the
  /// mutable extent membership and its version counters.)
  mutable SharedMutex catalog_mu_{lockdep::kCatalogLatchClass};

  /// Per-class extent-membership versions (see ExtentVersion). Guarded
  /// by catalog_mu_, like the extents whose mutations bump them.
  std::unordered_map<ClassId, uint64_t> extent_versions_
      OCB_GUARDED_BY(catalog_mu_);

  /// Serializes observer callbacks (clustering policies are not internally
  /// synchronized).
  Mutex observer_mu_{lockdep::kObserverClass};

  /// Serializes QuiesceGuard owners (reorganizers, snapshot save/load).
  std::recursive_mutex reorg_mu_;

  /// The opt-in serialize-physical big-latch (compatibility mode only).
  std::recursive_mutex serial_mu_;

  // Background version GC. Started lazily by the first BeginTxn (legacy
  // single-client users never pay for the thread), joined in the
  // destructor — declared last so the thread never outlives the state it
  // touches.
  std::once_flag gc_once_;
  Mutex gc_mu_{lockdep::kGcWakeupClass};
  std::condition_variable_any gc_cv_;
  bool gc_stop_ OCB_GUARDED_BY(gc_mu_) = false;
  std::thread gc_thread_;

  // Automatic checkpointing (started in the constructor when configured,
  // joined in the destructor before any member it reads dies).
  std::atomic<uint64_t> checkpoints_taken_{0};
  std::atomic<uint64_t> checkpoints_refused_{0};
  Mutex ckpt_mu_{lockdep::kCkptWakeupClass};
  std::condition_variable_any ckpt_cv_;
  bool ckpt_stop_ OCB_GUARDED_BY(ckpt_mu_) = false;
  uint64_t ckpt_pending_commits_ OCB_GUARDED_BY(ckpt_mu_) = 0;
  std::thread ckpt_thread_;
};

}  // namespace ocb

#endif  // OCB_OODB_DATABASE_H_
