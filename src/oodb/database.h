/// \file database.h
/// \brief The object-database facade: schema + object store + access hooks.
///
/// Database plays the role Texas plays in the paper: the OODB under test.
/// It owns the whole storage stack (SimClock → DiskSim → BufferPool →
/// ObjectStore), exposes typed object operations, and notifies an
/// AccessObserver (the clustering policy) of every object access and every
/// inter-object link crossing — the raw signal DSTC's observation phase
/// consumes.
///
/// Concurrency model (multi-user mode, paper §3.1/§3.3):
///
///   * *Transactional path* — BeginTxn hands out a TransactionContext;
///     the txn overloads of the object operations acquire object-
///     granularity S/X locks through a strict-2PL LockManager, log
///     pre-images into an undo log, and hold everything until CommitTxn
///     (release) or AbortTxn (rollback + release). Conflicting CLIENTN
///     clients therefore interleave with real isolation; deadlocks abort
///     exactly one victim (Status::Aborted).
///   * *MVCC snapshot readers* — BeginTxn(read_only=true) additionally
///     pins a ReadView at the current commit timestamp. Reads of such a
///     transaction bypass the lock manager entirely and resolve through
///     the VersionStore: each committed write publishes its pre-image
///     (reusing the undo-log machinery) keyed by a global commit
///     timestamp, so a snapshot reader always sees the database exactly as
///     of its ReadView — no lock waits, no deadlock aborts, repeatable
///     reads. Writers keep strict 2PL, so write-write conflict and
///     rollback semantics are unchanged. Versions older than the oldest
///     live ReadView are reclaimed by a background GC thread.
///   * *Legacy path* — the historical non-txn signatures remain and behave
///     exactly as before: each call serializes on the facade mutex with no
///     object locks and no undo logging. Generators, reorganizers and the
///     single-client benches use this path, byte-for-byte identical to the
///     pre-lock-manager behaviour. Legacy writes bypass the version store
///     (they allocate no commit timestamp), so snapshot readers must not
///     run concurrently with them — the benches never mix the two.
///
/// The facade mutex survives as a short-duration *latch*: the storage
/// substrate (DiskSim/BufferPool/ObjectStore) is single-threaded, so every
/// physical operation — not whole transactions — runs under it. Logical
/// isolation across a transaction's lifetime comes from the lock manager,
/// never from the latch.

#ifndef OCB_OODB_DATABASE_H_
#define OCB_OODB_DATABASE_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "concurrency/lock_manager.h"
#include "concurrency/read_view.h"
#include "concurrency/transaction_context.h"
#include "concurrency/version_store.h"
#include "oodb/object.h"
#include "oodb/schema.h"
#include "storage/buffer_pool.h"
#include "storage/disk_sim.h"
#include "storage/object_store.h"
#include "storage/storage_options.h"
#include "util/sim_clock.h"
#include "util/status.h"

namespace ocb {

/// \brief Hook interface fed by the Database on every access; implemented
/// by clustering policies (and by test spies).
class AccessObserver {
 public:
  virtual ~AccessObserver() = default;

  /// A workload transaction is starting / has ended.
  virtual void OnTransactionBegin() {}
  virtual void OnTransactionEnd() {}

  /// A workload transaction rolled back: observations gathered since the
  /// matching OnTransactionBegin describe accesses that logically never
  /// happened, so learning policies should discard them. Default no-op.
  virtual void OnTransactionAbort() {}

  /// Object \p oid was read.
  virtual void OnObjectAccess(Oid oid) { (void)oid; }

  /// The workload dereferenced the link \p from → \p to through a reference
  /// slot of type \p type (forward) or a backward reference (reverse).
  virtual void OnLinkCross(Oid from, Oid to, RefTypeId type, bool reverse) {
    (void)from;
    (void)to;
    (void)type;
    (void)reverse;
  }
};

/// \brief The OODB under benchmark.
class Database {
 public:
  explicit Database(const StorageOptions& options);
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Installs the schema (generator output). Must precede object creation.
  void SetSchema(Schema schema);

  Schema& schema() { return schema_; }
  const Schema& schema() const { return schema_; }

  // --- Transaction lifecycle (concurrency-control subsystem) ---

  /// Starts a transaction: allocates a TransactionContext and fires
  /// OnTransactionBegin. Pass the context to the txn overloads below;
  /// finish with CommitTxn or AbortTxn (mandatory — locks are held until
  /// then).
  ///
  /// With \p read_only set, the transaction is an MVCC snapshot reader: a
  /// ReadView is pinned at the current commit timestamp, reads bypass the
  /// lock manager (never blocking, never deadlocking) and resolve through
  /// the version store, and every write operation is refused with
  /// InvalidArgument. Finish with CommitTxn/AbortTxn as usual (either
  /// closes the ReadView).
  std::unique_ptr<TransactionContext> BeginTxn(bool read_only = false);

  /// Commits: stamps the transaction's published versions with a fresh
  /// commit timestamp (making them visible history for snapshot readers),
  /// releases all locks, fires OnTransactionEnd. The undo log is
  /// discarded.
  Status CommitTxn(TransactionContext* txn);

  /// Aborts: replays the undo log in reverse (restoring pre-images and
  /// deleting created objects), discards the transaction's pending
  /// versions, releases all locks, fires OnTransactionAbort.
  Status AbortTxn(TransactionContext* txn);

  // --- Object operations ---
  //
  // Each operation has two forms. The txn form takes a TransactionContext
  // and participates in 2PL (S lock for reads, X lock for writes, undo
  // logging); a Status::Aborted return means the transaction was chosen as
  // a deadlock victim (or timed out) and the caller must AbortTxn. The
  // legacy form is the txn form with a null context: facade-serialized,
  // no locks, no undo — the seed's exact behaviour.

  /// Creates an instance of \p class_id with all ORef slots null and the
  /// class's InstanceSize of filler. Appends it to the class extent.
  Result<Oid> CreateObject(TransactionContext* txn, ClassId class_id);
  Result<Oid> CreateObject(ClassId class_id) {
    return CreateObject(nullptr, class_id);
  }

  /// Reads and decodes an object. Fires OnObjectAccess.
  Result<Object> GetObject(TransactionContext* txn, Oid oid);
  Result<Object> GetObject(Oid oid) { return GetObject(nullptr, oid); }

  /// Reads an object *silently* (no observer callback, no statistics, no
  /// lock) — used by generators and reorganizers that must not pollute the
  /// clustering signal.
  Result<Object> PeekObject(Oid oid);

  /// Sets ORef slot \p slot of \p from to \p to and symmetrically appends
  /// \p from to the BackRef array of \p to (paper: "Reverse references are
  /// instanciated at the same time the direct links are"). A previous
  /// target's backref is unlinked first.
  Status SetReference(TransactionContext* txn, Oid from, uint32_t slot,
                      Oid to);
  Status SetReference(Oid from, uint32_t slot, Oid to) {
    return SetReference(nullptr, from, slot, to);
  }

  /// Follows a reference during a traversal: fires OnLinkCross(from, to)
  /// then reads and returns the target object.
  Result<Object> CrossLink(TransactionContext* txn, Oid from, Oid to,
                           RefTypeId type, bool reverse);
  Result<Object> CrossLink(Oid from, Oid to, RefTypeId type, bool reverse) {
    return CrossLink(nullptr, from, to, type, reverse);
  }

  /// Rewrites an object's mutable parts (used by update-style workloads).
  Status PutObject(TransactionContext* txn, const Object& object);
  Status PutObject(const Object& object) { return PutObject(nullptr, object); }

  /// Deletes an object and unlinks it from neighbors' ORef/BackRef arrays
  /// and from its class extent.
  Status DeleteObject(TransactionContext* txn, Oid oid);
  Status DeleteObject(Oid oid) { return DeleteObject(nullptr, oid); }

  /// Observer management (pass nullptr to detach).
  void SetObserver(AccessObserver* observer);

  /// Notifies transaction boundaries to the observer (legacy, non-2PL
  /// path; the txn lifecycle above fires these itself).
  void BeginTransaction();
  void EndTransaction();

  /// Flushes dirty pages and empties the buffer pool — a cold cache, as
  /// between the paper's generation and cold-run phases.
  Status ColdRestart();

  // --- Substrate access (benchmark harness & clustering reorganizers) ---
  ObjectStore* object_store() { return store_.get(); }
  BufferPool* buffer_pool() { return pool_.get(); }
  DiskSim* disk() { return disk_.get(); }
  SimClock* sim_clock() { return &clock_; }
  LockManager* lock_manager() { return &lock_manager_; }
  VersionStore* version_store() { return &version_store_; }
  ReadViewRegistry* read_views() { return &read_views_; }
  const StorageOptions& options() const { return options_; }

  /// Runs one version-store GC pass right now (the background thread does
  /// this periodically; tests call it for deterministic reclamation).
  /// Returns the number of versions reclaimed.
  uint64_t CollectVersionGarbage() {
    return version_store_.GarbageCollect(read_views_);
  }

  /// Globally enables/disables MVCC (default on). When disabled, writers
  /// stop publishing versions (no version-store copies, stamps, or GC
  /// work) and BeginTxn(read_only=true) silently falls back to a plain
  /// locking transaction — the pure-2PL baseline bench_multiclient
  /// measures. Flip only while no transaction is in flight: versions
  /// published before the flip would never be stamped after it.
  void SetMvccEnabled(bool on) {
    mvcc_enabled_.store(on, std::memory_order_relaxed);
  }
  bool mvcc_enabled() const {
    return mvcc_enabled_.load(std::memory_order_relaxed);
  }

  /// Number of live objects.
  uint64_t object_count() const;

  // --- Latched snapshots (safe under concurrent clients) ---
  //
  // Class extents and the object table mutate under the facade latch;
  // these accessors copy them under it so multi-threaded callers (the
  // transaction executor, protocol runners, stress tests) never iterate a
  // vector another client is growing. The returned snapshot may be stale
  // the moment it is returned — callers already tolerate vanished objects
  // (NotFound) by construction.

  /// Copy of class \p class_id's extent.
  std::vector<Oid> ExtentSnapshot(ClassId class_id);

  /// Copy of all live oids (ObjectStore::LiveOids under the latch).
  std::vector<Oid> LiveOidsSnapshot();

  /// True when \p oid is currently live (latched ObjectStore::Contains).
  bool ContainsObject(Oid oid);

  /// Serializes external multi-step operations (used by reorganizers to
  /// make multi-object sequences atomic, and internally as the storage
  /// latch). Recursive, so holding it while calling Database operations is
  /// safe. Note: holding it does NOT confer 2PL isolation against the
  /// transactional path's logical state — it excludes physical access only
  /// (which reorganizers, moving objects wholesale, rely on).
  std::recursive_mutex& big_lock() { return mutex_; }

 private:
  Result<Object> ReadDecode(Oid oid);
  Status WriteEncoded(Oid oid, const Object& object);

  /// Appends a kRestore undo record holding \p obj's current encoding and
  /// publishes the same bytes as a pending version in the version store —
  /// once per oid per txn (undo restores the earliest state). No-op when
  /// \p txn is null.
  void RecordPreImage(TransactionContext* txn, const Object& obj);

  /// Acquires \p mode on \p oid for \p txn via the lock manager; no-op
  /// when \p txn is null. Must be called *outside* the latch (it blocks).
  Status LockFor(TransactionContext* txn, Oid oid, LockMode mode);

  /// Snapshot read for a read-only txn: resolves \p oid through the
  /// version store at the txn's ReadView (under the latch, so the chain
  /// lookup and any store fall-through see one consistent world).
  Result<Object> SnapshotRead(TransactionContext* txn, Oid oid);

  /// Rejects write operations issued through a read-only txn.
  Status RefuseReadOnly(const TransactionContext* txn, const char* op);

  /// Background version-GC loop: wakes every few milliseconds (or when
  /// prodded) and reclaims versions older than the oldest live ReadView.
  void GcLoop();

  StorageOptions options_;
  SimClock clock_;
  std::unique_ptr<DiskSim> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<ObjectStore> store_;
  Schema schema_;
  AccessObserver* observer_ = nullptr;
  LockManager lock_manager_;
  VersionStore version_store_;
  ReadViewRegistry read_views_;
  std::atomic<bool> mvcc_enabled_{true};
  std::atomic<TxnId> next_txn_id_{1};
  std::recursive_mutex mutex_;

  // Background version GC. Started lazily by the first BeginTxn (legacy
  // single-client users never pay for the thread), joined in the
  // destructor — declared last so the thread never outlives the state it
  // touches.
  std::once_flag gc_once_;
  std::mutex gc_mu_;
  std::condition_variable gc_cv_;
  bool gc_stop_ = false;
  std::thread gc_thread_;
};

}  // namespace ocb

#endif  // OCB_OODB_DATABASE_H_
