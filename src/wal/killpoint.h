/// \file killpoint.h
/// \brief Crash-injection points for the durability kill-point harness.
///
/// A kill point is a named location in the commit/checkpoint path where a
/// test can make the process die abruptly — `_exit(137)`, no destructors,
/// no flushes — to simulate a crash at exactly that point. Selection is by
/// environment so the harness can fork a child, set the variables, and let
/// the child kill itself mid-commit:
///
///   OCB_WAL_KILLPOINT   name of the point to trigger (e.g. "pre-force",
///                       "post-force", "mid-batch", "mid-checkpoint")
///   OCB_WAL_KILL_AFTER  optional countdown N (default 0): skip the first
///                       N hits of the named point, die on hit N+1. Lets a
///                       test crash deep inside a storm instead of on the
///                       first commit.
///
/// In a normal process (variables unset) MaybeKill is two branch-free
/// loads of cached state — safe on the commit hot path.

#ifndef OCB_WAL_KILLPOINT_H_
#define OCB_WAL_KILLPOINT_H_

namespace ocb {
namespace wal_killpoint {

/// Dies with _exit(137) when \p point matches OCB_WAL_KILLPOINT and the
/// OCB_WAL_KILL_AFTER countdown has been exhausted. No-op otherwise.
void MaybeKill(const char* point);

/// True when any kill point is armed (OCB_WAL_KILLPOINT set). Lets code
/// avoid work that only matters under the harness.
bool Armed();

}  // namespace wal_killpoint
}  // namespace ocb

#endif  // OCB_WAL_KILLPOINT_H_
