/// \file wal_format.h
/// \brief On-disk format of the redo write-ahead log.
///
/// A WAL file is the 8-byte magic "OCBWAL01" followed by a sequence of
/// records. Each record is framed as
///
///     u32 crc      CRC-32 over everything after this field (length
///                  included), little-endian
///     u32 length   byte length of the body that follows the length field
///     body:
///       u8  type       WalRecordType
///       u8  flags      WalRecordFlags bitmask
///       u64 txn_id     committing transaction (0 for checkpoint/marker)
///       u64 commit_ts  global commit timestamp (watermark for checkpoints)
///       u32 op_count   number of ops that follow
///       ops, each:
///         u8  kind         WalOpKind
///         u32 class_id
///         u64 oid
///         u32 payload_len  encoded object size (0 for deletes)
///         u8  payload[payload_len]
///
/// All integers are little-endian (the engine only targets little-endian
/// hosts; the snapshot format makes the same assumption).
///
/// Torn-tail rule: a reader accepts the longest prefix of records whose
/// frames are complete and whose CRCs match, and reports the byte offset
/// of that prefix so the writer can truncate the torn tail before
/// appending. A record is atomic — either its CRC validates and all of it
/// replays, or it and everything after it is discarded.
///
/// Checkpoint records carry {snapshot path, watermark ts} in the payload
/// of a single op (kind = kCheckpointInfo): replay may start from the
/// snapshot and skip records with commit_ts <= watermark.
///
/// Coordinator commit markers (kCoordMarker) live in the coordinator's own
/// log (<wal_path>.coord under ShardedDatabase). A participant record with
/// the kCoordinated flag replays only if a marker with the same commit_ts
/// exists in the coordinator log — this is what makes a 2PC commit recover
/// on all participating shards or none.

#ifndef OCB_WAL_WAL_FORMAT_H_
#define OCB_WAL_WAL_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ocb {
namespace wal {

/// File magic: 8 bytes at offset 0 of every WAL file.
inline constexpr char kWalMagic[8] = {'O', 'C', 'B', 'W', 'A', 'L', '0', '1'};
inline constexpr size_t kWalMagicSize = sizeof(kWalMagic);

/// Fixed frame overhead preceding each record body: crc + length.
inline constexpr size_t kWalFrameHeaderSize = 2 * sizeof(uint32_t);

/// Record types.
enum class WalRecordType : uint8_t {
  /// A committed transaction's redo: post-image upserts and deletes.
  kCommit = 1,
  /// Coordinator-side commit marker for a cross-shard (2PC) commit at
  /// commit_ts. Lives in the coordinator log only; carries no ops.
  kCoordMarker = 2,
  /// Checkpoint: snapshot written at watermark commit_ts. One op of kind
  /// kCheckpointInfo holds the snapshot path as payload.
  kCheckpoint = 3,
};

/// Record flag bits.
enum WalRecordFlags : uint8_t {
  /// This commit was stamped by the cross-shard coordinator; replay it only
  /// if the coordinator log holds a kCoordMarker with the same commit_ts.
  kCoordinated = 1u << 0,
};

/// Per-op kinds inside a record.
enum class WalOpKind : uint8_t {
  /// Insert-or-update the object to the carried post-image bytes.
  kUpsert = 1,
  /// Remove the object (payload empty).
  kDelete = 2,
  /// Checkpoint metadata: payload is the snapshot path (UTF-8, no NUL).
  kCheckpointInfo = 3,
};

/// One redo operation.
struct WalOp {
  WalOpKind kind = WalOpKind::kUpsert;
  uint32_t class_id = 0;
  uint64_t oid = 0;
  std::vector<uint8_t> payload;  ///< Encoded object; empty for deletes.
};

/// One decoded WAL record.
struct WalRecord {
  WalRecordType type = WalRecordType::kCommit;
  uint8_t flags = 0;
  uint64_t txn_id = 0;
  uint64_t commit_ts = 0;
  std::vector<WalOp> ops;

  bool coordinated() const { return (flags & kCoordinated) != 0; }
};

/// Checkpoint payload decoded from a kCheckpoint record.
struct WalCheckpoint {
  std::string snapshot_path;
  uint64_t watermark_ts = 0;
};

}  // namespace wal
}  // namespace ocb

#endif  // OCB_WAL_WAL_FORMAT_H_
