/// \file recovery.h
/// \brief Crash recovery: replay a redo WAL over the newest loadable
///        checkpoint snapshot.
///
/// Recovery is the read side of the durability contract the commit
/// pipeline writes (wal_writer.h, oodb/database.cc): every acknowledged
/// commit's redo record was forced before the ack, so
///
///   recovered state = newest loadable checkpoint snapshot
///                   + all logged commits past its watermark,
///                     replayed in commit-timestamp order.
///
/// Replay is idempotent (records carry post-images; upserts overwrite,
/// deletes tolerate already-gone), so recovering twice — or crashing
/// *during* recovery and recovering again — lands on the same state.
///
/// Cross-shard atomicity: a 2PC participant record is flagged
/// kCoordinated and replays ONLY if the coordinator log
/// ("<wal_path>.coord") holds a commit marker with its timestamp. The
/// coordinator forces participant records before appending the marker,
/// so marker-present implies every shard's half is durable: a cross-
/// shard commit recovers on all participating shards or on none.
///
/// Call order: construct the engine with the SAME StorageOptions
/// (including wal_path), install the schema, then Recover*. The schema
/// must be installed first so replayed creates land in their class
/// extents; a checkpoint snapshot, when one loads, re-installs the
/// persisted schema on top.

#ifndef OCB_WAL_RECOVERY_H_
#define OCB_WAL_RECOVERY_H_

#include "util/status.h"

namespace ocb {

class Database;
class ShardedDatabase;

namespace wal {

/// Recovers a standalone Database from StorageOptions::wal_path. A
/// missing log is OK (nothing was ever durably committed). Leaves the
/// commit-timestamp axis past every timestamp seen in the log.
Status RecoverDatabase(Database* db);

/// Recovers every shard of \p db from "<wal_path>.shard<k>", filtering
/// kCoordinated records through the marker set read from
/// "<wal_path>.coord", then refreshes the master schema and advances the
/// coordinator's global timestamp axis past every timestamp seen in ANY
/// log — including dropped half-commits, so reissued timestamps can
/// never collide with a stale record left behind in a shard log.
Status RecoverShardedDatabase(ShardedDatabase* db);

}  // namespace wal
}  // namespace ocb

#endif  // OCB_WAL_RECOVERY_H_
