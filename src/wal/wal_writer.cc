#include "wal/wal_writer.h"

#include <chrono>
#include <cstring>
#include <vector>

#include <unistd.h>

#include "obs/metrics_registry.h"
#include "util/format.h"
#include "wal/crc32.h"
#include "wal/killpoint.h"
#include "wal/wal_reader.h"

namespace ocb {
namespace wal {
namespace {

uint64_t NanosSince(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

// Histogram lookups take the registry mutex, which ranks ABOVE every
// engine mutex (its Snapshot runs gauge callbacks that take engine
// mutexes) — so the lazy resolution must NOT happen under the WAL
// writer mutex. Open() warms both accessors with nothing held; the
// Record* helpers below then run lock-free under mu_.
obs::LatencyHistogram* AppendHistogram() {
#ifndef OCB_OBS_DISABLED
  static obs::LatencyHistogram* h =
      obs::MetricsRegistry::Global().GetHistogram("wal.append");
  return h;
#else
  return nullptr;
#endif
}

obs::LatencyHistogram* ForceHistogram() {
#ifndef OCB_OBS_DISABLED
  static obs::LatencyHistogram* h =
      obs::MetricsRegistry::Global().GetHistogram("wal.force");
  return h;
#else
  return nullptr;
#endif
}

void RecordAppend(uint64_t nanos) {
  if (obs::LatencyHistogram* h = AppendHistogram()) h->Record(nanos);
}

void RecordForce(uint64_t nanos) {
  if (obs::LatencyHistogram* h = ForceHistogram()) h->Record(nanos);
}

void PutU8(std::vector<uint8_t>& buf, uint8_t v) { buf.push_back(v); }

void PutU32(std::vector<uint8_t>& buf, uint32_t v) {
  const size_t at = buf.size();
  buf.resize(at + sizeof(v));
  std::memcpy(buf.data() + at, &v, sizeof(v));
}

void PutU64(std::vector<uint8_t>& buf, uint64_t v) {
  const size_t at = buf.size();
  buf.resize(at + sizeof(v));
  std::memcpy(buf.data() + at, &v, sizeof(v));
}

}  // namespace

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& path,
                                                   uint64_t segment_bytes) {
  // Resolve the instruments now, with no mutex held — the registry
  // mutex must never be taken under mu_ (lock hierarchy: obs.registry
  // ranks above wal.writer).
  AppendHistogram();
  ForceHistogram();
  // Only the highest segment is ever appended to (and hence ever torn);
  // everything below it was fsync-closed by rotation and stays immutable.
  uint64_t segment_index = 0;
  {
    const std::vector<uint64_t> segments = ListWalSegments(path);
    if (!segments.empty()) segment_index = segments.back();
  }
  const std::string seg_path = WalSegmentPath(path, segment_index);

  std::FILE* file = std::fopen(seg_path.c_str(), "r+b");
  if (file == nullptr) {
    // Fresh log: create it and stamp the magic.
    file = std::fopen(seg_path.c_str(), "w+b");
    if (file == nullptr) {
      return Status::IOError(
          Format("WAL open failed for '%s'", seg_path.c_str()));
    }
    if (std::fwrite(kWalMagic, 1, kWalMagicSize, file) != kWalMagicSize ||
        std::fflush(file) != 0 || ::fsync(fileno(file)) != 0) {
      std::fclose(file);
      return Status::IOError(
          Format("WAL magic write failed for '%s'", seg_path.c_str()));
    }
    return std::unique_ptr<WalWriter>(new WalWriter(
        path, file, segment_bytes, segment_index, kWalMagicSize));
  }

  // Existing log: find the end of the valid prefix and drop the torn tail
  // before appending. ScanWalFile also rejects bad magic as Corruption.
  uint64_t valid_end = 0;
  Status st = ScanWalFile(file, /*records=*/nullptr, &valid_end);
  if (!st.ok()) {
    std::fclose(file);
    return st;
  }
  if (std::fseek(file, 0, SEEK_END) != 0) {
    std::fclose(file);
    return Status::IOError(
        Format("WAL seek failed for '%s'", seg_path.c_str()));
  }
  const long size = std::ftell(file);
  if (size < 0) {
    std::fclose(file);
    return Status::IOError(
        Format("WAL tell failed for '%s'", seg_path.c_str()));
  }
  if (static_cast<uint64_t>(size) > valid_end) {
    // Torn tail: truncate back to the valid prefix so the next append
    // starts on a clean frame boundary.
    if (::ftruncate(fileno(file), static_cast<off_t>(valid_end)) != 0) {
      std::fclose(file);
      return Status::IOError(
          Format("WAL torn-tail truncate failed for '%s'", seg_path.c_str()));
    }
  }
  if (std::fseek(file, static_cast<long>(valid_end), SEEK_SET) != 0) {
    std::fclose(file);
    return Status::IOError(
        Format("WAL seek failed for '%s'", seg_path.c_str()));
  }
  // A zero-length file (crash between creat() and the magic) scans to
  // valid_end == 0; the next append still needs the magic first, so
  // restamp it here.
  if (valid_end == 0) {
    if (std::fwrite(kWalMagic, 1, kWalMagicSize, file) != kWalMagicSize ||
        std::fflush(file) != 0 || ::fsync(fileno(file)) != 0) {
      std::fclose(file);
      return Status::IOError(
          Format("WAL magic write failed for '%s'", seg_path.c_str()));
    }
    valid_end = kWalMagicSize;
  }
  return std::unique_ptr<WalWriter>(
      new WalWriter(path, file, segment_bytes, segment_index, valid_end));
}

WalWriter::~WalWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status WalWriter::Append(const WalRecord& rec) {
  const auto start = std::chrono::steady_clock::now();

  // Frame: [crc:u32][length:u32][body]; crc covers length + body.
  std::vector<uint8_t> buf;
  buf.reserve(64);
  PutU32(buf, 0);  // crc placeholder
  PutU32(buf, 0);  // length placeholder
  PutU8(buf, static_cast<uint8_t>(rec.type));
  PutU8(buf, rec.flags);
  PutU64(buf, rec.txn_id);
  PutU64(buf, rec.commit_ts);
  PutU32(buf, static_cast<uint32_t>(rec.ops.size()));
  for (const WalOp& op : rec.ops) {
    PutU8(buf, static_cast<uint8_t>(op.kind));
    PutU32(buf, op.class_id);
    PutU64(buf, op.oid);
    PutU32(buf, static_cast<uint32_t>(op.payload.size()));
    buf.insert(buf.end(), op.payload.begin(), op.payload.end());
  }
  const uint32_t length =
      static_cast<uint32_t>(buf.size() - kWalFrameHeaderSize);
  std::memcpy(buf.data() + sizeof(uint32_t), &length, sizeof(length));
  const uint32_t crc =
      Crc32(buf.data() + sizeof(uint32_t), buf.size() - sizeof(uint32_t));
  std::memcpy(buf.data(), &crc, sizeof(crc));

  MutexLock lock(mu_);
  if (file_ == nullptr) {
    return Status::IOError(
        Format("WAL '%s' lost its file in a failed rotation", path_.c_str()));
  }
  // Rotate BEFORE the frame, never through it: a record always lands whole
  // in one segment. The non-empty guard keeps an oversized record from
  // spinning up empty segments — it just overshoots the limit.
  if (segment_bytes_ > 0 && segment_size_ > kWalMagicSize &&
      segment_size_ + buf.size() > segment_bytes_) {
    OCB_RETURN_NOT_OK(RotateSegmentLocked());
  }
  if (std::fwrite(buf.data(), 1, buf.size(), file_) != buf.size()) {
    return Status::IOError(
        Format("WAL append failed for '%s'", path_.c_str()));
  }
  segment_size_ += buf.size();
  ++appended_records_;
  ++dirty_records_;
  RecordAppend(NanosSince(start));
  return Status::OK();
}

Status WalWriter::RotateSegmentLocked() {
  // The outgoing segment becomes immutable the moment we leave it, so it
  // must be durable BEFORE the switch — Force() only ever touches the
  // current file.
  if (std::fflush(file_) != 0 || ::fsync(fileno(file_)) != 0) {
    return Status::IOError(
        Format("WAL rotate: flush of segment %llu failed for '%s'",
               static_cast<unsigned long long>(segment_index_),
               path_.c_str()));
  }
  std::fclose(file_);
  file_ = nullptr;
  ++segment_index_;
  const std::string seg = WalSegmentPath(path_, segment_index_);
  std::FILE* file = std::fopen(seg.c_str(), "w+b");
  if (file == nullptr) {
    return Status::IOError(
        Format("WAL rotate: open failed for '%s'", seg.c_str()));
  }
  if (std::fwrite(kWalMagic, 1, kWalMagicSize, file) != kWalMagicSize ||
      std::fflush(file) != 0 || ::fsync(fileno(file)) != 0) {
    std::fclose(file);
    return Status::IOError(
        Format("WAL rotate: magic write failed for '%s'", seg.c_str()));
  }
  file_ = file;
  segment_size_ = kWalMagicSize;
  dirty_records_ = 0;  // Everything before the switch was just fsynced.
  ++rotations_;
  return Status::OK();
}

Status WalWriter::Force() {
  const auto start = std::chrono::steady_clock::now();
  MutexLock lock(mu_);
  if (file_ == nullptr) {
    return Status::IOError(
        Format("WAL '%s' lost its file in a failed rotation", path_.c_str()));
  }
  // Crash before anything reached the disk: every record appended since
  // the last force must be invisible after recovery.
  wal_killpoint::MaybeKill("pre-force");
  if (std::fflush(file_) != 0 || ::fsync(fileno(file_)) != 0) {
    return Status::IOError(Format("WAL force failed for '%s'", path_.c_str()));
  }
  // Crash after durability but before the batch is acknowledged: recovery
  // must replay these records even though no client saw an ack.
  wal_killpoint::MaybeKill("post-force");
  ++forces_;
  dirty_records_ = 0;
  RecordForce(NanosSince(start));
  return Status::OK();
}

Status WalWriter::ForceIfDirty() {
  {
    MutexLock lock(mu_);
    if (dirty_records_ == 0) return Status::OK();
  }
  return Force();
}

Status WalWriter::PruneSegments(uint64_t watermark, uint64_t* pruned) {
  if (pruned != nullptr) *pruned = 0;
  MutexLock lock(mu_);
  for (uint64_t index : ListWalSegments(path_)) {
    if (index >= segment_index_) continue;  // The append target stays.
    auto scan = ReadWal(WalSegmentPath(path_, index));
    // An unreadable or torn closed segment is never silently discarded —
    // leave it on disk for inspection and keep recovery conservative.
    if (!scan.ok() || scan.value().torn_tail) continue;
    bool prunable = true;
    for (const WalRecord& rec : scan.value().records) {
      if (rec.commit_ts > watermark ||
          (rec.type == WalRecordType::kCheckpoint &&
           rec.commit_ts >= watermark)) {
        // Either a commit the snapshot does not cover, or the checkpoint
        // record whose payload IS the snapshot pointer recovery loads.
        prunable = false;
        break;
      }
    }
    if (!prunable) continue;
    if (index == 0) {
      // Segment 0 is the base path: truncate it back to a bare magic so
      // the log's existence (and the NotFound contract) is preserved.
      std::FILE* f = std::fopen(path_.c_str(), "w+b");
      if (f == nullptr) continue;
      const bool ok =
          std::fwrite(kWalMagic, 1, kWalMagicSize, f) == kWalMagicSize &&
          std::fflush(f) == 0 && ::fsync(fileno(f)) == 0;
      std::fclose(f);
      if (ok && pruned != nullptr) ++*pruned;
    } else if (std::remove(WalSegmentPath(path_, index).c_str()) == 0) {
      if (pruned != nullptr) ++*pruned;
    }
  }
  return Status::OK();
}

uint64_t WalWriter::appended_records() const {
  MutexLock lock(mu_);
  return appended_records_;
}

uint64_t WalWriter::forces() const {
  MutexLock lock(mu_);
  return forces_;
}

uint64_t WalWriter::segment_index() const {
  MutexLock lock(mu_);
  return segment_index_;
}

uint64_t WalWriter::rotations() const {
  MutexLock lock(mu_);
  return rotations_;
}

}  // namespace wal
}  // namespace ocb
