/// \file wal_reader.h
/// \brief Read side of the redo write-ahead log: valid-prefix scan with
/// the torn-tail rule, plus checkpoint payload decoding.

#ifndef OCB_WAL_WAL_READER_H_
#define OCB_WAL_WAL_READER_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "util/status.h"
#include "wal/wal_format.h"

namespace ocb {
namespace wal {

/// Everything a valid-prefix scan of one WAL file yields.
struct WalScanResult {
  std::vector<WalRecord> records;  ///< Records of the valid prefix, in order.
  uint64_t valid_end = 0;          ///< Byte offset past the last valid record.
  bool torn_tail = false;          ///< Bytes existed past the valid prefix.
};

/// Scans \p file (positioned anywhere; the scan seeks itself) and returns
/// the longest prefix of CRC-valid records. \p records may be nullptr when
/// the caller only needs the truncation point. Bad magic is Corruption; a
/// torn or truncated tail is NOT an error — that is the crash the log
/// exists to survive.
Status ScanWalFile(std::FILE* file, std::vector<WalRecord>* records,
                   uint64_t* valid_end, bool* torn_tail = nullptr);

/// Opens and scans the WAL at \p path. A missing file is NotFound (the
/// caller decides whether an absent log is fresh or fatal).
Result<WalScanResult> ReadWal(const std::string& path);

/// Decodes the checkpoint payload of a kCheckpoint record.
Result<WalCheckpoint> DecodeCheckpoint(const WalRecord& rec);

}  // namespace wal
}  // namespace ocb

#endif  // OCB_WAL_WAL_READER_H_
