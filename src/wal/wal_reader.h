/// \file wal_reader.h
/// \brief Read side of the redo write-ahead log: valid-prefix scan with
/// the torn-tail rule, plus checkpoint payload decoding.

#ifndef OCB_WAL_WAL_READER_H_
#define OCB_WAL_WAL_READER_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "util/status.h"
#include "wal/wal_format.h"

namespace ocb {
namespace wal {

/// Everything a valid-prefix scan of one WAL file yields.
struct WalScanResult {
  std::vector<WalRecord> records;  ///< Records of the valid prefix, in order.
  uint64_t valid_end = 0;          ///< Byte offset past the last valid record.
  bool torn_tail = false;          ///< Bytes existed past the valid prefix.
};

/// Scans \p file (positioned anywhere; the scan seeks itself) and returns
/// the longest prefix of CRC-valid records. \p records may be nullptr when
/// the caller only needs the truncation point. Bad magic is Corruption; a
/// torn or truncated tail is NOT an error — that is the crash the log
/// exists to survive.
Status ScanWalFile(std::FILE* file, std::vector<WalRecord>* records,
                   uint64_t* valid_end, bool* torn_tail = nullptr);

/// Opens and scans the WAL at \p path. A missing file is NotFound (the
/// caller decides whether an absent log is fresh or fatal).
Result<WalScanResult> ReadWal(const std::string& path);

// --- Segmented logs (WalWriter rotation at wal_segment_bytes) ---
//
// Segment 0 IS the base path; segment k > 0 is "<path>.seg<k>". Rotation
// never splits a record across segments, and checkpoint pruning deletes
// whole closed segments (truncating segment 0 to its magic instead, so
// "the log exists" keeps meaning "durability was ever enabled").

/// Path of segment \p index of the log at \p base.
std::string WalSegmentPath(const std::string& base, uint64_t index);

/// Indices of the log's existing segments, ascending. Discovery is a
/// directory scan, so the gaps pruning leaves behind are handled. Empty
/// when no segment exists at all.
std::vector<uint64_t> ListWalSegments(const std::string& base);

/// Scans every existing segment in index order and returns the
/// concatenated records (rotation preserves append order across
/// segments). NotFound when no segment exists; valid_end/torn_tail
/// describe the LAST segment — the only one a crash can tear.
Result<WalScanResult> ReadWalSegments(const std::string& path);

/// Decodes the checkpoint payload of a kCheckpoint record.
Result<WalCheckpoint> DecodeCheckpoint(const WalRecord& rec);

}  // namespace wal
}  // namespace ocb

#endif  // OCB_WAL_WAL_READER_H_
