#include "wal/recovery.h"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "concurrency/version_store.h"
#include "oodb/database.h"
#include "oodb/snapshot.h"
#include "sharding/cross_shard_coordinator.h"
#include "sharding/sharded_database.h"
#include "util/format.h"
#include "wal/wal_format.h"
#include "wal/wal_reader.h"

namespace ocb {
namespace wal {

namespace {

/// Replays one Database's log at \p wal_path. \p markers filters
/// kCoordinated records (replay iff the marker set holds the record's
/// timestamp); nullptr applies every record — the standalone engine
/// never writes coordinated ones. \p max_seen (optional) receives the
/// largest commit timestamp present in the log, applied or not.
Status ReplayDatabaseWal(Database* db, const std::string& wal_path,
                         const std::set<CommitTs>* markers,
                         CommitTs* max_seen) {
  auto scan = ReadWalSegments(wal_path);
  if (!scan.ok()) {
    // Never logged: a fresh engine with nothing durable is recovered.
    if (scan.status().code() == StatusCode::kNotFound) return Status::OK();
    return scan.status();
  }
  std::vector<WalRecord> records = std::move(scan).value().records;

  // Checkpoints newest -> oldest: the first whose snapshot file still
  // loads wins, and replay starts past its watermark. A checkpoint whose
  // snapshot is gone (or torn) is skipped — the log before it is still
  // complete, so an older checkpoint or a from-scratch replay recovers
  // the same state.
  CommitTs watermark = 0;
  for (auto it = records.rbegin(); it != records.rend(); ++it) {
    if (it->type != WalRecordType::kCheckpoint) continue;
    auto cp = DecodeCheckpoint(*it);
    if (!cp.ok()) continue;
    if (LoadSnapshot(db, cp.value().snapshot_path).ok()) {
      watermark = cp.value().watermark_ts;
      break;
    }
  }

  // Commit-timestamp order. Append order already respects per-object
  // dependency order (records are appended before the writer's locks
  // release), so the stable sort only interleaves the axes of logs whose
  // timestamps come from outside (sharded deployments).
  std::vector<const WalRecord*> commits;
  commits.reserve(records.size());
  CommitTs max_ts = watermark;
  for (const WalRecord& rec : records) {
    if (rec.commit_ts > max_ts) max_ts = rec.commit_ts;
    if (rec.type == WalRecordType::kCommit) commits.push_back(&rec);
  }
  std::stable_sort(commits.begin(), commits.end(),
                   [](const WalRecord* a, const WalRecord* b) {
                     return a->commit_ts < b->commit_ts;
                   });

  CommitTs applied_ts = watermark;
  for (const WalRecord* rec : commits) {
    if (rec->commit_ts <= watermark) continue;  // Inside the checkpoint.
    if (rec->coordinated() && markers != nullptr &&
        markers->count(rec->commit_ts) == 0) {
      // 2PC half-commit whose coordinator marker never reached disk:
      // dropped here AND on every sibling shard (the marker is the
      // shared commit point), which is exactly all-or-none.
      continue;
    }
    for (const WalOp& op : rec->ops) {
      OCB_RETURN_NOT_OK(db->ApplyRedoOp(op));
    }
    if (rec->commit_ts > applied_ts) applied_ts = rec->commit_ts;
  }
  // New commits must stamp past everything replayed.
  db->version_store()->AdvanceLatest(applied_ts);
  if (max_seen != nullptr && max_ts > *max_seen) *max_seen = max_ts;
  return Status::OK();
}

}  // namespace

Status RecoverDatabase(Database* db) {
  if (db == nullptr) return Status::InvalidArgument("null db");
  const std::string& path = db->options().wal_path;
  if (path.empty()) return Status::OK();  // Durability never enabled.
  CommitTs max_seen = 0;
  OCB_RETURN_NOT_OK(ReplayDatabaseWal(db, path, nullptr, &max_seen));
  db->version_store()->AdvanceLatest(max_seen);
  return Status::OK();
}

Status RecoverShardedDatabase(ShardedDatabase* db) {
  if (db == nullptr) return Status::InvalidArgument("null db");
  const std::string& base = db->options().wal_path;
  if (base.empty()) return Status::OK();

  // The marker set: which 2PC commits made it to the shared commit
  // point. A missing coordinator log means no 2PC commit was ever acked.
  std::set<CommitTs> markers;
  CommitTs max_seen = 0;
  auto coord = ReadWalSegments(base + ".coord");
  if (coord.ok()) {
    for (const WalRecord& rec : coord.value().records) {
      if (rec.commit_ts > max_seen) max_seen = rec.commit_ts;
      if (rec.type == WalRecordType::kCoordMarker) {
        markers.insert(rec.commit_ts);
      }
    }
  } else if (coord.status().code() != StatusCode::kNotFound) {
    return coord.status();
  }

  for (uint32_t k = 0; k < db->shard_count(); ++k) {
    OCB_RETURN_NOT_OK(ReplayDatabaseWal(db->shard(k),
                                        base + Format(".shard%u", k),
                                        &markers, &max_seen));
  }
  // Per-shard loads may have installed a persisted schema directly on
  // the shards; re-adopt shard 0's copy as the master.
  db->SetMasterSchemaFromShards();
  db->coordinator()->AdvanceTimestampTo(max_seen);
  return Status::OK();
}

}  // namespace wal
}  // namespace ocb
