#include "wal/wal_reader.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <iterator>

#include "util/format.h"
#include "wal/crc32.h"

namespace ocb {
namespace wal {
namespace {

/// Bounds-checked cursor over one record body.
class BodyReader {
 public:
  BodyReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool U8(uint8_t* out) { return Raw(out, sizeof(*out)); }
  bool U32(uint32_t* out) { return Raw(out, sizeof(*out)); }
  bool U64(uint64_t* out) { return Raw(out, sizeof(*out)); }

  bool Bytes(std::vector<uint8_t>* out, size_t n) {
    if (size_ - pos_ < n) return false;
    out->assign(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return true;
  }

  bool exhausted() const { return pos_ == size_; }

 private:
  bool Raw(void* out, size_t n) {
    if (size_ - pos_ < n) return false;
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// Decodes one record body into \p rec. False means the body is
/// malformed — under the torn-tail rule the caller stops the scan there.
bool DecodeBody(const std::vector<uint8_t>& body, WalRecord* rec) {
  BodyReader r(body.data(), body.size());
  uint8_t type = 0;
  uint32_t op_count = 0;
  if (!r.U8(&type) || !r.U8(&rec->flags) || !r.U64(&rec->txn_id) ||
      !r.U64(&rec->commit_ts) || !r.U32(&op_count)) {
    return false;
  }
  switch (type) {
    case static_cast<uint8_t>(WalRecordType::kCommit):
    case static_cast<uint8_t>(WalRecordType::kCoordMarker):
    case static_cast<uint8_t>(WalRecordType::kCheckpoint):
      rec->type = static_cast<WalRecordType>(type);
      break;
    default:
      return false;
  }
  rec->ops.clear();
  rec->ops.reserve(op_count);
  for (uint32_t i = 0; i < op_count; ++i) {
    WalOp op;
    uint8_t kind = 0;
    uint32_t payload_len = 0;
    if (!r.U8(&kind) || !r.U32(&op.class_id) || !r.U64(&op.oid) ||
        !r.U32(&payload_len)) {
      return false;
    }
    switch (kind) {
      case static_cast<uint8_t>(WalOpKind::kUpsert):
      case static_cast<uint8_t>(WalOpKind::kDelete):
      case static_cast<uint8_t>(WalOpKind::kCheckpointInfo):
        op.kind = static_cast<WalOpKind>(kind);
        break;
      default:
        return false;
    }
    if (!r.Bytes(&op.payload, payload_len)) return false;
    rec->ops.push_back(std::move(op));
  }
  return r.exhausted();
}

}  // namespace

Status ScanWalFile(std::FILE* file, std::vector<WalRecord>* records,
                   uint64_t* valid_end, bool* torn_tail) {
  if (records != nullptr) records->clear();
  *valid_end = 0;
  if (torn_tail != nullptr) *torn_tail = false;

  if (std::fseek(file, 0, SEEK_SET) != 0) {
    return Status::IOError("WAL scan: seek to start failed");
  }
  char magic[kWalMagicSize];
  const size_t got = std::fread(magic, 1, kWalMagicSize, file);
  if (got == 0) {
    // Zero-length file: a crash between creat() and the magic write. The
    // valid prefix is empty; Open re-stamps the magic on truncation.
    return Status::OK();
  }
  if (got < kWalMagicSize) {
    // Torn inside the magic itself — same treatment as an empty file.
    if (torn_tail != nullptr) *torn_tail = true;
    return Status::OK();
  }
  if (std::memcmp(magic, kWalMagic, kWalMagicSize) != 0) {
    return Status::Corruption("WAL scan: bad magic (not a WAL file)");
  }

  uint64_t offset = kWalMagicSize;
  // Records are capped well below this in practice; the bound stops a
  // corrupt length field from driving a multi-gigabyte allocation.
  constexpr uint32_t kMaxRecordBody = 1u << 30;

  for (;;) {
    uint8_t frame[kWalFrameHeaderSize];
    const size_t n = std::fread(frame, 1, sizeof(frame), file);
    if (n == 0) break;  // Clean end.
    if (n < sizeof(frame)) {
      if (torn_tail != nullptr) *torn_tail = true;
      break;
    }
    uint32_t crc = 0;
    uint32_t length = 0;
    std::memcpy(&crc, frame, sizeof(crc));
    std::memcpy(&length, frame + sizeof(crc), sizeof(length));
    if (length > kMaxRecordBody) {
      if (torn_tail != nullptr) *torn_tail = true;
      break;
    }
    std::vector<uint8_t> body(length);
    if (length > 0 &&
        std::fread(body.data(), 1, body.size(), file) != body.size()) {
      if (torn_tail != nullptr) *torn_tail = true;
      break;
    }
    // CRC covers the length field plus the body (chained).
    uint32_t actual = Crc32(&length, sizeof(length));
    actual = Crc32(body.data(), body.size(), actual);
    if (actual != crc) {
      if (torn_tail != nullptr) *torn_tail = true;
      break;
    }
    WalRecord rec;
    if (!DecodeBody(body, &rec)) {
      if (torn_tail != nullptr) *torn_tail = true;
      break;
    }
    offset += kWalFrameHeaderSize + length;
    *valid_end = offset;
    if (records != nullptr) records->push_back(std::move(rec));
  }
  if (*valid_end == 0 && got == kWalMagicSize) {
    // Magic alone is a valid (empty) log.
    *valid_end = kWalMagicSize;
  }
  return Status::OK();
}

Result<WalScanResult> ReadWal(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound(Format("WAL '%s' does not exist", path.c_str()));
  }
  WalScanResult out;
  Status st =
      ScanWalFile(file, &out.records, &out.valid_end, &out.torn_tail);
  std::fclose(file);
  if (!st.ok()) return st;
  return out;
}

std::string WalSegmentPath(const std::string& base, uint64_t index) {
  if (index == 0) return base;
  return Format("%s.seg%llu", base.c_str(),
                static_cast<unsigned long long>(index));
}

std::vector<uint64_t> ListWalSegments(const std::string& base) {
  namespace fs = std::filesystem;
  std::vector<uint64_t> out;
  std::error_code ec;
  if (fs::exists(fs::path(base), ec)) out.push_back(0);

  fs::path parent = fs::path(base).parent_path();
  if (parent.empty()) parent = ".";
  const std::string prefix = fs::path(base).filename().string() + ".seg";
  // A missing parent directory just yields an end iterator via ec.
  for (fs::directory_iterator it(parent, ec), end; !ec && it != end; ++it) {
    const std::string name = it->path().filename().string();
    if (name.size() <= prefix.size() ||
        name.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    uint64_t index = 0;
    bool digits = true;
    for (size_t i = prefix.size(); i < name.size(); ++i) {
      if (name[i] < '0' || name[i] > '9') {
        digits = false;
        break;
      }
      index = index * 10 + static_cast<uint64_t>(name[i] - '0');
    }
    if (digits && index > 0) out.push_back(index);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<WalScanResult> ReadWalSegments(const std::string& path) {
  const std::vector<uint64_t> segments = ListWalSegments(path);
  if (segments.empty()) {
    return Status::NotFound(Format("WAL '%s' does not exist", path.c_str()));
  }
  WalScanResult out;
  for (uint64_t index : segments) {
    auto scan = ReadWal(WalSegmentPath(path, index));
    if (!scan.ok()) return scan.status();
    WalScanResult seg = std::move(scan).value();
    out.records.insert(out.records.end(),
                       std::make_move_iterator(seg.records.begin()),
                       std::make_move_iterator(seg.records.end()));
    // Only the last segment can carry a crash's torn tail; rotation fsyncs
    // and closes every earlier one.
    out.valid_end = seg.valid_end;
    out.torn_tail = seg.torn_tail;
  }
  return out;
}

Result<WalCheckpoint> DecodeCheckpoint(const WalRecord& rec) {
  if (rec.type != WalRecordType::kCheckpoint || rec.ops.size() != 1 ||
      rec.ops[0].kind != WalOpKind::kCheckpointInfo) {
    return Status::Corruption("WAL checkpoint record has unexpected shape");
  }
  WalCheckpoint cp;
  cp.watermark_ts = rec.commit_ts;
  cp.snapshot_path.assign(rec.ops[0].payload.begin(),
                          rec.ops[0].payload.end());
  return cp;
}

}  // namespace wal
}  // namespace ocb
