/// \file crc32.h
/// \brief CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for WAL
/// record framing. Table-driven, no hardware dependency.

#ifndef OCB_WAL_CRC32_H_
#define OCB_WAL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace ocb {
namespace wal {

/// Computes the CRC-32 of \p data, continuing from \p seed (pass 0 for a
/// fresh checksum; chain calls by passing the previous return value).
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

}  // namespace wal
}  // namespace ocb

#endif  // OCB_WAL_CRC32_H_
