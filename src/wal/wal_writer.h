/// \file wal_writer.h
/// \brief Append/force side of the redo write-ahead log.
///
/// One WalWriter owns one WAL file. The commit pipeline's leader appends
/// every record of a group-commit batch, then calls Force() once — a
/// single fflush + fsync per batch — before any member of the batch is
/// acknowledged. Appends and forces are serialized by an internal mutex so
/// the checkpoint path (SaveSnapshot) can append concurrently with a
/// commit leader without interleaving frames.
///
/// Open() scans an existing file and truncates a torn tail (an incomplete
/// or CRC-failing final record left by a crash) before positioning at the
/// end, so the append point is always the end of the valid prefix.
///
/// With a nonzero \p segment_bytes the log is segmented: when an append
/// would push the current segment past the limit the writer fsync-closes
/// it and starts "<path>.seg<k>" (segment 0 IS \p path). Records are never
/// split across segments, and a record larger than the limit still lands
/// whole — rotation only triggers on a non-empty segment. Readers use
/// wal_reader's ReadWalSegments to see the concatenated log; PruneSegments
/// lets the checkpoint path delete closed segments wholly below the
/// durability watermark.

#ifndef OCB_WAL_WAL_WRITER_H_
#define OCB_WAL_WAL_WRITER_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "util/status.h"
#include "util/sync.h"
#include "wal/wal_format.h"

namespace ocb {
namespace wal {

class WalWriter {
 public:
  /// Opens (creating if absent) the WAL at \p path. An existing file has
  /// its torn tail truncated; a file that exists but does not start with
  /// the WAL magic is a Corruption error (never silently clobbered). For a
  /// segmented log the HIGHEST existing segment is the append target — the
  /// earlier ones are immutable. \p segment_bytes == 0 disables rotation
  /// (one unbounded file, the legacy layout).
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& path,
                                                 uint64_t segment_bytes = 0);

  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Serializes \p rec and appends its frame to the file (buffered; not
  /// durable until Force()).
  Status Append(const WalRecord& rec);

  /// Makes everything appended so far durable: fflush + fsync. Charged
  /// once per group-commit batch by the commit leader.
  Status Force();

  /// Force() only when records were appended since the last force; a
  /// clean log is a no-op. The cross-shard fast path uses this on the
  /// coordinator log so a dependent commit's ack can never become
  /// durable while a predecessor's 2PC marker is still unforced.
  Status ForceIfDirty();

  /// Deletes every CLOSED segment (index below the current append target)
  /// whose records are all at or below \p watermark and that holds no
  /// checkpoint record at or above it — the checkpoint record that carries
  /// the snapshot path recovery will load must survive its own prune.
  /// Segment 0 is truncated back to its magic instead of unlinked, so the
  /// base path keeps existing and NotFound still means "never logged".
  /// \p pruned (optional) receives the number of segments removed.
  Status PruneSegments(uint64_t watermark, uint64_t* pruned = nullptr);

  const std::string& path() const { return path_; }

  /// Records appended through this writer since Open (tests/obs).
  uint64_t appended_records() const;
  /// Forces issued since Open (tests/obs).
  uint64_t forces() const;
  /// Index of the segment currently open for append (tests/obs).
  uint64_t segment_index() const;
  /// Segment rotations performed since Open (tests/obs).
  uint64_t rotations() const;

 private:
  WalWriter(std::string path, std::FILE* file, uint64_t segment_bytes,
            uint64_t segment_index, uint64_t segment_size)
      : path_(std::move(path)),
        file_(file),
        segment_bytes_(segment_bytes),
        segment_index_(segment_index),
        segment_size_(segment_size) {}

  /// Fsync-closes the current segment and opens the next one with a fresh
  /// magic. Caller holds mu_.
  Status RotateSegmentLocked() OCB_REQUIRES(mu_);

  std::string path_;
  mutable Mutex mu_{lockdep::kWalWriterClass};
  std::FILE* file_ OCB_GUARDED_BY(mu_);
  const uint64_t segment_bytes_;  ///< Rotation threshold; 0 = never rotate.

  /// Index of the open append segment.
  uint64_t segment_index_ OCB_GUARDED_BY(mu_) = 0;
  /// Bytes written to it (incl. magic).
  uint64_t segment_size_ OCB_GUARDED_BY(mu_) = 0;
  uint64_t rotations_ OCB_GUARDED_BY(mu_) = 0;
  uint64_t appended_records_ OCB_GUARDED_BY(mu_) = 0;
  uint64_t forces_ OCB_GUARDED_BY(mu_) = 0;
  /// Appended since the last Force.
  uint64_t dirty_records_ OCB_GUARDED_BY(mu_) = 0;
};

}  // namespace wal
}  // namespace ocb

#endif  // OCB_WAL_WAL_WRITER_H_
