/// \file wal_writer.h
/// \brief Append/force side of the redo write-ahead log.
///
/// One WalWriter owns one WAL file. The commit pipeline's leader appends
/// every record of a group-commit batch, then calls Force() once — a
/// single fflush + fsync per batch — before any member of the batch is
/// acknowledged. Appends and forces are serialized by an internal mutex so
/// the checkpoint path (SaveSnapshot) can append concurrently with a
/// commit leader without interleaving frames.
///
/// Open() scans an existing file and truncates a torn tail (an incomplete
/// or CRC-failing final record left by a crash) before positioning at the
/// end, so the append point is always the end of the valid prefix.

#ifndef OCB_WAL_WAL_WRITER_H_
#define OCB_WAL_WAL_WRITER_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>

#include "util/status.h"
#include "wal/wal_format.h"

namespace ocb {
namespace wal {

class WalWriter {
 public:
  /// Opens (creating if absent) the WAL at \p path. An existing file has
  /// its torn tail truncated; a file that exists but does not start with
  /// the WAL magic is a Corruption error (never silently clobbered).
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& path);

  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Serializes \p rec and appends its frame to the file (buffered; not
  /// durable until Force()).
  Status Append(const WalRecord& rec);

  /// Makes everything appended so far durable: fflush + fsync. Charged
  /// once per group-commit batch by the commit leader.
  Status Force();

  /// Force() only when records were appended since the last force; a
  /// clean log is a no-op. The cross-shard fast path uses this on the
  /// coordinator log so a dependent commit's ack can never become
  /// durable while a predecessor's 2PC marker is still unforced.
  Status ForceIfDirty();

  const std::string& path() const { return path_; }

  /// Records appended through this writer since Open (tests/obs).
  uint64_t appended_records() const;
  /// Forces issued since Open (tests/obs).
  uint64_t forces() const;

 private:
  WalWriter(std::string path, std::FILE* file)
      : path_(std::move(path)), file_(file) {}

  std::string path_;
  std::FILE* file_;

  mutable std::mutex mu_;
  uint64_t appended_records_ = 0;
  uint64_t forces_ = 0;
  uint64_t dirty_records_ = 0;  ///< Appended since the last Force.
};

}  // namespace wal
}  // namespace ocb

#endif  // OCB_WAL_WAL_WRITER_H_
