#include "wal/killpoint.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include <unistd.h>

namespace ocb {
namespace wal_killpoint {
namespace {

struct KillConfig {
  const char* point;  // nullptr when disarmed.
  long countdown;     // hits to skip before dying.
};

// Read once: the harness sets the environment before the child constructs
// its first engine, and never changes it mid-run.
const KillConfig& Config() {
  static const KillConfig cfg = [] {
    KillConfig c{nullptr, 0};
    const char* p = std::getenv("OCB_WAL_KILLPOINT");
    if (p != nullptr && p[0] != '\0') {
      c.point = p;
      if (const char* after = std::getenv("OCB_WAL_KILL_AFTER")) {
        c.countdown = std::atol(after);
        if (c.countdown < 0) c.countdown = 0;
      }
    }
    return c;
  }();
  return cfg;
}

std::atomic<long> g_hits{0};

}  // namespace

bool Armed() { return Config().point != nullptr; }

void MaybeKill(const char* point) {
  const KillConfig& cfg = Config();
  if (cfg.point == nullptr) return;
  if (std::strcmp(cfg.point, point) != 0) return;
  if (g_hits.fetch_add(1, std::memory_order_relaxed) < cfg.countdown) return;
  // Die like a crash: no atexit handlers, no stream flushes, no destructors.
  _exit(137);
}

}  // namespace wal_killpoint
}  // namespace ocb
