#include "obs/trace.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "obs/json_writer.h"

namespace ocb {
namespace obs {

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();  // Leaked: see
  return *recorder;  // MetricsRegistry::Global for rationale.
}

uint32_t TraceTid() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t tid =
      next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

void TraceRecorder::Enable() {
  {
    MutexLock lock(init_mu_);
    if (!ring_ready_.load(std::memory_order_acquire)) {
      ring_ = std::make_unique<TraceEvent[]>(kRingSize);
      epoch_ = std::chrono::steady_clock::now();
      ring_ready_.store(true, std::memory_order_release);
    }
  }
  enabled_.store(true, std::memory_order_relaxed);
}

uint64_t TraceRecorder::NowNanos() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void TraceRecorder::RecordComplete(const char* name, uint64_t ts_nanos,
                                   uint64_t dur_nanos, const char* arg1_name,
                                   uint64_t arg1, const char* arg2_name,
                                   uint64_t arg2) {
  if (!enabled() || !ring_ready_.load(std::memory_order_acquire)) return;
  const uint64_t slot_seq = head_.fetch_add(1, std::memory_order_relaxed) + 1;
  TraceEvent& e = ring_[(slot_seq - 1) & (kRingSize - 1)];
  // Mark in-progress (odd), fill, then publish (even). A dumper sampling
  // an odd or changed seq skips the slot; a lapping writer simply wins —
  // all fields are relaxed atomics so the race is data-race-free.
  e.seq.store(slot_seq * 2 - 1, std::memory_order_relaxed);
  e.name.store(name, std::memory_order_relaxed);
  e.phase.store('X', std::memory_order_relaxed);
  e.ts_nanos.store(ts_nanos, std::memory_order_relaxed);
  e.dur_nanos.store(dur_nanos, std::memory_order_relaxed);
  e.tid.store(TraceTid(), std::memory_order_relaxed);
  e.arg1_name.store(arg1_name, std::memory_order_relaxed);
  e.arg1.store(arg1, std::memory_order_relaxed);
  e.arg2_name.store(arg2_name, std::memory_order_relaxed);
  e.arg2.store(arg2, std::memory_order_relaxed);
  e.seq.store(slot_seq * 2, std::memory_order_release);
}

void TraceRecorder::RecordInstant(const char* name, const char* arg1_name,
                                  uint64_t arg1) {
  if (!enabled() || !ring_ready_.load(std::memory_order_acquire)) return;
  const uint64_t now = NowNanos();
  const uint64_t slot_seq = head_.fetch_add(1, std::memory_order_relaxed) + 1;
  TraceEvent& e = ring_[(slot_seq - 1) & (kRingSize - 1)];
  e.seq.store(slot_seq * 2 - 1, std::memory_order_relaxed);
  e.name.store(name, std::memory_order_relaxed);
  e.phase.store('i', std::memory_order_relaxed);
  e.ts_nanos.store(now, std::memory_order_relaxed);
  e.dur_nanos.store(0, std::memory_order_relaxed);
  e.tid.store(TraceTid(), std::memory_order_relaxed);
  e.arg1_name.store(arg1_name, std::memory_order_relaxed);
  e.arg1.store(arg1, std::memory_order_relaxed);
  e.arg2_name.store(nullptr, std::memory_order_relaxed);
  e.arg2.store(0, std::memory_order_relaxed);
  e.seq.store(slot_seq * 2, std::memory_order_release);
}

std::string TraceRecorder::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.BeginArray("traceEvents");
  if (ring_ready_.load(std::memory_order_acquire)) {
    for (size_t i = 0; i < kRingSize; ++i) {
      const TraceEvent& e = ring_[i];
      const uint64_t seq_before = e.seq.load(std::memory_order_acquire);
      if (seq_before == 0 || seq_before % 2 == 1) continue;  // Empty/torn.
      const char* name = e.name.load(std::memory_order_relaxed);
      const char phase = e.phase.load(std::memory_order_relaxed);
      const uint64_t ts = e.ts_nanos.load(std::memory_order_relaxed);
      const uint64_t dur = e.dur_nanos.load(std::memory_order_relaxed);
      const uint32_t tid = e.tid.load(std::memory_order_relaxed);
      const char* a1n = e.arg1_name.load(std::memory_order_relaxed);
      const uint64_t a1 = e.arg1.load(std::memory_order_relaxed);
      const char* a2n = e.arg2_name.load(std::memory_order_relaxed);
      const uint64_t a2 = e.arg2.load(std::memory_order_relaxed);
      if (e.seq.load(std::memory_order_acquire) != seq_before) continue;
      if (name == nullptr) continue;
      w.BeginObject();
      w.Field("name", name);
      w.Field("ph", phase == 'i' ? "i" : "X");
      w.Field("cat", "ocb");
      // Trace-event ts/dur are microseconds (doubles keep sub-us detail).
      w.Field("ts", static_cast<double>(ts) / 1000.0);
      if (phase != 'i') w.Field("dur", static_cast<double>(dur) / 1000.0);
      if (phase == 'i') w.Field("s", "t");  // Thread-scoped instant.
      w.Field("pid", 1);
      w.Field("tid", static_cast<uint64_t>(tid));
      if (a1n != nullptr || a2n != nullptr) {
        w.BeginObject("args");
        if (a1n != nullptr) w.Field(a1n, a1);
        if (a2n != nullptr) w.Field(a2n, a2);
        w.EndObject();
      }
      w.EndObject();
    }
  }
  w.EndArray();
  w.Field("displayTimeUnit", "ns");
  w.EndObject();
  return w.str();
}

bool TraceRecorder::Dump(const std::string& path) const {
  const std::string json = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return written == json.size();
}

bool TraceRecorder::InitFromEnvironment() {
#ifndef OCB_OBS_DISABLED
  const char* path = std::getenv("OCB_TRACE");
  if (path == nullptr || path[0] == '\0') return false;
  Global().Enable();
  return true;
#else
  return false;
#endif
}

std::string TraceRecorder::DumpToEnvPath() {
#ifndef OCB_OBS_DISABLED
  const char* path = std::getenv("OCB_TRACE");
  if (path == nullptr || path[0] == '\0') return "";
  auto& rec = Global();
  if (rec.recorded() == 0) return "";
  if (!rec.Dump(path)) return "";
  return path;
#else
  return "";
#endif
}

}  // namespace obs
}  // namespace ocb
