/// \file trace.h
/// \brief Lock-free ring-buffer trace recorder emitting Chrome trace-event
///        JSON ("X" complete events) viewable in ui.perfetto.dev.
///
/// Recording model:
///
///   * A fixed ring of TraceEvent slots (default 64Ki, lazily allocated on
///     first Enable). Writers claim a slot with one relaxed fetch_add on
///     the head and fill it field-by-field. Every slot field is a relaxed
///     std::atomic so two writers lapping each other on the same slot
///     (ring wraparound) is a benign race, not a TSan report; a per-slot
///     sequence word written last lets the dumper skip slots that were
///     mid-write.
///
///   * Spans are RAII: TraceSpan stamps the start time on construction
///     and writes one complete event (name, ts, dur, tid, up to two
///     uint64 args) on destruction. Nesting falls out in the viewer
///     because Chrome's JSON format nests same-tid "X" events by
///     [ts, ts+dur] containment — no parent pointers needed.
///
///   * Instant events (TraceInstant) mark points like the group-commit
///     log force.
///
///   * Everything is gated on TraceRecorder::enabled(): one relaxed load
///     when tracing is off (the common case), and the whole surface
///     compiles to no-ops under OCB_OBS_DISABLED.
///
/// The recorder keeps the *latest* kRingSize events (older ones are
/// overwritten) — the right default for "trace the interesting window,
/// dump at the end" bench usage. Timestamps are steady_clock nanoseconds
/// rebased to the first Enable() call; Dump() converts to the microsecond
/// ts/dur fields the trace-event format specifies.
///
/// Env wiring: if OCB_TRACE=path is set, InitFromEnvironment() enables
/// the recorder and DumpToEnvPath() (call at process exit / bench end)
/// writes the JSON there.

#ifndef OCB_OBS_TRACE_H_
#define OCB_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "util/sync.h"

namespace ocb {
namespace obs {

/// One ring slot. All fields relaxed-atomic: wraparound races are benign.
struct TraceEvent {
  std::atomic<uint64_t> seq{0};  ///< 0 = never written; odd = in progress.
  std::atomic<const char*> name{nullptr};  ///< Static-storage string.
  std::atomic<char> phase{'X'};            ///< 'X' complete, 'i' instant.
  std::atomic<uint64_t> ts_nanos{0};
  std::atomic<uint64_t> dur_nanos{0};
  std::atomic<uint32_t> tid{0};
  std::atomic<const char*> arg1_name{nullptr};
  std::atomic<uint64_t> arg1{0};
  std::atomic<const char*> arg2_name{nullptr};
  std::atomic<uint64_t> arg2{0};
};

class TraceRecorder {
 public:
  static constexpr size_t kRingSize = 1 << 16;  // 64Ki events, power of two.

  static TraceRecorder& Global();

  /// Allocates the ring (first call) and starts recording.
  void Enable();
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }

  bool enabled() const {
#ifndef OCB_OBS_DISABLED
    return enabled_.load(std::memory_order_relaxed);
#else
    return false;
#endif
  }

  /// Records a complete ("X") event. \p name and arg names must point to
  /// static-storage strings (string literals at every call site).
  void RecordComplete(const char* name, uint64_t ts_nanos, uint64_t dur_nanos,
                      const char* arg1_name = nullptr, uint64_t arg1 = 0,
                      const char* arg2_name = nullptr, uint64_t arg2 = 0);

  /// Records an instant ("i") event at now.
  void RecordInstant(const char* name, const char* arg1_name = nullptr,
                     uint64_t arg1 = 0);

  /// Nanoseconds since the recorder's epoch (first Enable call).
  uint64_t NowNanos() const;

  /// Writes {"traceEvents":[...]} to \p path. Returns false on I/O error.
  /// Skips slots that are empty or were mid-write when sampled.
  bool Dump(const std::string& path) const;

  /// Serializes the ring to a JSON string (testing / Dump backend).
  std::string ToJson() const;

  /// Enables tracing if env OCB_TRACE is set; returns true if enabled.
  static bool InitFromEnvironment();
  /// Dumps to $OCB_TRACE if set and recording happened; returns the path
  /// written (empty if none).
  static std::string DumpToEnvPath();

  /// Events recorded since Enable (monotonic; may exceed kRingSize).
  uint64_t recorded() const { return head_.load(std::memory_order_relaxed); }

 private:
  TraceRecorder() = default;

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> head_{0};
  std::unique_ptr<TraceEvent[]> ring_;
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> ring_ready_{false};
  /// Serializes ring allocation in Enable; the record path is lock-free
  /// (ring_/epoch_ are published through ring_ready_'s release store, so
  /// they are not OCB_GUARDED_BY this mutex).
  Mutex init_mu_{lockdep::kTraceRingClass};
};

/// Small dense thread id for trace events (0, 1, 2... in first-use order).
uint32_t TraceTid();

/// \brief RAII span: stamps start on construction, records an "X"
///        complete event on destruction. Near-zero cost when tracing is
///        off (one relaxed load, no clock read).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* arg1_name = nullptr,
                     uint64_t arg1 = 0, const char* arg2_name = nullptr,
                     uint64_t arg2 = 0)
#ifndef OCB_OBS_DISABLED
      : name_(name),
        arg1_name_(arg1_name),
        arg1_(arg1),
        arg2_name_(arg2_name),
        arg2_(arg2),
        active_(TraceRecorder::Global().enabled()) {
    if (active_) start_ = TraceRecorder::Global().NowNanos();
  }
#else
  {
    (void)name;
    (void)arg1_name;
    (void)arg1;
    (void)arg2_name;
    (void)arg2;
  }
#endif

  ~TraceSpan() {
#ifndef OCB_OBS_DISABLED
    if (!active_) return;
    auto& rec = TraceRecorder::Global();
    const uint64_t end = rec.NowNanos();
    rec.RecordComplete(name_, start_, end - start_, arg1_name_, arg1_,
                       arg2_name_, arg2_);
#endif
  }

  /// Updates an arg after construction (e.g. gc.pass reclaimed count,
  /// known only at the end of the work).
  void SetArg2(const char* name, uint64_t value) {
#ifndef OCB_OBS_DISABLED
    arg2_name_ = name;
    arg2_ = value;
#else
    (void)name;
    (void)value;
#endif
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
#ifndef OCB_OBS_DISABLED
  const char* name_;
  const char* arg1_name_;
  uint64_t arg1_;
  const char* arg2_name_;
  uint64_t arg2_;
  bool active_;
  uint64_t start_ = 0;
#endif
};

/// Records an instant event if tracing is on.
inline void TraceInstant(const char* name, const char* arg1_name = nullptr,
                         uint64_t arg1 = 0) {
#ifndef OCB_OBS_DISABLED
  auto& rec = TraceRecorder::Global();
  if (rec.enabled()) rec.RecordInstant(name, arg1_name, arg1);
#else
  (void)name;
  (void)arg1_name;
  (void)arg1;
#endif
}

}  // namespace obs
}  // namespace ocb

#endif  // OCB_OBS_TRACE_H_
