/// \file json_writer.h
/// \brief Minimal streaming JSON writer used by the observability layer
///        (metric-snapshot serialization, Chrome trace-event dumps) and
///        the benches' machine-readable output (OCB_BENCH_JSON).
///
/// Deliberately tiny: objects, arrays, string/number/bool scalars, with
/// string escaping per RFC 8259. The writer tracks nesting so commas and
/// closers are emitted correctly; it does NOT validate key uniqueness.
/// Numbers are emitted in full precision (%.17g for doubles) so round
/// trips through python's json module are lossless.

#ifndef OCB_OBS_JSON_WRITER_H_
#define OCB_OBS_JSON_WRITER_H_

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace ocb {
namespace obs {

/// \brief Builds a JSON document into an in-memory string.
class JsonWriter {
 public:
  JsonWriter() { out_.reserve(4096); }

  // --- Containers -------------------------------------------------------

  /// Opens the root object / an object value inside an array.
  JsonWriter& BeginObject() {
    Separator();
    out_.push_back('{');
    Push(Frame::kObject);
    return *this;
  }
  /// Opens an object-valued member of the current object.
  JsonWriter& BeginObject(std::string_view key) {
    Key(key);
    out_.push_back('{');
    Push(Frame::kObject);
    return *this;
  }
  JsonWriter& EndObject() {
    out_.push_back('}');
    Pop();
    return *this;
  }

  JsonWriter& BeginArray() {
    Separator();
    out_.push_back('[');
    Push(Frame::kArray);
    return *this;
  }
  JsonWriter& BeginArray(std::string_view key) {
    Key(key);
    out_.push_back('[');
    Push(Frame::kArray);
    return *this;
  }
  JsonWriter& EndArray() {
    out_.push_back(']');
    Pop();
    return *this;
  }

  // --- Scalars ----------------------------------------------------------

  JsonWriter& Field(std::string_view key, std::string_view value) {
    Key(key);
    WriteString(value);
    return *this;
  }
  JsonWriter& Field(std::string_view key, const char* value) {
    return Field(key, std::string_view(value));
  }
  JsonWriter& Field(std::string_view key, uint64_t value) {
    Key(key);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
    out_ += buf;
    return *this;
  }
  JsonWriter& Field(std::string_view key, int64_t value) {
    Key(key);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, value);
    out_ += buf;
    return *this;
  }
  JsonWriter& Field(std::string_view key, uint32_t value) {
    return Field(key, static_cast<uint64_t>(value));
  }
  JsonWriter& Field(std::string_view key, int value) {
    return Field(key, static_cast<int64_t>(value));
  }
  JsonWriter& Field(std::string_view key, double value) {
    Key(key);
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out_ += buf;
    return *this;
  }
  JsonWriter& Field(std::string_view key, bool value) {
    Key(key);
    out_ += value ? "true" : "false";
    return *this;
  }

  /// Array-element scalars (no key).
  JsonWriter& Value(std::string_view value) {
    Separator();
    WriteString(value);
    return *this;
  }
  JsonWriter& Value(uint64_t value) {
    Separator();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
    out_ += buf;
    need_comma_ = true;  // Numeric values don't go through WriteString.
    return *this;
  }
  JsonWriter& Value(double value) {
    Separator();
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out_ += buf;
    need_comma_ = true;
    return *this;
  }

  /// Splices \p raw (assumed valid JSON) as the next value.
  JsonWriter& Raw(std::string_view key, std::string_view raw) {
    Key(key);
    out_ += raw;
    return *this;
  }

  /// The document built so far (complete once every container closed).
  const std::string& str() const { return out_; }

  /// True when every BeginObject/BeginArray has been closed.
  bool complete() const { return stack_.empty() && !out_.empty(); }

 private:
  enum class Frame : uint8_t { kObject, kArray };

  void Separator() {
    if (need_comma_) out_.push_back(',');
    need_comma_ = false;
  }
  void Key(std::string_view key) {
    Separator();
    WriteString(key);
    out_.push_back(':');
  }
  void Push(Frame frame) {
    stack_.push_back(frame);
    // A freshly opened container has no elements yet: its first child
    // must not be preceded by a comma (the keyed Begin* overloads reach
    // here with need_comma_ still set from writing the key).
    need_comma_ = false;
  }
  void Pop() {
    if (!stack_.empty()) stack_.pop_back();
    need_comma_ = true;
  }
  void WriteString(std::string_view s) {
    out_.push_back('"');
    for (char c : s) {
      switch (c) {
        case '"':
          out_ += "\\\"";
          break;
        case '\\':
          out_ += "\\\\";
          break;
        case '\n':
          out_ += "\\n";
          break;
        case '\r':
          out_ += "\\r";
          break;
        case '\t':
          out_ += "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(c) & 0xff);
            out_ += buf;
          } else {
            out_.push_back(c);
          }
      }
    }
    out_.push_back('"');
    // After a key, the caller appends the value immediately; after a
    // value, the next sibling needs a comma. Key() resets this below.
    need_comma_ = true;
  }

  std::string out_;
  std::vector<Frame> stack_;
  bool need_comma_ = false;
};

}  // namespace obs
}  // namespace ocb

#endif  // OCB_OBS_JSON_WRITER_H_
