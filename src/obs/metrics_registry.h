/// \file metrics_registry.h
/// \brief Process-global metrics registry: named counters, callback gauges,
///        and log-scale latency histograms with per-thread sharding.
///
/// Design contract (see ARCHITECTURE.md "Observability"):
///
///   * **Hot path = one relaxed atomic add.** Counter::Add and
///     LatencyHistogram::Record hash the calling thread onto one of
///     kStripes cache-line-padded slots and do a single
///     fetch_add(memory_order_relaxed). No locks, no timer syscalls, no
///     allocation. Histogram count/sum/max are *derived from the buckets
///     at snapshot time*, not maintained on the record path.
///
///   * **Names are the identity.** Call sites fetch instruments once
///     (function-local static pointer) via
///     MetricsRegistry::Global().GetCounter("lock.wait.count") etc.;
///     instruments live forever once created (arena of stable pointers),
///     so cached pointers never dangle.
///
///   * **Gauges are callbacks.** Engine components own their atomic stats
///     structs (BufferPoolStats, LockManagerStats, ...) as the single
///     source of truth; they *register* a callback that reads those
///     atomics. Multiple registrations under one name sum — a sharded
///     database registers one callback per shard and the registry
///     aggregates for free. Callbacks run under the registry mutex, so
///     ScopedCallbacks::Clear() synchronizes with any in-flight snapshot
///     and it is safe to destroy the captured object afterwards.
///
///   * **Windows via Snapshot/Diff.** Instruments are cumulative;
///     per-phase numbers come from snapshotting before/after and
///     subtracting (histograms subtract bucket-wise).
///
///   * **Two off switches.** Runtime: Enabled() is one relaxed load,
///     initialized from env OCB_OBS (0/off/false disables); when false,
///     Add/Record return immediately. Compile time: building with
///     -DOCB_OBS=OFF defines OCB_OBS_DISABLED and the hot-path bodies
///     compile to nothing while the API surface stays intact, so no call
///     site needs an #ifdef.

#ifndef OCB_OBS_METRICS_REGISTRY_H_
#define OCB_OBS_METRICS_REGISTRY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/sync.h"

namespace ocb {
namespace obs {

/// Runtime master switch. Initialized once from env OCB_OBS ("0", "off",
/// "false" → disabled; anything else, including unset, → enabled). One
/// relaxed load on every Record/Add.
bool Enabled();

/// Overrides the runtime switch (tests; bench overhead runs).
void SetEnabled(bool on);

namespace internal {

inline constexpr int kStripes = 8;

/// Small per-thread stripe index; cheap, stable for the thread's lifetime.
inline int StripeIndex() {
  thread_local const int idx = [] {
    static std::atomic<uint32_t> next{0};
    return static_cast<int>(next.fetch_add(1, std::memory_order_relaxed) %
                            kStripes);
  }();
  return idx;
}

struct alignas(64) PaddedU64 {
  std::atomic<uint64_t> v{0};
};

}  // namespace internal

/// \brief Monotonic counter, striped across threads.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
#ifndef OCB_OBS_DISABLED
    if (!Enabled()) return;
    stripes_[internal::StripeIndex()].v.fetch_add(delta,
                                                  std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }

  /// Sum across stripes (snapshot path; not linearizable, like any
  /// sharded counter — fine for metrics).
  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& s : stripes_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  std::array<internal::PaddedU64, internal::kStripes> stripes_;
};

/// Immutable percentile view of a histogram's buckets.
struct HistogramStats {
  uint64_t count = 0;
  uint64_t sum_approx = 0;  ///< Bucket-midpoint approximation of the sum.
  uint64_t p50 = 0;
  uint64_t p95 = 0;
  uint64_t p99 = 0;
  uint64_t max = 0;  ///< Upper bound of the highest non-empty bucket.

  double mean() const {
    return count ? static_cast<double>(sum_approx) / static_cast<double>(count)
                 : 0.0;
  }
};

/// \brief Log-scale latency histogram (HDR-style: power-of-two octaves with
///        16 linear sub-buckets each, ~4% relative error), striped per
///        thread. Record() is exactly one relaxed fetch_add on a bucket.
class LatencyHistogram {
 public:
  static constexpr int kSubBucketBits = 4;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kOctaves = 48;  // covers > 3 days in nanoseconds
  static constexpr int kNumBuckets = kOctaves * kSubBuckets;

  void Record(uint64_t value) {
#ifndef OCB_OBS_DISABLED
    if (!Enabled()) return;
    stripes_[internal::StripeIndex()]
        .buckets[BucketFor(value)]
        .fetch_add(1, std::memory_order_relaxed);
#else
    (void)value;
#endif
  }

  /// Merged bucket array across stripes.
  std::array<uint64_t, kNumBuckets> SnapshotBuckets() const;

  /// Percentiles etc. derived from a bucket array (shared with Diff'd
  /// snapshots, hence static).
  static HistogramStats StatsFromBuckets(
      const std::array<uint64_t, kNumBuckets>& buckets);

  static int BucketFor(uint64_t value);
  /// Inclusive upper bound of bucket \p b (the value reported for
  /// percentiles falling in it).
  static uint64_t BucketUpperBound(int b);

 private:
  struct alignas(64) Stripe {
    std::array<std::atomic<uint64_t>, kNumBuckets> buckets{};
  };
  std::array<Stripe, internal::kStripes> stripes_;
};

/// \brief Point-in-time view of every instrument in the registry.
///
/// Counters and gauges flatten into one name → value map (names are
/// unique across kinds by convention); histograms keep their buckets so
/// Diff can subtract before computing percentiles.
class MetricsSnapshot {
 public:
  using Buckets = std::array<uint64_t, LatencyHistogram::kNumBuckets>;

  /// Counter/gauge value, 0 when absent.
  uint64_t Value(std::string_view name) const;
  bool Has(std::string_view name) const;

  /// Percentile stats for histogram \p name (zeros when absent).
  HistogramStats Histo(std::string_view name) const;

  /// this − since, element-wise (counters saturate at 0, histograms
  /// subtract bucket-wise). Gauges are *not* differenced: a gauge is a
  /// level, not a flow, so the newer value wins.
  MetricsSnapshot Diff(const MetricsSnapshot& since) const;

  /// Serializes as a JSON object: {"counters":{...},"histograms":{name:
  /// {"count":..,"p50":..,"p95":..,"p99":..,"max":..,"mean":..}}}.
  std::string ToJson() const;

  /// Multi-line human-readable dump (example programs).
  std::string ToString() const;

  const std::map<std::string, uint64_t>& counters() const { return counters_; }
  const std::map<std::string, Buckets>& histograms() const {
    return histograms_;
  }

 private:
  friend class MetricsRegistry;
  std::map<std::string, uint64_t> counters_;  // counters + gauges
  std::map<std::string, bool> is_gauge_;      // names that came from callbacks
  std::map<std::string, Buckets> histograms_;
};

/// \brief The process-global instrument directory.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  /// Returns the instrument registered under \p name, creating it on
  /// first use. Pointers are stable for the process lifetime.
  Counter* GetCounter(std::string_view name);
  LatencyHistogram* GetHistogram(std::string_view name);

  /// Registers a gauge callback under \p name; multiple registrations
  /// under the same name sum at snapshot time. Returns an id for
  /// Unregister. Callbacks are invoked under the registry mutex —
  /// after Unregister returns, the callback will never run again.
  uint64_t RegisterCallback(std::string_view name,
                            std::function<uint64_t()> fn);
  void UnregisterCallback(uint64_t id);

  /// Snapshot of every counter, gauge callback, and histogram.
  MetricsSnapshot Snapshot() const;

  /// Testing hook: drops all callbacks (instruments persist — they are
  /// cumulative by design; tests window with Snapshot/Diff instead).
  void ClearCallbacksForTest();

 private:
  MetricsRegistry() = default;

  /// Ranked ABOVE every engine mutex (lockdep rank table): Snapshot()
  /// runs the gauge callbacks under it, and those read component stats()
  /// that take the component's own mutex.
  mutable Mutex mu_{lockdep::kMetricsRegistryClass};
  // node-based maps → stable element addresses for cached pointers.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      OCB_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>>
      histograms_ OCB_GUARDED_BY(mu_);
  struct CallbackEntry {
    uint64_t id;
    std::string name;
    std::function<uint64_t()> fn;
  };
  std::vector<CallbackEntry> callbacks_ OCB_GUARDED_BY(mu_);
  uint64_t next_callback_id_ OCB_GUARDED_BY(mu_) = 1;
};

/// \brief RAII bundle of gauge registrations; an engine component
///        registers its stat callbacks through one of these and clears it
///        at the top of its destructor, before the captured members die.
class ScopedCallbacks {
 public:
  ScopedCallbacks() = default;
  ~ScopedCallbacks() { Clear(); }
  ScopedCallbacks(const ScopedCallbacks&) = delete;
  ScopedCallbacks& operator=(const ScopedCallbacks&) = delete;

  void Register(std::string_view name, std::function<uint64_t()> fn) {
#ifndef OCB_OBS_DISABLED
    ids_.push_back(
        MetricsRegistry::Global().RegisterCallback(name, std::move(fn)));
#else
    (void)name;
    (void)fn;
#endif
  }

  /// Unregisters everything; safe to call repeatedly. After return no
  /// callback in this bundle can be running or run again.
  void Clear() {
    for (uint64_t id : ids_) MetricsRegistry::Global().UnregisterCallback(id);
    ids_.clear();
  }

 private:
  std::vector<uint64_t> ids_;
};

}  // namespace obs
}  // namespace ocb

#endif  // OCB_OBS_METRICS_REGISTRY_H_
