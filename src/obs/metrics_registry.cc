#include "obs/metrics_registry.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "obs/json_writer.h"

namespace ocb {
namespace obs {

namespace {

bool EnvDisabled() {
  const char* v = std::getenv("OCB_OBS");
  if (v == nullptr) return false;
  return std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0 ||
         std::strcmp(v, "OFF") == 0 || std::strcmp(v, "false") == 0;
}

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> flag{!EnvDisabled()};
  return flag;
}

}  // namespace

bool Enabled() { return EnabledFlag().load(std::memory_order_relaxed); }

void SetEnabled(bool on) {
  EnabledFlag().store(on, std::memory_order_relaxed);
}

// --- LatencyHistogram -----------------------------------------------------

int LatencyHistogram::BucketFor(uint64_t value) {
  // Values < kSubBuckets land in octave 0's linear range directly.
  if (value < kSubBuckets) return static_cast<int>(value);
  const int msb = 63 - std::countl_zero(value);
  int octave = msb - kSubBucketBits + 1;
  if (octave >= kOctaves) {  // Clamp overflow into the top bucket.
    return kNumBuckets - 1;
  }
  const int sub =
      static_cast<int>((value >> (octave - 1)) & (kSubBuckets - 1));
  return octave * kSubBuckets + sub;
}

uint64_t LatencyHistogram::BucketUpperBound(int b) {
  const int octave = b / kSubBuckets;
  const int sub = b % kSubBuckets;
  if (octave == 0) return static_cast<uint64_t>(sub);
  const uint64_t base = static_cast<uint64_t>(kSubBuckets)
                        << (octave - 1);  // First value in this octave.
  const uint64_t width = uint64_t{1} << (octave - 1);
  return base + static_cast<uint64_t>(sub + 1) * width - 1;
}

std::array<uint64_t, LatencyHistogram::kNumBuckets>
LatencyHistogram::SnapshotBuckets() const {
  std::array<uint64_t, kNumBuckets> out{};
  for (const auto& stripe : stripes_) {
    for (int i = 0; i < kNumBuckets; ++i) {
      out[i] += stripe.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return out;
}

HistogramStats LatencyHistogram::StatsFromBuckets(
    const std::array<uint64_t, kNumBuckets>& buckets) {
  HistogramStats s;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets[i] == 0) continue;
    s.count += buckets[i];
    s.sum_approx += buckets[i] * BucketUpperBound(i);
    s.max = BucketUpperBound(i);
  }
  if (s.count == 0) return s;
  auto percentile = [&](double p) -> uint64_t {
    const uint64_t rank = static_cast<uint64_t>(
        p / 100.0 * static_cast<double>(s.count) + 0.5);
    uint64_t seen = 0;
    for (int i = 0; i < kNumBuckets; ++i) {
      seen += buckets[i];
      if (seen >= rank && buckets[i] > 0) return BucketUpperBound(i);
      if (seen >= s.count) break;
    }
    return s.max;
  };
  s.p50 = percentile(50.0);
  s.p95 = percentile(95.0);
  s.p99 = percentile(99.0);
  return s;
}

// --- MetricsSnapshot ------------------------------------------------------

uint64_t MetricsSnapshot::Value(std::string_view name) const {
  auto it = counters_.find(std::string(name));
  return it == counters_.end() ? 0 : it->second;
}

bool MetricsSnapshot::Has(std::string_view name) const {
  return counters_.count(std::string(name)) > 0 ||
         histograms_.count(std::string(name)) > 0;
}

HistogramStats MetricsSnapshot::Histo(std::string_view name) const {
  auto it = histograms_.find(std::string(name));
  if (it == histograms_.end()) return HistogramStats{};
  return LatencyHistogram::StatsFromBuckets(it->second);
}

MetricsSnapshot MetricsSnapshot::Diff(const MetricsSnapshot& since) const {
  MetricsSnapshot out;
  out.is_gauge_ = is_gauge_;
  for (const auto& [name, value] : counters_) {
    auto g = is_gauge_.find(name);
    if (g != is_gauge_.end() && g->second) {
      out.counters_[name] = value;  // Gauges are levels: newer value wins.
      continue;
    }
    auto it = since.counters_.find(name);
    const uint64_t base = it == since.counters_.end() ? 0 : it->second;
    out.counters_[name] = value >= base ? value - base : 0;
  }
  for (const auto& [name, buckets] : histograms_) {
    Buckets diff = buckets;
    auto it = since.histograms_.find(name);
    if (it != since.histograms_.end()) {
      for (size_t i = 0; i < diff.size(); ++i) {
        diff[i] = diff[i] >= it->second[i] ? diff[i] - it->second[i] : 0;
      }
    }
    out.histograms_[name] = diff;
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.BeginObject("counters");
  for (const auto& [name, value] : counters_) w.Field(name, value);
  w.EndObject();
  w.BeginObject("histograms");
  for (const auto& [name, buckets] : histograms_) {
    const HistogramStats s = LatencyHistogram::StatsFromBuckets(buckets);
    w.BeginObject(name)
        .Field("count", s.count)
        .Field("mean", s.mean())
        .Field("p50", s.p50)
        .Field("p95", s.p95)
        .Field("p99", s.p99)
        .Field("max", s.max)
        .EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.str();
}

std::string MetricsSnapshot::ToString() const {
  std::ostringstream os;
  for (const auto& [name, value] : counters_) {
    if (value == 0) continue;  // Keep the human dump readable.
    os << "  " << name << " = " << value << "\n";
  }
  for (const auto& [name, buckets] : histograms_) {
    const HistogramStats s = LatencyHistogram::StatsFromBuckets(buckets);
    if (s.count == 0) continue;
    os << "  " << name << " n=" << s.count << " p50=" << s.p50
       << " p95=" << s.p95 << " p99=" << s.p99 << " max=" << s.max << "\n";
  }
  return os.str();
}

// --- MetricsRegistry ------------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked singleton: instruments must outlive static-destruction-order
  // hazards (engine objects may unregister callbacks in their dtors).
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(std::string_view name) {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<LatencyHistogram>())
             .first;
  }
  return it->second.get();
}

uint64_t MetricsRegistry::RegisterCallback(std::string_view name,
                                           std::function<uint64_t()> fn) {
  MutexLock lock(mu_);
  const uint64_t id = next_callback_id_++;
  callbacks_.push_back(CallbackEntry{id, std::string(name), std::move(fn)});
  return id;
}

void MetricsRegistry::UnregisterCallback(uint64_t id) {
  MutexLock lock(mu_);
  callbacks_.erase(
      std::remove_if(callbacks_.begin(), callbacks_.end(),
                     [id](const CallbackEntry& e) { return e.id == id; }),
      callbacks_.end());
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  MutexLock lock(mu_);
  for (const auto& [name, counter] : counters_) {
    snap.counters_[name] += counter->Value();
  }
  for (const auto& entry : callbacks_) {
    snap.counters_[entry.name] += entry.fn();
    snap.is_gauge_[entry.name] = true;
  }
  for (const auto& [name, histo] : histograms_) {
    snap.histograms_[name] = histo->SnapshotBuckets();
  }
  return snap;
}

void MetricsRegistry::ClearCallbacksForTest() {
  MutexLock lock(mu_);
  callbacks_.clear();
}

}  // namespace obs
}  // namespace ocb
