#include "util/rng.h"

#include <cassert>

namespace ocb {
namespace {

/// SplitMix64 step; used only to expand the user seed into the GFSR state.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

LewisPayneRng::LewisPayneRng(uint64_t seed) { Seed(seed); }

void LewisPayneRng::Seed(uint64_t seed) {
  seed_ = seed;
  uint64_t sm = seed ^ 0xA5A5A5A55A5A5A5AULL;
  bool any_nonzero = false;
  for (int i = 0; i < kP; ++i) {
    state_[i] = static_cast<uint32_t>(SplitMix64(&sm) >> 16);
    any_nonzero |= (state_[i] != 0);
  }
  if (!any_nonzero) state_[0] = 1u;  // The all-zero state is a fixed point.
  // Force linear independence of bit columns by setting a diagonal of bits
  // (Fushimi-style initialization guard), then decorrelate the start-up
  // transient by discarding a few thousand draws.
  for (int i = 0; i < 32 && i < kP; ++i) {
    state_[i] |= (1u << i);
  }
  pos_ = 0;
  for (int i = 0; i < 100 * kP; ++i) {
    (void)NextUint32();
  }
}

uint32_t LewisPayneRng::NextUint32() {
  // x[n] = x[n-p] ^ x[n-p+q]; with a circular buffer of length p the word at
  // pos_ is x[n-p] and the word q slots ahead (mod p) is x[n-p+q].
  int tap = pos_ + kQ;
  if (tap >= kP) tap -= kP;
  uint32_t next = state_[pos_] ^ state_[tap];
  state_[pos_] = next;
  ++pos_;
  if (pos_ == kP) pos_ = 0;
  return next;
}

uint64_t LewisPayneRng::NextUint64() {
  uint64_t hi = NextUint32();
  uint64_t lo = NextUint32();
  return (hi << 32) | lo;
}

double LewisPayneRng::NextDouble() {
  // 53 random bits / 2^53, the standard dense-double construction.
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

int64_t LewisPayneRng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(NextUint64());  // Full range.
  // Unbiased rejection: draw from the largest multiple of `range`.
  uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t draw;
  do {
    draw = NextUint64();
  } while (draw >= limit);
  return lo + static_cast<int64_t>(draw % range);
}

bool LewisPayneRng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

}  // namespace ocb
