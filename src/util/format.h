/// \file format.h
/// \brief printf-style string formatting and the ASCII table renderer used
///        by every benchmark harness to print paper-style tables.

#ifndef OCB_UTIL_FORMAT_H_
#define OCB_UTIL_FORMAT_H_

#include <cstdarg>
#include <cstdint>
#include <string>
#include <vector>

namespace ocb {

/// \brief printf into a std::string.
std::string Format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// \brief Renders a byte count as "512 B", "4.0 KB", "15.3 MB"...
std::string HumanBytes(uint64_t bytes);

/// \brief Renders a nanosecond duration as "873 ns", "1.24 ms", "3.5 s"...
std::string HumanDuration(uint64_t nanos);

/// \brief Column-aligned ASCII table, in the style of the paper's Tables 1-5.
///
/// Usage:
///   TextTable t({"Benchmark", "I/Os before", "I/Os after", "Gain"});
///   t.AddRow({"OCB", "61", "7", "8.71"});
///   std::cout << t.ToString();
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; short rows are padded with empty cells.
  void AddRow(std::vector<std::string> cells);

  /// Inserts a horizontal separator line before the next row.
  void AddSeparator();

  size_t num_rows() const { return rows_.size(); }

  /// Renders the table with a boxed header and aligned columns.
  std::string ToString() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace ocb

#endif  // OCB_UTIL_FORMAT_H_
