/// \file status.h
/// \brief Status / Result error-handling primitives (RocksDB-style).
///
/// All fallible operations in the OCB codebase return either a Status (for
/// operations without a value) or a Result<T> (a value-or-Status). Exceptions
/// are not used on any hot path.

#ifndef OCB_UTIL_STATUS_H_
#define OCB_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace ocb {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kNotFound,
  kCorruption,
  kInvalidArgument,
  kIOError,
  kNoSpace,
  kAlreadyExists,
  kAborted,
  kNotSupported,
  kInternal,
  kWriteConflict,
};

/// \brief Returns a short human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation: success, or an error code plus message.
///
/// Cheap to copy on the success path (no allocation); errors carry a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NoSpace(std::string msg) {
    return Status(StatusCode::kNoSpace, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// Optimistic/snapshot-isolation validation failure: the transaction
  /// lost a first-committer-wins or read-set race and was rolled back.
  /// Distinct from kAborted (deadlock victims, injected 2PC aborts) so
  /// callers can retry validation conflicts specifically.
  static Status WriteConflict(std::string msg) {
    return Status(StatusCode::kWriteConflict, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsNoSpace() const { return code_ == StatusCode::kNoSpace; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsWriteConflict() const {
    return code_ == StatusCode::kWriteConflict;
  }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// \brief A value of type T, or a Status explaining why there is none.
///
/// Analogous to absl::StatusOr. Dereferencing a non-OK Result is a
/// programming error checked by assert.
template <typename T>
class Result {
 public:
  /// Implicit from value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT
  /// Implicit from error status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "OK status requires a value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() {
    assert(ok());
    return &*value_;
  }
  const T* operator->() const {
    assert(ok());
    return &*value_;
  }

  /// Returns the value, or \p fallback when this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ engaged.
};

/// Propagates a non-OK Status out of the enclosing function.
#define OCB_RETURN_NOT_OK(expr)           \
  do {                                    \
    ::ocb::Status _st = (expr);           \
    if (!_st.ok()) return _st;            \
  } while (0)

#define OCB_CONCAT_IMPL(a, b) a##b
#define OCB_CONCAT(a, b) OCB_CONCAT_IMPL(a, b)

/// Assigns the value of a Result expression or propagates its Status.
#define OCB_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr)   \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value();

#define OCB_ASSIGN_OR_RETURN(lhs, expr) \
  OCB_ASSIGN_OR_RETURN_IMPL(OCB_CONCAT(_res_, __LINE__), lhs, expr)

}  // namespace ocb

#endif  // OCB_UTIL_STATUS_H_
