/// \file rng.h
/// \brief The Lewis–Payne generalized feedback shift-register (GFSR)
///        pseudo-random generator used by the OCB paper (§3.2, note).
///
/// Lewis & Payne (JACM 1973) generate a sequence of W-bit words over the
/// primitive trinomial x^p + x^q + 1:
///
///     x[n] = x[n - p] XOR x[n - p + q]
///
/// We use the classical (p, q) = (98, 27) pair from the original paper with
/// 32-bit words. Seeding fills the 98-word register from a SplitMix64 stream
/// and then applies Fushimi's decorrelation (discard 5000 p-word blocks is
/// overkill; we discard 100*p draws), which is sufficient for benchmark use
/// and keeps runs bit-for-bit reproducible from a single 64-bit seed.
///
/// All OCB randomness (database generation, workload draws) flows through
/// this generator so experiments are deterministic given their seed.

#ifndef OCB_UTIL_RNG_H_
#define OCB_UTIL_RNG_H_

#include <array>
#include <cstdint>

namespace ocb {

/// \brief Deterministic Lewis–Payne GFSR(98, 27) pseudo-random generator.
class LewisPayneRng {
 public:
  static constexpr int kP = 98;
  static constexpr int kQ = 27;

  /// Constructs a generator seeded with \p seed (any value, including 0).
  explicit LewisPayneRng(uint64_t seed = 0xC0FFEE1998ULL);

  /// Reseeds the generator; equivalent to constructing a fresh instance.
  void Seed(uint64_t seed);

  /// Returns the next 32-bit word of the GFSR sequence.
  uint32_t NextUint32();

  /// Returns a 64-bit value built from two consecutive 32-bit draws.
  uint64_t NextUint64();

  /// Returns a double uniformly distributed in [0, 1).
  double NextDouble();

  /// Returns an integer uniformly distributed in [lo, hi] (inclusive).
  /// Requires lo <= hi. Uses unbiased rejection sampling.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns true with probability \p p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// The seed this generator was (re)initialized with.
  uint64_t seed() const { return seed_; }

  // Named-requirement UniformRandomBitGenerator interface, so the generator
  // can drive <algorithm> facilities such as std::shuffle.
  using result_type = uint32_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return 0xFFFFFFFFu; }
  result_type operator()() { return NextUint32(); }

 private:
  std::array<uint32_t, kP> state_;
  int pos_;
  uint64_t seed_;
};

}  // namespace ocb

#endif  // OCB_UTIL_RNG_H_
