/// \file sim_clock.h
/// \brief Deterministic simulated clock.
///
/// OCB's headline metrics are I/O counts, but the paper also reports
/// response times. Wall-clock time on modern hardware bears no relation to a
/// 1998 SPARC/ELC, so the storage substrate charges *simulated* latency
/// (disk reads/writes, THINK time) to a SimClock. Results are therefore
/// deterministic and machine-independent; wall time is reported separately.

#ifndef OCB_UTIL_SIM_CLOCK_H_
#define OCB_UTIL_SIM_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace ocb {

/// \brief Monotonic nanosecond counter advanced explicitly by the simulation.
///
/// Atomic so CLIENTN client threads can charge THINK time and read
/// timestamps concurrently; relaxed ordering suffices — the counter is a
/// statistic, not a synchronization point.
class SimClock {
 public:
  /// Current simulated time in nanoseconds since construction.
  uint64_t now_nanos() const {
    return nanos_.load(std::memory_order_relaxed);
  }

  /// Advances the clock by \p nanos nanoseconds.
  void Advance(uint64_t nanos) {
    nanos_.fetch_add(nanos, std::memory_order_relaxed);
  }

  /// Advances the clock to at least \p target_nanos; a no-op if the clock
  /// is already past it. Returns the nanoseconds actually added.
  ///
  /// This is how overlapped I/O charges overlapped simulated time: each
  /// request computes its own completion instant (issue time + device
  /// latency) and the clock takes the max, so K requests in flight
  /// together advance the clock by ~one latency, not K of them, while a
  /// dependent chain (issue → await → issue) still accumulates the full
  /// serial sum through its issue timestamps.
  uint64_t AdvanceTo(uint64_t target_nanos) {
    uint64_t current = nanos_.load(std::memory_order_relaxed);
    while (current < target_nanos) {
      if (nanos_.compare_exchange_weak(current, target_nanos,
                                       std::memory_order_relaxed)) {
        return target_nanos - current;
      }
    }
    return 0;
  }

  /// Resets the clock to zero.
  void Reset() { nanos_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> nanos_{0};
};

}  // namespace ocb

#endif  // OCB_UTIL_SIM_CLOCK_H_
