/// \file sim_clock.h
/// \brief Deterministic simulated clock.
///
/// OCB's headline metrics are I/O counts, but the paper also reports
/// response times. Wall-clock time on modern hardware bears no relation to a
/// 1998 SPARC/ELC, so the storage substrate charges *simulated* latency
/// (disk reads/writes, THINK time) to a SimClock. Results are therefore
/// deterministic and machine-independent; wall time is reported separately.

#ifndef OCB_UTIL_SIM_CLOCK_H_
#define OCB_UTIL_SIM_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace ocb {

/// \brief Monotonic nanosecond counter advanced explicitly by the simulation.
///
/// Atomic so CLIENTN client threads can charge THINK time and read
/// timestamps concurrently; relaxed ordering suffices — the counter is a
/// statistic, not a synchronization point.
class SimClock {
 public:
  /// Current simulated time in nanoseconds since construction.
  uint64_t now_nanos() const {
    return nanos_.load(std::memory_order_relaxed);
  }

  /// Advances the clock by \p nanos nanoseconds.
  void Advance(uint64_t nanos) {
    nanos_.fetch_add(nanos, std::memory_order_relaxed);
  }

  /// Resets the clock to zero.
  void Reset() { nanos_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> nanos_{0};
};

}  // namespace ocb

#endif  // OCB_UTIL_SIM_CLOCK_H_
