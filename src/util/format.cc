#include "util/format.h"

#include <algorithm>
#include <cstdio>

namespace ocb {

std::string Format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  if (bytes < 1024) return Format("%llu B", (unsigned long long)bytes);
  const char* units[] = {"KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int u = -1;
  while (v >= 1024.0 && u < 3) {
    v /= 1024.0;
    ++u;
  }
  return Format("%.1f %s", v, units[u]);
}

std::string HumanDuration(uint64_t nanos) {
  if (nanos < 1000) return Format("%llu ns", (unsigned long long)nanos);
  double v = static_cast<double>(nanos);
  if (v < 1e6) return Format("%.2f us", v / 1e3);
  if (v < 1e9) return Format("%.2f ms", v / 1e6);
  return Format("%.3f s", v / 1e9);
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(Row{std::move(cells), false});
}

void TextTable::AddSeparator() {
  rows_.push_back(Row{{}, true});
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const Row& row : rows_) {
    if (row.separator) continue;
    for (size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }
  auto hline = [&]() {
    std::string s = "+";
    for (size_t w : widths) s += std::string(w + 2, '-') + "+";
    s += "\n";
    return s;
  };
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      s += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    s += "\n";
    return s;
  };
  std::string out = hline() + render_row(header_) + hline();
  for (const Row& row : rows_) {
    out += row.separator ? hline() : render_row(row.cells);
  }
  out += hline();
  return out;
}

}  // namespace ocb
