/// \file lockdep.h
/// \brief Runtime lock-order validator (lockdep-style), compiled in under
///        -DOCB_LOCKDEP=ON.
///
/// Clang Thread Safety Analysis (util/thread_annotations.h) proves that
/// guarded state is only touched under its mutex, but it is
/// intraprocedural: it cannot see that a catalog latch was taken *under* a
/// buffer-pool stripe mutex three frames up the call stack, nor check the
/// dynamic same-class rules (ascending page-id, ascending shard index).
/// This validator covers exactly that gap, the way the Linux kernel's
/// lockdep does:
///
///   * Every engine mutex belongs to a **lock class** carrying the
///     hierarchy **rank** from ARCHITECTURE.md "Ordering rules" (the rank
///     table below IS that section, in code). Instances of per-shard /
///     per-stripe classes additionally carry a **key** (shard index,
///     stripe index, page id) for the intra-class ordering rules.
///   * Each acquisition pushes onto a thread-local held-lock stack after
///     validating: (a) no held lock has a *higher* rank than the one being
///     acquired (acquire strictly top-down), (b) a second instance of the
///     same class is only legal for key-ordered classes and only in
///     strictly ascending key order, (c) the class-level edge
///     (innermost-held -> acquired) does not close a cycle in the global
///     lock-order graph built from every acquisition the process has seen.
///   * A violation produces a typed fatal report naming the acquired lock,
///     every lock the thread holds (innermost last), and — for graph
///     cycles — the held-stack recorded when the conflicting opposite
///     order was first observed. The default handler prints the report and
///     aborts; tests install their own via SetFailureHandlerForTest.
///
/// Zero cost when off: without -DOCB_LOCKDEP=ON the hooks compile to
/// nothing, ocb::Mutex is exactly std::mutex plus an empty base, and
/// kEnabled is a compile-time false (tests assert on it, mirroring the
/// OCB_OBS compile-out contract).
///
/// The checks run on the acquiring thread *before* blocking, so a seeded
/// inversion is reported even when it would not have deadlocked in that
/// particular interleaving — that is the point: the validator fails on the
/// *order*, deterministically, not on the lucky/unlucky timing.

#ifndef OCB_UTIL_LOCKDEP_H_
#define OCB_UTIL_LOCKDEP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace ocb {
namespace lockdep {

#if defined(OCB_LOCKDEP_ENABLED)
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

/// Key value for locks without an intra-class ordering key.
inline constexpr uint64_t kNoKey = ~uint64_t{0};

/// Class behavior flags.
enum : uint8_t {
  /// Multiple instances of the class may be held by one thread, but only
  /// in strictly ascending key order (ascending page id for frame
  /// latches, ascending shard index for per-shard mutexes). Without this
  /// flag a second same-class acquisition is reported (single-instance
  /// classes: re-acquiring is self-deadlock, a sibling is an undocumented
  /// ordering).
  kOrderedByKey = 1,
};

/// \brief One lock class: a name, a hierarchy rank, and behavior flags.
///
/// Rank runs top-down: a thread may only acquire a mutex whose rank is
/// >= every rank it already holds (same rank only within a kOrderedByKey
/// class, ascending). Instances reference their class by address; the
/// runtime id is assigned lazily on first acquisition.
struct LockClass {
  const char* name;
  uint16_t rank;
  uint8_t flags = 0;
  mutable std::atomic<uint32_t> id{0};  ///< 0 = unassigned.
};

// ---------------------------------------------------------------------------
// The rank table — ARCHITECTURE.md "Ordering rules" as checked constants.
// Acquire strictly top-down (ascending rank); release in any order.
// Gaps of 10 leave room for future layers without renumbering.
// ---------------------------------------------------------------------------

/// Metrics-registry map mutex. Ranked above (acquired before) every
/// engine mutex because Snapshot() invokes gauge callbacks *under* it,
/// and those callbacks read engine stats() that take engine mutexes.
inline LockClass kMetricsRegistryClass{"obs.registry", 10};

/// Trace-ring dump mutex (the record path is lock-free).
inline LockClass kTraceRingClass{"obs.trace", 15};

/// Commit-pipeline queue mutex. Guards only the request queue: a leader
/// drops it before running the batch function, so every engine mutex the
/// batch work takes nests cleanly below.
inline LockClass kCommitPipelineClass{"commit.pipeline", 20};

/// Cross-shard coordinator commit mutex — before any shard's
/// version-store commit mutex, never after.
inline LockClass kCoordinatorCommitClass{"coord.commit", 50};

/// Lock-manager table mutex (per shard; key = shard index). Logical
/// object-lock *acquisition* happens with no engine mutex held (rule 1:
/// locks before latches), but lock *release* runs inside the commit
/// choreography — CommitTxnAt's ReleaseAll executes under the
/// coordinator's commit mutex in 2PC — so the table mutex ranks below
/// coord.commit, and the short lookup/grant/release critical sections
/// nest nothing of the engine's below them except the wait graph.
inline LockClass kLockManagerTableClass{"lockmgr.table", 52, kOrderedByKey};

/// Global wait-for graph: a leaf directly under the lock-manager table
/// mutexes (managers call in while holding theirs; the graph never calls
/// out).
inline LockClass kWaitGraphClass{"lockmgr.waitgraph", 54};

/// Coordinator in-flight 2PC registry.
inline LockClass kCoordinatorInflightClass{"coord.inflight", 60};

/// Version-GC wakeup mutex. Ranked above the version-store commit mutex
/// because GcLoop holds it across GarbageCollect (commit paths wake the
/// cv without taking it).
inline LockClass kGcWakeupClass{"db.gcwakeup", 65};

/// Version-store commit mutex (per shard; key = shard index): timestamp
/// allocation, whole stamping loops, snapshot opens, GC threshold.
inline LockClass kVersionStoreCommitClass{"versionstore.commit", 70,
                                          kOrderedByKey};

/// Version-store pending-by-txn map (writer-side bookkeeping).
inline LockClass kVersionStorePendingClass{"versionstore.pending", 80};

/// ReadView registry (open-snapshot multiset; taken under the commit
/// mutex by OpenSnapshot, alone by Close).
inline LockClass kReadViewRegistryClass{"readview.registry", 90};

/// Catalog latch (per shard; key = shard index): schema metadata only,
/// never held across physical I/O.
inline LockClass kCatalogLatchClass{"catalog.latch", 100, kOrderedByKey};

/// Database observer mutex (serializes AccessObserver callbacks).
inline LockClass kObserverClass{"db.observer", 110};

/// Buffer-pool quiesce gate.
inline LockClass kQuiesceClass{"pool.quiesce", 120};

/// Per-frame page latches (key = page id; multi-page operations must
/// ascend — the relocation-path rule). Ranked *above* the stripe mutexes
/// because the checked (blocking) order is frame-then-stripe: the batch
/// prefetch issue loop and the failed-miss cleanup acquire the next
/// page's stripe mutex while still holding miss frame latches. The fetch
/// path's opposite-looking nesting (stripe held, then a frame) only ever
/// *try-locks* the frame — an acquisition that cannot block and is
/// therefore exempt — precisely so a latch holder waiting on the stripe
/// mutex can never deadlock it.
inline LockClass kFrameLatchClass{"page.frame", 130, kOrderedByKey};

/// Buffer-pool page-table stripe mutexes (key = stripe index). See
/// page.frame above for why these rank below the frame latches.
inline LockClass kBufferStripeClass{"pool.stripe", 140, kOrderedByKey};

/// Striped oid-table shard mutexes (key = table stripe). May be taken
/// while holding page latches, never the reverse.
inline LockClass kOidTableClass{"store.oidmap", 150, kOrderedByKey};

/// Free-space map (leaf below placement paths).
inline LockClass kFreeSpaceClass{"store.freespace", 160};

/// Version-store chain-table shard mutexes (key = chain shard). Leaves:
/// GetVisible nests nothing under them; taken under page latches by the
/// read-validate protocol and under the commit mutex by stamping loops.
inline LockClass kVersionChainClass{"versionstore.chain", 170,
                                    kOrderedByKey};

/// DiskSim page-directory mutex.
inline LockClass kDiskDirectoryClass{"disk.directory", 180};

/// DiskSim backing-file mutex (write-through fseek+fwrite pairs).
inline LockClass kDiskBackingClass{"disk.backing", 190};

/// I/O backend submission-queue mutex.
inline LockClass kIoQueueClass{"io.queue", 200};

/// Per-request I/O completion mutex (key = none; awaited one at a time).
inline LockClass kIoRequestClass{"io.request", 210, kOrderedByKey};

/// WAL writer mutex: appended to under the coordinator/commit path,
/// nests nothing of the engine's below it.
inline LockClass kWalWriterClass{"wal.writer", 220};

/// Auto-checkpoint scheduler wakeup mutex: a leaf — the loop drops it
/// before running SaveSnapshot, and NoteCommitsForCheckpoint takes it
/// with nothing held.
inline LockClass kCkptWakeupClass{"db.ckptwakeup", 230};

// ---------------------------------------------------------------------------
// Hooks (called by ocb::Mutex / ocb::SharedMutex in util/sync.h).
// ---------------------------------------------------------------------------

/// \brief A detected ordering violation, handed to the failure handler.
struct Violation {
  /// "rank-inversion", "key-order", "recursion", or "order-cycle".
  std::string kind;
  /// Class name of the lock being acquired.
  std::string acquiring;
  /// Names (with keys) of every lock the thread holds, outermost first.
  std::vector<std::string> held;
  /// For order-cycle: the held-lock names recorded when the *opposite*
  /// order was first observed (the "other stack trace" of the report).
  std::vector<std::string> prior_order;
  /// Fully formatted human-readable report.
  std::string message;
};

#if defined(OCB_LOCKDEP_ENABLED)

/// Validates and records the acquisition of \p instance of \p cls with
/// intra-class ordering key \p key. Call on the acquiring thread, before
/// blocking on the underlying mutex. \p trylock marks a successful
/// try-lock: it is pushed onto the held stack (later blocking
/// acquisitions under it are real dependencies) but is itself exempt
/// from every ordering check and records no graph edge — an acquisition
/// that cannot block cannot deadlock, and the buffer pool deliberately
/// try-locks eviction victims out of order.
void OnAcquire(const LockClass& cls, const void* instance, uint64_t key,
               bool trylock = false);

/// Records the release of \p instance (any order).
void OnRelease(const LockClass& cls, const void* instance);

/// Rebinds the intra-class key of a lock the *calling thread currently
/// holds* (a frame latch keyed by whichever page the frame caches is
/// rebound at install time, under its own exclusive hold). No-op when the
/// thread does not hold \p instance.
void OnSetKey(const void* instance, uint64_t key);

/// Number of locks the calling thread currently holds (tests).
size_t HeldCount();

/// Installs a failure handler (replacing print-and-abort); nullptr
/// restores the default. Returns the previous handler. Tests only.
using FailureHandler = std::function<void(const Violation&)>;
void SetFailureHandlerForTest(FailureHandler handler);

/// Drops every recorded class-level edge (tests that deliberately seed a
/// bad order clean up after themselves so later tests see a pristine
/// graph).
void ResetGraphForTest();

#else  // !OCB_LOCKDEP_ENABLED — every hook compiles to nothing.

inline void OnAcquire(const LockClass&, const void*, uint64_t,
                      bool = false) {}
inline void OnRelease(const LockClass&, const void*) {}
inline void OnSetKey(const void*, uint64_t) {}
inline size_t HeldCount() { return 0; }
using FailureHandler = std::function<void(const Violation&)>;
inline void SetFailureHandlerForTest(FailureHandler) {}
inline void ResetGraphForTest() {}

#endif  // OCB_LOCKDEP_ENABLED

}  // namespace lockdep
}  // namespace ocb

#endif  // OCB_UTIL_LOCKDEP_H_
