#include "util/status.h"

namespace ocb {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNoSpace:
      return "NoSpace";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kWriteConflict:
      return "WriteConflict";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace ocb
