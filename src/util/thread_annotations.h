/// \file thread_annotations.h
/// \brief Clang Thread Safety Analysis macros (no-ops elsewhere).
///
/// The engine documents a strict lock hierarchy (ARCHITECTURE.md "Ordering
/// rules") but prose cannot fail a build. These macros let every
/// mutex-owning class state its synchronization contract in a form
/// `clang++ -Wthread-safety` checks at compile time:
///
///   * OCB_GUARDED_BY(mu)   — the field may only be touched while `mu` is
///     held (reads need at least a shared hold, writes an exclusive one).
///   * OCB_REQUIRES(mu)     — the function must be called with `mu` held.
///   * OCB_ACQUIRE/RELEASE  — the function takes / drops the capability.
///   * OCB_EXCLUDES(mu)     — the function must NOT be called with `mu`
///     held (the classic self-deadlock annotation).
///   * OCB_CAPABILITY / OCB_SCOPED_CAPABILITY — mark a type as a lockable
///     capability / RAII guard (see util/sync.h for the engine's
///     annotated Mutex, SharedMutex and guard types).
///
/// The analysis is intraprocedural and flow-sensitive. A few engine flows
/// legitimately defeat it — a latch acquired in one function and released
/// by a RAII handle in another (PageHandle), a condition-variable wait
/// that unlocks and relocks inside an opaque callee — and those carry
/// OCB_NO_THREAD_SAFETY_ANALYSIS with a comment saying why. The runtime
/// lockdep validator (util/lockdep.h) covers what the static analysis
/// cannot: cross-function acquisition *order*.
///
/// Under GCC (and any compiler without the capability attributes) every
/// macro expands to nothing, so the annotations are free outside the
/// clang static-analysis CI job.

#ifndef OCB_UTIL_THREAD_ANNOTATIONS_H_
#define OCB_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define OCB_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define OCB_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op
#endif

#define OCB_CAPABILITY(x) \
  OCB_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

#define OCB_SCOPED_CAPABILITY \
  OCB_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

#define OCB_GUARDED_BY(x) \
  OCB_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

#define OCB_PT_GUARDED_BY(x) \
  OCB_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

#define OCB_ACQUIRED_BEFORE(...) \
  OCB_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))

#define OCB_ACQUIRED_AFTER(...) \
  OCB_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

#define OCB_REQUIRES(...) \
  OCB_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

#define OCB_REQUIRES_SHARED(...) \
  OCB_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

#define OCB_ACQUIRE(...) \
  OCB_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

#define OCB_ACQUIRE_SHARED(...) \
  OCB_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

#define OCB_RELEASE(...) \
  OCB_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

#define OCB_RELEASE_SHARED(...) \
  OCB_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

#define OCB_RELEASE_GENERIC(...) \
  OCB_THREAD_ANNOTATION_ATTRIBUTE__(release_generic_capability(__VA_ARGS__))

#define OCB_TRY_ACQUIRE(...) \
  OCB_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

#define OCB_TRY_ACQUIRE_SHARED(...) \
  OCB_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_shared_capability(__VA_ARGS__))

#define OCB_EXCLUDES(...) \
  OCB_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

#define OCB_ASSERT_CAPABILITY(x) \
  OCB_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

#define OCB_ASSERT_SHARED_CAPABILITY(x) \
  OCB_THREAD_ANNOTATION_ATTRIBUTE__(assert_shared_capability(x))

#define OCB_RETURN_CAPABILITY(x) \
  OCB_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

#define OCB_NO_THREAD_SAFETY_ANALYSIS \
  OCB_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // OCB_UTIL_THREAD_ANNOTATIONS_H_
