/// \file distribution.h
/// \brief The random-distribution machinery behind OCB's DIST1..DIST5
///        parameters (paper Tables 1–3).
///
/// OCB parameterizes every random choice in database generation and workload
/// execution with a distribution:
///
///   * DIST1 — reference types            (Table 1 default: Uniform)
///   * DIST2 — class references           (Uniform)
///   * DIST3 — objects into classes       (Uniform)
///   * DIST4 — object references          (Uniform; "Special" in Table 3)
///   * DIST5 — transaction root objects   (Uniform)
///
/// Table 3 ("approximate DSTC-CluB") additionally uses Constant
/// distributions and the OO1-style "Special" locality distribution, which
/// draws within [center - RefZone, center + RefZone] with probability 0.9
/// and uniformly over the whole domain otherwise.
///
/// Zipfian and discretized-Gaussian kinds are provided beyond the paper's
/// defaults so skewed object bases can be modeled (paper §3: "many different
/// kinds of object bases can be modeled with OCB").

#ifndef OCB_UTIL_DISTRIBUTION_H_
#define OCB_UTIL_DISTRIBUTION_H_

#include <cstdint>
#include <string>

#include "util/rng.h"
#include "util/status.h"

namespace ocb {

/// Supported distribution families.
enum class DistributionKind {
  kConstant,        ///< Always returns a fixed value (clamped into range).
  kUniform,         ///< Uniform over [lo, hi].
  kZipf,            ///< Zipf-like over [lo, hi], skew parameter `theta`.
  kGaussian,        ///< Discretized normal centered on the range midpoint.
  kSpecialRefZone,  ///< OO1 locality: near `center` w.p. `locality_prob`.
};

/// \brief Returns the canonical name for a distribution kind ("Uniform"...).
const char* DistributionKindToString(DistributionKind kind);

/// \brief Declarative description of one DISTn parameter.
///
/// A spec is range-free: the [lo, hi] domain is supplied at draw time, since
/// OCB draws the same distribution over per-class or per-object ranges.
struct DistributionSpec {
  DistributionKind kind = DistributionKind::kUniform;

  /// kConstant: the value to return (clamped to [lo, hi] at draw time).
  int64_t constant_value = 0;

  /// kZipf: skew in (0, 10]; ~0.99 is the classic "Zipfian" setting.
  double theta = 0.99;

  /// kGaussian: standard deviation as a fraction of the range width.
  double stddev_fraction = 0.15;

  /// kSpecialRefZone: half-width of the locality window around `center`.
  int64_t ref_zone = 100;

  /// kSpecialRefZone: probability of drawing inside the locality window.
  double locality_prob = 0.9;

  static DistributionSpec Constant(int64_t value) {
    DistributionSpec s;
    s.kind = DistributionKind::kConstant;
    s.constant_value = value;
    return s;
  }
  static DistributionSpec Uniform() {
    return DistributionSpec{};
  }
  static DistributionSpec Zipf(double theta) {
    DistributionSpec s;
    s.kind = DistributionKind::kZipf;
    s.theta = theta;
    return s;
  }
  static DistributionSpec Gaussian(double stddev_fraction) {
    DistributionSpec s;
    s.kind = DistributionKind::kGaussian;
    s.stddev_fraction = stddev_fraction;
    return s;
  }
  static DistributionSpec SpecialRefZone(int64_t ref_zone,
                                         double locality_prob = 0.9) {
    DistributionSpec s;
    s.kind = DistributionKind::kSpecialRefZone;
    s.ref_zone = ref_zone;
    s.locality_prob = locality_prob;
    return s;
  }

  /// Validates parameter sanity (probabilities in [0,1], positive theta...).
  Status Validate() const;

  /// One-line description, e.g. "Special(zone=100, p=0.9)".
  std::string ToString() const;
};

/// \brief Draws one integer from \p spec over the inclusive domain
/// [lo, hi].
///
/// \param center Context value for kSpecialRefZone (the id of the
///        referencing entity, per OO1's "Part #i links near #i" rule);
///        ignored by other kinds.
int64_t DrawFromDistribution(const DistributionSpec& spec, LewisPayneRng* rng,
                             int64_t lo, int64_t hi, int64_t center = 0);

}  // namespace ocb

#endif  // OCB_UTIL_DISTRIBUTION_H_
