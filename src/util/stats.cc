#include "util/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/format.h"

namespace ocb {

void Accumulator::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void Accumulator::Merge(const Accumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Accumulator::Reset() { *this = Accumulator(); }

double Accumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

std::string Accumulator::ToString() const {
  return Format("n=%llu mean=%.3f sd=%.3f min=%.3f max=%.3f",
                (unsigned long long)count_, mean(), stddev(), min(), max());
}

Histogram::Histogram() { buckets_.fill(0); }

int Histogram::BucketFor(uint64_t value) {
  // Values below kSubBuckets are stored exactly in buckets [0, 16).
  // A value in [16 << k, 16 << (k+1)) lands in octave k+1, sub-bucket
  // (value >> k) - 16, i.e. bucket (k+1)*16 + sub.
  if (value < kSubBuckets) return static_cast<int>(value);
  const int msb = 63 - std::countl_zero(value);
  const int k = msb - kSubBucketBits;
  const int sub = static_cast<int>((value >> k) - kSubBuckets);
  return (k + 1) * kSubBuckets + sub;
}

uint64_t Histogram::BucketUpperBound(int bucket) {
  if (bucket < kSubBuckets) return static_cast<uint64_t>(bucket);
  const int k = bucket / kSubBuckets - 1;
  const int sub = bucket % kSubBuckets;
  return ((uint64_t{kSubBuckets} + static_cast<uint64_t>(sub) + 1) << k) - 1;
}

void Histogram::Record(uint64_t value) {
  int b = BucketFor(value);
  b = std::min(b, kNumBuckets - 1);
  ++buckets_[static_cast<size_t>(b)];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) {
    buckets_[static_cast<size_t>(i)] += other.buckets_[static_cast<size_t>(i)];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Histogram::Reset() {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0;
  min_ = std::numeric_limits<uint64_t>::max();
  max_ = 0;
}

double Histogram::mean() const {
  return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                : 0.0;
}

uint64_t Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  const uint64_t target = static_cast<uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[static_cast<size_t>(i)];
    if (seen >= target && buckets_[static_cast<size_t>(i)] > 0) {
      return std::min(BucketUpperBound(i), max_);
    }
  }
  return max_;
}

std::string Histogram::ToString() const {
  return Format(
      "n=%llu mean=%.2f p50=%llu p95=%llu p99=%llu max=%llu",
      (unsigned long long)count_, mean(), (unsigned long long)Percentile(50),
      (unsigned long long)Percentile(95), (unsigned long long)Percentile(99),
      (unsigned long long)max());
}

}  // namespace ocb
