#include "util/lockdep.h"

#if defined(OCB_LOCKDEP_ENABLED)

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace ocb {
namespace lockdep {
namespace {

/// One entry on a thread's held-lock stack.
struct HeldLock {
  const LockClass* cls;
  const void* instance;
  uint64_t key;
};

/// The per-thread held-lock stack. Outermost acquisition first.
std::vector<HeldLock>& HeldStack() {
  thread_local std::vector<HeldLock> stack;
  return stack;
}

std::string Describe(const LockClass& cls, uint64_t key) {
  std::string s = cls.name;
  if (key != kNoKey) {
    s += "[key=" + std::to_string(key) + "]";
  }
  s += " (rank " + std::to_string(cls.rank) + ")";
  return s;
}

std::vector<std::string> DescribeStack(const std::vector<HeldLock>& stack) {
  std::vector<std::string> out;
  out.reserve(stack.size());
  for (const HeldLock& h : stack) out.push_back(Describe(*h.cls, h.key));
  return out;
}

/// The global lock-order graph: class-level edges observed so far, with
/// the held stack captured the first time each edge was seen, so a cycle
/// report can show *both* orders by name. Guarded by GraphMu(); the
/// thread-local seen-edge cache keeps hot acquisitions off this mutex.
struct Graph {
  // edge key: (from_id << 32) | to_id.
  std::unordered_map<uint64_t, std::vector<std::string>> edges;
  // adjacency for cycle detection, by class id.
  std::unordered_map<uint32_t, std::unordered_set<uint32_t>> adj;
  std::vector<const LockClass*> classes;  // id - 1 -> class.
};

std::mutex& GraphMu() {
  static std::mutex mu;
  return mu;
}

Graph& TheGraph() {
  static Graph* g = new Graph();  // leaked: outlives exit-time dtors.
  return *g;
}

FailureHandler& Handler() {
  static FailureHandler* h = new FailureHandler();
  return *h;
}

uint32_t ClassId(const LockClass& cls) {
  uint32_t id = cls.id.load(std::memory_order_acquire);
  if (id != 0) return id;
  std::lock_guard<std::mutex> g(GraphMu());
  id = cls.id.load(std::memory_order_relaxed);
  if (id != 0) return id;
  TheGraph().classes.push_back(&cls);
  id = static_cast<uint32_t>(TheGraph().classes.size());
  cls.id.store(id, std::memory_order_release);
  return id;
}

/// DFS: is `to` already an ancestor of `from` in the order graph (i.e.
/// would adding from->to close a cycle)? Caller holds GraphMu().
bool Reaches(const Graph& g, uint32_t from, uint32_t to,
             std::unordered_set<uint32_t>& visited) {
  if (from == to) return true;
  if (!visited.insert(from).second) return false;
  auto it = g.adj.find(from);
  if (it == g.adj.end()) return false;
  for (uint32_t next : it->second) {
    if (Reaches(g, next, to, visited)) return true;
  }
  return false;
}

void Fail(Violation v) {
  std::ostringstream os;
  os << "lockdep: " << v.kind << " acquiring " << v.acquiring << "\n";
  os << "  held by this thread (outermost first):\n";
  if (v.held.empty()) os << "    <none>\n";
  for (const std::string& h : v.held) os << "    " << h << "\n";
  if (!v.prior_order.empty()) {
    os << "  opposite order first observed while holding:\n";
    for (const std::string& h : v.prior_order) os << "    " << h << "\n";
  }
  os << "  hierarchy: ARCHITECTURE.md \"Ordering rules\" / "
        "src/util/lockdep.h rank table\n";
  v.message = os.str();

  FailureHandler handler;
  {
    std::lock_guard<std::mutex> g(GraphMu());
    handler = Handler();
  }
  if (handler) {
    handler(v);
    return;
  }
  std::fprintf(stderr, "%s", v.message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void OnAcquire(const LockClass& cls, const void* instance, uint64_t key,
               bool trylock) {
  std::vector<HeldLock>& stack = HeldStack();

  // A successful try-lock never blocked, so it cannot have deadlocked:
  // record the hold (dependencies *under* it are real) but run no checks
  // and add no edge. Eviction relies on this — victim frame latches are
  // try-locked in LRU order, not page order, and may still carry the
  // evicted page's key until the new resident rebinds it.
  if (trylock) {
    stack.push_back({&cls, instance, key});
    return;
  }

  // (a) same-instance re-entry and same-class sibling checks.
  for (const HeldLock& h : stack) {
    if (h.instance == instance) {
      Fail({"recursion", Describe(cls, key), DescribeStack(stack), {}, ""});
      break;
    }
    if (h.cls != &cls) continue;
    if (!(cls.flags & kOrderedByKey)) {
      Fail({"recursion", Describe(cls, key), DescribeStack(stack), {}, ""});
      break;
    }
    if (h.key == kNoKey || key == kNoKey || key <= h.key) {
      Fail({"key-order", Describe(cls, key), DescribeStack(stack), {}, ""});
      break;
    }
  }

  // (b) rank inversion: every held lock must rank at or above (i.e. have a
  // numerically smaller-or-equal rank than) the one being acquired; equal
  // rank only within the same kOrderedByKey class (checked above).
  for (const HeldLock& h : stack) {
    if (h.cls->rank > cls.rank ||
        (h.cls->rank == cls.rank && h.cls != &cls)) {
      Fail({"rank-inversion", Describe(cls, key), DescribeStack(stack), {},
            ""});
      break;
    }
  }

  // (c) class-level order graph: record innermost-held -> acquired and
  // check the reverse path does not already exist. Per-thread edge cache
  // avoids the global mutex once an edge is known.
  if (!stack.empty() && stack.back().cls != &cls) {
    uint32_t from = ClassId(*stack.back().cls);
    uint32_t to = ClassId(cls);
    uint64_t edge = (static_cast<uint64_t>(from) << 32) | to;
    thread_local std::unordered_set<uint64_t> seen;
    if (seen.insert(edge).second) {
      std::vector<std::string> prior;
      bool cycle = false;
      {
        std::lock_guard<std::mutex> g(GraphMu());
        Graph& graph = TheGraph();
        if (graph.edges.find(edge) == graph.edges.end()) {
          std::unordered_set<uint32_t> visited;
          if (Reaches(graph, to, from, visited)) {
            cycle = true;
            uint64_t reverse = (static_cast<uint64_t>(to) << 32) | from;
            auto it = graph.edges.find(reverse);
            if (it != graph.edges.end()) prior = it->second;
          } else {
            graph.edges.emplace(edge, DescribeStack(stack));
            graph.adj[from].insert(to);
          }
        }
      }
      if (cycle) {
        seen.erase(edge);
        Fail({"order-cycle", Describe(cls, key), DescribeStack(stack),
              std::move(prior), ""});
      }
    }
  }

  stack.push_back({&cls, instance, key});
}

void OnRelease(const LockClass& cls, const void* instance) {
  (void)cls;
  std::vector<HeldLock>& stack = HeldStack();
  for (size_t i = stack.size(); i > 0; --i) {
    if (stack[i - 1].instance == instance) {
      stack.erase(stack.begin() + static_cast<ptrdiff_t>(i - 1));
      return;
    }
  }
  // Releasing a lock we never saw acquired: tolerated (a guard adopted
  // from a lockdep-exempt path), not a violation.
}

void OnSetKey(const void* instance, uint64_t key) {
  for (HeldLock& h : HeldStack()) {
    if (h.instance == instance) h.key = key;
  }
}

size_t HeldCount() { return HeldStack().size(); }

void SetFailureHandlerForTest(FailureHandler handler) {
  std::lock_guard<std::mutex> g(GraphMu());
  Handler() = std::move(handler);
}

void ResetGraphForTest() {
  std::lock_guard<std::mutex> g(GraphMu());
  TheGraph().edges.clear();
  TheGraph().adj.clear();
}

}  // namespace lockdep
}  // namespace ocb

#endif  // OCB_LOCKDEP_ENABLED
