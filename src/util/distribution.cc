#include "util/distribution.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/format.h"

namespace ocb {

const char* DistributionKindToString(DistributionKind kind) {
  switch (kind) {
    case DistributionKind::kConstant:
      return "Constant";
    case DistributionKind::kUniform:
      return "Uniform";
    case DistributionKind::kZipf:
      return "Zipf";
    case DistributionKind::kGaussian:
      return "Gaussian";
    case DistributionKind::kSpecialRefZone:
      return "Special";
  }
  return "Unknown";
}

Status DistributionSpec::Validate() const {
  switch (kind) {
    case DistributionKind::kZipf:
      if (theta <= 0.0 || theta > 10.0) {
        return Status::InvalidArgument("zipf theta must be in (0, 10]");
      }
      break;
    case DistributionKind::kGaussian:
      if (stddev_fraction <= 0.0) {
        return Status::InvalidArgument("gaussian stddev must be positive");
      }
      break;
    case DistributionKind::kSpecialRefZone:
      if (ref_zone < 0) {
        return Status::InvalidArgument("ref_zone must be non-negative");
      }
      if (locality_prob < 0.0 || locality_prob > 1.0) {
        return Status::InvalidArgument("locality_prob must be in [0, 1]");
      }
      break;
    case DistributionKind::kConstant:
    case DistributionKind::kUniform:
      break;
  }
  return Status::OK();
}

std::string DistributionSpec::ToString() const {
  switch (kind) {
    case DistributionKind::kConstant:
      return Format("Constant(%lld)",
                    static_cast<long long>(constant_value));
    case DistributionKind::kUniform:
      return "Uniform";
    case DistributionKind::kZipf:
      return Format("Zipf(theta=%.2f)", theta);
    case DistributionKind::kGaussian:
      return Format("Gaussian(sd=%.2f)", stddev_fraction);
    case DistributionKind::kSpecialRefZone:
      return Format("Special(zone=%lld, p=%.2f)",
                    static_cast<long long>(ref_zone), locality_prob);
  }
  return "Unknown";
}

namespace {

/// Zipf draw over [1, n] by rejection-inversion (Devroye); O(1) per draw,
/// no per-range precomputation, so it works with OCB's varying domains.
int64_t ZipfDraw(LewisPayneRng* rng, int64_t n, double theta) {
  if (n <= 1) return 1;
  // For theta == 1 the transform below degenerates; nudge it.
  const double t = (std::abs(theta - 1.0) < 1e-9) ? 1.0 + 1e-9 : theta;
  const double one_minus_t = 1.0 - t;
  const double zeta_bound =
      (std::pow(static_cast<double>(n), one_minus_t) - 1.0) / one_minus_t;
  for (int attempt = 0; attempt < 1000; ++attempt) {
    const double u = rng->NextDouble();
    const double x =
        std::pow(u * one_minus_t * zeta_bound + 1.0, 1.0 / one_minus_t);
    const int64_t k = std::clamp<int64_t>(static_cast<int64_t>(x), 1, n);
    // Accept with ratio of the true pmf to the dominating envelope.
    const double ratio = std::pow(static_cast<double>(k) / x, t);
    if (rng->NextDouble() <= ratio) return k;
  }
  return rng->UniformInt(1, n);  // Fallback; statistically unreachable.
}

}  // namespace

int64_t DrawFromDistribution(const DistributionSpec& spec, LewisPayneRng* rng,
                             int64_t lo, int64_t hi, int64_t center) {
  assert(rng != nullptr);
  if (lo > hi) std::swap(lo, hi);
  switch (spec.kind) {
    case DistributionKind::kConstant:
      return std::clamp(spec.constant_value, lo, hi);
    case DistributionKind::kUniform:
      return rng->UniformInt(lo, hi);
    case DistributionKind::kZipf:
      return lo + ZipfDraw(rng, hi - lo + 1, spec.theta) - 1;
    case DistributionKind::kGaussian: {
      const double mid = 0.5 * (static_cast<double>(lo) + hi);
      const double sd =
          std::max(1e-9, spec.stddev_fraction * (static_cast<double>(hi) - lo));
      // Box–Muller; one draw per call keeps the stream deterministic.
      const double u1 = std::max(rng->NextDouble(), 1e-300);
      const double u2 = rng->NextDouble();
      const double z =
          std::sqrt(-2.0 * std::log(u1)) * std::cos(6.28318530717958647 * u2);
      const double v = std::round(mid + sd * z);
      return std::clamp<int64_t>(static_cast<int64_t>(v), lo, hi);
    }
    case DistributionKind::kSpecialRefZone: {
      if (rng->Bernoulli(spec.locality_prob)) {
        const int64_t zlo = std::max(lo, center - spec.ref_zone);
        const int64_t zhi = std::min(hi, center + spec.ref_zone);
        if (zlo <= zhi) return rng->UniformInt(zlo, zhi);
      }
      return rng->UniformInt(lo, hi);
    }
  }
  return lo;
}

}  // namespace ocb
