/// \file sync.h
/// \brief Annotated mutex types: Clang Thread Safety capabilities +
///        lockdep runtime hooks over std::mutex / std::shared_mutex.
///
/// Every mutex-owning class in the engine holds an ocb::Mutex or
/// ocb::SharedMutex instead of the std type. One wrapper serves both
/// checkers:
///
///   * It carries OCB_CAPABILITY, so `clang++ -Wthread-safety` verifies
///     each OCB_GUARDED_BY field is only touched under its mutex.
///   * Its lock/unlock paths call lockdep::OnAcquire/OnRelease (compiled
///     out unless -DOCB_LOCKDEP=ON), so the runtime validator sees every
///     acquisition with its lock class and intra-class ordering key.
///
/// The wrappers satisfy Lockable / SharedLockable, so std::unique_lock
/// and std::condition_variable_any work unchanged — but prefer the
/// annotated guards below (MutexLock, ReaderMutexLock, WriterMutexLock,
/// UniqueMutexLock): libstdc++'s std::lock_guard is not TSA-annotated,
/// so a std guard over an ocb::Mutex leaves the analysis blind to the
/// critical section.
///
/// Construction: `Mutex mu{lockdep::kSomeClass}` ties the instance to
/// its hierarchy rank; per-shard/per-stripe instances add a key
/// (`Mutex mu{lockdep::kBufferStripeClass, stripe_index}`). Rebindable
/// keys (a frame latch keyed by whichever page the frame holds) use
/// SetLockdepKey. When OCB_LOCKDEP is off the class reference and key
/// are still accepted — the constructor simply ignores them — so call
/// sites are identical in both builds.

#ifndef OCB_UTIL_SYNC_H_
#define OCB_UTIL_SYNC_H_

#include <atomic>
#include <mutex>
#include <shared_mutex>

#include "util/lockdep.h"
#include "util/thread_annotations.h"

namespace ocb {

namespace sync_internal {

#if defined(OCB_LOCKDEP_ENABLED)

/// Lockdep bookkeeping mixed into each wrapper: the lock class and the
/// instance's intra-class ordering key (atomic: rebindable keys are
/// updated by whoever owns the instance's lifecycle, read at lock time).
class LockdepBase {
 public:
  explicit LockdepBase(const lockdep::LockClass& cls,
                       uint64_t key = lockdep::kNoKey)
      : cls_(&cls), key_(key) {}

  void SetLockdepKey(uint64_t key) {
    key_.store(key, std::memory_order_relaxed);
    // Rebinding happens under an exclusive hold of this very lock (the
    // frame-install protocol), so fix up the holder's stack entry too.
    lockdep::OnSetKey(this, key);
  }

 protected:
  void NoteAcquire(bool trylock = false) const {
    lockdep::OnAcquire(*cls_, this, key_.load(std::memory_order_relaxed),
                       trylock);
  }
  void NoteRelease() const { lockdep::OnRelease(*cls_, this); }

 private:
  const lockdep::LockClass* cls_;
  std::atomic<uint64_t> key_;
};

#else  // !OCB_LOCKDEP_ENABLED — empty base, zero size, zero work.

class LockdepBase {
 public:
  explicit LockdepBase(const lockdep::LockClass&,
                       uint64_t = lockdep::kNoKey) {}

  void SetLockdepKey(uint64_t) {}

 protected:
  void NoteAcquire(bool = false) const {}
  void NoteRelease() const {}
};

#endif  // OCB_LOCKDEP_ENABLED

}  // namespace sync_internal

/// \brief std::mutex with a TSA capability and lockdep hooks.
class OCB_CAPABILITY("mutex") Mutex : public sync_internal::LockdepBase {
 public:
  explicit Mutex(const lockdep::LockClass& cls,
                 uint64_t key = lockdep::kNoKey)
      : LockdepBase(cls, key) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  // The capability attributes below are the caller-facing contract; the
  // bodies wrap unannotated std primitives, so each carries the analysis
  // exemption (TSA would otherwise demand a *visible* annotated
  // acquisition before the function returns).
  void lock() OCB_ACQUIRE() OCB_NO_THREAD_SAFETY_ANALYSIS {
    NoteAcquire();
    mu_.lock();
  }
  bool try_lock() OCB_TRY_ACQUIRE(true) OCB_NO_THREAD_SAFETY_ANALYSIS {
    if (!mu_.try_lock()) return false;
    NoteAcquire(/*trylock=*/true);
    return true;
  }
  void unlock() OCB_RELEASE() OCB_NO_THREAD_SAFETY_ANALYSIS {
    NoteRelease();
    mu_.unlock();
  }

  /// The wrapped mutex, for APIs that need the raw type. Bypasses both
  /// checkers — callers own the safety argument.
  std::mutex& native() OCB_RETURN_CAPABILITY(this) { return mu_; }

 private:
  std::mutex mu_;
};

/// \brief std::shared_mutex with a TSA capability and lockdep hooks.
///
/// Lockdep does not distinguish shared from exclusive holds: the
/// *ordering* rules are identical for both (an S/X pair taken in
/// opposite orders by two threads deadlocks just like X/X), so one
/// held-stack entry per hold is exactly right.
class OCB_CAPABILITY("shared_mutex") SharedMutex
    : public sync_internal::LockdepBase {
 public:
  explicit SharedMutex(const lockdep::LockClass& cls,
                       uint64_t key = lockdep::kNoKey)
      : LockdepBase(cls, key) {}

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() OCB_ACQUIRE() OCB_NO_THREAD_SAFETY_ANALYSIS {
    NoteAcquire();
    mu_.lock();
  }
  bool try_lock() OCB_TRY_ACQUIRE(true) OCB_NO_THREAD_SAFETY_ANALYSIS {
    if (!mu_.try_lock()) return false;
    NoteAcquire(/*trylock=*/true);
    return true;
  }
  void unlock() OCB_RELEASE() OCB_NO_THREAD_SAFETY_ANALYSIS {
    NoteRelease();
    mu_.unlock();
  }

  void lock_shared() OCB_ACQUIRE_SHARED() OCB_NO_THREAD_SAFETY_ANALYSIS {
    NoteAcquire();
    mu_.lock_shared();
  }
  bool try_lock_shared()
      OCB_TRY_ACQUIRE_SHARED(true) OCB_NO_THREAD_SAFETY_ANALYSIS {
    if (!mu_.try_lock_shared()) return false;
    NoteAcquire(/*trylock=*/true);
    return true;
  }
  void unlock_shared() OCB_RELEASE_SHARED() OCB_NO_THREAD_SAFETY_ANALYSIS {
    NoteRelease();
    mu_.unlock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// \brief RAII exclusive guard over Mutex (annotated std::lock_guard).
class OCB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) OCB_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() OCB_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// \brief RAII shared guard over SharedMutex (annotated shared_lock).
class OCB_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) OCB_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderMutexLock() OCB_RELEASE() { mu_.unlock_shared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// \brief RAII exclusive guard over SharedMutex.
class OCB_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) OCB_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterMutexLock() OCB_RELEASE() { mu_.unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// \brief Annotated std::unique_lock<Mutex>: relockable, so it works
/// with std::condition_variable_any waits (which unlock/relock through
/// the Lockable interface and therefore keep the lockdep stack honest).
class OCB_SCOPED_CAPABILITY UniqueMutexLock {
 public:
  // Bodies route through std::unique_lock, invisible to TSA — exempt
  // them; the attributes remain the caller-facing contract.
  explicit UniqueMutexLock(Mutex& mu)
      OCB_ACQUIRE(mu) OCB_NO_THREAD_SAFETY_ANALYSIS : lock_(mu) {}
  ~UniqueMutexLock() OCB_RELEASE() OCB_NO_THREAD_SAFETY_ANALYSIS {}

  UniqueMutexLock(const UniqueMutexLock&) = delete;
  UniqueMutexLock& operator=(const UniqueMutexLock&) = delete;

  void unlock() OCB_RELEASE() OCB_NO_THREAD_SAFETY_ANALYSIS {
    lock_.unlock();
  }
  void lock() OCB_ACQUIRE() OCB_NO_THREAD_SAFETY_ANALYSIS {
    lock_.lock();
  }

  /// For cv.wait(handle.std_lock(), pred); the wait's internal
  /// unlock/relock flows through Mutex::lock/unlock and stays visible
  /// to lockdep. TSA cannot follow it — wait sites annotate the
  /// enclosing function instead.
  std::unique_lock<Mutex>& std_lock() { return lock_; }

 private:
  std::unique_lock<Mutex> lock_;
};

}  // namespace ocb

#endif  // OCB_UTIL_SYNC_H_
