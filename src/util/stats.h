/// \file stats.h
/// \brief Streaming statistics accumulators used by OCB's metrics layer:
///        Welford mean/variance and a log-bucketed histogram for
///        approximate percentiles.

#ifndef OCB_UTIL_STATS_H_
#define OCB_UTIL_STATS_H_

#include <array>
#include <cstdint>
#include <limits>
#include <string>

namespace ocb {

/// \brief Numerically stable streaming accumulator (Welford's algorithm).
class Accumulator {
 public:
  /// Adds one sample.
  void Add(double x);

  /// Merges another accumulator into this one (parallel-clients use case).
  void Merge(const Accumulator& other);

  /// Clears all samples.
  void Reset();

  uint64_t count() const { return count_; }
  double sum() const { return mean_ * static_cast<double>(count_); }
  double mean() const { return count_ ? mean_ : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  double variance() const;
  double stddev() const;

  /// "n=1000 mean=12.3 sd=1.1 min=10 max=17".
  std::string ToString() const;

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// \brief Histogram over non-negative integer values with ~4% relative
///        bucket error, supporting approximate percentile queries.
///
/// Buckets are arranged in powers of two with 16 linear sub-buckets each
/// (HDR-histogram style, fixed footprint, no allocation on the record path).
class Histogram {
 public:
  Histogram();

  void Record(uint64_t value);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  uint64_t min() const { return count_ ? min_ : 0; }
  uint64_t max() const { return count_ ? max_ : 0; }
  double mean() const;

  /// Approximate value at percentile \p p in [0, 100].
  uint64_t Percentile(double p) const;

  /// "n=... mean=... p50=... p95=... p99=... max=...".
  std::string ToString() const;

 private:
  static constexpr int kSubBucketBits = 4;  // 16 sub-buckets per octave.
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kOctaves = 64;
  static constexpr int kNumBuckets = kOctaves * kSubBuckets;

  static int BucketFor(uint64_t value);
  static uint64_t BucketUpperBound(int bucket);

  std::array<uint64_t, kNumBuckets> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = std::numeric_limits<uint64_t>::max();
  uint64_t max_ = 0;
};

}  // namespace ocb

#endif  // OCB_UTIL_STATS_H_
