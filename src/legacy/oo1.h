/// \file oo1.h
/// \brief Native implementation of the OO1 ("Objects Operations 1",
///        Cattell) benchmark (paper §2.1), built on the oodb substrate.
///
/// Database: Part and Connection classes. Each part is connected, through
/// three Connection objects, to three other parts; each connection
/// references a source (From) and destination (To) part. Locality: part #i
/// links to parts with ids in [i - RefZone, i + RefZone] with probability
/// 0.9, otherwise anywhere.
///
/// Workload (each measured over `repetitions` runs):
///   * Lookup    — access 1000 randomly selected parts.
///   * Traversal — from a random root part, explore the part tree depth
///     first through the Connection/To references, up to seven hops (3280
///     parts, duplicates possible). A reverse traversal swaps To and From
///     (implemented through BackRefs).
///   * Insert    — add 100 parts and their connections, commit.
///
/// OO1 serves two roles here: the validation baseline OCB is compared to
/// (through DSTC-CluB, Table 4), and a genericity target OCB approximates.

#ifndef OCB_LEGACY_OO1_H_
#define OCB_LEGACY_OO1_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "oodb/database.h"
#include "storage/storage_options.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"

namespace ocb {

/// OO1 configuration.
struct OO1Options {
  uint64_t num_parts = 20000;
  int64_t ref_zone = 100;        ///< Locality half-width.
  double locality_prob = 0.9;
  uint32_t connections_per_part = 3;
  uint32_t part_payload_bytes = 50;        ///< x, y, type, build fields.
  uint32_t connection_payload_bytes = 30;  ///< type, length fields.
  uint64_t seed = 41;

  uint32_t lookups_per_run = 1000;
  uint32_t traversal_depth = 7;
  uint32_t inserts_per_run = 100;
  uint32_t repetitions = 10;
};

/// Per-operation measurement (one benchmark row).
struct OO1OpResult {
  std::string op;
  uint32_t runs = 0;
  Accumulator sim_nanos;         ///< Simulated response time per run.
  Accumulator io_reads;          ///< Page reads per run.
  Accumulator objects_accessed;  ///< Objects touched per run.
};

/// \brief OO1 database + workload over an oodb Database.
class OO1Benchmark {
 public:
  /// Class ids within the OO1 schema.
  static constexpr ClassId kPartClass = 0;
  static constexpr ClassId kConnectionClass = 1;

  explicit OO1Benchmark(OO1Options options = OO1Options());

  /// Builds the Part/Connection database into \p db (must be empty).
  Status Build(Database* db);

  /// The three OO1 operations. Build() must have succeeded.
  Result<OO1OpResult> RunLookups();
  Result<OO1OpResult> RunTraversals(bool reverse = false);
  Result<OO1OpResult> RunInserts();

  /// One traversal from \p root (returns objects accessed); exposed for
  /// DSTC-CluB, which reuses OO1's traversal as its only transaction.
  Result<uint64_t> TraverseFrom(Oid root, uint32_t depth, bool reverse);

  /// Oid of part #index (creation order).
  Oid PartOid(uint64_t index) const { return parts_[index]; }
  uint64_t part_count() const { return parts_.size(); }

  Database* database() { return db_; }
  LewisPayneRng* rng() { return &rng_; }
  const OO1Options& options() const { return options_; }

 private:
  /// Draws a target part id near \p source_id per the RefZone rule.
  uint64_t DrawTargetPart(uint64_t source_id);

  /// Creates one part plus its outgoing connections.
  Status WirePart(uint64_t part_index);

  OO1Options options_;
  Database* db_ = nullptr;
  LewisPayneRng rng_;
  std::vector<Oid> parts_;
};

}  // namespace ocb

#endif  // OCB_LEGACY_OO1_H_
