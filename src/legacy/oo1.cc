#include "legacy/oo1.h"

#include <algorithm>

#include "util/format.h"

namespace ocb {

OO1Benchmark::OO1Benchmark(OO1Options options)
    : options_(options), rng_(options.seed) {}

uint64_t OO1Benchmark::DrawTargetPart(uint64_t source_id) {
  const int64_t n = static_cast<int64_t>(parts_.size());
  const int64_t id = static_cast<int64_t>(source_id);
  if (rng_.Bernoulli(options_.locality_prob)) {
    const int64_t lo = std::max<int64_t>(0, id - options_.ref_zone);
    const int64_t hi = std::min<int64_t>(n - 1, id + options_.ref_zone);
    return static_cast<uint64_t>(rng_.UniformInt(lo, hi));
  }
  return static_cast<uint64_t>(rng_.UniformInt(0, n - 1));
}

Status OO1Benchmark::WirePart(uint64_t part_index) {
  const Oid part = parts_[part_index];
  for (uint32_t k = 0; k < options_.connections_per_part; ++k) {
    OCB_ASSIGN_OR_RETURN(Oid connection,
                         db_->CreateObject(kConnectionClass));
    const uint64_t target_index = DrawTargetPart(part_index);
    OCB_RETURN_NOT_OK(db_->SetReference(part, k, connection));
    OCB_RETURN_NOT_OK(db_->SetReference(connection, 0, part));  // From.
    OCB_RETURN_NOT_OK(
        db_->SetReference(connection, 1, parts_[target_index]));  // To.
  }
  return Status::OK();
}

Status OO1Benchmark::Build(Database* db) {
  db_ = db;
  if (db_->object_count() != 0) {
    return Status::InvalidArgument("database is not empty");
  }
  Schema schema;
  schema.SetRefTypes(Schema::DefaultTraits(3));
  constexpr RefTypeId kAssoc = 2;  // Cyclic association type.

  ClassDescriptor part;
  part.id = kPartClass;
  part.maxnref = options_.connections_per_part;
  part.basesize = options_.part_payload_bytes;
  part.instance_size = part.basesize;
  part.tref.assign(part.maxnref, kAssoc);
  part.cref.assign(part.maxnref, kConnectionClass);
  OCB_RETURN_NOT_OK(schema.AddClass(std::move(part)));

  ClassDescriptor connection;
  connection.id = kConnectionClass;
  connection.maxnref = 2;  // From, To.
  connection.basesize = options_.connection_payload_bytes;
  connection.instance_size = connection.basesize;
  connection.tref.assign(2, kAssoc);
  connection.cref.assign(2, kPartClass);
  OCB_RETURN_NOT_OK(schema.AddClass(std::move(connection)));

  db_->SetSchema(std::move(schema));

  ScopedIoScope scope(db_->disk(), IoScope::kGeneration);
  // Step 1 (paper): create all Part objects (the "dictionary" is parts_).
  parts_.reserve(options_.num_parts);
  for (uint64_t i = 0; i < options_.num_parts; ++i) {
    OCB_ASSIGN_OR_RETURN(Oid oid, db_->CreateObject(kPartClass));
    parts_.push_back(oid);
  }
  // Step 2: for each part, choose three parts and create the connections.
  for (uint64_t i = 0; i < options_.num_parts; ++i) {
    OCB_RETURN_NOT_OK(WirePart(i));
  }
  return db_->buffer_pool()->FlushAll();
}

Result<uint64_t> OO1Benchmark::TraverseFrom(Oid root, uint32_t depth,
                                            bool reverse) {
  OCB_ASSIGN_OR_RETURN(Object part, db_->GetObject(root));
  uint64_t accessed = 1;

  // Recursive lambda: depth-first over Connection/To (or backward over
  // connections whose To is the current part).
  auto recurse = [&](auto&& self, const Object& current,
                     uint32_t remaining) -> Status {
    if (remaining == 0) return Status::OK();
    if (!reverse) {
      for (size_t k = 0; k < current.orefs.size(); ++k) {
        const Oid conn_oid = current.orefs[k];
        if (conn_oid == kInvalidOid) continue;
        OCB_ASSIGN_OR_RETURN(
            Object conn, db_->CrossLink(current.oid, conn_oid, 2, false));
        ++accessed;
        const Oid to = conn.orefs.size() > 1 ? conn.orefs[1] : kInvalidOid;
        if (to == kInvalidOid) continue;
        OCB_ASSIGN_OR_RETURN(Object next,
                             db_->CrossLink(conn.oid, to, 2, false));
        ++accessed;
        OCB_RETURN_NOT_OK(self(self, next, remaining - 1));
      }
      return Status::OK();
    }
    // Reverse: find connections that point *to* the current part, then hop
    // to their From part — OO1's "swap To and From" direction.
    for (Oid conn_oid : current.backrefs) {
      OCB_ASSIGN_OR_RETURN(
          Object conn, db_->CrossLink(current.oid, conn_oid, 2, true));
      ++accessed;
      if (conn.class_id != kConnectionClass || conn.orefs.size() < 2) {
        continue;
      }
      if (conn.orefs[1] != current.oid) continue;  // Part was From, skip.
      const Oid from = conn.orefs[0];
      if (from == kInvalidOid) continue;
      OCB_ASSIGN_OR_RETURN(Object next,
                           db_->CrossLink(conn.oid, from, 2, true));
      ++accessed;
      OCB_RETURN_NOT_OK(self(self, next, remaining - 1));
    }
    return Status::OK();
  };
  OCB_RETURN_NOT_OK(recurse(recurse, part, depth));
  return accessed;
}

Result<OO1OpResult> OO1Benchmark::RunLookups() {
  OO1OpResult result;
  result.op = "Lookup";
  ScopedIoScope scope(db_->disk(), IoScope::kTransaction);
  for (uint32_t run = 0; run < options_.repetitions; ++run) {
    const uint64_t nanos_start = db_->sim_clock()->now_nanos();
    const uint64_t reads_start =
        db_->disk()->counters(IoScope::kTransaction).reads;
    for (uint32_t i = 0; i < options_.lookups_per_run; ++i) {
      const uint64_t index = static_cast<uint64_t>(
          rng_.UniformInt(0, static_cast<int64_t>(parts_.size()) - 1));
      OCB_ASSIGN_OR_RETURN(Object part, db_->GetObject(parts_[index]));
      (void)part;
    }
    result.sim_nanos.Add(
        static_cast<double>(db_->sim_clock()->now_nanos() - nanos_start));
    result.io_reads.Add(static_cast<double>(
        db_->disk()->counters(IoScope::kTransaction).reads - reads_start));
    result.objects_accessed.Add(options_.lookups_per_run);
    ++result.runs;
  }
  return result;
}

Result<OO1OpResult> OO1Benchmark::RunTraversals(bool reverse) {
  OO1OpResult result;
  result.op = reverse ? "ReverseTraversal" : "Traversal";
  ScopedIoScope scope(db_->disk(), IoScope::kTransaction);
  for (uint32_t run = 0; run < options_.repetitions; ++run) {
    const uint64_t index = static_cast<uint64_t>(
        rng_.UniformInt(0, static_cast<int64_t>(parts_.size()) - 1));
    const uint64_t nanos_start = db_->sim_clock()->now_nanos();
    const uint64_t reads_start =
        db_->disk()->counters(IoScope::kTransaction).reads;
    OCB_ASSIGN_OR_RETURN(
        uint64_t accessed,
        TraverseFrom(parts_[index], options_.traversal_depth, reverse));
    result.sim_nanos.Add(
        static_cast<double>(db_->sim_clock()->now_nanos() - nanos_start));
    result.io_reads.Add(static_cast<double>(
        db_->disk()->counters(IoScope::kTransaction).reads - reads_start));
    result.objects_accessed.Add(static_cast<double>(accessed));
    ++result.runs;
  }
  return result;
}

Result<OO1OpResult> OO1Benchmark::RunInserts() {
  OO1OpResult result;
  result.op = "Insert";
  ScopedIoScope scope(db_->disk(), IoScope::kTransaction);
  for (uint32_t run = 0; run < options_.repetitions; ++run) {
    const uint64_t nanos_start = db_->sim_clock()->now_nanos();
    const uint64_t reads_start =
        db_->disk()->counters(IoScope::kTransaction).reads;
    for (uint32_t i = 0; i < options_.inserts_per_run; ++i) {
      OCB_ASSIGN_OR_RETURN(Oid oid, db_->CreateObject(kPartClass));
      parts_.push_back(oid);
      OCB_RETURN_NOT_OK(WirePart(parts_.size() - 1));
    }
    OCB_RETURN_NOT_OK(db_->buffer_pool()->FlushAll());  // Commit.
    result.sim_nanos.Add(
        static_cast<double>(db_->sim_clock()->now_nanos() - nanos_start));
    result.io_reads.Add(static_cast<double>(
        db_->disk()->counters(IoScope::kTransaction).reads - reads_start));
    result.objects_accessed.Add(options_.inserts_per_run * 4.0);
    ++result.runs;
  }
  return result;
}

}  // namespace ocb
