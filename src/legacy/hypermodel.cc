#include "legacy/hypermodel.h"

#include <algorithm>

namespace ocb {

HyperModelBenchmark::HyperModelBenchmark(HyperModelOptions options)
    : options_(options), rng_(options.seed) {}

Status HyperModelBenchmark::Build(Database* db) {
  db_ = db;
  if (db_->object_count() != 0) {
    return Status::InvalidArgument("database is not empty");
  }
  Schema schema;
  schema.SetRefTypes(Schema::DefaultTraits(3));

  ClassDescriptor node;
  node.id = kNodeClass;
  node.maxnref = options_.fanout + 2;  // children + partOf + refTo.
  node.basesize = options_.node_payload_bytes;
  node.instance_size = node.basesize;
  node.tref.assign(node.maxnref, kAssociation);
  for (uint32_t j = 0; j < options_.fanout; ++j) node.tref[j] = kAggregation;
  node.cref.assign(node.maxnref, kNodeClass);
  OCB_RETURN_NOT_OK(schema.AddClass(std::move(node)));
  db_->SetSchema(std::move(schema));
  partof_slot_ = options_.fanout;
  refto_slot_ = options_.fanout + 1;

  ScopedIoScope scope(db_->disk(), IoScope::kGeneration);
  // Aggregation tree: a full `fanout`-ary tree, built level by level so
  // children are created (and thus placed) near their parents.
  std::vector<Oid> frontier;
  OCB_ASSIGN_OR_RETURN(Oid root, db_->CreateObject(kNodeClass));
  nodes_.push_back(root);
  frontier.push_back(root);
  for (uint32_t level = 0; level < options_.levels; ++level) {
    std::vector<Oid> next;
    next.reserve(frontier.size() * options_.fanout);
    for (Oid parent : frontier) {
      for (uint32_t c = 0; c < options_.fanout; ++c) {
        OCB_ASSIGN_OR_RETURN(Oid child, db_->CreateObject(kNodeClass));
        nodes_.push_back(child);
        OCB_RETURN_NOT_OK(db_->SetReference(parent, c, child));
        next.push_back(child);
      }
    }
    frontier = std::move(next);
  }
  // partOf and refTo: random oriented links across the hypertext.
  const int64_t n = static_cast<int64_t>(nodes_.size());
  for (int64_t i = 0; i < n; ++i) {
    const Oid part_of =
        nodes_[static_cast<size_t>(rng_.UniformInt(0, n - 1))];
    const Oid ref_to =
        nodes_[static_cast<size_t>(rng_.UniformInt(0, n - 1))];
    Status st = db_->SetReference(nodes_[static_cast<size_t>(i)],
                                  partof_slot_, part_of);
    if (!st.ok() && !st.IsNoSpace()) return st;
    st = db_->SetReference(nodes_[static_cast<size_t>(i)], refto_slot_,
                           ref_to);
    if (!st.ok() && !st.IsNoSpace()) return st;
  }
  return db_->buffer_pool()->FlushAll();
}

std::vector<Oid> HyperModelBenchmark::DrawInputs() {
  std::vector<Oid> inputs;
  inputs.reserve(options_.inputs_per_operation);
  for (uint32_t i = 0; i < options_.inputs_per_operation; ++i) {
    inputs.push_back(nodes_[static_cast<size_t>(
        rng_.UniformInt(0, static_cast<int64_t>(nodes_.size()) - 1))]);
  }
  return inputs;
}

template <typename Body>
Result<HyperModelOpResult> HyperModelBenchmark::RunProtocol(
    const std::string& name, const std::vector<Oid>& inputs, Body&& body) {
  HyperModelOpResult result;
  result.op = name;
  ScopedIoScope scope(db_->disk(), IoScope::kTransaction);

  // Cold run: the 50 precomputed inputs, once each.
  uint64_t reads_start = db_->disk()->counters(IoScope::kTransaction).reads;
  uint64_t nanos_start = db_->sim_clock()->now_nanos();
  uint64_t touched = 0;
  for (Oid input : inputs) {
    OCB_ASSIGN_OR_RETURN(uint64_t t, body(input));
    touched += t;
  }
  result.cold_ios = static_cast<double>(
      db_->disk()->counters(IoScope::kTransaction).reads - reads_start);
  result.cold_nanos = db_->sim_clock()->now_nanos() - nanos_start;
  result.objects_touched = touched;

  // Warm run: same inputs again, exposing the cache.
  reads_start = db_->disk()->counters(IoScope::kTransaction).reads;
  nanos_start = db_->sim_clock()->now_nanos();
  for (Oid input : inputs) {
    OCB_ASSIGN_OR_RETURN(uint64_t t, body(input));
    (void)t;
  }
  result.warm_ios = static_cast<double>(
      db_->disk()->counters(IoScope::kTransaction).reads - reads_start);
  result.warm_nanos = db_->sim_clock()->now_nanos() - nanos_start;
  return result;
}

Result<HyperModelOpResult> HyperModelBenchmark::NameLookup() {
  return RunProtocol("NameLookup", DrawInputs(),
                     [&](Oid input) -> Result<uint64_t> {
                       OCB_ASSIGN_OR_RETURN(Object node,
                                            db_->GetObject(input));
                       (void)node;
                       return uint64_t{1};
                     });
}

Result<HyperModelOpResult> HyperModelBenchmark::RangeLookup() {
  // Retrieve the nodes whose derived "hundred" attribute falls in a range;
  // without an attribute index this scans the extent (as HyperModel's
  // B-tree-less implementations did).
  return RunProtocol(
      "RangeLookup", DrawInputs(), [&](Oid input) -> Result<uint64_t> {
        const uint32_t lo = HundredOf(input) % (100 - options_.range_width);
        uint64_t touched = 0;
        for (Oid oid : nodes_) {
          OCB_ASSIGN_OR_RETURN(Object node, db_->GetObject(oid));
          (void)node;
          ++touched;
          const uint32_t h = HundredOf(oid);
          if (h >= lo && h < lo + options_.range_width) {
            // Qualifies; a real application would collect it.
          }
        }
        return touched;
      });
}

Result<HyperModelOpResult> HyperModelBenchmark::GroupLookup() {
  // Follow each relationship one level from the input node.
  return RunProtocol(
      "GroupLookup", DrawInputs(), [&](Oid input) -> Result<uint64_t> {
        OCB_ASSIGN_OR_RETURN(Object node, db_->GetObject(input));
        uint64_t touched = 1;
        for (size_t s = 0; s < node.orefs.size(); ++s) {
          if (node.orefs[s] == kInvalidOid) continue;
          auto child = db_->CrossLink(node.oid, node.orefs[s],
                                      s < options_.fanout ? kAggregation
                                                          : kAssociation,
                                      false);
          if (child.ok()) ++touched;
        }
        return touched;
      });
}

Result<HyperModelOpResult> HyperModelBenchmark::ReferenceLookup() {
  // Reverse group lookup: one level through BackRefs.
  return RunProtocol(
      "ReferenceLookup", DrawInputs(), [&](Oid input) -> Result<uint64_t> {
        OCB_ASSIGN_OR_RETURN(Object node, db_->GetObject(input));
        uint64_t touched = 1;
        for (Oid referer : node.backrefs) {
          auto parent =
              db_->CrossLink(node.oid, referer, kAssociation, true);
          if (parent.ok()) ++touched;
        }
        return touched;
      });
}

Result<HyperModelOpResult> HyperModelBenchmark::SequentialScan() {
  // Visit all the nodes. One input suffices; keep the 50-input protocol
  // with a single shared input for uniform reporting.
  std::vector<Oid> single = {nodes_.front()};
  return RunProtocol("SequentialScan", single,
                     [&](Oid) -> Result<uint64_t> {
                       uint64_t touched = 0;
                       for (Oid oid : nodes_) {
                         OCB_ASSIGN_OR_RETURN(Object node,
                                              db_->GetObject(oid));
                         (void)node;
                         ++touched;
                       }
                       return touched;
                     });
}

Result<HyperModelOpResult> HyperModelBenchmark::ClosureTraversal() {
  // Group lookup through aggregation, to a predefined depth.
  return RunProtocol(
      "ClosureTraversal", DrawInputs(), [&](Oid input) -> Result<uint64_t> {
        uint64_t touched = 0;
        auto recurse = [&](auto&& self, Oid oid,
                           uint32_t remaining) -> Status {
          OCB_ASSIGN_OR_RETURN(Object node, db_->GetObject(oid));
          ++touched;
          if (remaining == 0) return Status::OK();
          for (uint32_t c = 0; c < options_.fanout; ++c) {
            if (c >= node.orefs.size() || node.orefs[c] == kInvalidOid) {
              continue;
            }
            OCB_RETURN_NOT_OK(self(self, node.orefs[c], remaining - 1));
          }
          return Status::OK();
        };
        OCB_RETURN_NOT_OK(recurse(recurse, input, options_.closure_depth));
        return touched;
      });
}

Result<HyperModelOpResult> HyperModelBenchmark::Editing() {
  // Update one node: read, rewrite in place (same size), commit at end of
  // the run (the FlushAll is part of the protocol's update commit).
  auto result = RunProtocol("Editing", DrawInputs(),
                            [&](Oid input) -> Result<uint64_t> {
                              OCB_ASSIGN_OR_RETURN(Object node,
                                                   db_->GetObject(input));
                              OCB_RETURN_NOT_OK(db_->PutObject(node));
                              return uint64_t{1};
                            });
  if (result.ok()) {
    Status st = db_->buffer_pool()->FlushAll();
    if (!st.ok()) return st;
  }
  return result;
}

Result<std::vector<HyperModelOpResult>> HyperModelBenchmark::RunAll() {
  std::vector<HyperModelOpResult> rows;
  OCB_ASSIGN_OR_RETURN(HyperModelOpResult r1, NameLookup());
  rows.push_back(r1);
  OCB_ASSIGN_OR_RETURN(HyperModelOpResult r2, RangeLookup());
  rows.push_back(r2);
  OCB_ASSIGN_OR_RETURN(HyperModelOpResult r3, GroupLookup());
  rows.push_back(r3);
  OCB_ASSIGN_OR_RETURN(HyperModelOpResult r4, ReferenceLookup());
  rows.push_back(r4);
  OCB_ASSIGN_OR_RETURN(HyperModelOpResult r5, SequentialScan());
  rows.push_back(r5);
  OCB_ASSIGN_OR_RETURN(HyperModelOpResult r6, ClosureTraversal());
  rows.push_back(r6);
  OCB_ASSIGN_OR_RETURN(HyperModelOpResult r7, Editing());
  rows.push_back(r7);
  return rows;
}

}  // namespace ocb
