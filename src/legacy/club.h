/// \file club.h
/// \brief DSTC-CluB — the DSTC Clustering Benchmark (Bullat & Schneider),
///        derived from OO1, reimplemented for the Table 4 comparison.
///
/// DSTC-CluB runs a single transaction type — OO1's depth-first traversal —
/// over the OO1 Part/Connection database and measures the number of page
/// I/Os per traversal *before* and *after* the clustering technique
/// reorganizes the database, reporting their ratio as the gain factor.
/// Because its workload is one stereotyped traversal on a semantically
/// limited base, its access patterns are maximally clusterable — which is
/// exactly why the paper contrasts it with OCB's diversified workload
/// (Tables 4 vs 5).

#ifndef OCB_LEGACY_CLUB_H_
#define OCB_LEGACY_CLUB_H_

#include <limits>
#include <memory>

#include "clustering/policy.h"
#include "legacy/oo1.h"
#include "oodb/database.h"
#include "util/status.h"

namespace ocb {

/// DSTC-CluB configuration.
struct ClubOptions {
  OO1Options oo1;             ///< Underlying OO1 database parameters.
  uint32_t warmup_traversals = 200;   ///< Observed by the policy ("before").
  uint32_t measured_traversals = 50;  ///< Averaged for each measurement.
  uint32_t traversal_depth = 7;

  /// Roots are drawn from this many distinct parts (0 = any part).
  /// DSTC-CluB inherits OO1's protocol of re-running the traversal from a
  /// few roots; this stereotypy is what the paper credits for CluB's
  /// outsized clustering gain (§4.3).
  uint32_t root_pool_size = 32;
};

/// DSTC-CluB's result row (one line of paper Table 4).
struct ClubResult {
  double ios_before = 0.0;  ///< Mean page reads per traversal, before.
  double ios_after = 0.0;   ///< ... after reclustering.
  uint64_t clustering_overhead_io = 0;
  /// See BeforeAfterResult::gain_factor for the zero-after convention.
  double gain_factor() const {
    if (ios_after == 0.0) {
      return ios_before == 0.0
                 ? 1.0
                 : std::numeric_limits<double>::infinity();
    }
    return ios_before / ios_after;
  }
};

/// \brief Builds the OO1 database in \p db, runs the before/measure/
/// recluster/measure pipeline with \p policy, and reports I/Os per
/// traversal. \p db must be empty.
Result<ClubResult> RunDstcClub(const ClubOptions& options, Database* db,
                               ClusteringPolicy* policy);

}  // namespace ocb

#endif  // OCB_LEGACY_CLUB_H_
