/// \file oo7.h
/// \brief Native implementation of the OO7 benchmark's *small*
///        configuration (paper §2.3; Carey, DeWitt & Naughton), over the
///        oodb substrate.
///
/// Database (small): one Module with a complex-assembly tree (fan-out 3,
/// 7 assembly levels, the last level being BaseAssemblies), a pool of
/// CompositeParts each owning a Document and a graph of AtomicParts
/// (20 per composite, 3 outgoing connections each), and a Manual. Base
/// assemblies reference 3 composite parts drawn from the shared pool.
///
/// Simplification: atomic-part connections are direct references rather
/// than reified Connection objects (OO7's connection attributes play no
/// role in I/O-count metrics; see DESIGN.md §5).
///
/// Workload: traversals T1 (full DFS touching every atomic part) and T6
/// (DFS touching composite-part roots only), queries Q1 (random composite
/// lookups) and Q2 (range over atomic-part build dates).

#ifndef OCB_LEGACY_OO7_H_
#define OCB_LEGACY_OO7_H_

#include <cstdint>
#include <string>
#include <vector>

#include "oodb/database.h"
#include "util/rng.h"
#include "util/status.h"

namespace ocb {

/// OO7 configuration (defaults = the *small* database).
struct OO7Options {
  uint32_t assembly_fanout = 3;
  uint32_t assembly_levels = 7;  ///< Levels of assemblies below the module.
  uint32_t composite_parts = 500;
  uint32_t atomic_per_composite = 20;
  uint32_t connections_per_atomic = 3;
  uint32_t composites_per_base = 3;
  uint32_t document_bytes = 2000;
  uint32_t manual_bytes = 2000;  ///< OO7's 100 KB capped to one page.
  uint64_t seed = 77;
  uint32_t query_lookups = 10;
};

/// One OO7 operation measurement.
struct OO7OpResult {
  std::string op;
  uint64_t objects_accessed = 0;
  uint64_t io_reads = 0;
  uint64_t sim_nanos = 0;
};

/// \brief OO7-small database + core operations.
class OO7Benchmark {
 public:
  static constexpr ClassId kModule = 0;
  static constexpr ClassId kComplexAssembly = 1;
  static constexpr ClassId kBaseAssembly = 2;
  static constexpr ClassId kCompositePart = 3;
  static constexpr ClassId kAtomicPart = 4;
  static constexpr ClassId kDocument = 5;
  static constexpr ClassId kManual = 6;

  explicit OO7Benchmark(OO7Options options = {});

  /// Builds the OO7-small database into \p db (must be empty).
  Status Build(Database* db);

  /// T1: full traversal — DFS over the assembly tree, then for each
  /// referenced composite part a DFS over its atomic-part graph.
  Result<OO7OpResult> TraversalT1();

  /// T6: as T1 but touching only each composite part's root atomic part.
  Result<OO7OpResult> TraversalT6();

  /// Q1: lookup of `query_lookups` random composite parts.
  Result<OO7OpResult> QueryQ1();

  /// Q2: select atomic parts in a 1% build-date range (extent scan).
  Result<OO7OpResult> QueryQ2();

  /// T2a: as T1, but update one atomic part (the root) per composite
  /// visited. Exercises the read-mostly update path.
  Result<OO7OpResult> TraversalT2a();

  /// T2b: as T1, but update *every* atomic part visited (write-heavy).
  Result<OO7OpResult> TraversalT2b();

  /// Structural modification SM1: insert a new composite part (with its
  /// document and atomic-part graph) and wire it under a random base
  /// assembly.
  Result<OO7OpResult> StructuralInsert();

  /// Structural modification SM2: delete a random composite part and its
  /// private atomic parts / document.
  Result<OO7OpResult> StructuralDelete();

  Database* database() { return db_; }
  uint64_t object_count() const;

  /// Derived build date of an atomic part (0..99999).
  static uint32_t BuildDateOf(Oid oid) {
    return static_cast<uint32_t>((oid * 1103515245ULL + 12345) % 100000);
  }

 private:
  Status BuildAssemblyTree();
  Status BuildCompositeParts();

  /// Builds one composite part (document + atomic graph); appends it to
  /// composites_ and returns its oid.
  Result<Oid> BuildOneComposite();

  /// Shared T1/T2 skeleton: \p update_mode 0 = read-only, 1 = update the
  /// root atomic part per composite, 2 = update every atomic part.
  Result<OO7OpResult> TraversalImpl(const char* name, int update_mode);

  /// DFS from an assembly; calls \p visit_composite on base assemblies'
  /// composite references.
  template <typename Visitor>
  Status WalkAssemblies(Oid assembly, uint32_t level, Visitor&& visit,
                        uint64_t* accessed);

  OO7Options options_;
  Database* db_ = nullptr;
  LewisPayneRng rng_;
  Oid module_ = kInvalidOid;
  std::vector<Oid> composites_;
  std::vector<Oid> atomics_;
};

}  // namespace ocb

#endif  // OCB_LEGACY_OO7_H_
