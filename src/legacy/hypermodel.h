/// \file hypermodel.h
/// \brief Native implementation of the HyperModel (Tektronix) benchmark
///        (paper §2.2) over the oodb substrate.
///
/// Database: an extended hypertext of Node objects related three ways —
/// *aggregation* (parent/children, fan-out 5, a full tree of `levels`
/// levels), *partOf/parts* (M-N links between random nodes), and
/// *association* (refTo/refFrom oriented links). Attribute values
/// (hundred, thousand) are derived deterministically from the node id.
///
/// Workload: seven operation kinds, run under HyperModel's measured
/// protocol — prepare 50 inputs (not timed), a *cold run* over the 50
/// inputs, then a *warm run* repeating the same inputs to expose caching:
///   Name Lookup, Range Lookup, Group Lookup, Reference Lookup (reverse),
///   Sequential Scan, Closure Traversal, Editing.

#ifndef OCB_LEGACY_HYPERMODEL_H_
#define OCB_LEGACY_HYPERMODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "oodb/database.h"
#include "util/rng.h"
#include "util/status.h"

namespace ocb {

/// HyperModel configuration.
struct HyperModelOptions {
  uint32_t fanout = 5;        ///< Aggregation children per node.
  uint32_t levels = 5;        ///< Aggregation tree levels below the root.
  uint32_t node_payload_bytes = 40;
  uint64_t seed = 57;
  uint32_t inputs_per_operation = 50;  ///< HyperModel's 50 setup inputs.
  uint32_t closure_depth = 5;
  uint32_t range_width = 10;  ///< Width of the hundred-attribute range.
};

/// One operation's cold/warm measurement.
struct HyperModelOpResult {
  std::string op;
  double cold_ios = 0.0;        ///< Page reads over the cold run.
  double warm_ios = 0.0;        ///< Page reads over the warm run.
  uint64_t cold_nanos = 0;      ///< Simulated time, cold run.
  uint64_t warm_nanos = 0;      ///< Simulated time, warm run.
  uint64_t objects_touched = 0; ///< Objects accessed per run (either run).
};

/// \brief HyperModel database + operations.
class HyperModelBenchmark {
 public:
  static constexpr ClassId kNodeClass = 0;
  /// Slot layout within a Node: [0, fanout) children, then partOf, refTo.
  static constexpr RefTypeId kAggregation = 1;
  static constexpr RefTypeId kAssociation = 2;

  explicit HyperModelBenchmark(HyperModelOptions options = {});

  /// Builds the node hypertext into \p db (must be empty).
  Status Build(Database* db);

  /// The seven operation kinds. Each runs the cold/warm protocol.
  Result<HyperModelOpResult> NameLookup();
  Result<HyperModelOpResult> RangeLookup();
  Result<HyperModelOpResult> GroupLookup();
  Result<HyperModelOpResult> ReferenceLookup();
  Result<HyperModelOpResult> SequentialScan();
  Result<HyperModelOpResult> ClosureTraversal();
  Result<HyperModelOpResult> Editing();

  /// Runs all seven and returns their rows.
  Result<std::vector<HyperModelOpResult>> RunAll();

  uint64_t node_count() const { return nodes_.size(); }
  Database* database() { return db_; }

  /// Derived "hundred" attribute of a node (0..99).
  static uint32_t HundredOf(Oid oid) {
    return static_cast<uint32_t>((oid * 2654435761ULL) % 100);
  }

 private:
  /// Runs \p body once per prepared input, cold then warm, measuring I/O.
  template <typename Body>
  Result<HyperModelOpResult> RunProtocol(const std::string& name,
                                         const std::vector<Oid>& inputs,
                                         Body&& body);

  /// Draws 50 random node inputs.
  std::vector<Oid> DrawInputs();

  HyperModelOptions options_;
  Database* db_ = nullptr;
  LewisPayneRng rng_;
  std::vector<Oid> nodes_;
  uint32_t partof_slot_ = 0;
  uint32_t refto_slot_ = 0;
};

}  // namespace ocb

#endif  // OCB_LEGACY_HYPERMODEL_H_
