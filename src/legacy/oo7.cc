#include "legacy/oo7.h"

#include <algorithm>

namespace ocb {

OO7Benchmark::OO7Benchmark(OO7Options options)
    : options_(options), rng_(options.seed) {}

Status OO7Benchmark::Build(Database* db) {
  db_ = db;
  if (db_->object_count() != 0) {
    return Status::InvalidArgument("database is not empty");
  }
  Schema schema;
  schema.SetRefTypes(Schema::DefaultTraits(4));
  constexpr RefTypeId kComposition = 1;
  constexpr RefTypeId kAssoc = 2;

  auto add_class = [&](ClassId id, uint32_t maxnref, uint32_t basesize,
                       RefTypeId type, ClassId target) -> Status {
    ClassDescriptor cls;
    cls.id = id;
    cls.maxnref = maxnref;
    cls.basesize = basesize;
    cls.instance_size = basesize;
    cls.tref.assign(maxnref, type);
    cls.cref.assign(maxnref, target);
    return schema.AddClass(std::move(cls));
  };
  // Module: manual + root assembly.
  OCB_RETURN_NOT_OK(add_class(kModule, 2, 100, kComposition, kNullClass));
  // ComplexAssembly: fan-out children (complex or base; typed at bind
  // time the slots all carry composition references).
  OCB_RETURN_NOT_OK(add_class(kComplexAssembly, options_.assembly_fanout,
                              80, kComposition, kComplexAssembly));
  // BaseAssembly: composite-part references (shared associations).
  OCB_RETURN_NOT_OK(add_class(kBaseAssembly, options_.composites_per_base,
                              80, kAssoc, kCompositePart));
  // CompositePart: document + root atomic + all atomic parts.
  OCB_RETURN_NOT_OK(add_class(kCompositePart,
                              2 + options_.atomic_per_composite, 60,
                              kComposition, kAtomicPart));
  // AtomicPart: connections to sibling atomic parts.
  OCB_RETURN_NOT_OK(add_class(kAtomicPart, options_.connections_per_atomic,
                              20, kAssoc, kAtomicPart));
  OCB_RETURN_NOT_OK(add_class(kDocument, 0, options_.document_bytes,
                              kAssoc, kNullClass));
  OCB_RETURN_NOT_OK(add_class(kManual, 0, options_.manual_bytes, kAssoc,
                              kNullClass));
  db_->SetSchema(std::move(schema));

  ScopedIoScope scope(db_->disk(), IoScope::kGeneration);
  OCB_RETURN_NOT_OK(BuildCompositeParts());
  OCB_RETURN_NOT_OK(BuildAssemblyTree());
  return db_->buffer_pool()->FlushAll();
}

Result<Oid> OO7Benchmark::BuildOneComposite() {
  OCB_ASSIGN_OR_RETURN(Oid composite, db_->CreateObject(kCompositePart));
  composites_.push_back(composite);
  OCB_ASSIGN_OR_RETURN(Oid document, db_->CreateObject(kDocument));
  OCB_RETURN_NOT_OK(db_->SetReference(composite, 0, document));
  // Atomic-part graph: a ring plus random chords keeps it connected with
  // exactly `connections_per_atomic` outgoing links per part.
  std::vector<Oid> atoms;
  atoms.reserve(options_.atomic_per_composite);
  for (uint32_t a = 0; a < options_.atomic_per_composite; ++a) {
    OCB_ASSIGN_OR_RETURN(Oid atom, db_->CreateObject(kAtomicPart));
    atoms.push_back(atom);
    atomics_.push_back(atom);
  }
  const uint32_t n = options_.atomic_per_composite;
  for (uint32_t a = 0; a < n; ++a) {
    // Slot 0: ring successor; remaining slots: random chords.
    OCB_RETURN_NOT_OK(db_->SetReference(atoms[a], 0, atoms[(a + 1) % n]));
    for (uint32_t k = 1; k < options_.connections_per_atomic; ++k) {
      const uint32_t target =
          static_cast<uint32_t>(rng_.UniformInt(0, n - 1));
      OCB_RETURN_NOT_OK(db_->SetReference(atoms[a], k, atoms[target]));
    }
  }
  OCB_RETURN_NOT_OK(db_->SetReference(composite, 1, atoms[0]));  // Root.
  for (uint32_t a = 0; a < n; ++a) {
    OCB_RETURN_NOT_OK(db_->SetReference(composite, 2 + a, atoms[a]));
  }
  return composite;
}

Status OO7Benchmark::BuildCompositeParts() {
  composites_.reserve(options_.composite_parts);
  for (uint32_t c = 0; c < options_.composite_parts; ++c) {
    OCB_ASSIGN_OR_RETURN(Oid composite, BuildOneComposite());
    (void)composite;
  }
  return Status::OK();
}

Status OO7Benchmark::BuildAssemblyTree() {
  OCB_ASSIGN_OR_RETURN(Oid module, db_->CreateObject(kModule));
  module_ = module;
  OCB_ASSIGN_OR_RETURN(Oid manual, db_->CreateObject(kManual));
  OCB_RETURN_NOT_OK(db_->SetReference(module_, 0, manual));

  // Recursive construction: levels 1..assembly_levels-1 are complex
  // assemblies, the last level is base assemblies wired to composites.
  auto build = [&](auto&& self, uint32_t level) -> Result<Oid> {
    if (level == options_.assembly_levels) {
      OCB_ASSIGN_OR_RETURN(Oid base, db_->CreateObject(kBaseAssembly));
      for (uint32_t k = 0; k < options_.composites_per_base; ++k) {
        const uint32_t pick = static_cast<uint32_t>(rng_.UniformInt(
            0, static_cast<int64_t>(composites_.size()) - 1));
        OCB_RETURN_NOT_OK(db_->SetReference(base, k, composites_[pick]));
      }
      return base;
    }
    OCB_ASSIGN_OR_RETURN(Oid assembly, db_->CreateObject(kComplexAssembly));
    for (uint32_t k = 0; k < options_.assembly_fanout; ++k) {
      OCB_ASSIGN_OR_RETURN(Oid child, self(self, level + 1));
      OCB_RETURN_NOT_OK(db_->SetReference(assembly, k, child));
    }
    return assembly;
  };
  OCB_ASSIGN_OR_RETURN(Oid root, build(build, 1));
  return db_->SetReference(module_, 1, root);
}

template <typename Visitor>
Status OO7Benchmark::WalkAssemblies(Oid assembly, uint32_t level,
                                    Visitor&& visit, uint64_t* accessed) {
  OCB_ASSIGN_OR_RETURN(Object node, db_->GetObject(assembly));
  ++*accessed;
  if (node.class_id == kBaseAssembly) {
    for (Oid composite : node.orefs) {
      if (composite == kInvalidOid) continue;
      OCB_RETURN_NOT_OK(visit(composite, accessed));
    }
    return Status::OK();
  }
  for (Oid child : node.orefs) {
    if (child == kInvalidOid) continue;
    OCB_RETURN_NOT_OK(
        WalkAssemblies(child, level + 1, visit, accessed));
  }
  return Status::OK();
}

Result<OO7OpResult> OO7Benchmark::TraversalImpl(const char* name,
                                                int update_mode) {
  OO7OpResult result;
  result.op = name;
  ScopedIoScope scope(db_->disk(), IoScope::kTransaction);
  const uint64_t reads_start =
      db_->disk()->counters(IoScope::kTransaction).reads;
  const uint64_t nanos_start = db_->sim_clock()->now_nanos();
  uint64_t accessed = 0;

  OCB_ASSIGN_OR_RETURN(Object module, db_->GetObject(module_));
  ++accessed;
  auto visit_composite = [&](Oid composite, uint64_t* acc) -> Status {
    OCB_ASSIGN_OR_RETURN(Object comp, db_->GetObject(composite));
    ++*acc;
    // DFS over the atomic graph from the root part, bounded by the
    // composite's own part count (visited set per composite).
    std::vector<Oid> stack;
    std::vector<Oid> visited;
    if (comp.orefs.size() > 1 && comp.orefs[1] != kInvalidOid) {
      stack.push_back(comp.orefs[1]);
    }
    bool updated_root = false;
    while (!stack.empty()) {
      const Oid atom_oid = stack.back();
      stack.pop_back();
      if (std::find(visited.begin(), visited.end(), atom_oid) !=
          visited.end()) {
        continue;
      }
      visited.push_back(atom_oid);
      OCB_ASSIGN_OR_RETURN(Object atom,
                           db_->CrossLink(composite, atom_oid, 2, false));
      ++*acc;
      // T2a: swap the (modeled) x,y of the first atomic part; T2b: of
      // every atomic part. A rewrite of identical size = the OO7 update.
      if (update_mode == 2 || (update_mode == 1 && !updated_root)) {
        OCB_RETURN_NOT_OK(db_->PutObject(atom));
        updated_root = true;
      }
      for (Oid next : atom.orefs) {
        if (next != kInvalidOid) stack.push_back(next);
      }
    }
    return Status::OK();
  };
  const Oid root_assembly = module.orefs[1];
  OCB_RETURN_NOT_OK(
      WalkAssemblies(root_assembly, 1, visit_composite, &accessed));
  if (update_mode != 0) {
    OCB_RETURN_NOT_OK(db_->buffer_pool()->FlushAll());  // Commit.
  }

  result.objects_accessed = accessed;
  result.io_reads =
      db_->disk()->counters(IoScope::kTransaction).reads - reads_start;
  result.sim_nanos = db_->sim_clock()->now_nanos() - nanos_start;
  return result;
}

Result<OO7OpResult> OO7Benchmark::TraversalT1() {
  return TraversalImpl("T1", /*update_mode=*/0);
}

Result<OO7OpResult> OO7Benchmark::TraversalT2a() {
  return TraversalImpl("T2a", /*update_mode=*/1);
}

Result<OO7OpResult> OO7Benchmark::TraversalT2b() {
  return TraversalImpl("T2b", /*update_mode=*/2);
}

Result<OO7OpResult> OO7Benchmark::StructuralInsert() {
  OO7OpResult result;
  result.op = "SM1-insert";
  ScopedIoScope scope(db_->disk(), IoScope::kTransaction);
  const uint64_t reads_start =
      db_->disk()->counters(IoScope::kTransaction).reads;
  const uint64_t nanos_start = db_->sim_clock()->now_nanos();

  OCB_ASSIGN_OR_RETURN(Oid composite, BuildOneComposite());
  // Wire it under a random base assembly, replacing a random slot.
  const auto& bases =
      db_->schema().GetClass(kBaseAssembly).iterator;
  if (!bases.empty()) {
    const Oid base = bases[static_cast<size_t>(rng_.UniformInt(
        0, static_cast<int64_t>(bases.size()) - 1))];
    const uint32_t slot = static_cast<uint32_t>(
        rng_.UniformInt(0, options_.composites_per_base - 1));
    OCB_RETURN_NOT_OK(db_->SetReference(base, slot, composite));
  }
  OCB_RETURN_NOT_OK(db_->buffer_pool()->FlushAll());  // Commit.

  result.objects_accessed = 2u + options_.atomic_per_composite;
  result.io_reads =
      db_->disk()->counters(IoScope::kTransaction).reads - reads_start;
  result.sim_nanos = db_->sim_clock()->now_nanos() - nanos_start;
  return result;
}

Result<OO7OpResult> OO7Benchmark::StructuralDelete() {
  OO7OpResult result;
  result.op = "SM2-delete";
  if (composites_.empty()) {
    return Status::Aborted("no composite parts left to delete");
  }
  ScopedIoScope scope(db_->disk(), IoScope::kTransaction);
  const uint64_t reads_start =
      db_->disk()->counters(IoScope::kTransaction).reads;
  const uint64_t nanos_start = db_->sim_clock()->now_nanos();

  const size_t pick = static_cast<size_t>(rng_.UniformInt(
      0, static_cast<int64_t>(composites_.size()) - 1));
  const Oid composite = composites_[pick];
  OCB_ASSIGN_OR_RETURN(Object comp, db_->GetObject(composite));
  ++result.objects_accessed;
  // Delete the document and the private atomic parts, then the composite;
  // DeleteObject unlinks every referer (base assemblies keep running with
  // a nulled slot, per OO7's delete semantics).
  std::vector<Oid> members;
  for (Oid ref : comp.orefs) {
    if (ref != kInvalidOid) members.push_back(ref);
  }
  OCB_RETURN_NOT_OK(db_->DeleteObject(composite));
  ++result.objects_accessed;
  for (Oid member : members) {
    if (!db_->object_store()->Contains(member)) continue;
    OCB_RETURN_NOT_OK(db_->DeleteObject(member));
    ++result.objects_accessed;
    atomics_.erase(std::remove(atomics_.begin(), atomics_.end(), member),
                   atomics_.end());
  }
  composites_.erase(composites_.begin() +
                    static_cast<std::ptrdiff_t>(pick));
  OCB_RETURN_NOT_OK(db_->buffer_pool()->FlushAll());  // Commit.

  result.io_reads =
      db_->disk()->counters(IoScope::kTransaction).reads - reads_start;
  result.sim_nanos = db_->sim_clock()->now_nanos() - nanos_start;
  return result;
}

Result<OO7OpResult> OO7Benchmark::TraversalT6() {
  OO7OpResult result;
  result.op = "T6";
  ScopedIoScope scope(db_->disk(), IoScope::kTransaction);
  const uint64_t reads_start =
      db_->disk()->counters(IoScope::kTransaction).reads;
  const uint64_t nanos_start = db_->sim_clock()->now_nanos();
  uint64_t accessed = 0;

  OCB_ASSIGN_OR_RETURN(Object module, db_->GetObject(module_));
  ++accessed;
  auto visit_composite = [&](Oid composite, uint64_t* acc) -> Status {
    OCB_ASSIGN_OR_RETURN(Object comp, db_->GetObject(composite));
    ++*acc;
    if (comp.orefs.size() > 1 && comp.orefs[1] != kInvalidOid) {
      OCB_ASSIGN_OR_RETURN(
          Object root_atom,
          db_->CrossLink(composite, comp.orefs[1], 2, false));
      (void)root_atom;
      ++*acc;
    }
    return Status::OK();
  };
  OCB_RETURN_NOT_OK(
      WalkAssemblies(module.orefs[1], 1, visit_composite, &accessed));

  result.objects_accessed = accessed;
  result.io_reads =
      db_->disk()->counters(IoScope::kTransaction).reads - reads_start;
  result.sim_nanos = db_->sim_clock()->now_nanos() - nanos_start;
  return result;
}

Result<OO7OpResult> OO7Benchmark::QueryQ1() {
  OO7OpResult result;
  result.op = "Q1";
  ScopedIoScope scope(db_->disk(), IoScope::kTransaction);
  const uint64_t reads_start =
      db_->disk()->counters(IoScope::kTransaction).reads;
  const uint64_t nanos_start = db_->sim_clock()->now_nanos();
  for (uint32_t i = 0; i < options_.query_lookups; ++i) {
    const uint32_t pick = static_cast<uint32_t>(rng_.UniformInt(
        0, static_cast<int64_t>(composites_.size()) - 1));
    OCB_ASSIGN_OR_RETURN(Object comp, db_->GetObject(composites_[pick]));
    (void)comp;
    ++result.objects_accessed;
  }
  result.io_reads =
      db_->disk()->counters(IoScope::kTransaction).reads - reads_start;
  result.sim_nanos = db_->sim_clock()->now_nanos() - nanos_start;
  return result;
}

Result<OO7OpResult> OO7Benchmark::QueryQ2() {
  OO7OpResult result;
  result.op = "Q2";
  ScopedIoScope scope(db_->disk(), IoScope::kTransaction);
  const uint64_t reads_start =
      db_->disk()->counters(IoScope::kTransaction).reads;
  const uint64_t nanos_start = db_->sim_clock()->now_nanos();
  // 1% build-date range over the atomic-part extent.
  for (Oid atom : atomics_) {
    OCB_ASSIGN_OR_RETURN(Object obj, db_->GetObject(atom));
    (void)obj;
    ++result.objects_accessed;
    if (BuildDateOf(atom) < 1000) {
      // Qualifies (1% of the 0..99999 date domain).
    }
  }
  result.io_reads =
      db_->disk()->counters(IoScope::kTransaction).reads - reads_start;
  result.sim_nanos = db_->sim_clock()->now_nanos() - nanos_start;
  return result;
}

uint64_t OO7Benchmark::object_count() const {
  return db_ == nullptr ? 0 : db_->object_count();
}

}  // namespace ocb
