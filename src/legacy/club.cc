#include "legacy/club.h"

#include <vector>

namespace ocb {
namespace {

/// Runs \p count traversals from roots drawn out of \p root_pool; returns
/// mean page reads per traversal. Transactions are bracketed so
/// period-based policies advance.
Result<double> MeasureTraversals(OO1Benchmark* oo1,
                                 const std::vector<Oid>& root_pool,
                                 uint32_t count, uint32_t depth) {
  Database* db = oo1->database();
  ScopedIoScope scope(db->disk(), IoScope::kTransaction);
  double total_reads = 0.0;
  for (uint32_t i = 0; i < count; ++i) {
    const size_t index = static_cast<size_t>(oo1->rng()->UniformInt(
        0, static_cast<int64_t>(root_pool.size()) - 1));
    const uint64_t reads_start =
        db->disk()->counters(IoScope::kTransaction).reads;
    db->BeginTransaction();
    auto accessed = oo1->TraverseFrom(root_pool[index], depth,
                                      /*reverse=*/false);
    db->EndTransaction();
    OCB_RETURN_NOT_OK(accessed.status());
    total_reads += static_cast<double>(
        db->disk()->counters(IoScope::kTransaction).reads - reads_start);
  }
  return count == 0 ? 0.0 : total_reads / count;
}

}  // namespace

Result<ClubResult> RunDstcClub(const ClubOptions& options, Database* db,
                               ClusteringPolicy* policy) {
  OO1Benchmark oo1(options.oo1);
  OCB_RETURN_NOT_OK(oo1.Build(db));
  OCB_RETURN_NOT_OK(db->ColdRestart());
  db->SetObserver(policy);

  // Stereotyped root pool (see ClubOptions::root_pool_size).
  std::vector<Oid> root_pool;
  const uint64_t pool_size =
      options.root_pool_size == 0
          ? oo1.part_count()
          : std::min<uint64_t>(options.root_pool_size, oo1.part_count());
  root_pool.reserve(pool_size);
  for (uint64_t i = 0; i < pool_size; ++i) {
    root_pool.push_back(oo1.PartOid(static_cast<uint64_t>(
        oo1.rng()->UniformInt(0,
                              static_cast<int64_t>(oo1.part_count()) - 1))));
  }

  ClubResult result;
  // Warm-up traversals feed the policy's observation phase, then the
  // "before reclustering" I/O cost is measured.
  OCB_ASSIGN_OR_RETURN(
      double warm_ios,
      MeasureTraversals(&oo1, root_pool, options.warmup_traversals,
                        options.traversal_depth));
  (void)warm_ios;
  OCB_ASSIGN_OR_RETURN(
      result.ios_before,
      MeasureTraversals(&oo1, root_pool, options.measured_traversals,
                        options.traversal_depth));

  const uint64_t clustering_start =
      db->disk()->counters(IoScope::kClustering).total();
  OCB_RETURN_NOT_OK(policy->Reorganize(db));
  result.clustering_overhead_io =
      db->disk()->counters(IoScope::kClustering).total() - clustering_start;

  OCB_RETURN_NOT_OK(db->ColdRestart());
  // Re-warm the cache to the same degree, then measure "after".
  OCB_ASSIGN_OR_RETURN(
      double rewarm_ios,
      MeasureTraversals(&oo1, root_pool, options.warmup_traversals,
                        options.traversal_depth));
  (void)rewarm_ios;
  OCB_ASSIGN_OR_RETURN(
      result.ios_after,
      MeasureTraversals(&oo1, root_pool, options.measured_traversals,
                        options.traversal_depth));

  db->SetObserver(nullptr);
  return result;
}

}  // namespace ocb
