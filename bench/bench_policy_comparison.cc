/// \file bench_policy_comparison.cc
/// \brief Ext-1: the paper's stated exploitation goal (§5) — "benchmarking
///        of several different clustering techniques for the sake of
///        performance comparison" — on identical OCB databases.
///
/// Policies: NoClustering (the Tables 4/5 "before" baseline), DSTC,
/// Tsangaris–Naughton-style GreedyGraphPartitioning, and the
/// statistics-free Cactis-style DFS placement.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "clustering/dfs_placement.h"
#include "clustering/dstc.h"
#include "clustering/greedy_graph.h"
#include "ocb/experiment.h"

int main() {
  using namespace ocb;

  bench::PrintHeader("Ext-1", "clustering policy comparison on OCB");

  auto make_config = [] {
    ExperimentConfig config;
    config.preset = presets::Default();
    config.preset.database.num_objects = 8000;
    config.preset.workload.cold_transactions = 200;
    config.preset.workload.hot_transactions = 800;
    config.preset.database.seed = 7;
    config.preset.workload.seed = 9;
    config.storage.buffer_pool_pages = 192;
    return config;
  };

  std::vector<std::unique_ptr<ClusteringPolicy>> policies;
  policies.push_back(std::make_unique<NoClustering>());
  policies.push_back(std::make_unique<Dstc>());
  policies.push_back(std::make_unique<GreedyGraphPartitioning>());
  policies.push_back(std::make_unique<DfsPlacement>());

  TextTable table({"Policy", "I/Os before", "I/Os after", "Gain",
                   "Overhead I/Os", "Objects moved"});
  for (auto& policy : policies) {
    auto result = RunBeforeAfterExperiment(make_config(), policy.get());
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", policy->name().c_str(),
                   result.status().ToString().c_str());
      return 1;
    }
    table.AddRow(
        {result->policy_name, Format("%.1f", result->ios_before()),
         Format("%.1f", result->ios_after()),
         Format("%.2f", result->gain_factor()),
         Format("%llu",
                (unsigned long long)result->clustering_overhead_io),
         Format("%llu",
                (unsigned long long)result->policy_stats.objects_moved)});
  }
  bench::PrintTable(table);
  bench::PrintNote(
      "expected shape: usage-based policies (DSTC, GreedyGraph) beat the "
      "statistics-free DFS placement on the diversified workload; "
      "NoClustering's gain is ~1 by construction. Usage-based policies pay "
      "for their gain with observation + reorganization overhead I/Os.");
  return 0;
}
