/// \file bench_multiclient.cc
/// \brief Ext-5: the multi-user mode (paper §3.1 calls OCB's multi-user
///        support "almost unique"). Sweeps CLIENTN over a shared database
///        and, for every CLIENTN > 1, runs the same read-heavy mix twice:
///        once pure-2PL (readers take S locks and queue behind writers)
///        and once with MVCC snapshot reads (read-only transactions pin a
///        ReadView and bypass the lock manager). The interesting columns
///        are cumulative lock-wait time and abort count: snapshot readers
///        wait for nothing and can never be deadlock victims, so both
///        should collapse relative to the 2PL-only rows.
///
/// The mix mirrors the paper's workload matrix: traversals dominate, a
/// modest write share (update/insert/delete) supplies the X locks that
/// make 2PL readers queue in the first place.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "ocb/client.h"
#include "ocb/generator.h"
#include "ocb/presets.h"

int main() {
  using namespace ocb;

  bench::PrintHeader("Ext-5",
                     "multi-client scaling (CLIENTN sweep, 2PL vs MVCC)");

  TextTable table({"Clients", "Mode", "Committed", "Aborted", "Abort rate",
                   "Lock wait", "Snapshot reads", "Mean I/Os/attempt",
                   "Hit ratio", "Wall time", "Throughput (txn/s)"});
  std::vector<std::string> per_client_lines;
  std::vector<std::string> gc_lines;
  for (uint32_t clients : std::vector<uint32_t>{1, 2, 4, 8}) {
    // CLIENTN=1 keeps the seed's serialized legacy path (one row); every
    // multi-client CLIENTN runs both concurrency modes over fresh,
    // identically generated databases.
    const int modes = clients == 1 ? 1 : 2;
    for (int mode = 0; mode < modes; ++mode) {
      const bool mvcc = mode == 1;
      StorageOptions storage;
      storage.buffer_pool_pages = 256;
      Database db(storage);
      OcbPreset preset = presets::Default();
      preset.database.num_objects = 6000;
      preset.database.seed = 29;
      if (!GenerateDatabase(preset.database, &db).ok()) {
        std::fprintf(stderr, "generation failed\n");
        return 1;
      }
      if (!db.ColdRestart().ok()) return 1;

      preset.workload.client_count = clients;
      preset.workload.cold_transactions = 100;
      preset.workload.hot_transactions = 400;
      preset.workload.seed = 31;
      // Read-heavy mix (the paper's traversal-dominated matrix) with
      // enough writes that 2PL readers genuinely queue behind X locks.
      preset.workload.p_set = 0.22;
      preset.workload.p_simple = 0.22;
      preset.workload.p_hierarchy = 0.18;
      preset.workload.p_stochastic = 0.18;
      preset.workload.p_update = 0.12;
      preset.workload.p_insert = 0.05;
      preset.workload.p_delete = 0.03;
      preset.workload.mvcc_snapshot_reads = mvcc;
      // Per-transaction I/O is computed from the disk's own counters over
      // the whole run: per-client deltas overlap under concurrency (see
      // client.h), the device-level count does not.
      const uint64_t reads_before =
          db.disk()->counters(IoScope::kTransaction).reads;
      auto report = RunMultiClient(&db, preset.workload);
      if (!report.ok()) {
        std::fprintf(stderr, "run failed: %s\n",
                     report.status().ToString().c_str());
        return 1;
      }
      const uint64_t reads =
          db.disk()->counters(IoScope::kTransaction).reads - reads_before;
      const uint64_t txns = report->merged.cold.global.transactions +
                            report->merged.warm.global.transactions;
      // Device-level reads include aborted transactions' work and their
      // undo-log rollback, so normalize by *attempted* transactions — the
      // committed-only divisor would inflate with the abort rate.
      const uint64_t attempted = txns + report->total_aborts();
      const char* mode_name =
          clients == 1 ? "legacy" : (mvcc ? "MVCC" : "2PL-only");
      table.AddRow(
          {Format("%u", clients), mode_name,
           Format("%llu", (unsigned long long)txns),
           Format("%llu", (unsigned long long)report->total_aborts()),
           Format("%.3f", report->abort_rate()),
           HumanDuration(report->total_lock_wait_nanos()),
           Format("%llu",
                  (unsigned long long)report->total_snapshot_reads()),
           Format("%.2f", attempted == 0
                              ? 0.0
                              : static_cast<double>(reads) /
                                    static_cast<double>(attempted)),
           Format("%.3f", report->merged.warm.buffer_hit_ratio()),
           HumanDuration(report->wall_micros * 1000),
           Format("%.0f", report->throughput_tps())});
      if (clients > 1) {
        const VersionStoreStats vs = db.version_store()->stats();
        gc_lines.push_back(Format(
            "  CLIENTN=%u %s: %llu versions published, %llu GC'd over "
            "%llu passes, %llu live at end; %llu snapshot txns",
            clients, mode_name,
            (unsigned long long)vs.versions_published,
            (unsigned long long)vs.versions_gced,
            (unsigned long long)vs.gc_passes,
            (unsigned long long)vs.live_versions,
            (unsigned long long)report->total_read_only_commits()));
        for (const ClientOutcome& c : report->per_client) {
          per_client_lines.push_back(Format(
              "  CLIENTN=%u %s client %u: %llu committed, %llu aborted, "
              "lock wait %s, %.0f txn/s",
              clients, mode_name, c.client_id,
              (unsigned long long)c.committed, (unsigned long long)c.aborts,
              HumanDuration(c.lock_wait_nanos).c_str(),
              c.throughput_tps()));
        }
      }
    }
  }
  bench::PrintTable(table);
  std::printf("version-store behaviour:\n");
  for (const std::string& line : gc_lines) {
    std::printf("%s\n", line.c_str());
  }
  std::printf("per-client breakdown:\n");
  for (const std::string& line : per_client_lines) {
    std::printf("%s\n", line.c_str());
  }
  bench::PrintNote(
      "CLIENTN > 1 runs real std::thread clients over one shared store. "
      "2PL-only: every read takes an S lock and queues behind writers' X "
      "locks; deadlock victims roll back via the undo log. MVCC: read-only "
      "transactions (the four traversals and Scan) pin a ReadView and read "
      "version chains instead of locking — they never wait and never "
      "abort, so lock-wait time and abort count both drop while writers "
      "keep strict 2PL semantics. Version chains older than the oldest "
      "live ReadView are reclaimed by the background GC. CLIENTN=1 keeps "
      "the seed's serialized legacy path (zero aborts by construction).");
  return 0;
}
