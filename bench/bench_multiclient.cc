/// \file bench_multiclient.cc
/// \brief Ext-5: the multi-user mode (paper §3.1 calls OCB's multi-user
///        support "almost unique"). Sweeps CLIENTN over a shared database
///        and runs every point in a grid of two axes:
///
///   * concurrency mode — pure-2PL (readers take S locks and queue behind
///     writers) vs MVCC snapshot reads (read-only transactions pin a
///     ReadView and bypass the lock manager);
///   * latching mode — *facade* (SetSerializedPhysical: every operation
///     serializes on one big latch, physical I/O included — the
///     pre-refactor substrate) vs *page* (striped buffer pool + per-frame
///     latches; the catalog latch covers metadata only).
///
/// The latch axis is the before/after comparison of the per-page-latching
/// refactor: the "Facade wait" and "Page wait" columns report how long
/// client threads spent blocked on each latch class (thread-local
/// accounting, see storage/latch.h). Under the facade substrate the wait
/// is one big convoy; with page latches it should collapse by well over
/// 5x while throughput rises, because non-conflicting transactions overlap
/// their buffer-pool and miss-I/O work.
///
/// The mix mirrors the paper's workload matrix: traversals dominate, a
/// modest write share (update/insert/delete) supplies the X locks that
/// make 2PL readers queue in the first place.

#include <cstdio>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "bench_util.h"
#include "ocb/client.h"
#include "ocb/generator.h"
#include "ocb/presets.h"
#include "oodb/snapshot.h"

int main() {
  using namespace ocb;

  bench::PrintHeader("Ext-5",
                     "multi-client scaling (CLIENTN sweep, 2PL vs MVCC, "
                     "facade-latch vs page-latch)");

  // Every grid point runs over an identically generated database.
  // Generation is by far the most expensive step, so generate once and
  // re-load the snapshot per point (exactly the campaign workflow the
  // snapshot subsystem exists for).
  StorageOptions storage;
  storage.buffer_pool_pages = 256;
  const std::string snapshot_path = "bench_multiclient.ocbsnap";
  {
    Database generated(storage);
    OcbPreset preset = presets::Default();
    preset.database.num_objects = 6000;
    preset.database.seed = 29;
    if (!GenerateDatabase(preset.database, &generated).ok()) {
      std::fprintf(stderr, "generation failed\n");
      return 1;
    }
    if (!SaveSnapshot(&generated, snapshot_path).ok()) {
      std::fprintf(stderr, "snapshot save failed\n");
      return 1;
    }
  }

  TextTable table({"Clients", "Mode", "Latching", "Committed", "Aborted",
                   "Lock wait", "Facade wait", "Page wait",
                   "Mean I/Os/attempt", "Hit ratio", "Wall time",
                   "Throughput (txn/s)"});
  std::vector<std::string> per_client_lines;
  std::vector<std::string> gc_lines;
  struct RunPoint {
    double throughput = 0.0;
    uint64_t facade_wait = 0;
    uint64_t page_wait = 0;
  };
  // (clients, mode, page_latches) → outcome, for the summary comparison.
  std::map<std::tuple<uint32_t, std::string, bool>, RunPoint> points;

  for (uint32_t clients : std::vector<uint32_t>{1, 2, 4, 8}) {
    // CLIENTN=1 keeps the seed's serialized legacy path; every
    // multi-client CLIENTN runs both concurrency modes. Every point runs
    // under both latching substrates over fresh, identically generated
    // databases.
    const int modes = clients == 1 ? 1 : 2;
    for (int mode = 0; mode < modes; ++mode) {
      const bool mvcc = mode == 1;
      for (const bool page_latches : {false, true}) {
        Database db(storage);
        if (!LoadSnapshot(&db, snapshot_path).ok()) {
          std::fprintf(stderr, "snapshot load failed\n");
          return 1;
        }
        // The latch substrate under test.
        db.SetSerializedPhysical(!page_latches);
        if (!db.ColdRestart().ok()) return 1;

        OcbPreset preset = presets::Default();
        preset.workload.client_count = clients;
        preset.workload.cold_transactions = 100;
        preset.workload.hot_transactions = 400;
        preset.workload.seed = 31;
        // Read-heavy mix (the paper's traversal-dominated matrix) with
        // enough writes that 2PL readers genuinely queue behind X locks.
        preset.workload.p_set = 0.22;
        preset.workload.p_simple = 0.22;
        preset.workload.p_hierarchy = 0.18;
        preset.workload.p_stochastic = 0.18;
        preset.workload.p_update = 0.12;
        preset.workload.p_insert = 0.05;
        preset.workload.p_delete = 0.03;
        preset.workload.mvcc_snapshot_reads = mvcc;
        // Per-transaction I/O is computed from the disk's own counters
        // over the whole run: per-client deltas overlap under concurrency
        // (see client.h), the device-level count does not.
        const uint64_t reads_before =
            db.disk()->counters(IoScope::kTransaction).reads;
        auto report = RunMultiClient(&db, preset.workload);
        if (!report.ok()) {
          std::fprintf(stderr, "run failed: %s\n",
                       report.status().ToString().c_str());
          return 1;
        }
        const uint64_t reads =
            db.disk()->counters(IoScope::kTransaction).reads - reads_before;
        const uint64_t txns = report->merged.cold.global.transactions +
                              report->merged.warm.global.transactions;
        // Device-level reads include aborted transactions' work and their
        // undo-log rollback, so normalize by *attempted* transactions —
        // the committed-only divisor would inflate with the abort rate.
        const uint64_t attempted = txns + report->total_aborts();
        const char* mode_name =
            clients == 1 ? "legacy" : (mvcc ? "MVCC" : "2PL-only");
        const char* latch_name = page_latches ? "page" : "facade";
        points[{clients, mode_name, page_latches}] =
            RunPoint{report->throughput_tps(),
                     report->total_facade_wait_nanos(),
                     report->total_page_latch_wait_nanos()};
        table.AddRow(
            {Format("%u", clients), mode_name, latch_name,
             Format("%llu", (unsigned long long)txns),
             Format("%llu", (unsigned long long)report->total_aborts()),
             HumanDuration(report->total_lock_wait_nanos()),
             HumanDuration(report->total_facade_wait_nanos()),
             HumanDuration(report->total_page_latch_wait_nanos()),
             Format("%.2f", attempted == 0
                                ? 0.0
                                : static_cast<double>(reads) /
                                      static_cast<double>(attempted)),
             Format("%.3f", report->merged.warm.buffer_hit_ratio()),
             HumanDuration(report->wall_micros * 1000),
             Format("%.0f", report->throughput_tps())});
        if (clients > 1 && page_latches) {
          const VersionStoreStats vs = db.version_store()->stats();
          gc_lines.push_back(Format(
              "  CLIENTN=%u %s: %llu versions published, %llu GC'd over "
              "%llu passes, %llu live at end; %llu snapshot txns",
              clients, mode_name,
              (unsigned long long)vs.versions_published,
              (unsigned long long)vs.versions_gced,
              (unsigned long long)vs.gc_passes,
              (unsigned long long)vs.live_versions,
              (unsigned long long)report->total_read_only_commits()));
          for (const ClientOutcome& c : report->per_client) {
            per_client_lines.push_back(Format(
                "  CLIENTN=%u %s client %u: %llu committed, %llu aborted, "
                "lock wait %s, facade wait %s, page wait %s, %.0f txn/s",
                clients, mode_name, c.client_id,
                (unsigned long long)c.committed,
                (unsigned long long)c.aborts,
                HumanDuration(c.lock_wait_nanos).c_str(),
                HumanDuration(c.facade_wait_nanos).c_str(),
                HumanDuration(c.page_latch_wait_nanos).c_str(),
                c.throughput_tps()));
          }
        }
      }
    }
  }
  std::remove(snapshot_path.c_str());
  bench::PrintTable(table);

  std::printf("facade-latch vs page-latch (same mix, same data):\n");
  for (uint32_t clients : std::vector<uint32_t>{2, 4, 8}) {
    for (const char* mode_name : {"2PL-only", "MVCC"}) {
      const RunPoint before = points[{clients, mode_name, false}];
      const RunPoint after = points[{clients, mode_name, true}];
      const double speedup =
          before.throughput > 0 ? after.throughput / before.throughput : 0.0;
      const double wait_reduction =
          after.facade_wait > 0
              ? static_cast<double>(before.facade_wait) /
                    static_cast<double>(after.facade_wait)
              : 0.0;
      const std::string reduction =
          after.facade_wait == 0 ? std::string("eliminated")
                                 : Format("%.1fx less", wait_reduction);
      std::printf(
          "  CLIENTN=%u %s: throughput %.0f -> %.0f txn/s (%.2fx), "
          "facade wait %s -> %s (%s), page wait %s\n",
          clients, mode_name, before.throughput, after.throughput, speedup,
          HumanDuration(before.facade_wait).c_str(),
          HumanDuration(after.facade_wait).c_str(), reduction.c_str(),
          HumanDuration(after.page_wait).c_str());
    }
  }
  std::printf("version-store behaviour (page-latch rows):\n");
  for (const std::string& line : gc_lines) {
    std::printf("%s\n", line.c_str());
  }
  std::printf("per-client breakdown (page-latch rows):\n");
  for (const std::string& line : per_client_lines) {
    std::printf("%s\n", line.c_str());
  }
  bench::PrintNote(
      "CLIENTN > 1 runs real std::thread clients over one shared store. "
      "Latching axis: 'facade' re-creates the pre-refactor substrate "
      "(every operation holds one big latch across its physical I/O); "
      "'page' is the striped buffer pool with per-frame reader/writer "
      "latches — only schema metadata stays behind the (shared) catalog "
      "latch, so non-conflicting clients overlap their buffer-pool work "
      "and miss I/O. Concurrency axis: 2PL-only queues readers behind "
      "writers' X locks; MVCC read-only transactions read version chains "
      "instead of locking — they never wait and never abort. CLIENTN=1 "
      "keeps the seed's serialized legacy path (zero aborts by "
      "construction).");
  return 0;
}
