/// \file bench_multiclient.cc
/// \brief Ext-5: the multi-user mode (paper §3.1 calls OCB's multi-user
///        support "almost unique"). Sweeps CLIENTN over a shared database
///        and reports merged throughput and I/O behaviour.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "ocb/client.h"
#include "ocb/generator.h"
#include "ocb/presets.h"

int main() {
  using namespace ocb;

  bench::PrintHeader("Ext-5", "multi-client scaling (CLIENTN sweep)");

  TextTable table({"Clients", "Transactions", "Mean I/Os/txn",
                   "Hit ratio", "Wall time", "Throughput (txn/s)"});
  for (uint32_t clients : std::vector<uint32_t>{1, 2, 4, 8}) {
    StorageOptions storage;
    storage.buffer_pool_pages = 256;
    Database db(storage);
    OcbPreset preset = presets::Default();
    preset.database.num_objects = 6000;
    preset.database.seed = 29;
    if (!GenerateDatabase(preset.database, &db).ok()) {
      std::fprintf(stderr, "generation failed\n");
      return 1;
    }
    if (!db.ColdRestart().ok()) return 1;

    preset.workload.client_count = clients;
    preset.workload.cold_transactions = 100;
    preset.workload.hot_transactions = 400;
    preset.workload.seed = 31;
    // Per-transaction I/O is computed from the disk's own counters over
    // the whole run: per-client deltas overlap under concurrency (see
    // client.h), the device-level count does not.
    const uint64_t reads_before =
        db.disk()->counters(IoScope::kTransaction).reads;
    auto report = RunMultiClient(&db, preset.workload);
    if (!report.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    const uint64_t reads =
        db.disk()->counters(IoScope::kTransaction).reads - reads_before;
    const uint64_t txns = report->merged.cold.global.transactions +
                          report->merged.warm.global.transactions;
    table.AddRow(
        {Format("%u", clients), Format("%llu", (unsigned long long)txns),
         Format("%.2f", static_cast<double>(reads) /
                            static_cast<double>(txns)),
         Format("%.3f", report->merged.warm.buffer_hit_ratio()),
         HumanDuration(report->wall_micros * 1000),
         Format("%.0f", report->throughput_tps())});
  }
  bench::PrintTable(table);
  bench::PrintNote(
      "clients share one store and one buffer pool (the paper's 'very "
      "simple' process-based multi-user mode, as threads). Total work "
      "scales with CLIENTN; the shared cache means per-transaction I/O "
      "stays in the same band while wall time reflects lock contention.");
  return 0;
}
