/// \file bench_multiclient.cc
/// \brief Ext-5: the multi-user mode (paper §3.1 calls OCB's multi-user
///        support "almost unique"). Sweeps CLIENTN over a shared database
///        and reports merged throughput, I/O behaviour, and — on the 2PL
///        transactional path used whenever CLIENTN > 1 — abort rate and
///        cumulative lock-wait time, plus a per-client breakdown.
///
/// The workload mixes traversals with updates/inserts/deletes so clients
/// genuinely conflict: without write-write conflicts the lock manager has
/// nothing to arbitrate and abort counts stay 0.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "ocb/client.h"
#include "ocb/generator.h"
#include "ocb/presets.h"

int main() {
  using namespace ocb;

  bench::PrintHeader("Ext-5", "multi-client scaling (CLIENTN sweep)");

  TextTable table({"Clients", "Committed", "Aborted", "Abort rate",
                   "Lock wait", "Mean I/Os/attempt", "Hit ratio",
                   "Wall time", "Throughput (txn/s)"});
  std::vector<std::string> per_client_lines;
  for (uint32_t clients : std::vector<uint32_t>{1, 2, 4, 8}) {
    StorageOptions storage;
    storage.buffer_pool_pages = 256;
    Database db(storage);
    OcbPreset preset = presets::Default();
    preset.database.num_objects = 6000;
    preset.database.seed = 29;
    if (!GenerateDatabase(preset.database, &db).ok()) {
      std::fprintf(stderr, "generation failed\n");
      return 1;
    }
    if (!db.ColdRestart().ok()) return 1;

    preset.workload.client_count = clients;
    preset.workload.cold_transactions = 100;
    preset.workload.hot_transactions = 400;
    preset.workload.seed = 31;
    // A write-heavy mix so concurrent clients actually contend on objects.
    preset.workload.p_set = 0.20;
    preset.workload.p_simple = 0.20;
    preset.workload.p_hierarchy = 0.15;
    preset.workload.p_stochastic = 0.15;
    preset.workload.p_update = 0.15;
    preset.workload.p_insert = 0.10;
    preset.workload.p_delete = 0.05;
    // Per-transaction I/O is computed from the disk's own counters over
    // the whole run: per-client deltas overlap under concurrency (see
    // client.h), the device-level count does not.
    const uint64_t reads_before =
        db.disk()->counters(IoScope::kTransaction).reads;
    auto report = RunMultiClient(&db, preset.workload);
    if (!report.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    const uint64_t reads =
        db.disk()->counters(IoScope::kTransaction).reads - reads_before;
    const uint64_t txns = report->merged.cold.global.transactions +
                          report->merged.warm.global.transactions;
    // Device-level reads include aborted transactions' work and their
    // undo-log rollback, so normalize by *attempted* transactions — the
    // committed-only divisor would inflate with the abort rate.
    const uint64_t attempted = txns + report->total_aborts();
    table.AddRow(
        {Format("%u", clients), Format("%llu", (unsigned long long)txns),
         Format("%llu", (unsigned long long)report->total_aborts()),
         Format("%.3f", report->abort_rate()),
         HumanDuration(report->total_lock_wait_nanos()),
         Format("%.2f", attempted == 0 ? 0.0
                                       : static_cast<double>(reads) /
                                             static_cast<double>(attempted)),
         Format("%.3f", report->merged.warm.buffer_hit_ratio()),
         HumanDuration(report->wall_micros * 1000),
         Format("%.0f", report->throughput_tps())});
    if (clients > 1) {
      for (const ClientOutcome& c : report->per_client) {
        per_client_lines.push_back(Format(
            "  CLIENTN=%u client %u: %llu committed, %llu aborted, "
            "lock wait %s, %.0f txn/s",
            clients, c.client_id, (unsigned long long)c.committed,
            (unsigned long long)c.aborts,
            HumanDuration(c.lock_wait_nanos).c_str(), c.throughput_tps()));
      }
    }
  }
  bench::PrintTable(table);
  std::printf("per-client breakdown:\n");
  for (const std::string& line : per_client_lines) {
    std::printf("%s\n", line.c_str());
  }
  bench::PrintNote(
      "CLIENTN > 1 runs real std::thread clients over one shared store "
      "under the 2PL lock manager: conflicting transactions block on "
      "object locks, deadlock victims roll back via the undo log (counted "
      "as aborts), and lock-wait time is the cumulative blocked wall time. "
      "CLIENTN=1 keeps the seed's serialized legacy path (zero aborts by "
      "construction).");
  return 0;
}
